package spans

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"zofs/internal/lockprof"
	"zofs/internal/pmemtrace"
)

// Merged Chrome trace-event export: root spans render as complete ("X")
// events carrying their component breakdown, child spans nest inside them on
// the same thread track, and raw pmemtrace device events interleave as
// instant ("i") events — so a flush stall on the timeline sits visually
// inside the op that caused it. Structs marshal with fixed field order and
// maps with sorted keys, keeping the exporter byte-deterministic for a given
// input (golden-file tested).

type chromeArgs struct {
	Comp         map[string]int64 `json:"comp,omitempty"`
	PathHash     string           `json:"path_hash,omitempty"`
	PKey         *int16           `json:"pkey,omitempty"`
	BytesRead    int64            `json:"nvm_bytes_read,omitempty"`
	BytesWritten int64            `json:"nvm_bytes_written,omitempty"`
	Flushes      int64            `json:"flushes,omitempty"`
	Fences       int64            `json:"fences,omitempty"`
	Aborted      bool             `json:"aborted,omitempty"`
	Detail       string           `json:"detail,omitempty"`
	Seq          uint64           `json:"seq,omitempty"`
	Off          *int64           `json:"off,omitempty"`
	Len          *int64           `json:"len,omitempty"`
	Key          *int16           `json:"key,omitempty"`
	Cause        string           `json:"cause,omitempty"`
}

type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"` // microseconds
	Dur  *float64    `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  int32       `json:"tid"`
	S    string      `json:"s,omitempty"` // instant-event scope
	Args *chromeArgs `json:"args,omitempty"`
}

const chromePID = 1

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace renders root spans (with their children) and pmemtrace
// device events on one timeline. Either input may be empty.
func WriteChromeTrace(w io.Writer, roots []Root, events []pmemtrace.Event) error {
	return WriteChromeTraceLanes(w, roots, events, nil)
}

// WriteChromeTraceLanes is WriteChromeTrace plus per-thread blocked-on
// lanes: each lockprof blocked interval renders as a "lockwait" complete
// event named wait:<lock> on its thread's track, so the wait sits visually
// inside the op that incurred it and the blamed holder is one click away.
func WriteChromeTraceLanes(w io.Writer, roots []Root, events []pmemtrace.Event, waits []lockprof.BlockedInterval) error {
	return WriteChromeTraceMarked(w, roots, events, waits, nil)
}

// WindowMark is one virtual-time series window boundary to overlay on the
// merged timeline (zofs-trace export -series). The spans package cannot see
// internal/series (series feeds thresholds into spans), so callers convert
// series windows to these plain marks.
type WindowMark struct {
	Index   int64
	StartNS int64
	Ops     int64
}

// TimelineMarks carries the tail-observatory overlays for the Chrome export:
// window boundaries render as global instants on the device track, worst-op
// exemplars as "exemplar"-category slices on their thread's track so the
// captured tail op stands out against the ordinary fsop lane.
type TimelineMarks struct {
	Windows   []WindowMark
	Exemplars []Exemplar
}

// WriteChromeTraceMarked is WriteChromeTraceLanes plus tail-observatory
// marks; nil marks renders identically to WriteChromeTraceLanes.
func WriteChromeTraceMarked(w io.Writer, roots []Root, events []pmemtrace.Event, waits []lockprof.BlockedInterval, marks *TimelineMarks) error {
	bw := bufio.NewWriter(w)
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n  "
		if first {
			sep = "[\n  "
			first = false
		}
		if _, err := bw.WriteString(sep); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	ordered := append([]Root(nil), roots...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].TID < ordered[j].TID
	})
	for _, r := range ordered {
		dur := usec(r.Dur)
		args := &chromeArgs{
			Comp:         map[string]int64{},
			BytesRead:    r.BytesRead,
			BytesWritten: r.BytesWritten,
			Flushes:      r.Flushes,
			Fences:       r.Fences,
			Aborted:      r.Aborted,
		}
		for i, v := range r.Comp {
			if v > 0 {
				args.Comp[Component(i).Name()] = v
			}
		}
		if len(args.Comp) == 0 {
			args.Comp = nil
		}
		if r.PathHash != 0 {
			args.PathHash = fmt.Sprintf("%016x", r.PathHash)
		}
		if r.PKey >= 0 {
			k := r.PKey
			args.PKey = &k
		}
		if err := emit(chromeEvent{
			Name: r.Op, Cat: "fsop", Ph: "X",
			TS: usec(r.Start), Dur: &dur,
			PID: chromePID, TID: int32(r.TID), Args: args,
		}); err != nil {
			return err
		}
		for _, ch := range r.Children {
			ce := chromeEvent{
				Name: ch.Name, Cat: "span", PID: chromePID, TID: int32(r.TID),
			}
			if ch.Detail != "" {
				ce.Args = &chromeArgs{Detail: ch.Detail}
			}
			if ch.Start < 0 {
				// Unplaced annotation (e.g. the violation that aborted the
				// op): an instant at the root's end.
				ce.Ph, ce.S, ce.TS = "i", "t", usec(r.Start+r.Dur)
			} else {
				d := usec(ch.Dur)
				ce.Ph, ce.TS, ce.Dur = "X", usec(ch.Start), &d
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}

	lanes := append([]lockprof.BlockedInterval(nil), waits...)
	sort.SliceStable(lanes, func(i, j int) bool {
		if lanes[i].StartNS != lanes[j].StartNS {
			return lanes[i].StartNS < lanes[j].StartNS
		}
		return lanes[i].TID < lanes[j].TID
	})
	for _, b := range lanes {
		d := usec(b.DurNS)
		if err := emit(chromeEvent{
			Name: "wait:" + b.Lock, Cat: "lockwait", Ph: "X",
			TS: usec(b.StartNS), Dur: &d,
			PID: chromePID, TID: int32(b.TID),
			Args: &chromeArgs{Detail: fmt.Sprintf("blocked by tid %d", b.HolderTID)},
		}); err != nil {
			return err
		}
	}

	if marks != nil {
		wm := append([]WindowMark(nil), marks.Windows...)
		sort.SliceStable(wm, func(i, j int) bool { return wm[i].StartNS < wm[j].StartNS })
		for _, m := range wm {
			if err := emit(chromeEvent{
				Name: fmt.Sprintf("window %d", m.Index), Cat: "series", Ph: "i",
				TS: usec(m.StartNS), PID: chromePID, TID: 0, S: "g",
				Args: &chromeArgs{Detail: fmt.Sprintf("%d ops", m.Ops)},
			}); err != nil {
				return err
			}
		}
		exs := append([]Exemplar(nil), marks.Exemplars...)
		sort.SliceStable(exs, func(i, j int) bool {
			if exs[i].Root.Start != exs[j].Root.Start {
				return exs[i].Root.Start < exs[j].Root.Start
			}
			return exs[i].Root.TID < exs[j].Root.TID
		})
		for _, e := range exs {
			d := usec(e.Root.Dur)
			args := &chromeArgs{Comp: map[string]int64{}}
			for i, v := range e.Root.Comp {
				if v > 0 {
					args.Comp[Component(i).Name()] = v
				}
			}
			if len(args.Comp) == 0 {
				args.Comp = nil
			}
			args.Detail = fmt.Sprintf("threshold %d ns, %d blamed locks, %d device events",
				e.ThresholdNS, len(e.Locks), len(e.Events))
			if err := emit(chromeEvent{
				Name: "worst:" + e.Root.Op, Cat: "exemplar", Ph: "X",
				TS: usec(e.Root.Start), Dur: &d,
				PID: chromePID, TID: int32(e.Root.TID), Args: args,
			}); err != nil {
				return err
			}
		}
	}

	for _, ev := range events {
		tid := ev.TID
		if tid < 0 {
			tid = 0
		}
		ce := chromeEvent{
			Name: ev.Kind.String(), Cat: "nvm", Ph: "i",
			TS: usec(ev.TS), PID: chromePID, TID: tid, S: "t",
			Args: &chromeArgs{Seq: ev.Seq},
		}
		switch ev.Kind {
		case pmemtrace.KindFence, pmemtrace.KindCrash, pmemtrace.KindCrashInject:
			// No meaningful range.
		case pmemtrace.KindViolation:
			page := ev.Off
			ce.Args.Off = &page
			ce.Args.Cause = ev.Cause
			ce.S = "g" // faults are worth seeing across all tracks
		default:
			off, ln := ev.Off, ev.Len
			ce.Args.Off = &off
			ce.Args.Len = &ln
		}
		if ev.Key >= 0 {
			k := ev.Key
			ce.Args.Key = &k
		}
		if err := emit(ce); err != nil {
			return err
		}
	}

	if first {
		if _, err := bw.WriteString("[]\n"); err != nil {
			return err
		}
		return bw.Flush()
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
