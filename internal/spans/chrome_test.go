package spans

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"zofs/internal/pmemtrace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedMerge is a deterministic root/device-event pair: two op spans with
// children (one aborted by an MPK violation), interleaved device events.
func fixedMerge() ([]Root, []pmemtrace.Event) {
	roots := []Root{
		{
			Op: "create", TID: 1, PathHash: PathHash("/hot/f-000001"), PKey: 3,
			Start: 1000, Dur: 900,
			Comp:         Breakdown{CompMedia: 400, CompFlush: 100, CompLock: 50, CompOther: 350},
			BytesWritten: 4096, Flushes: 2, Fences: 1,
			Children: []Child{
				{Name: "fslib.dispatch", Start: 1010, Dur: 30},
				{Name: "kernfs.coffer_enlarge", Start: 1200, Dur: 250},
			},
		},
		{
			Op: "write", TID: 2, PKey: -1,
			Start: 1500, Dur: 300,
			Comp:    Breakdown{CompMedia: 120, CompPKRU: 24, CompOther: 156},
			Aborted: true,
			Children: []Child{
				{Name: "mpk_violation", Start: -1, Detail: "PKRU write-disable"},
			},
		},
	}
	events := []pmemtrace.Event{
		{Seq: 1, TS: 1250, Kind: pmemtrace.KindNTStore, Off: 8192, Len: 256, TID: 1, Key: 3},
		{Seq: 2, TS: 1300, Kind: pmemtrace.KindFlush, Off: 8192, Len: 64, TID: 1, Key: 3},
		{Seq: 3, TS: 1350, Kind: pmemtrace.KindFence, TID: 1, Key: -1},
		{Seq: 4, TS: 1700, Kind: pmemtrace.KindViolation, Off: 17, TID: 2, Key: 5, Cause: "PKRU write-disable"},
	}
	return roots, events
}

// TestMergedChromeGolden pins the merged exporter's exact bytes: stable
// field order, root spans as slices with nested children, device events as
// instants on the same timeline.
func TestMergedChromeGolden(t *testing.T) {
	roots, events := fixedMerge()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, roots, events); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("merged chrome export drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("export is not a valid JSON array: %v", err)
	}
	// 2 roots + 3 children + 4 device events.
	if len(arr) != 9 {
		t.Fatalf("exported %d events, want 9", len(arr))
	}
	cats := map[string]int{}
	for i, ev := range arr {
		for _, field := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		cats[ev["cat"].(string)]++
	}
	if cats["fsop"] != 2 || cats["span"] != 3 || cats["nvm"] != 4 {
		t.Fatalf("category counts = %v", cats)
	}
}

// TestMergedChromeEmpty: both inputs empty still yields a valid array.
func TestMergedChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var arr []any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil || len(arr) != 0 {
		t.Fatalf("empty export = %q, want empty JSON array", buf.String())
	}
}

// TestMergedChromeMarks: tail-observatory overlays render as "series"
// instants and "exemplar" slices; nil marks is byte-identical to the
// lanes writer (the golden file stays authoritative for that path).
func TestMergedChromeMarks(t *testing.T) {
	roots, events := fixedMerge()

	var lanes, markedNil bytes.Buffer
	if err := WriteChromeTraceLanes(&lanes, roots, events, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceMarked(&markedNil, roots, events, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lanes.Bytes(), markedNil.Bytes()) {
		t.Fatal("nil marks changed the lanes export")
	}

	marks := &TimelineMarks{
		Windows: []WindowMark{
			{Index: 1, StartNS: 1000, Ops: 2},
			{Index: 0, StartNS: 0, Ops: 0},
		},
		Exemplars: []Exemplar{
			{Root: roots[0], ThresholdNS: 800},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceMarked(&buf, roots, events, nil, marks); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("marked export is not a valid JSON array: %v", err)
	}
	cats := map[string]int{}
	var sawWorst, sawWindow bool
	for _, ev := range arr {
		cats[ev["cat"].(string)]++
		name := ev["name"].(string)
		if name == "worst:create" {
			sawWorst = true
		}
		if name == "window 0" {
			sawWindow = true
		}
	}
	if cats["series"] != 2 || cats["exemplar"] != 1 {
		t.Fatalf("mark category counts = %v", cats)
	}
	if !sawWorst || !sawWindow {
		t.Fatalf("missing mark events (worst=%v window=%v)", sawWorst, sawWindow)
	}
}

// TestMergedChromeDeterministic: unsorted input roots render identically to
// sorted ones (the exporter orders by start time, then TID).
func TestMergedChromeDeterministic(t *testing.T) {
	roots, events := fixedMerge()
	rev := []Root{roots[1], roots[0]}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, roots, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, rev, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export depends on input root order")
	}
}
