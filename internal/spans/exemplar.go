package spans

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"zofs/internal/lockprof"
	"zofs/internal/pmemtrace"
	"zofs/internal/telemetry"
)

// Worst-op exemplar capture: the tail observatory's answer to "show me the
// actual op behind that p999". When a root span folds with a duration above
// the op kind's adaptive threshold (the trailing-window p99 pushed in by
// internal/series; absent a threshold the worst-K floor alone gates), the
// collector retains the full span tree together with the evidence needed to
// explain it — the exact-sum component attribution it already carries, the
// blamed contended-lock intervals from the lock profiler, and the
// surrounding pmemtrace device-event window. Retention is a bounded worst-K
// ring per op kind, so memory stays fixed no matter how long the run.

// maxExemplarEvents bounds the pmemtrace event window attached to one
// exemplar; overflow sets EventsTruncated rather than growing unboundedly.
const maxExemplarEvents = 256

// DefaultExemplarK is the per-op worst-K ring size used when Config asks
// for exemplars without picking a K.
const DefaultExemplarK = 8

// Exemplar is one retained worst-case operation: the root span tree plus
// the cross-layer evidence gathered at capture time.
type Exemplar struct {
	Root Root `json:"root"`
	// ThresholdNS is the adaptive gate in force when the op was captured
	// (0 = pure worst-K capture, no series feed).
	ThresholdNS int64 `json:"threshold_ns,omitempty"`
	// Locks are the lock profiler's blocked intervals for the op's thread
	// overlapping the span — the blamed contended locks, holder TIDs
	// included. Nil when no lock profiler was collecting.
	Locks []lockprof.BlockedInterval `json:"locks,omitempty"`
	// Events is the pmemtrace device-event window overlapping the span
	// (all threads: concurrent traffic is usually the explanation). Nil
	// when no flight recorder was collecting.
	Events          []pmemtrace.Event `json:"events,omitempty"`
	EventsTruncated bool              `json:"events_truncated,omitempty"`
}

// exemplars is the collector's per-op worst-K state.
type exemplars struct {
	k         int
	threshold [telemetry.NumOps]atomic.Int64
	mu        sync.Mutex
	// worst[op] is sorted ascending by Root.Dur; worst[op][0] is the floor.
	worst      [telemetry.NumOps][]Exemplar
	candidates atomic.Int64
	captured   atomic.Int64
}

// SetExemplarThreshold installs op's adaptive capture threshold (virtual
// ns). internal/series pushes the trailing-window p99 here; 0 restores pure
// worst-K capture.
func (c *Collector) SetExemplarThreshold(op telemetry.Op, ns int64) {
	if c == nil || c.ex == nil {
		return
	}
	c.ex.threshold[op].Store(ns)
}

// ExemplarThreshold returns op's current capture threshold.
func (c *Collector) ExemplarThreshold(op telemetry.Op) int64 {
	if c == nil || c.ex == nil {
		return 0
	}
	return c.ex.threshold[op].Load()
}

// maybeCapture retains r as an exemplar if it clears the op's adaptive
// threshold and beats the worst-K floor. Called from fold after the residual
// is computed, so the exact-sum attribution invariant already holds on every
// captured root. The threshold gate is bucket-granular: the pushed threshold
// is the bucket upper bound of the trailing p99, so an op landing in the same
// histogram bucket as the p99 must qualify — comparing raw durations against
// it would reject the very tail ops the threshold describes.
func (c *Collector) maybeCapture(op telemetry.Op, r *Root) {
	ex := c.ex
	thr := ex.threshold[op].Load()
	if thr > 0 && telemetry.BucketUpper(telemetry.BucketOf(r.Dur)) < thr {
		return
	}
	ex.candidates.Add(1)
	ex.mu.Lock()
	lst := ex.worst[op]
	if len(lst) >= ex.k && r.Dur <= lst[0].Root.Dur {
		ex.mu.Unlock()
		return
	}
	e := Exemplar{Root: *r, ThresholdNS: thr}
	// Evidence gathering under exMu is fine: both sources take only their
	// own leaf locks, and captures are rare once the floor rises.
	if reg := lockprof.Active(); reg != nil {
		e.Locks = reg.BlockedIn(r.TID, r.Start, r.Start+r.Dur)
	}
	if tr := pmemtrace.Active(); tr != nil {
		e.Events, e.EventsTruncated = tr.EventsBetween(r.Start, r.Start+r.Dur, maxExemplarEvents)
	}
	at := sort.Search(len(lst), func(i int) bool { return lst[i].Root.Dur > e.Root.Dur })
	lst = append(lst, Exemplar{})
	copy(lst[at+1:], lst[at:])
	lst[at] = e
	if len(lst) > ex.k {
		lst = lst[1:]
	}
	ex.worst[op] = lst
	ex.mu.Unlock()
	ex.captured.Add(1)
}

// Exemplars copies out every retained exemplar, op kinds in dispatch order,
// worst first within each kind.
func (c *Collector) Exemplars() []Exemplar {
	if c == nil || c.ex == nil {
		return nil
	}
	c.ex.mu.Lock()
	defer c.ex.mu.Unlock()
	var out []Exemplar
	for op := range c.ex.worst {
		lst := c.ex.worst[op]
		for i := len(lst) - 1; i >= 0; i-- {
			out = append(out, lst[i])
		}
	}
	return out
}

// ExemplarsCaptured reports how many exemplars were retained (including ones
// later displaced from a worst-K ring).
func (c *Collector) ExemplarsCaptured() int64 {
	if c == nil || c.ex == nil {
		return 0
	}
	return c.ex.captured.Load()
}

// resetExemplars clears the rings and thresholds (Collector.Reset).
func (c *Collector) resetExemplars() {
	if c.ex == nil {
		return
	}
	c.ex.mu.Lock()
	for i := range c.ex.worst {
		c.ex.worst[i] = nil
	}
	c.ex.mu.Unlock()
	for i := range c.ex.threshold {
		c.ex.threshold[i].Store(0)
	}
	c.ex.candidates.Store(0)
	c.ex.captured.Store(0)
}

// WriteExemplarsJSONL renders every retained exemplar as one JSON line.
func (c *Collector) WriteExemplarsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range c.Exemplars() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadExemplarsJSONL parses an exemplars.jsonl stream.
func ReadExemplarsJSONL(r io.Reader) ([]Exemplar, error) {
	var out []Exemplar
	dec := json.NewDecoder(r)
	for {
		var e Exemplar
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, e)
	}
}
