package spans

import (
	"bytes"
	"strings"
	"testing"

	"zofs/internal/mpk"
	"zofs/internal/telemetry"
)

// TestRootLifecycle covers the core span state machine: open, bill, close,
// residual attribution.
func TestRootLifecycle(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 7)

	c.Begin(telemetry.OpWrite, PathHash("/a/b"), 1000)
	if !c.InRoot() {
		t.Fatal("InRoot false inside a root span")
	}
	c.Bill(CompMedia, 300)
	c.Bill(CompLock, 100)
	c.billNVM(CompFlush, 50, 0, 4096, 1, 1)
	c.Child("kernfs.coffer_enlarge", 1200, 40)
	c.SetKey(5)
	c.End(2000)

	if c.InRoot() {
		t.Fatal("InRoot true after End")
	}
	if col.OpenRoots() != 0 || col.Finished() != 1 {
		t.Fatalf("open=%d finished=%d, want 0/1", col.OpenRoots(), col.Finished())
	}
	roots := col.Roots()
	if len(roots) != 1 {
		t.Fatalf("ring holds %d roots, want 1", len(roots))
	}
	r := roots[0]
	if r.Op != "write" || r.TID != 7 || r.Dur != 1000 || r.PKey != 5 {
		t.Fatalf("root = %+v", r)
	}
	// Residual: 1000 total − 300 media − 100 lock − 50 flush = 550 other.
	if r.Comp[CompOther] != 550 {
		t.Fatalf("CompOther = %d, want 550", r.Comp[CompOther])
	}
	var sum int64
	for _, v := range r.Comp {
		sum += v
	}
	if sum != r.Dur {
		t.Fatalf("components sum to %d, duration is %d", sum, r.Dur)
	}
	if r.BytesWritten != 4096 || r.Flushes != 1 || r.Fences != 1 {
		t.Fatalf("nvm attribution = %+v", r)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "kernfs.coffer_enlarge" {
		t.Fatalf("children = %+v", r.Children)
	}
}

// TestNestedBegin: an op implemented via another traced op keeps one root.
func TestNestedBegin(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 1)
	c.Begin(telemetry.OpRename, 0, 0)
	c.Begin(telemetry.OpStat, 0, 10) // inner lookup
	c.Bill(CompMedia, 5)
	c.End(20) // closes only the inner level
	if !c.InRoot() {
		t.Fatal("outer root closed by inner End")
	}
	c.End(100)
	if col.Finished() != 1 {
		t.Fatalf("finished = %d, want 1 (nested Begin must not fold twice)", col.Finished())
	}
	r := col.Roots()[0]
	if r.Op != "rename" || r.Dur != 100 || r.Comp[CompMedia] != 5 {
		t.Fatalf("root = %+v", r)
	}
}

// TestDoubleCloseAndOverbilling: unmatched End and billing past the clock
// delta are counted, never silently absorbed.
func TestDoubleCloseAndOverbilling(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 1)
	c.End(5)
	if col.DoubleCloses() != 1 {
		t.Fatalf("double closes = %d, want 1", col.DoubleCloses())
	}

	c.Begin(telemetry.OpRead, 0, 0)
	c.Bill(CompMedia, 500) // more than the 100ns the span will last
	c.End(100)
	snap := col.Snapshot()
	if snap.OverBilledNS != 400 {
		t.Fatalf("over-billed = %d ns, want 400", snap.OverBilledNS)
	}
	if other := snap.Ops["read"].Comp["other"].SumNS; other != 0 {
		t.Fatalf("negative residual leaked into other: %d", other)
	}
}

// TestAbandonAndOutsideBilling: Abandon closes without folding; billing and
// annotations outside any root are dropped.
func TestAbandonAndOutsideBilling(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 1)
	c.Begin(telemetry.OpWrite, 0, 0)
	c.Abandon()
	if col.OpenRoots() != 0 || col.Finished() != 0 {
		t.Fatalf("open=%d finished=%d after Abandon, want 0/0", col.OpenRoots(), col.Finished())
	}
	snap := col.Snapshot()
	if snap.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", snap.Abandoned)
	}

	c.Bill(CompMedia, 100) // ambient cost, no op to belong to
	c.Child("stray", 0, 10)
	c.Begin(telemetry.OpRead, 0, 0)
	c.End(50)
	if got := col.Roots()[0].Comp[CompMedia]; got != 0 {
		t.Fatalf("ambient billing leaked into the next span: %d ns", got)
	}
}

// TestNilContext: the nil *ThreadCtx is a full no-op context.
func TestNilContext(t *testing.T) {
	var c *ThreadCtx
	c.Begin(telemetry.OpRead, 0, 0)
	c.Bill(CompMedia, 5)
	c.BillLockWait(5)
	c.Child("x", 0, 1)
	c.LockContend(1, 5)
	c.DCacheHit()
	c.DCacheMiss()
	c.MarkAborted()
	c.SetKey(1)
	c.ObserveViolation(mpk.Violation{})
	c.End(10)
	c.Abandon()
	if c.InRoot() {
		t.Fatal("nil context reports InRoot")
	}
	if NewThreadCtx(nil, 1) != nil {
		t.Fatal("NewThreadCtx(nil) must return nil")
	}
}

// TestViolationAborts: an MPK violation marks the span aborted and attaches
// the cause as an unplaced child annotation.
func TestViolationAborts(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 3)
	c.Begin(telemetry.OpWrite, PathHash("/x"), 0)
	c.ObserveViolation(mpk.Violation{Cause: "PKRU write-disable"})
	c.End(80)
	snap := col.Snapshot()
	if snap.Aborted != 1 || snap.Ops["write"].Aborted != 1 {
		t.Fatalf("aborted = %d / %d, want 1/1", snap.Aborted, snap.Ops["write"].Aborted)
	}
	r := col.Roots()[0]
	if !r.Aborted || len(r.Children) != 1 || r.Children[0].Name != "mpk_violation" ||
		r.Children[0].Start >= 0 || r.Children[0].Detail != "PKRU write-disable" {
		t.Fatalf("root = %+v", r)
	}
}

// TestJSONLRoundTrip: every folded root reaches the sink and reloads
// identically, including the self-describing component map.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	col := NewCollector(Config{JSONL: &buf})
	c := NewThreadCtx(col, 2)
	c.Begin(telemetry.OpCreate, PathHash("/f"), 100)
	c.Bill(CompMedia, 40)
	c.Child("fslib.dispatch", 110, 20)
	c.End(200)
	c.Begin(telemetry.OpStat, 0, 300)
	c.End(350)
	if err := col.FlushSink(); err != nil {
		t.Fatal(err)
	}

	roots, err := ReadRootsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("reloaded %d roots, want 2", len(roots))
	}
	r := roots[0]
	if r.Op != "create" || r.Dur != 100 || r.Comp[CompMedia] != 40 || r.Comp[CompOther] != 60 {
		t.Fatalf("root 0 = %+v", r)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "fslib.dispatch" {
		t.Fatalf("root 0 children = %+v", r.Children)
	}
	if roots[1].Op != "stat" || roots[1].PathHash != 0 {
		t.Fatalf("root 1 = %+v", roots[1])
	}
}

// TestSnapshotDiff: Diff isolates one window's spans from a running total.
func TestSnapshotDiff(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 1)
	c.Begin(telemetry.OpRead, 0, 0)
	c.Bill(CompMedia, 30)
	c.End(100)
	before := col.Snapshot()
	c.Begin(telemetry.OpRead, 0, 200)
	c.Bill(CompMedia, 70)
	c.End(500)
	d := col.Snapshot().Diff(before)
	if got := d.Ops["read"]; got.Count != 1 || got.SumNS != 300 || got.Comp["media"].SumNS != 70 {
		t.Fatalf("diff = %+v", got)
	}
}

// TestContentionTable: waits aggregate per lock with max tracking, and the
// table is bounded.
func TestContentionTable(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 1)
	c.LockContend(42, 100)
	c.LockContend(42, 300)
	c.LockContend(-7, 50) // dir bucket
	c.LockContend(1, 0)   // uncontended: ignored
	snap := col.Snapshot()
	if len(snap.Contention) != 2 {
		t.Fatalf("contention rows = %d, want 2", len(snap.Contention))
	}
	top := snap.Contention[0]
	if top.Lock != "inode/42" || top.Waits != 2 || top.WaitNS != 400 || top.MaxWaitNS != 300 {
		t.Fatalf("top contention = %+v", top)
	}
	if snap.Contention[1].Lock != "dirbucket/7" {
		t.Fatalf("bucket lock renders as %q", snap.Contention[1].Lock)
	}
}

// TestOpenMetricsValidator exercises both directions: the writer's output
// passes, and the validator rejects malformed or inconsistent documents.
func TestOpenMetricsValidator(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 1)
	for i := 0; i < 5; i++ {
		c.Begin(telemetry.OpWrite, 0, int64(i*1000))
		c.Bill(CompMedia, 400)
		c.DCacheHit()
		c.LockContend(9, 25)
		c.End(int64(i*1000) + 700)
	}
	var out strings.Builder
	if err := WriteOpenMetrics(&out, col.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateOpenMetrics(strings.NewReader(out.String())); err != nil {
		t.Fatalf("writer output rejected: %v", err)
	}

	bad := []struct {
		name, doc string
	}{
		{"missing EOF", "# TYPE x counter\nx_total 1\n"},
		{"malformed sample", "not a sample line\n# EOF\n"},
		{"content after EOF", "# EOF\nx 1\n"},
		{"bad label", "x{9bad=\"v\"} 1\n# EOF\n"},
		{"shares don't sum", "zofs_ops_total{op=\"write\"} 5\n" +
			"zofs_op_latency_ns_sum{op=\"write\"} 3500\n" +
			"zofs_op_component_share{op=\"write\",component=\"media\"} 57.14\n" +
			"# EOF\n"},
	}
	for _, tc := range bad {
		if err := ValidateOpenMetrics(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: validator accepted a bad document", tc.name)
		}
	}
}

// TestEnableDisable: the process-wide switch hands threads a context exactly
// when a collector is installed.
func TestEnableDisable(t *testing.T) {
	prev := Active()
	defer Install(prev)
	Disable()
	if Active() != nil {
		t.Fatal("Active() non-nil after Disable")
	}
	col := Enable(Config{})
	if Active() != col {
		t.Fatal("Active() does not return the enabled collector")
	}
	Install(nil)
	if Active() != nil {
		t.Fatal("Install(nil) did not disable")
	}
}

// TestReset zeroes aggregates so the shell's "spans reset" starts clean.
func TestReset(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 1)
	c.Begin(telemetry.OpRead, 0, 0)
	c.LockContend(3, 10)
	c.DCacheMiss()
	c.End(50)
	col.Reset()
	snap := col.Snapshot()
	if snap.Finished != 0 || snap.DcacheMisses != 0 || len(snap.Ops) != 0 || len(snap.Contention) != 0 {
		t.Fatalf("snapshot after Reset = %+v", snap)
	}
	if len(col.Roots()) != 0 {
		t.Fatal("ring survives Reset")
	}
}

// BenchmarkRootSpan measures the host-side cost of one fully-billed root
// span (open, four component bills, one child, close + fold).
func BenchmarkRootSpan(b *testing.B) {
	col := NewCollector(Config{RingCap: -1})
	c := NewThreadCtx(col, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := int64(i) * 1000
		c.Begin(telemetry.OpWrite, 0x9e3779b9, now)
		c.Bill(CompMedia, 400)
		c.Bill(CompFlush, 80)
		c.Bill(CompLock, 20)
		c.Bill(CompPKRU, 24)
		c.Child("kernfs.coffer_enlarge", now+100, 50)
		c.End(now + 900)
	}
}

// BenchmarkDisabledSpan measures the disabled path every instrumented layer
// pays when no collector is installed: a nil-context method call. This is
// the "near-free when off" budget — a handful of predicted branches.
func BenchmarkDisabledSpan(b *testing.B) {
	var c *ThreadCtx // what FromClock returns with spans off
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Begin(telemetry.OpWrite, 0, 0)
		c.Bill(CompMedia, 400)
		c.Child("kernfs.coffer_enlarge", 0, 50)
		c.End(900)
	}
}

// TestChildOverflowCounted: the per-span child cap drops loudly.
func TestChildOverflowCounted(t *testing.T) {
	col := NewCollector(Config{})
	c := NewThreadCtx(col, 1)
	c.Begin(telemetry.OpReadDir, 0, 0)
	for i := 0; i < maxChildren+10; i++ {
		c.Child("kernfs.call", int64(i), 1)
	}
	c.End(1000)
	if got := col.Snapshot().DroppedChildren; got != 10 {
		t.Fatalf("dropped children = %d, want 10", got)
	}
	if n := len(col.Roots()[0].Children); n != maxChildren {
		t.Fatalf("kept %d children, want %d", n, maxChildren)
	}
}
