package spans

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"zofs/internal/byteflow"
	"zofs/internal/lockprof"
	"zofs/internal/telemetry"
)

// CompStat is the folded attribution of one component within one op kind.
type CompStat struct {
	SumNS int64   `json:"sum_ns"`
	Pct   float64 `json:"pct"` // share of the op kind's total latency
	P50NS int64   `json:"p50_ns"`
	P95NS int64   `json:"p95_ns"`
	P99NS int64   `json:"p99_ns"`

	Buckets []int64 `json:"-"` // kept for Diff; not serialized
}

// OpBreakdown is the folded latency decomposition of one op kind.
type OpBreakdown struct {
	Count   int64 `json:"count"`
	Aborted int64 `json:"aborted,omitempty"`
	SumNS   int64 `json:"sum_ns"`
	MeanNS  int64 `json:"mean_ns"`
	P50NS   int64 `json:"p50_ns"`
	P95NS   int64 `json:"p95_ns"`
	P99NS   int64 `json:"p99_ns"`

	BytesRead    int64 `json:"nvm_bytes_read,omitempty"`
	BytesWritten int64 `json:"nvm_bytes_written,omitempty"`
	Flushes      int64 `json:"flushes,omitempty"`
	Fences       int64 `json:"fences,omitempty"`

	Comp map[string]CompStat `json:"comp"`

	Buckets []int64 `json:"-"` // kept for Diff; not serialized
}

// LockStat is one row of the lock-contention table.
type LockStat struct {
	Lock      string `json:"lock"`
	Waits     int64  `json:"waits"`
	WaitNS    int64  `json:"wait_ns"`
	MaxWaitNS int64  `json:"max_wait_ns"`
}

// Snapshot is a point-in-time copy of a Collector's aggregates.
type Snapshot struct {
	Started         int64 `json:"started"`
	Finished        int64 `json:"finished"`
	Open            int64 `json:"open"` // gauge: in-flight roots at snapshot time
	Aborted         int64 `json:"aborted"`
	Abandoned       int64 `json:"abandoned"`
	DoubleCloses    int64 `json:"double_closes"`
	DroppedChildren int64 `json:"dropped_children,omitempty"`
	OverBilledNS    int64 `json:"over_billed_ns,omitempty"`
	DcacheHits      int64 `json:"dcache_hits"`
	DcacheMisses    int64 `json:"dcache_misses"`

	Ops map[string]OpBreakdown `json:"ops"`

	// CriticalPath is each component's share (percent) of total attributed
	// time across all op kinds.
	CriticalPath map[string]float64 `json:"critical_path"`

	Contention        []LockStat `json:"contention,omitempty"`
	ContentionDropped int64      `json:"contention_dropped,omitempty"`

	// Flow is the device byte-flow ledger at snapshot time and Space the
	// per-coffer space rows. The collector doesn't know the device, so both
	// are attached by the publisher (see OnSnapshot) or by harnesses; nil
	// when byte-flow accounting is disabled.
	Flow  *byteflow.Flow         `json:"flow,omitempty"`
	Space []byteflow.CofferSpace `json:"space,omitempty"`

	// Locks is the named-lock contention panel (per-lock waits, wait-for
	// edges, order inversions), attached by the publisher via OnLockReport
	// when a lockprof registry is collecting; nil otherwise.
	Locks *lockprof.Report `json:"locks,omitempty"`

	// LockWaitNS is the collector-level total of every virtual lock wait,
	// inside or outside spans — comparable 1:1 with Locks.WaitNS.
	LockWaitNS int64 `json:"lock_wait_ns,omitempty"`
}

// Snapshot copies the collector's aggregates into a Snapshot.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Ops:          map[string]OpBreakdown{},
		CriticalPath: map[string]float64{},
	}
	if c == nil {
		return s
	}
	s.Started = c.started.Load()
	s.Finished = c.finished.Load()
	s.Open = c.open.Load()
	s.LockWaitNS = c.lockWaitNS.Load()
	s.Aborted = c.aborted.Load()
	s.Abandoned = c.abandoned.Load()
	s.DoubleCloses = c.doubleClose.Load()
	s.DroppedChildren = c.childDrops.Load()
	s.OverBilledNS = c.overBilled.Load()
	s.DcacheHits = c.dcHits.Load()
	s.DcacheMisses = c.dcMisses.Load()

	for i := range c.ops {
		a := &c.ops[i]
		count := a.count.Load()
		if count <= 0 {
			continue
		}
		b := OpBreakdown{
			Count:        count,
			Aborted:      a.aborted.Load(),
			SumNS:        a.sumNS.Load(),
			BytesRead:    a.bytesRead.Load(),
			BytesWritten: a.bytesWritten.Load(),
			Flushes:      a.flushes.Load(),
			Fences:       a.fences.Load(),
			Comp:         map[string]CompStat{},
		}
		_, _, b.Buckets = a.total.Snapshot()
		for j := Component(0); j < NumComponents; j++ {
			cs := CompStat{SumNS: a.compSum[j].Load()}
			_, _, cs.Buckets = a.comp[j].Snapshot()
			b.Comp[j.Name()] = cs
		}
		s.Ops[telemetry.Op(i).Name()] = b
	}

	c.contMu.Lock()
	for key, e := range c.cont {
		s.Contention = append(s.Contention, LockStat{
			Lock: lockName(key), Waits: e.waits, WaitNS: e.waitNS, MaxWaitNS: e.maxNS,
		})
	}
	s.ContentionDropped = c.contDropped
	c.contMu.Unlock()

	s.finalize()
	return s
}

// finalize derives quantiles, percentages and the critical-path summary from
// counts, sums and bucket vectors; Diff reuses it after subtracting.
func (s *Snapshot) finalize() {
	totalByComp := map[string]int64{}
	var totalNS int64
	for name, b := range s.Ops {
		b.MeanNS = b.SumNS / b.Count
		b.P50NS = telemetry.Quantile(b.Buckets, b.Count, 0.50)
		b.P95NS = telemetry.Quantile(b.Buckets, b.Count, 0.95)
		b.P99NS = telemetry.Quantile(b.Buckets, b.Count, 0.99)
		for cn, cs := range b.Comp {
			if b.SumNS > 0 {
				cs.Pct = float64(cs.SumNS) / float64(b.SumNS) * 100
			}
			cs.P50NS = telemetry.Quantile(cs.Buckets, b.Count, 0.50)
			cs.P95NS = telemetry.Quantile(cs.Buckets, b.Count, 0.95)
			cs.P99NS = telemetry.Quantile(cs.Buckets, b.Count, 0.99)
			b.Comp[cn] = cs
			totalByComp[cn] += cs.SumNS
		}
		totalNS += b.SumNS
		s.Ops[name] = b
	}
	s.CriticalPath = map[string]float64{}
	if totalNS > 0 {
		for cn, v := range totalByComp {
			s.CriticalPath[cn] = float64(v) / float64(totalNS) * 100
		}
	}
	sort.Slice(s.Contention, func(i, j int) bool {
		if s.Contention[i].WaitNS != s.Contention[j].WaitNS {
			return s.Contention[i].WaitNS > s.Contention[j].WaitNS
		}
		return s.Contention[i].Lock < s.Contention[j].Lock
	})
}

// Diff returns the spans folded between prev and s (s must be the later
// snapshot of the same collector). Open is a gauge and keeps the current
// value; ops whose count did not grow are omitted.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Started:           s.Started - prev.Started,
		Finished:          s.Finished - prev.Finished,
		Open:              s.Open,
		Aborted:           s.Aborted - prev.Aborted,
		Abandoned:         s.Abandoned - prev.Abandoned,
		DoubleCloses:      s.DoubleCloses - prev.DoubleCloses,
		DroppedChildren:   s.DroppedChildren - prev.DroppedChildren,
		OverBilledNS:      s.OverBilledNS - prev.OverBilledNS,
		DcacheHits:        s.DcacheHits - prev.DcacheHits,
		DcacheMisses:      s.DcacheMisses - prev.DcacheMisses,
		ContentionDropped: s.ContentionDropped - prev.ContentionDropped,
		Ops:               map[string]OpBreakdown{},
		Space:             s.Space, // space rows are a gauge, keep current
	}
	if s.Flow != nil {
		d.Flow = s.Flow.Sub(prev.Flow)
	}
	for name, cur := range s.Ops {
		old := prev.Ops[name] // zero value when absent
		count := cur.Count - old.Count
		if count <= 0 {
			continue
		}
		b := OpBreakdown{
			Count:        count,
			Aborted:      cur.Aborted - old.Aborted,
			SumNS:        cur.SumNS - old.SumNS,
			BytesRead:    cur.BytesRead - old.BytesRead,
			BytesWritten: cur.BytesWritten - old.BytesWritten,
			Flushes:      cur.Flushes - old.Flushes,
			Fences:       cur.Fences - old.Fences,
			Comp:         map[string]CompStat{},
			Buckets:      subBuckets(cur.Buckets, old.Buckets),
		}
		for cn, cs := range cur.Comp {
			ocs := old.Comp[cn]
			b.Comp[cn] = CompStat{
				SumNS:   cs.SumNS - ocs.SumNS,
				Buckets: subBuckets(cs.Buckets, ocs.Buckets),
			}
		}
		d.Ops[name] = b
	}
	contPrev := map[string]LockStat{}
	for _, l := range prev.Contention {
		contPrev[l.Lock] = l
	}
	for _, l := range s.Contention {
		o := contPrev[l.Lock]
		if w := l.WaitNS - o.WaitNS; w > 0 {
			d.Contention = append(d.Contention, LockStat{
				Lock: l.Lock, Waits: l.Waits - o.Waits, WaitNS: w, MaxWaitNS: l.MaxWaitNS,
			})
		}
	}
	d.finalize()
	return d
}

// subBuckets subtracts bucket vectors elementwise (nil-safe).
func subBuckets(cur, old []int64) []int64 {
	if cur == nil {
		return nil
	}
	out := make([]int64, len(cur))
	copy(out, cur)
	for i := range old {
		if i < len(out) {
			out[i] -= old[i]
		}
	}
	return out
}

// compOrder is the fixed rendering/export order of components.
func compOrder() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// opOrder returns the snapshot's op names in the canonical telemetry Op
// order (so tables read in dispatch order, not alphabetically).
func (s Snapshot) opOrder() []string {
	var out []string
	for i := 0; i < telemetry.NumOps; i++ {
		name := telemetry.Op(i).Name()
		if _, ok := s.Ops[name]; ok {
			out = append(out, name)
		}
	}
	return out
}

// WriteText renders the attribution tables in the same tabwriter style as
// the telemetry snapshot printer.
func (s Snapshot) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "spans: %d finished, %d open, %d aborted", s.Finished, s.Open, s.Aborted)
	if s.Abandoned > 0 || s.DoubleCloses > 0 {
		fmt.Fprintf(w, " [abandoned %d double-close %d]", s.Abandoned, s.DoubleCloses)
	}
	if s.OverBilledNS > 0 {
		fmt.Fprintf(w, " [OVER-BILLED %dns]", s.OverBilledNS)
	}
	if s.DcacheHits+s.DcacheMisses > 0 {
		fmt.Fprintf(w, "  dcache %d/%d hits", s.DcacheHits, s.DcacheHits+s.DcacheMisses)
	}
	fmt.Fprintln(w)
	if len(s.Ops) == 0 {
		return nil
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "op\tcount\tmean\tp50\tp95\tp99")
	for _, c := range compOrder() {
		fmt.Fprintf(tw, "\t%s%%", c.Name())
	}
	fmt.Fprintln(tw)
	for _, name := range s.opOrder() {
		b := s.Ops[name]
		fmt.Fprintf(tw, "%s\t%d\t%dns\t%dns\t%dns\t%dns", name, b.Count, b.MeanNS, b.P50NS, b.P95NS, b.P99NS)
		for _, c := range compOrder() {
			fmt.Fprintf(tw, "\t%.1f", b.Comp[c.Name()].Pct)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprint(w, "critical path:")
	for _, c := range compOrder() {
		fmt.Fprintf(w, " %s %.1f%%", c.Name(), s.CriticalPath[c.Name()])
	}
	fmt.Fprintln(w)

	if s.Flow != nil {
		f := s.Flow
		fmt.Fprintf(w, "byte flow: app %d  issued %d  media %d  WA %.2f  flushes %d  fences %d\n",
			f.App, f.Total, f.MediaBytes(), f.WA(), f.Flushes, f.Fences)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "class\tissued\tnt\tflush_lines")
		for _, c := range byteflow.Classes() {
			if f.Issued[c] == 0 && f.NT[c] == 0 && f.Lines[c] == 0 {
				continue
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", c, f.Issued[c], f.NT[c], f.Lines[c])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if len(s.Space) > 0 {
		fmt.Fprintln(w, "coffer space:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "coffer\tpath\tpages\tused\tfree_listed\tcached\textents\tfrag")
		for _, cs := range s.Space {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%.3f\n",
				cs.ID, cs.Path, cs.Pages, cs.Used, cs.FreeListed, cs.Cached, cs.Extents, cs.Frag)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(s.Contention) > 0 {
		fmt.Fprintln(w, "lock contention (by total wait):")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "lock\twaits\ttotal_wait\tmax_wait")
		for i, l := range s.Contention {
			if i >= 10 {
				fmt.Fprintf(tw, "... %d more\t\t\t\n", len(s.Contention)-i)
				break
			}
			fmt.Fprintf(tw, "%s\t%d\t%dns\t%dns\n", l.Lock, l.Waits, l.WaitNS, l.MaxWaitNS)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if s.Locks != nil {
		fmt.Fprintln(w, "named locks (lockprof):")
		if err := s.Locks.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}
