// Package spans is the causal observability layer of the stack: every
// VFS-level operation opens a root span, and the layers it crosses on the way
// down — FSLib dispatch, the directory cache, coffer locks, KernFS calls, MPK
// register writes, the NVM cost model — bill their virtual-time cost to that
// span through a per-thread span context riding on the thread's simclock
// (Clock.SetBill). Finished spans fold into per-op-kind latency breakdowns
// (media vs. flush/fence vs. lock wait vs. PKRU vs. memcpy), a lock
// contention table, an optional JSONL sink and a bounded ring for timeline
// export — the instrument behind the paper's "where does the time go"
// decompositions (§6, Figures 7–11).
//
// Attribution never advances any clock: with spans enabled or disabled the
// virtual timeline of a workload is bit-identical, so the disabled-overhead
// budget asserted by the `spans` gate experiment is exact. The nil
// *ThreadCtx is a valid no-op context, mirroring telemetry's nil *Recorder.
package spans

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"zofs/internal/mpk"
	"zofs/internal/simclock"
	"zofs/internal/telemetry"
)

// Component enumerates where an operation's virtual time is attributed.
type Component uint8

const (
	// CompMedia is NVM media time: read/write latency plus bandwidth
	// occupancy for loads, cached stores, non-temporal stores and zeroing.
	CompMedia Component = iota
	// CompFlush is persistence-ordering time: CLWB line cost, fence stalls
	// and the write-latency exposure of explicit flushes.
	CompFlush
	// CompLock is pure synchronization wait: virtual time spent blocked
	// behind other threads' lock holds (inode locks, dir bucket locks, the
	// KernFS big lock). Lock acquire/release CPU bookkeeping lands in the
	// CompOther residual, so this component equals the lock profiler's
	// per-lock wait sums exactly (the fxmark-scale cross-check).
	CompLock
	// CompPKRU is protection-domain switching: WRPKRU register writes.
	CompPKRU
	// CompMemcpy is data staging: DRAM copy costs on the copy path and
	// view-fallback staging charges.
	CompMemcpy
	// CompKernel is kernel-crossing time: syscall entry/exit charges.
	CompKernel
	// CompRetry is failure-path wait: virtual time spent in backoff sleeps
	// and re-attempt delays under the unified retry policy (lease
	// re-acquisition, allocator slot claims, quarantine-era remaps). Kept
	// apart from CompLock so contention on healthy locks and churn on
	// failure paths stay distinguishable.
	CompRetry
	// CompOther is the residual — CPU work not billed to any component
	// (hashing, dentry scans, structure walks) — computed at fold time as
	// span duration minus everything billed, so components always sum to
	// exactly the measured latency.
	CompOther
	// NumComponents is the number of attribution components.
	NumComponents
)

var compNames = [NumComponents]string{
	CompMedia:  "media",
	CompFlush:  "flush_fence",
	CompLock:   "lock_wait",
	CompPKRU:   "pkru",
	CompMemcpy: "memcpy",
	CompKernel: "kernel",
	CompRetry:  "retry",
	CompOther:  "other",
}

// Name returns the component's short name.
func (c Component) Name() string { return compNames[c] }

// Breakdown is a span's per-component virtual-nanosecond attribution. It
// marshals as a name→ns JSON object so JSONL spans are self-describing.
type Breakdown [NumComponents]int64

// MarshalJSON renders the breakdown as {"media": ns, ...}.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	m := make(map[string]int64, NumComponents)
	for i, v := range b {
		m[compNames[i]] = v
	}
	return json.Marshal(m)
}

// UnmarshalJSON parses the name→ns object form; unknown names are ignored.
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for i := range compNames {
		b[i] = m[compNames[i]]
	}
	return nil
}

// Child is one layer-boundary event inside a root span. Start is virtual
// time; a negative Start marks an unplaced annotation (e.g. the MPK
// violation that aborted the op).
type Child struct {
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Detail string `json:"detail,omitempty"`
}

// Root is one finished VFS-level operation span.
type Root struct {
	Op           string    `json:"op"`
	TID          int       `json:"tid"`
	PathHash     uint64    `json:"path_hash,omitempty"`
	PKey         int16     `json:"pkey"` // last coffer key opened; -1 = none
	Start        int64     `json:"start_ns"`
	Dur          int64     `json:"dur_ns"`
	Comp         Breakdown `json:"comp"`
	BytesRead    int64     `json:"nvm_bytes_read,omitempty"`
	BytesWritten int64     `json:"nvm_bytes_written,omitempty"`
	Flushes      int64     `json:"flushes,omitempty"`
	Fences       int64     `json:"fences,omitempty"`
	Aborted      bool      `json:"aborted,omitempty"`
	Children     []Child   `json:"children,omitempty"`
}

// maxChildren bounds per-span child annotations; overflow is counted, not
// silently dropped.
const maxChildren = 48

// ThreadCtx is the per-simulated-thread span context. Like the simclock
// Clock it rides on, it is owned by exactly one simulated thread and is not
// safe for concurrent use; all cross-thread aggregation happens in the
// Collector. The nil *ThreadCtx is a valid no-op context.
type ThreadCtx struct {
	col      *Collector
	tid      int
	depth    int32
	op       telemetry.Op
	cur      Root
	children []Child
}

// NewThreadCtx returns a context feeding the given collector, or nil when
// the collector is nil (spans disabled at thread creation).
func NewThreadCtx(col *Collector, tid int) *ThreadCtx {
	if col == nil {
		return nil
	}
	return &ThreadCtx{col: col, tid: tid}
}

// FromClock recovers the span context attached to a thread's clock, or nil.
func FromClock(clk *simclock.Clock) *ThreadCtx {
	if clk == nil {
		return nil
	}
	ctx, _ := clk.Bill().(*ThreadCtx)
	return ctx
}

// Begin opens the root span for a VFS-level operation at virtual time now.
// Nested Begins (an op implemented via another traced op) do not open a new
// root; their cost accumulates into the outermost span.
func (c *ThreadCtx) Begin(op telemetry.Op, pathHash uint64, now int64) {
	if c == nil {
		return
	}
	if c.depth++; c.depth > 1 {
		return
	}
	c.op = op
	c.cur = Root{TID: c.tid, PathHash: pathHash, PKey: -1, Start: now}
	c.children = c.children[:0]
	c.col.started.Add(1)
	c.col.open.Add(1)
}

// End closes the current root span at virtual time now and folds it into
// the collector. An End without a matching Begin counts a double-close.
func (c *ThreadCtx) End(now int64) {
	if c == nil {
		return
	}
	if c.depth == 0 {
		c.col.doubleClose.Add(1)
		return
	}
	if c.depth--; c.depth > 0 {
		return
	}
	c.cur.Dur = now - c.cur.Start
	c.col.open.Add(-1)
	c.col.fold(c.op, &c.cur, c.children)
}

// Abandon force-closes any open span without folding it (a thread discarded
// mid-operation, e.g. by a simulated crash that is not unwound through the
// instrumented layers).
func (c *ThreadCtx) Abandon() {
	if c == nil || c.depth == 0 {
		return
	}
	c.depth = 0
	c.col.open.Add(-1)
	c.col.abandoned.Add(1)
}

// InRoot reports whether a root span is currently open.
func (c *ThreadCtx) InRoot() bool { return c != nil && c.depth > 0 }

// MarkAborted flags the current span as aborted (fault-terminated).
func (c *ThreadCtx) MarkAborted() {
	if c == nil || c.depth == 0 {
		return
	}
	c.cur.Aborted = true
}

// SetKey records the protection key of the last coffer window the op opened.
func (c *ThreadCtx) SetKey(k uint8) {
	if c == nil || c.depth == 0 {
		return
	}
	c.cur.PKey = int16(k)
}

// Bill attributes ns of already-elapsed virtual time to a component of the
// active span. Billing outside any root span is dropped: ambient costs
// (mount, mkfs) have no op to belong to.
func (c *ThreadCtx) Bill(comp Component, ns int64) {
	if c == nil || c.depth == 0 || ns <= 0 {
		return
	}
	c.cur.Comp[comp] += ns
}

// BillLockWait satisfies the simclock lock-wait hook: virtual time spent
// waiting behind another thread's lock hold lands in CompLock. The
// collector-level total counts every wait, including those outside any root
// span, so it can be compared 1:1 against the lock profiler's registry
// total.
func (c *ThreadCtx) BillLockWait(ns int64) {
	if c == nil || ns <= 0 {
		return
	}
	c.col.lockWaitNS.Add(ns)
	c.Bill(CompLock, ns)
}

// billNVM attributes one device-level access: its virtual time plus the
// bytes/flush/fence counts the span reports.
func (c *ThreadCtx) billNVM(comp Component, ns, bytesRead, bytesWritten, flushes, fences int64) {
	if c == nil || c.depth == 0 {
		return
	}
	if ns > 0 {
		c.cur.Comp[comp] += ns
	}
	c.cur.BytesRead += bytesRead
	c.cur.BytesWritten += bytesWritten
	c.cur.Flushes += flushes
	c.cur.Fences += fences
}

// BillNVM bills one device access to the span context attached to clk, if
// any. It is the single hook internal/nvm calls after advancing the clock.
func BillNVM(clk *simclock.Clock, comp Component, ns, bytesRead, bytesWritten, flushes, fences int64) {
	if ctx, ok := clk.Bill().(*ThreadCtx); ok {
		ctx.billNVM(comp, ns, bytesRead, bytesWritten, flushes, fences)
	}
}

// Child records a layer-boundary child span inside the active root.
func (c *ThreadCtx) Child(name string, start, dur int64) {
	if c == nil || c.depth == 0 {
		return
	}
	c.addChild(Child{Name: name, Start: start, Dur: dur})
}

func (c *ThreadCtx) addChild(ch Child) {
	if len(c.children) >= maxChildren {
		c.col.childDrops.Add(1)
		return
	}
	c.children = append(c.children, ch)
}

// LockContend records one contended lock acquisition (wait > 0) in the
// collector's contention table. Negative keys name directory hash buckets,
// non-negative keys name inodes.
func (c *ThreadCtx) LockContend(key, waitNS int64) {
	if c == nil || waitNS <= 0 {
		return
	}
	c.col.lockContend(key, waitNS)
}

// DCacheHit counts a directory-cache hit (and a child annotation).
func (c *ThreadCtx) DCacheHit() {
	if c == nil {
		return
	}
	c.col.dcHits.Add(1)
}

// DCacheMiss counts a directory-cache miss.
func (c *ThreadCtx) DCacheMiss() {
	if c == nil {
		return
	}
	c.col.dcMisses.Add(1)
}

// ObserveViolation implements mpk.ViolationObserver: the faulting op's span
// is marked aborted with the violation attached before the panic unwinds.
func (c *ThreadCtx) ObserveViolation(v mpk.Violation) {
	if c == nil || c.depth == 0 {
		return
	}
	c.cur.Aborted = true
	c.addChild(Child{Name: "mpk_violation", Start: -1, Detail: v.Cause})
}

// ObserverFor returns the clock's span context as an mpk.ViolationObserver,
// or nil when no context is attached.
func ObserverFor(clk *simclock.Clock) mpk.ViolationObserver {
	if ctx, ok := clk.Bill().(*ThreadCtx); ok {
		return ctx
	}
	return nil
}

// PathHash is the FNV-1a 64-bit hash used for root-span path identity ("" is
// hash 0: handle-level ops carry no path).
func PathHash(p string) uint64 {
	if p == "" {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// opAgg accumulates finished spans of one op kind.
type opAgg struct {
	count   atomic.Int64
	aborted atomic.Int64
	sumNS   atomic.Int64
	total   telemetry.Hist
	comp    [NumComponents]telemetry.Hist
	compSum [NumComponents]atomic.Int64

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	flushes      atomic.Int64
	fences       atomic.Int64
}

// contEntry is one lock's contention record.
type contEntry struct {
	waits  int64
	waitNS int64
	maxNS  int64
}

// maxContLocks bounds the contention table; overflow keys are counted.
const maxContLocks = 1024

// Config parameterizes a Collector.
type Config struct {
	// RingCap bounds the finished-root ring kept for timeline export
	// (default 4096; negative disables the ring).
	RingCap int
	// JSONL, when non-nil, receives every finished root span as one JSON
	// line. The caller owns the writer; Collector.FlushSink drains buffers.
	JSONL io.Writer
	// ExemplarK, when positive, retains the K worst finished roots per op
	// kind as exemplars (full span tree + blamed locks + pmemtrace window);
	// internal/series sharpens the capture gate with trailing-window p99
	// thresholds. Zero disables exemplar capture entirely.
	ExemplarK int
}

// Collector aggregates finished spans process-wide. It is safe for
// concurrent use by many simulated threads.
type Collector struct {
	started     atomic.Int64
	finished    atomic.Int64
	open        atomic.Int64
	aborted     atomic.Int64
	abandoned   atomic.Int64
	doubleClose atomic.Int64
	childDrops  atomic.Int64
	overBilled  atomic.Int64
	dcHits      atomic.Int64
	dcMisses    atomic.Int64
	// lockWaitNS counts every virtual lock wait billed to this collector,
	// inside or outside a span — the spans side of the lockprof cross-check.
	lockWaitNS atomic.Int64

	ops [telemetry.NumOps]opAgg

	contMu      sync.Mutex
	cont        map[int64]*contEntry
	contDropped int64

	ringMu  sync.Mutex
	ring    []Root
	ringPos int
	ringCap int

	sinkMu  sync.Mutex
	sink    *bufio.Writer
	sinkErr error

	// ex holds the worst-op exemplar state; nil when Config.ExemplarK == 0,
	// which keeps the capture check in fold to one pointer load.
	ex *exemplars
}

// NewCollector returns an empty collector.
func NewCollector(cfg Config) *Collector {
	cap := cfg.RingCap
	if cap == 0 {
		cap = 4096
	}
	if cap < 0 {
		cap = 0
	}
	c := &Collector{cont: make(map[int64]*contEntry), ringCap: cap}
	if cfg.JSONL != nil {
		c.sink = bufio.NewWriterSize(cfg.JSONL, 64<<10)
	}
	if cfg.ExemplarK > 0 {
		c.ex = &exemplars{k: cfg.ExemplarK}
	}
	return c
}

// active is the process-wide collector captured by proc.NewThread at thread
// creation; nil means spans are off (the default).
var active atomic.Pointer[Collector]

// Enable installs (and returns) a fresh process-wide collector. Threads
// created afterwards attach to it.
func Enable(cfg Config) *Collector {
	c := NewCollector(cfg)
	active.Store(c)
	return c
}

// Install makes c the process-wide collector (nil is equivalent to Disable).
// Used to restore a previous collector around an instrumented-off baseline.
func Install(c *Collector) { active.Store(c) }

// Disable removes the process-wide collector; threads created afterwards
// are span-free.
func Disable() { active.Store(nil) }

// Active returns the current process-wide collector, or nil when disabled.
func Active() *Collector { return active.Load() }

// fold finalizes one root: the unbilled residual becomes CompOther (so the
// components sum to exactly the measured duration) and the span lands in the
// per-op aggregates, the ring and the JSONL sink.
func (c *Collector) fold(op telemetry.Op, r *Root, children []Child) {
	var billed int64
	for i := Component(0); i < CompOther; i++ {
		billed += r.Comp[i]
	}
	if other := r.Dur - billed; other >= 0 {
		r.Comp[CompOther] = other
	} else {
		// Billing exceeded the clock delta — an attribution bug, surfaced
		// as a counter rather than silently distorting percentages.
		c.overBilled.Add(-other)
		r.Comp[CompOther] = 0
	}
	r.Op = op.Name()

	a := &c.ops[op]
	a.count.Add(1)
	if r.Aborted {
		a.aborted.Add(1)
		c.aborted.Add(1)
	}
	a.sumNS.Add(r.Dur)
	a.total.Observe(r.Dur)
	for i := Component(0); i < NumComponents; i++ {
		a.compSum[i].Add(r.Comp[i])
		a.comp[i].Observe(r.Comp[i])
	}
	a.bytesRead.Add(r.BytesRead)
	a.bytesWritten.Add(r.BytesWritten)
	a.flushes.Add(r.Flushes)
	a.fences.Add(r.Fences)
	c.finished.Add(1)

	if len(children) > 0 {
		r.Children = append([]Child(nil), children...)
	} else {
		r.Children = nil
	}
	if c.ex != nil {
		c.maybeCapture(op, r)
	}
	if c.ringCap > 0 {
		c.ringMu.Lock()
		if len(c.ring) < c.ringCap {
			c.ring = append(c.ring, *r)
		} else {
			c.ring[c.ringPos] = *r
			c.ringPos = (c.ringPos + 1) % c.ringCap
		}
		c.ringMu.Unlock()
	}
	if c.sink != nil {
		c.writeSink(r)
	}
}

func (c *Collector) writeSink(r *Root) {
	c.sinkMu.Lock()
	defer c.sinkMu.Unlock()
	if c.sinkErr != nil {
		return
	}
	b, err := json.Marshal(r)
	if err == nil {
		_, err = c.sink.Write(append(b, '\n'))
	}
	if err != nil {
		c.sinkErr = err
	}
}

// FlushSink drains the JSONL sink's buffer and reports any write error.
func (c *Collector) FlushSink() error {
	if c == nil || c.sink == nil {
		return nil
	}
	c.sinkMu.Lock()
	defer c.sinkMu.Unlock()
	if err := c.sink.Flush(); err != nil && c.sinkErr == nil {
		c.sinkErr = err
	}
	return c.sinkErr
}

// Roots copies out the finished-root ring in fold order (oldest first).
func (c *Collector) Roots() []Root {
	if c == nil {
		return nil
	}
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	out := make([]Root, 0, len(c.ring))
	if len(c.ring) == c.ringCap { // wrapped: oldest entry is at ringPos
		out = append(out, c.ring[c.ringPos:]...)
		out = append(out, c.ring[:c.ringPos]...)
	} else {
		out = append(out, c.ring...)
	}
	return out
}

func (c *Collector) lockContend(key, waitNS int64) {
	c.contMu.Lock()
	defer c.contMu.Unlock()
	e := c.cont[key]
	if e == nil {
		if len(c.cont) >= maxContLocks {
			c.contDropped++
			return
		}
		e = &contEntry{}
		c.cont[key] = e
	}
	e.waits++
	e.waitNS += waitNS
	if waitNS > e.maxNS {
		e.maxNS = waitNS
	}
}

// OpenRoots reports the number of currently open root spans — zero whenever
// no operation is in flight (the no-leak invariant crashmc asserts).
func (c *Collector) OpenRoots() int64 {
	if c == nil {
		return 0
	}
	return c.open.Load()
}

// DoubleCloses reports span closes that had no matching open.
func (c *Collector) DoubleCloses() int64 {
	if c == nil {
		return 0
	}
	return c.doubleClose.Load()
}

// Finished reports the number of folded root spans.
func (c *Collector) Finished() int64 {
	if c == nil {
		return 0
	}
	return c.finished.Load()
}

// LockWaitNS reports total virtual lock-wait nanoseconds billed to this
// collector's threads, inside or outside spans. With the lock profiler
// attached to the same threads this equals its registry WaitNS exactly.
func (c *Collector) LockWaitNS() int64 {
	if c == nil {
		return 0
	}
	return c.lockWaitNS.Load()
}

// Reset zeroes every aggregate, the contention table, the ring and the
// lifecycle counters (the JSONL sink is untouched).
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.started.Store(0)
	c.finished.Store(0)
	c.aborted.Store(0)
	c.abandoned.Store(0)
	c.doubleClose.Store(0)
	c.childDrops.Store(0)
	c.overBilled.Store(0)
	c.dcHits.Store(0)
	c.dcMisses.Store(0)
	c.lockWaitNS.Store(0)
	for i := range c.ops {
		a := &c.ops[i]
		a.count.Store(0)
		a.aborted.Store(0)
		a.sumNS.Store(0)
		a.total.Reset()
		for j := range a.comp {
			a.comp[j].Reset()
			a.compSum[j].Store(0)
		}
		a.bytesRead.Store(0)
		a.bytesWritten.Store(0)
		a.flushes.Store(0)
		a.fences.Store(0)
	}
	c.contMu.Lock()
	c.cont = make(map[int64]*contEntry)
	c.contDropped = 0
	c.contMu.Unlock()
	c.ringMu.Lock()
	c.ring = c.ring[:0]
	c.ringPos = 0
	c.ringMu.Unlock()
	c.resetExemplars()
}

// lockName renders a contention-table key: negative keys are directory hash
// buckets, non-negative keys are inode numbers.
func lockName(key int64) string {
	if key < 0 {
		return fmt.Sprintf("dirbucket/%d", -key)
	}
	return fmt.Sprintf("inode/%d", key)
}
