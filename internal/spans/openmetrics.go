package spans

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"zofs/internal/byteflow"
	"zofs/internal/openmetrics"
)

// WriteOpenMetrics renders a snapshot in the OpenMetrics text exposition
// format (Prometheus-compatible). Output is deterministic: ops in dispatch
// order, components in enum order, contention rows by descending wait.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	scalar := func(name, typ, help string, v string) {
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
		}
		suffix := ""
		if typ == "counter" {
			suffix = "_total"
		}
		fmt.Fprintf(bw, "%s%s %s\n", name, suffix, v)
	}
	scalar("zofs_spans_started", "counter", "root spans opened", strconv.FormatInt(s.Started, 10))
	scalar("zofs_spans_finished", "counter", "root spans folded", strconv.FormatInt(s.Finished, 10))
	scalar("zofs_spans_open", "gauge", "root spans currently in flight", strconv.FormatInt(s.Open, 10))
	scalar("zofs_spans_aborted", "counter", "root spans terminated by a fault", strconv.FormatInt(s.Aborted, 10))
	scalar("zofs_dcache_hits", "counter", "directory cache hits", strconv.FormatInt(s.DcacheHits, 10))
	scalar("zofs_dcache_misses", "counter", "directory cache misses", strconv.FormatInt(s.DcacheMisses, 10))

	ops := s.opOrder()

	fmt.Fprintf(bw, "# TYPE zofs_ops counter\n")
	for _, name := range ops {
		fmt.Fprintf(bw, "zofs_ops_total{op=%q} %d\n", name, s.Ops[name].Count)
	}

	fmt.Fprintf(bw, "# TYPE zofs_op_latency_ns summary\n")
	for _, name := range ops {
		b := s.Ops[name]
		fmt.Fprintf(bw, "zofs_op_latency_ns{op=%q,quantile=\"0.5\"} %d\n", name, b.P50NS)
		fmt.Fprintf(bw, "zofs_op_latency_ns{op=%q,quantile=\"0.95\"} %d\n", name, b.P95NS)
		fmt.Fprintf(bw, "zofs_op_latency_ns{op=%q,quantile=\"0.99\"} %d\n", name, b.P99NS)
		fmt.Fprintf(bw, "zofs_op_latency_ns_sum{op=%q} %d\n", name, b.SumNS)
		fmt.Fprintf(bw, "zofs_op_latency_ns_count{op=%q} %d\n", name, b.Count)
	}

	fmt.Fprintf(bw, "# TYPE zofs_op_component_ns counter\n")
	for _, name := range ops {
		b := s.Ops[name]
		for _, c := range compOrder() {
			fmt.Fprintf(bw, "zofs_op_component_ns_total{op=%q,component=%q} %d\n",
				name, c.Name(), b.Comp[c.Name()].SumNS)
		}
	}

	fmt.Fprintf(bw, "# TYPE zofs_op_component_share gauge\n")
	fmt.Fprintf(bw, "# HELP zofs_op_component_share percent of the op kind's total latency\n")
	for _, name := range ops {
		b := s.Ops[name]
		for _, c := range compOrder() {
			fmt.Fprintf(bw, "zofs_op_component_share{op=%q,component=%q} %s\n",
				name, c.Name(), strconv.FormatFloat(b.Comp[c.Name()].Pct, 'f', 4, 64))
		}
	}

	fmt.Fprintf(bw, "# TYPE zofs_critical_path_share gauge\n")
	for _, c := range compOrder() {
		fmt.Fprintf(bw, "zofs_critical_path_share{component=%q} %s\n",
			c.Name(), strconv.FormatFloat(s.CriticalPath[c.Name()], 'f', 4, 64))
	}

	if f := s.Flow; f != nil {
		scalar("zofs_app_bytes", "counter", "application-requested write bytes", strconv.FormatInt(f.App, 10))
		scalar("zofs_issued_bytes", "counter", "bytes issued to the device", strconv.FormatInt(f.Total, 10))
		scalar("zofs_media_bytes", "counter", "estimated bytes that reached media", strconv.FormatInt(f.MediaBytes(), 10))
		scalar("zofs_flushes", "counter", "cache-line flush instructions", strconv.FormatInt(f.Flushes, 10))
		scalar("zofs_fences", "counter", "store fences", strconv.FormatInt(f.Fences, 10))
		scalar("zofs_write_amplification", "gauge", "media bytes per application byte", strconv.FormatFloat(f.WA(), 'f', 4, 64))
		fmt.Fprintf(bw, "# TYPE zofs_issued_class_bytes counter\n")
		for _, c := range byteflow.Classes() {
			fmt.Fprintf(bw, "zofs_issued_class_bytes_total{class=%q} %d\n", c.String(), f.Issued[c])
		}
		fmt.Fprintf(bw, "# TYPE zofs_nt_class_bytes counter\n")
		for _, c := range byteflow.Classes() {
			fmt.Fprintf(bw, "zofs_nt_class_bytes_total{class=%q} %d\n", c.String(), f.NT[c])
		}
		fmt.Fprintf(bw, "# TYPE zofs_flush_class_lines counter\n")
		for _, c := range byteflow.Classes() {
			fmt.Fprintf(bw, "zofs_flush_class_lines_total{class=%q} %d\n", c.String(), f.Lines[c])
		}
	}
	if len(s.Space) > 0 {
		fmt.Fprintf(bw, "# TYPE zofs_coffer_pages gauge\n")
		for _, cs := range s.Space {
			id := strconv.FormatUint(cs.ID, 10)
			fmt.Fprintf(bw, "zofs_coffer_pages{coffer=%q,state=\"used\"} %d\n", id, cs.Used)
			fmt.Fprintf(bw, "zofs_coffer_pages{coffer=%q,state=\"free_listed\"} %d\n", id, cs.FreeListed)
			fmt.Fprintf(bw, "zofs_coffer_pages{coffer=%q,state=\"cached\"} %d\n", id, cs.Cached)
		}
		fmt.Fprintf(bw, "# TYPE zofs_coffer_frag gauge\n")
		fmt.Fprintf(bw, "# HELP zofs_coffer_frag fraction of adjacent page pairs breaking contiguity\n")
		for _, cs := range s.Space {
			fmt.Fprintf(bw, "zofs_coffer_frag{coffer=\"%d\"} %s\n", cs.ID, strconv.FormatFloat(cs.Frag, 'f', 4, 64))
		}
	}

	if len(s.Contention) > 0 {
		fmt.Fprintf(bw, "# TYPE zofs_lock_wait_ns counter\n")
		for _, l := range s.Contention {
			fmt.Fprintf(bw, "zofs_lock_wait_ns_total{lock=%q} %d\n", l.Lock, l.WaitNS)
		}
		fmt.Fprintf(bw, "# TYPE zofs_lock_waits counter\n")
		for _, l := range s.Contention {
			fmt.Fprintf(bw, "zofs_lock_waits_total{lock=%q} %d\n", l.Lock, l.Waits)
		}
	}

	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

// ValidateOpenMetrics checks that r is well-formed OpenMetrics text (via the
// shared internal/openmetrics parser) and enforces the attribution
// invariant: for every op with samples, the zofs_op_component_share values
// sum to 100% within one point, plus byte-flow conservation when the flow
// panel's series are present.
func ValidateOpenMetrics(r io.Reader) error {
	doc, err := openmetrics.Parse(r)
	if err != nil {
		return err
	}
	opCount := doc.GroupSumInt("zofs_ops_total", "op")
	latSum := doc.GroupSumInt("zofs_op_latency_ns_sum", "op")
	shareSum := map[string]float64{}
	for _, s := range doc.ByName("zofs_op_component_share") {
		shareSum[s.Label("op")] += s.Value
	}
	for op, sum := range shareSum {
		if opCount[op] <= 0 || latSum[op] <= 0 {
			continue // no samples (or all zero-latency): shares are vacuous
		}
		if sum < 99 || sum > 101 {
			return fmt.Errorf("op %q: component shares sum to %.2f%%, want 100±1", op, sum)
		}
	}
	// Byte-flow conservation is exact: per-class issued bytes must sum to
	// the independently counted issued total.
	if doc.Has("zofs_issued_class_bytes_total") {
		if !doc.Has("zofs_issued_bytes_total") {
			return fmt.Errorf("byte-flow: class series present without zofs_issued_bytes_total")
		}
		if err := openmetrics.Conserved("byte-flow: class bytes",
			doc.SumInt("zofs_issued_class_bytes_total"), doc.Int("zofs_issued_bytes_total")); err != nil {
			return err
		}
	}
	_ = byteflow.NumClasses
	return nil
}
