package spans

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"zofs/internal/byteflow"
)

// WriteOpenMetrics renders a snapshot in the OpenMetrics text exposition
// format (Prometheus-compatible). Output is deterministic: ops in dispatch
// order, components in enum order, contention rows by descending wait.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	scalar := func(name, typ, help string, v string) {
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
		}
		suffix := ""
		if typ == "counter" {
			suffix = "_total"
		}
		fmt.Fprintf(bw, "%s%s %s\n", name, suffix, v)
	}
	scalar("zofs_spans_started", "counter", "root spans opened", strconv.FormatInt(s.Started, 10))
	scalar("zofs_spans_finished", "counter", "root spans folded", strconv.FormatInt(s.Finished, 10))
	scalar("zofs_spans_open", "gauge", "root spans currently in flight", strconv.FormatInt(s.Open, 10))
	scalar("zofs_spans_aborted", "counter", "root spans terminated by a fault", strconv.FormatInt(s.Aborted, 10))
	scalar("zofs_dcache_hits", "counter", "directory cache hits", strconv.FormatInt(s.DcacheHits, 10))
	scalar("zofs_dcache_misses", "counter", "directory cache misses", strconv.FormatInt(s.DcacheMisses, 10))

	ops := s.opOrder()

	fmt.Fprintf(bw, "# TYPE zofs_ops counter\n")
	for _, name := range ops {
		fmt.Fprintf(bw, "zofs_ops_total{op=%q} %d\n", name, s.Ops[name].Count)
	}

	fmt.Fprintf(bw, "# TYPE zofs_op_latency_ns summary\n")
	for _, name := range ops {
		b := s.Ops[name]
		fmt.Fprintf(bw, "zofs_op_latency_ns{op=%q,quantile=\"0.5\"} %d\n", name, b.P50NS)
		fmt.Fprintf(bw, "zofs_op_latency_ns{op=%q,quantile=\"0.95\"} %d\n", name, b.P95NS)
		fmt.Fprintf(bw, "zofs_op_latency_ns{op=%q,quantile=\"0.99\"} %d\n", name, b.P99NS)
		fmt.Fprintf(bw, "zofs_op_latency_ns_sum{op=%q} %d\n", name, b.SumNS)
		fmt.Fprintf(bw, "zofs_op_latency_ns_count{op=%q} %d\n", name, b.Count)
	}

	fmt.Fprintf(bw, "# TYPE zofs_op_component_ns counter\n")
	for _, name := range ops {
		b := s.Ops[name]
		for _, c := range compOrder() {
			fmt.Fprintf(bw, "zofs_op_component_ns_total{op=%q,component=%q} %d\n",
				name, c.Name(), b.Comp[c.Name()].SumNS)
		}
	}

	fmt.Fprintf(bw, "# TYPE zofs_op_component_share gauge\n")
	fmt.Fprintf(bw, "# HELP zofs_op_component_share percent of the op kind's total latency\n")
	for _, name := range ops {
		b := s.Ops[name]
		for _, c := range compOrder() {
			fmt.Fprintf(bw, "zofs_op_component_share{op=%q,component=%q} %s\n",
				name, c.Name(), strconv.FormatFloat(b.Comp[c.Name()].Pct, 'f', 4, 64))
		}
	}

	fmt.Fprintf(bw, "# TYPE zofs_critical_path_share gauge\n")
	for _, c := range compOrder() {
		fmt.Fprintf(bw, "zofs_critical_path_share{component=%q} %s\n",
			c.Name(), strconv.FormatFloat(s.CriticalPath[c.Name()], 'f', 4, 64))
	}

	if f := s.Flow; f != nil {
		scalar("zofs_app_bytes", "counter", "application-requested write bytes", strconv.FormatInt(f.App, 10))
		scalar("zofs_issued_bytes", "counter", "bytes issued to the device", strconv.FormatInt(f.Total, 10))
		scalar("zofs_media_bytes", "counter", "estimated bytes that reached media", strconv.FormatInt(f.MediaBytes(), 10))
		scalar("zofs_flushes", "counter", "cache-line flush instructions", strconv.FormatInt(f.Flushes, 10))
		scalar("zofs_fences", "counter", "store fences", strconv.FormatInt(f.Fences, 10))
		scalar("zofs_write_amplification", "gauge", "media bytes per application byte", strconv.FormatFloat(f.WA(), 'f', 4, 64))
		fmt.Fprintf(bw, "# TYPE zofs_issued_class_bytes counter\n")
		for _, c := range byteflow.Classes() {
			fmt.Fprintf(bw, "zofs_issued_class_bytes_total{class=%q} %d\n", c.String(), f.Issued[c])
		}
		fmt.Fprintf(bw, "# TYPE zofs_nt_class_bytes counter\n")
		for _, c := range byteflow.Classes() {
			fmt.Fprintf(bw, "zofs_nt_class_bytes_total{class=%q} %d\n", c.String(), f.NT[c])
		}
		fmt.Fprintf(bw, "# TYPE zofs_flush_class_lines counter\n")
		for _, c := range byteflow.Classes() {
			fmt.Fprintf(bw, "zofs_flush_class_lines_total{class=%q} %d\n", c.String(), f.Lines[c])
		}
	}
	if len(s.Space) > 0 {
		fmt.Fprintf(bw, "# TYPE zofs_coffer_pages gauge\n")
		for _, cs := range s.Space {
			id := strconv.FormatUint(cs.ID, 10)
			fmt.Fprintf(bw, "zofs_coffer_pages{coffer=%q,state=\"used\"} %d\n", id, cs.Used)
			fmt.Fprintf(bw, "zofs_coffer_pages{coffer=%q,state=\"free_listed\"} %d\n", id, cs.FreeListed)
			fmt.Fprintf(bw, "zofs_coffer_pages{coffer=%q,state=\"cached\"} %d\n", id, cs.Cached)
		}
		fmt.Fprintf(bw, "# TYPE zofs_coffer_frag gauge\n")
		fmt.Fprintf(bw, "# HELP zofs_coffer_frag fraction of adjacent page pairs breaking contiguity\n")
		for _, cs := range s.Space {
			fmt.Fprintf(bw, "zofs_coffer_frag{coffer=\"%d\"} %s\n", cs.ID, strconv.FormatFloat(cs.Frag, 'f', 4, 64))
		}
	}

	if len(s.Contention) > 0 {
		fmt.Fprintf(bw, "# TYPE zofs_lock_wait_ns counter\n")
		for _, l := range s.Contention {
			fmt.Fprintf(bw, "zofs_lock_wait_ns_total{lock=%q} %d\n", l.Lock, l.WaitNS)
		}
		fmt.Fprintf(bw, "# TYPE zofs_lock_waits counter\n")
		for _, l := range s.Contention {
			fmt.Fprintf(bw, "zofs_lock_waits_total{lock=%q} %d\n", l.Lock, l.Waits)
		}
	}

	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9][0-9eE+.-]*|NaN|[+-]Inf)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// ValidateOpenMetrics checks that r is well-formed OpenMetrics text (sample
// syntax, label syntax, parseable values, `# EOF` terminator) and enforces
// the attribution invariant: for every op with samples, the
// zofs_op_component_share values sum to 100% within one point.
func ValidateOpenMetrics(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		line      int
		sawEOF    bool
		opCount   = map[string]int64{}
		latSum    = map[string]float64{}
		shareSum  = map[string]float64{}
		shareSeen = map[string]bool{}
		issued    = int64(-1)
		classSum  int64
		classSeen bool
	)
	for sc.Scan() {
		line++
		text := sc.Text()
		if sawEOF {
			return fmt.Errorf("line %d: content after # EOF", line)
		}
		if text == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(text, "#") {
			if !strings.HasPrefix(text, "# TYPE ") && !strings.HasPrefix(text, "# HELP ") {
				return fmt.Errorf("line %d: unknown comment form %q", line, text)
			}
			continue
		}
		if text == "" {
			return fmt.Errorf("line %d: blank line", line)
		}
		m := sampleRe.FindStringSubmatch(text)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		name, rawLabels, rawVal := m[1], m[2], m[3]
		labels := map[string]string{}
		if rawLabels != "" {
			for _, pair := range splitLabels(rawLabels[1 : len(rawLabels)-1]) {
				if !labelRe.MatchString(pair) {
					return fmt.Errorf("line %d: malformed label %q", line, pair)
				}
				eq := strings.IndexByte(pair, '=')
				v, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					return fmt.Errorf("line %d: bad label value %q: %v", line, pair, err)
				}
				labels[pair[:eq]] = v
			}
		}
		val, err := strconv.ParseFloat(rawVal, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", line, rawVal, err)
		}
		switch name {
		case "zofs_ops_total":
			opCount[labels["op"]] = int64(val)
		case "zofs_op_latency_ns_sum":
			latSum[labels["op"]] = val
		case "zofs_op_component_share":
			shareSum[labels["op"]] += val
			shareSeen[labels["op"]] = true
		case "zofs_issued_bytes_total":
			issued = int64(val)
		case "zofs_issued_class_bytes_total":
			classSum += int64(val)
			classSeen = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawEOF {
		return fmt.Errorf("missing # EOF terminator")
	}
	for op := range shareSeen {
		if opCount[op] <= 0 || latSum[op] <= 0 {
			continue // no samples (or all zero-latency): shares are vacuous
		}
		if sum := shareSum[op]; sum < 99 || sum > 101 {
			return fmt.Errorf("op %q: component shares sum to %.2f%%, want 100±1", op, sum)
		}
	}
	// Byte-flow conservation is exact: per-class issued bytes must sum to
	// the independently counted issued total.
	if classSeen && issued >= 0 && classSum != issued {
		return fmt.Errorf("byte-flow: class bytes sum to %d, issued total is %d", classSum, issued)
	}
	if classSeen && issued < 0 {
		return fmt.Errorf("byte-flow: class series present without zofs_issued_bytes_total")
	}
	_ = byteflow.NumClasses
	return nil
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(s); i++ {
		switch {
		case escaped:
			escaped = false
		case s[i] == '\\' && inQuote:
			escaped = true
		case s[i] == '"':
			inQuote = !inQuote
		case s[i] == ',' && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
