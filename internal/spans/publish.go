package spans

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"zofs/internal/lockprof"
)

// Publishing: periodic snapshot files for live monitoring. zofs-bench -spans
// publishes into a directory; zofs-top polls it. Files are written to a temp
// name and renamed so a reader never observes a half-written snapshot.

// enricher holds the OnSnapshot hook.
var enricher atomic.Pointer[func(*Snapshot)]

// lockReporter holds the OnLockReport hook.
var lockReporter atomic.Pointer[func() *lockprof.Report]

// OnSnapshot installs a hook the publisher applies to every snapshot before
// writing — the place harnesses attach device byte-flow and per-coffer
// space rows, which the collector itself cannot see. Nil uninstalls.
func OnSnapshot(f func(*Snapshot)) {
	if f == nil {
		enricher.Store(nil)
		return
	}
	enricher.Store(&f)
}

// OnLockReport installs a hook producing the named-lock contention panel
// (typically a closure over lockprof.Registry.Snapshot). It is separate from
// OnSnapshot so the lock panel composes with the byte-flow enricher the
// obsfs wrap installs, rather than displacing it. Nil uninstalls.
func OnLockReport(f func() *lockprof.Report) {
	if f == nil {
		lockReporter.Store(nil)
		return
	}
	lockReporter.Store(&f)
}

// Enrich applies the OnSnapshot and OnLockReport hooks (if any) to s.
// Publishers call it automatically; direct Snapshot() consumers (zofs-shell's
// spans dump) call it themselves to pick up the byte-flow, space and lock
// panels.
func Enrich(s *Snapshot) {
	if f := enricher.Load(); f != nil {
		(*f)(s)
	}
	if f := lockReporter.Load(); f != nil {
		s.Locks = (*f)()
	}
}

// Publish writes the collector's current snapshot into dir as spans.json
// (the Snapshot document) and spans.prom (its OpenMetrics rendering).
func Publish(c *Collector, dir string) error {
	snap := c.Snapshot()
	Enrich(&snap)
	raw, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "spans.json"), append(raw, '\n')); err != nil {
		return err
	}
	var om bytes.Buffer
	if err := WriteOpenMetrics(&om, snap); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, "spans.prom"), om.Bytes())
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PublishEvery republishes the snapshot on an interval until the returned
// stop function is called (which also performs no final write — callers do
// a last Publish themselves once collection has stopped). Publish errors
// mid-run are dropped: a missed refresh must not kill the benchmark.
func PublishEvery(c *Collector, dir string, every time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = Publish(c, dir)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
