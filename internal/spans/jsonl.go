package spans

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ReadRootsJSONL parses a span sink written via Config.JSONL (one Root JSON
// object per line) back into memory, e.g. for offline Chrome-trace export.
func ReadRootsJSONL(r io.Reader) ([]Root, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Root
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var root Root
		if err := json.Unmarshal(text, &root); err != nil {
			return nil, fmt.Errorf("spans jsonl line %d: %w", line, err)
		}
		out = append(out, root)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
