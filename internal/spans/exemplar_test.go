package spans

import (
	"bytes"
	"testing"

	"zofs/internal/telemetry"
)

// foldOne runs a complete span of the given duration through the collector.
func foldOne(col *Collector, tid int, op telemetry.Op, start, dur int64) {
	c := NewThreadCtx(col, tid)
	c.Begin(op, 0, start)
	c.Bill(CompMedia, dur/2)
	c.End(start + dur)
}

// TestExemplarWorstK: with no threshold set, capture is pure worst-K —
// only the K slowest spans per op kind survive, worst first.
func TestExemplarWorstK(t *testing.T) {
	col := NewCollector(Config{ExemplarK: 2})
	durs := []int64{100, 900, 300, 700, 500}
	for i, d := range durs {
		foldOne(col, i, telemetry.OpWrite, int64(i)*1000, d)
	}
	ex := col.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("retained %d exemplars, want 2", len(ex))
	}
	if ex[0].Root.Dur != 900 || ex[1].Root.Dur != 700 {
		t.Fatalf("worst-K = %d,%d, want 900,700", ex[0].Root.Dur, ex[1].Root.Dur)
	}
	if col.ExemplarsCaptured() < 2 {
		t.Fatalf("captured counter = %d", col.ExemplarsCaptured())
	}
	// Every exemplar carries the exact-sum attribution invariant.
	for _, e := range ex {
		var sum int64
		for _, v := range e.Root.Comp {
			sum += v
		}
		if sum != e.Root.Dur {
			t.Fatalf("exemplar components sum to %d, duration is %d", sum, e.Root.Dur)
		}
	}
}

// TestExemplarThreshold: an adaptive threshold gates capture; spans below
// it are never candidates, spans at or above it are retained with the
// threshold recorded.
func TestExemplarThreshold(t *testing.T) {
	col := NewCollector(Config{ExemplarK: 8})
	col.SetExemplarThreshold(telemetry.OpRead, 500)
	if got := col.ExemplarThreshold(telemetry.OpRead); got != 500 {
		t.Fatalf("threshold = %d, want 500", got)
	}
	foldOne(col, 1, telemetry.OpRead, 0, 100)    // below: skipped
	foldOne(col, 2, telemetry.OpRead, 1000, 500) // at: captured
	foldOne(col, 3, telemetry.OpRead, 2000, 900) // above: captured
	ex := col.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("retained %d exemplars, want 2 (100ns span must not pass the 500ns gate)", len(ex))
	}
	for _, e := range ex {
		if e.ThresholdNS != 500 {
			t.Fatalf("exemplar threshold = %d, want 500", e.ThresholdNS)
		}
	}
	// Other op kinds are ungated.
	foldOne(col, 4, telemetry.OpWrite, 3000, 10)
	if len(col.Exemplars()) != 3 {
		t.Fatal("threshold on read leaked onto write")
	}
}

// TestExemplarDisabled: ExemplarK 0 keeps the collector exemplar-free and
// every exemplar accessor nil-safe.
func TestExemplarDisabled(t *testing.T) {
	col := NewCollector(Config{})
	foldOne(col, 1, telemetry.OpWrite, 0, 100)
	if ex := col.Exemplars(); ex != nil {
		t.Fatalf("exemplars on disabled collector: %+v", ex)
	}
	col.SetExemplarThreshold(telemetry.OpWrite, 100) // must not panic
	if col.ExemplarThreshold(telemetry.OpWrite) != 0 {
		t.Fatal("threshold stored without exemplar state")
	}
}

func TestExemplarJSONLRoundTrip(t *testing.T) {
	col := NewCollector(Config{ExemplarK: 4})
	foldOne(col, 1, telemetry.OpWrite, 0, 400)
	foldOne(col, 2, telemetry.OpRead, 1000, 800)
	var buf bytes.Buffer
	if err := col.WriteExemplarsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExemplarsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := col.Exemplars()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d exemplars, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Root.Op != want[i].Root.Op || got[i].Root.Dur != want[i].Root.Dur {
			t.Fatalf("exemplar %d differs after round trip", i)
		}
	}
}

func TestExemplarReset(t *testing.T) {
	col := NewCollector(Config{ExemplarK: 4})
	col.SetExemplarThreshold(telemetry.OpWrite, 10)
	foldOne(col, 1, telemetry.OpWrite, 0, 400)
	col.Reset()
	if len(col.Exemplars()) != 0 || col.ExemplarsCaptured() != 0 {
		t.Fatal("reset left exemplars behind")
	}
	if col.ExemplarThreshold(telemetry.OpWrite) != 0 {
		t.Fatal("reset left a stale adaptive threshold")
	}
}
