package mpk

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultPKRU(t *testing.T) {
	p := DefaultPKRU()
	if !p.CanRead(0) || !p.CanWrite(0) {
		t.Fatal("key 0 must be fully accessible by default")
	}
	for k := Key(1); k < NumKeys; k++ {
		if p.CanRead(k) || p.CanWrite(k) {
			t.Fatalf("key %d must be access-disabled by default", k)
		}
	}
}

func TestWithAccess(t *testing.T) {
	p := DefaultPKRU().WithAccess(3, true, false)
	if !p.CanRead(3) {
		t.Fatal("read should be enabled")
	}
	if p.CanWrite(3) {
		t.Fatal("write should remain disabled")
	}
	p = p.WithAccess(3, true, true)
	if !p.CanWrite(3) {
		t.Fatal("write should now be enabled")
	}
	p = p.WithAccess(3, false, false)
	if p.CanRead(3) || p.CanWrite(3) {
		t.Fatal("access should be fully revoked")
	}
}

func TestWriteImpliesReadCheck(t *testing.T) {
	// A key with AD set cannot be written even if WD is clear.
	var p PKRU
	p |= 1 << (2 * 5) // AD only
	if p.CanWrite(5) {
		t.Fatal("AD must block writes")
	}
}

func expectViolation(t *testing.T, f func()) Violation {
	t.Helper()
	var got Violation
	func() {
		defer func() {
			r := recover()
			v, ok := r.(Violation)
			if !ok {
				t.Fatalf("expected Violation panic, got %v", r)
			}
			got = v
		}()
		f()
	}()
	return got
}

func TestAddressSpaceCheck(t *testing.T) {
	a := NewAddressSpace(64)
	a.Map(10, 4, 2, true)
	pkru := DefaultPKRU().WithAccess(2, true, true)

	a.Check(pkru, 10, 4, true) // should not panic

	v := expectViolation(t, func() { a.Check(pkru, 9, 1, false) })
	if v.Cause != "page not mapped" {
		t.Fatalf("cause = %q", v.Cause)
	}
	v = expectViolation(t, func() { a.Check(DefaultPKRU(), 10, 1, false) })
	if v.Key != 2 {
		t.Fatalf("violation key = %d, want 2", v.Key)
	}
	v = expectViolation(t, func() { a.Check(pkru, -1, 1, false) })
	if v.Cause != "page not in address space" {
		t.Fatalf("cause = %q", v.Cause)
	}
}

func TestReadOnlyMapping(t *testing.T) {
	a := NewAddressSpace(16)
	a.Map(0, 1, 1, false) // read-only page permission
	pkru := DefaultPKRU().WithAccess(1, true, true)
	a.Check(pkru, 0, 1, false)
	v := expectViolation(t, func() { a.Check(pkru, 0, 1, true) })
	if v.Cause != "page mapped read-only" {
		t.Fatalf("cause = %q", v.Cause)
	}
}

func TestPKRUWriteDisable(t *testing.T) {
	a := NewAddressSpace(16)
	a.Map(0, 1, 1, true)
	roPKRU := DefaultPKRU().WithAccess(1, true, false)
	a.Check(roPKRU, 0, 1, false)
	v := expectViolation(t, func() { a.Check(roPKRU, 0, 1, true) })
	if v.Cause != "PKRU write-disable" {
		t.Fatalf("cause = %q", v.Cause)
	}
}

// TestViolationCarriesPKRU checks the faulting register value rides along in
// the Violation and appears in its message, for fault diagnostics.
func TestViolationCarriesPKRU(t *testing.T) {
	a := NewAddressSpace(16)
	a.Map(0, 1, 1, true)
	roPKRU := DefaultPKRU().WithAccess(1, true, false)
	v := expectViolation(t, func() { a.Check(roPKRU, 0, 1, true) })
	if v.PKRU != roPKRU {
		t.Fatalf("violation PKRU = %#x, want %#x", uint32(v.PKRU), uint32(roPKRU))
	}
	msg := v.Error()
	want := fmt.Sprintf("pkru=%#010x", uint32(roPKRU))
	if !strings.Contains(msg, want) {
		t.Fatalf("Error() = %q, missing %q", msg, want)
	}

	// Out-of-range accesses also report the register in effect.
	v = expectViolation(t, func() { a.Check(roPKRU, -1, 1, false) })
	if v.PKRU != roPKRU {
		t.Fatalf("out-of-range violation PKRU = %#x, want %#x", uint32(v.PKRU), uint32(roPKRU))
	}
}

func TestUnmap(t *testing.T) {
	a := NewAddressSpace(16)
	a.Map(4, 2, 3, true)
	if !a.Mapped(4) || !a.Mapped(5) {
		t.Fatal("pages should be mapped")
	}
	if k, ok := a.KeyOf(4); !ok || k != 3 {
		t.Fatalf("KeyOf = %d,%v", k, ok)
	}
	a.Unmap(4, 2)
	if a.Mapped(4) {
		t.Fatal("page should be unmapped")
	}
	if _, ok := a.KeyOf(4); ok {
		t.Fatal("KeyOf on unmapped page should report false")
	}
}

// Property: WithAccess(k, r, w) yields exactly the requested permissions on
// key k and never affects any other key.
func TestWithAccessIsolatedProperty(t *testing.T) {
	f := func(base uint32, kRaw uint8, r, w bool) bool {
		k := Key(kRaw % NumKeys)
		p := PKRU(base)
		q := p.WithAccess(k, r, w)
		if q.CanRead(k) != r {
			return false
		}
		// CanWrite requires both AD and WD clear.
		if q.CanWrite(k) != (r && w) {
			return false
		}
		for other := Key(0); other < NumKeys; other++ {
			if other == k {
				continue
			}
			if p.CanRead(other) != q.CanRead(other) || p.CanWrite(other) != q.CanWrite(other) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
