// Package mpk simulates Intel Memory Protection Keys (paper §2.4).
//
// The kernel (KernFS) tags each mapped page with a 4-bit protection key in
// the per-process address space; each thread carries a PKRU register holding
// a pair of permission bits (access-disable, write-disable) per key. Every
// user-space access to the device is checked against both the page-table
// permission (present/writable) and the PKRU, exactly mirroring the
// hardware: a violation is delivered as a panic (the analogue of SIGSEGV)
// that FSLibs catches and converts to a file system error (§3.4.2).
package mpk

import (
	"fmt"
	"sync"
)

// NumKeys is the number of protection keys (16; key 0 is conventionally the
// process's ordinary memory, leaving 15 for coffers — §3.4.2).
const NumKeys = 16

// Key is a 4-bit protection key.
type Key uint8

// PKRU is the per-thread protection-key rights register: two bits per key,
// bit 2k = access-disable (AD), bit 2k+1 = write-disable (WD).
type PKRU uint32

// DefaultPKRU returns the register state KernFS installs before returning
// to user space: key 0 fully accessible, every other key access-disabled.
func DefaultPKRU() PKRU {
	var p PKRU
	for k := Key(1); k < NumKeys; k++ {
		p |= 1 << (2 * k) // AD
	}
	return p
}

// CanRead reports whether the register permits loads from pages with key k.
func (p PKRU) CanRead(k Key) bool { return p&(1<<(2*k)) == 0 }

// CanWrite reports whether the register permits stores to pages with key k.
func (p PKRU) CanWrite(k Key) bool { return p&(3<<(2*k)) == 0 }

// WithAccess returns a copy of the register with key k's permissions set.
func (p PKRU) WithAccess(k Key, read, write bool) PKRU {
	p |= 3 << (2 * k)
	if read {
		p &^= 1 << (2 * k)
	}
	if write {
		p &^= 2 << (2 * k)
	}
	return p
}

// Violation is the panic value raised on a protection fault. It carries
// enough context for FSLibs to translate it into a file system error, plus
// the offending thread's PKRU value for fault diagnostics.
type Violation struct {
	Page  int64
	Key   Key
	Write bool
	PKRU  PKRU
	Cause string
}

func (v Violation) Error() string {
	op := "read"
	if v.Write {
		op = "write"
	}
	return fmt.Sprintf("mpk violation: %s page %d key %d pkru=%#010x: %s", op, v.Page, v.Key, uint32(v.PKRU), v.Cause)
}

// Page-table entry bits stored per page in an AddressSpace.
const (
	ptePresent  = 1 << 4
	pteWritable = 1 << 5
	pteKeyMask  = 0x0f
)

// AddressSpace is the per-process page table: for each device page it
// records whether the page is mapped into the process, whether it is
// writable, and its protection key. Only the kernel (KernFS) mutates it.
type AddressSpace struct {
	mu    sync.RWMutex
	pages []uint8
}

// NewAddressSpace creates an empty address space covering npages pages.
func NewAddressSpace(npages int64) *AddressSpace {
	return &AddressSpace{pages: make([]uint8, npages)}
}

// Map marks [page, page+count) present with the given key and writability.
func (a *AddressSpace) Map(page, count int64, key Key, writable bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := uint8(key&pteKeyMask) | ptePresent
	if writable {
		e |= pteWritable
	}
	for i := page; i < page+count; i++ {
		a.pages[i] = e
	}
}

// Unmap removes [page, page+count) from the address space.
func (a *AddressSpace) Unmap(page, count int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := page; i < page+count; i++ {
		a.pages[i] = 0
	}
}

// ViolationObserver sees a Violation the instant it is raised, before the
// panic starts unwinding the faulting op's stack. The causal span layer
// (internal/spans) implements it to mark the active span aborted with the
// fault attached; a nil observer is simply skipped.
type ViolationObserver interface{ ObserveViolation(Violation) }

// Check validates one access spanning [page, page+count) under the given
// register, panicking with a Violation on the first failing page.
func (a *AddressSpace) Check(pkru PKRU, page, count int64, write bool) {
	a.CheckObserved(pkru, page, count, write, nil)
}

// CheckObserved is Check with an optional ViolationObserver that is notified
// synchronously before the Violation panic is thrown.
func (a *AddressSpace) CheckObserved(pkru PKRU, page, count int64, write bool, obs ViolationObserver) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for i := page; i < page+count; i++ {
		if i < 0 || i >= int64(len(a.pages)) {
			raise(obs, Violation{Page: i, Write: write, PKRU: pkru, Cause: "page not in address space"})
		}
		e := a.pages[i]
		if e&ptePresent == 0 {
			raise(obs, Violation{Page: i, Write: write, PKRU: pkru, Cause: "page not mapped"})
		}
		k := Key(e & pteKeyMask)
		if write {
			if e&pteWritable == 0 {
				raise(obs, Violation{Page: i, Key: k, Write: true, PKRU: pkru, Cause: "page mapped read-only"})
			}
			if !pkru.CanWrite(k) {
				raise(obs, Violation{Page: i, Key: k, Write: true, PKRU: pkru, Cause: "PKRU write-disable"})
			}
		} else if !pkru.CanRead(k) {
			raise(obs, Violation{Page: i, Key: k, PKRU: pkru, Cause: "PKRU access-disable"})
		}
	}
}

// raise delivers the violation to the observer (if any) and panics.
func raise(obs ViolationObserver, v Violation) {
	if obs != nil {
		obs.ObserveViolation(v)
	}
	panic(v)
}

// Mapped reports whether a page is present.
func (a *AddressSpace) Mapped(page int64) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return page >= 0 && page < int64(len(a.pages)) && a.pages[page]&ptePresent != 0
}

// KeyOf returns the protection key of a mapped page.
func (a *AddressSpace) KeyOf(page int64) (Key, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if page < 0 || page >= int64(len(a.pages)) || a.pages[page]&ptePresent == 0 {
		return 0, false
	}
	return Key(a.pages[page] & pteKeyMask), true
}
