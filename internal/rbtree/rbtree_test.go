package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree returned true")
	}
}

func TestInsertGetDelete(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(i*10, i)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, ok := tr.Get(550); !ok || v != 55 {
		t.Fatalf("Get(550) = %d,%v", v, ok)
	}
	tr.Insert(550, 999) // replace
	if v, _ := tr.Get(550); v != 999 {
		t.Fatalf("replaced value = %d", v)
	}
	if tr.Len() != 100 {
		t.Fatal("replace must not grow the tree")
	}
	if !tr.Delete(550) {
		t.Fatal("Delete existing returned false")
	}
	if _, ok := tr.Get(550); ok {
		t.Fatal("deleted key still present")
	}
	if tr.Len() != 99 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
}

func TestFloorCeiling(t *testing.T) {
	tr := New()
	for _, k := range []int64{10, 20, 30} {
		tr.Insert(k, k*2)
	}
	if k, v, ok := tr.Floor(25); !ok || k != 20 || v != 40 {
		t.Fatalf("Floor(25) = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := tr.Floor(10); !ok || k != 10 {
		t.Fatalf("Floor(10) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor(5) should not exist")
	}
	if k, _, ok := tr.Ceiling(25); !ok || k != 30 {
		t.Fatalf("Ceiling(25) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Ceiling(31); ok {
		t.Fatal("Ceiling(31) should not exist")
	}
	if k, _, ok := tr.Min(); !ok || k != 10 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	keys := []int64{5, 3, 8, 1, 9, 2, 7}
	for _, k := range keys {
		tr.Insert(k, 0)
	}
	var got []int64
	tr.Ascend(func(k, _ int64) bool {
		got = append(got, k)
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("Ascend order %v, want %v", got, keys)
		}
	}
	// Early stop.
	n := 0
	tr.Ascend(func(_, _ int64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestInvariantsUnderChurn(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	present := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(1000))
		if rng.Intn(2) == 0 {
			tr.Insert(k, k)
			present[k] = true
		} else {
			got := tr.Delete(k)
			if got != present[k] {
				t.Fatalf("Delete(%d) = %v, want %v", k, got, present[k])
			}
			delete(present, k)
		}
		if i%500 == 0 {
			if ok, _ := tr.validate(); !ok {
				t.Fatalf("red-black invariants violated at step %d", i)
			}
		}
	}
	if tr.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(present))
	}
	if ok, _ := tr.validate(); !ok {
		t.Fatal("final invariants violated")
	}
}

// Property: the tree agrees with a map and stays valid for arbitrary
// insert/delete sequences.
func TestTreeMatchesMapProperty(t *testing.T) {
	f := func(ops []int16) bool {
		tr := New()
		m := map[int64]int64{}
		for i, op := range ops {
			k := int64(op) % 128
			if i%3 == 2 {
				delete(m, k)
				tr.Delete(k)
			} else {
				m[k] = int64(i)
				tr.Insert(k, int64(i))
			}
		}
		if tr.Len() != len(m) {
			return false
		}
		for k, v := range m {
			if got, ok := tr.Get(k); !ok || got != v {
				return false
			}
		}
		ok, _ := tr.validate()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
