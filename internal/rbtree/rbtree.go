// Package rbtree implements a red-black tree keyed by int64 with int64
// values. KernFS uses two of these volatile trees to track free NVM space
// and per-coffer allocated space (paper §4.1: "we use a global volatile
// red-black tree to track all free space in the allocation table, and
// another red-black tree to track all allocated space").
package rbtree

const (
	red   = false
	black = true
)

type node struct {
	key, val            int64
	color               bool
	left, right, parent *node
}

// Tree is a red-black tree mapping int64 keys to int64 values. The zero
// value is not usable; call New.
type Tree struct {
	root *node
	nil_ *node // sentinel
	size int
}

// New returns an empty tree.
func New() *Tree {
	s := &node{color: black}
	s.left, s.right, s.parent = s, s, s
	return &Tree{root: s, nil_: s}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

func (t *Tree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Insert adds or replaces the entry for key.
func (t *Tree) Insert(key, val int64) {
	y := t.nil_
	x := t.root
	for x != t.nil_ {
		y = x
		switch {
		case key < x.key:
			x = x.left
		case key > x.key:
			x = x.right
		default:
			x.val = val
			return
		}
	}
	z := &node{key: key, val: val, color: red, left: t.nil_, right: t.nil_, parent: y}
	switch {
	case y == t.nil_:
		t.root = z
	case key < y.key:
		y.left = z
	default:
		y.right = z
	}
	t.size++
	t.insertFixup(z)
}

func (t *Tree) insertFixup(z *node) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateRight(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

func (t *Tree) search(key int64) *node {
	x := t.root
	for x != t.nil_ {
		switch {
		case key < x.key:
			x = x.left
		case key > x.key:
			x = x.right
		default:
			return x
		}
	}
	return t.nil_
}

// Get returns the value for key.
func (t *Tree) Get(key int64) (int64, bool) {
	n := t.search(key)
	if n == t.nil_ {
		return 0, false
	}
	return n.val, true
}

// Floor returns the greatest entry with key <= k.
func (t *Tree) Floor(k int64) (key, val int64, ok bool) {
	x := t.root
	best := t.nil_
	for x != t.nil_ {
		if x.key == k {
			return x.key, x.val, true
		}
		if x.key < k {
			best = x
			x = x.right
		} else {
			x = x.left
		}
	}
	if best == t.nil_ {
		return 0, 0, false
	}
	return best.key, best.val, true
}

// Ceiling returns the smallest entry with key >= k.
func (t *Tree) Ceiling(k int64) (key, val int64, ok bool) {
	x := t.root
	best := t.nil_
	for x != t.nil_ {
		if x.key == k {
			return x.key, x.val, true
		}
		if x.key > k {
			best = x
			x = x.left
		} else {
			x = x.right
		}
	}
	if best == t.nil_ {
		return 0, 0, false
	}
	return best.key, best.val, true
}

// Min returns the smallest entry.
func (t *Tree) Min() (key, val int64, ok bool) {
	if t.root == t.nil_ {
		return 0, 0, false
	}
	n := t.min(t.root)
	return n.key, n.val, true
}

func (t *Tree) min(x *node) *node {
	for x.left != t.nil_ {
		x = x.left
	}
	return x
}

func (t *Tree) transplant(u, v *node) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

// Delete removes the entry for key, reporting whether it existed.
func (t *Tree) Delete(key int64) bool {
	z := t.search(key)
	if z == t.nil_ {
		return false
	}
	t.size--
	y := z
	yOrig := y.color
	var x *node
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.min(z.right)
		yOrig = y.color
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOrig == black {
		t.deleteFixup(x)
	}
	return true
}

func (t *Tree) deleteFixup(x *node) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateLeft(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rotateRight(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateRight(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.rotateLeft(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}

// Ascend calls fn for each entry in key order until fn returns false.
func (t *Tree) Ascend(fn func(key, val int64) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == t.nil_ {
			return true
		}
		if !walk(n.left) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
		return walk(n.right)
	}
	walk(t.root)
}

// validate checks red-black invariants; used by tests.
func (t *Tree) validate() (ok bool, blackHeight int) {
	if t.root.color != black {
		return false, 0
	}
	var check func(n *node) (bool, int)
	check = func(n *node) (bool, int) {
		if n == t.nil_ {
			return true, 1
		}
		if n.color == red && (n.left.color == red || n.right.color == red) {
			return false, 0
		}
		lok, lh := check(n.left)
		rok, rh := check(n.right)
		if !lok || !rok || lh != rh {
			return false, 0
		}
		h := lh
		if n.color == black {
			h++
		}
		return true, h
	}
	return check(t.root)
}
