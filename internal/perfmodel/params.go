// Package perfmodel holds every calibrated cost parameter used by the
// virtual-time simulation, in one place. The values are taken from the
// paper's own measurements where it gives them (Table 1 for media costs,
// §3.4.1 for WRPKRU) and otherwise calibrated so the breakdown experiments
// (Table 2, Figure 8) reproduce the paper's relative gaps.
package perfmodel

// CPU clock of the evaluation platform (two Xeon Gold 5215M at 2.50 GHz).
const (
	CPUGHz = 2.5

	// Cycles converts a cycle count to virtual nanoseconds.
	nsPerCycleX1000 = 1000 / CPUGHz // 400
)

// Cycles converts CPU cycles to virtual nanoseconds at the platform clock.
func Cycles(n int64) int64 { return n * nsPerCycleX1000 / 1000 }

// Media parameters (paper Table 1, Optane DC PM and DDR4 DRAM).
const (
	// NVMReadLatency is the idle read latency of one cacheline (ns).
	NVMReadLatency = 305
	// NVMWriteLatency is the latency to the ADR/WPQ domain for one line (ns).
	NVMWriteLatency = 94
	// NVMReadBandwidth in bytes/second (39 GB/s).
	NVMReadBandwidth = 39e9
	// NVMWriteBandwidth in bytes/second (14 GB/s).
	NVMWriteBandwidth = 14e9

	// DRAMReadLatency / DRAMWriteLatency (ns) and bandwidths, for Table 1.
	DRAMReadLatency   = 81
	DRAMWriteLatency  = 86
	DRAMReadBandwidth = 115e9
	DRAMWriteBand     = 79e9

	// CachelineSize in bytes.
	CachelineSize = 64
	// PageSize is the only allocation granularity ZoFS supports (§5.1).
	PageSize = 4096
)

// Sequential-access amortization: after the first line of a streaming access
// the device pipeline hides most of the latency, so subsequent lines in the
// same call cost only their bandwidth share. These factors scale the
// latency charged to non-first lines.
const (
	// CLWBCost is the cost of a clwb instruction itself (ns); the real
	// persistence wait is charged by the fence.
	CLWBCost = 10
	// FenceCost is the cost of an sfence draining the store buffer (ns).
	FenceCost = 20
	// NTStoreExtra is extra per-line cost of a non-temporal store vs a
	// cached store (ns); non-temporal writes skip the read-for-ownership,
	// which is why PMFS-nocache beats stock PMFS in Figure 8.
	NTStoreExtra = 0
	// CachedWriteRFO is the read-for-ownership penalty charged per line for
	// cached (write-back) stores to NVM followed by clwb: the line must be
	// fetched before it can be modified.
	CachedWriteRFO = NVMReadLatency / 2
)

// Kernel/user boundary costs. Calibrated so that Figure 8's three groups
// (user-space ZoFS; ZoFS-sysempty just below; kernel implementations well
// below) reproduce, and so Table 2's NOVA-vs-ZoFS gap (~1µs for a 4KB
// append) holds.
const (
	// SyscallCost is the direct entry/exit cost of one system call (ns).
	SyscallCost = 400
	// SyscallPollution is the indirect cost (cacheline and TLB pollution)
	// amortized per syscall (ns). The paper names this as a major source of
	// ZoFS's advantage (§6.1).
	SyscallPollution = 250
	// ContextSwitch is a full process context switch, used for IPC-style
	// interactions (Aerie-style RPCs, Strata digestion wakeups) (ns).
	ContextSwitch = 3000
	// VFSOverhead is extra generic-VFS path cost charged by Ext4-DAX on
	// every operation (ns).
	VFSOverhead = 300
)

// Syscall is the total charge for entering and leaving the kernel once.
const Syscall = SyscallCost + SyscallPollution

// MPK costs (§3.4.1: "about 16 cycles on our platform").
const (
	WRPKRUCycles = 16
)

// WRPKRUCost is the virtual-ns cost of one PKRU update.
func WRPKRUCost() int64 { return Cycles(WRPKRUCycles) }

// Software-path costs for file system internals (CPU work, charged in
// addition to media accesses the work performs).
const (
	// CPUHashLookup is one hash computation + bucket probe (ns).
	CPUHashLookup = 30
	// DCacheLookup is one kernel dcache path-component resolution: hash,
	// lockref acquisition and permission check (ns).
	DCacheLookup = 120
	// CPUPathComponent is parsing/compare cost per path component (ns).
	CPUPathComponent = 25
	// CPUSmallOp is a generic small bookkeeping step (ns).
	CPUSmallOp = 15
	// CPUDentryScan is the per-slot cost of examining one 128-byte dentry
	// during a linear directory scan (decode the commit word, compare the
	// check hash, occasionally memcmp the name). Charged by the scan-based
	// lookup/insert paths on top of the media reads they perform.
	CPUDentryScan = 4
	// CPULockAcquire is the cost of an uncontended lock/lease acquisition
	// including its timestamp read (vDSO clock_gettime) (ns).
	CPULockAcquire = 30
	// JournalEntry is the CPU cost of forming one journal/log record,
	// excluding the media writes it performs (ns).
	JournalEntry = 40
)

// Kernel page-grant costs inside coffer_enlarge (charged under the kernel
// lock, hence serialized — the source of the Fig. 7(d)/(g) scalability
// knees). Metadata grants are zeroed by the kernel before they become
// visible (their pages hold structures parsed by other processes); bulk
// data grants are not.
const (
	// PTEUpdate is the per-page cost of installing a page-table entry in
	// one process (ns).
	PTEUpdate = 90
)

// Strata digestion model (§2.2, Table 2): when a second process needs the
// latest state of a shared file/dir, the owner's log must be digested by the
// kernel worker before the operation can proceed.
const (
	// DigestWakeup is the cost of signalling the kernel digestion thread
	// and switching to it and back.
	DigestWakeup = 2 * ContextSwitch
	// DigestPerEntryCPU is the CPU cost of applying one log entry during
	// digestion (the media copy is charged separately — the double write).
	DigestPerEntryCPU = 300
	// LeaseHandoff is the kernel-arbitrated lease transfer between two
	// processes sharing a file in Strata.
	LeaseHandoff = 2000
)

// MemcpyCost is the virtual-ns cost of staging n bytes through a DRAM
// bounce buffer: one read stream plus one write stream. The copy-path
// ZoFS variant pays this on top of the media access for every ReadAt and
// WriteAt; the zero-copy access windows skip the staging copy entirely.
func MemcpyCost(n int) int64 {
	return DRAMReadLatency + DRAMWriteLatency +
		int64(float64(n)*1e9/DRAMReadBandwidth) + int64(float64(n)*1e9/DRAMWriteBand)
}

// StageCost is the cost of materializing n streamed bytes in a DRAM
// staging buffer (allocation plus the DRAM write stream) — the work a
// borrowed device view avoids. Charged by copy-path fallbacks on top of
// the media access itself.
func StageCost(n int) int64 {
	return DRAMWriteLatency + int64(float64(n)*1e9/DRAMWriteBand)
}

// WriteBWDegradation returns the effective write-bandwidth multiplier for n
// concurrently writing threads. Optane write bandwidth peaks at a small
// thread count and then declines (Izraelevitz et al., cited as [25]); this
// table makes DWOL (Fig. 7e) roll off after ~12 threads as in the paper.
func WriteBWDegradation(n int) float64 {
	switch {
	case n <= 8:
		return 1.0
	case n <= 12:
		return 0.97
	case n <= 16:
		return 0.88
	default:
		return 0.80
	}
}
