package fslibs

import (
	"errors"
	"fmt"
	"testing"

	"zofs/internal/kernfs"
	"zofs/internal/logfs"
	"zofs/internal/nvm"
	"zofs/internal/proc"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

func newLib(t *testing.T) (*nvm.Device, *kernfs.KernFS, *Lib, *proc.Thread) {
	t.Helper()
	dev := nvm.NewDevice(128 << 20)
	if err := kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755}); err != nil {
		t.Fatal(err)
	}
	k, err := kernfs.Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	p := proc.NewProcess(dev, 0, 0)
	th := p.NewThread()
	l, err := Mount(k, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ZoFS().EnsureRootDir(th); err != nil {
		t.Fatal(err)
	}
	return dev, k, l, th
}

func TestOpenReadWriteSeek(t *testing.T) {
	_, _, l, th := newLib(t)
	fd, err := l.Open(th, "/f", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if fd != 0 {
		t.Fatalf("first fd = %d, want 0", fd)
	}
	if n, err := l.Write(th, fd, []byte("hello world")); err != nil || n != 11 {
		t.Fatalf("Write = %d,%v", n, err)
	}
	if pos, err := l.Lseek(th, fd, 6, SeekSet); err != nil || pos != 6 {
		t.Fatalf("Lseek = %d,%v", pos, err)
	}
	buf := make([]byte, 5)
	if n, err := l.Read(th, fd, buf); err != nil || n != 5 || string(buf) != "world" {
		t.Fatalf("Read = %d %q %v", n, buf, err)
	}
	// Sequential reads advance the offset.
	if pos, _ := l.Lseek(th, fd, 0, SeekCur); pos != 11 {
		t.Fatalf("pos after read = %d", pos)
	}
	if pos, _ := l.Lseek(th, fd, -11, SeekEnd); pos != 0 {
		t.Fatal("SeekEnd broken")
	}
	if _, err := l.Lseek(th, fd, -1, SeekSet); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatal("negative seek must fail")
	}
	if err := l.Close(th, fd); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(th, fd, buf); !errors.Is(err, vfs.ErrBadFD) {
		t.Fatal("read on closed fd")
	}
}

func TestLowestFDAndDup(t *testing.T) {
	_, _, l, th := newLib(t)
	a, _ := l.Open(th, "/a", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	b, _ := l.Open(th, "/b", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	c, _ := l.Open(th, "/c", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("fds = %d,%d,%d", a, b, c)
	}
	l.Close(th, b)
	// dup must return the lowest available FD (1), the paper's §4.2 case.
	d, err := l.Dup(a)
	if err != nil || d != 1 {
		t.Fatalf("Dup = %d,%v, want 1", d, err)
	}
	// dup shares the offset.
	l.Write(th, a, []byte("xyz"))
	if pos, _ := l.Lseek(th, d, 0, SeekCur); pos != 3 {
		t.Fatalf("dup offset not shared: %d", pos)
	}
	// Dup2 onto an occupied slot closes it.
	if to, err := l.Dup2(th, a, c); err != nil || to != c {
		t.Fatalf("Dup2 = %d,%v", to, err)
	}
}

func TestAppendMode(t *testing.T) {
	_, _, l, th := newLib(t)
	fd, _ := l.Open(th, "/log", vfs.O_CREATE|vfs.O_WRONLY|vfs.O_APPEND, 0o644)
	l.Write(th, fd, []byte("aaa"))
	// A second writer appends concurrently-safe at EOF.
	fd2, _ := l.Open(th, "/log", vfs.O_WRONLY|vfs.O_APPEND, 0)
	l.Write(th, fd2, []byte("bbb"))
	l.Write(th, fd, []byte("ccc"))
	fi, _ := l.Stat(th, "/log")
	if fi.Size != 9 {
		t.Fatalf("size = %d", fi.Size)
	}
	rfd, _ := l.Open(th, "/log", vfs.O_RDONLY, 0)
	buf := make([]byte, 9)
	l.Read(th, rfd, buf)
	if string(buf) != "aaabbbccc" {
		t.Fatalf("content = %q", buf)
	}
}

func TestCwdAndRelativePaths(t *testing.T) {
	_, _, l, th := newLib(t)
	l.Mkdir(th, "/w", 0o755)
	l.Mkdir(th, "/w/sub", 0o755)
	if err := l.Chdir(th, "/w"); err != nil {
		t.Fatal(err)
	}
	if l.Getcwd() != "/w" {
		t.Fatalf("cwd = %q", l.Getcwd())
	}
	fd, err := l.Open(th, "sub/file", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	l.Close(th, fd)
	if _, err := l.Stat(th, "/w/sub/file"); err != nil {
		t.Fatalf("relative create landed wrong: %v", err)
	}
	if err := l.Chdir(th, "sub"); err != nil {
		t.Fatal(err)
	}
	if l.Getcwd() != "/w/sub" {
		t.Fatalf("cwd = %q", l.Getcwd())
	}
	if _, err := l.Stat(th, "../sub/file"); err != nil {
		t.Fatalf("dot-dot path: %v", err)
	}
	if err := l.Chdir(th, "file"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("chdir to file: %v", err)
	}
}

func TestSymlinkRedispatch(t *testing.T) {
	_, _, l, th := newLib(t)
	l.Mkdir(th, "/real", 0o755)
	fd, _ := l.Open(th, "/real/data", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	l.Write(th, fd, []byte("via-link"))
	l.Symlink(th, "/real", "/alias")
	// Open through the symlinked directory: dispatcher must re-dispatch.
	rfd, err := l.Open(th, "/alias/data", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open through symlink: %v", err)
	}
	buf := make([]byte, 8)
	l.Read(th, rfd, buf)
	if string(buf) != "via-link" {
		t.Fatalf("content = %q", buf)
	}
	// Symlink loops are detected.
	l.Symlink(th, "/loop2", "/loop1")
	l.Symlink(th, "/loop1", "/loop2")
	if _, err := l.Stat(th, "/loop1"); !errors.Is(err, ErrLoop) {
		t.Fatalf("loop error = %v", err)
	}
	if tgt, err := l.Readlink(th, "/alias"); err != nil || tgt != "/real" {
		t.Fatalf("Readlink = %q,%v", tgt, err)
	}
}

func TestMountPathRouting(t *testing.T) {
	dev := nvm.NewDevice(64 << 20)
	kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755})
	k, _ := kernfs.Mount(dev)
	p := proc.NewProcess(dev, 0, 0)
	th := p.NewThread()
	l, err := Mount(k, th, Options{MountPath: "/mnt/pm"})
	if err != nil {
		t.Fatal(err)
	}
	l.ZoFS().EnsureRootDir(th)
	fd, err := l.Open(th, "/mnt/pm/x", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open inside mount: %v", err)
	}
	l.Close(th, fd)
	// Internally the file lives at /x.
	if _, err := l.ZoFS().Stat(th, "/x"); err != nil {
		t.Fatalf("µFS-internal path: %v", err)
	}
	// Outside the mount with no fallback: not found.
	if _, err := l.Open(th, "/etc/passwd", vfs.O_RDONLY, 0); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("outside-mount open = %v", err)
	}
}

func TestExecFDTableSerialization(t *testing.T) {
	_, _, l, th := newLib(t)
	fd, _ := l.Open(th, "/persist", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	l.Write(th, fd, []byte("0123456789"))
	l.Lseek(th, fd, 4, SeekSet)
	l.Open(th, "/exe", vfs.O_CREATE|vfs.O_RDWR, 0o755)

	nl, err := l.Exec(th, "/exe")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	// The same FD numbers work in the new image with preserved offsets.
	buf := make([]byte, 3)
	if n, err := nl.Read(th, fd, buf); err != nil || n != 3 || string(buf) != "456" {
		t.Fatalf("post-exec read = %d %q %v", n, buf, err)
	}
}

func TestGracefulErrorReturn(t *testing.T) {
	// A wild pointer inside the µFS must surface as an error, not kill the
	// caller (§3.4.2). Corrupt a dentry's inode pointer to point outside
	// the coffer, then stat through it.
	dev, k, l, th := newLib(t)
	fd, _ := l.Open(th, "/victim", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	l.Close(th, fd)
	_ = k

	// Find the dentry on the device and trash its inode pointer. The root
	// dir's L1 page is reachable from the root inode; rather than walking
	// structures here, overwrite the victim's inode page header directly.
	fi, err := l.Stat(th, "/victim")
	if err != nil {
		t.Fatal(err)
	}
	// Zap the inode magic so the next walk sees garbage, then point its
	// size out of range for good measure.
	dev.WriteNT(nil, fi.Inode*4096, make([]byte, 64))

	if _, err := l.Stat(th, "/victim"); err == nil {
		t.Fatal("stat of corrupted file should fail")
	}
	// The process survives and other files keep working.
	if _, err := l.Open(th, "/ok", vfs.O_CREATE|vfs.O_RDWR, 0o644); err != nil {
		t.Fatalf("library unusable after fault: %v", err)
	}
	// The window must be closed after the fault (G1 restored).
	if th.PKRU().CanRead(1) {
		t.Fatal("protection window left open after fault recovery")
	}
}

func TestOpenExclusive(t *testing.T) {
	_, _, l, th := newLib(t)
	if _, err := l.Open(th, "/x", vfs.O_CREATE|vfs.O_EXCL|vfs.O_RDWR, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Open(th, "/x", vfs.O_CREATE|vfs.O_EXCL|vfs.O_RDWR, 0o644); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("O_EXCL on existing = %v", err)
	}
}

func TestManyFilesManyFDs(t *testing.T) {
	_, _, l, th := newLib(t)
	var fds []int
	for i := 0; i < 100; i++ {
		fd, err := l.Open(th, fmt.Sprintf("/m%03d", i), vfs.O_CREATE|vfs.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if fd != i {
			t.Fatalf("fd %d for file %d", fd, i)
		}
		fds = append(fds, fd)
	}
	for _, fd := range fds {
		if err := l.Close(th, fd); err != nil {
			t.Fatal(err)
		}
	}
	ents, _ := l.ReadDir(th, "/")
	if len(ents) != 100 {
		t.Fatalf("ReadDir = %d", len(ents))
	}
}

func TestRenameAndUnlinkThroughLib(t *testing.T) {
	_, _, l, th := newLib(t)
	fd, _ := l.Open(th, "/old", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	l.Write(th, fd, []byte("data"))
	if err := l.Rename(th, "/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Stat(th, "/new"); err != nil {
		t.Fatal(err)
	}
	if err := l.Unlink(th, "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Stat(th, "/new"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("unlink through lib failed")
	}
}

func TestTwoProcessesShareFiles(t *testing.T) {
	dev, k, l1, th1 := newLib(t)
	_ = dev
	p2 := proc.NewProcess(k.Device(), 0, 0)
	th2 := p2.NewThread()
	l2, err := Mount(k, th2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fd1, _ := l1.Open(th1, "/shared", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	l1.Write(th1, fd1, []byte("from-p1"))

	fd2, err := l2.Open(th2, "/shared", vfs.O_RDWR, 0)
	if err != nil {
		t.Fatalf("p2 open: %v", err)
	}
	buf := make([]byte, 7)
	l2.Read(th2, fd2, buf)
	if string(buf) != "from-p1" {
		t.Fatalf("p2 read = %q", buf)
	}
	l2.Pwrite(th2, fd2, []byte("FROM-P2"), 0)
	l1.Pread(th1, fd1, buf, 0)
	if string(buf) != "FROM-P2" {
		t.Fatalf("p1 read-back = %q", buf)
	}
	_ = zofs.Options{}
}

func TestMixedMicroFSThroughDispatcher(t *testing.T) {
	// A ZoFS namespace with a LogFS coffer mounted at /logs: the dispatcher
	// routes by coffer type (paper Figure 2/4: multiple µFSs in FSLibs).
	_, k, l, th := newLib(t)
	id, err := k.CofferNew(th, k.RootCoffer(), "/logs", logfs.TypeLogFS, 0o755, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ZoFS().Kern().FSMount(th); err == nil {
		t.Fatal("double fs_mount should fail")
	}
	_ = id
	// A ZoFS file and a LogFS file through the SAME POSIX layer.
	zfd, err := l.Open(th, "/regular.txt", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	l.Write(th, zfd, []byte("zofs-data"))
	l.Close(th, zfd)

	lfd, err := l.Open(th, "/logs/app.log", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("LogFS open via dispatcher: %v", err)
	}
	if _, err := l.Write(th, lfd, []byte("logfs-data")); err != nil {
		t.Fatal(err)
	}
	l.Close(th, lfd)

	zfi, err := l.Stat(th, "/regular.txt")
	if err != nil || zfi.Size != 9 {
		t.Fatalf("zofs stat = %+v, %v", zfi, err)
	}
	lfi, err := l.Stat(th, "/logs/app.log")
	if err != nil || lfi.Size != 10 {
		t.Fatalf("logfs stat = %+v, %v", lfi, err)
	}
	if zfi.Coffer == lfi.Coffer {
		t.Fatal("files should live in different coffers")
	}
	ents, err := l.ReadDir(th, "/logs")
	if err != nil || len(ents) != 1 || ents[0].Name != "app.log" {
		t.Fatalf("LogFS readdir via dispatcher = %v, %v", ents, err)
	}
}

// TestChmodMergeBackThroughLib drives the Table-5 split/merge round-trip
// through the POSIX layer: chmod away from the parent's class splits a
// coffer, chmod back merges it, and the file stays readable throughout.
func TestChmodMergeBackThroughLib(t *testing.T) {
	_, k, l, th := newLib(t)
	fd, err := l.Open(th, "/roundtrip", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write(th, fd, []byte("survives the round-trip")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(th, fd); err != nil {
		t.Fatal(err)
	}
	base := len(k.Coffers())

	if err := l.Chmod(th, "/roundtrip", 0o600); err != nil {
		t.Fatal(err)
	}
	if got := len(k.Coffers()); got != base+1 {
		t.Fatalf("after split: %d coffers, want %d", got, base+1)
	}
	if err := l.Chmod(th, "/roundtrip", 0o644); err != nil {
		t.Fatal(err)
	}
	if got := len(k.Coffers()); got != base {
		t.Fatalf("after merge-back: %d coffers, want %d", got, base)
	}

	fi, err := l.Stat(th, "/roundtrip")
	if err != nil || fi.Mode != 0o644 {
		t.Fatalf("stat after round-trip: %+v, %v", fi, err)
	}
	fd, err = l.Open(th, "/roundtrip", vfs.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := l.Read(th, fd, buf)
	if err != nil || string(buf[:n]) != "survives the round-trip" {
		t.Fatalf("read after round-trip: %q, %v", buf[:n], err)
	}
	l.Close(th, fd)
}
