// Package fslibs implements the user-space half of Treasury (paper §3.2,
// §4.2): the library preloaded into applications. It contains the
// dispatcher that routes intercepted file system calls to the right µFS by
// coffer type, the user-space FD mapping table with POSIX lowest-FD
// semantics (dup-correct, serializable across exec), current-working-
// directory tracking, symlink re-dispatch, and the graceful-error-return
// mechanism that converts faults inside µFS code into file system errors
// instead of killing the process (§3.4.2).
package fslibs

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"zofs/internal/coffer"
	"zofs/internal/kernfs"
	"zofs/internal/lockprof"
	"zofs/internal/logfs"
	"zofs/internal/mpk"
	"zofs/internal/nvm"
	"zofs/internal/proc"
	"zofs/internal/series"
	"zofs/internal/spans"
	"zofs/internal/telemetry"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

// maxSymlinkHops bounds symlink expansion loops (ELOOP analogue).
const maxSymlinkHops = 40

// ErrLoop reports circular symlink expansion.
var ErrLoop = errors.New("fslibs: too many levels of symbolic links")

// Options configures a Lib instance.
type Options struct {
	// MountPath is where the Treasury namespace appears in the process's
	// view; paths outside it are rejected (or routed to Fallback).
	// Defaults to "/".
	MountPath string
	// Fallback handles paths outside MountPath (the "kernel file system"
	// in the paper's dispatcher). Nil means such paths fail with
	// vfs.ErrNotExist.
	Fallback vfs.FileSystem
	// ZoFS options for the instantiated µFS.
	ZoFS zofs.Options
}

// Lib is one process's FSLibs instance.
type Lib struct {
	kern  *kernfs.KernFS
	opts  Options
	byTyp map[coffer.Type]vfs.FileSystem

	mu  lockprof.RealMutex // guards fds/cwd; real-only, no virtual cost
	fds map[int]*fdEntry
	cwd string
}

type fdEntry struct {
	h     vfs.Handle
	path  string
	flags int
	pos   int64
}

// Mount registers the process with KernFS (fs_mount) and builds the
// dispatcher with a ZoFS µFS attached for ZoFS-type coffers.
func Mount(kern *kernfs.KernFS, th *proc.Thread, opts Options) (*Lib, error) {
	if opts.MountPath == "" {
		opts.MountPath = "/"
	}
	if err := kern.FSMount(th); err != nil {
		return nil, err
	}
	l := &Lib{
		kern: kern,
		opts: opts,
		byTyp: map[coffer.Type]vfs.FileSystem{
			coffer.TypeZoFS: zofs.New(kern, opts.ZoFS),
			logfs.TypeLogFS: logfs.New(kern),
		},
		fds: map[int]*fdEntry{},
		cwd: "/",
	}
	l.mu.Init("fslib.fds", strconv.Itoa(th.Proc.PID))
	return l, nil
}

// Umount deregisters from KernFS and drops all FDs.
func (l *Lib) Umount(th *proc.Thread) error {
	l.mu.Lock()
	l.fds = map[int]*fdEntry{}
	l.mu.Unlock()
	return l.kern.FSUmount(th)
}

// RegisterFS attaches a µFS for a coffer type (Treasury supports multiple
// µFS implementations side by side, §3.2).
func (l *Lib) RegisterFS(typ coffer.Type, fs vfs.FileSystem) { l.byTyp[typ] = fs }

// ZoFS returns the attached ZoFS instance (tooling, recovery).
func (l *Lib) ZoFS() *zofs.FS { return l.byTyp[coffer.TypeZoFS].(*zofs.FS) }

// guard is the graceful-error-return mechanism: panics raised by MPK
// violations or wild device accesses inside µFS code are converted into a
// file system error, and the thread's protection window is force-closed —
// the analogue of the SIGSEGV handler's siglongjmp back to the FSLibs
// function entry (§3.4.2).
func (l *Lib) guard(th *proc.Thread, err *error) {
	r := recover()
	if r == nil {
		return
	}
	if nvm.IsInjectedCrash(r) {
		panic(r) // crash injection must propagate to the test harness
	}
	viol, isViolation := r.(mpk.Violation)
	if _, isFault := r.(nvm.Fault); !isFault && !isViolation {
		panic(r)
	}
	rec := l.kern.Device().Recorder()
	rec.Inc(telemetry.CtrFaultsRecovered)
	// The op survives with an error, but its span records the abort so
	// the attribution tables can separate faulted from clean latency.
	spans.FromClock(th.Clk).MarkAborted()
	th.CloseWindow()
	if isViolation {
		rec.Inc(telemetry.CtrMPKViolations)
		// Attribute the faulting page to its coffer and report it, so
		// repeated stray writes at one victim trip the kernel's read-only
		// quarantine (DESIGN.md §13) instead of faulting forever.
		if id, ok := l.kern.OwnerOf(viol.Page); ok {
			l.kern.ReportViolation(th, id)
		}
	}
	// The kernel may have changed our mappings behind the library's
	// back (recovery unmaps coffers, §3.5; quarantine downgrades or
	// evicts them): drop cached mappings so the next operation re-issues
	// coffer_map and observes the typed quarantine error.
	if z, ok := l.byTyp[coffer.TypeZoFS].(*zofs.FS); ok {
		z.InvalidateAll()
	}
	*err = fmt.Errorf("%w: fault inside FS library: %v", vfs.ErrIO, r)
}

// trace starts a per-op latency measurement against the thread's virtual
// clock, returning the closure that records it. Deferred textually before
// guard so it observes the clock after any fault recovery has been charged —
// and, for spans, so the root closes after guard has marked it aborted.
func (l *Lib) trace(th *proc.Thread, op telemetry.Op) func() {
	return l.traceAt(th, op, "")
}

// traceAt is trace for path-taking operations: the path's hash is stamped on
// the root span so traces can be grouped by file without recording names.
func (l *Lib) traceAt(th *proc.Thread, op telemetry.Op, path string) func() {
	rec := l.kern.Device().Recorder()
	sp := spans.FromClock(th.Clk)
	if rec == nil && sp == nil && series.Active() == nil {
		return func() {}
	}
	rec.Inc(telemetry.CtrDispatchOps)
	start := th.Clk.Now()
	sp.Begin(op, spans.PathHash(path), start)
	return func() {
		now := th.Clk.Now()
		rec.Observe(op, now-start)
		series.ObserveActive(op, start, now-start)
		rec.TraceOp(th.TID, op, start, now-start)
		sp.End(now)
	}
}

// resolve normalizes a path against the CWD and checks the mount point,
// returning the µFS-internal path.
func (l *Lib) resolve(path string) (string, bool) {
	if !strings.HasPrefix(path, "/") {
		l.mu.Lock()
		path = l.cwd + "/" + path
		l.mu.Unlock()
	}
	path = Clean(path)
	mp := l.opts.MountPath
	if mp == "/" {
		return path, true
	}
	if path == mp {
		return "/", true
	}
	if strings.HasPrefix(path, mp+"/") {
		return path[len(mp):], true
	}
	return path, false
}

// Clean lexically normalizes an absolute or relative path.
func Clean(p string) string { return vfs.Clean(p) }

// fsFor picks the µFS for a path by the enclosing coffer's type (§4.2:
// "dispatch the system calls to the corresponding µFS according to the
// coffer type").
func (l *Lib) fsFor(th *proc.Thread, path string) (vfs.FileSystem, error) {
	id, _, ok := l.kern.ResolveLongest(th.Clk, path)
	if !ok {
		return nil, vfs.ErrNotExist
	}
	info, ok := l.kern.Info(id)
	if !ok {
		return nil, vfs.ErrNotExist
	}
	fs := l.byTyp[info.Type]
	if fs == nil {
		return nil, fmt.Errorf("%w: no µFS for coffer type %d", vfs.ErrInvalid, info.Type)
	}
	return fs, nil
}

// dispatch runs op against the µFS for path, re-dispatching on symlink
// expansion (§4.2: "the new path will be returned to the dispatcher, which
// will re-dispatch the file request").
func (l *Lib) dispatch(th *proc.Thread, path string, op func(fs vfs.FileSystem, p string) error) error {
	sp := spans.FromClock(th.Clk)
	p, inMount := l.resolve(path)
	for hop := 0; ; hop++ {
		if hop > maxSymlinkHops {
			return ErrLoop
		}
		t0 := th.Clk.Now()
		var fs vfs.FileSystem
		if inMount {
			var err error
			if fs, err = l.fsFor(th, p); err != nil {
				return err
			}
		} else {
			if l.opts.Fallback == nil {
				return vfs.ErrNotExist
			}
			fs = l.opts.Fallback
		}
		// Coffer-type routing (resolve + ResolveLongest) is the dispatcher's
		// own cost; record it as a child span per hop so symlink re-dispatch
		// shows up as repeated dispatch segments on the timeline.
		sp.Child("fslib.dispatch", t0, th.Clk.Now()-t0)
		err := op(fs, p)
		var se *vfs.SymlinkError
		if errors.As(err, &se) {
			p = se.Path
			continue
		}
		return err
	}
}

// ---- FD table ----------------------------------------------------------------

// allocFD returns the lowest unused FD number — the dup() guarantee the
// paper calls out as incompatible with range-split FD schemes (§4.2).
func (l *Lib) allocFD() int {
	for fd := 0; ; fd++ {
		if _, used := l.fds[fd]; !used {
			return fd
		}
	}
}

func (l *Lib) getFD(fd int) (*fdEntry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.fds[fd]
	if e == nil {
		return nil, vfs.ErrBadFD
	}
	return e, nil
}

// Open opens path, returning the new FD.
func (l *Lib) Open(th *proc.Thread, path string, flags int, mode coffer.Mode) (fd int, err error) {
	defer l.traceAt(th, telemetry.OpOpen, path)()
	defer l.guard(th, &err)
	var h vfs.Handle
	var finalPath string
	err = l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		var e error
		if flags&vfs.O_CREATE != 0 && flags&vfs.O_EXCL != 0 {
			if _, statErr := fs.Stat(th, p); statErr == nil {
				return vfs.ErrExist
			}
		}
		if flags&vfs.O_CREATE != 0 {
			if _, statErr := fs.Stat(th, p); errors.Is(statErr, vfs.ErrNotExist) {
				h, e = fs.Create(th, p, mode)
				if e == nil && flags&vfs.O_TRUNC == 0 {
					finalPath = p
					return nil
				}
				if e != nil {
					return e
				}
			}
		}
		h, e = fs.Open(th, p, flags)
		finalPath = p
		return e
	})
	if err != nil {
		return -1, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fd = l.allocFD()
	e := &fdEntry{h: h, path: finalPath, flags: flags}
	if flags&vfs.O_APPEND != 0 {
		if fi, serr := h.Stat(th); serr == nil {
			e.pos = fi.Size
		}
	}
	l.fds[fd] = e
	return fd, nil
}

// Create is creat(2): create-or-truncate, write-only FD.
func (l *Lib) Create(th *proc.Thread, path string, mode coffer.Mode) (int, error) {
	return l.Open(th, path, vfs.O_CREATE|vfs.O_TRUNC|vfs.O_RDWR, mode)
}

// Close releases an FD.
func (l *Lib) Close(th *proc.Thread, fd int) (err error) {
	defer l.trace(th, telemetry.OpClose)()
	defer l.guard(th, &err)
	l.mu.Lock()
	e := l.fds[fd]
	delete(l.fds, fd)
	l.mu.Unlock()
	if e == nil {
		return vfs.ErrBadFD
	}
	return e.h.Close(th)
}

// Dup duplicates an FD onto the lowest available number.
func (l *Lib) Dup(fd int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.fds[fd]
	if e == nil {
		return -1, vfs.ErrBadFD
	}
	nfd := l.allocFD()
	l.fds[nfd] = e // shared offset, as with POSIX dup
	return nfd, nil
}

// Dup2 duplicates an FD onto a specific number, closing any previous one.
func (l *Lib) Dup2(th *proc.Thread, fd, to int) (int, error) {
	l.mu.Lock()
	e := l.fds[fd]
	old := l.fds[to]
	if e != nil {
		l.fds[to] = e
	}
	l.mu.Unlock()
	if e == nil {
		return -1, vfs.ErrBadFD
	}
	if old != nil && old != e {
		old.h.Close(th)
	}
	return to, nil
}

// Read reads from the FD's current offset.
func (l *Lib) Read(th *proc.Thread, fd int, buf []byte) (n int, err error) {
	defer l.trace(th, telemetry.OpRead)()
	defer l.guard(th, &err)
	e, err := l.getFD(fd)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	pos := e.pos
	l.mu.Unlock()
	n, err = e.h.ReadAt(th, buf, pos)
	l.mu.Lock()
	e.pos = pos + int64(n)
	l.mu.Unlock()
	return n, err
}

// Write writes at the FD's current offset (or atomically at EOF for
// O_APPEND FDs).
func (l *Lib) Write(th *proc.Thread, fd int, buf []byte) (n int, err error) {
	defer l.trace(th, telemetry.OpWrite)()
	defer l.guard(th, &err)
	e, err := l.getFD(fd)
	if err != nil {
		return 0, err
	}
	if e.flags&vfs.O_APPEND != 0 {
		off, aerr := e.h.Append(th, buf)
		if aerr != nil {
			return 0, aerr
		}
		l.kern.Device().AddAppBytes(int64(len(buf)))
		l.mu.Lock()
		e.pos = off + int64(len(buf))
		l.mu.Unlock()
		return len(buf), nil
	}
	l.mu.Lock()
	pos := e.pos
	l.mu.Unlock()
	n, err = e.h.WriteAt(th, buf, pos)
	// The dispatcher is the application boundary for preloaded programs, so
	// it credits the byte-flow ledger's app bytes — the same role obsfs
	// plays for the benchmark harnesses.
	l.kern.Device().AddAppBytes(int64(n))
	l.mu.Lock()
	e.pos = pos + int64(n)
	l.mu.Unlock()
	return n, err
}

// Pread reads at an explicit offset without moving the FD offset.
func (l *Lib) Pread(th *proc.Thread, fd int, buf []byte, off int64) (n int, err error) {
	defer l.trace(th, telemetry.OpRead)()
	defer l.guard(th, &err)
	e, err := l.getFD(fd)
	if err != nil {
		return 0, err
	}
	return e.h.ReadAt(th, buf, off)
}

// Pwrite writes at an explicit offset without moving the FD offset.
func (l *Lib) Pwrite(th *proc.Thread, fd int, buf []byte, off int64) (n int, err error) {
	defer l.trace(th, telemetry.OpWrite)()
	defer l.guard(th, &err)
	e, err := l.getFD(fd)
	if err != nil {
		return 0, err
	}
	n, err = e.h.WriteAt(th, buf, off)
	l.kern.Device().AddAppBytes(int64(n))
	return n, err
}

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions the FD offset.
func (l *Lib) Lseek(th *proc.Thread, fd int, off int64, whence int) (int64, error) {
	e, err := l.getFD(fd)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = e.pos
	case SeekEnd:
		fi, serr := e.h.Stat(th)
		if serr != nil {
			return 0, serr
		}
		base = fi.Size
	default:
		return 0, vfs.ErrInvalid
	}
	if base+off < 0 {
		return 0, vfs.ErrInvalid
	}
	e.pos = base + off
	return e.pos, nil
}

// Fsync persists an FD (synchronous µFSs make this a no-op).
func (l *Lib) Fsync(th *proc.Thread, fd int) (err error) {
	defer l.trace(th, telemetry.OpFsync)()
	defer l.guard(th, &err)
	e, err := l.getFD(fd)
	if err != nil {
		return err
	}
	return e.h.Sync(th)
}

// Fstat stats an open FD.
func (l *Lib) Fstat(th *proc.Thread, fd int) (fi vfs.FileInfo, err error) {
	defer l.trace(th, telemetry.OpStat)()
	defer l.guard(th, &err)
	e, err := l.getFD(fd)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return e.h.Stat(th)
}

// Ftruncate resizes an open FD.
func (l *Lib) Ftruncate(th *proc.Thread, fd int, size int64) (err error) {
	defer l.trace(th, telemetry.OpTruncate)()
	defer l.guard(th, &err)
	e, err := l.getFD(fd)
	if err != nil {
		return err
	}
	return l.dispatch(th, e.path, func(fs vfs.FileSystem, p string) error {
		return fs.Truncate(th, p, size)
	})
}

// ---- path operations -----------------------------------------------------------

// Stat stats a path (following symlinks).
func (l *Lib) Stat(th *proc.Thread, path string) (fi vfs.FileInfo, err error) {
	defer l.traceAt(th, telemetry.OpStat, path)()
	defer l.guard(th, &err)
	err = l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		var e error
		fi, e = fs.Stat(th, p)
		return e
	})
	return fi, err
}

// Mkdir creates a directory.
func (l *Lib) Mkdir(th *proc.Thread, path string, mode coffer.Mode) (err error) {
	defer l.traceAt(th, telemetry.OpMkdir, path)()
	defer l.guard(th, &err)
	return l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		return fs.Mkdir(th, p, mode)
	})
}

// Unlink removes a file.
func (l *Lib) Unlink(th *proc.Thread, path string) (err error) {
	defer l.traceAt(th, telemetry.OpUnlink, path)()
	defer l.guard(th, &err)
	return l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		return fs.Unlink(th, p)
	})
}

// Rmdir removes an empty directory.
func (l *Lib) Rmdir(th *proc.Thread, path string) (err error) {
	defer l.traceAt(th, telemetry.OpRmdir, path)()
	defer l.guard(th, &err)
	return l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		return fs.Rmdir(th, p)
	})
}

// Rename moves a file or directory.
func (l *Lib) Rename(th *proc.Thread, oldPath, newPath string) (err error) {
	defer l.traceAt(th, telemetry.OpRename, oldPath)()
	defer l.guard(th, &err)
	np, inMount := l.resolve(newPath)
	if !inMount {
		return vfs.ErrCrossDevice
	}
	return l.dispatch(th, oldPath, func(fs vfs.FileSystem, p string) error {
		return fs.Rename(th, p, np)
	})
}

// Chmod changes permission bits.
func (l *Lib) Chmod(th *proc.Thread, path string, mode coffer.Mode) (err error) {
	defer l.traceAt(th, telemetry.OpChmod, path)()
	defer l.guard(th, &err)
	return l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		return fs.Chmod(th, p, mode)
	})
}

// Chown changes ownership.
func (l *Lib) Chown(th *proc.Thread, path string, uid, gid uint32) (err error) {
	defer l.traceAt(th, telemetry.OpChown, path)()
	defer l.guard(th, &err)
	return l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		return fs.Chown(th, p, uid, gid)
	})
}

// Symlink creates a symbolic link.
func (l *Lib) Symlink(th *proc.Thread, target, link string) (err error) {
	defer l.traceAt(th, telemetry.OpSymlink, link)()
	defer l.guard(th, &err)
	return l.dispatch(th, link, func(fs vfs.FileSystem, p string) error {
		return fs.Symlink(th, target, p)
	})
}

// Readlink reads a symlink's target.
func (l *Lib) Readlink(th *proc.Thread, path string) (target string, err error) {
	defer l.traceAt(th, telemetry.OpReadlink, path)()
	defer l.guard(th, &err)
	err = l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		var e error
		target, e = fs.Readlink(th, p)
		return e
	})
	return target, err
}

// ReadDir lists a directory.
func (l *Lib) ReadDir(th *proc.Thread, path string) (ents []vfs.DirEntry, err error) {
	defer l.traceAt(th, telemetry.OpReadDir, path)()
	defer l.guard(th, &err)
	err = l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		var e error
		ents, e = fs.ReadDir(th, p)
		return e
	})
	return ents, err
}

// Truncate resizes a file by path.
func (l *Lib) Truncate(th *proc.Thread, path string, size int64) (err error) {
	defer l.traceAt(th, telemetry.OpTruncate, path)()
	defer l.guard(th, &err)
	return l.dispatch(th, path, func(fs vfs.FileSystem, p string) error {
		return fs.Truncate(th, p, size)
	})
}

// Chdir changes the maintained working directory (§4.2: "we prepend the
// maintained current working directory path to the relative path").
func (l *Lib) Chdir(th *proc.Thread, path string) error {
	fi, err := l.Stat(th, path)
	if err != nil {
		return err
	}
	if fi.Type != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	p, _ := l.resolve(path)
	l.mu.Lock()
	l.cwd = p
	l.mu.Unlock()
	return nil
}

// Getcwd returns the maintained working directory.
func (l *Lib) Getcwd() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cwd
}

// ---- exec FD-table serialization -------------------------------------------------

// fdEnvVar is the dedicated environment variable carrying the FD table
// across exec (§4.2: "we serialize the FD mapping table content using
// base64 and pass it across exec calls").
const fdEnvVar = "ZOFS_FDTABLE"

type fdRecord struct {
	FD    int    `json:"fd"`
	Path  string `json:"path"`
	Flags int    `json:"flags"`
	Pos   int64  `json:"pos"`
}

// SerializeFDs encodes the FD table for exec, returning the environment
// entry ("ZOFS_FDTABLE=...").
func (l *Lib) SerializeFDs() (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs := make([]fdRecord, 0, len(l.fds))
	for fd, e := range l.fds {
		recs = append(recs, fdRecord{FD: fd, Path: e.path, Flags: e.flags, Pos: e.pos})
	}
	raw, err := json.Marshal(recs)
	if err != nil {
		return "", err
	}
	return fdEnvVar + "=" + base64.StdEncoding.EncodeToString(raw), nil
}

// RestoreFDs rebuilds the FD table in a freshly exec'd process from the
// environment entry produced by SerializeFDs.
func (l *Lib) RestoreFDs(th *proc.Thread, env string) error {
	v, ok := strings.CutPrefix(env, fdEnvVar+"=")
	if !ok {
		return fmt.Errorf("fslibs: bad FD-table env entry")
	}
	raw, err := base64.StdEncoding.DecodeString(v)
	if err != nil {
		return err
	}
	var recs []fdRecord
	if err := json.Unmarshal(raw, &recs); err != nil {
		return err
	}
	for _, r := range recs {
		var h vfs.Handle
		derr := l.dispatch(th, r.Path, func(fs vfs.FileSystem, p string) error {
			var e error
			h, e = fs.Open(th, p, r.Flags&^(vfs.O_TRUNC|vfs.O_EXCL|vfs.O_CREATE))
			return e
		})
		if derr != nil {
			continue // the file vanished; the FD is simply absent, as after a failed reopen
		}
		l.mu.Lock()
		l.fds[r.FD] = &fdEntry{h: h, path: r.Path, flags: r.Flags, pos: r.Pos}
		l.mu.Unlock()
	}
	return nil
}

// Exec simulates execve through Treasury: the FD table is serialized into
// the environment, the kernel validates/maps the executable (file_execve),
// and a fresh Lib for the same process is returned with the FD table
// restored.
func (l *Lib) Exec(th *proc.Thread, exePath string) (*Lib, error) {
	env, err := l.SerializeFDs()
	if err != nil {
		return nil, err
	}
	p, inMount := l.resolve(exePath)
	if !inMount {
		return nil, vfs.ErrNotExist
	}
	id, _, ok := l.kern.ResolveLongest(th.Clk, p)
	if !ok {
		return nil, vfs.ErrNotExist
	}
	if err := l.kern.FileExecve(th, id, nil); err != nil && !errors.Is(err, kernfs.ErrNotMapped) {
		return nil, err
	}
	// The process image is replaced: fresh library state, same process.
	nl := &Lib{
		kern: l.kern,
		opts: l.opts,
		byTyp: map[coffer.Type]vfs.FileSystem{
			coffer.TypeZoFS: zofs.New(l.kern, l.opts.ZoFS),
			logfs.TypeLogFS: logfs.New(l.kern),
		},
		fds: map[int]*fdEntry{},
		cwd: l.Getcwd(),
	}
	if err := nl.RestoreFDs(th, env); err != nil {
		return nil, err
	}
	return nl, nil
}
