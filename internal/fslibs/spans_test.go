package fslibs

import (
	"fmt"
	"sync"
	"testing"

	"zofs/internal/spans"
	"zofs/internal/vfs"
)

// withSpans installs a fresh collector for the test and restores the prior
// process-wide state on cleanup. It must run before newLib so the stack's
// threads pick up span contexts.
func withSpans(t *testing.T) *spans.Collector {
	t.Helper()
	prev := spans.Active()
	col := spans.Enable(spans.Config{})
	t.Cleanup(func() { spans.Install(prev) })
	return col
}

// spansWorkload is a deterministic mixed workload used by both the
// attribution and the zero-overhead tests.
func spansWorkload(t *testing.T) int64 {
	t.Helper()
	_, _, l, th := newLib(t)
	for i := 0; i < 8; i++ {
		fd, err := l.Open(th, fmt.Sprintf("/w%02d", i), vfs.O_CREATE|vfs.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Write(th, fd, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		if err := l.Fsync(th, fd); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(th, fd); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Stat(th, fmt.Sprintf("/w%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.ReadDir(th, "/"); err != nil {
		t.Fatal(err)
	}
	return th.Clk.Now()
}

// TestSpansAttributionAcrossStack drives the full FSLibs → ZoFS → KernFS
// stack with spans on and asserts the core attribution invariants: every
// span closed, per-op components sum exactly to the measured latency, NVM
// bytes attributed, and KernFS calls visible as children.
func TestSpansAttributionAcrossStack(t *testing.T) {
	col := withSpans(t)
	spansWorkload(t)

	if open := col.OpenRoots(); open != 0 {
		t.Fatalf("%d spans left open", open)
	}
	if dc := col.DoubleCloses(); dc != 0 {
		t.Fatalf("%d double closes", dc)
	}
	snap := col.Snapshot()
	for _, op := range []string{"open", "write", "fsync", "close", "stat", "readdir"} {
		b, ok := snap.Ops[op]
		if !ok {
			t.Fatalf("no spans recorded for op %q (have %v)", op, snap.Ops)
		}
		var sum int64
		for _, cs := range b.Comp {
			sum += cs.SumNS
		}
		if sum != b.SumNS {
			t.Errorf("op %s: components sum to %d ns, measured %d ns", op, sum, b.SumNS)
		}
	}
	if w := snap.Ops["write"]; w.BytesWritten == 0 || w.Comp["media"].SumNS == 0 {
		t.Errorf("write spans carry no NVM attribution: %+v", w)
	}
	if snap.OverBilledNS != 0 {
		t.Errorf("%d ns over-billed", snap.OverBilledNS)
	}

	var kernfsChildren int
	for _, r := range col.Roots() {
		for _, ch := range r.Children {
			if len(ch.Name) > 7 && ch.Name[:7] == "kernfs." {
				kernfsChildren++
			}
		}
	}
	if kernfsChildren == 0 {
		t.Error("no kernfs child spans recorded; layer-boundary hooks are dead")
	}
}

// TestSpansZeroVirtualOverhead: span billing observes clocks and never
// advances them, so the workload's virtual end time must be bit-identical
// with collection on and off.
func TestSpansZeroVirtualOverhead(t *testing.T) {
	prev := spans.Active()
	spans.Disable()
	off := spansWorkload(t)
	spans.Enable(spans.Config{})
	on := spansWorkload(t)
	spans.Install(prev)
	if off != on {
		t.Fatalf("virtual time differs: %d ns off vs %d ns on", off, on)
	}
}

// TestSpanAbortedOnFault: an MPK violation surfacing through the dispatch
// guard must mark the interrupted op's span aborted — and still close it.
func TestSpanAbortedOnFault(t *testing.T) {
	col := withSpans(t)
	dev, _, l, th := newLib(t)
	fd, err := l.Open(th, "/victim", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write(th, fd, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	fi, err := l.Stat(th, "/victim")
	if err != nil {
		t.Fatal(err)
	}
	// Redirect the file's first direct block pointer (inode offset 64) far
	// outside the coffer: the next read dereferences it and faults on a
	// page the thread has no protection key for.
	var evil [8]byte
	wild := uint64(dev.Pages() - 1)
	for i := range evil {
		evil[i] = byte(wild >> (8 * i))
	}
	dev.WriteNT(nil, fi.Inode*4096+64, evil[:])

	buf := make([]byte, 512)
	if _, err := l.Pread(th, fd, buf, 0); err == nil {
		t.Fatal("read through a wild block pointer should fail")
	}

	snap := col.Snapshot()
	if snap.Aborted == 0 {
		t.Fatal("fault-terminated op did not mark its span aborted")
	}
	if got := snap.Ops["read"].Aborted; got != 1 {
		t.Fatalf("read aborted count = %d, want 1", got)
	}
	if open := col.OpenRoots(); open != 0 {
		t.Fatalf("%d spans leaked across the fault", open)
	}
	// The violation is attached to the aborted root as an annotation.
	var annotated bool
	for _, r := range col.Roots() {
		if !r.Aborted {
			continue
		}
		for _, ch := range r.Children {
			if ch.Name == "mpk_violation" && ch.Detail != "" {
				annotated = true
			}
		}
	}
	if !annotated {
		t.Error("aborted span carries no mpk_violation annotation")
	}
}

// TestSpansConcurrentThreadsSharedFD: several threads of one process hammer
// the same open file descriptor. Each thread bills to its own span context;
// the collector must account every op exactly once, with inode-lock
// contention showing up in the table rather than corrupting attribution.
func TestSpansConcurrentThreadsSharedFD(t *testing.T) {
	col := withSpans(t)
	_, _, l, th := newLib(t)
	fd, err := l.Open(th, "/shared", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const threads, per = 4, 32
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tth := th.Proc.NewThread()
			buf := make([]byte, 512)
			for j := 0; j < per; j++ {
				if _, err := l.Pwrite(tth, fd, buf, int64(i)*4096); err != nil {
					errs <- err
					return
				}
				if _, err := l.Pread(tth, fd, buf, int64(i)*4096); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if open := col.OpenRoots(); open != 0 {
		t.Fatalf("%d spans open after all threads joined", open)
	}
	if dc := col.DoubleCloses(); dc != 0 {
		t.Fatalf("%d double closes under concurrency", dc)
	}
	snap := col.Snapshot()
	wantWrites := int64(threads * per)
	if got := snap.Ops["write"].Count; got != wantWrites {
		t.Errorf("write span count = %d, want %d", got, wantWrites)
	}
	if got := snap.Ops["read"].Count; got != wantWrites {
		t.Errorf("read span count = %d, want %d", got, wantWrites)
	}
	for _, op := range []string{"read", "write"} {
		b := snap.Ops[op]
		var sum int64
		for _, cs := range b.Comp {
			sum += cs.SumNS
		}
		if sum != b.SumNS {
			t.Errorf("op %s: components sum to %d ns, measured %d ns", op, sum, b.SumNS)
		}
	}
}
