package harness

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"zofs/internal/coffer"
	"zofs/internal/fslibs"
	"zofs/internal/kernfs"
	"zofs/internal/nvm"
	"zofs/internal/pmemtrace"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// RunSafety reproduces the §6.5 safety tests: two processes P1 and P2 over
// coffers C1 (shared read-write) and C2 (P2-private).
//
// Test 1 (buggy code): P1 issues stray writes over random addresses —
// every one must be caught by MPK; then P1 corrupts C1's interior through
// its legitimate mapping ("overwrites in ZoFS's code") — P2 must receive
// file system errors gracefully instead of dying.
//
// Test 2 (malicious metadata): P1 rewrites a cross-coffer dentry in C1 to
// point into C2 — P2 must detect the manipulation (guideline G3) and never
// touch C2.
func RunSafety(w io.Writer, opts Options) error {
	opts.fill()
	// The stray-write storm and MPK faults are exactly what the flight
	// recorder exists to show, so record the run even when the caller did
	// not enable tracing (the device below captures the recorder at birth).
	tracer := pmemtrace.Active()
	if tracer == nil {
		tracer = pmemtrace.Enable(pmemtrace.Config{RingCap: 1 << 18})
		defer pmemtrace.Disable()
	}
	// Track persistence explicitly: the auditor's lost-line report at the
	// end of the run is only meaningful over a dirty-line-tracking device.
	dev := nvm.New(nvm.Config{Size: 1 << 30, TrackPersistence: true})
	if err := kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o777}); err != nil {
		return err
	}
	k, err := kernfs.Mount(dev)
	if err != nil {
		return err
	}

	// P1: uid 1000 (the buggy/malicious process). P2: uid 1001 (victim).
	p1 := proc.NewProcess(dev, 1000, 1000)
	t1 := p1.NewThread()
	l1, err := fslibs.Mount(k, t1, fslibs.Options{})
	if err != nil {
		return err
	}
	p2 := proc.NewProcess(dev, 1001, 1001)
	t2 := p2.NewThread()
	l2, err := fslibs.Mount(k, t2, fslibs.Options{})
	if err != nil {
		return err
	}
	rootTh := proc.NewProcess(dev, 0, 0).NewThread()
	lr, err := fslibs.Mount(k, rootTh, fslibs.Options{})
	if err != nil {
		return err
	}
	if err := lr.ZoFS().EnsureRootDir(rootTh); err != nil {
		return err
	}
	// C1: world-writable coffer both processes map; C2: P2-private.
	if err := lr.Mkdir(rootTh, "/c1", 0o666); err != nil {
		return err
	}
	if err := lr.Chown(rootTh, "/c1", 1000, 1000); err != nil {
		return err
	}
	if err := lr.Mkdir(rootTh, "/c2", 0o600); err != nil {
		return err
	}
	if err := lr.Chown(rootTh, "/c2", 1001, 1001); err != nil {
		return err
	}
	// Populate C1 with files P2 will read, and C2 with P2's secret.
	for i := 0; i < 8; i++ {
		fd, err := l1.Open(t1, fmt.Sprintf("/c1/file%d", i), vfs.O_CREATE|vfs.O_RDWR, 0o666)
		if err != nil {
			return fmt.Errorf("populate C1: %w", err)
		}
		l1.Write(t1, fd, make([]byte, 4096))
		l1.Close(t1, fd)
	}
	fd, err := l2.Open(t2, "/c2/secret", vfs.O_CREATE|vfs.O_RDWR, 0o600)
	if err != nil {
		return fmt.Errorf("populate C2: %w", err)
	}
	l2.Write(t2, fd, []byte("top secret"))
	l2.Close(t2, fd)

	fmt.Fprintln(w, "Safety tests (paper §6.5)")

	// --- Test 1a: stray writes outside the FS library are all caught.
	rng := rand.New(rand.NewSource(99))
	caught, escaped := 0, 0
	for i := 0; i < 1000; i++ {
		off := rng.Int63n(dev.Size() - 8)
		func() {
			defer func() {
				if recover() != nil {
					caught++
				}
			}()
			t1.StrayWrite(off, []byte{0xff, 0xee, 0xdd})
			escaped++
		}()
	}
	p2ReadsOK := 0
	for i := 0; i < 8; i++ {
		if _, err := l2.Stat(t2, fmt.Sprintf("/c1/file%d", i)); err == nil {
			p2ReadsOK++
		}
	}
	fmt.Fprintf(w, "  Test 1a (stray writes): %d/%d wild stores caught by MPK, %d escaped; P2 accesses unaffected: %d/8\n",
		caught, caught+escaped, escaped, p2ReadsOK)
	if escaped != 0 || p2ReadsOK != 8 {
		return errors.New("safety: stray-write protection failed")
	}

	// --- Test 1b: P1 corrupts C1's interior through its own mapping
	// (simulating buggy FS-library code). P2 must get graceful errors.
	c1ID, _ := k.LookupPath(nil, "/c1")
	var c1pages []int64
	for _, e := range k.ExtentsOf(c1ID) {
		for pg := e.Start; pg < e.End(); pg++ {
			if pg != int64(c1ID) { // the root page is kernel-managed, read-only
				c1pages = append(c1pages, pg)
			}
		}
	}
	// P1 legitimately maps C1 read-write, then scribbles.
	if _, err := l1.Stat(t1, "/c1/file0"); err != nil {
		return err
	}
	mi, err := k.CofferMap(t1, c1ID, true)
	if err != nil {
		return err
	}
	t1.OpenWindow(mi.Key, true)
	for _, pg := range c1pages {
		t1.WriteNT(pg*4096, make([]byte, 512)) // zero the head of every page
	}
	t1.CloseWindow()

	errsSeen, crashes := 0, 0
	for i := 0; i < 8; i++ {
		func() {
			defer func() {
				if recover() != nil {
					crashes++
				}
			}()
			if _, err := l2.Stat(t2, fmt.Sprintf("/c1/file%d", i)); err != nil {
				errsSeen++
			}
		}()
	}
	fmt.Fprintf(w, "  Test 1b (corrupted coffer): P2 received %d/8 graceful errors, %d crashes\n", errsSeen, crashes)
	if crashes != 0 || errsSeen == 0 {
		return errors.New("safety: graceful error return failed")
	}

	// --- Test 2: malicious cross-coffer reference. A clean coffer C3
	// holds an in-coffer subdirectory "sub"; P1 redirects sub's dentry at
	// C2, hoping P2's walk through it reaches P2's own private coffer with
	// attacker-chosen structure. G3 must stop the walk.
	if err := lr.Mkdir(rootTh, "/c3", 0o666); err != nil {
		return err
	}
	if err := lr.Chown(rootTh, "/c3", 1000, 1000); err != nil {
		return err
	}
	if err := l1.Mkdir(t1, "/c3/sub", 0o666); err != nil { // same perm: in-coffer
		return err
	}
	fd3, err := l1.Open(t1, "/c3/sub/leaf", vfs.O_CREATE|vfs.O_RDWR, 0o666)
	if err != nil {
		return err
	}
	l1.Close(t1, fd3)
	if _, ok := k.LookupPath(nil, "/c3/sub"); ok {
		return errors.New("safety: /c3/sub must be in-coffer for the walk to read its dentry")
	}
	c2ID, _ := k.LookupPath(nil, "/c2")
	c2info, _ := k.Info(c2ID)

	// P1 hunts down the dentry for "sub" inside C3 and redirects it at C2.
	c3ID, _ := k.LookupPath(nil, "/c3")
	mi3, err := k.CofferMap(t1, c3ID, true)
	if err != nil {
		return err
	}
	t1.OpenWindow(mi3.Key, true)
	redirected := redirectDentry(t1, k, c3ID, "sub", uint32(c2ID), c2info.RootInode)
	t1.CloseWindow()
	if !redirected {
		return errors.New("safety: attack setup failed to find the dentry")
	}

	// P2 (who can read C3: 0666) walks through the manipulated dentry.
	_, err = l2.Stat(t2, "/c3/sub/leaf")
	detected := err != nil
	leaked := err == nil
	fmt.Fprintf(w, "  Test 2 (malicious cross-coffer ref): manipulation detected=%v, C2 leaked=%v (err: %v)\n",
		detected, leaked, err)
	if !detected {
		return errors.New("safety: G3 validation failed to stop the attack")
	}
	rep := pmemtrace.Audit(tracer.Events(), nil)
	fmt.Fprintf(w, "  flight recorder: %d events, %d mpk violations, %d lost lines\n",
		rep.Events, rep.Violations, len(rep.LostLines))
	fmt.Fprintln(w, "  PASS: all safety properties held")
	return nil
}

// redirectDentry scans a coffer's pages for the live dentry with the given
// name and rewrites its cross-coffer target — the attacker's move in
// Test 2. Returns true if a dentry was redirected.
func redirectDentry(th *proc.Thread, k *kernfs.KernFS, id coffer.ID, name string, newCoffer uint32, newInode int64) bool {
	for _, e := range k.ExtentsOf(id) {
		for pg := e.Start; pg < e.End(); pg++ {
			if pg == int64(id) {
				continue
			}
			buf := make([]byte, 4096)
			th.Read(pg*4096, buf)
			for off := 0; off+128 <= 4096; off += 128 {
				state := buf[off]
				nameLen := int(buf[off+1])
				if state != 1 || nameLen != len(name) {
					continue
				}
				if string(buf[off+24:off+24+nameLen]) != name {
					continue
				}
				// Rewrite the coffer-ID and inode pointer in place.
				var le [4]byte
				le[0], le[1], le[2], le[3] = byte(newCoffer), byte(newCoffer>>8), byte(newCoffer>>16), byte(newCoffer>>24)
				th.WriteNT(pg*4096+int64(off)+8, le[:])
				th.Store64(pg*4096+int64(off)+16, uint64(newInode))
				return true
			}
		}
	}
	return false
}

// RunRecovery reproduces the §6.5 recovery timing: a coffer holding 1,000
// 2MB files is recovered, reporting total/user/kernel virtual time.
func RunRecovery(w io.Writer, opts Options) error {
	opts.fill()
	files, fileBytes := 1000, int64(2<<20)
	if opts.Quick {
		files = 100
	}
	// Telemetry must be on before the device exists for it to attach.
	stats := newStatsRun(opts, "recovery")
	dev := nvm.New(nvm.Config{Size: int64(files)*fileBytes + (512 << 20), TrackPersistence: false})
	if err := kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755}); err != nil {
		return err
	}
	k, err := kernfs.Mount(dev)
	if err != nil {
		return err
	}
	p := proc.NewProcess(dev, 0, 0)
	th := p.NewThread()
	l, err := fslibs.Mount(k, th, fslibs.Options{})
	if err != nil {
		return err
	}
	if err := l.ZoFS().EnsureRootDir(th); err != nil {
		return err
	}
	if err := l.Mkdir(th, "/data", 0o700); err != nil { // its own coffer
		return err
	}
	buf := make([]byte, 256<<10)
	for i := 0; i < files; i++ {
		fd, err := l.Open(th, fmt.Sprintf("/data/f%04d", i), vfs.O_CREATE|vfs.O_RDWR, 0o600)
		if err != nil {
			return err
		}
		for off := int64(0); off < fileBytes; off += int64(len(buf)) {
			if _, err := l.Pwrite(th, fd, buf, off); err != nil {
				return err
			}
		}
		l.Close(th, fd)
	}
	id, _ := k.LookupPath(nil, "/data")
	st, err := l.ZoFS().RecoverCoffer(th, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Recovery of a coffer with %d %dMB files (paper: 20,748µs total; 5,386 user / 15,362 kernel):\n",
		files, fileBytes>>20)
	fmt.Fprintf(w, "  total %dµs = user %dµs + kernel %dµs; pages kept %d, reclaimed %d, leases cleared %d\n",
		(st.UserNS+st.KernelNS)/1000, st.UserNS/1000, st.KernelNS/1000,
		st.PagesKept, st.PagesReclaimed, st.LeasesCleared)
	stats.endCellExtra(fmt.Sprintf("recovery/%d-files", files), map[string]int64{
		"recover_total_ns":  st.UserNS + st.KernelNS,
		"recover_user_ns":   st.UserNS,
		"recover_kernel_ns": st.KernelNS,
		"pages_kept":        st.PagesKept,
		"pages_reclaimed":   st.PagesReclaimed,
		"dentries_fixed":    int64(st.DentriesFixed),
		"leases_cleared":    int64(st.LeasesCleared),
		"repairs":           int64(len(st.Repairs)),
	})
	return stats.finish(w)
}
