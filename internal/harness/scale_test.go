package harness_test

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"zofs/internal/harness"
)

// TestRunFxmarkScale runs the scalability matrix at tiny size and checks the
// observatory's gates held (they are hard errors inside the run), the curves
// carry fits, and the artifact is well-formed.
func TestRunFxmarkScale(t *testing.T) {
	t.Chdir(t.TempDir())
	runAndCheck(t, "fxmark-scale", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunFxmarkScale(&b, tiny())
	}, "gate ok: bit-identical", "gate ok: cross-check", "wrote BENCH_fxmark_scale.json")

	blob, err := os.ReadFile("BENCH_fxmark_scale.json")
	if err != nil {
		t.Fatal(err)
	}
	var out harness.ScaleReport
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) != 3 {
		t.Fatalf("want 3 gate records, got %+v", out.Gates)
	}
	if len(out.Curves) != 6 { // quick: 2 systems x 3 workloads
		t.Fatalf("want 6 curves, got %d", len(out.Curves))
	}
	for _, c := range out.Curves {
		if len(c.Cells) != 2 {
			t.Fatalf("curve %s/%s: want 2 cells, got %+v", c.System, c.Workload, c.Cells)
		}
		if c.Fit.SigmaAmdahl < 0 || c.Fit.SigmaAmdahl > 1 {
			t.Errorf("curve %s/%s: serial fraction %v out of [0,1]", c.System, c.Workload, c.Fit.SigmaAmdahl)
		}
		for _, cell := range c.Cells {
			if cell.Ops == 0 {
				t.Errorf("curve %s/%s %dT made no progress", c.System, c.Workload, cell.Threads)
			}
		}
	}
	// The contended shared-file cell must name its bottleneck lock.
	for _, c := range out.Curves {
		if c.System == "ZoFS" && c.Workload == "DWOM" {
			last := c.Cells[len(c.Cells)-1]
			if len(last.TopLocks) == 0 {
				t.Fatalf("ZoFS/DWOM widest cell has no attributed locks: %+v", last)
			}
		}
	}
}
