package harness

import (
	"fmt"
	"io"

	"zofs/internal/filebench"
	"zofs/internal/sysfactory"
)

// runFilebenchCell builds a fresh instance and runs one personality cell,
// recording its telemetry interval when stats are on.
func runFilebenchCell(sys sysfactory.System, cfg filebench.Config, threads int, opts Options, st *statsRun) (filebench.Result, error) {
	in, err := sys.New(opts.DeviceBytes)
	if err != nil {
		return filebench.Result{}, err
	}
	in.SetConcurrency(threads)
	r, err := filebench.Run(st.wrap(in.FS), in.Proc, cfg, threads, opts.TargetNS)
	if err == nil {
		st.endCell(fmt.Sprintf("%s/%s/%d", sys.Name, cfg.Personality, threads))
	}
	return r, err
}

// RunFig9 sweeps the four Filebench personalities over threads for every
// compared system, plus the ZoFS-20dirwidth lines for webproxy and varmail
// (paper Figure 9).
func RunFig9(w io.Writer, opts Options) error {
	opts.fill()
	st := newStatsRun(opts, "fig9")
	fmt.Fprintln(w, "Figure 9: Filebench throughput (kops/s)")
	for _, p := range filebench.All {
		fmt.Fprintf(w, "\n(%s)\n", p)
		t := tw(w)
		fmt.Fprint(t, "threads")
		for _, sys := range comparisonSystems() {
			fmt.Fprintf(t, "\t%s", sys.Name)
		}
		withNarrow := p == filebench.Webproxy || p == filebench.Varmail
		if withNarrow {
			fmt.Fprint(t, "\tZoFS-20dirwidth")
		}
		fmt.Fprintln(t)
		for _, th := range opts.Threads {
			fmt.Fprintf(t, "%d", th)
			for _, sys := range comparisonSystems() {
				r, err := runFilebenchCell(sys, filebench.Default(p), th, opts, st)
				if err != nil {
					return fmt.Errorf("fig9 %s/%s/%d: %w", sys.Name, p, th, err)
				}
				fmt.Fprintf(t, "\t%.1f", r.KopsPerSec)
			}
			if withNarrow {
				cfg := filebench.Default(p)
				cfg.DirWidth = 20
				r, err := runFilebenchCell(sysfactory.ZoFS, cfg, th, opts, st)
				if err != nil {
					return err
				}
				fmt.Fprintf(t, "\t%.1f", r.KopsPerSec)
			}
			fmt.Fprintln(t)
		}
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return st.finish(w)
}

// RunFig10 prints the customized configurations (paper Figure 10):
// single-threaded fileserver and varmail with dir-width 20.
func RunFig10(w io.Writer, opts Options) error {
	opts.fill()
	st := newStatsRun(opts, "fig10")
	fmt.Fprintln(w, "Figure 10(a): Fileserver with one thread (kops/s)")
	t := tw(w)
	fmt.Fprintln(t, "System\tkops/s")
	for _, sys := range comparisonSystems() {
		r, err := runFilebenchCell(sys, filebench.Default(filebench.Fileserver), 1, opts, st)
		if err != nil {
			return err
		}
		fmt.Fprintf(t, "%s\t%.1f\n", sys.Name, r.KopsPerSec)
	}
	if err := t.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nFigure 10(b): Varmail with dir-width=20 (kops/s)")
	t = tw(w)
	fmt.Fprintln(t, "System\tthreads=1\tthreads=4")
	cfg := filebench.Default(filebench.Varmail)
	cfg.DirWidth = 20
	for _, sys := range comparisonSystems() {
		r1, err := runFilebenchCell(sys, cfg, 1, opts, st)
		if err != nil {
			return err
		}
		r4, err := runFilebenchCell(sys, cfg, 4, opts, st)
		if err != nil {
			return err
		}
		fmt.Fprintf(t, "%s\t%.1f\t%.1f\n", sys.Name, r1.KopsPerSec, r4.KopsPerSec)
	}
	if err := t.Flush(); err != nil {
		return err
	}
	return st.finish(w)
}
