package harness_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zofs/internal/harness"
)

// sidecar mirrors the metrics JSON schema written by stats runs.
type sidecar struct {
	Experiment string `json:"experiment"`
	Cells      []struct {
		Label   string `json:"label"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
			Ops      map[string]struct {
				Count int64 `json:"count"`
				P50NS int64 `json:"p50_ns"`
				P99NS int64 `json:"p99_ns"`
			} `json:"ops"`
		} `json:"metrics"`
	} `json:"cells"`
}

func readSidecar(t *testing.T, path string) sidecar {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("sidecar: %v", err)
	}
	var sc sidecar
	if err := json.Unmarshal(raw, &sc); err != nil {
		t.Fatalf("sidecar JSON: %v", err)
	}
	return sc
}

// TestStatsFig8 runs the FxMark DWOL breakdown with telemetry and checks the
// per-layer tables and the sidecar carry real per-layer data.
func TestStatsFig8(t *testing.T) {
	opts := tiny()
	opts.Stats = true
	opts.StatsDir = t.TempDir()

	var b bytes.Buffer
	if err := harness.RunFig8(&b, opts); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{"[stats ZoFS/DWOL/1]", "bytes_written", "p99 ns", "metrics sidecar:"} {
		if !strings.Contains(out, w) {
			t.Fatalf("stats output missing %q:\n%s", w, out)
		}
	}
	// ZoFS cells must show protection switching; kernel cells syscalls.
	if !strings.Contains(out, "pkru_switches") {
		t.Fatalf("stats output missing PKRU switch counts:\n%s", out)
	}

	sc := readSidecar(t, filepath.Join(opts.StatsDir, "metrics-fig8-quick-t1x2.json"))
	if sc.Experiment != "fig8" || len(sc.Cells) == 0 {
		t.Fatalf("sidecar = %+v", sc)
	}
	var zofsCell bool
	for _, c := range sc.Cells {
		if !strings.HasPrefix(c.Label, "ZoFS/") {
			continue
		}
		zofsCell = true
		if c.Metrics.Counters["nvm.bytes_written"] == 0 {
			t.Errorf("%s: no NVM bytes written", c.Label)
		}
		if c.Metrics.Counters["mpk.pkru_switches"] == 0 {
			t.Errorf("%s: no PKRU switches", c.Label)
		}
		w, ok := c.Metrics.Ops["write"]
		if !ok || w.Count == 0 || w.P99NS == 0 || w.P50NS > w.P99NS {
			t.Errorf("%s: bad write latency summary %+v", c.Label, w)
		}
	}
	if !zofsCell {
		t.Fatal("no ZoFS cell in sidecar")
	}
}

// TestStatsFig10 checks the Filebench path produces the same telemetry.
func TestStatsFig10(t *testing.T) {
	opts := tiny()
	opts.Stats = true
	opts.StatsDir = t.TempDir()

	var b bytes.Buffer
	if err := harness.RunFig10(&b, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "[stats ZoFS/fileserver/1]") {
		t.Fatalf("fig10 stats output missing fileserver cell:\n%s", b.String())
	}
	sc := readSidecar(t, filepath.Join(opts.StatsDir, "metrics-fig10-quick-t1x2.json"))
	if sc.Experiment != "fig10" || len(sc.Cells) == 0 {
		t.Fatalf("sidecar = %+v", sc)
	}
	for _, c := range sc.Cells {
		if strings.HasPrefix(c.Label, "ZoFS/varmail/") {
			if c.Metrics.Counters["kernfs.syscalls"] == 0 {
				t.Errorf("%s: no kernfs syscalls recorded", c.Label)
			}
			return
		}
	}
	t.Fatal("no ZoFS varmail cell in fig10 sidecar")
}
