package harness

import (
	"fmt"
	"io"

	"zofs/internal/lsmdb"
	"zofs/internal/sysfactory"
	"zofs/internal/tpcc"
)

// appSystems is the Table 7/Figure 11 comparison set (Strata could not run
// the application experiments in the paper either).
func appSystems() []sysfactory.System {
	return []sysfactory.System{sysfactory.Ext4DAX, sysfactory.PMFS, sysfactory.NOVA, sysfactory.ZoFS}
}

// RunTable7 runs the LevelDB-style db_bench rows on every system (paper
// Table 7), reporting µs/op.
func RunTable7(w io.Writer, opts Options) error {
	opts.fill()
	n := 50000
	if opts.Quick {
		n = 5000
	}
	fmt.Fprintln(w, "Table 7: Latency of LevelDB db_bench (µs/op)")
	t := tw(w)
	fmt.Fprint(t, "Latency/µs")
	for _, sys := range appSystems() {
		fmt.Fprintf(t, "\t%s", sys.Name)
	}
	fmt.Fprintln(t)
	for _, op := range lsmdb.BenchOps {
		fmt.Fprintf(t, "%s", op)
		for _, sys := range appSystems() {
			in, err := sys.New(opts.DeviceBytes)
			if err != nil {
				return err
			}
			r, err := lsmdb.RunBench(in.FS, in.Proc, op, n)
			if err != nil {
				return fmt.Errorf("table7 %s/%s: %w", sys.Name, op, err)
			}
			fmt.Fprintf(t, "\t%.3f", r.MicrosPerOp)
		}
		fmt.Fprintln(t)
	}
	return t.Flush()
}

// RunFig11 runs TPC-C on the SQLite-like engine for the four workloads of
// the paper (mixed per Table 8's 44/44/4/4/4, then NEW, OS and PAY alone),
// single-threaded with 1 warehouse and 10 districts.
func RunFig11(w io.Writer, opts Options) error {
	opts.fill()
	cfg := tpcc.Default()
	n := 2000
	if opts.Quick {
		cfg = tpcc.Config{Warehouses: 1, Districts: 10, CustomersPerDistrict: 300, Items: 2000}
		n = 300
	}
	fmt.Fprintf(w, "Figure 11: TPC-C SQLite throughput (tx/s); mix NEW/PAY/OS/DLY/SL = 44/44/4/4/4 (Table 8)\n")
	t := tw(w)
	fmt.Fprintln(t, "System\tmixed\tNEW\tOS\tPAY")
	for _, sys := range appSystems() {
		fmt.Fprintf(t, "%s", sys.Name)
		for _, wl := range []string{"mixed", "NEW", "OS", "PAY"} {
			in, err := sys.New(opts.DeviceBytes)
			if err != nil {
				return err
			}
			th := in.Proc.NewThread()
			db, err := tpcc.Setup(in.FS, th, cfg)
			if err != nil {
				return fmt.Errorf("fig11 %s setup: %w", sys.Name, err)
			}
			r, err := tpcc.RunWorkload(db, in.Proc, cfg, wl, n)
			if err != nil {
				return fmt.Errorf("fig11 %s/%s: %w", sys.Name, wl, err)
			}
			fmt.Fprintf(t, "\t%.0f", r.TxPerSec)
		}
		fmt.Fprintln(t)
	}
	return t.Flush()
}
