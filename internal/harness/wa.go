package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"zofs/internal/byteflow"
	"zofs/internal/obsfs"
	"zofs/internal/proc"
	"zofs/internal/sysfactory"
	"zofs/internal/vfs"
)

// RunWA is the write-amplification and byte-conservation gate. For every
// (system, workload) cell it builds a fresh instance with byte-flow
// accounting enabled, runs the workload, and reconciles the three layers of
// the byte flow — application bytes, FS-issued bytes (split by class) and
// media bytes — asserting:
//
//  1. Exact class conservation: the per-class issued bytes sum to the
//     independently counted issued total, byte for byte.
//  2. Flow ordering on write cells: media >= issued >= app. The FS never
//     issues fewer bytes than the app handed it, and every issued byte
//     reaches media (nt-stores directly, cached stores via flushed lines).
//  3. Zero virtual-time overhead: accounting observes clocks, it never
//     advances them, so ZoFS hot-path throughput with accounting enabled
//     must agree with accounting disabled within 2%.
//
// The per-cell WA table (ZoFS, ZoFS-copypath and the baselines) is printed
// and recorded in BENCH_wa.json — the command-line answer to "how many
// media bytes does one application byte cost".
func RunWA(w io.Writer, opts Options) error {
	opts.fill()
	n := 1024
	if opts.Quick {
		n = 256
	}
	systems := []sysfactory.System{
		sysfactory.ZoFS, sysfactory.ZoFSCopyPath,
		sysfactory.PMFS, sysfactory.NOVA, sysfactory.Ext4DAX,
	}

	type cellOut struct {
		System      string           `json:"system"`
		Workload    string           `json:"workload"`
		AppBytes    int64            `json:"app_bytes"`
		IssuedBytes int64            `json:"issued_bytes"`
		MediaBytes  int64            `json:"media_bytes"`
		WA          float64          `json:"wa,omitempty"`
		Flushes     int64            `json:"flushes"`
		Fences      int64            `json:"fences"`
		ByClass     map[string]int64 `json:"issued_by_class"`
	}
	out := struct {
		Experiment  string    `json:"experiment"`
		Files       int       `json:"files"`
		Quick       bool      `json:"quick"`
		OverheadPct float64   `json:"accounting_overhead_pct"`
		Cells       []cellOut `json:"cells"`
	}{Experiment: "wa", Files: n, Quick: opts.Quick}

	var failures []string
	fmt.Fprintf(w, "Write amplification: media bytes per app byte, %d files per cell\n", n)
	t := tw(w)
	fmt.Fprintln(t, "System\tWorkload\tApp\tIssued\tMedia\tWA\tdata\tdentry\tinode\tjournal\talloc\tother")
	for _, sys := range systems {
		for _, wl := range waWorkloads {
			flow, err := waCell(sys, opts, wl, n)
			if err != nil {
				return fmt.Errorf("wa %s/%s: %w", sys.Name, wl.name, err)
			}
			if err := flow.Conserved(); err != nil {
				failures = append(failures, fmt.Sprintf("cell %s/%s: %v", sys.Name, wl.name, err))
			}
			if flow.App > 0 && flow.MediaBytes() < flow.Total {
				failures = append(failures, fmt.Sprintf("cell %s/%s: media %d bytes < issued %d bytes",
					sys.Name, wl.name, flow.MediaBytes(), flow.Total))
			}
			fmt.Fprintf(t, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				sys.Name, wl.name, human(flow.App), human(flow.Total), human(flow.MediaBytes()),
				waStr(flow), human(flow.Issued[byteflow.ClassData]), human(flow.Issued[byteflow.ClassDentry]),
				human(flow.Issued[byteflow.ClassInode]), human(flow.Issued[byteflow.ClassJournal]),
				human(flow.Issued[byteflow.ClassAlloc]), human(flow.Issued[byteflow.ClassOther]))
			co := cellOut{
				System: sys.Name, Workload: wl.name,
				AppBytes: flow.App, IssuedBytes: flow.Total, MediaBytes: flow.MediaBytes(),
				WA: round2(flow.WA()), Flushes: flow.Flushes, Fences: flow.Fences,
				ByClass: map[string]int64{},
			}
			for _, c := range byteflow.Classes() {
				if flow.Issued[c] != 0 {
					co.ByClass[c.String()] = flow.Issued[c]
				}
			}
			out.Cells = append(out.Cells, co)
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}

	// Overhead gate: accounting observes virtual clocks, never advances
	// them, so simulated throughput must be identical modulo formatting.
	base, err := waHotRun(opts, false)
	if err != nil {
		return fmt.Errorf("wa overhead baseline: %w", err)
	}
	inst, err := waHotRun(opts, true)
	if err != nil {
		return fmt.Errorf("wa overhead instrumented: %w", err)
	}
	var worst float64
	for c := range base {
		delta := math.Abs(inst[c]-base[c]) / base[c] * 100
		if delta > worst {
			worst = delta
		}
		if delta > 2.0 {
			failures = append(failures, fmt.Sprintf("overhead cell %s: accounting-on throughput deviates %.3f%% (> 2%%)", c, delta))
		}
	}
	out.OverheadPct = round2(worst)
	fmt.Fprintf(w, "\naccounting overhead (simulated throughput delta): %.3f%%\n", worst)

	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_wa.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_wa.json")
	if len(failures) > 0 {
		return fmt.Errorf("wa gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(w, "wa gate: conservation, flow ordering and overhead checks passed")
	return nil
}

func waStr(f *byteflow.Flow) string {
	if f.App <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", f.WA())
}

// waWorkload is one measured cell: setup runs unaccounted (the ledger is
// reset after it), run is the accounted phase.
type waWorkload struct {
	name  string
	setup func(fs vfs.FileSystem, th *proc.Thread, names []string) error
	run   func(fs vfs.FileSystem, th *proc.Thread, names []string) error
}

var waWorkloads = []waWorkload{
	{
		// Metadata-only: app bytes stay zero, the whole flow is dentry,
		// inode and allocator traffic.
		name: "create",
		run: func(fs vfs.FileSystem, th *proc.Thread, names []string) error {
			for _, nm := range names {
				h, err := fs.Create(th, nm, 0o644)
				if err != nil {
					return err
				}
				h.Close(th)
			}
			return nil
		},
	},
	{
		// In-place 4KB overwrite of warm files: the WA floor — block
		// pointers exist, no allocation on ZoFS's in-place path; CoW
		// baselines pay their logs here.
		name:  "overwrite4k",
		setup: waWriteFiles(4096),
		run: func(fs vfs.FileSystem, th *proc.Thread, names []string) error {
			buf := make([]byte, 4096)
			for i := range buf {
				buf[i] = byte(i)
			}
			for _, nm := range names {
				h, err := fs.Open(th, nm, vfs.O_RDWR)
				if err != nil {
					return err
				}
				if _, err := h.WriteAt(th, buf, 0); err != nil {
					return err
				}
				h.Close(th)
			}
			return nil
		},
	},
	{
		// Small appends to empty files: allocation plus sub-block payloads,
		// the WA-heavy cell (a 256B payload still dirties whole lines and
		// drags inode size/mtime updates with it).
		name:  "append256",
		setup: waWriteFiles(0),
		run: func(fs vfs.FileSystem, th *proc.Thread, names []string) error {
			buf := make([]byte, 256)
			for i := range buf {
				buf[i] = byte(i)
			}
			for _, nm := range names {
				h, err := fs.Open(th, nm, vfs.O_RDWR)
				if err != nil {
					return err
				}
				for k := 0; k < 4; k++ {
					if _, err := h.Append(th, buf); err != nil {
						return err
					}
				}
				h.Close(th)
			}
			return nil
		},
	},
}

// waWriteFiles returns a setup phase that creates every file and writes
// size bytes of content (size 0 just creates).
func waWriteFiles(size int) func(fs vfs.FileSystem, th *proc.Thread, names []string) error {
	return func(fs vfs.FileSystem, th *proc.Thread, names []string) error {
		buf := make([]byte, size)
		for _, nm := range names {
			h, err := fs.Create(th, nm, 0o644)
			if err != nil {
				return err
			}
			if size > 0 {
				if _, err := h.WriteAt(th, buf, 0); err != nil {
					h.Close(th)
					return err
				}
			}
			h.Close(th)
		}
		return nil
	}
}

// waCell builds a fresh accounting-enabled instance, runs setup, zeroes the
// ledger and returns the measured phase's flow.
func waCell(sys sysfactory.System, opts Options, wl waWorkload, n int) (*byteflow.Flow, error) {
	in, err := sys.New(opts.DeviceBytes)
	if err != nil {
		return nil, err
	}
	in.Dev.EnableAccounting()
	th := in.Proc.NewThread()
	// The wrapper is where app bytes are credited (once, uniformly for
	// every system), so the accounted phase must go through it.
	fs := obsfs.Wrap(in.FS, nil)
	if err := fs.Mkdir(th, "/wa", 0o755); err != nil {
		return nil, err
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("/wa/f-%06d", i)
	}
	if wl.setup != nil {
		if err := wl.setup(fs, th, names); err != nil {
			return nil, err
		}
	}
	in.Dev.ResetAccounting()
	if err := wl.run(fs, th, names); err != nil {
		return nil, err
	}
	return in.Dev.FlowSnapshot(), nil
}

// waHotRun measures the ZoFS hot-path cells with accounting off or on.
func waHotRun(opts Options, enable bool) (map[string]float64, error) {
	n := 4096
	if opts.Quick {
		n = 1024
	}
	in, err := sysfactory.ZoFS.New(opts.DeviceBytes)
	if err != nil {
		return nil, err
	}
	if enable {
		in.Dev.EnableAccounting()
	}
	return hotpathRunOn(in, nil, n)
}
