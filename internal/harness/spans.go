package harness

import (
	"fmt"
	"io"
	"math"
	"strings"

	"zofs/internal/spans"
	"zofs/internal/sysfactory"
)

// RunSpans is the causal-span observability gate. It runs the hot-path cells
// (create / lookup / read4k on default ZoFS) twice — spans disabled, then
// spans enabled — and asserts the three properties the span layer promises:
//
//  1. Zero virtual-time overhead: span billing observes clocks, it never
//     advances them, so per-cell simulated throughput must agree within 2%.
//     (It agrees exactly; the tolerance only absorbs float formatting.)
//  2. Exact attribution: for every op kind, the per-component nanoseconds
//     (media, flush/fence, lock wait, PKRU, memcpy, kernel, other) must sum
//     to the measured op latency within 1% — "other" is the accounted
//     residual, so a violation means a span was double-billed.
//  3. The OpenMetrics rendering of the collected snapshot must parse.
//
// The attribution breakdown is printed, making this the command-line answer
// to "where does an op's latency go".
func RunSpans(w io.Writer, opts Options) error {
	opts.fill()
	n := 12288
	if opts.Quick {
		n = 4096
	}
	cells := []string{"create", "lookup", "read4k"}

	// Baseline with span collection off, whatever the ambient state.
	prev := spans.Active()
	spans.Disable()
	base, err := hotpathRun(sysfactory.ZoFS, opts, n)
	if err != nil {
		spans.Install(prev)
		return fmt.Errorf("spans baseline: %w", err)
	}

	col := spans.Enable(spans.Config{})
	// Byte-flow accounting rides along on the instrumented run: the
	// obsfs wrap registers the snapshot enricher, so the snapshot (and any
	// live -spans publication) carries the byte-flow and space panels, and
	// the OpenMetrics validation below covers those series with real data.
	var inst map[string]float64
	in, err := sysfactory.ZoFS.New(opts.DeviceBytes)
	if err == nil {
		in.Dev.EnableAccounting()
		inst, err = hotpathRunOn(in, nil, n)
	}
	snap := col.Snapshot()
	spans.Enrich(&snap)
	spans.OnSnapshot(nil)
	open := col.OpenRoots()
	spans.Install(prev)
	if err != nil {
		return fmt.Errorf("spans instrumented: %w", err)
	}

	fmt.Fprintf(w, "Span overhead gate: ZoFS hot path, %d files, spans off vs on (simulated kops/s)\n", n)
	t := tw(w)
	fmt.Fprintln(t, "Cell\tSpans off\tSpans on\tDelta")
	var failures []string
	for _, c := range cells {
		delta := math.Abs(inst[c]-base[c]) / base[c] * 100
		fmt.Fprintf(t, "%s\t%.1f\t%.1f\t%.3f%%\n", c, base[c], inst[c], delta)
		if delta > 2.0 {
			failures = append(failures, fmt.Sprintf("cell %s: spans-on throughput deviates %.3f%% (> 2%%)", c, delta))
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}

	// Attribution must be complete: components sum to measured latency.
	for op, ob := range snap.Ops {
		var sum int64
		for _, cs := range ob.Comp {
			sum += cs.SumNS
		}
		if ob.SumNS == 0 {
			continue
		}
		if dev := math.Abs(float64(sum-ob.SumNS)) / float64(ob.SumNS); dev > 0.01 {
			failures = append(failures, fmt.Sprintf("op %s: components sum to %d ns vs measured %d ns (%.2f%% off)", op, sum, ob.SumNS, dev*100))
		}
	}
	if open != 0 {
		failures = append(failures, fmt.Sprintf("%d spans left open after the run", open))
	}
	if dc := col.DoubleCloses(); dc != 0 {
		failures = append(failures, fmt.Sprintf("%d double-closed spans", dc))
	}

	var om strings.Builder
	if err := spans.WriteOpenMetrics(&om, snap); err != nil {
		return err
	}
	if err := spans.ValidateOpenMetrics(strings.NewReader(om.String())); err != nil {
		failures = append(failures, fmt.Sprintf("OpenMetrics validation: %v", err))
	}

	fmt.Fprintln(w, "\nLatency attribution (spans-on run):")
	if err := snap.WriteText(w); err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("spans gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(w, "\nspans gate: overhead, attribution and OpenMetrics checks passed")
	return nil
}
