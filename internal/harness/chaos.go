package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"zofs/internal/chaos"
)

// RunChaos executes the adversarial campaign (DESIGN.md §13): M client
// processes against one Treasury under a seeded fault schedule — kill with
// lease residue, stalled live holder, byzantine stray writes, media
// corruption, kernel-call delays — and gates on the containment invariants:
// healthy coffers at 100% availability, victims failing typed, lease waits
// bounded and attributed, stale resumes fenced. The campaign is run twice
// and the two reports must be byte-identical (the reproducibility contract),
// then the report is committed to BENCH_chaos.json.
func RunChaos(w io.Writer, opts Options) error {
	cfg := chaos.Config{Seed: 1, Ops: 500}
	if opts.Quick {
		cfg.Ops = 200
	}

	rep, err := chaos.Run(cfg)
	if err != nil {
		return fmt.Errorf("chaos campaign: %w", err)
	}
	rep.WriteSummary(w)

	// Reproducibility gate: same Config, byte-identical JSON.
	rep2, err := chaos.Run(cfg)
	if err != nil {
		return fmt.Errorf("chaos replay: %w", err)
	}
	ja, _ := json.Marshal(rep)
	jb, _ := json.Marshal(rep2)
	if !bytes.Equal(ja, jb) {
		return fmt.Errorf("chaos: same seed produced different reports")
	}
	fmt.Fprintln(w, "gate ok: byte-identical replay")

	if !rep.Passed() {
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "  violation %s: %s\n", v.Invariant, v.Detail)
		}
		return fmt.Errorf("chaos: %d containment violations", rep.ViolationCount)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_chaos.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_chaos.json")
	return nil
}
