package harness_test

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"zofs/internal/harness"
)

// TestRunHotpath runs the zero-copy-vs-copy-path experiment at quick size
// and gates on the optimization target: every cell at least 2x the
// copy-path baseline, with the JSON artifact written and well-formed.
func TestRunHotpath(t *testing.T) {
	t.Chdir(t.TempDir())
	runAndCheck(t, "hotpath", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunHotpath(&b, tiny())
	}, "Speedup", "create", "lookup", "read4k", "ZoFS-copypath")

	blob, err := os.ReadFile("BENCH_hotpath.json")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Baseline  string `json:"baseline"`
		Optimized string `json:"optimized"`
		Cells     []struct {
			Cell    string  `json:"cell"`
			Speedup float64 `json:"speedup"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out.Baseline != "ZoFS-copypath" || out.Optimized != "ZoFS" {
		t.Fatalf("unexpected variants: %+v", out)
	}
	if len(out.Cells) != 3 {
		t.Fatalf("want 3 cells, got %+v", out.Cells)
	}
	for _, c := range out.Cells {
		if c.Speedup < 2.0 {
			t.Errorf("cell %s: speedup %.2fx below the 2x target", c.Cell, c.Speedup)
		}
	}
}
