package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"zofs/internal/obsfs"
	"zofs/internal/sysfactory"
	"zofs/internal/telemetry"
	"zofs/internal/vfs"
)

// RunHotpath measures the zero-copy hot path against the scan-and-copy
// baseline: the default ZoFS configuration (device access windows,
// directory lookup cache, batched page allocation) versus ZoFS-copypath
// with all three disabled. Three single-thread cells over one shared
// directory large enough to exercise both the inline dentry area and the
// bucket chains:
//
//	create — empty-file creates (allocator + dentry insert path)
//	lookup — stat by path (directory lookup path)
//	read4k — open + 4KB pread + close (open/read path)
//
// Throughput is simulated (virtual-time) kops/s. Results are printed and
// recorded, before/after with speedups, in BENCH_hotpath.json.
func RunHotpath(w io.Writer, opts Options) error {
	opts.fill()
	// Enough names in one directory that some buckets overflow into chain
	// pages (inline capacity is 16 dentries per first-level slot).
	n := 12288
	if opts.Quick {
		n = 4096
	}
	cells := []string{"create", "lookup", "read4k"}
	base, err := hotpathRun(sysfactory.ZoFSCopyPath, opts, n)
	if err != nil {
		return fmt.Errorf("hotpath %s: %w", sysfactory.ZoFSCopyPath.Name, err)
	}
	opt, err := hotpathRun(sysfactory.ZoFS, opts, n)
	if err != nil {
		return fmt.Errorf("hotpath %s: %w", sysfactory.ZoFS.Name, err)
	}

	fmt.Fprintf(w, "Hot path: %s vs %s, %d files in one directory (simulated kops/s)\n",
		sysfactory.ZoFS.Name, sysfactory.ZoFSCopyPath.Name, n)
	t := tw(w)
	fmt.Fprintln(t, "Cell\tCopy path\tZero copy\tSpeedup")
	type cellOut struct {
		Cell          string  `json:"cell"`
		BaselineKops  float64 `json:"baseline_kops"`
		OptimizedKops float64 `json:"optimized_kops"`
		Speedup       float64 `json:"speedup"`
	}
	out := struct {
		Experiment string    `json:"experiment"`
		Baseline   string    `json:"baseline"`
		Optimized  string    `json:"optimized"`
		Files      int       `json:"files"`
		Quick      bool      `json:"quick"`
		Cells      []cellOut `json:"cells"`
	}{
		Experiment: "hotpath",
		Baseline:   sysfactory.ZoFSCopyPath.Name,
		Optimized:  sysfactory.ZoFS.Name,
		Files:      n,
		Quick:      opts.Quick,
	}
	for _, c := range cells {
		sp := opt[c] / base[c]
		fmt.Fprintf(t, "%s\t%.1f\t%.1f\t%.2fx\n", c, base[c], opt[c], sp)
		out.Cells = append(out.Cells, cellOut{Cell: c, BaselineKops: round1(base[c]), OptimizedKops: round1(opt[c]), Speedup: round2(sp)})
	}
	if err := t.Flush(); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_hotpath.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_hotpath.json")
	return nil
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// hotpathRun runs all three cells on one fresh instance and returns
// simulated kops/s per cell.
func hotpathRun(sys sysfactory.System, opts Options, n int) (map[string]float64, error) {
	in, err := sys.New(opts.DeviceBytes)
	if err != nil {
		return nil, err
	}
	return hotpathRunOn(in, nil, n)
}

// hotpathRunOn runs the three hot-path cells on an instance the caller
// built (and may have instrumented, e.g. enabled byte-flow accounting on).
// rec, when non-nil, receives per-op telemetry from the obsfs wrap — the
// series gate passes one so the cumulative histograms and the windowed
// series observe the identical op stream.
func hotpathRunOn(in *sysfactory.Instance, rec *telemetry.Recorder, n int) (map[string]float64, error) {
	th := in.Proc.NewThread()
	// With span collection active the wrapper opens a root span per op; with
	// everything off (and no telemetry recorder passed) this returns in.FS
	// unchanged.
	fs := obsfs.Wrap(in.FS, rec)
	if err := fs.Mkdir(th, "/hot", 0o755); err != nil {
		return nil, err
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("/hot/f-%06d", i)
	}
	kops := func(ops int, vns int64) float64 {
		return float64(ops) / float64(vns) * 1e6
	}
	res := map[string]float64{}

	// Cell 1: small-file create.
	start := th.Clk.Now()
	for _, nm := range names {
		h, err := fs.Create(th, nm, 0o644)
		if err != nil {
			return nil, err
		}
		h.Close(th)
	}
	res["create"] = kops(n, th.Clk.Now()-start)

	// Populate 4KB of content for the read cell (untimed).
	buf := make([]byte, 4096)
	for _, nm := range names {
		h, err := fs.Open(th, nm, vfs.O_RDWR)
		if err != nil {
			return nil, err
		}
		if _, err := h.WriteAt(th, buf, 0); err != nil {
			return nil, err
		}
		h.Close(th)
	}

	// Cell 2: lookup (stat by path, strided so neighbours don't share
	// hash buckets).
	start = th.Clk.Now()
	for i := 0; i < n; i++ {
		if _, err := fs.Stat(th, names[i*7919%n]); err != nil {
			return nil, err
		}
	}
	res["lookup"] = kops(n, th.Clk.Now()-start)

	// Cell 3: open + 4KB read + close.
	start = th.Clk.Now()
	for i := 0; i < n; i++ {
		h, err := fs.Open(th, names[i*104729%n], vfs.O_RDONLY)
		if err != nil {
			return nil, err
		}
		if _, err := h.ReadAt(th, buf, 0); err != nil {
			return nil, err
		}
		h.Close(th)
	}
	res["read4k"] = kops(n, th.Clk.Now()-start)
	return res, nil
}
