package harness

import (
	"fmt"
	"io"

	"zofs/internal/coffer"
	"zofs/internal/sysfactory"
)

// RunTable9 reproduces the worst-case cross-coffer operation test (paper
// Table 9): chmod of random files initially stored in one coffer (each
// chmod splits the coffer), and rename of files between two coffers.
// Compared: NOVA (kernel chmod/rename), ZoFS (splits), ZoFS-1coffer
// (user-space in-place updates).
func RunTable9(w io.Writer, opts Options) error {
	opts.fill()
	files := 100
	filePages := 64 // 256KB files: split cost is dominated by page retagging
	if opts.Quick {
		files, filePages = 40, 32
	}
	systems := []sysfactory.System{sysfactory.NOVA, sysfactory.ZoFS, sysfactory.ZoFS1Coffer}

	results := map[string]map[string]int64{}
	for _, sys := range systems {
		chmodNS, err := table9Chmod(sys, files, filePages)
		if err != nil {
			return fmt.Errorf("table9 chmod %s: %w", sys.Name, err)
		}
		renameNS, err := table9Rename(sys, files, filePages)
		if err != nil {
			return fmt.Errorf("table9 rename %s: %w", sys.Name, err)
		}
		results[sys.Name] = map[string]int64{"chmod": chmodNS, "rename": renameNS}
	}

	fmt.Fprintln(w, "Table 9: Worst case performance tests (ns/op)")
	t := tw(w)
	fmt.Fprintln(t, "Latency/ns\tNOVA\tZoFS\tZoFS-1coffer")
	for _, op := range []string{"chmod", "rename"} {
		fmt.Fprintf(t, "%s\t%d\t%d\t%d\n", op,
			results["NOVA"][op], results["ZoFS"][op], results["ZoFS-1coffer"][op])
	}
	return t.Flush()
}

// table9Chmod stores files in one coffer and then changes random files'
// permissions; in stock ZoFS every chmod splits the coffer.
func table9Chmod(sys sysfactory.System, files, filePages int) (int64, error) {
	in, err := sys.New(4 << 30)
	if err != nil {
		return 0, err
	}
	th := in.Proc.NewThread()
	if err := in.FS.Mkdir(th, "/one", 0o755); err != nil {
		return 0, err
	}
	buf := make([]byte, filePages*4096)
	for i := 0; i < files; i++ {
		h, err := in.FS.Create(th, fmt.Sprintf("/one/f%04d", i), 0o644)
		if err != nil {
			return 0, err
		}
		if _, err := h.WriteAt(th, buf, 0); err != nil {
			return 0, err
		}
		h.Close(th)
	}
	start := th.Clk.Now()
	for i := 0; i < files; i++ {
		if err := in.FS.Chmod(th, fmt.Sprintf("/one/f%04d", i), 0o600); err != nil {
			return 0, err
		}
	}
	return (th.Clk.Now() - start) / int64(files), nil
}

// table9Rename stores files evenly in two coffers (directories with
// different permissions for ZoFS) and renames random files to the other.
func table9Rename(sys sysfactory.System, files, filePages int) (int64, error) {
	in, err := sys.New(4 << 30)
	if err != nil {
		return 0, err
	}
	th := in.Proc.NewThread()
	// Different permissions force the two dirs into two coffers under
	// ZoFS; for ZoFS-1coffer and NOVA they are just two directories.
	if err := in.FS.Mkdir(th, "/ca", 0o750); err != nil {
		return 0, err
	}
	if err := in.FS.Mkdir(th, "/cb", 0o700); err != nil {
		return 0, err
	}
	buf := make([]byte, filePages*4096)
	for i := 0; i < files; i++ {
		dir, mode := "/ca", coffer.Mode(0o750)
		if i%2 == 1 {
			dir, mode = "/cb", 0o700
		}
		h, err := in.FS.Create(th, fmt.Sprintf("%s/f%04d", dir, i), mode)
		if err != nil {
			return 0, err
		}
		if _, err := h.WriteAt(th, buf, 0); err != nil {
			return 0, err
		}
		h.Close(th)
	}
	start := th.Clk.Now()
	moved := 0
	for i := 0; i < files; i++ {
		src, dst := "/ca", "/cb"
		if i%2 == 1 {
			src, dst = "/cb", "/ca"
		}
		err := in.FS.Rename(th, fmt.Sprintf("%s/f%04d", src, i), fmt.Sprintf("%s/m%04d", dst, i))
		if err != nil {
			return 0, fmt.Errorf("rename %d: %w", i, err)
		}
		moved++
	}
	return (th.Clk.Now() - start) / int64(moved), nil
}
