package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"zofs/internal/obsfs"
	"zofs/internal/series"
	"zofs/internal/spans"
	"zofs/internal/telemetry"
	"zofs/internal/vfs"
)

// statsCell is one benchmark cell's telemetry interval in the sidecar JSON.
// Extra carries experiment-specific scalars (e.g. recovery timing) that the
// telemetry counters do not capture.
type statsCell struct {
	Label   string             `json:"label"`
	Metrics telemetry.Snapshot `json:"metrics"`
	Spans   *spans.Snapshot    `json:"spans,omitempty"`
	Extra   map[string]int64   `json:"extra,omitempty"`
}

// statsRun collects per-cell telemetry for one experiment when Options.Stats
// is set. The nil *statsRun is a valid no-op, so experiment code calls it
// unconditionally.
type statsRun struct {
	name      string
	tag       string // run-configuration suffix keeping sweep sidecars distinct
	dir       string
	rec       *telemetry.Recorder
	prev      telemetry.Snapshot
	spansPrev spans.Snapshot
	cells     []statsCell
}

// sidecarTag derives a filename suffix from the run's configuration so
// repeated runs of one experiment under different configs (quick vs full,
// different thread sweeps) do not overwrite each other's sidecars.
func sidecarTag(opts Options) string {
	tag := "full"
	if opts.Quick {
		tag = "quick"
	}
	if spans.Active() != nil {
		// Span collection perturbs nothing in virtual time, but the sidecar
		// should say how its numbers were gathered.
		tag += "-spans"
	}
	if series.Active() != nil {
		tag += "-series"
	}
	if len(opts.Threads) == 0 {
		return tag
	}
	parts := make([]string, len(opts.Threads))
	for i, n := range opts.Threads {
		parts[i] = strconv.Itoa(n)
	}
	return tag + "-t" + strings.Join(parts, "x")
}

// newStatsRun enables process-wide telemetry for an experiment; devices
// created afterwards attach to the returned recorder. Returns nil (no-op)
// when stats are off.
func newStatsRun(opts Options, name string) *statsRun {
	if !opts.Stats {
		return nil
	}
	dir := opts.StatsDir
	if dir == "" {
		dir = "results"
	}
	return &statsRun{name: name, tag: sidecarTag(opts), dir: dir, rec: telemetry.Enable()}
}

// wrap instruments a file system for per-op latency observation. Benchmarks
// drive the vfs interface directly (bypassing FSLibs), so op histograms come
// from this wrapper. Must be applied after any concrete-type assertions on
// the instance's FS.
func (s *statsRun) wrap(fs vfs.FileSystem) vfs.FileSystem {
	if s == nil {
		// No -stats: still observe ops when span collection is active
		// (obsfs.Wrap is the identity when both sinks are off).
		return obsfs.Wrap(fs, nil)
	}
	return obsfs.Wrap(fs, s.rec)
}

// endCell closes one benchmark cell, recording the telemetry delta since the
// previous cell under the given label (e.g. "ZoFS/DWOL/4").
func (s *statsRun) endCell(label string) {
	s.endCellExtra(label, nil)
}

// endCellExtra is endCell plus experiment-specific scalars attached to the
// cell (written to the sidecar and printed alongside the telemetry tables).
func (s *statsRun) endCellExtra(label string, extra map[string]int64) {
	if s == nil {
		return
	}
	cur := s.rec.Snapshot()
	cell := statsCell{Label: label, Metrics: cur.Diff(s.prev), Extra: extra}
	s.prev = cur
	if col := spans.Active(); col != nil {
		sc := col.Snapshot()
		d := sc.Diff(s.spansPrev)
		cell.Spans = &d
		s.spansPrev = sc
	}
	s.cells = append(s.cells, cell)
}

// finish disables telemetry, prints each cell's tables and writes the
// experiment's metrics sidecar (results/metrics-<name>-<config>.json).
func (s *statsRun) finish(w io.Writer) error {
	if s == nil {
		return nil
	}
	telemetry.Disable()
	for _, c := range s.cells {
		fmt.Fprintf(w, "\n[stats %s]\n", c.Label)
		if err := c.Metrics.WriteText(w); err != nil {
			return err
		}
		if c.Spans != nil {
			fmt.Fprintf(w, "\n[spans %s]\n", c.Label)
			if err := c.Spans.WriteText(w); err != nil {
				return err
			}
		}
		if len(c.Extra) > 0 {
			keys := make([]string, 0, len(c.Extra))
			for k := range c.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "  %-24s %d\n", k, c.Extra[k])
			}
		}
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	doc := struct {
		Experiment string      `json:"experiment"`
		Cells      []statsCell `json:"cells"`
	}{Experiment: s.name, Cells: s.cells}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, "metrics-"+s.name+"-"+s.tag+".json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmetrics sidecar: %s\n", path)
	return nil
}
