package harness

import (
	"fmt"
	"io"
	"strings"

	"zofs/internal/series"
	"zofs/internal/spans"
	"zofs/internal/sysfactory"
	"zofs/internal/telemetry"
)

// RunSeries is the tail-observatory gate. It runs the hot-path cells twice —
// all observability off, then with the windowed series pipeline, telemetry
// and exemplar-capturing spans enabled — and asserts the properties the
// series layer promises:
//
//  1. Bit-identical virtual time: series collection only reads clocks, so
//     per-cell simulated throughput must agree with the baseline EXACTLY
//     (not within a tolerance — the same integer nanosecond totals).
//  2. Merge-exactness: folding every window's bucket vector (plus the spill)
//     reproduces the cumulative telemetry histogram bit-for-bit — same
//     counts, same sums, same 252 buckets per op kind.
//  3. Worst-op exemplars are captured and every one carries the exact-sum
//     attribution invariant (components sum to the measured duration).
//  4. SLO burn accounting is conservative: an always-breached objective
//     (threshold 1ns) counts every op as bad, a never-breached one
//     (threshold 2^40 ns) counts none, and totals equal the op counts.
//  5. The OpenMetrics rendering of the windowed state validates.
func RunSeries(w io.Writer, opts Options) error {
	opts.fill()
	n := 12288
	if opts.Quick {
		n = 4096
	}
	cells := []string{"create", "lookup", "read4k"}

	// Baseline with every tail-observatory layer off.
	prevSpans := spans.Active()
	prevSeries := series.Active()
	spans.Disable()
	series.Disable()
	base, err := hotpathRun(sysfactory.ZoFS, opts, n)
	if err != nil {
		spans.Install(prevSpans)
		series.Install(prevSeries)
		return fmt.Errorf("series baseline: %w", err)
	}

	// Instrumented run: windowed series + cumulative telemetry observing the
	// identical op stream, spans capturing worst-op exemplars above the
	// adaptive thresholds the series collector pushes.
	rec := telemetry.New()
	sc := series.Enable(series.Config{
		WindowNS: 100_000, // ~tens of windows across the run
		SLOs: []series.SLO{
			{Op: telemetry.OpCreate, ThresholdNS: 1, Target: 0.5},        // always breached
			{Op: telemetry.OpStat, ThresholdNS: 1 << 40, Target: 0.999},  // never breached
			{Op: telemetry.OpOpen, ThresholdNS: 2_000, Target: 0.999999}, // realistic mixed
		},
	})
	col := spans.Enable(spans.Config{RingCap: -1, ExemplarK: spans.DefaultExemplarK})
	var inst map[string]float64
	in, err := sysfactory.ZoFS.New(opts.DeviceBytes)
	if err == nil {
		inst, err = hotpathRunOn(in, rec, n)
	}
	spans.Install(prevSpans)
	series.Install(prevSeries)
	if err != nil {
		return fmt.Errorf("series instrumented: %w", err)
	}

	fmt.Fprintf(w, "Tail observatory gate: ZoFS hot path, %d files, series off vs on (simulated kops/s)\n", n)
	t := tw(w)
	fmt.Fprintln(t, "Cell\tSeries off\tSeries on\tIdentical")
	var failures []string
	for _, c := range cells {
		same := inst[c] == base[c]
		fmt.Fprintf(t, "%s\t%.1f\t%.1f\t%v\n", c, base[c], inst[c], same)
		if !same {
			failures = append(failures, fmt.Sprintf(
				"cell %s: virtual time diverged with series on (%.6f vs %.6f kops/s) — observability advanced a clock",
				c, inst[c], base[c]))
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}

	// Merge-exactness against the cumulative telemetry histograms.
	wins := sc.Windows()
	if len(wins) < 2 {
		failures = append(failures, fmt.Sprintf("only %d windows retained; want multiple (width %d ns)", len(wins), sc.WidthNS()))
	}
	merged := sc.Merged()
	snap := rec.Snapshot()
	if len(merged) != len(snap.Ops) {
		failures = append(failures, fmt.Sprintf("op sets differ: series has %d kinds, telemetry %d", len(merged), len(snap.Ops)))
	}
	for name, ts := range snap.Ops {
		m, ok := merged[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("op %s: in telemetry but missing from merged series", name))
			continue
		}
		if m.Count != ts.Count || m.SumNS != ts.SumNS {
			failures = append(failures, fmt.Sprintf("op %s: merged count/sum %d/%d != telemetry %d/%d",
				name, m.Count, m.SumNS, ts.Count, ts.SumNS))
			continue
		}
		for i := range ts.Buckets {
			if m.Buckets[i] != ts.Buckets[i] {
				failures = append(failures, fmt.Sprintf("op %s: bucket %d merged %d != telemetry %d — window merge is not exact",
					name, i, m.Buckets[i], ts.Buckets[i]))
				break
			}
		}
	}

	// Exemplars: captured, and each one's components sum to its duration.
	exes := col.Exemplars()
	if len(exes) == 0 {
		failures = append(failures, "no worst-op exemplars captured")
	}
	for _, e := range exes {
		var sum int64
		for _, v := range e.Root.Comp {
			sum += v
		}
		if sum != e.Root.Dur {
			failures = append(failures, fmt.Sprintf("exemplar %s@%d: components sum to %d ns, duration is %d ns",
				e.Root.Op, e.Root.Start, sum, e.Root.Dur))
		}
	}

	// SLO burn accounting.
	slos := sc.SLOs()
	for _, s := range slos {
		opCount := merged[s.Op].Count
		if s.Total != opCount {
			failures = append(failures, fmt.Sprintf("slo %s: evaluated %d ops, op count is %d", s.Op, s.Total, opCount))
		}
		if s.Bad > s.Total {
			failures = append(failures, fmt.Sprintf("slo %s: breaches %d > events %d", s.Op, s.Bad, s.Total))
		}
		switch {
		case s.ThresholdNS == 1 && s.Bad != s.Total:
			failures = append(failures, fmt.Sprintf("slo %s: 1ns threshold breached only %d of %d ops", s.Op, s.Bad, s.Total))
		case s.ThresholdNS == 1<<40 && s.Bad != 0:
			failures = append(failures, fmt.Sprintf("slo %s: 2^40ns threshold breached %d ops", s.Op, s.Bad))
		}
	}

	var om strings.Builder
	if err := sc.WriteOpenMetrics(&om); err != nil {
		return err
	}
	if err := series.ValidateOpenMetrics(strings.NewReader(om.String())); err != nil {
		failures = append(failures, fmt.Sprintf("OpenMetrics validation: %v", err))
	}

	fmt.Fprintf(w, "\nWindows: %d retained (width %d ns, %d spilled), %d observations, %d exemplars\n",
		len(wins), sc.WidthNS(), sc.SpilledWindows(), sc.Total(), len(exes))
	t = tw(w)
	fmt.Fprintln(t, "SLO\tthreshold ns\ttarget\tevents\tbreaches\tburn")
	for _, s := range slos {
		fmt.Fprintf(t, "%s\t%d\t%.6f\t%d\t%d\t%.3f\n", s.Op, s.ThresholdNS, s.Target, s.Total, s.Bad, s.Burn)
	}
	if err := t.Flush(); err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("series gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(w, "\nseries gate: bit-identical time, merge-exact windows, exemplar attribution and SLO checks passed")
	return nil
}
