package harness

import (
	"errors"
	"fmt"
	"io"

	"zofs/internal/crashmc"
)

// RunCrashMC drives the crash-state model checker (internal/crashmc) as an
// evaluation artifact: a dense sweep over ZoFS and a baseline under all
// three media models on both crash edges, followed by the two
// injected-fault campaigns. Any invariant violation fails the run.
func RunCrashMC(w io.Writer, opts Options) error {
	opts.fill()
	points, ops := 35, 30
	if opts.Quick {
		points, ops = 12, 20
	}
	fmt.Fprintln(w, "Crash-state model checker (drop/subset/torn media models, after/before edges)")
	failed := false
	for _, system := range []string{"ZoFS", "Ext4-DAX"} {
		rep, err := crashmc.Explore(crashmc.Config{
			System: system, Seed: 1, Ops: ops, Points: points, DeviceBytes: 64 << 20,
		})
		if err != nil {
			return fmt.Errorf("crashmc %s: %w", system, err)
		}
		fmt.Fprintf(w, "  %-10s %d crash states over %d persistence points: %d violations; dirty states %d (max %d lines), fsck repairs %d\n",
			system, rep.States, rep.WorkloadPoints, len(rep.Violations),
			rep.DirtyStates, rep.MaxDirtyLines, rep.Repairs)
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "    VIOLATION %s\n", v)
			failed = true
		}
	}
	for _, mode := range []string{"bitflip", "lease", "slotless"} {
		rep, viols, err := crashmc.RunFaults(crashmc.Config{
			System: "ZoFS", Seed: 1, Ops: ops, DeviceBytes: 64 << 20,
		}, mode)
		if err != nil {
			return fmt.Errorf("crashmc %s: %w", mode, err)
		}
		fmt.Fprintf(w, "  inject %-8s detected=%v repairs=%d leases cleared=%d survivor errors=%d/%d panics=%d\n",
			mode, rep.Detected, rep.Repairs, rep.LeasesCleared,
			rep.SurvivorErrors, rep.SurvivorOps, rep.SurvivorPanics)
		if mode == "slotless" {
			fmt.Fprintf(w, "  inject %-8s stranded=%d pages, recovery reclaimed=%d\n",
				"", rep.StrandedPages, rep.PagesReclaimed)
		}
		for _, v := range viols {
			fmt.Fprintf(w, "    VIOLATION %s\n", v)
			failed = true
		}
	}
	if failed {
		return errors.New("crashmc: invariant violations")
	}
	fmt.Fprintln(w, "  PASS: all crash-state and fault-injection invariants held")
	return nil
}
