package harness

import (
	"fmt"
	"io"

	"zofs/internal/fxmark"
	"zofs/internal/proc"
	"zofs/internal/sysfactory"
	"zofs/internal/vfs"
)

// RunTable2 reproduces the shared-file/shared-directory latency comparison
// (paper Table 2): average latency of a 4KB append to a shared file and of
// an empty-file create in a shared directory, with one process and with
// two processes alternating — the experiment that exposes Strata's
// digestion cost.
func RunTable2(w io.Writer, opts Options) error {
	opts.fill()
	systems := []sysfactory.System{sysfactory.Strata, sysfactory.NOVA, sysfactory.ZoFS}
	ops := 200
	if opts.Quick {
		ops = 60
	}

	type cell struct {
		op    string
		procs int
	}
	rows := []cell{{"append", 1}, {"append", 2}, {"create", 1}, {"create", 2}}
	results := map[string]map[cell]int64{}

	for _, sys := range systems {
		results[sys.Name] = map[cell]int64{}
		for _, c := range rows {
			lat, err := table2Latency(sys, c.op, c.procs, ops)
			if err != nil {
				return fmt.Errorf("table2 %s/%s/%d: %w", sys.Name, c.op, c.procs, err)
			}
			results[sys.Name][c] = lat
		}
	}
	fmt.Fprintln(w, "Table 2: Latency (ns) of operations on a file/directory shared by multiple processes")
	t := tw(w)
	fmt.Fprintln(t, "Operation\t# Processes\tStrata\tNOVA\tZoFS")
	for _, c := range rows {
		fmt.Fprintf(t, "%s\t%d\t%d\t%d\t%d\n", c.op, c.procs,
			results["Strata"][c], results["NOVA"][c], results["ZoFS"][c])
	}
	return t.Flush()
}

// table2Latency measures avg ns/op for appends to one shared file or
// creates in one shared directory, by nProcs processes taking turns.
func table2Latency(sys sysfactory.System, op string, nProcs, ops int) (int64, error) {
	in, err := sys.New(2 << 30)
	if err != nil {
		return 0, err
	}
	setup := in.Proc.NewThread()

	// Every process gets its own FSLibs-style view. For ZoFS, a second
	// process means a second µFS instance over the same kernel.
	type actor struct {
		th *proc.Thread
		fs vfs.FileSystem
		h  vfs.Handle
	}
	actors := make([]*actor, nProcs)
	actors[0] = &actor{th: in.Proc.NewThread(), fs: in.FS}
	for i := 1; i < nProcs; i++ {
		fs2, p2, err := secondProcess(sys, in)
		if err != nil {
			return 0, err
		}
		actors[i] = &actor{th: p2.NewThread(), fs: fs2}
	}

	if err := in.FS.Mkdir(setup, "/shared", 0o777); err != nil {
		return 0, err
	}
	if op == "append" {
		h, err := in.FS.Create(setup, "/shared/f", 0o666)
		if err != nil {
			return 0, err
		}
		actors[0].h = h
		for i := 1; i < nProcs; i++ {
			h2, err := actors[i].fs.Open(actors[i].th, "/shared/f", vfs.O_RDWR)
			if err != nil {
				return 0, err
			}
			actors[i].h = h2
		}
	}

	// Warm up each actor before timing: the first operations pay one-time
	// costs (allocator lease grants of hundreds of pages, cold hash
	// buckets) that the paper's long steady-state runs amortize away.
	for w := 0; w < 8; w++ {
		for ai, a := range actors {
			switch op {
			case "append":
				if _, err := a.h.Append(a.th, make([]byte, 4096)); err != nil {
					return 0, err
				}
			case "create":
				h, err := a.fs.Create(a.th, fmt.Sprintf("/shared/w-%d-%d", ai, w), 0o666)
				if err != nil {
					return 0, err
				}
				h.Close(a.th)
			}
		}
	}

	// Align clocks past setup. Each round, every process issues its
	// operation at the same virtual instant — the continuous-concurrent-
	// appenders pattern of the paper's experiment. Shared virtual-time
	// resources (per-file locks, Strata's lease/digestion) serialize the
	// round, so measured latency includes contention.
	start := setup.Clk.Now()
	for _, a := range actors {
		if a.th.Clk.Now() > start {
			start = a.th.Clk.Now()
		}
	}
	for _, a := range actors {
		a.th.Clk.AdvanceTo(start)
	}

	block := make([]byte, 4096)
	var total int64
	count := 0
	for i := 0; i < ops; i++ {
		roundStart := int64(0)
		for _, a := range actors {
			if a.th.Clk.Now() > roundStart {
				roundStart = a.th.Clk.Now()
			}
		}
		for ai, a := range actors {
			a.th.Clk.AdvanceTo(roundStart)
			switch op {
			case "append":
				if _, err := a.h.Append(a.th, block); err != nil {
					return 0, err
				}
			case "create":
				p := fmt.Sprintf("/shared/n-%d-%d", ai, i)
				h, err := a.fs.Create(a.th, p, 0o666)
				if err != nil {
					return 0, err
				}
				h.Close(a.th)
			}
			total += a.th.Clk.Now() - roundStart
			count++
		}
	}
	return total / int64(count), nil
}

// secondProcess attaches another process to an existing instance.
func secondProcess(sys sysfactory.System, in *sysfactory.Instance) (vfs.FileSystem, *proc.Process, error) {
	p2 := proc.NewProcess(in.Dev, 0, 0)
	switch fs := in.FS.(type) {
	case secondMounter:
		f2, err := fs.SecondMount(p2)
		return f2, p2, err
	default:
		// Kernel FSs: the same engine serves every process.
		return in.FS, p2, nil
	}
}

// secondMounter lets a file system produce a per-process instance.
type secondMounter interface {
	SecondMount(p *proc.Process) (vfs.FileSystem, error)
}

// RunFig7 sweeps the FxMark workloads over the thread counts for every
// compared file system (paper Figure 7).
func RunFig7(w io.Writer, opts Options) error {
	opts.fill()
	st := newStatsRun(opts, "fig7")
	fmt.Fprintln(w, "Figure 7: FxMark throughput (Mops/s), 4KB units")
	for _, wl := range fxmark.All {
		fmt.Fprintf(w, "\n(%s)\n", wl)
		t := tw(w)
		fmt.Fprint(t, "threads")
		for _, sys := range comparisonSystems() {
			fmt.Fprintf(t, "\t%s", sys.Name)
		}
		fmt.Fprintln(t)
		for _, th := range opts.Threads {
			fmt.Fprintf(t, "%d", th)
			for _, sys := range comparisonSystems() {
				in, err := sys.New(opts.DeviceBytes)
				if err != nil {
					return err
				}
				env := &fxmark.Env{FS: st.wrap(in.FS), Proc: in.Proc, SetConcurrency: in.SetConcurrency}
				r, err := fxmark.Run(env, wl, th, opts.TargetNS)
				if err != nil {
					return fmt.Errorf("fig7 %s/%s/%d: %w", sys.Name, wl, th, err)
				}
				st.endCell(fmt.Sprintf("%s/%s/%d", sys.Name, wl, th))
				fmt.Fprintf(t, "\t%.3f", r.MopsPerSec)
			}
			fmt.Fprintln(t)
		}
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return st.finish(w)
}

// RunFig8 reproduces the DWOL breakdown (paper Figure 8): ZoFS and its
// instrumented variants against the NOVA/PMFS variants, single-threaded.
func RunFig8(w io.Writer, opts Options) error {
	opts.fill()
	systems := []sysfactory.System{
		sysfactory.ZoFS, sysfactory.ZoFSSysEmpty,
		sysfactory.NOVANoIndex, sysfactory.PMFSNocache, sysfactory.ZoFSKWrite, sysfactory.NOVAiNoIndex,
		sysfactory.PMFS, sysfactory.NOVA, sysfactory.NOVAi,
	}
	st := newStatsRun(opts, "fig8")
	fmt.Fprintln(w, "Figure 8: Throughput breakdown of DWOL (Mops/s, 1 thread)")
	t := tw(w)
	fmt.Fprintln(t, "System\tMops/s")
	for _, sys := range systems {
		in, err := sys.New(1 << 30)
		if err != nil {
			return err
		}
		env := &fxmark.Env{FS: st.wrap(in.FS), Proc: in.Proc, SetConcurrency: in.SetConcurrency}
		r, err := fxmark.Run(env, fxmark.DWOL, 1, opts.TargetNS)
		if err != nil {
			return fmt.Errorf("fig8 %s: %w", sys.Name, err)
		}
		st.endCell(fmt.Sprintf("%s/%s/1", sys.Name, fxmark.DWOL))
		fmt.Fprintf(t, "%s\t%.3f\n", sys.Name, r.MopsPerSec)
	}
	if err := t.Flush(); err != nil {
		return err
	}
	return st.finish(w)
}
