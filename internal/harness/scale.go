package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"zofs/internal/fxmark"
	"zofs/internal/lockprof"
	"zofs/internal/spans"
	"zofs/internal/sysfactory"
)

// The FxMark scalability matrix (tentpole of the concurrency observatory):
// every workload personality swept across thread counts on every system,
// each cell attributed to its top contended locks by the lock profiler, and
// each (system, workload) curve fitted with Amdahl's law and the Universal
// Scalability Law to extract a serial fraction. The committed artifact,
// BENCH_fxmark_scale.json, is the data ROADMAP item 2 (namespace sharding)
// selects its targets from.

// ScaleLock is one contended lock attributed to a cell.
type ScaleLock struct {
	Lock      string `json:"lock"`
	WaitNS    int64  `json:"wait_ns"`
	Contended int64  `json:"contended"`
}

// ScaleCell is one (threads) point of a scalability curve.
type ScaleCell struct {
	Threads    int         `json:"threads"`
	Ops        int64       `json:"ops"`
	VirtualNS  int64       `json:"virtual_ns"`
	MopsPerSec float64     `json:"mops_per_sec"`
	TopLocks   []ScaleLock `json:"top_locks,omitempty"`
}

// ScaleFit is the least-squares scaling model for one curve.
//
// The Universal Scalability Law (Gunther) models throughput at N threads as
// X(N) = λN / (1 + σ(N−1) + κN(N−1)): σ is the serial (contention)
// fraction, κ the crosstalk (coherency) penalty that produces retrograde
// scaling. Amdahl's law is the κ=0 special case, so SigmaAmdahl is the
// classical serial fraction. Both fits grid-search σ (and κ) and solve λ in
// closed form per grid point (λ* = Σx·g / Σg², g = N/denominator).
type ScaleFit struct {
	Lambda      float64 `json:"lambda_mops"`
	SigmaAmdahl float64 `json:"serial_fraction_amdahl"`
	R2Amdahl    float64 `json:"r2_amdahl"`
	Sigma       float64 `json:"usl_sigma"`
	Kappa       float64 `json:"usl_kappa"`
	R2          float64 `json:"r2_usl"`
	// PeakThreads is the thread count with the highest measured throughput.
	PeakThreads int `json:"peak_threads"`
	// AntiScaling marks curves that lose >5% of peak throughput by the
	// widest sweep point — the cells ROADMAP item 2 cares about.
	AntiScaling bool `json:"anti_scaling"`
}

// ScaleCurve is one (system, workload) row of the matrix.
type ScaleCurve struct {
	System   string      `json:"system"`
	Workload string      `json:"workload"`
	Cells    []ScaleCell `json:"cells"`
	Fit      ScaleFit    `json:"fit"`
}

// ScaleReport is the BENCH_fxmark_scale.json artifact.
type ScaleReport struct {
	Quick    bool  `json:"quick"`
	Threads  []int `json:"threads"`
	TargetNS int64 `json:"target_ns"`
	// Gates records the self-asserted invariants the run verified.
	Gates  []string     `json:"gates"`
	Curves []ScaleCurve `json:"curves"`
}

// scaleCell runs one FxMark cell on a fresh instance.
func scaleCell(sys sysfactory.System, w fxmark.Workload, threads int, targetNS, devBytes int64) (fxmark.Result, error) {
	in, err := sys.New(devBytes)
	if err != nil {
		return fxmark.Result{}, err
	}
	env := &fxmark.Env{FS: in.FS, Proc: in.Proc, SetConcurrency: in.SetConcurrency}
	return fxmark.Run(env, w, threads, targetNS)
}

// fitCurve grid-searches (σ, κ) and solves λ per grid point in closed form.
func fitCurve(threads []int, mops []float64) ScaleFit {
	uslKappas := []float64{0}
	for k := 1e-7; k <= 1e-2*1.0001; k *= math.Sqrt(10) {
		uslKappas = append(uslKappas, k)
	}
	var mean float64
	for _, x := range mops {
		mean += x
	}
	mean /= float64(len(mops))
	var sstot float64
	for _, x := range mops {
		sstot += (x - mean) * (x - mean)
	}
	eval := func(kappas []float64) (lambda, sigma, kappa, r2 float64) {
		bestSSE := math.Inf(1)
		for s := 0.0; s <= 1.0001; s += 0.0025 {
			for _, k := range kappas {
				var sxg, sgg float64
				for i, n := range threads {
					nf := float64(n)
					g := nf / (1 + s*(nf-1) + k*nf*(nf-1))
					sxg += mops[i] * g
					sgg += g * g
				}
				if sgg == 0 {
					continue
				}
				l := sxg / sgg
				var sse float64
				for i, n := range threads {
					nf := float64(n)
					g := nf / (1 + s*(nf-1) + k*nf*(nf-1))
					d := mops[i] - l*g
					sse += d * d
				}
				if sse < bestSSE {
					bestSSE, lambda, sigma, kappa = sse, l, s, k
				}
			}
		}
		if sstot > 0 {
			r2 = 1 - bestSSE/sstot
		} else if bestSSE < 1e-12 {
			r2 = 1
		}
		return
	}
	var fit ScaleFit
	fit.Lambda, fit.SigmaAmdahl, _, fit.R2Amdahl = eval([]float64{0})
	_, fit.Sigma, fit.Kappa, fit.R2 = eval(uslKappas)
	peak := 0
	for i := range mops {
		if mops[i] > mops[peak] {
			peak = i
		}
	}
	fit.PeakThreads = threads[peak]
	last := len(mops) - 1
	fit.AntiScaling = peak < last && mops[last] < 0.95*mops[peak]
	return fit
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// RunFxmarkScale is the fxmark-scale experiment: the scalability matrix plus
// the concurrency observatory's self-asserted gates.
//
// Gates (all hard failures):
//  1. Bit-identical virtual time: a deterministic 1-thread cell run with the
//     lock profiler off and on must agree on Ops and VirtualNS exactly —
//     profiling observes clocks, it never advances them. The derived
//     "disabled overhead" on simulated throughput is asserted < 2% (it is
//     exactly 0), mirroring the spans gate.
//  2. Cross-check invariant: the spans layer's aggregate lock_wait counter
//     and the lock profiler's per-lock wait sum are two views of the same
//     Clock.drainTo calls, so on a contended cell they must be EQUAL to the
//     nanosecond, and nonzero.
//
// The sweep then runs each (system, workload, threads) cell on a fresh
// instance with a freshly reset registry, snapshots the top contended
// locks, fits Amdahl/USL serial fractions per curve, and writes
// BENCH_fxmark_scale.json.
func RunFxmarkScale(w io.Writer, opts Options) error {
	if len(opts.Threads) == 0 {
		if opts.Quick {
			opts.Threads = []int{1, 4, 16}
		} else {
			opts.Threads = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
		}
	}
	if opts.ScaleGate {
		// The regression gate asserts peak ≥ 64T and a 512T/peak ratio, so
		// the sweep must reach both points even in quick mode.
		for _, need := range []int{64, 512} {
			found := false
			for _, n := range opts.Threads {
				if n == need {
					found = true
					break
				}
			}
			if !found {
				opts.Threads = append(opts.Threads, need)
			}
		}
		sort.Ints(opts.Threads)
	}
	if opts.TargetNS <= 0 {
		if opts.Quick {
			opts.TargetNS = 250_000
		} else {
			opts.TargetNS = 500_000
		}
	}
	opts.fill()
	// Size the device to the sweep width: NOVA/Strata-style per-thread
	// allocator pools reserve 16 MB per thread up front, so a 512-thread
	// cell needs far more address space than the 8 GiB default. Chunks are
	// allocated lazily, so a large logical device costs only what is touched.
	for _, n := range opts.Threads {
		if need := int64(n) * (48 << 20); opts.DeviceBytes < need {
			opts.DeviceBytes = need
		}
	}

	systems := comparisonSystems()
	workloads := fxmark.All
	if opts.Quick {
		systems = []sysfactory.System{sysfactory.ZoFS, sysfactory.PMFS}
		workloads = []fxmark.Workload{fxmark.DRBL, fxmark.DWOM, fxmark.MWCL}
		if opts.ScaleGate {
			// The gate judges the metadata-write personalities, so the quick
			// sweep must run exactly those, and only ZoFS is under test.
			systems = []sysfactory.System{sysfactory.ZoFS}
			workloads = []fxmark.Workload{fxmark.DWAL, fxmark.MWCL, fxmark.MWRL}
		}
	}

	prevLock := lockprof.Active()
	prevSpans := spans.Active()
	defer func() {
		lockprof.Install(prevLock)
		spans.Install(prevSpans)
	}()
	spans.Disable()

	var failures []string
	var gates []string
	gateNS := opts.TargetNS

	// Gate 1: bit-identical virtual time, profiler off vs on.
	for _, wl := range []fxmark.Workload{fxmark.DWOL, fxmark.MWCL} {
		lockprof.Disable()
		off, err := scaleCell(sysfactory.ZoFS, wl, 1, gateNS, opts.DeviceBytes)
		if err != nil {
			return fmt.Errorf("fxmark-scale gate (%s, profiler off): %w", wl, err)
		}
		lockprof.Enable(lockprof.Config{})
		on, err := scaleCell(sysfactory.ZoFS, wl, 1, gateNS, opts.DeviceBytes)
		if err != nil {
			return fmt.Errorf("fxmark-scale gate (%s, profiler on): %w", wl, err)
		}
		if off.Ops != on.Ops || off.VirtualNS != on.VirtualNS {
			failures = append(failures, fmt.Sprintf(
				"%s 1T not bit-identical: off ops=%d vns=%d, on ops=%d vns=%d",
				wl, off.Ops, off.VirtualNS, on.Ops, on.VirtualNS))
			continue
		}
		delta := math.Abs(on.MopsPerSec-off.MopsPerSec) / off.MopsPerSec * 100
		if delta > 2.0 {
			failures = append(failures, fmt.Sprintf("%s 1T simulated overhead %.3f%% (> 2%%)", wl, delta))
			continue
		}
		gates = append(gates, fmt.Sprintf(
			"bit-identical %s 1T: ops=%d virtual_ns=%d with profiler off and on (overhead %.3f%%)",
			wl, on.Ops, on.VirtualNS, delta))
	}

	// Gate 2: spans lock_wait == lockprof wait sum, exactly, on a cell with
	// guaranteed contention (shared-file overwrites).
	reg := lockprof.Enable(lockprof.Config{})
	scol := spans.Enable(spans.Config{})
	xr, err := scaleCell(sysfactory.ZoFS, fxmark.DWOM, 4, gateNS, opts.DeviceBytes)
	spans.Disable()
	if err != nil {
		return fmt.Errorf("fxmark-scale cross-check cell: %w", err)
	}
	spanWait, profWait := scol.LockWaitNS(), reg.WaitNS()
	switch {
	case profWait == 0:
		failures = append(failures, fmt.Sprintf("cross-check cell (DWOM 4T, %d ops) recorded zero lock wait", xr.Ops))
	case spanWait != profWait:
		failures = append(failures, fmt.Sprintf(
			"lock-wait books disagree: spans lock_wait=%d ns, lockprof wait sum=%d ns", spanWait, profWait))
	default:
		gates = append(gates, fmt.Sprintf(
			"cross-check DWOM 4T: spans lock_wait == lockprof wait sum == %d ns over %d ops", profWait, xr.Ops))
	}

	// The sweep proper, profiler on throughout.
	fmt.Fprintf(w, "FxMark scalability matrix: threads %v, %d ns virtual per thread\n", opts.Threads, opts.TargetNS)
	rep := ScaleReport{Quick: opts.Quick, Threads: opts.Threads, TargetNS: opts.TargetNS}
	t := tw(w)
	fmt.Fprintln(t, "System\tWorkload\tMops/s by threads\tserial σ (Amdahl)\tUSL σ/κ\tpeak\tanti-scaling: top locks")
	for _, sys := range systems {
		for _, wl := range workloads {
			curve := ScaleCurve{System: sys.Name, Workload: string(wl)}
			mops := make([]float64, 0, len(opts.Threads))
			for _, n := range opts.Threads {
				reg.Reset()
				r, err := scaleCell(sys, wl, n, opts.TargetNS, opts.DeviceBytes)
				if err != nil {
					return fmt.Errorf("fxmark-scale %s/%s/%dT: %w", sys.Name, wl, n, err)
				}
				snap := reg.Snapshot()
				cell := ScaleCell{
					Threads: n, Ops: r.Ops, VirtualNS: r.VirtualNS,
					MopsPerSec: round3(r.MopsPerSec),
				}
				for _, l := range snap.TopLocks(3) {
					cell.TopLocks = append(cell.TopLocks, ScaleLock{
						Lock: l.Lock, WaitNS: l.WaitNS, Contended: l.Contended,
					})
				}
				curve.Cells = append(curve.Cells, cell)
				mops = append(mops, r.MopsPerSec)
			}
			fit := fitCurve(opts.Threads, mops)
			fit.Lambda = round3(fit.Lambda)
			fit.SigmaAmdahl = round3(fit.SigmaAmdahl)
			fit.R2Amdahl = round3(fit.R2Amdahl)
			fit.Sigma = round3(fit.Sigma)
			fit.R2 = round3(fit.R2)
			curve.Fit = fit
			rep.Curves = append(rep.Curves, curve)

			var pts []string
			for _, c := range curve.Cells {
				pts = append(pts, fmt.Sprintf("%.2f", c.MopsPerSec))
			}
			anti := "-"
			if fit.AntiScaling {
				worst := curve.Cells[len(curve.Cells)-1]
				var locks []string
				for _, l := range worst.TopLocks {
					locks = append(locks, l.Lock)
				}
				anti = strings.Join(locks, ",")
				if anti == "" {
					anti = "(no contended locks)"
				}
			}
			fmt.Fprintf(t, "%s\t%s\t%s\t%.3f\t%.3f/%.2g\t%dT\t%s\n",
				sys.Name, wl, strings.Join(pts, " "), fit.SigmaAmdahl, fit.Sigma, fit.Kappa, fit.PeakThreads, anti)
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}

	// Gate 3 (opt-in, -scale-gate): the kernfs.big regression gate. These
	// three workloads collapsed under the old global kernel-agent mutex
	// (DWAL peaked at 4T, MWRL at 32T, both losing >90% of peak by 512T).
	// The metadata-bound curves (MWCL/MWRL) must now keep climbing to at
	// least 64 threads; DWAL is data-bandwidth-bound — its aggregate hits
	// the device's degraded write ceiling by a handful of threads, exactly
	// as in the paper's Figure 7, so its un-collapsed signature is HOLDING
	// the ceiling, not climbing past it. All three must retain ≥50% of
	// their peak at the widest sweep point; any new serial section on the
	// enlarge or create path drops that ratio by an order of magnitude.
	if opts.ScaleGate {
		needPeak := map[string]bool{
			string(fxmark.MWCL): true,
			string(fxmark.MWRL): true,
		}
		gated := map[string]bool{
			string(fxmark.DWAL): true,
			string(fxmark.MWCL): true,
			string(fxmark.MWRL): true,
		}
		checked := 0
		for _, curve := range rep.Curves {
			if curve.System != "ZoFS" || !gated[curve.Workload] {
				continue
			}
			checked++
			peak := 0.0
			for _, c := range curve.Cells {
				if c.MopsPerSec > peak {
					peak = c.MopsPerSec
				}
			}
			wide := curve.Cells[len(curve.Cells)-1]
			ratio := 0.0
			if peak > 0 {
				ratio = wide.MopsPerSec / peak
			}
			switch {
			case needPeak[curve.Workload] && curve.Fit.PeakThreads < 64:
				failures = append(failures, fmt.Sprintf(
					"scale gate: ZoFS %s peaks at %dT (< 64T) — metadata-write scaling regressed",
					curve.Workload, curve.Fit.PeakThreads))
			case ratio < 0.5:
				failures = append(failures, fmt.Sprintf(
					"scale gate: ZoFS %s retains %.0f%% of peak at %dT (< 50%%) — retrograde scaling regressed",
					curve.Workload, ratio*100, wide.Threads))
			default:
				gates = append(gates, fmt.Sprintf(
					"scale gate ZoFS %s: peak %dT, %dT/peak ratio %.2f",
					curve.Workload, curve.Fit.PeakThreads, wide.Threads, ratio))
			}
		}
		if checked < len(gated) {
			failures = append(failures, fmt.Sprintf(
				"scale gate: only %d of %d gated ZoFS curves were swept", checked, len(gated)))
		}
	}

	rep.Gates = gates
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_fxmark_scale.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_fxmark_scale.json")

	if len(failures) > 0 {
		return fmt.Errorf("fxmark-scale gates failed:\n  %s", strings.Join(failures, "\n  "))
	}
	for _, g := range gates {
		fmt.Fprintf(w, "gate ok: %s\n", g)
	}
	return nil
}
