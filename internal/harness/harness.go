// Package harness drives every experiment of the paper's evaluation (§6)
// and prints the corresponding table or figure series. Each Run* function
// regenerates one artifact; cmd/zofs-bench exposes them on the command
// line and bench_test.go wraps them as Go benchmarks.
package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/simclock"
	"zofs/internal/sysfactory"
	"zofs/internal/trace"
)

// Options controls experiment scale.
type Options struct {
	// Quick trades precision for speed (CI-sized runs).
	Quick bool
	// DeviceBytes sizes the simulated NVM device.
	DeviceBytes int64
	// Threads overrides the thread sweep of the figure experiments.
	Threads []int
	// TargetNS is the virtual measurement window per thread.
	TargetNS int64
	// Stats enables per-layer telemetry: each benchmark cell prints a
	// counter/latency table and the experiment writes a metrics sidecar
	// JSON into StatsDir.
	Stats bool
	// StatsDir receives the metrics-<experiment>.json sidecars (default
	// "results").
	StatsDir string
	// ScaleGate turns fxmark-scale into a scalability regression gate: the
	// sweep is widened to include 64 and 512 threads and the run fails if
	// any ZoFS metadata-write workload (DWAL/MWCL/MWRL) peaks before 64
	// threads or retains less than half its peak throughput at 512.
	ScaleGate bool
}

func (o *Options) fill() {
	if o.DeviceBytes <= 0 {
		o.DeviceBytes = 8 << 30
	}
	if len(o.Threads) == 0 {
		if o.Quick {
			o.Threads = []int{1, 2, 4, 8}
		} else {
			o.Threads = []int{1, 2, 4, 8, 12, 16, 20}
		}
	}
	if o.TargetNS <= 0 {
		if o.Quick {
			o.TargetNS = 2_000_000
		} else {
			o.TargetNS = 10_000_000
		}
	}
}

func tw(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// RunTable1 prints the DRAM vs Optane characteristics (paper Table 1):
// the model parameters plus latencies measured against the simulated
// device.
func RunTable1(w io.Writer, _ Options) error {
	dev := nvm.New(nvm.Config{Size: 1 << 20})
	measure := func(write bool) int64 {
		clk := simclock.NewClock()
		buf := make([]byte, 64)
		if write {
			dev.WriteNT(clk, 0, buf)
		} else {
			dev.Read(clk, 0, buf)
		}
		return clk.Now()
	}
	t := tw(w)
	fmt.Fprintln(w, "Table 1: DRAM and Optane DC PM latency and bandwidth (model vs measured)")
	fmt.Fprintln(t, "Memory\tOperation\tBandwidth\tLatency (model)\tLatency (measured 64B)")
	fmt.Fprintf(t, "DRAM\tread\t%.0f GB/s\t%d ns\t-\n", perfmodel.DRAMReadBandwidth/1e9, int(perfmodel.DRAMReadLatency))
	fmt.Fprintf(t, "DRAM\twrite\t%.0f GB/s\t%d ns\t-\n", perfmodel.DRAMWriteBand/1e9, int(perfmodel.DRAMWriteLatency))
	fmt.Fprintf(t, "Optane DC PM\tread\t%.0f GB/s\t%d ns\t%d ns\n", perfmodel.NVMReadBandwidth/1e9, int(perfmodel.NVMReadLatency), measure(false))
	fmt.Fprintf(t, "Optane DC PM\twrite\t%.0f GB/s\t%d ns\t%d ns\n", perfmodel.NVMWriteBandwidth/1e9, int(perfmodel.NVMWriteLatency), measure(true))
	return t.Flush()
}

// RunTable3 prints the application permission survey (paper Table 3) over
// synthesized MySQL/PostgreSQL/DokuWiki trees.
func RunTable3(w io.Writer, _ Options) error {
	fmt.Fprintln(w, "Table 3: File permissions in databases and web servers (synthesized trees)")
	t := tw(w)
	fmt.Fprintln(t, "System\tType\tPerm.\tUid/Gid\t# Files\tSize")
	for _, app := range trace.GenerateAppTrees(2026) {
		for _, r := range trace.Survey(app) {
			fmt.Fprintf(t, "%s\t%s\t%o\t%d/%d\t%d\t%s\n",
				r.System, r.Type, r.Perm, r.UID, r.UID, r.Files, human(r.Bytes))
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nMobiGen traces (§2.3): permission-change frequency")
	t2 := tw(w)
	fmt.Fprintln(t2, "Trace\t# Syscalls\tchmod\tchown")
	for _, s := range trace.MobiGen() {
		fmt.Fprintf(t2, "%s\t%d\t%d\t%d\n", s.Trace, s.Syscalls, s.Chmods, s.Chowns)
	}
	return t2.Flush()
}

// RunTable4 prints the FSL-Homes grouping analysis (paper Table 4) over a
// synthesized snapshot matched to the published marginals.
func RunTable4(w io.Writer, opts Options) error {
	opts.fill()
	scale := 1.0
	if opts.Quick {
		scale = 0.1
	}
	root := trace.GenerateFSLHomes(scale, 10)
	reg, sym, dir, bytes := trace.Count(root)
	fmt.Fprintf(w, "Table 4: FSL Homes snapshot (synthesized at scale %.2f): %d regular, %d symlink, %d directory, %s total\n",
		scale, reg, sym, dir, human(bytes))
	groups := trace.GroupByPermission(root)
	fmt.Fprintf(w, "Top-down permission grouping: %d groups for %d files\n", len(groups), reg+sym+dir)
	t := tw(w)
	fmt.Fprintln(t, "Perm\t# Groups\t# Files\tMin Size\tAvg Size\tMax Size")
	for _, st := range trace.Summarize(groups) {
		fmt.Fprintf(t, "%o\t%d\t%d\t%s\t%s\t%s\n",
			st.Perm, st.Groups, st.Files, human(st.MinSize), human(st.AvgSize), human(st.MaxSize))
	}
	return t.Flush()
}

// human formats a byte count like the paper's tables.
func human(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// comparisonSystems returns the Figure 7/9 system set.
func comparisonSystems() []sysfactory.System { return sysfactory.Comparison }
