package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"zofs/internal/harness"
)

// tiny returns the smallest meaningful options for integration smoke runs.
func tiny() harness.Options {
	return harness.Options{
		Quick:       true,
		DeviceBytes: 2 << 30,
		Threads:     []int{1, 2},
		TargetNS:    1_000_000,
	}
}

func runAndCheck(t *testing.T, name string, fn func() (*bytes.Buffer, error), want ...string) {
	t.Helper()
	buf, err := fn()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", name)
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("%s output missing %q:\n%s", name, w, out)
		}
	}
}

func TestRunTable1(t *testing.T) {
	runAndCheck(t, "table1", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunTable1(&b, tiny())
	}, "Optane DC PM", "DRAM")
}

func TestRunTable2(t *testing.T) {
	runAndCheck(t, "table2", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunTable2(&b, tiny())
	}, "append", "create", "ZoFS")
}

func TestRunTable3(t *testing.T) {
	runAndCheck(t, "table3", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunTable3(&b, tiny())
	}, "MySQL", "PostgreSQL", "DokuWiki", "Twitter")
}

func TestRunTable4(t *testing.T) {
	runAndCheck(t, "table4", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunTable4(&b, tiny())
	}, "groups", "644")
}

func TestRunFig8(t *testing.T) {
	runAndCheck(t, "fig8", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunFig8(&b, tiny())
	}, "ZoFS-sysempty", "PMFS-nocache", "NOVAi-noindex")
}

func TestRunFig10(t *testing.T) {
	runAndCheck(t, "fig10", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunFig10(&b, tiny())
	}, "Fileserver", "Varmail")
}

func TestRunTable9(t *testing.T) {
	runAndCheck(t, "table9", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunTable9(&b, tiny())
	}, "chmod", "rename", "ZoFS-1coffer")
}

func TestRunSafety(t *testing.T) {
	runAndCheck(t, "safety", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunSafety(&b, tiny())
	}, "PASS", "caught by MPK", "graceful errors")
}

func TestRunRecovery(t *testing.T) {
	runAndCheck(t, "recovery", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunRecovery(&b, tiny())
	}, "Recovery of a coffer", "kernel")
}

func TestRunFig7Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 sweep in -short mode")
	}
	runAndCheck(t, "fig7", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunFig7(&b, tiny())
	}, "DWOL", "MWCL", "Ext4-DAX")
}

func TestRunFig9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 sweep in -short mode")
	}
	runAndCheck(t, "fig9", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunFig9(&b, tiny())
	}, "fileserver", "varmail", "ZoFS-20dirwidth")
}

func TestRunTable7Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("table7 in -short mode")
	}
	runAndCheck(t, "table7", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunTable7(&b, tiny())
	}, "Write sync.", "Read rand.", "Delete rand.")
}

func TestRunFig11Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 in -short mode")
	}
	runAndCheck(t, "fig11", func() (*bytes.Buffer, error) {
		var b bytes.Buffer
		return &b, harness.RunFig11(&b, tiny())
	}, "mixed", "NEW", "PAY")
}
