package proc

import (
	"testing"

	"zofs/internal/mpk"
	"zofs/internal/nvm"
)

func newProc(t *testing.T) *Process {
	t.Helper()
	dev := nvm.NewDevice(1 << 20)
	return NewProcess(dev, 1000, 1000)
}

func TestIdentity(t *testing.T) {
	p := newProc(t)
	if p.UID() != 1000 || p.GID() != 1000 {
		t.Fatalf("identity = %d/%d", p.UID(), p.GID())
	}
	p.SetIdentity(0, 0)
	if p.UID() != 0 || p.GID() != 0 {
		t.Fatalf("identity after set = %d/%d", p.UID(), p.GID())
	}
}

func TestThreadIDsUnique(t *testing.T) {
	p := newProc(t)
	a, b := p.NewThread(), p.NewThread()
	if a.TID == b.TID {
		t.Fatal("thread IDs must be unique")
	}
}

func TestCheckedAccessThroughWindow(t *testing.T) {
	p := newProc(t)
	th := p.NewThread()
	// Kernel maps pages 2..3 with key 5, writable.
	p.Mem.Map(2, 2, 5, true)

	// Access with window closed must fault.
	faulted := false
	func() {
		defer func() {
			if _, ok := recover().(mpk.Violation); ok {
				faulted = true
			}
		}()
		th.Read(2*nvm.PageSize, make([]byte, 8))
	}()
	if !faulted {
		t.Fatal("closed-window access should fault")
	}

	// Open the window; access succeeds.
	th.OpenWindow(5, true)
	th.WriteNT(2*nvm.PageSize, []byte("coffer!"))
	buf := make([]byte, 7)
	th.Read(2*nvm.PageSize, buf)
	if string(buf) != "coffer!" {
		t.Fatalf("read back %q", buf)
	}

	// Close; faults again (G1).
	th.CloseWindow()
	faulted = false
	func() {
		defer func() {
			if _, ok := recover().(mpk.Violation); ok {
				faulted = true
			}
		}()
		th.StrayWrite(2*nvm.PageSize, []byte{0xff})
	}()
	if !faulted {
		t.Fatal("stray write with closed window should fault")
	}
}

func TestWindowIsPerThread(t *testing.T) {
	p := newProc(t)
	p.Mem.Map(0, 1, 3, true)
	a, b := p.NewThread(), p.NewThread()
	a.OpenWindow(3, true)
	a.WriteNT(0, []byte{1})
	// Thread b's PKRU is untouched — its stray write must fault even while
	// a's window is open (the per-thread property of §3.4.1).
	faulted := false
	func() {
		defer func() {
			if _, ok := recover().(mpk.Violation); ok {
				faulted = true
			}
		}()
		b.Write(0, []byte{2})
	}()
	if !faulted {
		t.Fatal("other thread must not inherit the open window")
	}
}

func TestOnlyOneCofferAccessible(t *testing.T) {
	// G2: opening a window on one key closes every other key.
	p := newProc(t)
	p.Mem.Map(0, 1, 1, true)
	p.Mem.Map(1, 1, 2, true)
	th := p.NewThread()
	th.OpenWindow(1, true)
	th.WriteNT(0, []byte{1})
	faulted := false
	func() {
		defer func() {
			if _, ok := recover().(mpk.Violation); ok {
				faulted = true
			}
		}()
		th.Read(nvm.PageSize, make([]byte, 1))
	}()
	if !faulted {
		t.Fatal("G2 violated: second coffer accessible while window open on first")
	}
	th.OpenWindow(2, false)
	th.Read(nvm.PageSize, make([]byte, 1)) // now fine, read-only window
	faulted = false
	func() {
		defer func() {
			if _, ok := recover().(mpk.Violation); ok {
				faulted = true
			}
		}()
		th.WriteNT(nvm.PageSize, []byte{1})
	}()
	if !faulted {
		t.Fatal("read-only window must reject writes")
	}
}

func TestWrPKRUCharged(t *testing.T) {
	p := newProc(t)
	th := p.NewThread()
	before := th.Clk.Now()
	th.OpenWindow(1, true)
	if th.Clk.Now() <= before {
		t.Fatal("WRPKRU must cost time")
	}
}

func TestAtomicsChecked(t *testing.T) {
	p := newProc(t)
	p.Mem.Map(0, 1, 1, true)
	th := p.NewThread()
	th.OpenWindow(1, true)
	th.Store64(8, 99)
	if th.Load64(8) != 99 {
		t.Fatal("atomic round trip failed")
	}
	if !th.CAS64(8, 99, 100) {
		t.Fatal("CAS should succeed")
	}
	th.Zero(0, 64)
	if th.Load64(8) != 0 {
		t.Fatal("zeroed word should read 0")
	}
}
