// Package proc models processes and threads for the Treasury architecture.
//
// A Process owns a user identity (uid/gid), an MPK-tagged address space
// maintained by the kernel, and the set of coffers currently mapped into it.
// A Thread owns a virtual clock and a PKRU register. All user-space accesses
// to the NVM device flow through Thread accessors, which enforce the page
// table and PKRU exactly as the MMU would (§2.4, §3.4); kernel code accesses
// the device directly.
package proc

import (
	"sync"
	"sync/atomic"

	"zofs/internal/lockprof"
	"zofs/internal/mpk"
	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/pmemtrace"
	"zofs/internal/simclock"
	"zofs/internal/spans"
	"zofs/internal/telemetry"
)

// Process is a simulated OS process.
type Process struct {
	PID int
	dev *nvm.Device

	mu  sync.RWMutex
	uid uint32
	gid uint32

	// Mem is the kernel-maintained, MPK-tagged page table for this process.
	Mem *mpk.AddressSpace

	// Kernel-private per-process state attached by KernFS (mapped coffers,
	// assigned MPK regions). Typed as any to avoid a dependency cycle.
	KernState any
}

var nextPID atomic.Int64

// nextTID is global, like gettid(): a TID identifies a thread across every
// process on the machine. The persistent inode lease word stores the holder's
// TID, so cross-process holder identity checks (is this lease mine, or a
// dead peer's?) are only sound with machine-unique TIDs.
var nextTID atomic.Int64

// ResetIDs restarts the machine-global PID/TID counters, as a reboot of the
// simulated machine would. Only for harnesses that model a whole machine
// from boot (the chaos engine): their reports must be byte-reproducible, so
// identity counters cannot depend on what ran earlier in the host process.
func ResetIDs() {
	nextPID.Store(0)
	nextTID.Store(0)
}

// NewProcess creates a process with the given identity over a device.
func NewProcess(dev *nvm.Device, uid, gid uint32) *Process {
	return &Process{
		PID: int(nextPID.Add(1)),
		dev: dev,
		uid: uid,
		gid: gid,
		Mem: mpk.NewAddressSpace(dev.Pages()),
	}
}

// UID returns the process's current user id.
func (p *Process) UID() uint32 { p.mu.RLock(); defer p.mu.RUnlock(); return p.uid }

// GID returns the process's current group id.
func (p *Process) GID() uint32 { p.mu.RLock(); defer p.mu.RUnlock(); return p.gid }

// SetIdentity changes uid/gid (setuid); KernFS unmaps all coffers when this
// happens (§3.3) — callers must go through the kernel wrapper that does so.
func (p *Process) SetIdentity(uid, gid uint32) {
	p.mu.Lock()
	p.uid, p.gid = uid, gid
	p.mu.Unlock()
}

// Device returns the NVM device backing this process's mappings.
func (p *Process) Device() *nvm.Device { return p.dev }

// NewThread creates a thread with a fresh clock and the default PKRU
// (all coffer regions access-disabled).
func (p *Process) NewThread() *Thread {
	t := &Thread{
		Proc: p,
		Clk:  simclock.NewClock(),
		TID:  int(nextTID.Add(1)),
		pkru: mpk.DefaultPKRU(),
	}
	// Tag the clock so the flight recorder can attribute device events to
	// this thread; the key half of the tag is refreshed per checked access.
	t.Clk.SetTag(pmemtrace.PackTag(t.TID, -1))
	// Attach the causal-span context the same way: lower layers bill costs
	// to the active span through the clock without knowing about spans.
	if col := spans.Active(); col != nil {
		t.Clk.SetBill(spans.NewThreadCtx(col, t.TID))
	}
	// And the lock-profiler state: named-lock wrappers record waits against
	// it when the registry that issued it is still the active one.
	if reg := lockprof.Active(); reg != nil {
		t.Clk.SetLockState(reg.NewThreadState(t.TID))
	}
	return t
}

// Thread is a simulated thread: the unit of virtual-time accounting and of
// PKRU-based protection state.
type Thread struct {
	Proc *Process
	Clk  *simclock.Clock
	TID  int
	pkru mpk.PKRU
}

// PKRU returns the thread's current protection-key rights register.
func (t *Thread) PKRU() mpk.PKRU { return t.pkru }

// WrPKRU writes the register, charging the WRPKRU instruction cost
// (~16 cycles, §3.4.1).
func (t *Thread) WrPKRU(v mpk.PKRU) {
	cost := perfmodel.WRPKRUCost()
	t.Clk.Advance(cost)
	spans.FromClock(t.Clk).Bill(spans.CompPKRU, cost)
	rec := t.Proc.dev.Recorder()
	rec.Inc(telemetry.CtrMPKSwitches)
	rec.Inc(telemetry.CtrMPKWRPKRUCharged)
	t.pkru = v
}

// OpenWindow grants this thread access to exactly one coffer region,
// disabling all others — guidelines G1 and G2 in one step. It returns the
// previous register value for restoring via WrPKRU.
func (t *Thread) OpenWindow(key mpk.Key, write bool) mpk.PKRU {
	prev := t.pkru
	t.WrPKRU(mpk.DefaultPKRU().WithAccess(key, true, write))
	spans.FromClock(t.Clk).SetKey(uint8(key))
	return prev
}

// CloseWindow disables access to all coffer regions (back to default).
func (t *Thread) CloseWindow() { t.WrPKRU(mpk.DefaultPKRU()) }

// SetPKRUFree updates the register without charging the WRPKRU cost. Used
// by kernel-side FS variants whose accesses are not MPK-mediated at all:
// the simulation still tracks the register for memory-safety checks, but no
// protection-switch cost exists on the modeled hardware path.
func (t *Thread) SetPKRUFree(v mpk.PKRU) {
	t.Proc.dev.Recorder().Inc(telemetry.CtrMPKSwitches)
	t.pkru = v
}

func pageSpan(off, n int64) (page, count int64) {
	if n <= 0 {
		n = 1
	}
	first := off / nvm.PageSize
	last := (off + n - 1) / nvm.PageSize
	return first, last - first + 1
}

// check enforces the page table + PKRU for an access from user space.
func (t *Thread) check(off, n int64, write bool) {
	page, count := pageSpan(off, n)
	if tr := pmemtrace.Active(); tr != nil {
		t.checkTraced(tr, page, count, write)
		return
	}
	t.Proc.Mem.CheckObserved(t.pkru, page, count, write, spans.ObserverFor(t.Clk))
}

// checkTraced is the flight-recorded MMU check: it refreshes the clock's
// origin tag with the accessed page's protection key and records any
// mpk.Violation into the event stream before re-raising it. Kept out of
// check so the untraced path stays defer-free.
func (t *Thread) checkTraced(tr *pmemtrace.Recorder, page, count int64, write bool) {
	key := int16(-1)
	if k, ok := t.Proc.Mem.KeyOf(page); ok {
		key = int16(k)
	}
	t.Clk.SetTag(pmemtrace.PackTag(t.TID, key))
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(mpk.Violation); ok {
				tr.RecordViolation(t.Clk.Now(), t.TID, v.Page, int16(v.Key), v.Cause)
			}
			panic(r)
		}
	}()
	t.Proc.Mem.CheckObserved(t.pkru, page, count, write, spans.ObserverFor(t.Clk))
}

// CheckAccess exposes the MMU check for callers that batch the cost of a
// group of accesses but must still enforce protection per access.
func (t *Thread) CheckAccess(off, n int64, write bool) { t.check(off, n, write) }

// Read performs a checked user-space load.
func (t *Thread) Read(off int64, buf []byte) {
	t.check(off, int64(len(buf)), false)
	t.Proc.dev.Read(t.Clk, off, buf)
}

// ReadCached performs a checked load charged as a CPU-cache hit (used for
// hot metadata the library has touched recently).
func (t *Thread) ReadCached(off int64, buf []byte) {
	t.check(off, int64(len(buf)), false)
	t.Clk.Advance(perfmodel.CPUSmallOp)
	t.Proc.dev.ReadNoCharge(off, buf)
}

// ReadView returns a borrowed slice over device bytes, MPK-checked at
// handout and charged like Read. The view aliases live media: it is valid
// only while the coffer window that authorized it stays open, must not be
// written through, and must not be retained across an operation boundary.
// ok=false means the range crosses a chunk boundary — fall back to Read.
func (t *Thread) ReadView(off, n int64) ([]byte, bool) {
	t.check(off, n, false)
	return t.Proc.dev.ReadView(t.Clk, off, n)
}

// ReadViewCached is ReadView charged as a CPU-cache hit (hot metadata the
// library touched recently), with the same borrowing rules.
func (t *Thread) ReadViewCached(off, n int64) ([]byte, bool) {
	t.check(off, n, false)
	t.Clk.Advance(perfmodel.CPUSmallOp)
	return t.Proc.dev.ReadViewNoCharge(off, n)
}

// WriteView hands out a borrowed slice the caller fills in place with
// WriteNT's cost and persistence semantics; commit must be called once the
// fill is complete, before the coffer window closes. ok=false means the
// range crosses a chunk boundary — fall back to WriteNT.
func (t *Thread) WriteView(off, n int64) (buf []byte, commit func(), ok bool) {
	t.check(off, n, true)
	return t.Proc.dev.WriteView(t.Clk, off, n)
}

// Write performs a checked cached store (dirty until flushed).
func (t *Thread) Write(off int64, data []byte) {
	t.check(off, int64(len(data)), true)
	t.Proc.dev.Write(t.Clk, off, data)
}

// WriteNT performs a checked non-temporal (immediately persistent) store.
func (t *Thread) WriteNT(off int64, data []byte) {
	t.check(off, int64(len(data)), true)
	t.Proc.dev.WriteNT(t.Clk, off, data)
}

// Flush persists a previously written range (clwb + fence).
func (t *Thread) Flush(off, n int64) {
	t.check(off, n, true)
	t.Proc.dev.Flush(t.Clk, off, n)
}

// Fence charges a store fence.
func (t *Thread) Fence() { t.Proc.dev.Fence(t.Clk) }

// Load64 performs a checked atomic load.
func (t *Thread) Load64(off int64) uint64 {
	t.check(off, 8, false)
	return t.Proc.dev.Load64(t.Clk, off)
}

// Load64Cached performs a checked atomic load charged as a CPU-cache hit,
// for hot metadata words (a thread repeatedly operating on one file keeps
// its inode header and block pointers in L1).
func (t *Thread) Load64Cached(off int64) uint64 {
	t.check(off, 8, false)
	t.Clk.Advance(perfmodel.CPUSmallOp)
	return t.Proc.dev.Load64(nil, off)
}

// Store64 performs a checked atomic persistent store.
func (t *Thread) Store64(off int64, v uint64) {
	t.check(off, 8, true)
	t.Proc.dev.Store64(t.Clk, off, v)
}

// CAS64 performs a checked atomic compare-and-swap.
func (t *Thread) CAS64(off int64, old, new uint64) bool {
	t.check(off, 8, true)
	return t.Proc.dev.CAS64(t.Clk, off, old, new)
}

// Zero zeroes a checked range with non-temporal stores.
func (t *Thread) Zero(off, n int64) {
	t.check(off, n, true)
	t.Proc.dev.Zero(t.Clk, off, n)
}

// StrayWrite models a wild store from buggy application code (§6.5): it is
// subject to exactly the same page-table/PKRU enforcement as library code,
// so with all windows closed it faults instead of corrupting a coffer.
func (t *Thread) StrayWrite(off int64, data []byte) {
	t.Write(off, data)
}

// CPU charges pure CPU time (software path costs).
func (t *Thread) CPU(ns int64) { t.Clk.Advance(ns) }

// Syscall charges one kernel entry/exit (used by KernFS and the kernel-side
// baseline file systems on every operation).
func (t *Thread) Syscall() {
	t.Clk.Advance(perfmodel.Syscall)
	spans.FromClock(t.Clk).Bill(spans.CompKernel, perfmodel.Syscall)
	t.Proc.dev.Recorder().Inc(telemetry.CtrKernSyscalls)
}
