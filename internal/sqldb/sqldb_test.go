package sqldb_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"zofs/internal/proc"
	"zofs/internal/sqldb"
	"zofs/internal/sysfactory"
	"zofs/internal/vfs"
)

func newDB(t *testing.T) (*sqldb.DB, vfs.FileSystem, *proc.Thread) {
	t.Helper()
	in, err := sysfactory.ZoFS.New(2 << 30)
	if err != nil {
		t.Fatal(err)
	}
	th := in.Proc.NewThread()
	db, err := sqldb.Open(in.FS, th, "/test.db")
	if err != nil {
		t.Fatal(err)
	}
	return db, in.FS, th
}

func TestPutGetCommit(t *testing.T) {
	db, _, th := newDB(t)
	tx, err := db.Begin(th)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("t", "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Get("t", "k1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("in-txn Get = %q,%v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err = db.Get(th, "t", "k1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("post-commit Get = %q,%v", v, err)
	}
	if _, err := db.Get(th, "t", "nope"); !errors.Is(err, sqldb.ErrNotFound) {
		t.Fatalf("missing = %v", err)
	}
}

func TestRollbackUndoesEverything(t *testing.T) {
	db, _, th := newDB(t)
	tx, _ := db.Begin(th)
	tx.Put("t", "keep", []byte("A"))
	tx.Commit()

	tx2, _ := db.Begin(th)
	tx2.Put("t", "keep", []byte("B"))
	tx2.Put("t", "new", []byte("C"))
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get(th, "t", "keep")
	if err != nil || string(v) != "A" {
		t.Fatalf("rolled-back value = %q,%v", v, err)
	}
	if _, err := db.Get(th, "t", "new"); !errors.Is(err, sqldb.ErrNotFound) {
		t.Fatalf("rolled-back insert visible: %v", err)
	}
	// The database remains usable.
	tx3, _ := db.Begin(th)
	if err := tx3.Put("t", "after", []byte("D")); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
}

func TestManyRowsSplitAndScan(t *testing.T) {
	db, _, th := newDB(t)
	tx, _ := db.Begin(th)
	const n = 3000
	val := make([]byte, 100)
	for i := 0; i < n; i++ {
		if err := tx.Put("big", fmt.Sprintf("row-%06d", i), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Every row is retrievable after tree splits.
	for i := 0; i < n; i += 131 {
		if _, err := db.Get(th, "big", fmt.Sprintf("row-%06d", i)); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	// Range scan is ordered and complete.
	var last string
	count := 0
	db.Scan(th, "big", "row-001000", func(k string, _ []byte) bool {
		if last != "" && k <= last {
			t.Fatalf("out of order: %q after %q", k, last)
		}
		last = k
		count++
		return true
	})
	if count != n-1000 {
		t.Fatalf("scan saw %d rows, want %d", count, n-1000)
	}
}

func TestDeleteRows(t *testing.T) {
	db, _, th := newDB(t)
	tx, _ := db.Begin(th)
	for i := 0; i < 100; i++ {
		tx.Put("t", fmt.Sprintf("d%03d", i), []byte("x"))
	}
	for i := 0; i < 100; i += 2 {
		if err := tx.Delete("t", fmt.Sprintf("d%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	for i := 0; i < 100; i++ {
		_, err := db.Get(th, "t", fmt.Sprintf("d%03d", i))
		if i%2 == 0 && !errors.Is(err, sqldb.ErrNotFound) {
			t.Fatalf("deleted d%03d visible: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("live d%03d lost: %v", i, err)
		}
	}
}

func TestHotJournalRecovery(t *testing.T) {
	// Simulate a crash mid-transaction: dirty pages written to the file
	// but the journal still present. Reopening must roll back.
	db, fs, th := newDB(t)
	tx, _ := db.Begin(th)
	tx.Put("t", "stable", []byte("OLD"))
	tx.Commit()

	tx2, _ := db.Begin(th)
	tx2.Put("t", "stable", []byte("NEW"))
	// Crash before commit: abandon the Tx, leaving the hot journal, and
	// simulate the dirty page having partially reached the file.
	// (The pager only writes at commit, so just leave the journal.)

	db2, err := sqldb.Open(fs, th, "/test.db")
	if err != nil {
		t.Fatalf("reopen with hot journal: %v", err)
	}
	v, err := db2.Get(th, "t", "stable")
	if err != nil || string(v) != "OLD" {
		t.Fatalf("hot-journal rollback = %q,%v", v, err)
	}
}

func TestReopenSeesCommitted(t *testing.T) {
	db, fs, th := newDB(t)
	tx, _ := db.Begin(th)
	for i := 0; i < 500; i++ {
		tx.Put("t", fmt.Sprintf("p%04d", i), []byte("v"))
	}
	tx.Commit()
	db.Close(th)

	db2, err := sqldb.Open(fs, th, "/test.db")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i += 61 {
		if _, err := db2.Get(th, "t", fmt.Sprintf("p%04d", i)); err != nil {
			t.Fatalf("p%04d lost across reopen: %v", i, err)
		}
	}
}

func TestTwoTables(t *testing.T) {
	db, _, th := newDB(t)
	tx, _ := db.Begin(th)
	tx.Put("a", "k", []byte("in-a"))
	tx.Put("b", "k", []byte("in-b"))
	tx.Commit()
	va, _ := db.Get(th, "a", "k")
	vb, _ := db.Get(th, "b", "k")
	if string(va) != "in-a" || string(vb) != "in-b" {
		t.Fatalf("tables collide: %q %q", va, vb)
	}
}

func TestOversizedRejected(t *testing.T) {
	db, _, th := newDB(t)
	tx, _ := db.Begin(th)
	defer tx.Rollback()
	if err := tx.Put("t", string(make([]byte, 300)), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := tx.Put("t", "k", make([]byte, 4000)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

// Property: the btree agrees with a map under random put/delete/get
// sequences, across commits.
func TestBtreeMatchesMapProperty(t *testing.T) {
	db, _, th := newDB(t)
	model := map[string]string{}
	f := func(ops []struct {
		K uint8
		V uint8
		D bool
	}) bool {
		tx, err := db.Begin(th)
		if err != nil {
			return false
		}
		for _, op := range ops {
			k := fmt.Sprintf("pk-%03d", op.K)
			if op.D {
				delete(model, k)
				if err := tx.Delete("prop", k); err != nil && !errors.Is(err, sqldb.ErrNotFound) {
					return false
				}
			} else {
				v := fmt.Sprintf("val-%03d", op.V)
				model[k] = v
				if err := tx.Put("prop", k, []byte(v)); err != nil {
					return false
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return false
		}
		for k, v := range model {
			got, err := db.Get(th, "prop", k)
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
