// Package sqldb is a from-scratch SQLite-style embedded storage engine on
// the vfs.FileSystem API: a single database file of 4KB pages, a rollback
// journal providing atomic transactions (original page images are journaled
// before modification, the journal unlink is the commit point), and B-trees
// for tables and secondary indexes. It is the substrate for the paper's
// TPC-C experiment (Figure 11, Table 8) and produces the same file system
// traffic pattern as SQLite in rollback-journal mode: journal writes +
// syncs, in-place page writes, journal deletion per transaction.
package sqldb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// PageSize is the database page size (SQLite default region).
const PageSize = 4096

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("sqldb: not found")

// pager manages the database file, the page cache and the rollback
// journal. The page cache is volatile (SQLite's cache lives in process
// DRAM); every first read of a page and every commit write-back is charged
// file system traffic.
type pager struct {
	fs      vfs.FileSystem
	path    string
	jpath   string
	h       vfs.Handle
	nPages  int64
	cache   map[int64][]byte
	inTxn   bool
	dirty   map[int64]bool
	logged  map[int64]bool
	journal vfs.Handle
	jSize   int64
}

func openPager(fs vfs.FileSystem, th *proc.Thread, path string) (*pager, error) {
	h, err := fs.Open(th, path, vfs.O_RDWR|vfs.O_CREATE)
	if err != nil {
		return nil, err
	}
	fi, err := h.Stat(th)
	if err != nil {
		return nil, err
	}
	p := &pager{
		fs: fs, path: path, jpath: path + "-journal", h: h,
		nPages: fi.Size / PageSize,
		cache:  map[int64][]byte{},
		dirty:  map[int64]bool{},
		logged: map[int64]bool{},
	}
	if p.nPages == 0 {
		p.nPages = 1 // page 0 is the database header
	}
	// A leftover journal means the last transaction did not commit: roll
	// it back (SQLite hot-journal recovery).
	if err := p.recoverHotJournal(th); err != nil {
		return nil, err
	}
	return p, nil
}

// page returns a cached page, loading it from the file on first touch.
func (p *pager) page(th *proc.Thread, no int64) ([]byte, error) {
	if pg, ok := p.cache[no]; ok {
		th.CPU(perfmodel.CPUSmallOp)
		return pg, nil
	}
	pg := make([]byte, PageSize)
	if no < p.nPages {
		if _, err := p.h.ReadAt(th, pg, no*PageSize); err != nil {
			return nil, err
		}
	}
	p.cache[no] = pg
	return pg, nil
}

// allocPage appends a fresh page to the file.
func (p *pager) allocPage(th *proc.Thread) (int64, []byte) {
	no := p.nPages
	p.nPages++
	pg := make([]byte, PageSize)
	p.cache[no] = pg
	p.dirty[no] = true
	return no, pg
}

// begin starts a transaction: create the journal with a header.
func (p *pager) begin(th *proc.Thread) error {
	if p.inTxn {
		return errors.New("sqldb: nested transaction")
	}
	j, err := p.fs.Create(th, p.jpath, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr, 0x73716c6a726e6c00) // "sqljrnl"
	if _, err := j.Append(th, hdr); err != nil {
		return err
	}
	p.journal = j
	p.jSize = 16
	p.inTxn = true
	p.dirty = map[int64]bool{}
	p.logged = map[int64]bool{}
	return nil
}

// write marks a page dirty, journaling its original image first (the
// rollback-journal double write).
func (p *pager) write(th *proc.Thread, no int64) error {
	if !p.inTxn {
		return errors.New("sqldb: write outside transaction")
	}
	if !p.logged[no] {
		orig, err := p.page(th, no)
		if err != nil {
			return err
		}
		rec := make([]byte, 8+PageSize)
		binary.LittleEndian.PutUint64(rec, uint64(no))
		copy(rec[8:], orig)
		if _, err := p.journal.Append(th, rec); err != nil {
			return err
		}
		if err := p.journal.Sync(th); err != nil {
			return err
		}
		p.jSize += int64(len(rec))
		p.logged[no] = true
	}
	p.dirty[no] = true
	return nil
}

// commit writes dirty pages back and deletes the journal (the atomic
// commit point).
func (p *pager) commit(th *proc.Thread) error {
	if !p.inTxn {
		return errors.New("sqldb: commit outside transaction")
	}
	for no := range p.dirty {
		pg := p.cache[no]
		if _, err := p.h.WriteAt(th, pg, no*PageSize); err != nil {
			return err
		}
	}
	if err := p.h.Sync(th); err != nil {
		return err
	}
	p.journal.Close(th)
	if err := p.fs.Unlink(th, p.jpath); err != nil {
		return err
	}
	p.inTxn = false
	p.journal = nil
	return nil
}

// rollback restores original images from the journal and deletes it.
func (p *pager) rollback(th *proc.Thread) error {
	if !p.inTxn {
		return nil
	}
	p.journal.Close(th)
	if err := p.applyJournal(th); err != nil {
		return err
	}
	// Drop cached dirty pages: re-read from the (restored) file on demand.
	for no := range p.dirty {
		delete(p.cache, no)
	}
	if err := p.fs.Unlink(th, p.jpath); err != nil {
		return err
	}
	p.inTxn = false
	p.journal = nil
	return nil
}

// applyJournal writes journaled original images back to the db file.
func (p *pager) applyJournal(th *proc.Thread) error {
	j, err := p.fs.Open(th, p.jpath, vfs.O_RDONLY)
	if err != nil {
		return err
	}
	defer j.Close(th)
	fi, err := j.Stat(th)
	if err != nil {
		return err
	}
	rec := make([]byte, 8+PageSize)
	for off := int64(16); off+int64(len(rec)) <= fi.Size; off += int64(len(rec)) {
		if _, err := j.ReadAt(th, rec, off); err != nil {
			return err
		}
		no := int64(binary.LittleEndian.Uint64(rec))
		if _, err := p.h.WriteAt(th, rec[8:], no*PageSize); err != nil {
			return err
		}
		delete(p.cache, no)
	}
	return nil
}

// recoverHotJournal rolls back an interrupted transaction found at open.
func (p *pager) recoverHotJournal(th *proc.Thread) error {
	if _, err := p.fs.Stat(th, p.jpath); errors.Is(err, vfs.ErrNotExist) {
		return nil
	} else if err != nil {
		return err
	}
	if err := p.applyJournal(th); err != nil {
		return err
	}
	return p.fs.Unlink(th, p.jpath)
}

func (p *pager) close(th *proc.Thread) error {
	if p.inTxn {
		if err := p.rollback(th); err != nil {
			return err
		}
	}
	return p.h.Close(th)
}

// header (page 0) layout: magic, page count, catalog root.
const (
	hdrMagic   = 0x5A53514C44420000 // "ZSQLDB"
	hdrMagicOf = 0
	hdrCatalog = 8 // u64 root page of the catalog btree
)

func (p *pager) loadHeader(th *proc.Thread) (catalog int64, err error) {
	pg, err := p.page(th, 0)
	if err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint64(pg[hdrMagicOf:]) != hdrMagic {
		return 0, nil // fresh database
	}
	return int64(binary.LittleEndian.Uint64(pg[hdrCatalog:])), nil
}

func (p *pager) storeHeader(th *proc.Thread, catalog int64) error {
	if err := p.write(th, 0); err != nil {
		return err
	}
	pg := p.cache[0]
	binary.LittleEndian.PutUint64(pg[hdrMagicOf:], hdrMagic)
	binary.LittleEndian.PutUint64(pg[hdrCatalog:], uint64(catalog))
	return nil
}

var _ = fmt.Sprintf // keep fmt for debug helpers in other files
