package sqldb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"zofs/internal/lockprof"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// DB is an open database: a pager, a catalog B-tree mapping table names to
// root pages, and cached table handles. Writers serialize on a database
// lock, as SQLite serializes on its file lock.
type DB struct {
	p       *pager
	lock    lockprof.Mutex
	catalog *btree
	tables  map[string]*btree
}

// Open opens (creating if needed) a database file.
func Open(fs vfs.FileSystem, th *proc.Thread, path string) (*DB, error) {
	p, err := openPager(fs, th, path)
	if err != nil {
		return nil, err
	}
	db := &DB{p: p, tables: map[string]*btree{}}
	db.lock.Init("sqldb.db", "")
	catRoot, err := p.loadHeader(th)
	if err != nil {
		return nil, err
	}
	if catRoot == 0 {
		// Fresh database: initialize the catalog within a transaction.
		if err := p.begin(th); err != nil {
			return nil, err
		}
		cat, err := newBtree(th, p)
		if err != nil {
			return nil, err
		}
		if err := p.storeHeader(th, cat.root); err != nil {
			return nil, err
		}
		if err := p.commit(th); err != nil {
			return nil, err
		}
		db.catalog = cat
	} else {
		db.catalog = &btree{pg: p, root: catRoot}
	}
	return db, nil
}

// Close rolls back any open transaction and releases the file.
func (db *DB) Close(th *proc.Thread) error { return db.p.close(th) }

// Tx is an open transaction. All mutations go through a Tx; the journal
// guarantees all-or-nothing visibility across crashes.
type Tx struct {
	db   *DB
	th   *proc.Thread
	done bool
}

// Begin starts a transaction, taking the database write lock.
func (db *DB) Begin(th *proc.Thread) (*Tx, error) {
	db.lock.Lock(th.Clk)
	if err := db.p.begin(th); err != nil {
		db.lock.Unlock(th.Clk)
		return nil, err
	}
	return &Tx{db: db, th: th}, nil
}

// Commit makes the transaction durable.
func (tx *Tx) Commit() error {
	if tx.done {
		return errors.New("sqldb: transaction finished")
	}
	tx.done = true
	err := tx.db.p.commit(tx.th)
	tx.db.lock.Unlock(tx.th.Clk)
	return err
}

// Rollback undoes the transaction; cached table handles are invalidated
// because their roots may have been rolled back.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	err := tx.db.p.rollback(tx.th)
	tx.db.tables = map[string]*btree{}
	catRoot, herr := tx.db.p.loadHeader(tx.th)
	if herr == nil {
		tx.db.catalog = &btree{pg: tx.db.p, root: catRoot}
	}
	tx.db.lock.Unlock(tx.th.Clk)
	if err != nil {
		return err
	}
	return herr
}

// table fetches (or, inside a transaction, creates) a table handle.
func (db *DB) table(th *proc.Thread, name string, create bool) (*btree, error) {
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	v, err := db.catalog.Get(th, name)
	if err == nil {
		t := &btree{pg: db.p, root: int64(binary.LittleEndian.Uint64(v))}
		db.tables[name] = t
		return t, nil
	}
	if !errors.Is(err, ErrNotFound) || !create {
		return nil, err
	}
	t, err := newBtree(th, db.p)
	if err != nil {
		return nil, err
	}
	if err := db.setTableRoot(th, name, t.root); err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// setTableRoot records a table's root page in the catalog, following the
// catalog's own root if it splits.
func (db *DB) setTableRoot(th *proc.Thread, name string, root int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(root))
	oldCat := db.catalog.root
	if err := db.catalog.Put(th, name, buf[:]); err != nil {
		return err
	}
	if db.catalog.root != oldCat {
		return db.p.storeHeader(th, db.catalog.root)
	}
	return nil
}

// CreateTable ensures a table exists.
func (tx *Tx) CreateTable(name string) error {
	_, err := tx.db.table(tx.th, name, true)
	return err
}

// Put inserts or replaces a row.
func (tx *Tx) Put(table, key string, val []byte) error {
	t, err := tx.db.table(tx.th, table, true)
	if err != nil {
		return err
	}
	old := t.root
	if err := t.Put(tx.th, key, val); err != nil {
		return err
	}
	if t.root != old {
		return tx.db.setTableRoot(tx.th, table, t.root)
	}
	return nil
}

// Get reads a row inside the transaction.
func (tx *Tx) Get(table, key string) ([]byte, error) {
	t, err := tx.db.table(tx.th, table, false)
	if err != nil {
		return nil, err
	}
	return t.Get(tx.th, key)
}

// Delete removes a row.
func (tx *Tx) Delete(table, key string) error {
	t, err := tx.db.table(tx.th, table, false)
	if err != nil {
		return err
	}
	return t.Delete(tx.th, key)
}

// Scan iterates rows with key >= start until fn returns false.
func (tx *Tx) Scan(table, start string, fn func(key string, val []byte) bool) error {
	t, err := tx.db.table(tx.th, table, false)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil
		}
		return err
	}
	return t.Scan(tx.th, start, fn)
}

// Get performs a read-only lookup outside any transaction.
func (db *DB) Get(th *proc.Thread, table, key string) ([]byte, error) {
	db.lock.Lock(th.Clk)
	defer db.lock.Unlock(th.Clk)
	t, err := db.table(th, table, false)
	if err != nil {
		return nil, err
	}
	return t.Get(th, key)
}

// Scan performs a read-only range scan outside any transaction.
func (db *DB) Scan(th *proc.Thread, table, start string, fn func(key string, val []byte) bool) error {
	db.lock.Lock(th.Clk)
	defer db.lock.Unlock(th.Clk)
	t, err := db.table(th, table, false)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil
		}
		return err
	}
	return t.Scan(th, start, fn)
}

var _ = fmt.Errorf
