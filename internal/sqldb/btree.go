package sqldb

import (
	"encoding/binary"
	"fmt"

	"zofs/internal/perfmodel"
	"zofs/internal/proc"
)

// B-tree pages. Interior cells {key, child} mean "subtree child holds keys
// <= key"; the rightmost pointer holds keys greater than every cell key.
// Leaves are chained through right-sibling pointers for range scans.
const (
	pgLeaf     = 1
	pgInterior = 2

	btTypeOff  = 0  // u8
	btNCellOff = 2  // u16
	btRightOff = 8  // u64: leaf right sibling / interior rightmost child
	btCellsOff = 16 // packed cells

	// MaxKeyLen / MaxValLen bound cells so a page always fits two.
	MaxKeyLen = 256
	MaxValLen = 1200
)

type cell struct {
	key   string
	val   []byte // leaf payload
	child int64  // interior child
}

// decodePage parses a B-tree page into memory.
func decodePage(pg []byte) (typ byte, right int64, cells []cell) {
	typ = pg[btTypeOff]
	n := int(binary.LittleEndian.Uint16(pg[btNCellOff:]))
	right = int64(binary.LittleEndian.Uint64(pg[btRightOff:]))
	off := btCellsOff
	cells = make([]cell, 0, n)
	for i := 0; i < n; i++ {
		klen := int(binary.LittleEndian.Uint16(pg[off:]))
		if typ == pgLeaf {
			vlen := int(binary.LittleEndian.Uint16(pg[off+2:]))
			key := string(pg[off+4 : off+4+klen])
			val := append([]byte(nil), pg[off+4+klen:off+4+klen+vlen]...)
			cells = append(cells, cell{key: key, val: val})
			off += 4 + klen + vlen
		} else {
			child := int64(binary.LittleEndian.Uint64(pg[off+2:]))
			key := string(pg[off+10 : off+10+klen])
			cells = append(cells, cell{key: key, child: child})
			off += 10 + klen
		}
	}
	return typ, right, cells
}

// encodedSize computes the byte size of a page holding the cells.
func encodedSize(typ byte, cells []cell) int {
	sz := btCellsOff
	for _, c := range cells {
		if typ == pgLeaf {
			sz += 4 + len(c.key) + len(c.val)
		} else {
			sz += 10 + len(c.key)
		}
	}
	return sz
}

// encodePage serializes cells into pg; returns false if they do not fit.
func encodePage(pg []byte, typ byte, right int64, cells []cell) bool {
	if encodedSize(typ, cells) > PageSize {
		return false
	}
	clear(pg)
	pg[btTypeOff] = typ
	binary.LittleEndian.PutUint16(pg[btNCellOff:], uint16(len(cells)))
	binary.LittleEndian.PutUint64(pg[btRightOff:], uint64(right))
	off := btCellsOff
	for _, c := range cells {
		binary.LittleEndian.PutUint16(pg[off:], uint16(len(c.key)))
		if typ == pgLeaf {
			binary.LittleEndian.PutUint16(pg[off+2:], uint16(len(c.val)))
			copy(pg[off+4:], c.key)
			copy(pg[off+4+len(c.key):], c.val)
			off += 4 + len(c.key) + len(c.val)
		} else {
			binary.LittleEndian.PutUint64(pg[off+2:], uint64(c.child))
			copy(pg[off+10:], c.key)
			off += 10 + len(c.key)
		}
	}
	return true
}

// btree is one tree (a table or index) within the database file.
type btree struct {
	pg   *pager
	root int64
}

// newBtree allocates an empty leaf root.
func newBtree(th *proc.Thread, p *pager) (*btree, error) {
	no, pg := p.allocPage(th)
	encodePage(pg, pgLeaf, 0, nil)
	if err := p.write(th, no); err != nil {
		return nil, err
	}
	return &btree{pg: p, root: no}, nil
}

// search finds the index of the first cell with key >= k.
func search(cells []cell, k string) int {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if cells[mid].key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value for key.
func (t *btree) Get(th *proc.Thread, key string) ([]byte, error) {
	no := t.root
	for {
		th.CPU(perfmodel.CPUHashLookup)
		pg, err := t.pg.page(th, no)
		if err != nil {
			return nil, err
		}
		typ, right, cells := decodePage(pg)
		if typ == pgLeaf {
			i := search(cells, key)
			if i < len(cells) && cells[i].key == key {
				return cells[i].val, nil
			}
			return nil, ErrNotFound
		}
		i := search(cells, key)
		if i < len(cells) {
			no = cells[i].child
		} else {
			no = right
		}
	}
}

// Put inserts or replaces a key.
func (t *btree) Put(th *proc.Thread, key string, val []byte) error {
	if len(key) > MaxKeyLen || len(val) > MaxValLen {
		return fmt.Errorf("sqldb: key/value too large (%d/%d)", len(key), len(val))
	}
	promoted, newPage, err := t.insert(th, t.root, key, val)
	if err != nil {
		return err
	}
	if newPage != 0 {
		// Root split: grow the tree by one level.
		rootNo, rootPg := t.pg.allocPage(th)
		encodePage(rootPg, pgInterior, newPage, []cell{{key: promoted, child: t.root}})
		if err := t.pg.write(th, rootNo); err != nil {
			return err
		}
		t.root = rootNo
	}
	return nil
}

// insert recursively inserts into subtree no; on split it returns the
// promoted separator key and the new right page.
func (t *btree) insert(th *proc.Thread, no int64, key string, val []byte) (string, int64, error) {
	th.CPU(perfmodel.CPUHashLookup)
	pg, err := t.pg.page(th, no)
	if err != nil {
		return "", 0, err
	}
	typ, right, cells := decodePage(pg)

	if typ == pgLeaf {
		i := search(cells, key)
		if i < len(cells) && cells[i].key == key {
			cells[i].val = val
		} else {
			cells = append(cells, cell{})
			copy(cells[i+1:], cells[i:])
			cells[i] = cell{key: key, val: val}
		}
		if err := t.pg.write(th, no); err != nil {
			return "", 0, err
		}
		if encodePage(pg, pgLeaf, right, cells) {
			return "", 0, nil
		}
		// Split: lower half stays, upper half moves to a new right leaf.
		h := len(cells) / 2
		newNo, newPg := t.pg.allocPage(th)
		encodePage(newPg, pgLeaf, right, cells[h:])
		encodePage(pg, pgLeaf, newNo, cells[:h])
		if err := t.pg.write(th, newNo); err != nil {
			return "", 0, err
		}
		return cells[h-1].key, newNo, nil
	}

	i := search(cells, key)
	childNo := right
	if i < len(cells) {
		childNo = cells[i].child
	}
	promoted, newChild, err := t.insert(th, childNo, key, val)
	if err != nil || newChild == 0 {
		return "", 0, err
	}
	// The child split: insert {promoted, childNo} before position i and
	// point the old slot at the new child.
	if err := t.pg.write(th, no); err != nil {
		return "", 0, err
	}
	if i < len(cells) {
		cells = append(cells, cell{})
		copy(cells[i+1:], cells[i:])
		cells[i] = cell{key: promoted, child: childNo}
		cells[i+1].child = newChild
	} else {
		cells = append(cells, cell{key: promoted, child: childNo})
		right = newChild
	}
	if encodePage(pg, pgInterior, right, cells) {
		return "", 0, nil
	}
	// Split the interior node around the median.
	h := len(cells) / 2
	median := cells[h]
	newNo, newPg := t.pg.allocPage(th)
	encodePage(newPg, pgInterior, right, cells[h+1:])
	encodePage(pg, pgInterior, median.child, cells[:h])
	if err := t.pg.write(th, newNo); err != nil {
		return "", 0, err
	}
	return median.key, newNo, nil
}

// Delete removes a key (leaves are not rebalanced; empty leaves remain in
// the chain, as tombstone-free deletion suffices for TPC-C's new_order).
func (t *btree) Delete(th *proc.Thread, key string) error {
	no := t.root
	for {
		pg, err := t.pg.page(th, no)
		if err != nil {
			return err
		}
		typ, right, cells := decodePage(pg)
		if typ == pgLeaf {
			i := search(cells, key)
			if i >= len(cells) || cells[i].key != key {
				return ErrNotFound
			}
			cells = append(cells[:i], cells[i+1:]...)
			if err := t.pg.write(th, no); err != nil {
				return err
			}
			encodePage(pg, pgLeaf, right, cells)
			return nil
		}
		i := search(cells, key)
		if i < len(cells) {
			no = cells[i].child
		} else {
			no = right
		}
	}
}

// Scan iterates keys >= start in order, calling fn until it returns false.
func (t *btree) Scan(th *proc.Thread, start string, fn func(key string, val []byte) bool) error {
	no := t.root
	// Descend to the leaf containing start.
	for {
		th.CPU(perfmodel.CPUHashLookup)
		pg, err := t.pg.page(th, no)
		if err != nil {
			return err
		}
		typ, right, cells := decodePage(pg)
		if typ == pgLeaf {
			break
		}
		i := search(cells, start)
		if i < len(cells) {
			no = cells[i].child
		} else {
			no = right
		}
	}
	// Walk the leaf chain.
	for no != 0 {
		pg, err := t.pg.page(th, no)
		if err != nil {
			return err
		}
		_, right, cells := decodePage(pg)
		for i := search(cells, start); i < len(cells); i++ {
			th.CPU(perfmodel.CPUSmallOp)
			if !fn(cells[i].key, cells[i].val) {
				return nil
			}
		}
		no = right
	}
	return nil
}
