package fxmark_test

import (
	"testing"

	"zofs/internal/fxmark"
	"zofs/internal/sysfactory"
)

func env(t *testing.T, sys sysfactory.System, size int64) *fxmark.Env {
	t.Helper()
	in, err := sys.New(size)
	if err != nil {
		t.Fatal(err)
	}
	return &fxmark.Env{FS: in.FS, Proc: in.Proc, SetConcurrency: in.SetConcurrency}
}

const quickNS = 2_000_000 // 2ms virtual per thread

func TestAllWorkloadsRunOnZoFS(t *testing.T) {
	for _, w := range fxmark.All {
		w := w
		t.Run(string(w), func(t *testing.T) {
			e := env(t, sysfactory.ZoFS, 512<<20)
			r, err := fxmark.Run(e, w, 2, quickNS)
			if err != nil {
				t.Fatal(err)
			}
			if r.Ops == 0 || r.MopsPerSec <= 0 {
				t.Fatalf("no progress: %+v", r)
			}
		})
	}
}

func TestAllWorkloadsRunOnBaselines(t *testing.T) {
	for _, sys := range []sysfactory.System{sysfactory.PMFS, sysfactory.NOVA, sysfactory.Strata, sysfactory.Ext4DAX} {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			for _, w := range fxmark.All {
				e := env(t, sys, 512<<20)
				r, err := fxmark.Run(e, w, 2, quickNS)
				if err != nil {
					t.Fatalf("%s/%s: %v", sys.Name, w, err)
				}
				if r.Ops == 0 {
					t.Fatalf("%s/%s made no progress", sys.Name, w)
				}
			}
		})
	}
}

func TestReadsScaleWithThreads(t *testing.T) {
	// DRBL on ZoFS: 8 threads should deliver far more aggregate throughput
	// than 1 (readers overlap).
	e1 := env(t, sysfactory.ZoFS, 256<<20)
	r1, err := fxmark.Run(e1, fxmark.DRBL, 1, quickNS)
	if err != nil {
		t.Fatal(err)
	}
	e8 := env(t, sysfactory.ZoFS, 256<<20)
	r8, err := fxmark.Run(e8, fxmark.DRBL, 8, quickNS)
	if err != nil {
		t.Fatal(err)
	}
	if r8.MopsPerSec < 4*r1.MopsPerSec {
		t.Fatalf("DRBL does not scale: 1T=%.3f 8T=%.3f Mops/s", r1.MopsPerSec, r8.MopsPerSec)
	}
}

func TestSharedWritesCollapse(t *testing.T) {
	// DWOM: per-file locks mean aggregate throughput cannot scale with
	// threads (Fig. 7f).
	e1 := env(t, sysfactory.ZoFS, 256<<20)
	r1, _ := fxmark.Run(e1, fxmark.DWOM, 1, quickNS)
	e8 := env(t, sysfactory.ZoFS, 256<<20)
	r8, _ := fxmark.Run(e8, fxmark.DWOM, 8, quickNS)
	if r8.MopsPerSec > 1.5*r1.MopsPerSec {
		t.Fatalf("DWOM should not scale: 1T=%.3f 8T=%.3f", r1.MopsPerSec, r8.MopsPerSec)
	}
}

func TestZoFSBeatsKernelFSOnDWOL(t *testing.T) {
	// The headline result: user-space ZoFS outperforms the kernel FSs on
	// private 4KB overwrites (Fig. 7e, Fig. 8).
	run := func(sys sysfactory.System) float64 {
		e := env(t, sys, 256<<20)
		r, err := fxmark.Run(e, fxmark.DWOL, 1, quickNS)
		if err != nil {
			t.Fatal(err)
		}
		return r.MopsPerSec
	}
	z := run(sysfactory.ZoFS)
	for _, sys := range []sysfactory.System{sysfactory.PMFS, sysfactory.NOVA, sysfactory.Ext4DAX} {
		if b := run(sys); b >= z {
			t.Fatalf("%s (%.3f) should not beat ZoFS (%.3f) on DWOL", sys.Name, b, z)
		}
	}
}

func TestMWCLEnlargeKnee(t *testing.T) {
	// MWCL on ZoFS flattens with threads due to coffer_enlarge contention,
	// while NOVA keeps scaling (Fig. 7g): check NOVA's 8-thread speedup
	// exceeds ZoFS's.
	speedup := func(sys sysfactory.System) float64 {
		e1 := env(t, sys, 1<<30)
		r1, err := fxmark.Run(e1, fxmark.MWCL, 1, quickNS)
		if err != nil {
			t.Fatal(err)
		}
		e8 := env(t, sys, 1<<30)
		r8, err := fxmark.Run(e8, fxmark.MWCL, 8, quickNS)
		if err != nil {
			t.Fatal(err)
		}
		return r8.MopsPerSec / r1.MopsPerSec
	}
	z := speedup(sysfactory.ZoFS)
	n := speedup(sysfactory.NOVA)
	if n <= z {
		t.Fatalf("NOVA MWCL speedup (%.2fx) should exceed ZoFS's (%.2fx)", n, z)
	}
}
