// Package fxmark reimplements the FxMark microbenchmark suite (Min et al.,
// USENIX ATC'16) used in the paper's Figure 7: file system operations at
// three sharing levels (Low = private files/dirs, Medium = shared file,
// different blocks, High = same block) for data reads (DRB*), data writes
// (DWAL/DWOL/DWOM) and metadata operations (MWCL/MWUL/MWRL).
//
// Each simulated thread is a goroutine with its own virtual clock; a run
// executes operations until every thread passes the target virtual
// duration, and throughput is total operations divided by the slowest
// thread's virtual time — exactly how wall-clock throughput behaves.
package fxmark

import (
	"fmt"
	"math/rand"
	"sync"

	"zofs/internal/proc"
	"zofs/internal/simclock"
	"zofs/internal/vfs"
)

// paceWindowNS bounds how far ahead one simulated thread's clock may run
// (see simclock.Gang).
const paceWindowNS = 500

// Workload names follow FxMark.
type Workload string

const (
	DRBL Workload = "DRBL" // data read block, low contention (private files)
	DRBM Workload = "DRBM" // data read block, medium (shared file, random blocks)
	DRBH Workload = "DRBH" // data read block, high (shared file, same block)
	DWAL Workload = "DWAL" // data write append, low (private files)
	DWOL Workload = "DWOL" // data write overwrite, low (private files)
	DWOM Workload = "DWOM" // data write overwrite, medium (shared file)
	MWCL Workload = "MWCL" // metadata write create, low (private dirs)
	MWUL Workload = "MWUL" // metadata write unlink, low (private dirs)
	MWRL Workload = "MWRL" // metadata write rename, low (private dirs)
)

// All lists every workload in Figure 7 order.
var All = []Workload{DRBL, DRBM, DRBH, DWAL, DWOL, DWOM, MWCL, MWUL, MWRL}

const blockSize = 4096 // "Each data operation accesses files in 4 KB units."

// Env is a freshly prepared file system under test.
type Env struct {
	FS vfs.FileSystem
	// Proc is the process all simulated threads belong to.
	Proc *proc.Process
	// SetConcurrency informs the device cost model of the active thread
	// count (write-bandwidth degradation); may be nil.
	SetConcurrency func(threads int)
}

// Factory builds a fresh Env for one (workload, threads) cell.
type Factory func() (*Env, error)

// Result is one cell of Figure 7.
type Result struct {
	Workload Workload
	Threads  int
	Ops      int64
	// VirtualNS is the slowest thread's virtual time.
	VirtualNS int64
	// MopsPerSec is throughput in million operations per second.
	MopsPerSec float64
}

// Run executes one workload cell: threads simulated threads for target
// virtual nanoseconds each.
func Run(env *Env, w Workload, threads int, targetNS int64) (Result, error) {
	if env.SetConcurrency != nil {
		env.SetConcurrency(threads)
	}
	setup := env.Proc.NewThread()
	workers, err := prepare(env, setup, w, threads, targetNS)
	if err != nil {
		return Result{}, err
	}
	// Workers start once the file-set preparation has fully drained in
	// virtual time, so setup transients (bandwidth queues, lock release
	// times) do not bleed into the measurement window.
	start := setup.Clk.Now()
	deadline := start + targetNS

	var wg sync.WaitGroup
	ops := make([]int64, threads)
	ends := make([]int64, threads)
	errs := make([]error, threads)
	gang := simclock.NewGang(paceWindowNS)
	for i := 0; i < threads; i++ {
		gang.Join(i, start)
	}
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer gang.Leave(i)
			th := env.Proc.NewThread()
			th.Clk.AdvanceTo(start)
			w := workers[i]
			var n int64
			for th.Clk.Now() < deadline {
				if err := w(th, n); err != nil {
					errs[i] = fmt.Errorf("thread %d op %d: %w", i, n, err)
					break
				}
				n++
				gang.Pace(i, th.Clk.Now())
			}
			ops[i] = n
			ends[i] = th.Clk.Now()
		}(i)
	}
	wg.Wait()
	var total int64
	var maxEnd int64
	for i := 0; i < threads; i++ {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		total += ops[i]
		if ends[i] > maxEnd {
			maxEnd = ends[i]
		}
	}
	r := Result{Workload: w, Threads: threads, Ops: total, VirtualNS: maxEnd - start}
	if r.VirtualNS > 0 {
		r.MopsPerSec = float64(total) / (float64(r.VirtualNS) / 1e9) / 1e6
	}
	return r, nil
}

// opFn performs one benchmark operation for a thread; n is the op index.
type opFn func(th *proc.Thread, n int64) error

// prepare builds the file set for a workload and returns one opFn per
// thread.
func prepare(env *Env, th *proc.Thread, w Workload, threads int, targetNS int64) ([]opFn, error) {
	fs := env.FS
	workers := make([]opFn, threads)
	block := make([]byte, blockSize)
	for i := range block {
		block[i] = byte(i)
	}

	// Conservative upper bound of ops a thread can issue, for pre-created
	// file sets (unlink/rename).
	maxOps := targetNS / 800
	if maxOps < 64 {
		maxOps = 64
	}

	switch w {
	case DRBL, DWOL, DWAL:
		// Private file per thread; DRBL/DWOL need a preallocated block.
		for i := 0; i < threads; i++ {
			path := fmt.Sprintf("/f%d", i)
			h, err := fs.Create(th, path, 0o644)
			if err != nil {
				return nil, err
			}
			if w != DWAL {
				if _, err := h.WriteAt(th, block, 0); err != nil {
					return nil, err
				}
			}
			hh := h
			switch w {
			case DRBL:
				workers[i] = func(th *proc.Thread, _ int64) error {
					buf := make([]byte, blockSize)
					_, err := hh.ReadAt(th, buf, 0)
					return err
				}
			case DWOL:
				workers[i] = func(th *proc.Thread, _ int64) error {
					_, err := hh.WriteAt(th, block, 0)
					return err
				}
			case DWAL:
				workers[i] = func(th *proc.Thread, _ int64) error {
					_, err := hh.Append(th, block)
					return err
				}
			}
		}

	case DRBM, DRBH, DWOM:
		// One shared file, preallocated with enough blocks.
		const sharedBlocks = 1024
		h, err := fs.Create(th, "/shared", 0o644)
		if err != nil {
			return nil, err
		}
		big := make([]byte, 64*blockSize)
		for off := int64(0); off < sharedBlocks*blockSize; off += int64(len(big)) {
			if _, err := h.WriteAt(th, big, off); err != nil {
				return nil, err
			}
		}
		for i := 0; i < threads; i++ {
			rng := rand.New(rand.NewSource(int64(i)*7919 + 13))
			switch w {
			case DRBM:
				workers[i] = func(th *proc.Thread, _ int64) error {
					buf := make([]byte, blockSize)
					_, err := h.ReadAt(th, buf, int64(rng.Intn(sharedBlocks))*blockSize)
					return err
				}
			case DRBH:
				workers[i] = func(th *proc.Thread, _ int64) error {
					buf := make([]byte, blockSize)
					_, err := h.ReadAt(th, buf, 0)
					return err
				}
			case DWOM:
				workers[i] = func(th *proc.Thread, _ int64) error {
					_, err := h.WriteAt(th, block, int64(rng.Intn(sharedBlocks))*blockSize)
					return err
				}
			}
		}

	case MWCL:
		for i := 0; i < threads; i++ {
			dir := fmt.Sprintf("/d%d", i)
			if err := fs.Mkdir(th, dir, 0o755); err != nil {
				return nil, err
			}
			d := dir
			workers[i] = func(th *proc.Thread, n int64) error {
				h, err := fs.Create(th, fmt.Sprintf("%s/f%08d", d, n), 0o644)
				if err != nil {
					return err
				}
				return h.Close(th)
			}
		}

	case MWUL:
		for i := 0; i < threads; i++ {
			dir := fmt.Sprintf("/d%d", i)
			if err := fs.Mkdir(th, dir, 0o755); err != nil {
				return nil, err
			}
			for n := int64(0); n < maxOps; n++ {
				h, err := fs.Create(th, fmt.Sprintf("%s/f%08d", dir, n), 0o644)
				if err != nil {
					return nil, err
				}
				h.Close(th)
			}
			d := dir
			workers[i] = func(th *proc.Thread, n int64) error {
				if n >= maxOps {
					// File set exhausted: recreate one and unlink it.
					p := fmt.Sprintf("%s/x%08d", d, n)
					if h, err := fs.Create(th, p, 0o644); err != nil {
						return err
					} else {
						h.Close(th)
					}
					return fs.Unlink(th, p)
				}
				return fs.Unlink(th, fmt.Sprintf("%s/f%08d", d, n))
			}
		}

	case MWRL:
		for i := 0; i < threads; i++ {
			dir := fmt.Sprintf("/d%d", i)
			if err := fs.Mkdir(th, dir, 0o755); err != nil {
				return nil, err
			}
			h, err := fs.Create(th, dir+"/a", 0o644)
			if err != nil {
				return nil, err
			}
			h.Close(th)
			d := dir
			workers[i] = func(th *proc.Thread, n int64) error {
				if n%2 == 0 {
					return fs.Rename(th, d+"/a", d+"/b")
				}
				return fs.Rename(th, d+"/b", d+"/a")
			}
		}

	default:
		return nil, fmt.Errorf("fxmark: unknown workload %q", w)
	}
	return workers, nil
}
