// Package byteflow defines the byte-flow accounting vocabulary shared by the
// device, the file systems and the reporting tools: the byte-class taxonomy
// every persisted write is tagged with, the Flow snapshot that reconciles
// application bytes against FS-issued bytes against media bytes, per-page
// wear records and per-coffer space records.
//
// The package is pure data — it imports nothing — so any layer (simclock,
// nvm, spans, zofs, kernfs, the harness) can use it without import cycles.
package byteflow

import "fmt"

// Class labels the file-system intent behind one persisted write. The zero
// value is the residual class: writes issued with no tag (bulk-charged
// stores, tooling) land there, so the classes always sum to the issued
// total — the byte analogue of the spans CompOther residual.
type Class uint8

const (
	// ClassOther is the untagged residual.
	ClassOther Class = iota
	// ClassData is file content (including inline data and zeroed
	// head/tail fill of freshly allocated data blocks).
	ClassData
	// ClassDentry is directory structure: dentry records, bucket and chain
	// page pointers.
	ClassDentry
	// ClassInode is inode metadata: headers, size/mtime words, block
	// pointers, indirect pages, symlink targets.
	ClassInode
	// ClassJournal is journaling/logging traffic (baselines' redo logs).
	ClassJournal
	// ClassAlloc is allocator metadata: the kernel allocation table,
	// lease/pool slots and free-list chains.
	ClassAlloc

	NumClasses = int(ClassAlloc) + 1
)

var classNames = [NumClasses]string{"other", "data", "dentry", "inode", "journal", "alloc"}

// String returns the class's short lowercase name.
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classes returns every class in enum order (rendering, export).
func Classes() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Flow is a point-in-time reconciliation of where write bytes went, three
// layers deep:
//
//	App    — bytes the application asked the file system to write
//	Issued — bytes the file system issued to the device, by class
//	        (NT stores, cached stores, atomic word stores, zeroing)
//	NT / Lines — how the issued bytes reached media: persisted-at-issue
//	        bytes (nt-store family) and flushed cache lines
//
// Conservation holds by construction when the accounting is correct:
// IssuedTotal() must equal Total exactly (every issued byte has exactly one
// class, residual included), and for write-heavy workloads
// MediaBytes() >= IssuedTotal() >= App (flushing persists whole cache
// lines; the FS writes metadata beyond the app's payload).
type Flow struct {
	// App is application-requested write bytes (payload actually written).
	App int64 `json:"app_bytes"`
	// Total is every byte issued to the device, counted independently of
	// the per-class split so conservation is a real cross-check.
	Total int64 `json:"issued_bytes"`
	// Issued is the per-class split of Total.
	Issued [NumClasses]int64 `json:"issued_by_class"`
	// NT is the per-class persisted-at-issue byte count (WriteNT,
	// Store64/CAS64, Zero, WriteView) — bytes that reached media without
	// needing a flush.
	NT [NumClasses]int64 `json:"nt_by_class"`
	// Lines is the per-class count of cache lines pushed by Flush.
	Lines [NumClasses]int64 `json:"flush_lines_by_class"`
	// Flushes and Fences are the persist-instruction counts.
	Flushes int64 `json:"flushes"`
	Fences  int64 `json:"fences"`
	// LineSize is the cache-line size used to convert Lines to bytes.
	LineSize int64 `json:"line_size"`
}

// IssuedTotal sums the per-class issued bytes.
func (f *Flow) IssuedTotal() int64 {
	var t int64
	for _, v := range f.Issued {
		t += v
	}
	return t
}

// MediaBytes estimates bytes that crossed the memory bus to media:
// persisted-at-issue bytes plus one full line per flushed cache line.
func (f *Flow) MediaBytes() int64 {
	var nt, ln int64
	for i := range f.NT {
		nt += f.NT[i]
		ln += f.Lines[i]
	}
	return nt + ln*f.LineSize
}

// WA returns the write-amplification factor media/app (0 when no app bytes
// were written).
func (f *Flow) WA() float64 {
	if f.App <= 0 {
		return 0
	}
	return float64(f.MediaBytes()) / float64(f.App)
}

// Sub returns f minus prev, field by field (interval accounting).
func (f *Flow) Sub(prev *Flow) *Flow {
	if prev == nil {
		cp := *f
		return &cp
	}
	d := &Flow{
		App:      f.App - prev.App,
		Total:    f.Total - prev.Total,
		Flushes:  f.Flushes - prev.Flushes,
		Fences:   f.Fences - prev.Fences,
		LineSize: f.LineSize,
	}
	for i := 0; i < NumClasses; i++ {
		d.Issued[i] = f.Issued[i] - prev.Issued[i]
		d.NT[i] = f.NT[i] - prev.NT[i]
		d.Lines[i] = f.Lines[i] - prev.Lines[i]
	}
	return d
}

// Conserved verifies the exact-sum invariant: the per-class issued bytes
// must sum to the independently counted issued total, and the media
// estimate must cover every issued byte. Returns nil when the flow
// reconciles.
func (f *Flow) Conserved() error {
	if got, want := f.IssuedTotal(), f.Total; got != want {
		return fmt.Errorf("byteflow: classes sum to %d issued bytes, device counted %d (residual leak %+d)",
			got, want, want-got)
	}
	if f.App > 0 && f.Total < f.App {
		// Overwrites of flushed cached lines can make media < issued, but
		// the FS can never issue fewer bytes than the app handed it.
		return fmt.Errorf("byteflow: issued %d bytes < app %d bytes", f.Total, f.App)
	}
	return nil
}

// PageWear is the wear-heatmap record of one device page.
type PageWear struct {
	Page    int64  `json:"page"`
	Coffer  uint64 `json:"coffer,omitempty"` // owning coffer, 0 when unknown
	Writes  int64  `json:"writes"`
	Bytes   int64  `json:"bytes"`
	Flushes int64  `json:"flushes,omitempty"`
}

// CofferSpace is one coffer's space-accounting row: the kernel's grant
// (Pages), the µFS allocator's idle inventory inside that grant (FreeListed
// persists on NVM, Cached is volatile per-thread batches), the derived
// in-use count, and a fragmentation score from the grant's extent
// distribution (0 = one contiguous run, 1 = maximally scattered).
type CofferSpace struct {
	ID         uint64  `json:"id"`
	Path       string  `json:"path,omitempty"`
	Pages      int64   `json:"pages"`
	FreeListed int64   `json:"free_listed"`
	Cached     int64   `json:"cached"`
	Used       int64   `json:"used"`
	Extents    int64   `json:"extents"`
	Frag       float64 `json:"frag"`
}

// FragScore computes the fragmentation score of a grant held in `extents`
// runs over `pages` pages: (extents-1)/(pages-1), i.e. the fraction of
// adjacent page pairs that break contiguity. Single-page and empty grants
// score 0.
func FragScore(extents, pages int64) float64 {
	if pages <= 1 || extents <= 1 {
		return 0
	}
	return float64(extents-1) / float64(pages-1)
}
