// Package logfs is a second µFS for the Treasury architecture — the
// log-structured file system the paper says "one can implement … in
// Treasury as well" (§5.3). It demonstrates the architecture's central
// flexibility claim: a different user-space library manages the interior of
// its coffers with a completely different layout, while KernFS provides the
// same protection, allocation and naming services, and the FSLibs
// dispatcher routes operations to it by coffer type.
//
// Design (contrast with ZoFS):
//   - The coffer interior is an append-only log of checksummed records
//     (inode images carrying the file's full relative path and block list)
//     chained through segment pages; the custom page stores the segment
//     list head and the committed tail.
//   - The namespace is FLAT within the coffer (§5's suggested alternative):
//     records key files by their coffer-relative path; directories are
//     records with no blocks; ReadDir is an index prefix scan.
//   - Updates never write in place: data goes to fresh pages, then a new
//     inode record supersedes the old one; the log tail pointer is the
//     atomic commit. Crash recovery replays the log up to the committed
//     tail; superseded records and orphaned data pages are reclaimed by
//     compaction (the log cleaner).
package logfs

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"sync"

	"zofs/internal/coffer"
	"zofs/internal/kernfs"
	"zofs/internal/mpk"
	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

const pageSize = nvm.PageSize

// Custom-page layout: the log superblock (kernel gives LogFS this page).
const (
	lsMagic    = 0x4C4F474653000000 // "LOGFS"
	lsMagicOff = 0
	lsSegHead  = 8  // u64: first segment page
	lsTailSeg  = 16 // u64: committed tail segment page
	lsTailOff  = 24 // u64: committed offset within the tail segment
)

// Segment pages chain through their first 8 bytes; records start at 16.
const (
	segNextOff  = 0
	segFirstRec = 16
)

// Record layout.
const (
	recHdr     = 24 // len u32, crc u32, typ u8, pad u8, pathLen u16, mode u32, size u64
	recLenOff  = 0
	recCRCOff  = 4
	recTypOff  = 8
	recPathLen = 10
	recModeOff = 12
	recSizeOff = 16
	// path bytes follow the header, then nBlocks u64 block pointers.

	recDead = 0xff // record type marking a deletion (tombstone)
)

// enlargeBatch is the segment/data allocation batch.
const enlargeBatch = 256

// compactThreshold triggers the cleaner when the coffer holds this many
// times the live data's pages.
const compactThreshold = 3

// meta is the volatile index entry for one live file.
type meta struct {
	typ    vfs.FileType
	mode   coffer.Mode
	uid    uint32
	gid    uint32
	size   int64
	blocks []int64
	target string // symlink
	mtime  int64
}

// FS is a LogFS instance for one process. One instance manages every
// LogFS-type coffer it encounters (each coffer has its own log and index).
type FS struct {
	kern *kernfs.KernFS

	mu      sync.Mutex
	coffers map[coffer.ID]*logCoffer
}

// logCoffer is the per-coffer state.
type logCoffer struct {
	id     coffer.ID
	key    mpk.Key
	custom int64
	path   string // coffer path prefix

	mu       sync.Mutex
	index    map[string]*meta // coffer-relative path -> live meta
	segs     []int64          // segment pages, in order
	tailSeg  int64
	tailOff  int64
	freeData []int64 // data pages available for fresh writes
	liveData int64   // pages referenced by the index
	total    int64   // pages ever allocated to data/segments
}

// New creates a LogFS instance over a mounted KernFS.
func New(kern *kernfs.KernFS) *FS {
	return &FS{kern: kern, coffers: map[coffer.ID]*logCoffer{}}
}

// Name implements vfs.FileSystem.
func (f *FS) Name() string { return "LogFS" }

var _ vfs.FileSystem = (*FS)(nil)

// Format initializes a fresh LogFS coffer (idempotent): writes the log
// superblock into the custom page. The caller must have write access.
func (f *FS) Format(th *proc.Thread, id coffer.ID) error {
	lc, err := f.attach(th, id)
	if err != nil {
		return err
	}
	_ = lc
	return nil
}

// attach maps a coffer and loads (or initializes) its log.
func (f *FS) attach(th *proc.Thread, id coffer.ID) (*logCoffer, error) {
	f.mu.Lock()
	if lc, ok := f.coffers[id]; ok {
		f.mu.Unlock()
		return lc, nil
	}
	f.mu.Unlock()

	mi, err := f.kern.CofferMap(th, id, true)
	if err != nil {
		return nil, errnoK(err)
	}
	lc := &logCoffer{
		id: id, key: mi.Key, custom: mi.Root.Custom, path: mi.Root.Path,
		index: map[string]*meta{},
	}
	cl := f.window(th, lc, true)
	defer cl()
	if th.Load64(lc.custom*pageSize+lsMagicOff) != lsMagic {
		// Fresh coffer: allocate the first segment and commit an empty log.
		seg, err := f.newPages(th, lc, 1)
		if err != nil {
			return nil, err
		}
		th.Store64(seg[0]*pageSize+segNextOff, 0)
		th.Store64(lc.custom*pageSize+lsSegHead, uint64(seg[0]))
		th.Store64(lc.custom*pageSize+lsTailSeg, uint64(seg[0]))
		th.Store64(lc.custom*pageSize+lsTailOff, segFirstRec)
		th.Store64(lc.custom*pageSize+lsMagicOff, lsMagic)
		lc.segs = []int64{seg[0]}
		lc.tailSeg, lc.tailOff = seg[0], segFirstRec
	} else if err := f.replay(th, lc); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.coffers[id] = lc
	f.mu.Unlock()
	return lc, nil
}

// window opens the MPK window (G1/G2 hold for LogFS exactly as for ZoFS).
func (f *FS) window(th *proc.Thread, lc *logCoffer, write bool) func() {
	th.OpenWindow(lc.key, write)
	return th.CloseWindow
}

// newPages allocates pages via coffer_enlarge, buffering a batch.
func (f *FS) newPages(th *proc.Thread, lc *logCoffer, n int) ([]int64, error) {
	var out []int64
	for len(out) < n {
		if len(lc.freeData) == 0 {
			exts, err := f.kern.CofferEnlarge(th, lc.id, enlargeBatch, false)
			if err != nil {
				return nil, errnoK(err)
			}
			for _, e := range exts {
				for pg := e.Start; pg < e.End(); pg++ {
					lc.freeData = append(lc.freeData, pg)
					lc.total++
				}
			}
		}
		out = append(out, lc.freeData[len(lc.freeData)-1])
		lc.freeData = lc.freeData[:len(lc.freeData)-1]
	}
	return out, nil
}

// errnoK maps kernel errors to vfs errors.
func errnoK(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, kernfs.ErrPerm):
		return vfs.ErrPerm
	case errors.Is(err, kernfs.ErrNotFound):
		return vfs.ErrNotExist
	case errors.Is(err, kernfs.ErrNoSpace):
		return vfs.ErrNoSpace
	default:
		return err
	}
}

// ---- log records ---------------------------------------------------------------

// encodeRecord builds a record image for a live meta (or tombstone).
func encodeRecord(rel string, m *meta, dead bool) []byte {
	nBlocks := 0
	target := ""
	if m != nil {
		nBlocks = len(m.blocks)
		target = m.target
	}
	size := recHdr + len(rel) + 8*nBlocks + 2 + len(target)
	buf := make([]byte, (size+7)&^7)
	binary.LittleEndian.PutUint32(buf[recLenOff:], uint32(len(buf)))
	typ := byte(recDead)
	if !dead {
		typ = byte(m.typ)
	}
	buf[recTypOff] = typ
	binary.LittleEndian.PutUint16(buf[recPathLen:], uint16(len(rel)))
	if m != nil {
		binary.LittleEndian.PutUint32(buf[recModeOff:], uint32(m.mode))
		binary.LittleEndian.PutUint64(buf[recSizeOff:], uint64(m.size))
	}
	off := recHdr
	copy(buf[off:], rel)
	off += len(rel)
	if m != nil {
		for _, b := range m.blocks {
			binary.LittleEndian.PutUint64(buf[off:], uint64(b))
			off += 8
		}
	}
	binary.LittleEndian.PutUint16(buf[off:], uint16(len(target)))
	copy(buf[off+2:], target)
	binary.LittleEndian.PutUint32(buf[recCRCOff:], crcOf(buf))
	return buf
}

func crcOf(buf []byte) uint32 {
	// CRC over everything except the CRC field itself.
	h := crc32.NewIEEE()
	h.Write(buf[:recCRCOff])
	h.Write(buf[recCRCOff+4:])
	return h.Sum32()
}

// decodeRecord parses a record; returns rel path, meta (nil for tombstone)
// and the record length, or an error for a torn/corrupt record.
func decodeRecord(buf []byte) (string, *meta, int, error) {
	if len(buf) < recHdr {
		return "", nil, 0, errors.New("short")
	}
	l := int(binary.LittleEndian.Uint32(buf[recLenOff:]))
	if l < recHdr || l > len(buf) || l%8 != 0 {
		return "", nil, 0, errors.New("bad length")
	}
	want := binary.LittleEndian.Uint32(buf[recCRCOff:])
	if crcOf(buf[:l]) != want {
		return "", nil, 0, errors.New("bad crc")
	}
	pl := int(binary.LittleEndian.Uint16(buf[recPathLen:]))
	rel := string(buf[recHdr : recHdr+pl])
	if buf[recTypOff] == recDead {
		return rel, nil, l, nil
	}
	m := &meta{
		typ:  vfs.FileType(buf[recTypOff]),
		mode: coffer.Mode(binary.LittleEndian.Uint32(buf[recModeOff:])),
		size: int64(binary.LittleEndian.Uint64(buf[recSizeOff:])),
	}
	off := recHdr + pl
	nBlocks := (int64(m.size) + pageSize - 1) / pageSize
	if m.typ != vfs.TypeRegular {
		nBlocks = 0
	}
	for i := int64(0); i < nBlocks; i++ {
		m.blocks = append(m.blocks, int64(binary.LittleEndian.Uint64(buf[off:])))
		off += 8
	}
	tl := int(binary.LittleEndian.Uint16(buf[off:]))
	m.target = string(buf[off+2 : off+2+tl])
	return rel, m, l, nil
}

// appendRecord writes a record at the log tail and commits it by advancing
// the tail pointer (the 8-byte atomic commit). Caller holds lc.mu and the
// write window.
func (f *FS) appendRecord(th *proc.Thread, lc *logCoffer, rec []byte) error {
	if lc.tailOff+int64(len(rec)) > pageSize {
		// Seal this segment; chain a new one.
		seg, err := f.newPages(th, lc, 1)
		if err != nil {
			return err
		}
		th.Store64(seg[0]*pageSize+segNextOff, 0)
		th.Store64(lc.tailSeg*pageSize+segNextOff, uint64(seg[0]))
		lc.segs = append(lc.segs, seg[0])
		lc.tailSeg, lc.tailOff = seg[0], segFirstRec
		th.Store64(lc.custom*pageSize+lsTailSeg, uint64(lc.tailSeg))
	}
	th.WriteNT(lc.tailSeg*pageSize+lc.tailOff, rec)
	th.Fence()
	lc.tailOff += int64(len(rec))
	// The tail-offset store commits the record.
	th.Store64(lc.custom*pageSize+lsTailOff, uint64(lc.tailOff))
	th.CPU(perfmodel.JournalEntry)
	return nil
}

// replay rebuilds the volatile index by scanning the log up to the
// committed tail (mount/recovery).
func (f *FS) replay(th *proc.Thread, lc *logCoffer) error {
	head := int64(th.Load64(lc.custom*pageSize + lsSegHead))
	tailSeg := int64(th.Load64(lc.custom*pageSize + lsTailSeg))
	tailOff := int64(th.Load64(lc.custom*pageSize + lsTailOff))
	lc.segs = nil
	lc.index = map[string]*meta{}
	buf := make([]byte, pageSize)
	for seg := head; seg != 0; {
		lc.segs = append(lc.segs, seg)
		th.Read(seg*pageSize, buf)
		end := int64(pageSize)
		if seg == tailSeg {
			end = tailOff
		}
		for off := int64(segFirstRec); off < end; {
			rel, m, l, err := decodeRecord(buf[off:end])
			if err != nil {
				// Torn record past a crash: everything beyond is dead.
				break
			}
			if m == nil {
				delete(lc.index, rel)
			} else {
				m.uid, m.gid = 0, 0
				lc.index[rel] = m
			}
			off += int64(l)
		}
		if seg == tailSeg {
			break
		}
		seg = int64(binary.LittleEndian.Uint64(buf[segNextOff:]))
	}
	lc.tailSeg, lc.tailOff = tailSeg, tailOff
	lc.liveData = 0
	for _, m := range lc.index {
		lc.liveData += int64(len(m.blocks))
	}
	lc.total = f.kernPages(lc)
	return nil
}

func (f *FS) kernPages(lc *logCoffer) int64 {
	var n int64
	for _, e := range f.kern.ExtentsOf(lc.id) {
		n += e.Count
	}
	return n
}

// resolve finds the LogFS coffer for a path and the coffer-relative key.
func (f *FS) resolve(th *proc.Thread, path string) (*logCoffer, string, error) {
	id, prefix, ok := f.kern.ResolveLongest(th.Clk, path)
	if !ok {
		return nil, "", vfs.ErrNotExist
	}
	info, ok := f.kern.Info(id)
	if !ok || info.Type != TypeLogFS {
		return nil, "", vfs.ErrInvalid
	}
	lc, err := f.attach(th, id)
	if err != nil {
		return nil, "", err
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, prefix), "/")
	return lc, rel, nil
}

// TypeLogFS is the coffer type LogFS registers for.
const TypeLogFS coffer.Type = 2

// parentOf returns the relative parent key ("" is the coffer root).
func parentOf(rel string) string {
	i := strings.LastIndexByte(rel, '/')
	if i < 0 {
		return ""
	}
	return rel[:i]
}

// linkInPrefix checks whether any proper prefix of rel is a symlink; if
// so it returns the re-dispatch error with the expanded path (the flat
// index has no entry under the link's name). Caller holds lc.mu.
func (lc *logCoffer) linkInPrefix(rel string) error {
	for i := 0; i < len(rel); i++ {
		if rel[i] != '/' {
			continue
		}
		prefix := rel[:i]
		if m, ok := lc.index[prefix]; ok && m.typ == vfs.TypeSymlink {
			return &vfs.SymlinkError{Path: expandLink(lc.path, prefix, m.target) + "/" + rel[i+1:]}
		}
	}
	return nil
}

// expandLink resolves a symlink target against its location (absolute
// cleaned path of the link's expansion).
func expandLink(cofferPath, rel, target string) string {
	if strings.HasPrefix(target, "/") {
		return vfs.Clean(target)
	}
	dir := parentOf(rel)
	base := cofferPath
	if dir != "" {
		base = cofferPath + "/" + dir
	}
	return vfs.Clean(base + "/" + target)
}

// checkParent verifies the parent exists and is a directory. Caller holds
// lc.mu.
func (lc *logCoffer) checkParent(rel string) error {
	p := parentOf(rel)
	if p == "" {
		return nil // coffer root
	}
	m, ok := lc.index[p]
	if !ok {
		return vfs.ErrNotExist
	}
	if m.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	return nil
}
