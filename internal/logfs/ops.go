package logfs

import (
	"strings"

	"zofs/internal/coffer"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// vfs.FileSystem implementation. Every mutation appends records; reads go
// through the volatile index to data pages. Files keep their own mode/owner
// in the record (LogFS does not split coffers on permission change — it is
// the "flat hierarchy" µFS alternative sketched in §5).

// blocksFor returns the block-slice length for a size.
func blocksFor(size int64) int { return int((size + pageSize - 1) / pageSize) }

// Create makes (or truncates) a regular file.
func (f *FS) Create(th *proc.Thread, path string, mode coffer.Mode) (vfs.Handle, error) {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return nil, err
	}
	if rel == "" {
		return nil, vfs.ErrIsDir
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	cl := f.window(th, lc, true)
	defer cl()
	if err := lc.checkParent(rel); err != nil {
		return nil, err
	}
	if old, ok := lc.index[rel]; ok {
		if old.typ == vfs.TypeDir {
			return nil, vfs.ErrIsDir
		}
		// Truncate in place: new record with no blocks.
		m := &meta{typ: vfs.TypeRegular, mode: old.mode, mtime: th.Clk.Now()}
		if err := f.commitMeta(th, lc, rel, m); err != nil {
			return nil, err
		}
		return &handle{fs: f, lc: lc, rel: rel, flags: vfs.O_RDWR}, nil
	}
	m := &meta{typ: vfs.TypeRegular, mode: mode, mtime: th.Clk.Now()}
	if err := f.commitMeta(th, lc, rel, m); err != nil {
		return nil, err
	}
	return &handle{fs: f, lc: lc, rel: rel, flags: vfs.O_RDWR}, nil
}

// commitMeta appends a record and updates the index. Caller holds lc.mu and
// the window.
func (f *FS) commitMeta(th *proc.Thread, lc *logCoffer, rel string, m *meta) error {
	if err := f.appendRecord(th, lc, encodeRecord(rel, m, false)); err != nil {
		return err
	}
	if old, ok := lc.index[rel]; ok {
		lc.liveData -= int64(len(old.blocks))
		f.releaseBlocks(lc, old.blocks, m.blocks)
	}
	lc.index[rel] = m
	lc.liveData += int64(len(m.blocks))
	return nil
}

// releaseBlocks returns pages dropped by a superseding record to the free
// pool (log-structured: safe because the new record is already committed).
func (f *FS) releaseBlocks(lc *logCoffer, old, kept []int64) {
	still := map[int64]bool{}
	for _, b := range kept {
		if b != 0 {
			still[b] = true
		}
	}
	for _, b := range old {
		if b != 0 && !still[b] {
			lc.freeData = append(lc.freeData, b)
		}
	}
}

// commitDead appends a tombstone.
func (f *FS) commitDead(th *proc.Thread, lc *logCoffer, rel string) error {
	if err := f.appendRecord(th, lc, encodeRecord(rel, nil, true)); err != nil {
		return err
	}
	if old, ok := lc.index[rel]; ok {
		lc.liveData -= int64(len(old.blocks))
		f.releaseBlocks(lc, old.blocks, nil)
		delete(lc.index, rel)
	}
	return nil
}

// Open opens an existing file.
func (f *FS) Open(th *proc.Thread, path string, flags int) (vfs.Handle, error) {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return nil, err
	}
	lc.mu.Lock()
	m, ok := lc.index[rel]
	if !ok && rel != "" {
		if se := lc.linkInPrefix(rel); se != nil {
			lc.mu.Unlock()
			return nil, se
		}
		lc.mu.Unlock()
		if flags&vfs.O_CREATE != 0 {
			return f.Create(th, path, 0o644)
		}
		return nil, vfs.ErrNotExist
	}
	lc.mu.Unlock()
	if rel == "" || m.typ == vfs.TypeDir {
		if flags&vfs.O_ACCESS != vfs.O_RDONLY {
			return nil, vfs.ErrIsDir
		}
		return &handle{fs: f, lc: lc, rel: rel, flags: flags}, nil
	}
	if m.typ == vfs.TypeSymlink {
		return nil, &vfs.SymlinkError{Path: expand(lc.path, rel, m.target)}
	}
	if flags&vfs.O_CREATE != 0 && flags&vfs.O_EXCL != 0 {
		return nil, vfs.ErrExist
	}
	if flags&vfs.O_TRUNC != 0 {
		lc.mu.Lock()
		cl := f.window(th, lc, true)
		nm := &meta{typ: vfs.TypeRegular, mode: m.mode, mtime: th.Clk.Now()}
		err := f.commitMeta(th, lc, rel, nm)
		cl()
		lc.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return &handle{fs: f, lc: lc, rel: rel, flags: flags}, nil
}

// expand resolves a symlink target against its location.
func expand(cofferPath, rel, target string) string {
	if strings.HasPrefix(target, "/") {
		return vfs.Clean(target)
	}
	dir := parentOf(rel)
	base := cofferPath
	if dir != "" {
		base = vfs.Join(cofferPath, dir)
	}
	return vfs.Clean(base + "/" + target)
}

// Mkdir creates a directory record.
func (f *FS) Mkdir(th *proc.Thread, path string, mode coffer.Mode) error {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return err
	}
	if rel == "" {
		return vfs.ErrExist
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	cl := f.window(th, lc, true)
	defer cl()
	if err := lc.checkParent(rel); err != nil {
		return err
	}
	if _, ok := lc.index[rel]; ok {
		return vfs.ErrExist
	}
	return f.commitMeta(th, lc, rel, &meta{typ: vfs.TypeDir, mode: mode, mtime: th.Clk.Now()})
}

// Unlink removes a file or symlink.
func (f *FS) Unlink(th *proc.Thread, path string) error {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	m, ok := lc.index[rel]
	if !ok || rel == "" {
		if rel == "" {
			return vfs.ErrIsDir
		}
		return vfs.ErrNotExist
	}
	if m.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	cl := f.window(th, lc, true)
	defer cl()
	if err := f.commitDead(th, lc, rel); err != nil {
		return err
	}
	f.maybeCompact(th, lc)
	return nil
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(th *proc.Thread, path string) error {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	m, ok := lc.index[rel]
	if !ok || rel == "" {
		return vfs.ErrNotExist
	}
	if m.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	prefix := rel + "/"
	for k := range lc.index {
		if strings.HasPrefix(k, prefix) {
			return vfs.ErrNotEmpty
		}
	}
	cl := f.window(th, lc, true)
	defer cl()
	return f.commitDead(th, lc, rel)
}

// Rename rewrites records under the new key (directories rename their whole
// prefix — cheap here: the namespace is the index).
func (f *FS) Rename(th *proc.Thread, oldPath, newPath string) error {
	lc, oldRel, err := f.resolve(th, oldPath)
	if err != nil {
		return err
	}
	lc2, newRel, err := f.resolve(th, newPath)
	if err != nil {
		return err
	}
	if lc2 != lc {
		return vfs.ErrCrossDevice // LogFS renames stay within one coffer
	}
	if oldRel == newRel {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	m, ok := lc.index[oldRel]
	if !ok || oldRel == "" {
		return vfs.ErrNotExist
	}
	if err := lc.checkParent(newRel); err != nil {
		return err
	}
	cl := f.window(th, lc, true)
	defer cl()
	if dst, exists := lc.index[newRel]; exists {
		if dst.typ == vfs.TypeDir {
			return vfs.ErrExist
		}
		if err := f.commitDead(th, lc, newRel); err != nil {
			return err
		}
	}
	if m.typ == vfs.TypeDir {
		// Rewrite every descendant record under the new prefix.
		prefix := oldRel + "/"
		var moves [][2]string
		for k := range lc.index {
			if strings.HasPrefix(k, prefix) {
				moves = append(moves, [2]string{k, newRel + "/" + k[len(prefix):]})
			}
		}
		for _, mv := range moves {
			child := lc.index[mv[0]]
			if err := f.appendRecord(th, lc, encodeRecord(mv[1], child, false)); err != nil {
				return err
			}
			if err := f.appendRecord(th, lc, encodeRecord(mv[0], nil, true)); err != nil {
				return err
			}
			lc.index[mv[1]] = child
			delete(lc.index, mv[0])
		}
	}
	if err := f.appendRecord(th, lc, encodeRecord(newRel, m, false)); err != nil {
		return err
	}
	if err := f.appendRecord(th, lc, encodeRecord(oldRel, nil, true)); err != nil {
		return err
	}
	lc.index[newRel] = m
	delete(lc.index, oldRel)
	return nil
}

// Stat returns metadata; the coffer root reports the kernel's root page.
func (f *FS) Stat(th *proc.Thread, path string) (vfs.FileInfo, error) {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	if rel == "" {
		rp, _ := f.kern.Info(lc.id)
		return vfs.FileInfo{Type: vfs.TypeDir, Mode: rp.Mode, UID: rp.UID, GID: rp.GID, Coffer: lc.id}, nil
	}
	lc.mu.Lock()
	m, ok := lc.index[rel]
	if !ok {
		se := lc.linkInPrefix(rel)
		lc.mu.Unlock()
		if se != nil {
			return vfs.FileInfo{}, se
		}
		return vfs.FileInfo{}, vfs.ErrNotExist
	}
	lc.mu.Unlock()
	if m.typ == vfs.TypeSymlink {
		return vfs.FileInfo{}, &vfs.SymlinkError{Path: expand(lc.path, rel, m.target)}
	}
	return vfs.FileInfo{
		Type: m.typ, Mode: m.mode, UID: m.uid, GID: m.gid,
		Size: m.size, Nlink: 1, Mtime: m.mtime, Coffer: lc.id,
	}, nil
}

// Chmod rewrites the record with new permission bits (no coffer split:
// LogFS keeps per-file modes inside one coffer).
func (f *FS) Chmod(th *proc.Thread, path string, mode coffer.Mode) error {
	return f.setAttr(th, path, func(m *meta) { m.mode = mode })
}

// Chown rewrites ownership.
func (f *FS) Chown(th *proc.Thread, path string, uid, gid uint32) error {
	return f.setAttr(th, path, func(m *meta) { m.uid, m.gid = uid, gid })
}

func (f *FS) setAttr(th *proc.Thread, path string, mut func(*meta)) error {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	m, ok := lc.index[rel]
	if !ok {
		if rel == "" {
			return vfs.ErrPerm // coffer root is kernel-managed
		}
		return vfs.ErrNotExist
	}
	nm := *m
	mut(&nm)
	cl := f.window(th, lc, true)
	defer cl()
	return f.commitMeta(th, lc, rel, &nm)
}

// Symlink creates a link record.
func (f *FS) Symlink(th *proc.Thread, target, link string) error {
	lc, rel, err := f.resolve(th, link)
	if err != nil {
		return err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	cl := f.window(th, lc, true)
	defer cl()
	if err := lc.checkParent(rel); err != nil {
		return err
	}
	if _, ok := lc.index[rel]; ok {
		return vfs.ErrExist
	}
	return f.commitMeta(th, lc, rel, &meta{
		typ: vfs.TypeSymlink, mode: 0o777, target: target,
		size: int64(len(target)), mtime: th.Clk.Now(),
	})
}

// Readlink reads a link target.
func (f *FS) Readlink(th *proc.Thread, path string) (string, error) {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return "", err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	m, ok := lc.index[rel]
	if !ok {
		return "", vfs.ErrNotExist
	}
	if m.typ != vfs.TypeSymlink {
		return "", vfs.ErrInvalid
	}
	return m.target, nil
}

// ReadDir lists the immediate children of a directory (index prefix scan —
// the flat namespace in action).
func (f *FS) ReadDir(th *proc.Thread, path string) ([]vfs.DirEntry, error) {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return nil, err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if rel != "" {
		m, ok := lc.index[rel]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		if m.typ != vfs.TypeDir {
			return nil, vfs.ErrNotDir
		}
	}
	prefix := ""
	if rel != "" {
		prefix = rel + "/"
	}
	var out []vfs.DirEntry
	for k, m := range lc.index {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		rest := k[len(prefix):]
		if strings.ContainsRune(rest, '/') {
			continue // deeper descendant
		}
		out = append(out, vfs.DirEntry{Name: rest, Type: m.typ, Coffer: lc.id})
	}
	return out, nil
}

// Truncate resizes a file via a superseding record.
func (f *FS) Truncate(th *proc.Thread, path string, size int64) error {
	lc, rel, err := f.resolve(th, path)
	if err != nil {
		return err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	m, ok := lc.index[rel]
	if !ok {
		return vfs.ErrNotExist
	}
	if m.typ != vfs.TypeRegular {
		return vfs.ErrIsDir
	}
	nm := *m
	nm.size = size
	nb := blocksFor(size)
	nm.blocks = make([]int64, nb)
	copy(nm.blocks, m.blocks)
	nm.mtime = th.Clk.Now()
	cl := f.window(th, lc, true)
	defer cl()
	// Zero the boundary tail so extension reads zeros (the page is about to
	// be shared between the old content and the new hole).
	if tail := size % pageSize; tail != 0 && nb <= len(m.blocks) && nb > 0 && nm.blocks[nb-1] != 0 {
		th.Zero(nm.blocks[nb-1]*pageSize+tail, pageSize-tail)
	}
	return f.commitMeta(th, lc, rel, &nm)
}
