package logfs

import (
	"zofs/internal/coffer"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// handle is LogFS's vfs.Handle. All writes are copy-on-write: affected
// pages are rewritten into fresh pages and a superseding inode record
// commits the change — the log-structured update discipline.
type handle struct {
	fs    *FS
	lc    *logCoffer
	rel   string
	flags int
}

func (h *handle) writable() bool { return h.flags&vfs.O_ACCESS != vfs.O_RDONLY }

// ReadAt serves reads from the indexed block list.
func (h *handle) ReadAt(th *proc.Thread, p []byte, off int64) (int, error) {
	h.lc.mu.Lock()
	m, ok := h.lc.index[h.rel]
	if !ok {
		h.lc.mu.Unlock()
		return 0, vfs.ErrNotExist
	}
	size := m.size
	blocks := append([]int64(nil), m.blocks...)
	h.lc.mu.Unlock()

	if off >= size {
		return 0, nil
	}
	if off+int64(len(p)) > size {
		p = p[:size-off]
	}
	cl := h.fs.window(th, h.lc, false)
	defer cl()
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) / pageSize
		pOff := (off + int64(n)) % pageSize
		chunk := int(pageSize - pOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		if idx < int64(len(blocks)) && blocks[idx] != 0 {
			th.Read(blocks[idx]*pageSize+pOff, p[n:n+chunk])
		} else {
			for i := 0; i < chunk; i++ {
				p[n+i] = 0
			}
		}
		n += chunk
	}
	return n, nil
}

// WriteAt performs the copy-on-write update and commits a superseding
// record.
func (h *handle) WriteAt(th *proc.Thread, p []byte, off int64) (int, error) {
	if !h.writable() {
		return 0, vfs.ErrBadFD
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	h.lc.mu.Lock()
	defer h.lc.mu.Unlock()
	m, ok := h.lc.index[h.rel]
	if !ok {
		return 0, vfs.ErrNotExist
	}
	cl := h.fs.window(th, h.lc, true)
	defer cl()

	nm := *m
	end := off + int64(len(p))
	if end > nm.size {
		nm.size = end
	}
	nm.blocks = make([]int64, blocksFor(nm.size))
	copy(nm.blocks, m.blocks)
	nm.mtime = th.Clk.Now()

	n := 0
	for n < len(p) {
		idx := (off + int64(n)) / pageSize
		pOff := (off + int64(n)) % pageSize
		chunk := int(pageSize - pOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		fresh, err := h.fs.newPages(th, h.lc, 1)
		if err != nil {
			return n, err
		}
		pg := fresh[0]
		if chunk < pageSize {
			// Partial page: merge with the old content (or zeros).
			buf := make([]byte, pageSize)
			if old := nm.blocks[idx]; old != 0 {
				th.Read(old*pageSize, buf)
			}
			copy(buf[pOff:], p[n:n+chunk])
			th.WriteNT(pg*pageSize, buf)
		} else {
			th.WriteNT(pg*pageSize, p[n:n+chunk])
		}
		nm.blocks[idx] = pg
		n += chunk
	}
	if err := h.fs.commitMeta(th, h.lc, h.rel, &nm); err != nil {
		return n, err
	}
	h.fs.maybeCompact(th, h.lc)
	return n, nil
}

// Append writes at end of file.
func (h *handle) Append(th *proc.Thread, p []byte) (int64, error) {
	h.lc.mu.Lock()
	m, ok := h.lc.index[h.rel]
	if !ok {
		h.lc.mu.Unlock()
		return 0, vfs.ErrNotExist
	}
	off := m.size
	h.lc.mu.Unlock()
	_, err := h.WriteAt(th, p, off)
	return off, err
}

// Stat reports the handle's metadata.
func (h *handle) Stat(th *proc.Thread) (vfs.FileInfo, error) {
	h.lc.mu.Lock()
	defer h.lc.mu.Unlock()
	if h.rel == "" {
		rp, _ := h.fs.kern.Info(h.lc.id)
		return vfs.FileInfo{Type: vfs.TypeDir, Mode: rp.Mode, Coffer: h.lc.id}, nil
	}
	m, ok := h.lc.index[h.rel]
	if !ok {
		return vfs.FileInfo{}, vfs.ErrNotExist
	}
	return vfs.FileInfo{
		Type: m.typ, Mode: m.mode, UID: m.uid, GID: m.gid,
		Size: m.size, Nlink: 1, Mtime: m.mtime, Coffer: h.lc.id,
	}, nil
}

// Sync is a no-op: every commit is already durable (tail-pointer commit).
func (h *handle) Sync(*proc.Thread) error { return nil }

// Close releases the handle.
func (h *handle) Close(*proc.Thread) error { return nil }

// ---- the log cleaner ---------------------------------------------------------

// maybeCompact runs the cleaner when the coffer holds several times the
// live data. Caller holds lc.mu and a write window.
func (f *FS) maybeCompact(th *proc.Thread, lc *logCoffer) {
	live := lc.liveData + int64(len(lc.segs))
	if lc.total < 4*enlargeBatch || lc.total < compactThreshold*(live+1) {
		return
	}
	f.compactLocked(th, lc)
}

// Compact forces a cleaning pass (exported for tests and tools).
func (f *FS) Compact(th *proc.Thread, id coffer.ID) error {
	lc, err := f.attach(th, id)
	if err != nil {
		return err
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	cl := f.window(th, lc, true)
	defer cl()
	f.compactLocked(th, lc)
	return nil
}

// compactLocked rewrites all live records into fresh segments and returns
// every page outside the new live set to the kernel (coffer_shrink) — the
// log-structured cleaner, expressed in Treasury's coffer protocol.
func (f *FS) compactLocked(th *proc.Thread, lc *logCoffer) {
	// Fresh first segment.
	seg, err := f.newPages(th, lc, 1)
	if err != nil {
		return // no space to clean into; leave the log as is
	}
	oldSegs := lc.segs
	th.Store64(seg[0]*pageSize+segNextOff, 0)
	lc.segs = []int64{seg[0]}
	lc.tailSeg, lc.tailOff = seg[0], segFirstRec
	th.Store64(lc.custom*pageSize+lsTailSeg, uint64(lc.tailSeg))
	th.Store64(lc.custom*pageSize+lsTailOff, uint64(lc.tailOff))
	for rel, m := range lc.index {
		if err := f.appendRecord(th, lc, encodeRecord(rel, m, false)); err != nil {
			return
		}
	}
	// Publish the new log head last (atomic switch).
	th.Store64(lc.custom*pageSize+lsSegHead, uint64(lc.segs[0]))

	// Everything not live any more goes back to the kernel.
	keep := map[int64]bool{}
	for _, s := range lc.segs {
		keep[s] = true
	}
	for _, m := range lc.index {
		for _, b := range m.blocks {
			if b != 0 {
				keep[b] = true
			}
		}
	}
	var give []coffer.Extent
	for _, s := range oldSegs {
		if !keep[s] {
			give = append(give, coffer.Extent{Start: s, Count: 1})
		}
	}
	for _, b := range lc.freeData {
		if !keep[b] {
			give = append(give, coffer.Extent{Start: b, Count: 1})
		}
	}
	lc.freeData = nil
	if len(give) > 0 {
		if err := f.kern.CofferShrink(th, lc.id, give); err == nil {
			lc.total -= int64(len(give))
		}
	}
}
