package logfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"zofs/internal/coffer"
	"zofs/internal/kernfs"
	"zofs/internal/logfs"
	"zofs/internal/nvm"
	"zofs/internal/proc"
	"zofs/internal/vfs"
	"zofs/internal/vfs/vfstest"
)

// newLogFS builds a device with a LogFS coffer at "/" — the conformance
// suite then drives it through absolute paths exactly like the other FSs.
func newLogFS(t *testing.T) (*nvm.Device, *kernfs.KernFS, *logfs.FS, *proc.Thread) {
	t.Helper()
	dev := nvm.NewDevice(512 << 20)
	if err := kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755}); err != nil {
		t.Fatal(err)
	}
	k, err := kernfs.Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	p := proc.NewProcess(dev, 0, 0)
	th := p.NewThread()
	if err := k.FSMount(th); err != nil {
		t.Fatal(err)
	}
	// Re-type the ROOT coffer as LogFS: the root coffer exists from mkfs
	// (ZoFS-typed); for a pure-LogFS device we re-tag it. Production
	// setups would CofferNew with TypeLogFS instead (see the mixed test).
	f := logfs.New(k)
	if err := retypeRoot(k, th); err != nil {
		t.Fatal(err)
	}
	if err := f.Format(th, k.RootCoffer()); err != nil {
		t.Fatal(err)
	}
	return dev, k, f, th
}

// retypeRoot rewrites the root coffer's type for test setups.
func retypeRoot(k *kernfs.KernFS, th *proc.Thread) error {
	rp, _ := k.Info(k.RootCoffer())
	// SetCofferMeta keeps mode/owner; the type lives in the root page, so
	// rewrite it via the same kernel facility used by mkfs: re-encode.
	return k.SetCofferType(th, k.RootCoffer(), logfs.TypeLogFS, rp.Mode)
}

func TestLogFSConformance(t *testing.T) {
	vfstest.Run(t, func(t *testing.T) (vfs.FileSystem, *proc.Thread) {
		_, _, f, th := newLogFS(t)
		return f, th
	})
}

func TestLogReplayAfterCrash(t *testing.T) {
	dev, k, f, th := newLogFS(t)
	h, err := f.Create(th, "/persist", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 10000)
	if _, err := h.WriteAt(th, payload, 0); err != nil {
		t.Fatal(err)
	}
	f.Mkdir(th, "/d", 0o755)
	f.Symlink(th, "/persist", "/d/link")
	f.Unlink(th, "/persist2") // no-op
	_ = k

	// Crash: volatile index gone; remount and replay the log.
	dev.Crash()
	k2, err := kernfs.Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	th2 := proc.NewProcess(dev, 0, 0).NewThread()
	if err := k2.FSMount(th2); err != nil {
		t.Fatal(err)
	}
	f2 := logfs.New(k2)
	h2, err := f2.Open(th2, "/persist", vfs.O_RDONLY)
	if err != nil {
		t.Fatalf("replayed open: %v", err)
	}
	got := make([]byte, len(payload))
	if n, err := h2.ReadAt(th2, got, 0); err != nil || n != len(payload) || !bytes.Equal(got, payload) {
		t.Fatalf("replayed content: n=%d err=%v", n, err)
	}
	if tgt, err := f2.Readlink(th2, "/d/link"); err != nil || tgt != "/persist" {
		t.Fatalf("replayed symlink = %q, %v", tgt, err)
	}
	// Torn-tail tolerance: a crash mid-append must not break replay.
	dev.FailAfter(3)
	func() {
		defer func() { recover() }()
		h3, _ := f2.Create(th2, "/torn", 0o644)
		h3.WriteAt(th2, payload, 0)
	}()
	dev.FailAfter(0)
	dev.Crash()
	k3, err := kernfs.Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	th3 := proc.NewProcess(dev, 0, 0).NewThread()
	k3.FSMount(th3)
	f3 := logfs.New(k3)
	if _, err := f3.Open(th3, "/persist", vfs.O_RDONLY); err != nil {
		t.Fatalf("post-torn replay: %v", err)
	}
}

func TestCompactionReclaimsSpace(t *testing.T) {
	_, k, f, th := newLogFS(t)
	h, _ := f.Create(th, "/churn", 0o644)
	buf := make([]byte, 64<<10)
	// Overwrite repeatedly: CoW burns pages.
	for i := 0; i < 60; i++ {
		if _, err := h.WriteAt(th, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := k.FreePages()
	if err := f.Compact(th, k.RootCoffer()); err != nil {
		t.Fatal(err)
	}
	after := k.FreePages()
	if after <= before {
		t.Fatalf("cleaner reclaimed nothing: %d -> %d", before, after)
	}
	// Content survives cleaning.
	got := make([]byte, len(buf))
	if n, err := h.ReadAt(th, got, 0); err != nil || n != len(buf) {
		t.Fatalf("post-compact read: %d, %v", n, err)
	}
}

func TestMixedMicroFSDispatch(t *testing.T) {
	// The Treasury claim: two µFS types coexist, dispatched by coffer type.
	dev := nvm.NewDevice(512 << 20)
	kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755})
	k, _ := kernfs.Mount(dev)
	p := proc.NewProcess(dev, 0, 0)
	th := p.NewThread()
	k.FSMount(th)

	// ZoFS root + a LogFS coffer at /logarea.
	id, err := k.CofferNew(th, k.RootCoffer(), "/logarea", logfs.TypeLogFS, 0o755, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	lf := logfs.New(k)
	if err := lf.Format(th, id); err != nil {
		t.Fatal(err)
	}
	// LogFS file under /logarea.
	h, err := lf.Create(th, "/logarea/note", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	h.WriteAt(th, []byte("log-structured"), 0)
	fi, err := lf.Stat(th, "/logarea/note")
	if err != nil || fi.Size != 14 {
		t.Fatalf("LogFS stat = %+v, %v", fi, err)
	}
	if fi.Coffer != id {
		t.Fatalf("note lives in coffer %d, want %d", fi.Coffer, id)
	}
	ents, err := lf.ReadDir(th, "/logarea")
	if err != nil || len(ents) != 1 || ents[0].Name != "note" {
		t.Fatalf("LogFS readdir = %v, %v", ents, err)
	}
}

func TestManyFilesFlatNamespace(t *testing.T) {
	_, _, f, th := newLogFS(t)
	f.Mkdir(th, "/flat", 0o755)
	for i := 0; i < 500; i++ {
		h, err := f.Create(th, fmt.Sprintf("/flat/f%04d", i), 0o644)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		h.WriteAt(th, []byte{byte(i)}, 0)
		h.Close(th)
	}
	ents, err := f.ReadDir(th, "/flat")
	if err != nil || len(ents) != 500 {
		t.Fatalf("ReadDir = %d, %v", len(ents), err)
	}
	if err := f.Rename(th, "/flat", "/moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(th, "/moved/f0123"); err != nil {
		t.Fatalf("child lost in prefix rename: %v", err)
	}
	if _, err := f.Stat(th, "/flat/f0123"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old prefix survived")
	}
}

var _ = coffer.Mode(0)
