package simclock

import "sync"

// Gang keeps a group of simulated threads' virtual clocks within a bounded
// window of each other. Without pacing, the real scheduler can run one
// goroutine's entire virtual timeline before another starts, which makes
// shared virtual-time resources (bandwidth channels, locks) serialize
// spuriously — the lead thread pushes busyUntil past everyone else's
// deadline. Workload harnesses call Pace after every operation; a thread
// more than the window ahead of the slowest active member blocks (really)
// until the others catch up (virtually).
type Gang struct {
	mu     sync.Mutex
	cond   *sync.Cond
	window int64
	times  map[int]int64
	active map[int]bool
}

// NewGang creates a gang with the given virtual window (ns). A window of a
// few tens of microseconds keeps interleaving realistic without heavy
// synchronization overhead.
func NewGang(window int64) *Gang {
	g := &Gang{window: window, times: map[int]int64{}, active: map[int]bool{}}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Join registers a member starting at virtual time start.
func (g *Gang) Join(id int, start int64) {
	g.mu.Lock()
	g.times[id] = start
	g.active[id] = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// minActive returns the smallest clock among active members; callers hold
// g.mu.
func (g *Gang) minActive() (int64, bool) {
	var min int64
	found := false
	for id, act := range g.active {
		if !act {
			continue
		}
		if t := g.times[id]; !found || t < min {
			min, found = t, true
		}
	}
	return min, found
}

// Pace publishes the member's current virtual time and blocks while it is
// more than the window ahead of the slowest active member.
func (g *Gang) Pace(id int, now int64) {
	g.mu.Lock()
	g.times[id] = now
	g.cond.Broadcast()
	for {
		min, ok := g.minActive()
		if !ok || now-min <= g.window {
			break
		}
		// If we ARE the minimum (possible when others left), don't wait.
		if min == now {
			break
		}
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Leave deregisters a member (its clock no longer holds others back).
func (g *Gang) Leave(id int) {
	g.mu.Lock()
	g.active[id] = false
	g.mu.Unlock()
	g.cond.Broadcast()
}
