package simclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock Now() = %d, want 0", c.Now())
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", c.Now())
	}
	c.Advance(-50) // negative advances are ignored
	if c.Now() != 100 {
		t.Fatalf("Now() after negative advance = %d, want 100", c.Now())
	}
	c.AdvanceTo(80) // past times are ignored
	if c.Now() != 100 {
		t.Fatalf("Now() after AdvanceTo(80) = %d, want 100", c.Now())
	}
	c.AdvanceTo(250)
	if c.Now() != 250 {
		t.Fatalf("Now() after AdvanceTo(250) = %d, want 250", c.Now())
	}
}

func TestClockAt(t *testing.T) {
	c := NewClockAt(500)
	if c.Now() != 500 {
		t.Fatalf("NewClockAt(500).Now() = %d", c.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource()
	a, b := NewClock(), NewClock()

	grantA := r.Use(a, 100)
	if grantA != 0 || a.Now() != 100 {
		t.Fatalf("first use: grant=%d now=%d, want 0/100", grantA, a.Now())
	}
	grantB := r.Use(b, 100)
	if grantB != 100 || b.Now() != 200 {
		t.Fatalf("queued use: grant=%d now=%d, want 100/200", grantB, b.Now())
	}
}

func TestResourceIdleGap(t *testing.T) {
	r := NewResource()
	c := NewClock()
	r.Use(c, 10) // busy until 10
	late := NewClockAt(1000)
	grant := r.Use(late, 5)
	if grant != 1000 || late.Now() != 1005 {
		t.Fatalf("idle resource should grant at arrival: grant=%d now=%d", grant, late.Now())
	}
}

func TestResourceThroughputCeiling(t *testing.T) {
	// N threads each performing ops holding the resource 100ns must see
	// aggregate throughput of exactly 1 op / 100ns regardless of N.
	r := NewResource()
	const threads, opsPer = 8, 100
	var wg sync.WaitGroup
	clocks := make([]*Clock, threads)
	for i := range clocks {
		clocks[i] = NewClock()
		wg.Add(1)
		go func(c *Clock) {
			defer wg.Done()
			for j := 0; j < opsPer; j++ {
				r.Use(c, 100)
			}
		}(clocks[i])
	}
	wg.Wait()
	var maxEnd int64
	for _, c := range clocks {
		if c.Now() > maxEnd {
			maxEnd = c.Now()
		}
	}
	want := int64(threads * opsPer * 100)
	if maxEnd != want {
		t.Fatalf("serialized end time = %d, want %d", maxEnd, want)
	}
}

func TestRWResourceReadersOverlap(t *testing.T) {
	r := NewRWResource()
	a, b := NewClock(), NewClock()
	r.UseRead(a, 100)
	r.UseRead(b, 100)
	if a.Now() != 100 || b.Now() != 100 {
		t.Fatalf("readers should overlap: a=%d b=%d", a.Now(), b.Now())
	}
	w := NewClock()
	grant := r.UseWrite(w, 50)
	if grant != 100 || w.Now() != 150 {
		t.Fatalf("writer should wait for readers: grant=%d now=%d", grant, w.Now())
	}
	c := NewClock()
	grantR := r.UseRead(c, 10)
	if grantR != 150 {
		t.Fatalf("reader should wait for writer: grant=%d", grantR)
	}
}

func TestRWResourceWriterAfterWriter(t *testing.T) {
	r := NewRWResource()
	a, b := NewClock(), NewClock()
	r.UseWrite(a, 100)
	r.UseWrite(b, 100)
	if b.Now() != 200 {
		t.Fatalf("writers must serialize: b=%d, want 200", b.Now())
	}
}

func TestBandwidthCeiling(t *testing.T) {
	// 1 GB/s; 1 MB transfer should hold the channel ~1ms.
	bw := NewBandwidth(1e9)
	a, b := NewClock(), NewClock()
	bw.Transfer(a, 1<<20)
	bw.Transfer(b, 1<<20)
	holdA, holdB := a.Now(), b.Now()
	if holdA < 1_000_000 || holdA > 1_100_000 {
		t.Fatalf("first transfer time %d, want ~1.05ms", holdA)
	}
	if holdB < 2*holdA-1000 || holdB > 2*holdA+1000 {
		t.Fatalf("second transfer should queue: %d vs first %d", holdB, holdA)
	}
	if bw.TotalBytes() != 2<<20 {
		t.Fatalf("TotalBytes = %d", bw.TotalBytes())
	}
}

func TestBandwidthUnqueuedOverlaps(t *testing.T) {
	bw := NewBandwidth(1e9)
	a, b := NewClock(), NewClock()
	bw.TransferUnqueued(a, 1<<20)
	bw.TransferUnqueued(b, 1<<20)
	if a.Now() != b.Now() {
		t.Fatalf("unqueued transfers must not serialize: %d vs %d", a.Now(), b.Now())
	}
}

func TestBandwidthDegradation(t *testing.T) {
	bw := NewBandwidth(1e9)
	c := NewClock()
	bw.Transfer(c, 1000)
	base := c.Now()
	bw.Reset()
	bw.SetDegradation(0.5)
	c2 := NewClock()
	bw.Transfer(c2, 1000)
	if c2.Now() < 2*base-100 || c2.Now() > 2*base+100 {
		t.Fatalf("degraded transfer = %d, want ~2x %d", c2.Now(), base)
	}
	// Invalid factors fall back to 1.
	bw.SetDegradation(0)
	c3 := NewClock()
	bw.Reset()
	bw.Transfer(c3, 1000)
	if c3.Now() != base {
		t.Fatalf("invalid degradation should reset to 1: %d vs %d", c3.Now(), base)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource()
	c := NewClock()
	r.Use(c, 1000)
	r.Reset()
	if r.BusyUntil() != 0 {
		t.Fatalf("BusyUntil after Reset = %d", r.BusyUntil())
	}
}

// Property: a resource never grants two overlapping holds, and grants are
// never earlier than arrival.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(holds []uint16) bool {
		r := NewResource()
		var prevEnd int64 = -1
		c := NewClock()
		for _, h := range holds {
			hold := int64(h % 1000)
			arrival := c.Now()
			grant := r.Use(c, hold)
			if grant < arrival || grant < prevEnd {
				return false
			}
			if c.Now() != grant+hold {
				return false
			}
			prevEnd = grant + hold
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent Use calls always advance total busy time by exactly
// the sum of holds (no lost or double-counted holds).
func TestResourceConservationProperty(t *testing.T) {
	r := NewResource()
	const threads = 4
	var wg sync.WaitGroup
	var sum int64
	var mu sync.Mutex
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := NewClock()
			var local int64
			for j := int64(0); j < 50; j++ {
				h := (seed*31 + j*17) % 97
				r.Use(c, h)
				local += h
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}(int64(i))
	}
	wg.Wait()
	if r.BusyUntil() != sum {
		t.Fatalf("busyUntil = %d, want sum of holds %d", r.BusyUntil(), sum)
	}
}
