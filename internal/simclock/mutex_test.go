package simclock

import "testing"

// waitSink records billLockWait calls (the lockWaitBiller contract).
type waitSink struct{ total int64 }

func (s *waitSink) BillLockWait(ns int64) { s.total += ns }

func TestMutexBillsWait(t *testing.T) {
	var m Mutex
	a, b := NewClock(), NewClock()
	sink := &waitSink{}
	b.SetBill(sink)

	m.Lock(a)
	a.Advance(100)
	m.Unlock(a)

	m.Lock(b) // b at t=0 must drain behind a's release at t=100
	if b.Now() != 100 {
		t.Fatalf("waiter clock = %d, want 100", b.Now())
	}
	if sink.total != 100 {
		t.Fatalf("billed wait = %d, want 100", sink.total)
	}
	b.Advance(10)
	m.Unlock(b)
}

// TestRLockBillsWriterDrain pins the read-side billing audit: a reader whose
// clock trails a prior writer's release stamp drains behind writeBusy and
// must bill that wait, exactly like the write side.
func TestRLockBillsWriterDrain(t *testing.T) {
	var m RWMutex
	w, r := NewClock(), NewClock()
	sink := &waitSink{}
	r.SetBill(sink)

	m.Lock(w)
	w.Advance(250)
	m.Unlock(w)

	m.RLock(r)
	if r.Now() != 250 {
		t.Fatalf("reader clock = %d, want 250 (drained behind writer)", r.Now())
	}
	if sink.total != 250 {
		t.Fatalf("reader billed wait = %d, want 250", sink.total)
	}
	m.RUnlock(r)
}

// TestWriteLockBillsBothDrains checks the write side bills the full wait
// when it drains behind both a prior writer and a later-ending reader.
func TestWriteLockBillsBothDrains(t *testing.T) {
	var m RWMutex
	w1, r, w2 := NewClock(), NewClock(), NewClock()
	sink := &waitSink{}
	w2.SetBill(sink)

	m.Lock(w1)
	w1.Advance(100)
	m.Unlock(w1)

	m.RLock(r) // reader drains to 100, then holds until 180
	r.Advance(80)
	m.RUnlock(r)

	m.Lock(w2)
	if w2.Now() != 180 {
		t.Fatalf("writer clock = %d, want 180", w2.Now())
	}
	if sink.total != 180 {
		t.Fatalf("writer billed wait = %d, want 180 (sum of both drains)", sink.total)
	}
	m.Unlock(w2)
}

func TestLockNilClock(t *testing.T) {
	var m Mutex
	m.Lock(nil) // setup paths lock with no clock; must not panic
	m.Unlock(nil)
	var rw RWMutex
	rw.Lock(nil)
	rw.Unlock(nil)
	rw.RLock(nil)
	rw.RUnlock(nil)
}
