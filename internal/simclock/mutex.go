package simclock

import "sync"

// Mutex couples a real sync.Mutex with a virtual-time resource: Lock blocks
// the calling goroutine for real and advances the caller's clock past the
// previous holder's release time, and Unlock stamps the release. Critical
// sections therefore serialize in both real time (protecting the shared Go
// data structures) and virtual time (modeling the lock's performance cost),
// with the virtual hold equal to whatever the caller charged its clock while
// holding the lock.
type Mutex struct {
	mu        sync.Mutex
	busyUntil int64
}

// Lock acquires the mutex and advances c past the last release. A nil clock
// acquires real mutual exclusion only (used by one-time setup code).
func (m *Mutex) Lock(c *Clock) {
	m.mu.Lock()
	if c != nil && m.busyUntil > c.Now() {
		wait := m.busyUntil - c.Now()
		c.AdvanceTo(m.busyUntil)
		c.billLockWait(wait)
	}
}

// Unlock records the virtual release time and releases the mutex.
func (m *Mutex) Unlock(c *Clock) {
	if c != nil && c.Now() > m.busyUntil {
		m.busyUntil = c.Now()
	}
	m.mu.Unlock()
}

// RWMutex is the readers-writer analogue of Mutex: real sync.RWMutex
// semantics for the protected Go data plus virtual-time accounting in which
// readers overlap and writers serialize. It models the per-file
// readers-writer locks that let data reads scale in FxMark (§6.1).
type RWMutex struct {
	mu            sync.RWMutex
	vmu           sync.Mutex
	writeBusy     int64
	lastReaderEnd int64
}

// Lock acquires the write side, waiting (virtually) for all prior readers
// and writers.
func (m *RWMutex) Lock(c *Clock) {
	m.mu.Lock()
	if c != nil {
		m.vmu.Lock()
		before := c.Now()
		if m.writeBusy > c.Now() {
			c.AdvanceTo(m.writeBusy)
		}
		if m.lastReaderEnd > c.Now() {
			c.AdvanceTo(m.lastReaderEnd)
		}
		wait := c.Now() - before
		m.vmu.Unlock()
		c.billLockWait(wait)
	}
}

// Unlock releases the write side, stamping the virtual release time.
func (m *RWMutex) Unlock(c *Clock) {
	if c != nil {
		m.vmu.Lock()
		if c.Now() > m.writeBusy {
			m.writeBusy = c.Now()
		}
		m.vmu.Unlock()
	}
	m.mu.Unlock()
}

// RLock acquires the read side, waiting (virtually) only for prior writers.
func (m *RWMutex) RLock(c *Clock) {
	m.mu.RLock()
	if c != nil {
		m.vmu.Lock()
		before := c.Now()
		if m.writeBusy > c.Now() {
			c.AdvanceTo(m.writeBusy)
		}
		wait := c.Now() - before
		m.vmu.Unlock()
		c.billLockWait(wait)
	}
}

// RUnlock releases the read side, recording the latest reader end time.
func (m *RWMutex) RUnlock(c *Clock) {
	if c != nil {
		m.vmu.Lock()
		if c.Now() > m.lastReaderEnd {
			m.lastReaderEnd = c.Now()
		}
		m.vmu.Unlock()
	}
	m.mu.RUnlock()
}
