package simclock

import "sync"

// Mutex couples a real sync.Mutex with a virtual-time resource: Lock blocks
// the calling goroutine for real and advances the caller's clock past the
// previous holder's release time, and Unlock stamps the release. Critical
// sections therefore serialize in both real time (protecting the shared Go
// data structures) and virtual time (modeling the lock's performance cost),
// with the virtual hold equal to whatever the caller charged its clock while
// holding the lock.
//
// All three blocking paths (Mutex.Lock, RWMutex.Lock, RWMutex.RLock) drain
// their wait through Clock.drainTo, which both advances the clock and bills
// the wait — a reader contending on a prior writer's drain stamp is billed
// exactly like a writer contending on readers, by construction rather than
// by four hand-kept call sites.
type Mutex struct {
	mu        sync.Mutex
	busyUntil int64
}

// Lock acquires the mutex and advances c past the last release. A nil clock
// acquires real mutual exclusion only (used by one-time setup code).
func (m *Mutex) Lock(c *Clock) {
	m.mu.Lock()
	if c != nil {
		c.drainTo(m.busyUntil)
	}
}

// Unlock records the virtual release time and releases the mutex.
func (m *Mutex) Unlock(c *Clock) {
	if c != nil && c.Now() > m.busyUntil {
		m.busyUntil = c.Now()
	}
	m.mu.Unlock()
}

// RWMutex is the readers-writer analogue of Mutex: real sync.RWMutex
// semantics for the protected Go data plus virtual-time accounting in which
// readers overlap and writers serialize. It models the per-file
// readers-writer locks that let data reads scale in FxMark (§6.1).
type RWMutex struct {
	mu            sync.RWMutex
	vmu           sync.Mutex
	writeBusy     int64
	lastReaderEnd int64
}

// Lock acquires the write side, waiting (virtually) for all prior readers
// and writers. The two drains bill separately; their sum is the total wait,
// identical to the single combined bill of earlier revisions.
func (m *RWMutex) Lock(c *Clock) {
	m.mu.Lock()
	if c != nil {
		m.vmu.Lock()
		c.drainTo(m.writeBusy)
		c.drainTo(m.lastReaderEnd)
		m.vmu.Unlock()
	}
}

// Unlock releases the write side, stamping the virtual release time.
func (m *RWMutex) Unlock(c *Clock) {
	if c != nil {
		m.vmu.Lock()
		if c.Now() > m.writeBusy {
			m.writeBusy = c.Now()
		}
		m.vmu.Unlock()
	}
	m.mu.Unlock()
}

// RLock acquires the read side, waiting (virtually) only for prior writers.
// The real RLock established happens-before with the last writer's Unlock,
// so the writeBusy stamp read under vmu is fresh and the writer-drain wait
// is billed; mutex_test.go pins this with a reader-behind-writer regression.
func (m *RWMutex) RLock(c *Clock) {
	m.mu.RLock()
	if c != nil {
		m.vmu.Lock()
		c.drainTo(m.writeBusy)
		m.vmu.Unlock()
	}
}

// RUnlock releases the read side, recording the latest reader end time.
func (m *RWMutex) RUnlock(c *Clock) {
	if c != nil {
		m.vmu.Lock()
		if c.Now() > m.lastReaderEnd {
			m.lastReaderEnd = c.Now()
		}
		m.vmu.Unlock()
	}
	m.mu.RUnlock()
}
