package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestGangBoundsSkew(t *testing.T) {
	g := NewGang(1000)
	const members = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	times := make([]int64, members)
	maxSkew := int64(0)
	for i := 0; i < members; i++ {
		g.Join(i, 0)
	}
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer g.Leave(i)
			c := NewClock()
			for c.Now() < 100_000 {
				c.Advance(int64(100 * (i + 1))) // different speeds
				g.Pace(i, c.Now())
				mu.Lock()
				times[i] = c.Now()
				var min, max int64 = 1 << 62, 0
				for _, v := range times {
					if v < min {
						min = v
					}
					if v > max {
						max = v
					}
				}
				if s := max - min; s > maxSkew {
					maxSkew = s
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	// Skew can exceed the window by one step (the op granularity), here
	// 400ns max step + 1000ns window.
	if maxSkew > 1000+400 {
		t.Fatalf("max skew %d exceeds window+step", maxSkew)
	}
}

func TestGangLeaveUnblocks(t *testing.T) {
	g := NewGang(100)
	g.Join(0, 0)
	g.Join(1, 0)
	done := make(chan struct{})
	go func() {
		// Member 0 runs far ahead; it must block until member 1 leaves.
		g.Pace(0, 10_000)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("leader did not block")
	case <-time.After(20 * time.Millisecond):
	}
	g.Leave(1)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("leader not released after Leave")
	}
	g.Leave(0)
}

func TestGangSingleMemberNeverBlocks(t *testing.T) {
	g := NewGang(10)
	g.Join(7, 0)
	done := make(chan struct{})
	go func() {
		for i := int64(1); i < 100; i++ {
			g.Pace(7, i*1000)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("single member blocked")
	}
}
