// Package simclock provides the virtual-time substrate used by every
// benchmark and file system in this repository.
//
// All file system code runs as ordinary Go code on ordinary goroutines, but
// performance is accounted in virtual nanoseconds: each simulated thread owns
// a Clock, every modeled action (an NVM access, a syscall, a WRPKRU, a lock
// hold) advances that clock, and shared hardware/software resources are
// modeled as Resources whose grant time is max(arrival, busyUntil). This
// yields throughput ceilings, lock convoys and scalability collapses in
// virtual time at the same places they occur on real hardware, while the
// underlying data-structure work remains real (real locks, real CAS, real
// memory).
package simclock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the virtual clock of one simulated thread. It is not safe for
// concurrent use; each simulated thread owns exactly one Clock.
type Clock struct {
	now       int64 // virtual nanoseconds since simulation start
	tag       uint64
	wclass    uint8
	bill      any
	lockState any
}

// NewClock returns a clock starting at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// NewClockAt returns a clock starting at the given virtual time.
func NewClockAt(ns int64) *Clock { return &Clock{now: ns} }

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d virtual nanoseconds. Negative
// advances are ignored so cost formulas may safely round down to zero.
func (c *Clock) Advance(d int64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to time t if t is in the future.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// SetTag attaches an opaque origin tag to the clock. Since a Clock belongs
// to exactly one simulated thread, the tag lets observers (the persistence
// flight recorder) attribute device events to their issuing thread without
// simclock knowing about processes. Zero means untagged.
func (c *Clock) SetTag(t uint64) { c.tag = t }

// Tag returns the clock's origin tag (zero when untagged).
func (c *Clock) Tag() uint64 { return c.tag }

// SetWriteClass sets the byte-class tag the device attributes this thread's
// writes to (a byteflow.Class value; zero is the untagged residual). Like
// the tag, it rides the clock because the clock is the one per-thread object
// every device access already carries. Nil-receiver safe so tag sites run
// unconditionally on clock-less paths.
func (c *Clock) SetWriteClass(wc uint8) {
	if c != nil {
		c.wclass = wc
	}
}

// WriteClass returns the clock's current byte-class tag (zero when untagged
// or when the clock is nil).
func (c *Clock) WriteClass() uint8 {
	if c == nil {
		return 0
	}
	return c.wclass
}

// SwapWriteClass sets the byte-class tag and returns the previous one, the
// save/restore idiom for nested tag scopes (a data write that allocates a
// page re-tags to alloc and restores on the way out).
func (c *Clock) SwapWriteClass(wc uint8) uint8 {
	if c == nil {
		return 0
	}
	prev := c.wclass
	c.wclass = wc
	return prev
}

// SetBill attaches an opaque cost sink to the clock. Like the tag, it lets
// per-thread observers (the causal span layer) ride along without simclock
// knowing about them: layers that advance the clock can hand the elapsed
// virtual time to the sink for attribution. Nil detaches.
func (c *Clock) SetBill(b any) { c.bill = b }

// Bill returns the clock's attached cost sink (nil when none).
func (c *Clock) Bill() any { return c.bill }

// SetLockState attaches the thread's lock-profiler state (a
// lockprof.ThreadState) to the clock. Like the tag and the bill sink it is
// an opaque rider: simclock stays ignorant of the profiler, the profiler
// gets a per-thread slot on the one object every lock site already holds.
// Nil-receiver safe so attach sites run unconditionally on clock-less paths.
func (c *Clock) SetLockState(s any) {
	if c != nil {
		c.lockState = s
	}
}

// LockState returns the clock's attached lock-profiler state (nil when none
// or when the clock is nil).
func (c *Clock) LockState() any {
	if c == nil {
		return nil
	}
	return c.lockState
}

// lockWaitBiller is implemented by cost sinks that want virtual lock-wait
// time attributed to them (see Mutex/RWMutex).
type lockWaitBiller interface{ BillLockWait(ns int64) }

// billLockWait hands ns of lock-wait time to the attached sink, if any.
func (c *Clock) billLockWait(ns int64) {
	if ns <= 0 || c.bill == nil {
		return
	}
	if b, ok := c.bill.(lockWaitBiller); ok {
		b.BillLockWait(ns)
	}
}

// drainTo is the single wait path shared by Mutex and RWMutex: it advances
// the clock past a holder's virtual release stamp, bills the elapsed wait to
// the attached cost sink, and returns it. Every virtual lock wait in the
// process flows through here — with no other billLockWait caller, the span
// layer's lock_wait total and the lock profiler's per-lock wait sums are
// measurements of the same quantity and must agree exactly (the equality the
// fxmark-scale cross-check gate asserts).
func (c *Clock) drainTo(stamp int64) int64 {
	wait := stamp - c.now
	if wait <= 0 {
		return 0
	}
	c.now = stamp
	c.billLockWait(wait)
	return wait
}

// Duration is a convenience converter from time.Duration to virtual ns.
func Duration(d time.Duration) int64 { return int64(d) }

// Resource models an exclusively held resource (a lock, a journal tail, a
// global allocator, a device write port). A user arriving at virtual time t
// is granted the resource at max(t, busyUntil) and holds it for the given
// duration; the caller's clock is advanced to the release time.
//
// Resource is safe for concurrent use by many simulated threads.
type Resource struct {
	mu        sync.Mutex
	busyUntil int64
}

// NewResource returns an idle resource.
func NewResource() *Resource { return &Resource{} }

// Use acquires the resource at the clock's current time, holds it for hold
// virtual nanoseconds, and advances the clock past the wait plus the hold.
// It returns the virtual time at which the resource was granted.
func (r *Resource) Use(c *Clock, hold int64) int64 {
	if hold < 0 {
		hold = 0
	}
	r.mu.Lock()
	grant := r.busyUntil
	if c.now > grant {
		grant = c.now
	}
	r.busyUntil = grant + hold
	r.mu.Unlock()
	c.now = grant + hold
	return grant
}

// Enqueue hands the resource a unit of asynchronous work: the work occupies
// the resource for hold ns starting at max(arrival, busyUntil), but the
// caller only waits until the resource ACCEPTS the work (i.e., until prior
// work has drained), not until it completes. This models background workers
// (e.g., Strata's kernel digestion thread): producers run ahead of the
// worker until its backlog pushes acceptance time past them.
func (r *Resource) Enqueue(c *Clock, hold int64) (accepted int64) {
	if hold < 0 {
		hold = 0
	}
	r.mu.Lock()
	grant := r.busyUntil
	if c.Now() > grant {
		grant = c.Now()
	}
	r.busyUntil = grant + hold
	r.mu.Unlock()
	c.AdvanceTo(grant)
	return grant
}

// BusyUntil reports the virtual time at which the resource becomes free.
func (r *Resource) BusyUntil() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busyUntil
}

// Reset makes the resource idle again (used between benchmark phases).
func (r *Resource) Reset() {
	r.mu.Lock()
	r.busyUntil = 0
	r.mu.Unlock()
}

// RWResource models a readers-writer resource in virtual time: readers
// overlap freely with each other but must wait for a preceding writer;
// writers wait for all preceding readers and writers.
type RWResource struct {
	mu            sync.Mutex
	writeBusy     int64 // release time of the last writer
	lastReaderEnd int64 // latest release time among readers
}

// NewRWResource returns an idle readers-writer resource.
func NewRWResource() *RWResource { return &RWResource{} }

// UseRead performs a read-side hold: the caller waits only for the last
// writer, then holds for the given duration, overlapping other readers.
func (r *RWResource) UseRead(c *Clock, hold int64) int64 {
	if hold < 0 {
		hold = 0
	}
	r.mu.Lock()
	grant := r.writeBusy
	if c.now > grant {
		grant = c.now
	}
	end := grant + hold
	if end > r.lastReaderEnd {
		r.lastReaderEnd = end
	}
	r.mu.Unlock()
	c.now = end
	return grant
}

// UseWrite performs a write-side hold: the caller waits for all prior
// readers and writers, then holds exclusively.
func (r *RWResource) UseWrite(c *Clock, hold int64) int64 {
	if hold < 0 {
		hold = 0
	}
	r.mu.Lock()
	grant := r.writeBusy
	if r.lastReaderEnd > grant {
		grant = r.lastReaderEnd
	}
	if c.now > grant {
		grant = c.now
	}
	r.writeBusy = grant + hold
	r.mu.Unlock()
	c.now = grant + hold
	return grant
}

// Reset makes the resource idle again.
func (r *RWResource) Reset() {
	r.mu.Lock()
	r.writeBusy, r.lastReaderEnd = 0, 0
	r.mu.Unlock()
}

// bwWindowNS is the granularity of the bandwidth capacity ledger: virtual
// time is divided into fixed windows, each able to carry bwWindowNS of
// transfer time. Queueing is therefore resolved per window, so two transfers
// issued at disjoint virtual times never interact — only genuinely
// simultaneous traffic contends.
const bwWindowNS = 4096

// Bandwidth models a shared transfer channel with a fixed peak rate
// (bytes/second) and an optional concurrency-degradation factor. A transfer
// of n bytes consumes n/effectiveRate seconds of channel capacity, so
// aggregate throughput across all threads cannot exceed the effective rate —
// exactly the ceiling behaviour of Optane DC PM write bandwidth.
//
// Capacity is kept as a virtual-time ledger (consumed ns per bwWindowNS
// window) rather than a single busy-until scalar. A scalar queue serves in
// REAL call order, which under divergent thread clocks creates false
// head-of-line blocking: a thread whose clock is far ahead (it just charged
// a big CPU cost) would make a transfer issued at an EARLIER virtual time
// wait behind its own — on real hardware the earlier write would have long
// since drained. The ledger lets a transfer at virtual time t consume
// capacity starting at t, whatever order the Go scheduler runs the calls in,
// while a crowded window still spills its overflow into the following ones
// and models queueing delay.
type Bandwidth struct {
	peakBps    float64
	scale      atomic.Uint64 // effective rate multiplier in 1/1024ths
	totalBytes atomic.Int64

	mu  sync.Mutex
	win map[int64]int64 // window index -> consumed transfer ns
}

// NewBandwidth returns a channel with the given peak rate in bytes/second.
func NewBandwidth(bytesPerSecond float64) *Bandwidth {
	if bytesPerSecond <= 0 {
		panic(fmt.Sprintf("simclock: invalid bandwidth %v", bytesPerSecond))
	}
	b := &Bandwidth{peakBps: bytesPerSecond, win: map[int64]int64{}}
	b.scale.Store(1024)
	return b
}

// SetDegradation sets the effective-rate multiplier (0 < f <= 1). Workload
// harnesses call this with a factor derived from the number of concurrently
// active writers to model Optane's bandwidth decline under high concurrency.
func (b *Bandwidth) SetDegradation(f float64) {
	if f <= 0 || f > 1 {
		f = 1
	}
	b.scale.Store(uint64(f * 1024))
}

// Transfer charges the channel for n bytes at the clock's current time,
// advancing the clock past any queueing delay plus the transfer itself.
// Uncontended (every touched window has spare capacity) the clock advances
// by exactly the transfer time, same as TransferUnqueued; contended, the
// transfer drains through the first windows at or after the clock with
// capacity left.
func (b *Bandwidth) Transfer(c *Clock, n int) {
	if n <= 0 {
		return
	}
	rate := b.peakBps * float64(b.scale.Load()) / 1024
	hold := int64(float64(n) / rate * 1e9)
	if hold <= 0 {
		b.totalBytes.Add(int64(n))
		return
	}
	b.mu.Lock()
	t := c.Now()
	for hold > 0 {
		w := t / bwWindowNS
		avail := bwWindowNS - b.win[w]
		if avail <= 0 {
			t = (w + 1) * bwWindowNS
			continue
		}
		// Consume no more than the window has capacity for, and no more
		// wall time than remains in it from t.
		take := hold
		if take > avail {
			take = avail
		}
		if wall := (w+1)*bwWindowNS - t; take > wall {
			take = wall
		}
		b.win[w] += take
		hold -= take
		t += take
		if hold > 0 && t < (w+1)*bwWindowNS {
			// Window capacity exhausted by concurrent traffic before its
			// wall end: the remainder queues into the next window.
			t = (w + 1) * bwWindowNS
		}
	}
	b.mu.Unlock()
	c.AdvanceTo(t)
	b.totalBytes.Add(int64(n))
}

// TransferUnqueued charges only the local clock for n bytes without
// occupying the shared channel. Used for read paths where the device
// sustains enough parallelism that reads rarely queue.
func (b *Bandwidth) TransferUnqueued(c *Clock, n int) {
	if n <= 0 {
		return
	}
	rate := b.peakBps * float64(b.scale.Load()) / 1024
	c.Advance(int64(float64(n) / rate * 1e9))
	b.totalBytes.Add(int64(n))
}

// TotalBytes reports the cumulative bytes transferred.
func (b *Bandwidth) TotalBytes() int64 { return b.totalBytes.Load() }

// Reset makes the channel idle and zeroes the byte counter.
func (b *Bandwidth) Reset() {
	b.mu.Lock()
	b.win = map[int64]int64{}
	b.mu.Unlock()
	b.totalBytes.Store(0)
	b.scale.Store(1024)
}
