package simclock

import (
	"sync"
	"testing"
)

// bwByteNS is a rate of one byte per virtual nanosecond (1e9 bytes/second),
// making transfer sizes and hold times numerically equal in the tests.
const bwByteNS = 1e9

// TestBandwidthSpillAtWindowBoundary pins the ledger's behaviour exactly at
// the bwWindowNS edge: a transfer whose wall time crosses the boundary takes
// the remainder of its window and spills the rest into the next one, and a
// transfer issued exactly on a boundary lands entirely in the new window.
func TestBandwidthSpillAtWindowBoundary(t *testing.T) {
	b := NewBandwidth(bwByteNS)

	c := NewClockAt(bwWindowNS - 1)
	b.Transfer(c, 2) // 1 ns left in window 0, 1 ns into window 1
	if got := c.Now(); got != bwWindowNS+1 {
		t.Fatalf("straddling transfer ended at %d, want %d", got, bwWindowNS+1)
	}
	if b.win[0] != 1 || b.win[1] != 1 {
		t.Fatalf("ledger = {0:%d, 1:%d}, want one ns in each window", b.win[0], b.win[1])
	}

	c2 := NewClockAt(bwWindowNS)
	b.Transfer(c2, 3)
	if got := c2.Now(); got != bwWindowNS+3 {
		t.Fatalf("boundary-start transfer ended at %d, want %d", got, bwWindowNS+3)
	}
	if b.win[0] != 1 {
		t.Fatalf("boundary-start transfer touched window 0: %d ns", b.win[0])
	}
	if b.win[1] != 4 {
		t.Fatalf("window 1 carries %d ns, want 4", b.win[1])
	}

	// Saturate window 2 from its first instant: the transfer consumes the
	// whole window and the clock stops exactly on the next boundary.
	c3 := NewClockAt(2 * bwWindowNS)
	b.Transfer(c3, bwWindowNS)
	if got := c3.Now(); got != 3*bwWindowNS {
		t.Fatalf("full-window transfer ended at %d, want %d", got, 3*bwWindowNS)
	}
	// A second transfer issued at the same virtual time finds window 2 full
	// and queues into window 3 — no capacity is double-booked.
	c4 := NewClockAt(2 * bwWindowNS)
	b.Transfer(c4, 5)
	if got := c4.Now(); got != 3*bwWindowNS+5 {
		t.Fatalf("queued transfer ended at %d, want %d", got, 3*bwWindowNS+5)
	}
	if b.win[2] != bwWindowNS || b.win[3] != 5 {
		t.Fatalf("ledger = {2:%d, 3:%d}, want {%d, 5}", b.win[2], b.win[3], int64(bwWindowNS))
	}
}

// TestBandwidthMultiWindowOverflowChain drives transfers long enough to fill
// several consecutive windows and checks the overflow chains through every
// one of them with nothing lost and nothing double-counted.
func TestBandwidthMultiWindowOverflowChain(t *testing.T) {
	b := NewBandwidth(bwByteNS)

	c := NewClock()
	b.Transfer(c, 3*bwWindowNS) // fills windows 0,1,2 exactly
	if got := c.Now(); got != 3*bwWindowNS {
		t.Fatalf("triple-window transfer ended at %d, want %d", got, 3*bwWindowNS)
	}
	for w := int64(0); w < 3; w++ {
		if b.win[w] != bwWindowNS {
			t.Fatalf("window %d carries %d ns, want full %d", w, b.win[w], int64(bwWindowNS))
		}
	}

	// A transfer issued back at virtual time 0 must chain past all three
	// saturated windows before it finds capacity.
	c2 := NewClock()
	b.Transfer(c2, bwWindowNS/2)
	if got := c2.Now(); got != 3*bwWindowNS+bwWindowNS/2 {
		t.Fatalf("chained transfer ended at %d, want %d", got, 3*bwWindowNS+bwWindowNS/2)
	}
	if b.win[3] != bwWindowNS/2 {
		t.Fatalf("window 3 carries %d ns, want %d", b.win[3], int64(bwWindowNS/2))
	}

	var ledger int64
	for _, ns := range b.win {
		ledger += ns
	}
	if want := int64(3*bwWindowNS + bwWindowNS/2); ledger != want {
		t.Fatalf("ledger total = %d ns, want %d (conservation)", ledger, want)
	}
	if got, want := b.TotalBytes(), int64(3*bwWindowNS+bwWindowNS/2); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

// TestBandwidthConcurrentDivergentClocks issues transfers from goroutines
// whose clocks sit at different virtual times within one window (and one far
// ahead). Whatever order the Go scheduler runs them in, the ledger must
// conserve the total charged time, every clock must advance by at least its
// own transfer time, and the far-ahead clock must not block the early ones
// (run under -race to exercise the locking).
func TestBandwidthConcurrentDivergentClocks(t *testing.T) {
	b := NewBandwidth(bwByteNS)
	const transfers = 64
	const perTransfer = 96 // 64*96 = 1.5 windows of demand

	clocks := make([]*Clock, transfers)
	var wg sync.WaitGroup
	for i := 0; i < transfers; i++ {
		// Starts scattered through window 0, plus a few clocks already far
		// ahead in virtual time (their demand lands in their own distant
		// windows, not in the early capacity the others are contending for).
		start := int64(i * 61 % bwWindowNS)
		if i%16 == 15 {
			start = int64(10*bwWindowNS) + int64(i)
		}
		c := NewClockAt(start)
		clocks[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Transfer(c, perTransfer)
		}()
	}
	wg.Wait()

	var ledger int64
	for w, ns := range b.win {
		if ns < 0 || ns > bwWindowNS {
			t.Fatalf("window %d carries %d ns, outside [0, %d]", w, ns, int64(bwWindowNS))
		}
		ledger += ns
	}
	if want := int64(transfers * perTransfer); ledger != want {
		t.Fatalf("ledger total = %d ns, want %d (conservation)", ledger, want)
	}
	if got, want := b.TotalBytes(), int64(transfers*perTransfer); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	for i, c := range clocks {
		start := int64(i * 61 % bwWindowNS)
		if i%16 == 15 {
			start = int64(10*bwWindowNS) + int64(i)
		}
		adv := c.Now() - start
		if adv < perTransfer {
			t.Fatalf("clock %d advanced %d ns, want >= %d", i, adv, perTransfer)
		}
	}
}
