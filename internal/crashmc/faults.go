package crashmc

import (
	"fmt"
	"math/rand"
	"sort"

	"zofs/internal/fslibs"
	"zofs/internal/kernfs"
	"zofs/internal/obsfs"
	"zofs/internal/pmemtrace"
	"zofs/internal/proc"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

// FaultReport summarizes one injected-fault campaign. Unlike the crash
// exploration — whose workload never misbehaves — injected faults are
// EXPECTED to make survivors see errors; the invariants here are about
// degradation shape: errors instead of panics, detection by recovery, and
// a usable file system afterwards.
type FaultReport struct {
	Mode  string `json:"mode"` // bitflip | lease | slotless
	Flips int    `json:"flips,omitempty"`

	// Survivor behavior while the damage is live.
	SurvivorOps    int `json:"survivor_ops"`
	SurvivorErrors int `json:"survivor_errors"`
	SurvivorPanics int `json:"survivor_panics"` // must stay 0

	// Recovery behavior.
	Detected      bool `json:"detected"` // fsck found and repaired the damage
	Repairs       int  `json:"repairs"`
	LeasesCleared int  `json:"leases_cleared"`

	// Lease-campaign assertions.
	LeaseStolen        bool `json:"lease_stolen,omitempty"`
	LiveLeaseRespected bool `json:"live_lease_respected,omitempty"`

	// Slotless-campaign accounting.
	StrandedPages  int64 `json:"stranded_pages,omitempty"`  // doomed process's cached batch at crash
	PagesReclaimed int64 `json:"pages_reclaimed,omitempty"` // recovery's reclaim across all coffers
}

// RunFaults executes one injected-fault campaign ("bitflip" or "lease")
// against a ZoFS personality and returns the campaign report plus any
// violated degradation invariants.
func RunFaults(cfg Config, mode string) (*FaultReport, []Violation, error) {
	cfg.fill()
	p, err := lookup(cfg.System)
	if err != nil {
		return nil, nil, err
	}
	if !p.zofs {
		return nil, nil, fmt.Errorf("crashmc: fault campaigns need a ZoFS personality, not %s", cfg.System)
	}
	switch mode {
	case "bitflip":
		return runBitflip(p, cfg)
	case "lease":
		return runLease(p, cfg)
	case "slotless":
		return runSlotless(p, cfg)
	}
	return nil, nil, fmt.Errorf("crashmc: unknown fault mode %q (have bitflip, lease, slotless)", mode)
}

// runBitflip corrupts metadata bits in live inode pages, then asserts the
// two halves of graceful degradation: survivors driving the damaged image
// through FSLibs get errors — never panics — and offline recovery detects
// and repairs the corruption, converging to a usable file system.
func runBitflip(p *personality, cfg Config) (*FaultReport, []Violation, error) {
	rep := &FaultReport{Mode: "bitflip", Flips: cfg.Flips}
	var viols []Violation
	fail := func(invariant, detail string) {
		viols = append(viols, Violation{Model: "bitflip", Invariant: invariant, Detail: detail})
	}

	st, err := p.build(cfg.DeviceBytes)
	if err != nil {
		return nil, nil, err
	}
	ops := GenWorkload(cfg.Seed, cfg.Ops)
	if res := runOps(st.fs, st.th, ops); res.err != nil || res.crashed {
		return nil, nil, fmt.Errorf("crashmc: bitflip setup workload: err=%v crashed=%v", res.err, res.crashed)
	}
	o := oracleAfter(ops, len(ops))
	paths := make([]string, 0, len(o.files))
	for path := range o.files {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	// Collect the live inode pages (magic-tagged metadata) across every
	// coffer; those are the flip targets.
	var inodePages []int64
	for _, id := range st.k.Coffers() {
		for _, e := range st.k.ExtentsOf(id) {
			for pg := e.Start; pg < e.End(); pg++ {
				if pg != int64(id) && zofs.IsInodePage(st.dev, pg) {
					inodePages = append(inodePages, pg)
				}
			}
		}
	}
	if len(inodePages) == 0 {
		return nil, nil, fmt.Errorf("crashmc: no inode pages found to corrupt")
	}
	sort.Slice(inodePages, func(i, j int) bool { return inodePages[i] < inodePages[j] })

	// Flip bits in inode headers. The first flip lands in the magic word
	// of a file the workload actually references, guaranteeing damage the
	// fsck traversal must detect; the rest hit seeded header offsets.
	rng := rand.New(rand.NewSource(cfg.Seed))
	fi, err := st.fs.Stat(st.th, paths[0])
	if err != nil {
		return nil, nil, err
	}
	zofs.FlipBit(st.dev, fi.Inode*int64(pmemtrace.PageSize), uint(rng.Intn(8)))
	for i := 1; i < cfg.Flips; i++ {
		pg := inodePages[rng.Intn(len(inodePages))]
		off := int64(rng.Intn(zofs.InodeHeaderLen))
		zofs.FlipBit(st.dev, pg*int64(pmemtrace.PageSize)+off, uint(rng.Intn(8)))
	}

	// Survivors: a fresh process drives the damaged image through FSLibs,
	// whose guard layer must turn MPK/media faults into errors.
	th2 := proc.NewProcess(st.dev, 0, 0).NewThread()
	lib, err := fslibs.Mount(st.k, th2, fslibs.Options{})
	if err != nil {
		return nil, nil, err
	}
	for _, path := range paths {
		rep.SurvivorOps++
		func() {
			defer func() {
				if r := recover(); r != nil {
					rep.SurvivorPanics++
					fail("graceful", fmt.Sprintf("survivor panicked reading %s: %v", path, r))
				}
			}()
			fd, err := lib.Open(th2, path, vfs.O_RDONLY, 0)
			if err != nil {
				rep.SurvivorErrors++
				return
			}
			defer lib.Close(th2, fd)
			if _, err := lib.Pread(th2, fd, make([]byte, 4096), 0); err != nil {
				rep.SurvivorErrors++
			}
		}()
	}

	// Detection: offline recovery over the corrupt image must find it.
	zofs.ResetShared(st.dev)
	k2, err := kernfs.Mount(st.dev)
	if err != nil {
		return nil, nil, err
	}
	th3 := proc.NewProcess(st.dev, 0, 0).NewThread()
	if err := k2.FSMount(th3); err != nil {
		return nil, nil, err
	}
	stats, err := zofs.FsckAll(k2, th3)
	if err != nil {
		fail("detection", fmt.Sprintf("fsck errored on the corrupt image: %v", err))
		return rep, viols, nil
	}
	for _, s := range stats {
		rep.Repairs += len(s.Repairs)
		rep.LeasesCleared += s.LeasesCleared
	}
	rep.Detected = rep.Repairs > 0
	if !rep.Detected {
		fail("detection", fmt.Sprintf("%d injected bit flips produced zero fsck repairs", cfg.Flips))
	}
	stats2, err := zofs.FsckAll(k2, th3)
	if err != nil {
		fail("fsck_fixpoint", err.Error())
	} else {
		for _, s := range stats2 {
			if len(s.Repairs) > 0 {
				fail("fsck_fixpoint", fmt.Sprintf("second fsck pass still repaired %d sites", len(s.Repairs)))
				break
			}
		}
	}
	// The repaired file system must accept new work.
	func() {
		defer func() {
			if r := recover(); r != nil {
				fail("usability", fmt.Sprintf("post-repair probe panicked: %v", r))
			}
		}()
		f2 := zofs.New(k2, p.opts)
		h, err := f2.Create(th3, "/crashmc.probe", 0o600)
		if err != nil {
			fail("usability", fmt.Sprintf("post-repair create: %v", err))
			return
		}
		if _, err := h.WriteAt(th3, opData(&Op{Len: 3000, Seed: 7}), 0); err != nil {
			fail("usability", fmt.Sprintf("post-repair write: %v", err))
		}
		h.Close(th3)
	}()
	return rep, viols, nil
}

// runLease models dead lease holders (§5.2): a process dies holding an
// allocator pool-slot lease and an inode lease. Survivors must steal the
// expired slot lease via CAS and keep respecting a live foreign one, and
// recovery must clear whatever leases remain.
func runLease(p *personality, cfg Config) (*FaultReport, []Violation, error) {
	rep := &FaultReport{Mode: "lease"}
	var viols []Violation
	fail := func(invariant, detail string) {
		viols = append(viols, Violation{Model: "lease", Invariant: invariant, Detail: detail})
	}

	st, err := p.build(cfg.DeviceBytes)
	if err != nil {
		return nil, nil, err
	}
	ops := GenWorkload(cfg.Seed, cfg.Ops)
	if res := runOps(st.fs, st.th, ops); res.err != nil || res.crashed {
		return nil, nil, fmt.Errorf("crashmc: lease setup workload: err=%v crashed=%v", res.err, res.crashed)
	}
	o := oracleAfter(ops, len(ops))
	var victim string
	for path := range o.files {
		if victim == "" || path < victim {
			victim = path
		}
	}
	rp, ok := st.k.Info(st.k.RootCoffer())
	if !ok {
		return nil, nil, fmt.Errorf("crashmc: root coffer has no info")
	}
	now := st.th.Clk.Now()

	// The "dead" process: an expired lease on slot 0 (stealable), a live
	// foreign lease on slot 1 (must be respected), and an inode lease on a
	// workload file (recovery must clear it).
	const deadTID = 4093
	zofs.PlantSlotLease(st.dev, rp.Custom, 0, deadTID, 1)
	liveExpiry := now + 1_000_000_000_000 // far beyond any survivor's clock
	zofs.PlantSlotLease(st.dev, rp.Custom, 1, deadTID+1, liveExpiry)
	vfi, err := st.fs.Stat(st.th, victim)
	if err != nil {
		return nil, nil, err
	}
	zofs.PlantInodeLease(st.dev, vfi.Inode, deadTID, liveExpiry)

	// Survivor: a fresh process allocates; claiming walks the pool in slot
	// order, so it must steal the expired slot 0 and skip live slot 1.
	th2 := proc.NewProcess(st.dev, 0, 0).NewThread()
	if err := st.k.FSMount(th2); err != nil {
		return nil, nil, err
	}
	f2 := zofs.New(st.k, p.opts)
	for i := 0; i < 4; i++ {
		rep.SurvivorOps++
		h, err := f2.Create(th2, fmt.Sprintf("/lease%d", i), 0o644)
		if err != nil {
			rep.SurvivorErrors++
			fail("graceful", fmt.Sprintf("survivor create %d failed under dead leases: %v", i, err))
			continue
		}
		if _, err := h.WriteAt(th2, opData(&Op{Len: 5000, Seed: uint32(i)}), 0); err != nil {
			rep.SurvivorErrors++
			fail("graceful", fmt.Sprintf("survivor write %d failed under dead leases: %v", i, err))
		}
		h.Close(th2)
	}
	if tid, _ := zofs.SlotLease(st.dev, rp.Custom, 0); tid == th2.TID&0xffff {
		rep.LeaseStolen = true
	} else {
		fail("lease_steal", fmt.Sprintf("expired slot 0 lease not stolen by survivor tid %d (held by %d)",
			th2.TID&0xffff, tid))
	}
	if tid, expiry := zofs.SlotLease(st.dev, rp.Custom, 1); tid == deadTID+1 && expiry == liveExpiry {
		rep.LiveLeaseRespected = true
	} else {
		fail("lease_respect", fmt.Sprintf("live foreign lease on slot 1 was overwritten (tid=%d expiry=%d)",
			tid, expiry))
	}

	// Recovery over the image clears every remaining lease, including the
	// dead holder's inode lease.
	zofs.ResetShared(st.dev)
	k2, err := kernfs.Mount(st.dev)
	if err != nil {
		return nil, nil, err
	}
	th3 := proc.NewProcess(st.dev, 0, 0).NewThread()
	if err := k2.FSMount(th3); err != nil {
		return nil, nil, err
	}
	stats, err := zofs.FsckAll(k2, th3)
	if err != nil {
		fail("detection", fmt.Sprintf("fsck over dead leases: %v", err))
		return rep, viols, nil
	}
	for _, s := range stats {
		rep.Repairs += len(s.Repairs)
		rep.LeasesCleared += s.LeasesCleared
	}
	rep.Detected = rep.LeasesCleared > 0
	if rep.LeasesCleared == 0 {
		fail("lease_clear", "recovery cleared no leases despite planted dead holders")
	}
	if tid, expiry := zofs.InodeLease(st.dev, vfi.Inode); tid != 0 || expiry != 0 {
		fail("lease_clear", fmt.Sprintf("dead holder's inode lease survived recovery (tid=%d expiry=%d)", tid, expiry))
	}
	for slot := 0; slot < zofs.PoolSlots(); slot++ {
		if tid, expiry := zofs.SlotLease(st.dev, rp.Custom, slot); tid != 0 || expiry != 0 {
			fail("lease_clear", fmt.Sprintf("slot %d lease survived recovery (tid=%d expiry=%d)", slot, tid, expiry))
			break
		}
	}
	return rep, viols, nil
}

// runSlotless exercises the allocator's slotless fallback (§5.2) dying at
// its worst moment. Every pool slot is first leased to a live foreign
// holder, so a fresh "doomed" process must allocate slotless: straight from
// a volatile batch cache refilled by whole kernel grants, never touching a
// slot. The doomed process then crashes with the tail of its last grant
// unconsumed — those pages are tagged to the coffer in the kernel's
// persistent allocation table but referenced by nothing on NVM, the exact
// window between slotless grant and first use. Recovery's in-use traversal
// must hand every stranded page back to the kernel while keeping every page
// the doomed process did publish, and the three-way space accounting must
// reconcile afterwards (space_conserved).
func runSlotless(p *personality, cfg Config) (*FaultReport, []Violation, error) {
	rep := &FaultReport{Mode: "slotless"}
	var viols []Violation
	fail := func(invariant, detail string) {
		viols = append(viols, Violation{Model: "slotless", Invariant: invariant, Detail: detail})
	}
	step := func(invariant string, fn func()) {
		defer func() {
			if r := recover(); r != nil {
				fail(invariant, fmt.Sprint(r))
			}
		}()
		fn()
	}

	st, err := p.build(cfg.DeviceBytes)
	if err != nil {
		return nil, nil, err
	}
	ops := GenWorkload(cfg.Seed, cfg.Ops)
	if res := runOps(st.fs, st.th, ops); res.err != nil || res.crashed {
		return nil, nil, fmt.Errorf("crashmc: slotless setup workload: err=%v crashed=%v", res.err, res.crashed)
	}
	o := oracleAfter(ops, len(ops))
	inner := st.fs
	if w, ok := inner.(*obsfs.FS); ok { // obsfs only wraps when observability is on
		inner = w.Unwrap()
	}
	setupFS, ok := inner.(*zofs.FS)
	if !ok {
		return nil, nil, fmt.Errorf("crashmc: slotless campaign needs a raw ZoFS stack")
	}
	root := st.k.RootCoffer()
	rp, ok := st.k.Info(root)
	if !ok {
		return nil, nil, fmt.Errorf("crashmc: root coffer has no info")
	}

	// Exhaust the pool: every slot leased to a distinct live foreign holder
	// far beyond any survivor's clock. The doomed process has no slot to
	// claim or steal — slotFor must fail ErrNoSpace and alloc go slotless.
	const foreignBase = 4001
	liveExpiry := st.th.Clk.Now() + 1_000_000_000_000
	for slot := 0; slot < zofs.PoolSlots(); slot++ {
		zofs.PlantSlotLease(st.dev, rp.Custom, slot, foreignBase+slot, liveExpiry)
	}

	// Doomed process: created files must succeed with zero free slots —
	// slotless service is graceful degradation, not an error path.
	th2 := proc.NewProcess(st.dev, 0, 0).NewThread()
	if err := st.k.FSMount(th2); err != nil {
		return nil, nil, err
	}
	f2 := zofs.New(st.k, p.opts)
	doomed := map[string][]byte{}
	for i := 0; i < 4; i++ {
		rep.SurvivorOps++
		path := fmt.Sprintf("/slotless%d", i)
		data := opData(&Op{Len: 9000, Seed: uint32(100 + i)})
		func() {
			defer func() {
				if r := recover(); r != nil {
					rep.SurvivorPanics++
					fail("graceful", fmt.Sprintf("doomed create %s panicked: %v", path, r))
				}
			}()
			h, err := f2.Create(th2, path, 0o644)
			if err != nil {
				rep.SurvivorErrors++
				fail("graceful", fmt.Sprintf("slotless create %s: %v", path, err))
				return
			}
			if _, err := h.WriteAt(th2, data, 0); err != nil {
				rep.SurvivorErrors++
				fail("graceful", fmt.Sprintf("slotless write %s: %v", path, err))
			}
			h.Close(th2)
			doomed[path] = data
		}()
	}

	// The fallback must not have touched the pool: every slot still carries
	// the planted foreign lease, untouched by the doomed thread.
	for slot := 0; slot < zofs.PoolSlots(); slot++ {
		if tid, _ := zofs.SlotLease(st.dev, rp.Custom, slot); tid != foreignBase+slot {
			fail("slotless_bypass", fmt.Sprintf(
				"slot %d lease changed to tid %d: doomed thread claimed a slot instead of going slotless", slot, tid))
			break
		}
	}

	// Crash accounting, taken the instant before the simulated death: the
	// unconsumed tail of the doomed process's kernel grants lives only in
	// its DRAM batch caches.
	strandedDoomed, strandedSetup, freeListed := int64(0), int64(0), int64(0)
	for _, cs := range f2.SpaceReport() {
		strandedDoomed += cs.Cached
		freeListed += cs.FreeListed
	}
	for _, cs := range setupFS.SpaceReport() {
		strandedSetup += cs.Cached
	}
	rep.StrandedPages = strandedDoomed
	if strandedDoomed == 0 {
		fail("slotless_setup", "doomed process crashed with no stranded batch pages — the campaign tested nothing")
	}
	freeAtCrash := st.k.FreePages()

	// The crash: both processes die (their caches evaporate), the machine
	// reboots, and offline recovery walks every coffer.
	zofs.ResetShared(st.dev)
	k2, err := kernfs.Mount(st.dev)
	if err != nil {
		return nil, nil, err
	}
	th3 := proc.NewProcess(st.dev, 0, 0).NewThread()
	if err := k2.FSMount(th3); err != nil {
		return nil, nil, err
	}
	stats, err := zofs.FsckAll(k2, th3)
	if err != nil {
		fail("detection", fmt.Sprintf("fsck over stranded grants: %v", err))
		return rep, viols, nil
	}
	for _, s := range stats {
		rep.Repairs += len(s.Repairs)
		rep.LeasesCleared += s.LeasesCleared
		rep.PagesReclaimed += s.PagesReclaimed
	}
	rep.Detected = rep.PagesReclaimed >= strandedDoomed

	// Exact reclaim: what recovery hands back is precisely the pages no
	// inode references — both processes' stranded caches plus the persistent
	// free-list chains it resets. One page more means data loss, one page
	// less means a leak.
	want := strandedDoomed + strandedSetup + freeListed
	if rep.PagesReclaimed != want {
		fail("reclaim_exact", fmt.Sprintf(
			"recovery reclaimed %d pages, want %d (doomed cache %d + setup cache %d + free-listed %d)",
			rep.PagesReclaimed, want, strandedDoomed, strandedSetup, freeListed))
	}
	if free := k2.FreePages(); free != freeAtCrash+rep.PagesReclaimed {
		fail("free_conserved", fmt.Sprintf(
			"kernel free pages %d after recovery, want %d (%d at crash + %d reclaimed)",
			free, freeAtCrash+rep.PagesReclaimed, freeAtCrash, rep.PagesReclaimed))
	}

	// space_conserved: the three-way reconciliation (allocation table vs
	// extent trees vs page census) must hold on the recovered image.
	f3 := zofs.New(k2, p.opts)
	step("space_conserved", func() {
		if err := f3.VerifySpace(); err != nil {
			panic(err)
		}
		for _, cs := range f3.SpaceReport() {
			if cs.Used < 0 || cs.FreeListed+cs.Cached > cs.Pages {
				panic(fmt.Sprintf("coffer %d space rows inconsistent: pages=%d used=%d free_listed=%d cached=%d",
					cs.ID, cs.Pages, cs.Used, cs.FreeListed, cs.Cached))
			}
		}
	})

	// Durability: reclaiming the stranded tail must not have swallowed any
	// published page — neither the setup workload's files nor the pages the
	// doomed process consumed from its grants before dying.
	for path, want := range o.files {
		path, want := path, want
		step("durability", func() { checkExactFile(f3, th3, path, want) })
	}
	for path, want := range doomed {
		path, want := path, want
		step("durability", func() { checkExactFile(f3, th3, path, want) })
	}
	return rep, viols, nil
}
