package crashmc

import (
	"fmt"

	"zofs/internal/nvm"
	"zofs/internal/pmemtrace"
	"zofs/internal/spans"
)

// Edge selects which side of a persistence point the crash fires on.
// EdgeAfter crashes once the k-th persisting store's effect (including its
// implied fence) has landed — the classic FailAfter boundary. EdgeBefore
// crashes as the k-th persisting store begins, before any effect: the
// interrupted epoch's dirty cachelines are still pending, which is the
// only place the subset and torn media models can bite on systems that
// flush immediately after writing.
type Edge string

const (
	EdgeAfter  Edge = "after"
	EdgeBefore Edge = "before"
)

// Model selects what the media does to dirty cachelines at the crash.
type Model string

const (
	// ModelDrop reverts every dirty line to its last persisted content
	// (the most pessimistic cache model).
	ModelDrop Model = "drop"
	// ModelSubset persists a pseudo-random subset of dirty lines whole
	// (reordered cache writeback).
	ModelSubset Model = "subset"
	// ModelTorn persists a pseudo-random subset of each dirty line's
	// 8-byte words (torn stores below the atomic-write grain).
	ModelTorn Model = "torn"
)

// Config parameterizes one model-checking run.
type Config struct {
	System      string  `json:"system"`
	Seed        int64   `json:"seed"`
	Ops         int     `json:"ops"`    // workload length
	Points      int     `json:"points"` // crash points to sample (0 = all)
	Models      []Model `json:"models"`
	Edges       []Edge  `json:"edges"`
	DeviceBytes int64   `json:"device_bytes"`
	Flips       int     `json:"flips"` // bit flips for the bitflip campaign
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Ops <= 0 {
		c.Ops = 30
	}
	if len(c.Models) == 0 {
		c.Models = []Model{ModelDrop, ModelSubset, ModelTorn}
	}
	if len(c.Edges) == 0 {
		c.Edges = []Edge{EdgeAfter, EdgeBefore}
	}
	if c.DeviceBytes <= 0 {
		c.DeviceBytes = 64 << 20
	}
	if c.Flips <= 0 {
		c.Flips = 8
	}
}

// Violation is one invariant failure in one crash state.
type Violation struct {
	Point     int64  `json:"point"`
	Edge      Edge   `json:"edge"`
	Model     Model  `json:"model"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[point %d %s %s] %s: %s", v.Point, v.Edge, v.Model, v.Invariant, v.Detail)
}

// Report is the model checker's verdict over one configuration.
type Report struct {
	Config         Config           `json:"config"`
	WorkloadPoints int64            `json:"workload_points"` // persisting stores in the workload window
	Points         []int64          `json:"points"`          // sampled crash points
	States         int              `json:"states"`          // crash states explored
	DirtyStates    int              `json:"dirty_states"`    // states with >0 dirty lines at crash
	MaxDirtyLines  int              `json:"max_dirty_lines"`
	LinesReverted  int64            `json:"lines_reverted"`
	LinesPersisted int64            `json:"lines_persisted"`
	LinesTorn      int64            `json:"lines_torn"`
	Repairs        int64            `json:"repairs"`
	RepairsByKind  map[string]int64 `json:"repairs_by_kind,omitempty"`
	Violations     []Violation      `json:"violations"`
	Fault          *FaultReport     `json:"fault,omitempty"`
}

// fateHash is a deterministic mixer over (seed, point, line): the media
// model's per-line fate must be a pure function of the line offset so the
// materialized image does not depend on dirty-map iteration order.
func fateHash(seed, point, line int64) uint64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(point)*0xBF58476D1CE4E5B9 ^ uint64(line)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// fateFor builds the per-line media fate for one crash state.
func fateFor(model Model, seed, point int64) func(int64) nvm.LineFate {
	switch model {
	case ModelSubset:
		return func(line int64) nvm.LineFate {
			return nvm.LineFate{Persist: fateHash(seed, point, line)&1 == 0}
		}
	case ModelTorn:
		return func(line int64) nvm.LineFate {
			h := fateHash(seed, point, line)
			if h&3 != 0 { // 3 in 4 dirty lines persist a torn word subset
				return nvm.LineFate{TornMask: uint8(h >> 8)}
			}
			return nvm.LineFate{}
		}
	default:
		return nil // ModelDrop: CrashMediated's default reverts everything
	}
}

// samplePoints picks want crash points evenly across [1, total] (all of
// them when want is 0 or exceeds total), always including both ends.
func samplePoints(total int64, want int) []int64 {
	if want <= 0 || int64(want) >= total {
		pts := make([]int64, 0, total)
		for k := int64(1); k <= total; k++ {
			pts = append(pts, k)
		}
		return pts
	}
	if want == 1 {
		return []int64{(total + 1) / 2}
	}
	pts := make([]int64, 0, want)
	last := int64(0)
	for i := 0; i < want; i++ {
		k := 1 + int64(i)*(total-1)/int64(want-1)
		if k != last {
			pts = append(pts, k)
			last = k
		}
	}
	return pts
}

// Explore runs the full campaign: enumerate the workload's persistence
// points, then for every sampled (point, edge, model) triple build a fresh
// stack, crash it there, materialize the post-crash image and check the
// personality's invariants. It manages the process-global pmemtrace
// recorder (one fresh ring per state) and disables it on return.
func Explore(cfg Config) (*Report, error) {
	cfg.fill()
	p, err := lookup(cfg.System)
	if err != nil {
		return nil, err
	}
	ops := GenWorkload(cfg.Seed, cfg.Ops)
	rep := &Report{Config: cfg, RepairsByKind: map[string]int64{}}
	defer pmemtrace.Disable()

	// Enumeration: one uninterrupted run counts the workload's persisting
	// stores. FailAfter/FailAtStart reset the device's store counter when
	// armed, so a point k in [1, N] lands on the same store every replay.
	pmemtrace.Enable(pmemtrace.Config{RingCap: 1 << 18})
	st, err := p.build(cfg.DeviceBytes)
	if err != nil {
		return nil, fmt.Errorf("crashmc: build %s: %w", cfg.System, err)
	}
	base := st.dev.WriteCount()
	res := runOps(st.fs, st.th, ops)
	if res.err != nil {
		return nil, fmt.Errorf("crashmc: enumeration run: %w", res.err)
	}
	if res.crashed {
		return nil, fmt.Errorf("crashmc: enumeration run crashed with no fault armed")
	}
	rep.WorkloadPoints = st.dev.WriteCount() - base
	if rep.WorkloadPoints < 2 {
		return nil, fmt.Errorf("crashmc: workload performed only %d persisting stores", rep.WorkloadPoints)
	}
	rep.Points = samplePoints(rep.WorkloadPoints, cfg.Points)

	for _, k := range rep.Points {
		for _, edge := range cfg.Edges {
			for _, model := range cfg.Models {
				exploreOne(p, cfg, ops, k, edge, model, rep)
			}
		}
	}
	return rep, nil
}

// exploreOne materializes and checks a single crash state.
func exploreOne(p *personality, cfg Config, ops []Op, point int64, edge Edge, model Model, rep *Report) {
	rep.States++
	fail := func(invariant, detail string) {
		rep.Violations = append(rep.Violations, Violation{
			Point: point, Edge: edge, Model: model, Invariant: invariant, Detail: detail})
	}
	rec := pmemtrace.Enable(pmemtrace.Config{RingCap: 1 << 18})
	st, err := p.build(cfg.DeviceBytes)
	if err != nil {
		fail("setup", err.Error())
		return
	}
	if edge == EdgeBefore {
		st.dev.FailAtStart(point)
	} else {
		st.dev.FailAfter(point)
	}
	res := runOps(st.fs, st.th, ops)
	st.dev.FailAfter(0)
	if res.err != nil {
		fail("workload", res.err.Error())
		return
	}
	if !res.crashed {
		fail("determinism", fmt.Sprintf(
			"workload finished before point %d of %d: replay diverged from enumeration", point, rep.WorkloadPoints))
		return
	}

	// Span hygiene: the crash unwound the interrupted op's stack, and every
	// span must have been closed on the way up — a leaked root means a layer
	// skipped its deferred close, a double-close means one ran twice.
	if col := spans.Active(); col != nil {
		if open := col.OpenRoots(); open != 0 {
			fail("span_leak", fmt.Sprintf("%d root spans still open after crash at point %d unwound", open, point))
		}
		if dc := col.DoubleCloses(); dc != 0 {
			fail("span_leak", fmt.Sprintf("%d spans closed twice after crash at point %d", dc, point))
		}
	}

	outcome := st.dev.CrashMediated(fateFor(model, cfg.Seed, point))
	dirty := len(outcome.Reverted) + len(outcome.Persisted) + len(outcome.Torn)
	if dirty > 0 {
		rep.DirtyStates++
	}
	if dirty > rep.MaxDirtyLines {
		rep.MaxDirtyLines = dirty
	}
	rep.LinesReverted += int64(len(outcome.Reverted))
	rep.LinesPersisted += int64(len(outcome.Persisted))
	rep.LinesTorn += int64(len(outcome.Torn))
	if p.allNT && dirty != 0 {
		fail("all_nt", fmt.Sprintf("%d dirty cachelines at crash on an all-NT system", dirty))
	}

	// Auditor fidelity: the flight recorder's replay of its own event
	// stream must see exactly the dirty lines the device reverted or
	// mediated — a disagreement means one of the two persistence models
	// drifted.
	if rec.Dropped() > 0 {
		fail("trace", fmt.Sprintf("flight recorder ring overflowed (%d events dropped)", rec.Dropped()))
		return
	}
	audit := pmemtrace.Audit(rec.Events(), nil)
	auditLines := map[int64]bool{}
	for _, l := range audit.LostLines {
		auditLines[l.Line] = true
	}
	outcomeLines := map[int64]bool{}
	for _, set := range [][]int64{outcome.Reverted, outcome.Persisted, outcome.Torn} {
		for _, l := range set {
			outcomeLines[l] = true
		}
	}
	if len(auditLines) != len(outcomeLines) {
		fail("audit_fidelity", fmt.Sprintf(
			"auditor saw %d dirty lines at crash, device mediated %d", len(auditLines), len(outcomeLines)))
	} else {
		for l := range outcomeLines {
			if !auditLines[l] {
				fail("audit_fidelity", fmt.Sprintf("device line %#x dirty at crash but absent from audit", l))
				break
			}
		}
	}

	if p.zofs {
		checkZoFS(p, st.dev, ops, res, audit, fail, rep)
	} else {
		checkBaselineMedia(st.dev, ops, res, fail)
	}
}
