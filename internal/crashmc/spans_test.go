package crashmc

import (
	"testing"

	"zofs/internal/spans"
)

// TestSpanHygieneAcrossCrashes runs a full crash campaign with span
// collection on. Every explored state injects a crash mid-op, unwinds the
// workload through the span-instrumented wrapper, then remounts and fscks
// the image on fresh threads — so this sweep is the span layer's lifecycle
// torture test: every root span must close exactly once on unwinding, and
// remount/recovery must not resurrect or leak any.
func TestSpanHygieneAcrossCrashes(t *testing.T) {
	prev := spans.Active()
	col := spans.Enable(spans.Config{})
	defer spans.Install(prev)

	rep, err := Explore(Config{System: "ZoFS", Seed: 3, Ops: 18, Points: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The explorer's own span_leak invariant ran once per crash state; any
	// leak or double-close shows up as a violation.
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.States < 40 {
		t.Fatalf("explored only %d states", rep.States)
	}

	// And the campaign-wide totals agree: everything started was finished.
	if open := col.OpenRoots(); open != 0 {
		t.Errorf("%d root spans still open after the campaign", open)
	}
	if dc := col.DoubleCloses(); dc != 0 {
		t.Errorf("%d spans double-closed during the campaign", dc)
	}
	if col.Finished() == 0 {
		t.Fatal("span collection was on but no spans were recorded — the wrapper is not wired in")
	}
	// Interrupted ops must be visible as aborted/closed spans, not vanish.
	snap := col.Snapshot()
	if snap.Started != snap.Finished {
		t.Errorf("started %d != finished %d", snap.Started, snap.Finished)
	}
}
