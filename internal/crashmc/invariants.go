package crashmc

import (
	"bytes"
	"fmt"

	"zofs/internal/kernfs"
	"zofs/internal/nvm"
	"zofs/internal/pmemtrace"
	"zofs/internal/proc"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

// checkZoFS remounts a crashed ZoFS image, runs recovery and verifies the
// post-crash invariants: fsck converges, repairs cross-check against the
// auditor, completed ops survive verbatim, the in-flight op left one of
// its legal intermediate states, the tree holds no unexpected entries, and
// the file system stays usable. Every step is panic-guarded: a panic
// during post-crash verification is itself a violation, not a test crash.
func checkZoFS(p *personality, dev *nvm.Device, ops []Op, res runResult,
	audit *pmemtrace.Report, fail func(string, string), rep *Report) {
	step := func(name string, fn func()) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				fail(name, fmt.Sprintf("panic during post-crash check: %v", r))
			}
		}()
		fn()
		return true
	}

	zofs.ResetShared(dev)
	// The directory lookup cache must come up cold: a remount that carried
	// a pre-crash index over could serve dentries the crash never
	// persisted. Every post-crash lookup below therefore (re)builds its
	// index from the on-NVM truth.
	step("dcache_cold", func() {
		if n := zofs.DirCacheDirs(dev); n != 0 {
			panic(fmt.Sprintf("directory cache still holds %d indexes at remount", n))
		}
	})
	var k2 *kernfs.KernFS
	var th2 *proc.Thread
	if !step("remount", func() {
		var err error
		k2, err = kernfs.Mount(dev)
		if err != nil {
			panic(err)
		}
		th2 = proc.NewProcess(dev, 0, 0).NewThread()
		if err := k2.FSMount(th2); err != nil {
			panic(err)
		}
	}) || k2 == nil || th2 == nil {
		return
	}

	var repairs []pmemtrace.RepairSite
	if !step("fsck", func() {
		stats, err := zofs.FsckAll(k2, th2)
		if err != nil {
			panic(err)
		}
		for _, st := range stats {
			for _, r := range st.Repairs {
				repairs = append(repairs, pmemtrace.RepairSite{Off: r.Off, Target: r.Target, Kind: r.Kind})
				rep.Repairs++
				rep.RepairsByKind[r.Kind]++
			}
		}
	}) {
		return
	}

	// Fixpoint: a second recovery pass over the repaired image must find
	// nothing left to fix.
	step("fsck_fixpoint", func() {
		stats, err := zofs.FsckAll(k2, th2)
		if err != nil {
			panic(err)
		}
		for _, st := range stats {
			if len(st.Repairs) > 0 || st.LeasesCleared > 0 {
				panic(fmt.Sprintf("second fsck pass repaired %d sites and cleared %d leases",
					len(st.Repairs), st.LeasesCleared))
			}
		}
	})

	// Auditor cross-check: every repair must map to a lost line (or be
	// sequence damage the crash event itself explains).
	for _, d := range pmemtrace.CrossCheck(audit, repairs) {
		fail("cross_check", d)
	}

	f2 := zofs.New(k2, p.opts)

	// Space conservation: after remount and fsck, the allocator's space
	// accounting must reconcile three ways — the kernel's persistent
	// allocation table against its volatile extent trees against a full
	// page census — and every µFS free-list page must sit inside its
	// coffer's grant exactly once. Recovery reclaimed any batch caches the
	// crash stranded, so no page may be unaccounted for.
	step("space_conserved", func() {
		if err := f2.VerifySpace(); err != nil {
			panic(err)
		}
		for _, cs := range f2.SpaceReport() {
			if cs.Used < 0 || cs.FreeListed+cs.Cached > cs.Pages {
				panic(fmt.Sprintf("coffer %d space rows inconsistent: pages=%d used=%d free_listed=%d cached=%d",
					cs.ID, cs.Pages, cs.Used, cs.FreeListed, cs.Cached))
			}
		}
	})

	o := oracleAfter(ops, res.completed)
	var inflight *Op
	if res.completed < len(ops) {
		inflight = &ops[res.completed]
	}

	// Completed-op durability and in-flight legality.
	for path, want := range o.files {
		path, want := path, want
		step("durability", func() {
			if inflight != nil && (path == inflight.Path || path == inflight.Dst) {
				checkInflightFile(f2, th2, path, want, inflight)
				return
			}
			checkExactFile(f2, th2, path, want)
		})
	}
	for dir := range o.dirs {
		dir := dir
		step("durability", func() {
			fi, err := f2.Stat(th2, dir)
			if err != nil {
				panic(fmt.Sprintf("completed mkdir %s lost: %v", dir, err))
			}
			if fi.Type != vfs.TypeDir {
				panic(fmt.Sprintf("%s is %v, want directory", dir, fi.Type))
			}
		})
	}
	if inflight != nil {
		step("inflight", func() { checkInflightNew(f2, th2, inflight) })
	}

	// Tree consistency: walk the whole namespace; every entry must be
	// explained by the oracle or the in-flight op (no leaked entries), and
	// the walk itself must not trip over dangling structure.
	step("tree_walk", func() {
		allowed := map[string]bool{}
		for p := range o.files {
			allowed[p] = true
		}
		for p := range o.dirs {
			allowed[p] = true
		}
		if inflight != nil {
			allowed[inflight.Path] = true
			if inflight.Dst != "" {
				allowed[inflight.Dst] = true
			}
		}
		var walk func(dir string)
		walk = func(dir string) {
			ents, err := f2.ReadDir(th2, dir)
			if err != nil {
				panic(fmt.Sprintf("readdir %s: %v", dir, err))
			}
			for _, e := range ents {
				p := vfs.Join(dir, e.Name)
				if !allowed[p] {
					panic(fmt.Sprintf("leaked namespace entry %s (%v) not explained by any op", p, e.Type))
				}
				if e.Type == vfs.TypeDir {
					walk(p)
				}
			}
		}
		walk("/")
	})

	// Usability: the recovered file system must accept new work.
	step("usability", func() {
		const probe = "/crashmc.probe"
		h, err := f2.Create(th2, probe, 0o600)
		if err != nil {
			panic(fmt.Sprintf("post-recovery create: %v", err))
		}
		data := opData(&Op{Len: 5000, Seed: 0xC0FFEE})
		if _, err := h.WriteAt(th2, data, 0); err != nil {
			panic(fmt.Sprintf("post-recovery write: %v", err))
		}
		buf := make([]byte, len(data))
		if _, err := h.ReadAt(th2, buf, 0); err != nil || !bytes.Equal(buf, data) {
			panic(fmt.Sprintf("post-recovery read back: err=%v match=%v", err, bytes.Equal(buf, data)))
		}
		if err := h.Close(th2); err != nil {
			panic(err)
		}
		if err := f2.Unlink(th2, probe); err != nil {
			panic(fmt.Sprintf("post-recovery unlink: %v", err))
		}
	})
}

// checkExactFile asserts a file untouched by the in-flight op survived
// the crash verbatim.
func checkExactFile(fs vfs.FileSystem, th *proc.Thread, path string, want []byte) {
	fi, err := fs.Stat(th, path)
	if err != nil {
		panic(fmt.Sprintf("completed file %s lost: %v", path, err))
	}
	if fi.Type != vfs.TypeRegular {
		panic(fmt.Sprintf("%s is %v, want regular file", path, fi.Type))
	}
	if fi.Size != int64(len(want)) {
		panic(fmt.Sprintf("%s size %d, want %d", path, fi.Size, len(want)))
	}
	got := readAll(fs, th, path, fi.Size)
	if !bytes.Equal(got, want) {
		panic(fmt.Sprintf("%s content diverged at byte %d of %d", path, firstDiff(got, want), len(want)))
	}
}

// checkInflightFile verifies a file the interrupted op was touching is in
// one of that op's legal intermediate states.
func checkInflightFile(fs vfs.FileSystem, th *proc.Thread, path string, want []byte, op *Op) {
	switch op.Kind {
	case OpWrite:
		checkInflightWrite(fs, th, path, want, op)
	case OpRename:
		// Legal states: old name only, both names (new dentry committed,
		// old not yet cleared), new name only. Every present name must
		// read the full pre-op content.
		var present []string
		for _, p := range []string{op.Path, op.Dst} {
			fi, err := fs.Stat(th, p)
			if err != nil {
				continue
			}
			present = append(present, p)
			if fi.Size != int64(len(want)) {
				panic(fmt.Sprintf("mid-rename %s size %d, want %d", p, fi.Size, len(want)))
			}
			if got := readAll(fs, th, p, fi.Size); !bytes.Equal(got, want) {
				panic(fmt.Sprintf("mid-rename %s content diverged at byte %d", p, firstDiff(got, want)))
			}
		}
		if len(present) == 0 {
			panic(fmt.Sprintf("mid-rename %s -> %s: file vanished under both names", op.Path, op.Dst))
		}
	case OpUnlink:
		fi, err := fs.Stat(th, path)
		if err != nil {
			return // fully unlinked: legal
		}
		if got := readAll(fs, th, path, fi.Size); !bytes.Equal(got, want) {
			panic(fmt.Sprintf("mid-unlink %s content diverged at byte %d", path, firstDiff(got, want)))
		}
	default:
		// fsync and metadata-neutral ops: content must be intact.
		checkExactFile(fs, th, path, want)
	}
}

// checkInflightWrite encodes ZoFS's write ordering: data and block
// pointers persist before the size word, so a post-crash file either shows
// the full new size with the full new content, or the old size with every
// overlapped byte holding its old or new value and everything outside the
// write window untouched.
func checkInflightWrite(fs vfs.FileSystem, th *proc.Thread, path string, old []byte, op *Op) {
	fi, err := fs.Stat(th, path)
	if err != nil {
		panic(fmt.Sprintf("mid-write %s lost: %v", path, err))
	}
	newC := applyWrite(old, op)
	if fi.Size != int64(len(old)) && fi.Size != int64(len(newC)) {
		panic(fmt.Sprintf("mid-write %s size %d, want %d or %d", path, fi.Size, len(old), len(newC)))
	}
	got := readAll(fs, th, path, fi.Size)
	if len(newC) > len(old) && fi.Size == int64(len(newC)) {
		// The size word is the write's commit point: once it shows the
		// extended length, all data must be the new content.
		if !bytes.Equal(got, newC) {
			panic(fmt.Sprintf("mid-write %s: size committed but content diverged at byte %d",
				path, firstDiff(got, newC)))
		}
		return
	}
	end := op.Off + int64(op.Len)
	for i := int64(0); i < int64(len(got)); i++ {
		inWindow := i >= op.Off && i < end
		switch {
		case !inWindow && got[i] != old[i]:
			panic(fmt.Sprintf("mid-write %s: byte %d outside the write window changed", path, i))
		case inWindow && got[i] != old[i] && got[i] != newC[i]:
			panic(fmt.Sprintf("mid-write %s: byte %d is neither old nor new data", path, i))
		}
	}
}

// checkInflightNew verifies namespace entries the interrupted op may have
// been creating: they are allowed to exist (empty / correct type) or not.
func checkInflightNew(fs vfs.FileSystem, th *proc.Thread, op *Op) {
	switch op.Kind {
	case OpCreate:
		fi, err := fs.Stat(th, op.Path)
		if err != nil {
			return
		}
		if fi.Type != vfs.TypeRegular || fi.Size != 0 {
			panic(fmt.Sprintf("mid-create %s: type=%v size=%d, want empty regular file", op.Path, fi.Type, fi.Size))
		}
	case OpMkdir:
		fi, err := fs.Stat(th, op.Path)
		if err != nil {
			return
		}
		if fi.Type != vfs.TypeDir {
			panic(fmt.Sprintf("mid-mkdir %s: type=%v, want directory", op.Path, fi.Type))
		}
	}
}

// checkBaselineMedia verifies the baselines' durability story without a
// remount (their namespaces are volatile): every block a completed write
// flushed must still exist somewhere on the device image, whatever the
// media model did to the in-flight op's dirty lines. The engine itself is
// not reused after the crash — the panic may have unwound it mid-lock.
func checkBaselineMedia(dev *nvm.Device, ops []Op, res runResult, fail func(string, string)) {
	o := oracleAfter(ops, res.completed)
	var inflight *Op
	if res.completed < len(ops) {
		inflight = &ops[res.completed]
	}

	// Index every device page by its first 8 bytes, then verify each
	// expected block by prefix comparison against the candidate pages.
	pageSize := int64(pmemtrace.PageSize)
	idx := map[uint64][]int64{}
	buf := make([]byte, pageSize)
	for pg := int64(0); pg < dev.Pages(); pg++ {
		dev.ReadNoCharge(pg*pageSize, buf[:8])
		idx[le64(buf[:8])] = append(idx[le64(buf[:8])], pg)
	}
	for path, want := range o.files {
		if inflight != nil && (path == inflight.Path || path == inflight.Dst) {
			continue // the interrupted op's own blocks have no durability claim
		}
		for off := int64(0); off < int64(len(want)); off += pageSize {
			blk := want[off:min(off+pageSize, int64(len(want)))]
			if len(blk) < 8 {
				continue // too short to identify robustly
			}
			found := false
			for _, pg := range idx[le64(blk[:8])] {
				dev.ReadNoCharge(pg*pageSize, buf[:len(blk)])
				if bytes.Equal(buf[:len(blk)], blk) {
					found = true
					break
				}
			}
			if !found {
				fail("durability", fmt.Sprintf(
					"flushed block %s[%d:%d] not found anywhere on the post-crash image", path, off, off+int64(len(blk))))
			}
		}
	}
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// readAll reads size bytes from a file, panicking (into the step guard)
// on failure.
func readAll(fs vfs.FileSystem, th *proc.Thread, path string, size int64) []byte {
	if size == 0 {
		return nil
	}
	h, err := fs.Open(th, path, vfs.O_RDONLY)
	if err != nil {
		panic(fmt.Sprintf("open %s: %v", path, err))
	}
	defer h.Close(th)
	buf := make([]byte, size)
	n, err := h.ReadAt(th, buf, 0)
	if err != nil && n != len(buf) {
		panic(fmt.Sprintf("read %s: n=%d err=%v", path, n, err))
	}
	return buf[:n]
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
