package crashmc

import (
	"bytes"
	"testing"

	"zofs/internal/pmemtrace"
	"zofs/internal/zofs"
)

// TestGenWorkloadDeterministic: same seed, same script; the oracle replay
// is consistent with the generator's own size tracking (no holes).
func TestGenWorkloadDeterministic(t *testing.T) {
	a := GenWorkload(7, 40)
	b := GenWorkload(7, 40)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	o := oracleAfter(a, len(a))
	if len(o.files) == 0 {
		t.Fatal("workload left no files")
	}
	kinds := map[OpKind]int{}
	for _, op := range a {
		kinds[op.Kind]++
	}
	for _, k := range []OpKind{OpCreate, OpWrite, OpFsync, OpRename} {
		if kinds[k] == 0 {
			t.Fatalf("40-op workload generated no %s ops (got %v)", k, kinds)
		}
	}
}

// TestExploreZoFSClean: a dense sweep over a ZoFS workload must violate
// nothing under any media model on either crash edge, and — ZoFS being
// all-NT — must never see a dirty cacheline.
func TestExploreZoFSClean(t *testing.T) {
	rep, err := Explore(Config{System: "ZoFS", Seed: 3, Ops: 20, Points: 12})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States < 60 { // 12 points (some may dedup) x 2 edges x 3 models
		t.Fatalf("explored only %d states", rep.States)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.DirtyStates != 0 {
		t.Errorf("ZoFS had %d states with dirty lines at crash (all-NT discipline broken)", rep.DirtyStates)
	}
}

// TestExploreZoFSInlineClean covers the inline-data variant's distinct
// write path through the same sweep.
func TestExploreZoFSInlineClean(t *testing.T) {
	rep, err := Explore(Config{System: "ZoFS-inline", Seed: 5, Ops: 14, Points: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestExploreBaseline: Ext4-DAX caches data writes before flushing, so
// the before-edge states must expose dirty lines (the subset/torn models'
// reason to exist) while flushed blocks stay findable on the image.
func TestExploreBaseline(t *testing.T) {
	rep, err := Explore(Config{System: "Ext4-DAX", Seed: 3, Ops: 12, Points: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.DirtyStates == 0 {
		t.Error("Ext4-DAX sweep saw no dirty-at-crash states; the before edge is not biting")
	}
}

// TestBitflipDetected: deliberate metadata corruption must be detected by
// recovery and survived gracefully (errors, not panics).
func TestBitflipDetected(t *testing.T) {
	rep, viols, err := RunFaults(Config{System: "ZoFS", Seed: 11, Ops: 16, Flips: 6}, "bitflip")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("violation: %s", v)
	}
	if !rep.Detected {
		t.Error("injected corruption went undetected")
	}
	if rep.SurvivorPanics != 0 {
		t.Errorf("%d survivor panics", rep.SurvivorPanics)
	}
}

// TestLeaseCampaign: dead-holder leases are stolen when expired, respected
// while live, and cleared by recovery.
func TestLeaseCampaign(t *testing.T) {
	rep, viols, err := RunFaults(Config{System: "ZoFS", Seed: 11, Ops: 16}, "lease")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("violation: %s", v)
	}
	if !rep.LeaseStolen || !rep.LiveLeaseRespected || rep.LeasesCleared == 0 {
		t.Errorf("lease assertions: stolen=%v respected=%v cleared=%d",
			rep.LeaseStolen, rep.LiveLeaseRespected, rep.LeasesCleared)
	}
}

// TestSlotlessCampaign: with every pool slot leased to live foreign
// holders, a doomed process serves itself slotless off volatile batch
// grants and dies with the grant tail unused. Recovery must reclaim
// exactly the stranded pages — no more, no less — and space accounting
// must reconcile on the recovered image.
func TestSlotlessCampaign(t *testing.T) {
	rep, viols, err := RunFaults(Config{System: "ZoFS", Seed: 11, Ops: 16}, "slotless")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viols {
		t.Errorf("violation: %s", v)
	}
	if rep.StrandedPages == 0 {
		t.Error("doomed process stranded no batch pages — slotless path not exercised")
	}
	if !rep.Detected {
		t.Errorf("recovery reclaimed %d pages, fewer than the %d stranded", rep.PagesReclaimed, rep.StrandedPages)
	}
	if rep.SurvivorErrors != 0 || rep.SurvivorPanics != 0 {
		t.Errorf("slotless service not graceful: %d errors, %d panics over %d ops",
			rep.SurvivorErrors, rep.SurvivorPanics, rep.SurvivorOps)
	}
}

// TestDetectsSeededCorruption proves the checker's teeth end to end: hand
// the explorer a crash state and then corrupt a completed file's data
// behind its back — the durability invariant must fire. This guards
// against the checker silently passing everything.
func TestDetectsSeededCorruption(t *testing.T) {
	p, err := lookup("ZoFS")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{System: "ZoFS", Seed: 3, Ops: 16}
	cfg.fill()
	ops := GenWorkload(cfg.Seed, cfg.Ops)
	st, err := p.build(cfg.DeviceBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res := runOps(st.fs, st.th, ops); res.err != nil || res.crashed {
		t.Fatalf("workload: err=%v crashed=%v", res.err, res.crashed)
	}
	o := oracleAfter(ops, len(ops))
	var target string
	for path, c := range o.files {
		if len(c) > 64 && (target == "" || path < target) {
			target = path
		}
	}
	// Locate the file's first data block on the device by content and flip
	// a bit under it, then run the same post-crash checks a crash state
	// would run.
	blk := o.files[target][:min(4096, len(o.files[target]))]
	dataPage := int64(-1)
	buf := make([]byte, len(blk))
	for pg := int64(0); pg < st.dev.Pages(); pg++ {
		st.dev.ReadNoCharge(pg*4096, buf)
		if bytes.Equal(buf, blk) {
			dataPage = pg
			break
		}
	}
	if dataPage < 0 {
		t.Fatalf("data block of %s not found on device", target)
	}
	zofs.FlipBit(st.dev, dataPage*4096+20, 3)

	var viols []Violation
	fail := func(invariant, detail string) {
		viols = append(viols, Violation{Invariant: invariant, Detail: detail})
	}
	rep := &Report{RepairsByKind: map[string]int64{}}
	checkZoFS(p, st.dev, ops, runResult{completed: len(ops), crashed: true},
		&pmemtrace.Report{}, fail, rep)
	found := false
	for _, v := range viols {
		if v.Invariant == "durability" {
			found = true
		}
	}
	if !found {
		t.Fatalf("checker missed seeded data corruption; violations: %v", viols)
	}
}
