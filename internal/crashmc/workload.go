// Package crashmc is a deterministic crash-state model checker for the
// file systems in this repository. It runs a scripted workload on a
// persistence-tracked device, enumerates the workload's persistence points
// from the device's store counter, and at sampled points materializes
// post-crash images under three media models (drop, subset, torn), then
// remounts, recovers and checks invariants: fsynced data survives
// verbatim, the tree stays consistent against a workload oracle, and every
// auditor-reported lost line maps to an fsck repair site. A separate
// fault-injection mode corrupts metadata bits and plants dead-process
// leases, asserting graceful degradation instead of crash consistency.
package crashmc

import (
	"fmt"
	"math/rand"

	"zofs/internal/nvm"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// OpKind enumerates workload operations.
type OpKind uint8

const (
	OpCreate OpKind = iota
	OpMkdir
	OpWrite
	OpFsync
	OpRename
	OpUnlink
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpMkdir:
		return "mkdir"
	case OpWrite:
		return "write"
	case OpFsync:
		return "fsync"
	case OpRename:
		return "rename"
	case OpUnlink:
		return "unlink"
	default:
		return "?"
	}
}

// Op is one scripted workload operation. Write data is derived from Seed,
// never stored, so an oracle can be recomputed for any op prefix.
type Op struct {
	Kind OpKind
	Path string
	Dst  string // rename destination
	Off  int64  // write offset
	Len  int    // write length
	Seed uint32 // write content seed
}

func (op Op) String() string {
	switch op.Kind {
	case OpWrite:
		return fmt.Sprintf("write %s off=%d len=%d", op.Path, op.Off, op.Len)
	case OpRename:
		return fmt.Sprintf("rename %s -> %s", op.Path, op.Dst)
	default:
		return op.Kind.String() + " " + op.Path
	}
}

// GenWorkload builds a deterministic create/write/fsync/rename/unlink
// script of n ops. The generator tracks the namespace it builds so every
// op is valid when executed in order: writes target live files at offsets
// within the current size (no holes), renames move to fresh names,
// unlinks keep a minimum population.
func GenWorkload(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	sizes := map[string]int64{}
	var live []string // deterministic selection order (maps iterate randomly)
	dirs := []string{"/"}
	next := 0
	ops := make([]Op, 0, n)
	for len(ops) < n {
		roll := rng.Intn(100)
		switch {
		case roll < 30 || len(live) == 0:
			d := dirs[rng.Intn(len(dirs))]
			p := vfs.Join(d, fmt.Sprintf("f%03d", next))
			next++
			ops = append(ops, Op{Kind: OpCreate, Path: p})
			sizes[p] = 0
			live = append(live, p)
		case roll < 65:
			p := live[rng.Intn(len(live))]
			off := int64(0)
			if sizes[p] > 0 {
				off = rng.Int63n(sizes[p] + 1)
			}
			ln := 16 + rng.Intn(6000)
			ops = append(ops, Op{Kind: OpWrite, Path: p, Off: off, Len: ln, Seed: rng.Uint32()})
			if off+int64(ln) > sizes[p] {
				sizes[p] = off + int64(ln)
			}
		case roll < 75:
			ops = append(ops, Op{Kind: OpFsync, Path: live[rng.Intn(len(live))]})
		case roll < 82 && len(dirs) < 4:
			p := vfs.Join("/", fmt.Sprintf("d%03d", next))
			next++
			ops = append(ops, Op{Kind: OpMkdir, Path: p})
			dirs = append(dirs, p)
		case roll < 92:
			i := rng.Intn(len(live))
			p := live[i]
			d := dirs[rng.Intn(len(dirs))]
			dst := vfs.Join(d, fmt.Sprintf("r%03d", next))
			next++
			ops = append(ops, Op{Kind: OpRename, Path: p, Dst: dst})
			sizes[dst] = sizes[p]
			delete(sizes, p)
			live[i] = dst
		default:
			if len(live) < 3 {
				continue
			}
			i := rng.Intn(len(live))
			p := live[i]
			ops = append(ops, Op{Kind: OpUnlink, Path: p})
			delete(sizes, p)
			live = append(live[:i], live[i+1:]...)
		}
	}
	return ops
}

// opData regenerates an op's write payload from its seed.
func opData(op *Op) []byte {
	buf := make([]byte, op.Len)
	x := uint64(op.Seed) | 1
	for i := range buf {
		x = x*6364136223846793005 + 1442695040888963407
		buf[i] = byte(x >> 33)
	}
	return buf
}

// oracle is the expected durable namespace and file contents after a
// prefix of the workload.
type oracle struct {
	files map[string][]byte
	dirs  map[string]bool
}

// oracleAfter replays the first n ops of the script into a fresh oracle.
func oracleAfter(ops []Op, n int) *oracle {
	o := &oracle{files: map[string][]byte{}, dirs: map[string]bool{"/": true}}
	for i := 0; i < n; i++ {
		o.apply(&ops[i])
	}
	return o
}

func (o *oracle) apply(op *Op) {
	switch op.Kind {
	case OpCreate:
		o.files[op.Path] = []byte{}
	case OpMkdir:
		o.dirs[op.Path] = true
	case OpWrite:
		o.files[op.Path] = applyWrite(o.files[op.Path], op)
	case OpRename:
		o.files[op.Dst] = o.files[op.Path]
		delete(o.files, op.Path)
	case OpUnlink:
		delete(o.files, op.Path)
	}
}

// applyWrite returns the file content after op lands on cur.
func applyWrite(cur []byte, op *Op) []byte {
	end := op.Off + int64(op.Len)
	out := make([]byte, max(int64(len(cur)), end))
	copy(out, cur)
	copy(out[op.Off:end], opData(op))
	return out
}

// runResult reports how far a workload replay got before the injected
// crash (if any) unwound it.
type runResult struct {
	completed int   // ops that fully finished
	crashed   bool  // an injected crash fired
	err       error // a non-crash op failure (a checker violation)
}

// runOps executes the script in order, stopping at the first error or
// injected crash. Only nvm's injected-crash panic is absorbed; any other
// panic propagates (it would be a bug in the system under test during
// normal operation, not a post-crash state).
func runOps(fs vfs.FileSystem, th *proc.Thread, ops []Op) (res runResult) {
	defer func() {
		if r := recover(); r != nil {
			if nvm.IsInjectedCrash(r) {
				res.crashed = true
				return
			}
			panic(r)
		}
	}()
	for i := range ops {
		if err := execOp(fs, th, &ops[i]); err != nil {
			res.err = fmt.Errorf("op %d (%s): %w", i, ops[i].String(), err)
			return
		}
		res.completed = i + 1
	}
	return
}

func execOp(fs vfs.FileSystem, th *proc.Thread, op *Op) error {
	switch op.Kind {
	case OpCreate:
		h, err := fs.Create(th, op.Path, 0o644)
		if err != nil {
			return err
		}
		return h.Close(th)
	case OpMkdir:
		return fs.Mkdir(th, op.Path, 0o755)
	case OpWrite:
		h, err := fs.Open(th, op.Path, vfs.O_RDWR)
		if err != nil {
			return err
		}
		if _, err := h.WriteAt(th, opData(op), op.Off); err != nil {
			h.Close(th)
			return err
		}
		return h.Close(th)
	case OpFsync:
		h, err := fs.Open(th, op.Path, vfs.O_RDWR)
		if err != nil {
			return err
		}
		if err := h.Sync(th); err != nil {
			h.Close(th)
			return err
		}
		return h.Close(th)
	case OpRename:
		return fs.Rename(th, op.Path, op.Dst)
	case OpUnlink:
		return fs.Unlink(th, op.Path)
	default:
		return fmt.Errorf("crashmc: unknown op kind %d", op.Kind)
	}
}
