package crashmc

import (
	"fmt"

	"zofs/internal/baselines"
	"zofs/internal/kernfs"
	"zofs/internal/nvm"
	"zofs/internal/obsfs"
	"zofs/internal/proc"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

// stack is one freshly-built system under test on a tracked device.
type stack struct {
	dev *nvm.Device
	k   *kernfs.KernFS // nil for the baselines
	fs  vfs.FileSystem
	th  *proc.Thread
}

// personality describes how one file system is built and which post-crash
// checks apply to it.
type personality struct {
	name string
	// zofs systems persist their namespace and are remounted + fscked
	// after each crash; baselines keep a volatile namespace, so only their
	// flushed data blocks and the auditor's view are checked.
	zofs bool
	// allNT systems persist every store non-temporally: the model checker
	// asserts they never have a dirty cacheline at any crash point, which
	// makes the subset and torn media models provably equivalent to drop.
	allNT bool
	opts  zofs.Options
	build func(bytes int64) (*stack, error)
}

// lookup resolves a system name to its crash-test personality.
func lookup(name string) (*personality, error) {
	switch name {
	case "ZoFS":
		return zofsPersonality(name, zofs.Options{}), nil
	case "ZoFS-inline":
		return zofsPersonality(name, zofs.Options{InlineData: true}), nil
	case "ZoFS-copypath":
		return zofsPersonality(name, zofs.Options{NoZeroCopy: true, NoDirCache: true, NoAllocBatch: true}), nil
	case "Ext4-DAX":
		return baselinePersonality(name, func(d *nvm.Device) vfs.FileSystem {
			return baselines.NewExt4DAX(d)
		}), nil
	case "PMFS":
		return baselinePersonality(name, func(d *nvm.Device) vfs.FileSystem {
			return baselines.NewPMFS(d, baselines.PMFSOptions{})
		}), nil
	}
	return nil, fmt.Errorf("crashmc: unknown system %q (have ZoFS, ZoFS-inline, ZoFS-copypath, Ext4-DAX, PMFS)", name)
}

func zofsPersonality(name string, opts zofs.Options) *personality {
	return &personality{name: name, zofs: true, allNT: true, opts: opts,
		build: func(bytes int64) (*stack, error) {
			dev := nvm.New(nvm.Config{Size: bytes, TrackPersistence: true})
			if err := kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755}); err != nil {
				return nil, err
			}
			k, err := kernfs.Mount(dev)
			if err != nil {
				return nil, err
			}
			th := proc.NewProcess(dev, 0, 0).NewThread()
			if err := k.FSMount(th); err != nil {
				return nil, err
			}
			f := zofs.New(k, opts)
			if err := f.EnsureRootDir(th); err != nil {
				return nil, err
			}
			// With span collection active each workload op opens a root span,
			// letting the model checker assert span hygiene (no leaks, no
			// double-closes) across injected crashes; otherwise this is f.
			return &stack{dev: dev, k: k, fs: obsfs.Wrap(f, nil), th: th}, nil
		}}
}

func baselinePersonality(name string, build func(*nvm.Device) vfs.FileSystem) *personality {
	return &personality{name: name,
		build: func(bytes int64) (*stack, error) {
			dev := nvm.New(nvm.Config{Size: bytes, TrackPersistence: true})
			return &stack{dev: dev, fs: build(dev), th: proc.NewProcess(dev, 0, 0).NewThread()}, nil
		}}
}
