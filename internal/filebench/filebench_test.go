package filebench_test

import (
	"testing"

	"zofs/internal/filebench"
	"zofs/internal/sysfactory"
)

const quickNS = 2_000_000

func TestAllPersonalitiesOnZoFS(t *testing.T) {
	for _, p := range filebench.All {
		p := p
		t.Run(string(p), func(t *testing.T) {
			in, err := sysfactory.ZoFS.New(4 << 30)
			if err != nil {
				t.Fatal(err)
			}
			r, err := filebench.Run(in.FS, in.Proc, filebench.Default(p), 2, quickNS)
			if err != nil {
				t.Fatal(err)
			}
			if r.Ops == 0 || r.KopsPerSec <= 0 {
				t.Fatalf("no progress: %+v", r)
			}
		})
	}
}

func TestAllPersonalitiesOnBaselines(t *testing.T) {
	for _, sys := range []sysfactory.System{sysfactory.PMFS, sysfactory.NOVA, sysfactory.Strata, sysfactory.Ext4DAX} {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			for _, p := range filebench.All {
				in, err := sys.New(4 << 30)
				if err != nil {
					t.Fatal(err)
				}
				r, err := filebench.Run(in.FS, in.Proc, filebench.Default(p), 2, quickNS)
				if err != nil {
					t.Fatalf("%s/%s: %v", sys.Name, p, err)
				}
				if r.Ops == 0 {
					t.Fatalf("%s/%s made no progress", sys.Name, p)
				}
			}
		})
	}
}

func TestDirWidthEffectOnZoFS(t *testing.T) {
	// Figure 10(b)/§6.2: reducing varmail's dir width to 20 (deep paths)
	// lowers ZoFS throughput versus the flat default. The effect comes
	// from the scan-based directory lookups the paper describes, so it is
	// pinned on the copy-path variant; the directory cache deliberately
	// flattens it on the default configuration.
	run := func(width int) float64 {
		in, err := sysfactory.ZoFSCopyPath.New(2 << 30)
		if err != nil {
			t.Fatal(err)
		}
		cfg := filebench.Default(filebench.Varmail)
		cfg.DirWidth = width
		r, err := filebench.Run(in.FS, in.Proc, cfg, 2, quickNS)
		if err != nil {
			t.Fatal(err)
		}
		return r.KopsPerSec
	}
	flat := run(1000000)
	deep := run(20)
	if deep >= flat {
		t.Fatalf("deep dirs should be slower on ZoFS: flat=%.1f deep=%.1f kops/s", flat, deep)
	}
}
