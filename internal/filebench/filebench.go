// Package filebench reimplements the four Filebench personalities the
// paper evaluates (Table 6, Figures 9–10): fileserver, webserver, webproxy
// and varmail, with the published parameters (file counts, directory
// widths, mean file sizes, read/write ratios).
//
// Directory width shapes the namespace exactly as in Filebench: a width of
// 1,000,000 puts every file in one flat directory (the webproxy/varmail
// configuration whose huge directories separate ZoFS from PMFS/NOVA in
// Figure 9), while a width of 20 produces a deep tree (the
// ZoFS-20dirwidth / Figure 10(b) configuration, where ZoFS's backwards
// path parsing pays for long paths).
package filebench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"zofs/internal/proc"
	"zofs/internal/simclock"
	"zofs/internal/vfs"
)

// Personality identifies a workload.
type Personality string

const (
	Fileserver Personality = "fileserver"
	Webserver  Personality = "webserver"
	Webproxy   Personality = "webproxy"
	Varmail    Personality = "varmail"
)

// All lists the personalities of Table 6.
var All = []Personality{Fileserver, Webserver, Webproxy, Varmail}

// Config are the Table 6 parameters.
type Config struct {
	Personality Personality
	Files       int
	DirWidth    int
	FileSize    int64
	// IOSize is the unit of appends/reads within a flow.
	IOSize int64
}

// Default returns the paper's configuration for a personality (Table 6).
func Default(p Personality) Config {
	switch p {
	case Fileserver:
		return Config{Personality: p, Files: 10000, DirWidth: 20, FileSize: 128 << 10, IOSize: 16 << 10}
	case Webserver:
		return Config{Personality: p, Files: 1000, DirWidth: 20, FileSize: 16 << 10, IOSize: 16 << 10}
	case Webproxy:
		return Config{Personality: p, Files: 10000, DirWidth: 1000000, FileSize: 16 << 10, IOSize: 16 << 10}
	case Varmail:
		return Config{Personality: p, Files: 1000, DirWidth: 1000000, FileSize: 16 << 10, IOSize: 16 << 10}
	default:
		panic("filebench: unknown personality " + string(p))
	}
}

// Result is one cell of Figure 9/10.
type Result struct {
	Personality Personality
	Threads     int
	Ops         int64
	VirtualNS   int64
	KopsPerSec  float64
}

// fileSet holds the pre-created namespace.
type fileSet struct {
	cfg   Config
	dirs  []string // leaf directories
	paths []string // file paths
}

// buildTree creates a directory tree where no directory exceeds width
// children, mirroring Filebench's fileset dirwidth parameter.
func buildTree(fs vfs.FileSystem, th *proc.Thread, cfg Config) (*fileSet, error) {
	set := &fileSet{cfg: cfg}
	root := "/" + string(cfg.Personality)
	if err := fs.Mkdir(th, root, 0o755); err != nil {
		return nil, err
	}
	// Number of leaf dirs needed so each holds <= width files.
	width := cfg.DirWidth
	if width <= 0 {
		width = 20
	}
	nLeaf := (cfg.Files + width - 1) / width
	// Build intermediate levels so no dir has more than width children.
	level := []string{root}
	for len(level)*width < nLeaf {
		var next []string
		for _, d := range level {
			for i := 0; i < width && len(next) < nLeaf; i++ {
				nd := fmt.Sprintf("%s/m%d", d, i)
				if err := fs.Mkdir(th, nd, 0o755); err != nil {
					return nil, err
				}
				next = append(next, nd)
			}
		}
		level = next
	}
	// Leaf dirs.
	for i := 0; i < nLeaf; i++ {
		parent := level[i%len(level)]
		d := fmt.Sprintf("%s/d%04d", parent, i)
		if err := fs.Mkdir(th, d, 0o755); err != nil {
			return nil, err
		}
		set.dirs = append(set.dirs, d)
	}
	// Files with the mean size.
	buf := make([]byte, cfg.FileSize)
	for i := 0; i < cfg.Files; i++ {
		p := fmt.Sprintf("%s/f%06d", set.dirs[i%len(set.dirs)], i)
		h, err := fs.Create(th, p, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := h.WriteAt(th, buf, 0); err != nil {
			return nil, err
		}
		h.Close(th)
		set.paths = append(set.paths, p)
	}
	return set, nil
}

// flow is one personality's operation sequence; returns ops performed.
type flow func(th *proc.Thread, rng *rand.Rand, seq int64) (int64, error)

// makeFlow builds the per-thread flow function for a personality,
// following the canonical Filebench definitions.
func makeFlow(fs vfs.FileSystem, set *fileSet, tid int) flow {
	cfg := set.cfg
	io := make([]byte, cfg.IOSize)
	whole := make([]byte, cfg.FileSize)

	pick := func(rng *rand.Rand) string { return set.paths[rng.Intn(len(set.paths))] }
	dirOf := func(rng *rand.Rand) string { return set.dirs[rng.Intn(len(set.dirs))] }

	// Reads tolerate ErrNotExist: webproxy/varmail threads delete and
	// re-create files concurrently, so a victim may vanish mid-flow.
	readWhole := func(th *proc.Thread, p string) error {
		h, err := open(fs, th, p, vfs.O_RDONLY)
		if errors.Is(err, vfs.ErrNotExist) {
			return nil
		}
		if err != nil {
			return err
		}
		_, err = h.ReadAt(th, whole, 0)
		h.Close(th)
		if errors.Is(err, vfs.ErrNotExist) || errors.Is(err, vfs.ErrIO) {
			return nil
		}
		return err
	}

	switch cfg.Personality {
	case Fileserver:
		// createfile → writewholefile → append → readwholefile → delete
		// → stat (R/W 1:2).
		return func(th *proc.Thread, rng *rand.Rand, seq int64) (int64, error) {
			p := fmt.Sprintf("%s/new-%d-%d", dirOf(rng), tid, seq)
			h, err := fs.Create(th, p, 0o644)
			if err != nil {
				return 0, err
			}
			if _, err := h.WriteAt(th, whole, 0); err != nil {
				return 0, err
			}
			if _, err := h.Append(th, io); err != nil {
				return 0, err
			}
			h.Close(th)
			if err := readWhole(th, pick(rng)); err != nil {
				return 0, err
			}
			if err := fs.Unlink(th, p); err != nil {
				return 0, err
			}
			if _, err := stat(fs, th, pick(rng)); err != nil && !errors.Is(err, vfs.ErrNotExist) {
				return 0, err
			}
			return 6, nil
		}

	case Webserver:
		// 10 × (open, readwholefile, close) + 1 log append (R/W 10:1).
		logPath := fmt.Sprintf("/%s/weblog-%d", cfg.Personality, tid)
		return func(th *proc.Thread, rng *rand.Rand, seq int64) (int64, error) {
			for i := 0; i < 10; i++ {
				if err := readWhole(th, pick(rng)); err != nil {
					return 0, err
				}
			}
			lh, err := open(fs, th, logPath, vfs.O_WRONLY|vfs.O_CREATE)
			if err != nil {
				return 0, err
			}
			if _, err := lh.Append(th, io); err != nil {
				return 0, err
			}
			lh.Close(th)
			return 11, nil
		}

	case Webproxy:
		// delete, create+append, then 5 × read, plus log append (5:1).
		logPath := fmt.Sprintf("/%s/proxylog-%d", cfg.Personality, tid)
		return func(th *proc.Thread, rng *rand.Rand, seq int64) (int64, error) {
			victim := pick(rng)
			_ = fs.Unlink(th, victim) // may race with re-creation by another thread
			h, err := fs.Create(th, victim, 0o644)
			if err != nil {
				return 0, err
			}
			if _, err := h.Append(th, whole); err != nil {
				return 0, err
			}
			h.Close(th)
			for i := 0; i < 5; i++ {
				if err := readWhole(th, pick(rng)); err != nil {
					return 0, err
				}
			}
			lh, err := open(fs, th, logPath, vfs.O_WRONLY|vfs.O_CREATE)
			if err != nil {
				return 0, err
			}
			if _, err := lh.Append(th, io); err != nil {
				return 0, err
			}
			lh.Close(th)
			return 8, nil
		}

	case Varmail:
		// delete, create+append+fsync, open+read+append+fsync, open+read
		// (R/W 1:1).
		return func(th *proc.Thread, rng *rand.Rand, seq int64) (int64, error) {
			victim := pick(rng)
			_ = fs.Unlink(th, victim)
			h, err := fs.Create(th, victim, 0o644)
			if err != nil {
				return 0, err
			}
			if _, err := h.Append(th, io); err != nil {
				return 0, err
			}
			h.Sync(th)
			h.Close(th)
			p2 := pick(rng)
			h2, err := open(fs, th, p2, vfs.O_RDWR)
			if errors.Is(err, vfs.ErrNotExist) {
				return 5, nil
			}
			if err != nil {
				return 0, err
			}
			if _, err := h2.ReadAt(th, io, 0); err != nil {
				return 0, err
			}
			if _, err := h2.Append(th, io); err != nil {
				return 0, err
			}
			h2.Sync(th)
			h2.Close(th)
			if err := readWhole(th, pick(rng)); err != nil {
				return 0, err
			}
			return 9, nil
		}
	}
	panic("unreachable")
}

// open re-dispatches on symlink expansion like the FSLibs dispatcher.
func open(fs vfs.FileSystem, th *proc.Thread, p string, flags int) (vfs.Handle, error) {
	h, err := fs.Open(th, p, flags)
	if se, ok := err.(*vfs.SymlinkError); ok {
		return open(fs, th, se.Path, flags)
	}
	return h, err
}

func stat(fs vfs.FileSystem, th *proc.Thread, p string) (vfs.FileInfo, error) {
	fi, err := fs.Stat(th, p)
	if se, ok := err.(*vfs.SymlinkError); ok {
		return stat(fs, th, se.Path)
	}
	return fi, err
}

// Run prepares the file set and executes the personality with the given
// thread count for targetNS virtual nanoseconds per thread.
func Run(fs vfs.FileSystem, p *proc.Process, cfg Config, threads int, targetNS int64) (Result, error) {
	setup := p.NewThread()
	set, err := buildTree(fs, setup, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("filebench %s setup: %w", cfg.Personality, err)
	}
	start := setup.Clk.Now()
	deadline := start + targetNS

	var wg sync.WaitGroup
	ops := make([]int64, threads)
	ends := make([]int64, threads)
	errs := make([]error, threads)
	gang := simclock.NewGang(4_000)
	for i := 0; i < threads; i++ {
		gang.Join(i, start)
	}
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer gang.Leave(i)
			th := p.NewThread()
			th.Clk.AdvanceTo(start)
			fl := makeFlow(fs, set, i)
			rng := rand.New(rand.NewSource(int64(i)*2654435761 + 1))
			var seq, n int64
			for th.Clk.Now() < deadline {
				k, err := fl(th, rng, seq)
				if err != nil {
					errs[i] = fmt.Errorf("%s thread %d: %w", cfg.Personality, i, err)
					break
				}
				seq++
				n += k
				gang.Pace(i, th.Clk.Now())
			}
			ops[i] = n
			ends[i] = th.Clk.Now()
		}(i)
	}
	wg.Wait()
	var total, maxEnd int64
	for i := 0; i < threads; i++ {
		if errs[i] != nil {
			return Result{}, errs[i]
		}
		total += ops[i]
		if ends[i] > maxEnd {
			maxEnd = ends[i]
		}
	}
	r := Result{Personality: cfg.Personality, Threads: threads, Ops: total, VirtualNS: maxEnd - start}
	if r.VirtualNS > 0 {
		r.KopsPerSec = float64(total) / (float64(r.VirtualNS) / 1e9) / 1e3
	}
	return r, nil
}
