package pmemtrace_test

import (
	"testing"

	"zofs/internal/pmemtrace"
)

// TestEventsBetween covers the exemplar window extractor: time filtering,
// stream order across a wrapped ring, and the truncation cap.
func TestEventsBetween(t *testing.T) {
	r := pmemtrace.New(pmemtrace.Config{RingCap: 4})
	for i := 1; i <= 6; i++ {
		r.RecordViolation(int64(i*10), i, int64(i), -1, "test")
	}
	// Ring holds ts 30..60; 10 and 20 fell off.
	ev, trunc := r.EventsBetween(0, 100, 10)
	if trunc || len(ev) != 4 || ev[0].TS != 30 || ev[3].TS != 60 {
		t.Fatalf("full window = %+v trunc=%v, want ts 30..60", ev, trunc)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatal("events out of stream order")
		}
	}
	// Inclusive bounds.
	ev, _ = r.EventsBetween(40, 50, 10)
	if len(ev) != 2 || ev[0].TS != 40 || ev[1].TS != 50 {
		t.Fatalf("bounded window = %+v, want ts 40,50", ev)
	}
	// Cap truncates and reports it.
	ev, trunc = r.EventsBetween(0, 100, 2)
	if !trunc || len(ev) != 2 || ev[0].TS != 30 {
		t.Fatalf("capped window = %+v trunc=%v, want 2 oldest with truncation", ev, trunc)
	}
	// Empty window and nil receiver are safe.
	if ev, trunc = r.EventsBetween(70, 90, 10); len(ev) != 0 || trunc {
		t.Fatalf("empty window returned %+v", ev)
	}
	var nilRec *pmemtrace.Recorder
	if ev, _ = nilRec.EventsBetween(0, 100, 10); ev != nil {
		t.Fatal("nil recorder returned events")
	}
}
