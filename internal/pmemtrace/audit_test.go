package pmemtrace_test

import (
	"testing"

	"zofs/internal/nvm"
	"zofs/internal/pmemtrace"
	"zofs/internal/simclock"
	"zofs/internal/telemetry"
)

// commitProtocol runs a miniature two-phase update against a raw device:
// bulk data via an NT store, then a commit record as a cached store that is
// made durable by a flush — unless buggy, in which case the flush is
// deliberately skipped (the classic lost-commit bug the auditor exists to
// catch).
func commitProtocol(d *nvm.Device, clk *simclock.Clock, buggy bool) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = 0xAB
	}
	d.WriteNT(clk, 0, data)
	commit := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	d.Write(clk, commitOff, commit)
	if !buggy {
		d.Flush(clk, commitOff, int64(len(commit)))
	}
}

const commitOff = int64(4096)

// TestFailAfterSweepCorrectProtocol injects a crash after every persisting
// store of the correct protocol and asserts the auditor never reports a
// lost line: each intermediate state either has the commit record unwritten
// or fully flushed.
func TestFailAfterSweepCorrectProtocol(t *testing.T) {
	for failAt := int64(1); ; failAt++ {
		tr := pmemtrace.Enable(pmemtrace.Config{})
		d := nvm.NewDevice(1 << 20)
		clk := simclock.NewClock()
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if !nvm.IsInjectedCrash(r) {
						panic(r)
					}
					crashed = true
				}
			}()
			d.FailAfter(failAt)
			commitProtocol(d, clk, false)
		}()
		d.FailAfter(0)
		d.Crash()
		rep := pmemtrace.Audit(tr.Events(), nil)
		pmemtrace.Disable()
		if len(rep.LostLines) != 0 {
			t.Fatalf("failAt=%d: correct protocol lost %d lines: %+v", failAt, len(rep.LostLines), rep.LostLines)
		}
		if rep.Crashes != 1 {
			t.Fatalf("failAt=%d: crashes = %d, want 1", failAt, rep.Crashes)
		}
		if crashed != (rep.Injected == 1) {
			t.Fatalf("failAt=%d: injected marker %d does not match crash %v", failAt, rep.Injected, crashed)
		}
		if !crashed {
			// Sweep exhausted: the protocol completed before the fail point.
			break
		}
	}
}

// TestUnflushedCommitRecordFlagged runs the buggy protocol (commit record's
// flush skipped) and asserts the auditor flags exactly the commit line.
func TestUnflushedCommitRecordFlagged(t *testing.T) {
	tr := pmemtrace.Enable(pmemtrace.Config{})
	defer pmemtrace.Disable()
	d := nvm.NewDevice(1 << 20)
	clk := simclock.NewClock()
	commitProtocol(d, clk, true)
	if got := d.DirtyLines(); got != 1 {
		t.Fatalf("device dirty lines = %d, want 1", got)
	}
	d.Crash()
	rep := pmemtrace.Audit(tr.Events(), nil)
	if len(rep.LostLines) != 1 {
		t.Fatalf("lost lines = %d, want exactly 1: %+v", len(rep.LostLines), rep.LostLines)
	}
	if rep.LostLines[0].Line != commitOff {
		t.Fatalf("lost line = %#x, want %#x (the unflushed commit record)", rep.LostLines[0].Line, commitOff)
	}
	// The unflushed commit record is real damage the cross-check must not
	// excuse: an imaginary fsck repair elsewhere stays unexplained...
	if dis := pmemtrace.CrossCheck(rep, []pmemtrace.RepairSite{{Off: 1 << 19, Kind: "dangling_ptr"}}); len(dis) == 0 {
		t.Fatalf("cross-check accepted a repair unrelated to the lost line")
	}
	// ...while a repair dropping a reference into the lost page is explained.
	if dis := pmemtrace.CrossCheck(rep, []pmemtrace.RepairSite{{Off: 1 << 19, Target: commitOff / pmemtrace.PageSize, Kind: "dangling_dentry"}}); len(dis) != 0 {
		t.Fatalf("cross-check rejected an explained repair: %v", dis)
	}
}

// TestRedundantFlushAndEmptyFence drives the overhead detectors directly.
func TestRedundantFlushAndEmptyFence(t *testing.T) {
	tr := pmemtrace.Enable(pmemtrace.Config{})
	defer pmemtrace.Disable()
	d := nvm.NewDevice(1 << 20)
	clk := simclock.NewClock()

	buf := make([]byte, 64)
	d.Write(clk, 0, buf)
	d.Flush(clk, 0, 64) // useful flush
	d.Flush(clk, 0, 64) // redundant: line already clean
	d.Fence(clk)        // empty: nothing stored since the flush
	d.WriteNT(clk, 128, buf)
	d.Fence(clk) // empty in this model: WriteNT folded its fence in

	rep := pmemtrace.Audit(tr.Events(), nil)
	if rep.RedundantFlushes != 1 {
		t.Errorf("redundant flushes = %d, want 1", rep.RedundantFlushes)
	}
	if rep.RedundantFlushLines != 1 {
		t.Errorf("redundant flush lines = %d, want 1", rep.RedundantFlushLines)
	}
	if rep.EmptyFences != 2 {
		t.Errorf("empty fences = %d, want 2", rep.EmptyFences)
	}
	if len(rep.LostLines) != 0 {
		t.Errorf("lost lines = %d, want 0 (no crash)", len(rep.LostLines))
	}
	if rep.Epochs == 0 || rep.StoresPerEpochMean <= 0 {
		t.Errorf("epoch stats missing: %+v", rep)
	}
}

// TestAttribution checks that a lost line is attributed to the telemetry op
// span its dirtying store fell inside.
func TestAttribution(t *testing.T) {
	events := []pmemtrace.Event{
		{Seq: 1, TS: 150, Kind: pmemtrace.KindStore, Off: 0, Len: 64, TID: 7, Key: 3},
		{Seq: 2, TS: 400, Kind: pmemtrace.KindCrash},
	}
	spans := []telemetry.TraceEvent{
		{TID: 7, Op: "zofs.append", Start: 100, Dur: 100},
		{TID: 7, Op: "zofs.create", Start: 300, Dur: 50},
	}
	rep := pmemtrace.Audit(events, spans)
	if len(rep.LostLines) != 1 {
		t.Fatalf("lost lines = %d, want 1", len(rep.LostLines))
	}
	if got := rep.LostLines[0].Op; got != "zofs.append" {
		t.Fatalf("attributed op = %q, want zofs.append", got)
	}
	if rep.LostLines[0].Key != 3 {
		t.Fatalf("key = %d, want 3", rep.LostLines[0].Key)
	}
}

// TestRingDropKeepsSeq verifies overflow semantics: the ring drops the head
// but preserves sequence numbers, and the auditor marks the stream as
// truncated.
func TestRingDropKeepsSeq(t *testing.T) {
	r := pmemtrace.New(pmemtrace.Config{RingCap: 4})
	clk := simclock.NewClock()
	for i := 0; i < 10; i++ {
		r.Record(7, clk, pmemtrace.KindFence, 0, 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("seq range [%d,%d], want [7,10]", evs[0].Seq, evs[3].Seq)
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	if rep := pmemtrace.Audit(evs, nil); !rep.Dropped {
		t.Fatalf("audit did not flag the truncated stream")
	}
}

// TestNilRecorderSafe exercises every recorder method on a nil receiver.
func TestNilRecorderSafe(t *testing.T) {
	var r *pmemtrace.Recorder
	r.Record(7, simclock.NewClock(), pmemtrace.KindStore, 0, 64)
	r.RecordViolation(0, 1, 2, 3, "x")
	if r.Events() != nil || r.Total() != 0 || r.Dropped() != 0 || r.FlushSpill() != nil {
		t.Fatal("nil recorder must be inert")
	}
}
