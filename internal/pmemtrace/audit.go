package pmemtrace

import (
	"fmt"
	"io"
	"sort"

	"zofs/internal/perfmodel"
	"zofs/internal/telemetry"
)

// LineSize is the cacheline granularity at which persistence is audited
// (matches nvm.LineSize without importing nvm).
const LineSize = perfmodel.CachelineSize

// PageSize mirrors nvm.PageSize for page-level cross-checks.
const PageSize = perfmodel.PageSize

// LostLine is one cacheline that was dirty — stored but never covered by a
// flush+fence — when a crash event occurred. Op is the telemetry op-trace
// span the dirtying store fell inside, when one matches ("" otherwise).
type LostLine struct {
	Line     int64  `json:"line"`     // byte offset of the line start
	StoreTS  int64  `json:"store_ts"` // virtual time of the dirtying store
	TID      int32  `json:"tid"`
	Key      int16  `json:"key"`
	Op       string `json:"op,omitempty"`
	CrashSeq uint64 `json:"crash_seq"` // Seq of the crash event that lost it
}

// Report is the auditor's verdict over one event stream.
type Report struct {
	Events  int64 `json:"events"`
	Dropped bool  `json:"dropped"` // stream head missing (ring overflow, no spill)

	Stores   int64 `json:"stores"`    // cached stores
	NTStores int64 `json:"nt_stores"` // nt_store + store64 + cas + zero
	Flushes  int64 `json:"flushes"`
	Fences   int64 `json:"fences"` // explicit fence events only

	Crashes    int64 `json:"crashes"`
	Injected   int64 `json:"injected"`
	Violations int64 `json:"violations"`

	// LostLines are dirty-at-crash lines: lost-update risk (a).
	LostLines []LostLine `json:"lost_lines"`

	// Redundant work (b): flushes whose every line was already clean, and
	// explicit fences with no store since the previous fence point.
	RedundantFlushes    int64            `json:"redundant_flushes"`
	RedundantFlushLines int64            `json:"redundant_flush_lines"` // clean lines clwb'd (incl. partial)
	RedundantFlushByOp  map[string]int64 `json:"redundant_flush_by_op,omitempty"`
	EmptyFences         int64            `json:"empty_fences"`
	EmptyFenceByOp      map[string]int64 `json:"empty_fence_by_op,omitempty"`

	// Epoch summaries (c): an epoch ends at every fence point (explicit
	// fences plus the fences folded into persisting stores).
	Epochs             int64   `json:"epochs"`
	StoresPerEpochMean float64 `json:"stores_per_epoch_mean"`
	StoresPerEpochMax  int64   `json:"stores_per_epoch_max"`
	FlushFanoutMean    float64 `json:"flush_fanout_mean"` // lines per flush
}

// spanIndex answers "which traced op was thread T inside at time ts".
type spanIndex struct {
	byTID map[int32][]telemetry.TraceEvent
}

func newSpanIndex(spans []telemetry.TraceEvent) *spanIndex {
	idx := &spanIndex{byTID: map[int32][]telemetry.TraceEvent{}}
	for _, s := range spans {
		idx.byTID[int32(s.TID)] = append(idx.byTID[int32(s.TID)], s)
	}
	for tid := range idx.byTID {
		ss := idx.byTID[tid]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
	}
	return idx
}

// opAt returns the name of the op span containing ts on thread tid, or "".
func (idx *spanIndex) opAt(tid int32, ts int64) string {
	ss := idx.byTID[tid]
	// Last span starting at or before ts; spans from one thread are
	// sequential in virtual time, so at most one can contain ts.
	i := sort.Search(len(ss), func(i int) bool { return ss[i].Start > ts }) - 1
	if i >= 0 && ts <= ss[i].Start+ss[i].Dur {
		return ss[i].Op
	}
	return ""
}

// dirtyInfo remembers who dirtied a line, for attribution at crash time.
type dirtyInfo struct {
	ts  int64
	tid int32
	key int16
}

// devLine keys the dirty set: benchmark logs interleave several devices
// whose address ranges overlap, so replay state is partitioned per device.
type devLine struct {
	dev  uint64
	line int64
}

// Audit replays an event stream through the persistence model and reports
// lost-update risks, redundant persistence work and epoch shape. spans, when
// non-nil, are telemetry op-trace events used to attribute findings to file
// system operations ("per layer": the op name encodes the issuing layer).
func Audit(events []Event, spans []telemetry.TraceEvent) *Report {
	rep := &Report{
		RedundantFlushByOp: map[string]int64{},
		EmptyFenceByOp:     map[string]int64{},
	}
	idx := newSpanIndex(spans)
	if len(events) > 0 && events[0].Seq > 1 {
		rep.Dropped = true
	}
	dirty := map[devLine]dirtyInfo{}

	var storesInEpoch int64 // stores since the last fence point
	var totalEpochStores int64
	var flushes, flushLines int64
	sawStoreSinceFence := false

	endEpoch := func() {
		rep.Epochs++
		totalEpochStores += storesInEpoch
		if storesInEpoch > rep.StoresPerEpochMax {
			rep.StoresPerEpochMax = storesInEpoch
		}
		storesInEpoch = 0
		sawStoreSinceFence = false
	}

	for _, ev := range events {
		rep.Events++
		switch ev.Kind {
		case KindStore:
			rep.Stores++
			storesInEpoch++
			sawStoreSinceFence = true
			first := ev.Off / LineSize * LineSize
			for lo := first; lo < ev.Off+ev.Len; lo += LineSize {
				k := devLine{ev.Dev, lo}
				if _, ok := dirty[k]; !ok {
					dirty[k] = dirtyInfo{ts: ev.TS, tid: ev.TID, key: ev.Key}
				}
			}

		case KindNTStore, KindStore64, KindCAS, KindZero:
			rep.NTStores++
			storesInEpoch++
			first := ev.Off / LineSize * LineSize
			for lo := first; lo < ev.Off+ev.Len; lo += LineSize {
				delete(dirty, devLine{ev.Dev, lo})
			}
			endEpoch()

		case KindFlush:
			rep.Flushes++
			flushes++
			covered := int64(0)
			cleanCovered := int64(0)
			first := ev.Off / LineSize * LineSize
			for lo := first; lo < ev.Off+ev.Len; lo += LineSize {
				covered++
				if _, ok := dirty[devLine{ev.Dev, lo}]; ok {
					delete(dirty, devLine{ev.Dev, lo})
				} else {
					cleanCovered++
				}
			}
			flushLines += covered
			rep.RedundantFlushLines += cleanCovered
			if covered > 0 && cleanCovered == covered {
				rep.RedundantFlushes++
				rep.RedundantFlushByOp[opOrUnattributed(idx, ev)]++
			}
			endEpoch()

		case KindFence:
			rep.Fences++
			if !sawStoreSinceFence {
				rep.EmptyFences++
				rep.EmptyFenceByOp[opOrUnattributed(idx, ev)]++
			}
			endEpoch()

		case KindCrash:
			rep.Crashes++
			for k, info := range dirty {
				if k.dev != ev.Dev {
					continue // the power failure hit one device only
				}
				rep.LostLines = append(rep.LostLines, LostLine{
					Line:     k.line,
					StoreTS:  info.ts,
					TID:      info.tid,
					Key:      info.key,
					Op:       idx.opAt(info.tid, info.ts),
					CrashSeq: ev.Seq,
				})
				delete(dirty, k)
			}

		case KindCrashInject:
			rep.Injected++

		case KindViolation:
			rep.Violations++
		}
	}
	if rep.Epochs > 0 {
		rep.StoresPerEpochMean = float64(totalEpochStores) / float64(rep.Epochs)
	}
	if flushes > 0 {
		rep.FlushFanoutMean = float64(flushLines) / float64(flushes)
	}
	sort.Slice(rep.LostLines, func(i, j int) bool {
		if rep.LostLines[i].CrashSeq != rep.LostLines[j].CrashSeq {
			return rep.LostLines[i].CrashSeq < rep.LostLines[j].CrashSeq
		}
		return rep.LostLines[i].Line < rep.LostLines[j].Line
	})
	return rep
}

func opOrUnattributed(idx *spanIndex, ev Event) string {
	if op := idx.opAt(ev.TID, ev.TS); op != "" {
		return op
	}
	return "(unattributed)"
}

// WriteText renders the report as a human-readable summary.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "events: %d (stores %d, nt-stores %d, flushes %d, explicit fences %d)\n",
		r.Events, r.Stores, r.NTStores, r.Flushes, r.Fences)
	if r.Dropped {
		fmt.Fprintf(w, "WARNING: stream head missing (ring overflow without spill); dirty-state replay is incomplete\n")
	}
	fmt.Fprintf(w, "crashes: %d (injected %d)  mpk violations: %d\n", r.Crashes, r.Injected, r.Violations)
	fmt.Fprintf(w, "lost lines (dirty at crash, never flushed): %d\n", len(r.LostLines))
	for _, l := range r.LostLines {
		op := l.Op
		if op == "" {
			op = "(unattributed)"
		}
		fmt.Fprintf(w, "  line %#x  stored at t=%dns by tid %d key %d during %s (crash seq %d)\n",
			l.Line, l.StoreTS, l.TID, l.Key, op, l.CrashSeq)
	}
	fmt.Fprintf(w, "redundant flushes (all lines already clean): %d ops, %d clean lines clwb'd\n",
		r.RedundantFlushes, r.RedundantFlushLines)
	writeByOp(w, r.RedundantFlushByOp)
	fmt.Fprintf(w, "empty fences (ordered nothing): %d\n", r.EmptyFences)
	writeByOp(w, r.EmptyFenceByOp)
	fmt.Fprintf(w, "epochs: %d  stores/fence mean %.2f max %d  flush fan-out mean %.2f lines\n",
		r.Epochs, r.StoresPerEpochMean, r.StoresPerEpochMax, r.FlushFanoutMean)
}

func writeByOp(w io.Writer, m map[string]int64) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-24s %d\n", name, m[name])
	}
}

// RepairSite is one repair an integrity checker (zofs fsck) performed after
// a crash, in device coordinates: Off is the repaired word/record, Target
// the page the dropped referent pointed at (0 if none).
type RepairSite struct {
	Off    int64  `json:"off"`
	Target int64  `json:"target"`
	Kind   string `json:"kind"`
}

// CrossCheck compares the auditor's lost-line report against the repairs an
// integrity checker performed on the post-crash image. It returns a list of
// disagreements (empty = the two views agree):
//
//   - a repair neither at a lost line nor referencing a page containing one
//     means fsck found damage the flight recorder cannot explain;
//   - any repair at all while the auditor saw zero lost lines means the
//     recorder missed a persistence hazard outright.
//
// The converse (lost lines with no repair) is NOT a disagreement: a lone
// unflushed line reverts to its last persisted — self-consistent — content,
// which is a lost update, not structural damage.
//
// "stale_ptr" repairs undo block pointers a crash interrupted between
// publish and size commit — sequence damage the stream explains by the
// crash event itself, not by lost lines — so they are exempt whenever the
// stream actually recorded a crash.
func CrossCheck(rep *Report, repairs []RepairSite) []string {
	var disagreements []string
	seqExplained := func(rp RepairSite) bool {
		return rp.Kind == "stale_ptr" && (rep.Crashes > 0 || rep.Injected > 0)
	}
	structural := 0
	for _, rp := range repairs {
		if !seqExplained(rp) {
			structural++
		}
	}
	if len(rep.LostLines) == 0 && structural > 0 {
		disagreements = append(disagreements,
			fmt.Sprintf("auditor reported 0 lost lines but fsck performed %d repair(s)", structural))
	}
	lostLines := map[int64]bool{}
	lostPages := map[int64]bool{}
	for _, l := range rep.LostLines {
		lostLines[l.Line] = true
		lostPages[l.Line/PageSize] = true
	}
	for _, rp := range repairs {
		if seqExplained(rp) {
			continue
		}
		if lostLines[rp.Off/LineSize*LineSize] || lostPages[rp.Off/PageSize] {
			continue // repair sits on lost state
		}
		if rp.Target != 0 && lostPages[rp.Target] {
			continue // repair dropped a reference into lost state
		}
		disagreements = append(disagreements,
			fmt.Sprintf("fsck repair %s at %#x (target page %d) matches no lost line", rp.Kind, rp.Off, rp.Target))
	}
	return disagreements
}
