package pmemtrace

import (
	"bufio"
	"encoding/json"
	"io"

	"zofs/internal/telemetry"
)

// Chrome trace-event export: the output is a JSON array of trace events in
// the format accepted by chrome://tracing and Perfetto. Telemetry op spans
// become complete ("X") events, device events become thread-scoped instant
// ("i") events, and a counter ("C") track replays the dirty-line count so
// lost-update windows are visible as a non-zero sawtooth.
//
// All structs marshal with fixed field order so the exporter is
// byte-deterministic for a given input (golden-file tested).

type chromeArgs struct {
	Seq   uint64 `json:"seq,omitempty"`
	Off   *int64 `json:"off,omitempty"`
	Len   *int64 `json:"len,omitempty"`
	Key   *int16 `json:"key,omitempty"`
	Cause string `json:"cause,omitempty"`
	Dirty *int64 `json:"dirty,omitempty"`
}

type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"` // microseconds
	Dur  *float64    `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  int32       `json:"tid"`
	S    string      `json:"s,omitempty"` // instant-event scope
	Args *chromeArgs `json:"args,omitempty"`
}

const chromePID = 1

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace renders device events and telemetry op spans as Chrome
// trace-event JSON. The unknown-origin thread id is rendered as 0 (the
// "kernel/device" track).
func WriteChromeTrace(w io.Writer, events []Event, spans []telemetry.TraceEvent) error {
	bw := bufio.NewWriter(w)
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n  "
		if first {
			sep = "[\n  "
			first = false
		}
		if _, err := bw.WriteString(sep); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	for _, s := range spans {
		dur := usec(s.Dur)
		if err := emit(chromeEvent{
			Name: s.Op, Cat: "fsop", Ph: "X",
			TS: usec(s.Start), Dur: &dur,
			PID: chromePID, TID: int32(s.TID),
		}); err != nil {
			return err
		}
	}

	dirty := map[devLine]bool{}
	lastDirty := int64(-1)
	for _, ev := range events {
		tid := ev.TID
		if tid < 0 {
			tid = 0
		}
		ce := chromeEvent{
			Name: ev.Kind.String(), Cat: "nvm", Ph: "i",
			TS: usec(ev.TS), PID: chromePID, TID: tid, S: "t",
			Args: &chromeArgs{Seq: ev.Seq},
		}
		switch ev.Kind {
		case KindFence, KindCrash, KindCrashInject:
			// No meaningful range.
		case KindViolation:
			page := ev.Off
			ce.Args.Off = &page
			ce.Args.Cause = ev.Cause
			ce.S = "g" // faults are worth seeing across all tracks
		default:
			off, ln := ev.Off, ev.Len
			ce.Args.Off = &off
			ce.Args.Len = &ln
		}
		if ev.Key >= 0 {
			k := ev.Key
			ce.Args.Key = &k
		}
		if err := emit(ce); err != nil {
			return err
		}

		// Replay the dirty-line count as a counter track.
		before := int64(len(dirty))
		applyDirty(dirty, ev)
		after := int64(len(dirty))
		if after != before || (ev.Kind == KindCrash && lastDirty != 0) {
			n := after
			if err := emit(chromeEvent{
				Name: "dirty_lines", Cat: "nvm", Ph: "C",
				TS: usec(ev.TS), PID: chromePID, TID: 0,
				Args: &chromeArgs{Dirty: &n},
			}); err != nil {
				return err
			}
			lastDirty = after
		}
	}

	if first {
		if _, err := bw.WriteString("[]\n"); err != nil {
			return err
		}
		return bw.Flush()
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// applyDirty mirrors the auditor's dirty-set transition for one event.
func applyDirty(dirty map[devLine]bool, ev Event) {
	switch ev.Kind {
	case KindStore:
		first := ev.Off / LineSize * LineSize
		for lo := first; lo < ev.Off+ev.Len; lo += LineSize {
			dirty[devLine{ev.Dev, lo}] = true
		}
	case KindNTStore, KindStore64, KindCAS, KindZero, KindFlush:
		first := ev.Off / LineSize * LineSize
		for lo := first; lo < ev.Off+ev.Len; lo += LineSize {
			delete(dirty, devLine{ev.Dev, lo})
		}
	case KindCrash:
		for k := range dirty {
			if k.dev == ev.Dev {
				delete(dirty, k)
			}
		}
	}
}
