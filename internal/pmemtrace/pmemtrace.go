// Package pmemtrace is the persistence flight recorder of the Treasury
// stack: a bounded event log of every persistence-relevant action on the
// simulated NVM device — cached stores, non-temporal stores, flushes,
// fences, atomic word updates, crashes, injected failures and MPK
// protection faults — each stamped with the issuing thread's virtual time
// and, when known, its thread id and protection key.
//
// The recorder follows the same enablement pattern as internal/telemetry:
// a process-wide atomic pointer captured by nvm.New at device creation,
// with the nil *Recorder a valid no-op sink. Disabled, the device hot path
// pays one pointer load and a predicted branch; no allocation, no lock.
//
// On top of the raw stream sit three consumers: a pmemcheck/Yat-style
// crash-consistency auditor (audit.go), a JSONL spill/reload format
// (jsonl.go), and a Chrome trace-event exporter (chrome.go) whose output
// loads in chrome://tracing and Perfetto.
package pmemtrace

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"

	"zofs/internal/simclock"
)

// Kind enumerates the recorded event types.
type Kind uint8

const (
	// KindStore is a cached (write-back) store: the range is dirty — visible
	// but not persistent — until a later flush covers it.
	KindStore Kind = iota
	// KindNTStore is a non-temporal store; the device folds the trailing
	// fence in, so the range is persistent when the event is emitted.
	KindNTStore
	// KindStore64 is an atomic 8-byte persistent store (ntstore+fence).
	KindStore64
	// KindCAS is a successful atomic compare-and-swap (persists like Store64).
	KindCAS
	// KindZero is a non-temporal zeroing of a range (page scrubbing).
	KindZero
	// KindFlush is clwb over a range plus a fence: the range is persistent.
	KindFlush
	// KindFence is an explicit store fence with no accompanying data.
	KindFence
	// KindCrash is a simulated power failure: every dirty line reverts to
	// its last persisted content. Len carries the device's dirty-line count
	// at the instant of the crash when tracking was on.
	KindCrash
	// KindCrashInject marks the panic from an armed FailAfter: the store
	// that tripped it is the immediately preceding event. The device image
	// does not revert until a later KindCrash.
	KindCrashInject
	// KindViolation is an MPK protection fault (mpk.Violation). Off is the
	// faulting page number (not a byte offset), Key/Cause describe the fault.
	KindViolation

	numKinds
)

var kindNames = [numKinds]string{
	KindStore:       "store",
	KindNTStore:     "nt_store",
	KindStore64:     "store64",
	KindCAS:         "cas",
	KindZero:        "zero",
	KindFlush:       "flush",
	KindFence:       "fence",
	KindCrash:       "crash",
	KindCrashInject: "crash_inject",
	KindViolation:   "mpk_violation",
}

// String returns the event kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Persists reports whether the event makes its range durable on its own
// (the device folds the fence into these operations).
func (k Kind) Persists() bool {
	switch k {
	case KindNTStore, KindStore64, KindCAS, KindZero, KindFlush:
		return true
	}
	return false
}

// Fences reports whether the event carries store-fence semantics.
func (k Kind) Fences() bool {
	return k.Persists() || k == KindFence
}

// Event is one recorded device event. TID and Key are best-effort origin
// attribution carried on the issuing thread's clock tag: -1 means unknown
// (kernel-side access, or an access outside any mapped coffer region).
type Event struct {
	Seq uint64 // 1-based position in the full stream (ring drops keep Seq)
	TS  int64  // virtual nanoseconds (simclock)
	Dev uint64 // device UID: benchmark sweeps trace several devices whose
	// address ranges overlap, so the auditor partitions state per device.
	Kind Kind
	Off  int64 // byte offset (page number for KindViolation)
	Len  int64 // byte length (dirty lines for KindCrash; 0 for fences)
	TID  int32 // issuing simulated thread, -1 unknown
	Key  int16 // MPK key of the accessed page, -1 unknown
	// Cause is only set on KindViolation events.
	Cause string
}

// Config controls a recorder.
type Config struct {
	// RingCap bounds the in-memory event ring; 0 means DefaultRingCap.
	// When the ring overflows, the oldest events are dropped (their Seq
	// numbers are never reused, so consumers can detect the gap).
	RingCap int
	// Spill, when non-nil, receives every event as one JSONL record in
	// stream order, regardless of ring drops.
	Spill io.Writer
}

// DefaultRingCap is the default bound on the in-memory event ring.
const DefaultRingCap = 1 << 16

// Recorder is one flight-recorder sink. The nil *Recorder is a valid no-op
// sink: every method nil-checks its receiver.
type Recorder struct {
	mu       sync.Mutex
	buf      []Event // ring storage, len == cap
	total    uint64  // events ever recorded; buf[(total-1)%cap] is newest
	spill    *bufio.Writer
	spillErr error
}

// New returns an empty recorder.
func New(cfg Config) *Recorder {
	cap := cfg.RingCap
	if cap <= 0 {
		cap = DefaultRingCap
	}
	r := &Recorder{buf: make([]Event, cap)}
	if cfg.Spill != nil {
		r.spill = bufio.NewWriter(cfg.Spill)
	}
	return r
}

// active is the process-wide recorder captured by nvm.New at device
// creation; nil means tracing is off (the default).
var active atomic.Pointer[Recorder]

// Enable installs (and returns) a fresh process-wide recorder. Devices
// created afterwards attach to it.
func Enable(cfg Config) *Recorder {
	r := New(cfg)
	active.Store(r)
	return r
}

// Disable removes the process-wide recorder; devices created afterwards
// are untraced.
func Disable() { active.Store(nil) }

// Active returns the current process-wide recorder, or nil when disabled.
func Active() *Recorder { return active.Load() }

// Origin tags: a thread's identity is packed into its clock's opaque tag so
// the device can attribute events without knowing about processes. Layout:
// bit 63 = tag valid, bits 16..47 = TID, bits 0..15 = key+1 (0 = unknown).
const tagValid = uint64(1) << 63

// PackTag encodes a thread id and an MPK key (-1 = unknown) as a clock tag.
func PackTag(tid int, key int16) uint64 {
	return tagValid | uint64(uint32(tid))<<16 | uint64(uint16(key+1))
}

func unpackTag(tag uint64) (tid int32, key int16) {
	if tag&tagValid == 0 {
		return -1, -1
	}
	return int32(uint32(tag >> 16)), int16(uint16(tag)) - 1
}

// Record appends one device event. dev identifies the emitting device (its
// UID); clk supplies the timestamp and origin tag, and a nil clk records at
// time zero with unknown origin (device-internal events such as Crash).
func (r *Recorder) Record(dev uint64, clk *simclock.Clock, kind Kind, off, n int64) {
	if r == nil {
		return
	}
	var ts int64
	tid, key := int32(-1), int16(-1)
	if clk != nil {
		ts = clk.Now()
		tid, key = unpackTag(clk.Tag())
	}
	r.append(Event{TS: ts, Dev: dev, Kind: kind, Off: off, Len: n, TID: tid, Key: key})
}

// RecordViolation appends an MPK protection-fault event.
func (r *Recorder) RecordViolation(ts int64, tid int, page int64, key int16, cause string) {
	if r == nil {
		return
	}
	r.append(Event{TS: ts, Kind: KindViolation, Off: page, TID: int32(tid), Key: key, Cause: cause})
}

func (r *Recorder) append(ev Event) {
	r.mu.Lock()
	r.total++
	ev.Seq = r.total
	r.buf[(r.total-1)%uint64(len(r.buf))] = ev
	if r.spill != nil && r.spillErr == nil {
		r.spillErr = writeEventLine(r.spill, ev)
	}
	r.mu.Unlock()
}

// Events returns the ring's contents in stream order (oldest retained
// first). If more events were recorded than the ring holds, the head of the
// stream is missing; compare Events()[0].Seq against 1 or check Dropped.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cap := uint64(len(r.buf))
	n := r.total
	if n > cap {
		out := make([]Event, cap)
		for i := uint64(0); i < cap; i++ {
			out[i] = r.buf[(n+i)%cap]
		}
		return out
	}
	out := make([]Event, n)
	copy(out, r.buf[:n])
	return out
}

// EventsBetween returns retained events with TS in [t0, t1] in stream order,
// at most max of them; truncated reports whether the cap cut the window
// short. The spans layer attaches this window to worst-op exemplars so the
// device traffic around a tail operation (all threads) travels with it.
func (r *Recorder) EventsBetween(t0, t1 int64, max int) (out []Event, truncated bool) {
	if r == nil || max <= 0 {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cap := uint64(len(r.buf))
	n := r.total
	count, start := n, uint64(0)
	if n > cap {
		count, start = cap, n
	}
	for i := uint64(0); i < count; i++ {
		ev := r.buf[(start+i)%cap]
		if ev.TS < t0 || ev.TS > t1 {
			continue
		}
		if len(out) == max {
			return out, true
		}
		out = append(out, ev)
	}
	return out, false
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events fell off the ring (still present in the
// spill stream, if one was configured).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total > uint64(len(r.buf)) {
		return r.total - uint64(len(r.buf))
	}
	return 0
}

// FlushSpill drains the buffered spill writer and returns the first spill
// error encountered, if any.
func (r *Recorder) FlushSpill() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spill != nil {
		if err := r.spill.Flush(); err != nil && r.spillErr == nil {
			r.spillErr = err
		}
	}
	return r.spillErr
}
