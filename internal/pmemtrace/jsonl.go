package pmemtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"zofs/internal/telemetry"
)

// The JSONL log is a stream of self-contained records, one JSON object per
// line. Device events carry rec:"ev"; telemetry op-trace spans (appended
// after the workload so the auditor can attribute events offline) carry
// rec:"span". Unknown record types are skipped on read, so the format can
// grow without breaking old tools.

type jsonlRecord struct {
	Rec string `json:"rec"`

	// rec:"ev" fields.
	Seq   uint64 `json:"seq,omitempty"`
	TS    int64  `json:"ts,omitempty"`
	Dev   uint64 `json:"dev,omitempty"`
	Kind  string `json:"kind,omitempty"`
	Off   int64  `json:"off,omitempty"`
	Len   int64  `json:"len,omitempty"`
	TID   *int32 `json:"tid,omitempty"`
	Key   *int16 `json:"key,omitempty"`
	Cause string `json:"cause,omitempty"`

	// rec:"span" fields.
	Op    string `json:"op,omitempty"`
	Start int64  `json:"start_ns,omitempty"`
	Dur   int64  `json:"dur_ns,omitempty"`
}

func writeEventLine(w io.Writer, ev Event) error {
	rec := jsonlRecord{
		Rec:  "ev",
		Seq:  ev.Seq,
		TS:   ev.TS,
		Dev:  ev.Dev,
		Kind: ev.Kind.String(),
		Off:  ev.Off,
		Len:  ev.Len,
	}
	if ev.TID >= 0 {
		rec.TID = &ev.TID
	}
	if ev.Key >= 0 {
		rec.Key = &ev.Key
	}
	rec.Cause = ev.Cause
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSONL writes events followed by spans as a JSONL log.
func WriteJSONL(w io.Writer, events []Event, spans []telemetry.TraceEvent) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		if err := writeEventLine(bw, ev); err != nil {
			return err
		}
	}
	if err := WriteSpansJSONL(bw, spans); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSpansJSONL appends telemetry op-trace spans to a JSONL log (used
// after a spill-recorded workload, when the events are already on disk).
func WriteSpansJSONL(w io.Writer, spans []telemetry.TraceEvent) error {
	bw := bufio.NewWriter(w)
	for _, s := range spans {
		tid := int32(s.TID)
		b, err := json.Marshal(jsonlRecord{Rec: "span", TID: &tid, Op: s.Op, Start: s.Start, Dur: s.Dur})
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL log back into device events and op spans.
func ReadJSONL(r io.Reader) ([]Event, []telemetry.TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var events []Event
	var spans []telemetry.TraceEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, nil, fmt.Errorf("pmemtrace: line %d: %w", lineNo, err)
		}
		switch rec.Rec {
		case "ev":
			kind, ok := KindFromString(rec.Kind)
			if !ok {
				return nil, nil, fmt.Errorf("pmemtrace: line %d: unknown event kind %q", lineNo, rec.Kind)
			}
			ev := Event{Seq: rec.Seq, TS: rec.TS, Dev: rec.Dev, Kind: kind, Off: rec.Off, Len: rec.Len, TID: -1, Key: -1, Cause: rec.Cause}
			if rec.TID != nil {
				ev.TID = *rec.TID
			}
			if rec.Key != nil {
				ev.Key = *rec.Key
			}
			events = append(events, ev)
		case "span":
			tid := -1
			if rec.TID != nil {
				tid = int(*rec.TID)
			}
			spans = append(spans, telemetry.TraceEvent{TID: tid, Op: rec.Op, Start: rec.Start, Dur: rec.Dur})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return events, spans, nil
}
