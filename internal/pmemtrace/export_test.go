package pmemtrace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"zofs/internal/pmemtrace"
	"zofs/internal/simclock"
	"zofs/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedStream is a deterministic event/span pair used by the export tests.
func fixedStream() ([]pmemtrace.Event, []telemetry.TraceEvent) {
	events := []pmemtrace.Event{
		{Seq: 1, TS: 1000, Kind: pmemtrace.KindStore, Off: 4096, Len: 64, TID: 1, Key: 2},
		{Seq: 2, TS: 2000, Kind: pmemtrace.KindFlush, Off: 4096, Len: 64, TID: 1, Key: 2},
		{Seq: 3, TS: 2500, Kind: pmemtrace.KindNTStore, Off: 8192, Len: 256, TID: 2, Key: 3},
		{Seq: 4, TS: 3000, Kind: pmemtrace.KindFence, TID: 2, Key: -1},
		{Seq: 5, TS: 3500, Kind: pmemtrace.KindStore64, Off: 8448, Len: 8, TID: 2, Key: 3},
		{Seq: 6, TS: 4000, Kind: pmemtrace.KindViolation, Off: 17, TID: 3, Key: 5, Cause: "PKRU write-disable"},
		{Seq: 7, TS: 4200, Kind: pmemtrace.KindStore, Off: 128, Len: 32, TID: 1, Key: -1},
		{Seq: 8, TS: 5000, Kind: pmemtrace.KindCrashInject, Len: 4, TID: -1, Key: -1},
		{Seq: 9, TS: 0, Kind: pmemtrace.KindCrash, Len: 1, TID: -1, Key: -1},
	}
	spans := []telemetry.TraceEvent{
		{TID: 1, Op: "zofs.append", Start: 900, Dur: 1200},
		{TID: 2, Op: "zofs.create", Start: 2400, Dur: 1200},
	}
	return events, spans
}

// TestChromeGolden pins the exporter's exact output: stable field ordering
// and a well-formed JSON array.
func TestChromeGolden(t *testing.T) {
	events, spans := fixedStream()
	var buf bytes.Buffer
	if err := pmemtrace.WriteChromeTrace(&buf, events, spans); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("export is not a valid JSON array: %v", err)
	}
	if len(arr) == 0 {
		t.Fatal("export array is empty")
	}
	for i, ev := range arr {
		for _, field := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
	}
}

// TestChromeEmpty checks the zero-event corner is still a valid array.
func TestChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := pmemtrace.WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var arr []any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil || len(arr) != 0 {
		t.Fatalf("empty export = %q, want empty JSON array", buf.String())
	}
}

// TestJSONLRoundTrip spills a live recording to JSONL and reloads it.
func TestJSONLRoundTrip(t *testing.T) {
	var spill bytes.Buffer
	r := pmemtrace.New(pmemtrace.Config{RingCap: 16, Spill: &spill})
	clk := simclock.NewClock()
	clk.SetTag(pmemtrace.PackTag(9, 4))
	clk.Advance(111)
	r.Record(7, clk, pmemtrace.KindStore, 4096, 128)
	clk.Advance(10)
	r.Record(7, clk, pmemtrace.KindFlush, 4096, 128)
	r.RecordViolation(200, 9, 33, 5, "page not mapped")
	if err := r.FlushSpill(); err != nil {
		t.Fatal(err)
	}
	spans := []telemetry.TraceEvent{{TID: 9, Op: "zofs.write", Start: 100, Dur: 50}}
	if err := pmemtrace.WriteSpansJSONL(&spill, spans); err != nil {
		t.Fatal(err)
	}

	gotEvents, gotSpans, err := pmemtrace.ReadJSONL(&spill)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotEvents, r.Events()) {
		t.Fatalf("events round-trip mismatch:\ngot  %+v\nwant %+v", gotEvents, r.Events())
	}
	if !reflect.DeepEqual(gotSpans, spans) {
		t.Fatalf("spans round-trip mismatch:\ngot  %+v\nwant %+v", gotSpans, spans)
	}
}

// TestWriteJSONLWhole exercises the one-shot writer used by tools that hold
// the whole stream in memory.
func TestWriteJSONLWhole(t *testing.T) {
	events, spans := fixedStream()
	var buf bytes.Buffer
	if err := pmemtrace.WriteJSONL(&buf, events, spans); err != nil {
		t.Fatal(err)
	}
	gotEvents, gotSpans, err := pmemtrace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Fatalf("events mismatch:\ngot  %+v\nwant %+v", gotEvents, events)
	}
	if !reflect.DeepEqual(gotSpans, spans) {
		t.Fatalf("spans mismatch:\ngot  %+v\nwant %+v", gotSpans, spans)
	}
}
