// Package lsmdb is a from-scratch LevelDB-style LSM-tree key/value store
// built on the vfs.FileSystem API — the application substrate for the
// paper's Table 7 (db_bench) experiment. It implements the structures that
// generate LevelDB's file system traffic: a write-ahead log of small
// synchronous appends, an in-memory memtable flushed to sorted string
// tables (SSTs), leveled compaction that rewrites files, and merged
// iterators for sequential scans.
package lsmdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// Options tunes the store.
type Options struct {
	// Dir is the database directory (created if missing).
	Dir string
	// SyncWrites forces a WAL sync per write (db_bench "write sync").
	SyncWrites bool
	// MemtableBytes is the flush threshold (LevelDB default 4MB).
	MemtableBytes int64
	// L0Limit triggers compaction into L1 (LevelDB default 4).
	L0Limit int
}

func (o *Options) fill() {
	if o.Dir == "" {
		o.Dir = "/db"
	}
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.L0Limit <= 0 {
		o.L0Limit = 4
	}
}

// tombstone marks deletions inside the tree.
var tombstone = []byte{0xde, 0xad, 0xbe, 0xef, 0x00}

func isTombstone(v []byte) bool {
	return len(v) == len(tombstone) && string(v) == string(tombstone)
}

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("lsmdb: key not found")

// DB is an open database.
type DB struct {
	fs   vfs.FileSystem
	opts Options

	mu      sync.Mutex
	mem     map[string][]byte
	memSize int64
	wal     vfs.Handle
	walSeq  int
	nextSST int
	l0      []*sst // newest first
	l1      []*sst // sorted, non-overlapping
}

// sst is one sorted string table: data on the file system, sparse index in
// memory (as LevelDB keeps via its table cache).
type sst struct {
	path    string
	keys    []string // all keys, sorted (index)
	offs    []int64  // entry offsets
	lens    []int32  // entry lengths
	minKey  string
	maxKey  string
	entries int
}

// Open creates or opens a database directory, replaying any existing WAL.
func Open(fs vfs.FileSystem, th *proc.Thread, opts Options) (*DB, error) {
	opts.fill()
	db := &DB{fs: fs, opts: opts, mem: map[string][]byte{}}
	if err := fs.Mkdir(th, opts.Dir, 0o755); err != nil && !errors.Is(err, vfs.ErrExist) {
		return nil, err
	}
	if err := db.replayWAL(th); err != nil {
		return nil, err
	}
	return db, db.rotateWAL(th)
}

func (db *DB) walPath(seq int) string { return fmt.Sprintf("%s/%06d.log", db.opts.Dir, seq) }
func (db *DB) sstPath(seq int) string { return fmt.Sprintf("%s/%06d.sst", db.opts.Dir, seq) }

// replayWAL restores the memtable from a log left by a previous run.
func (db *DB) replayWAL(th *proc.Thread) error {
	h, err := db.fs.Open(th, db.walPath(db.walSeq), vfs.O_RDONLY)
	if errors.Is(err, vfs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer h.Close(th)
	fi, err := h.Stat(th)
	if err != nil {
		return err
	}
	buf := make([]byte, fi.Size)
	if _, err := h.ReadAt(th, buf, 0); err != nil {
		return err
	}
	for off := 0; off+6 <= len(buf); {
		klen := int(binary.LittleEndian.Uint16(buf[off:]))
		vlen := int(binary.LittleEndian.Uint32(buf[off+2:]))
		off += 6
		if off+klen+vlen > len(buf) {
			break // torn tail record
		}
		k := string(buf[off : off+klen])
		v := append([]byte(nil), buf[off+klen:off+klen+vlen]...)
		db.mem[k] = v
		db.memSize += int64(klen + vlen + 6)
		off += klen + vlen
	}
	return nil
}

func (db *DB) rotateWAL(th *proc.Thread) error {
	if db.wal != nil {
		db.wal.Close(th)
		db.fs.Unlink(th, db.walPath(db.walSeq))
		db.walSeq++
	}
	h, err := db.fs.Create(th, db.walPath(db.walSeq), 0o644)
	if err != nil {
		return err
	}
	db.wal = h
	return nil
}

func encodeRecord(key string, val []byte) []byte {
	rec := make([]byte, 6+len(key)+len(val))
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	binary.LittleEndian.PutUint32(rec[2:], uint32(len(val)))
	copy(rec[6:], key)
	copy(rec[6+len(key):], val)
	return rec
}

// Put inserts or updates a key.
func (db *DB) Put(th *proc.Thread, key string, val []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.putLocked(th, key, val)
}

func (db *DB) putLocked(th *proc.Thread, key string, val []byte) error {
	rec := encodeRecord(key, val)
	if _, err := db.wal.Append(th, rec); err != nil {
		return err
	}
	if db.opts.SyncWrites {
		if err := db.wal.Sync(th); err != nil {
			return err
		}
	}
	th.CPU(perfmodel.CPUHashLookup) // memtable insert
	db.mem[key] = append([]byte(nil), val...)
	db.memSize += int64(len(rec))
	if db.memSize >= db.opts.MemtableBytes {
		return db.flushLocked(th)
	}
	return nil
}

// Delete removes a key (a tombstone that compaction drops).
func (db *DB) Delete(th *proc.Thread, key string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.putLocked(th, key, tombstone)
}

// Get retrieves a key: memtable, then L0 newest-first, then L1.
func (db *DB) Get(th *proc.Thread, key string) ([]byte, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	th.CPU(perfmodel.CPUHashLookup)
	if v, ok := db.mem[key]; ok {
		if isTombstone(v) {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	for _, t := range db.l0 {
		if v, ok, err := db.sstGet(th, t, key); err != nil {
			return nil, err
		} else if ok {
			if isTombstone(v) {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	// L1 is sorted and non-overlapping: binary search for the table.
	i := sort.Search(len(db.l1), func(i int) bool { return db.l1[i].maxKey >= key })
	if i < len(db.l1) && db.l1[i].minKey <= key {
		if v, ok, err := db.sstGet(th, db.l1[i], key); err != nil {
			return nil, err
		} else if ok {
			if isTombstone(v) {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// sstGet looks a key up in one table.
func (db *DB) sstGet(th *proc.Thread, t *sst, key string) ([]byte, bool, error) {
	th.CPU(perfmodel.CPUHashLookup) // index binary search
	i := sort.SearchStrings(t.keys, key)
	if i >= len(t.keys) || t.keys[i] != key {
		return nil, false, nil
	}
	h, err := db.fs.Open(th, t.path, vfs.O_RDONLY)
	if err != nil {
		return nil, false, err
	}
	defer h.Close(th)
	buf := make([]byte, t.lens[i])
	if _, err := h.ReadAt(th, buf, t.offs[i]); err != nil {
		return nil, false, err
	}
	klen := int(binary.LittleEndian.Uint16(buf))
	vlen := int(binary.LittleEndian.Uint32(buf[2:]))
	return append([]byte(nil), buf[6+klen:6+klen+vlen]...), true, nil
}

// flushLocked writes the memtable as a new L0 table and rotates the WAL.
func (db *DB) flushLocked(th *proc.Thread) error {
	if len(db.mem) == 0 {
		return nil
	}
	t, err := db.writeSST(th, sortedEntries(db.mem))
	if err != nil {
		return err
	}
	db.l0 = append([]*sst{t}, db.l0...)
	db.mem = map[string][]byte{}
	db.memSize = 0
	if err := db.rotateWAL(th); err != nil {
		return err
	}
	if len(db.l0) > db.opts.L0Limit {
		return db.compactLocked(th)
	}
	return nil
}

// Flush forces the memtable out (used by benchmarks between phases).
func (db *DB) Flush(th *proc.Thread) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked(th)
}

type kv struct {
	k string
	v []byte
}

func sortedEntries(m map[string][]byte) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

// writeSST streams sorted entries into a new table file.
func (db *DB) writeSST(th *proc.Thread, entries []kv) (*sst, error) {
	if len(entries) == 0 {
		return nil, errors.New("lsmdb: empty sst")
	}
	path := db.sstPath(db.nextSST)
	db.nextSST++
	h, err := db.fs.Create(th, path, 0o644)
	if err != nil {
		return nil, err
	}
	defer h.Close(th)
	t := &sst{path: path, minKey: entries[0].k, maxKey: entries[len(entries)-1].k, entries: len(entries)}
	var off int64
	const chunkTarget = 64 << 10
	chunk := make([]byte, 0, chunkTarget+4096)
	for _, e := range entries {
		rec := encodeRecord(e.k, e.v)
		t.keys = append(t.keys, e.k)
		t.offs = append(t.offs, off)
		t.lens = append(t.lens, int32(len(rec)))
		chunk = append(chunk, rec...)
		off += int64(len(rec))
		if len(chunk) >= chunkTarget {
			if _, err := h.Append(th, chunk); err != nil {
				return nil, err
			}
			chunk = chunk[:0]
		}
	}
	if len(chunk) > 0 {
		if _, err := h.Append(th, chunk); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// compactLocked merges all of L0 with L1 into a fresh L1 (full-merge
// compaction: simple, with the same double-write traffic pattern).
func (db *DB) compactLocked(th *proc.Thread) error {
	merged := map[string][]byte{}
	// Oldest first so newer tables win.
	read := func(t *sst) error {
		h, err := db.fs.Open(th, t.path, vfs.O_RDONLY)
		if err != nil {
			return err
		}
		defer h.Close(th)
		buf := make([]byte, 256<<10)
		var off int64
		// Stream the file sequentially.
		var pending []byte
		for {
			n, err := h.ReadAt(th, buf, off)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			pending = append(pending, buf[:n]...)
			off += int64(n)
			for len(pending) >= 6 {
				klen := int(binary.LittleEndian.Uint16(pending))
				vlen := int(binary.LittleEndian.Uint32(pending[2:]))
				if len(pending) < 6+klen+vlen {
					break
				}
				k := string(pending[6 : 6+klen])
				v := append([]byte(nil), pending[6+klen:6+klen+vlen]...)
				merged[k] = v
				pending = pending[6+klen+vlen:]
			}
		}
		return nil
	}
	for _, t := range db.l1 {
		if err := read(t); err != nil {
			return err
		}
	}
	for i := len(db.l0) - 1; i >= 0; i-- {
		if err := read(db.l0[i]); err != nil {
			return err
		}
	}
	// Drop tombstones at the bottom level.
	for k, v := range merged {
		if isTombstone(v) {
			delete(merged, k)
		}
	}
	old := append(append([]*sst(nil), db.l0...), db.l1...)
	db.l0 = nil
	db.l1 = nil
	if len(merged) > 0 {
		entries := sortedEntries(merged)
		// Split into ~8MB runs.
		const runBytes = 8 << 20
		var runSize int64
		start := 0
		for i, e := range entries {
			runSize += int64(len(e.k) + len(e.v) + 6)
			if runSize >= runBytes || i == len(entries)-1 {
				t, err := db.writeSST(th, entries[start:i+1])
				if err != nil {
					return err
				}
				db.l1 = append(db.l1, t)
				start, runSize = i+1, 0
			}
		}
	}
	for _, t := range old {
		if err := db.fs.Unlink(th, t.path); err != nil {
			return err
		}
	}
	return nil
}

// Scan iterates all live keys in order, calling fn until it returns false.
// It merges the memtable, L0 and L1 (newest shadowing oldest), streaming
// table files sequentially.
func (db *DB) Scan(th *proc.Thread, fn func(key string, val []byte) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	// Build the merged view (memtable shadows L0 shadows L1).
	shadow := map[string]bool{}
	type src struct {
		entries []kv
	}
	var sources []src
	memEntries := sortedEntries(db.mem)
	sources = append(sources, src{memEntries})
	for _, t := range append(append([]*sst(nil), db.l0...), db.l1...) {
		h, err := db.fs.Open(th, t.path, vfs.O_RDONLY)
		if err != nil {
			return err
		}
		fi, _ := h.Stat(th)
		raw := make([]byte, fi.Size)
		if _, err := h.ReadAt(th, raw, 0); err != nil {
			h.Close(th)
			return err
		}
		h.Close(th)
		var entries []kv
		for off := 0; off+6 <= len(raw); {
			klen := int(binary.LittleEndian.Uint16(raw[off:]))
			vlen := int(binary.LittleEndian.Uint32(raw[off+2:]))
			if off+6+klen+vlen > len(raw) {
				break
			}
			entries = append(entries, kv{string(raw[off+6 : off+6+klen]), raw[off+6+klen : off+6+klen+vlen]})
			off += 6 + klen + vlen
		}
		sources = append(sources, src{entries})
	}
	// Emit in global key order, newest source wins.
	for {
		best := ""
		bestSrc := -1
		for si := range sources {
			for len(sources[si].entries) > 0 && shadow[sources[si].entries[0].k] {
				sources[si].entries = sources[si].entries[1:]
			}
			if len(sources[si].entries) == 0 {
				continue
			}
			k := sources[si].entries[0].k
			if bestSrc == -1 || k < best {
				best, bestSrc = k, si
			}
		}
		if bestSrc == -1 {
			return nil
		}
		e := sources[bestSrc].entries[0]
		sources[bestSrc].entries = sources[bestSrc].entries[1:]
		shadow[e.k] = true
		th.CPU(perfmodel.CPUSmallOp)
		if !isTombstone(e.v) {
			if !fn(e.k, e.v) {
				return nil
			}
		}
	}
}

// Close flushes and releases the WAL handle.
func (db *DB) Close(th *proc.Thread) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.flushLocked(th); err != nil {
		return err
	}
	return db.wal.Close(th)
}

// Stats reports table counts for tests.
func (db *DB) Stats() (l0, l1 int, memEntries int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.l0), len(db.l1), len(db.mem)
}
