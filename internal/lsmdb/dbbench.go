package lsmdb

import (
	"fmt"
	"math/rand"

	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// db_bench driver (paper Table 7). Operation names follow the table rows;
// keys are 16 bytes, values 100 bytes as in LevelDB's db_bench defaults.

// BenchOp names one db_bench workload.
type BenchOp string

const (
	WriteSync  BenchOp = "Write sync."
	WriteSeq   BenchOp = "Write seq."
	WriteRand  BenchOp = "Write rand."
	Overwrite  BenchOp = "Overwrite."
	ReadSeq    BenchOp = "Read seq."
	ReadRand   BenchOp = "Read rand."
	ReadHot    BenchOp = "Read hot."
	DeleteRand BenchOp = "Delete rand."
)

// BenchOps lists Table 7's rows in order.
var BenchOps = []BenchOp{WriteSync, WriteSeq, WriteRand, Overwrite, ReadSeq, ReadRand, ReadHot, DeleteRand}

const (
	benchValueSize = 100
	benchKeyFmt    = "%016d"
)

// BenchResult is one Table 7 cell.
type BenchResult struct {
	Op        BenchOp
	Ops       int64
	VirtualNS int64
	// MicrosPerOp is the Table 7 metric.
	MicrosPerOp float64
}

// RunBench executes one db_bench workload with n operations on a fresh or
// pre-filled database (read workloads fill n keys first without charging
// the measurement clock window).
func RunBench(fs vfs.FileSystem, p *proc.Process, op BenchOp, n int) (BenchResult, error) {
	th := p.NewThread()
	val := make([]byte, benchValueSize)
	rng := rand.New(rand.NewSource(42))

	opts := Options{Dir: "/dbbench-" + string(op[:4])}
	if op == WriteSync {
		opts.SyncWrites = true
	}
	db, err := Open(fs, th, opts)
	if err != nil {
		return BenchResult{}, err
	}

	// Pre-fill for read/overwrite/delete workloads.
	needFill := op == Overwrite || op == ReadSeq || op == ReadRand || op == ReadHot || op == DeleteRand
	if needFill {
		for i := 0; i < n; i++ {
			if err := db.Put(th, fmt.Sprintf(benchKeyFmt, i), val); err != nil {
				return BenchResult{}, err
			}
		}
		if err := db.Flush(th); err != nil {
			return BenchResult{}, err
		}
	}

	start := th.Clk.Now()
	switch op {
	case WriteSync, WriteSeq:
		for i := 0; i < n; i++ {
			if err := db.Put(th, fmt.Sprintf(benchKeyFmt, i), val); err != nil {
				return BenchResult{}, err
			}
		}
	case WriteRand, Overwrite:
		for i := 0; i < n; i++ {
			if err := db.Put(th, fmt.Sprintf(benchKeyFmt, rng.Intn(n)), val); err != nil {
				return BenchResult{}, err
			}
		}
	case ReadSeq:
		count := 0
		err := db.Scan(th, func(string, []byte) bool {
			count++
			return count < n
		})
		if err != nil {
			return BenchResult{}, err
		}
	case ReadRand:
		for i := 0; i < n; i++ {
			if _, err := db.Get(th, fmt.Sprintf(benchKeyFmt, rng.Intn(n))); err != nil && err != ErrNotFound {
				return BenchResult{}, err
			}
		}
	case ReadHot:
		hot := n / 100
		if hot < 1 {
			hot = 1
		}
		for i := 0; i < n; i++ {
			if _, err := db.Get(th, fmt.Sprintf(benchKeyFmt, rng.Intn(hot))); err != nil && err != ErrNotFound {
				return BenchResult{}, err
			}
		}
	case DeleteRand:
		for i := 0; i < n; i++ {
			if err := db.Delete(th, fmt.Sprintf(benchKeyFmt, rng.Intn(n))); err != nil {
				return BenchResult{}, err
			}
		}
	default:
		return BenchResult{}, fmt.Errorf("lsmdb: unknown bench op %q", op)
	}
	elapsed := th.Clk.Now() - start
	if err := db.Close(th); err != nil {
		return BenchResult{}, err
	}
	return BenchResult{
		Op: op, Ops: int64(n), VirtualNS: elapsed,
		MicrosPerOp: float64(elapsed) / float64(n) / 1e3,
	}, nil
}
