package lsmdb_test

import (
	"errors"
	"fmt"
	"testing"

	"zofs/internal/lsmdb"
	"zofs/internal/proc"
	"zofs/internal/sysfactory"
)

func newDB(t *testing.T, opts lsmdb.Options) (*lsmdb.DB, *proc.Thread) {
	t.Helper()
	in, err := sysfactory.ZoFS.New(2 << 30)
	if err != nil {
		t.Fatal(err)
	}
	th := in.Proc.NewThread()
	db, err := lsmdb.Open(in.FS, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, th
}

func TestPutGetDelete(t *testing.T) {
	db, th := newDB(t, lsmdb.Options{})
	if err := db.Put(th, "alpha", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get(th, "alpha")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q,%v", v, err)
	}
	if _, err := db.Get(th, "beta"); !errors.Is(err, lsmdb.ErrNotFound) {
		t.Fatalf("missing key = %v", err)
	}
	if err := db.Delete(th, "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(th, "alpha"); !errors.Is(err, lsmdb.ErrNotFound) {
		t.Fatalf("deleted key = %v", err)
	}
}

func TestFlushAndReadFromSST(t *testing.T) {
	db, th := newDB(t, lsmdb.Options{MemtableBytes: 4 << 10})
	val := make([]byte, 100)
	for i := 0; i < 500; i++ {
		if err := db.Put(th, fmt.Sprintf("key%05d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	l0, l1, mem := db.Stats()
	if l0+l1 == 0 {
		t.Fatalf("expected SSTs after small-memtable fill: l0=%d l1=%d mem=%d", l0, l1, mem)
	}
	// Every key still readable (from memtable or tables).
	for i := 0; i < 500; i += 37 {
		if _, err := db.Get(th, fmt.Sprintf("key%05d", i)); err != nil {
			t.Fatalf("key%05d lost: %v", i, err)
		}
	}
	// Updates shadow older SST content.
	if err := db.Put(th, "key00000", []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Get(th, "key00000")
	if string(v) != "new" {
		t.Fatalf("shadowing broken: %q", v)
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	db, th := newDB(t, lsmdb.Options{MemtableBytes: 2 << 10, L0Limit: 2})
	val := make([]byte, 64)
	for i := 0; i < 200; i++ {
		db.Put(th, fmt.Sprintf("k%04d", i), val)
	}
	for i := 0; i < 200; i += 2 {
		db.Delete(th, fmt.Sprintf("k%04d", i))
	}
	// Force flush+compaction churn.
	for i := 200; i < 600; i++ {
		db.Put(th, fmt.Sprintf("k%04d", i), val)
	}
	for i := 0; i < 200; i += 2 {
		if _, err := db.Get(th, fmt.Sprintf("k%04d", i)); !errors.Is(err, lsmdb.ErrNotFound) {
			t.Fatalf("tombstoned k%04d resurrected: %v", i, err)
		}
	}
	for i := 1; i < 200; i += 2 {
		if _, err := db.Get(th, fmt.Sprintf("k%04d", i)); err != nil {
			t.Fatalf("live k%04d lost: %v", i, err)
		}
	}
}

func TestScanOrderedAndShadowed(t *testing.T) {
	db, th := newDB(t, lsmdb.Options{MemtableBytes: 2 << 10})
	for i := 0; i < 300; i++ {
		db.Put(th, fmt.Sprintf("s%04d", i), []byte("old"))
	}
	db.Put(th, "s0000", []byte("new"))
	db.Delete(th, "s0001")
	var keys []string
	first := ""
	err := db.Scan(th, func(k string, v []byte) bool {
		if k == "s0000" {
			first = string(v)
		}
		keys = append(keys, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != "new" {
		t.Fatalf("scan did not shadow: %q", first)
	}
	if len(keys) != 299 { // 300 - 1 deleted
		t.Fatalf("scan saw %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
}

func TestWALSurvivesReopen(t *testing.T) {
	in, err := sysfactory.ZoFS.New(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	th := in.Proc.NewThread()
	db, err := lsmdb.Open(in.FS, th, lsmdb.Options{Dir: "/wal"})
	if err != nil {
		t.Fatal(err)
	}
	db.Put(th, "persist", []byte("me"))
	// No Close: simulate the process dying with the memtable unflushed;
	// the WAL alone must recover the write.
	db2, err := lsmdb.Open(in.FS, th, lsmdb.Options{Dir: "/wal"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db2.Get(th, "persist")
	if err != nil || string(v) != "me" {
		t.Fatalf("WAL replay = %q,%v", v, err)
	}
}

func TestDbBenchOpsRun(t *testing.T) {
	for _, op := range lsmdb.BenchOps {
		op := op
		t.Run(string(op), func(t *testing.T) {
			in, err := sysfactory.ZoFS.New(2 << 30)
			if err != nil {
				t.Fatal(err)
			}
			r, err := lsmdb.RunBench(in.FS, in.Proc, op, 2000)
			if err != nil {
				t.Fatal(err)
			}
			if r.MicrosPerOp <= 0 {
				t.Fatalf("no cost measured: %+v", r)
			}
		})
	}
}

func TestTable7Ordering(t *testing.T) {
	// Key shape of Table 7: ZoFS has lower latency than Ext4-DAX on every
	// operation, and reads are much cheaper than sync writes.
	lat := func(sys sysfactory.System, op lsmdb.BenchOp) float64 {
		in, err := sys.New(2 << 30)
		if err != nil {
			t.Fatal(err)
		}
		r, err := lsmdb.RunBench(in.FS, in.Proc, op, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return r.MicrosPerOp
	}
	for _, op := range []lsmdb.BenchOp{lsmdb.WriteSync, lsmdb.WriteRand, lsmdb.ReadRand} {
		z := lat(sysfactory.ZoFS, op)
		e := lat(sysfactory.Ext4DAX, op)
		if z >= e {
			t.Errorf("%s: ZoFS (%.2fµs) should beat Ext4-DAX (%.2fµs)", op, z, e)
		}
	}
}
