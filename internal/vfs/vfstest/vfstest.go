// Package vfstest provides a conformance test suite that every file system
// in this repository (ZoFS and the four baselines) must pass. Benchmarks
// compare these systems, so they must agree on semantics first.
package vfstest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// Factory builds a fresh file system and a root thread for one subtest.
type Factory func(t *testing.T) (vfs.FileSystem, *proc.Thread)

// resolve re-dispatches on symlink expansion like the FSLibs dispatcher.
func resolve(fn func(p string) error, p string) error {
	for hop := 0; hop < 40; hop++ {
		err := fn(p)
		var se *vfs.SymlinkError
		if errors.As(err, &se) {
			p = se.Path
			continue
		}
		return err
	}
	return errors.New("vfstest: symlink loop")
}

func statR(fs vfs.FileSystem, th *proc.Thread, p string) (vfs.FileInfo, error) {
	var fi vfs.FileInfo
	err := resolve(func(q string) error {
		var e error
		fi, e = fs.Stat(th, q)
		return e
	}, p)
	return fi, err
}

func openR(fs vfs.FileSystem, th *proc.Thread, p string, flags int) (vfs.Handle, error) {
	var h vfs.Handle
	err := resolve(func(q string) error {
		var e error
		h, e = fs.Open(th, q, flags)
		return e
	}, p)
	return h, err
}

// Run executes the conformance suite against the factory.
func Run(t *testing.T, factory Factory) {
	t.Run("CreateReadWrite", func(t *testing.T) {
		fs, th := factory(t)
		h, err := fs.Create(th, "/f", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		data := []byte("conformance payload")
		if n, err := h.WriteAt(th, data, 0); err != nil || n != len(data) {
			t.Fatalf("WriteAt = %d,%v", n, err)
		}
		out := make([]byte, len(data))
		if n, err := h.ReadAt(th, out, 0); err != nil || n != len(data) || !bytes.Equal(out, data) {
			t.Fatalf("ReadAt = %d %q %v", n, out, err)
		}
		fi, err := h.Stat(th)
		if err != nil || fi.Size != int64(len(data)) {
			t.Fatalf("Stat = %+v %v", fi, err)
		}
		if err := h.Sync(th); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(th); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("OpenMissing", func(t *testing.T) {
		fs, th := factory(t)
		if _, err := openR(fs, th, "/missing", vfs.O_RDONLY); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("err = %v", err)
		}
		if _, err := statR(fs, th, "/missing"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("stat err = %v", err)
		}
	})

	t.Run("OpenCreateTrunc", func(t *testing.T) {
		fs, th := factory(t)
		h, _ := fs.Create(th, "/t", 0o644)
		h.WriteAt(th, []byte("0123456789"), 0)
		h2, err := openR(fs, th, "/t", vfs.O_RDWR|vfs.O_TRUNC)
		if err != nil {
			t.Fatal(err)
		}
		fi, _ := h2.Stat(th)
		if fi.Size != 0 {
			t.Fatalf("O_TRUNC left size %d", fi.Size)
		}
	})

	t.Run("AppendReturnsOffset", func(t *testing.T) {
		fs, th := factory(t)
		h, _ := fs.Create(th, "/a", 0o644)
		for i := 0; i < 5; i++ {
			off, err := h.Append(th, []byte("xxxx"))
			if err != nil || off != int64(i*4) {
				t.Fatalf("append %d: off=%d err=%v", i, off, err)
			}
		}
	})

	t.Run("ReadPastEOF", func(t *testing.T) {
		fs, th := factory(t)
		h, _ := fs.Create(th, "/e", 0o644)
		h.WriteAt(th, []byte("abc"), 0)
		buf := make([]byte, 10)
		n, err := h.ReadAt(th, buf, 0)
		if err != nil || n != 3 {
			t.Fatalf("short read = %d,%v", n, err)
		}
		if n, _ := h.ReadAt(th, buf, 100); n != 0 {
			t.Fatalf("read past EOF = %d", n)
		}
	})

	t.Run("SparseHolesReadZero", func(t *testing.T) {
		fs, th := factory(t)
		h, _ := fs.Create(th, "/s", 0o644)
		h.WriteAt(th, []byte("end"), 10000)
		buf := make([]byte, 100)
		n, err := h.ReadAt(th, buf, 4096)
		if err != nil || n != 100 {
			t.Fatalf("hole read = %d,%v", n, err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("hole not zero")
			}
		}
	})

	t.Run("MultiPageFile", func(t *testing.T) {
		fs, th := factory(t)
		h, _ := fs.Create(th, "/big", 0o644)
		pat := make([]byte, 3*4096+123)
		for i := range pat {
			pat[i] = byte(i * 7)
		}
		if n, err := h.WriteAt(th, pat, 0); err != nil || n != len(pat) {
			t.Fatalf("big write = %d,%v", n, err)
		}
		out := make([]byte, len(pat))
		if n, err := h.ReadAt(th, out, 0); err != nil || n != len(pat) {
			t.Fatalf("big read = %d,%v", n, err)
		}
		if !bytes.Equal(pat, out) {
			t.Fatal("multi-page content mismatch")
		}
		// Unaligned overwrite in the middle.
		h.WriteAt(th, []byte("OVERWRITE"), 5000)
		h.ReadAt(th, out[:9], 5000)
		if string(out[:9]) != "OVERWRITE" {
			t.Fatalf("overwrite readback = %q", out[:9])
		}
	})

	t.Run("MkdirTree", func(t *testing.T) {
		fs, th := factory(t)
		for _, p := range []string{"/d1", "/d1/d2", "/d1/d2/d3"} {
			if err := fs.Mkdir(th, p, 0o755); err != nil {
				t.Fatalf("mkdir %s: %v", p, err)
			}
		}
		if err := fs.Mkdir(th, "/d1", 0o755); !errors.Is(err, vfs.ErrExist) {
			t.Fatalf("dup mkdir = %v", err)
		}
		if err := fs.Mkdir(th, "/nope/x", 0o755); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("mkdir under missing = %v", err)
		}
		if _, err := fs.Create(th, "/d1/d2/d3/leaf", 0o644); err != nil {
			t.Fatal(err)
		}
		fi, err := statR(fs, th, "/d1/d2")
		if err != nil || fi.Type != vfs.TypeDir {
			t.Fatalf("dir stat = %+v %v", fi, err)
		}
	})

	t.Run("ReadDir", func(t *testing.T) {
		fs, th := factory(t)
		fs.Mkdir(th, "/ls", 0o755)
		names := map[string]bool{}
		for i := 0; i < 25; i++ {
			n := fmt.Sprintf("f%02d", i)
			names[n] = true
			if _, err := fs.Create(th, "/ls/"+n, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		fs.Mkdir(th, "/ls/sub", 0o755)
		ents, err := fs.ReadDir(th, "/ls")
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 26 {
			t.Fatalf("ReadDir = %d entries", len(ents))
		}
		subSeen := false
		for _, e := range ents {
			if e.Name == "sub" {
				subSeen = true
				if e.Type != vfs.TypeDir {
					t.Fatal("sub must be a dir")
				}
			} else if !names[e.Name] {
				t.Fatalf("unexpected entry %q", e.Name)
			}
		}
		if !subSeen {
			t.Fatal("sub missing")
		}
	})

	t.Run("UnlinkRmdir", func(t *testing.T) {
		fs, th := factory(t)
		fs.Mkdir(th, "/u", 0o755)
		fs.Create(th, "/u/f", 0o644)
		if err := fs.Rmdir(th, "/u"); !errors.Is(err, vfs.ErrNotEmpty) {
			t.Fatalf("rmdir nonempty = %v", err)
		}
		if err := fs.Unlink(th, "/u"); !errors.Is(err, vfs.ErrIsDir) {
			t.Fatalf("unlink dir = %v", err)
		}
		if err := fs.Rmdir(th, "/u/f"); !errors.Is(err, vfs.ErrNotDir) {
			t.Fatalf("rmdir file = %v", err)
		}
		if err := fs.Unlink(th, "/u/f"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir(th, "/u"); err != nil {
			t.Fatal(err)
		}
		if _, err := statR(fs, th, "/u"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatal("rmdir'd dir still stats")
		}
	})

	t.Run("Rename", func(t *testing.T) {
		fs, th := factory(t)
		fs.Mkdir(th, "/r1", 0o755)
		fs.Mkdir(th, "/r2", 0o755)
		h, _ := fs.Create(th, "/r1/x", 0o644)
		h.WriteAt(th, []byte("move"), 0)
		if err := fs.Rename(th, "/r1/x", "/r2/y"); err != nil {
			t.Fatal(err)
		}
		if _, err := statR(fs, th, "/r1/x"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatal("source survived rename")
		}
		h2, err := openR(fs, th, "/r2/y", vfs.O_RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		h2.ReadAt(th, buf, 0)
		if string(buf) != "move" {
			t.Fatalf("renamed content = %q", buf)
		}
		// Overwriting rename.
		fs.Create(th, "/r2/z", 0o644)
		if err := fs.Rename(th, "/r2/y", "/r2/z"); err != nil {
			t.Fatal(err)
		}
		// Renaming onto a directory fails.
		fs.Create(th, "/r2/w", 0o644)
		if err := fs.Rename(th, "/r2/w", "/r1"); !errors.Is(err, vfs.ErrExist) {
			t.Fatalf("rename onto dir = %v", err)
		}
	})

	t.Run("RenameDir", func(t *testing.T) {
		fs, th := factory(t)
		fs.Mkdir(th, "/old", 0o755)
		fs.Create(th, "/old/kid", 0o644)
		if err := fs.Rename(th, "/old", "/new"); err != nil {
			t.Fatal(err)
		}
		if _, err := statR(fs, th, "/new/kid"); err != nil {
			t.Fatalf("child lost in dir rename: %v", err)
		}
	})

	t.Run("Symlink", func(t *testing.T) {
		fs, th := factory(t)
		fs.Mkdir(th, "/tgt", 0o755)
		h, _ := fs.Create(th, "/tgt/file", 0o644)
		h.WriteAt(th, []byte("linked"), 0)
		if err := fs.Symlink(th, "/tgt/file", "/ln"); err != nil {
			t.Fatal(err)
		}
		if tgt, err := fs.Readlink(th, "/ln"); err != nil || tgt != "/tgt/file" {
			t.Fatalf("Readlink = %q,%v", tgt, err)
		}
		fi, err := statR(fs, th, "/ln")
		if err != nil || fi.Type != vfs.TypeRegular {
			t.Fatalf("stat through link = %+v %v", fi, err)
		}
		// Dir symlink mid-path.
		if err := fs.Symlink(th, "/tgt", "/dl"); err != nil {
			t.Fatal(err)
		}
		h2, err := openR(fs, th, "/dl/file", vfs.O_RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 6)
		h2.ReadAt(th, buf, 0)
		if string(buf) != "linked" {
			t.Fatalf("through-link read = %q", buf)
		}
		if _, err := fs.Readlink(th, "/tgt/file"); !errors.Is(err, vfs.ErrInvalid) {
			t.Fatalf("readlink on regular = %v", err)
		}
	})

	t.Run("Truncate", func(t *testing.T) {
		fs, th := factory(t)
		h, _ := fs.Create(th, "/tr", 0o644)
		h.WriteAt(th, bytes.Repeat([]byte{9}, 10000), 0)
		if err := fs.Truncate(th, "/tr", 100); err != nil {
			t.Fatal(err)
		}
		fi, _ := statR(fs, th, "/tr")
		if fi.Size != 100 {
			t.Fatalf("size = %d", fi.Size)
		}
		if err := fs.Truncate(th, "/tr", 20000); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 50)
		h.ReadAt(th, buf, 15000)
		for _, b := range buf {
			if b != 0 {
				t.Fatal("extended area must read zero")
			}
		}
	})

	t.Run("ChmodChown", func(t *testing.T) {
		fs, th := factory(t)
		fs.Create(th, "/perm", 0o644)
		if err := fs.Chmod(th, "/perm", 0o600); err != nil {
			t.Fatal(err)
		}
		fi, _ := statR(fs, th, "/perm")
		if fi.Mode != 0o600 {
			t.Fatalf("mode = %o", fi.Mode)
		}
		if err := fs.Chown(th, "/perm", 7, 8); err != nil {
			t.Fatal(err)
		}
		fi, _ = statR(fs, th, "/perm")
		if fi.UID != 7 || fi.GID != 8 {
			t.Fatalf("owner = %d/%d", fi.UID, fi.GID)
		}
	})

	t.Run("ConcurrentWritersDistinctFiles", func(t *testing.T) {
		fs, th := factory(t)
		const workers = 4
		done := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				wt := th.Proc.NewThread()
				p := fmt.Sprintf("/w%d", w)
				h, err := fs.Create(wt, p, 0o644)
				if err != nil {
					done <- err
					return
				}
				pat := bytes.Repeat([]byte{byte(w + 1)}, 4096)
				for i := 0; i < 20; i++ {
					if _, err := h.Append(wt, pat); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(w)
		}
		for w := 0; w < workers; w++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		for w := 0; w < workers; w++ {
			fi, err := statR(fs, th, fmt.Sprintf("/w%d", w))
			if err != nil || fi.Size != 20*4096 {
				t.Fatalf("worker %d: %+v %v", w, fi, err)
			}
		}
	})

	t.Run("ConcurrentAppendSharedFile", func(t *testing.T) {
		fs, th := factory(t)
		h, err := fs.Create(th, "/shared", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		const workers, per = 4, 25
		done := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func() {
				wt := th.Proc.NewThread()
				for i := 0; i < per; i++ {
					if _, err := h.Append(wt, make([]byte, 64)); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for w := 0; w < workers; w++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		fi, _ := statR(fs, th, "/shared")
		if fi.Size != workers*per*64 {
			t.Fatalf("interleaved appends lost data: size=%d want %d", fi.Size, workers*per*64)
		}
	})
}
