// Package vfs defines the file system interface implemented by every file
// system in this repository — ZoFS and the four baselines (Ext4-DAX, PMFS,
// NOVA, Strata) — so that the benchmark workloads (FxMark, Filebench,
// db_bench, TPC-C) and the FSLibs dispatcher can drive any of them
// interchangeably.
package vfs

import (
	"errors"
	"fmt"

	"zofs/internal/coffer"
	"zofs/internal/proc"
)

// Open flags (a subset of POSIX).
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_ACCESS = 0x3 // mask for the access mode
	O_CREATE = 0x40
	O_EXCL   = 0x80
	O_TRUNC  = 0x200
	O_APPEND = 0x400
)

// FileType distinguishes inode types.
type FileType uint8

const (
	TypeRegular FileType = iota + 1
	TypeDir
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return "?"
	}
}

// FileInfo is the stat result.
type FileInfo struct {
	Type   FileType
	Mode   coffer.Mode
	UID    uint32
	GID    uint32
	Size   int64
	Nlink  uint32
	Mtime  int64 // virtual ns
	Inode  int64 // implementation-defined inode identifier
	Coffer coffer.ID
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name   string
	Type   FileType
	Inode  int64
	Coffer coffer.ID
}

// Error sentinels (errno analogues).
var (
	ErrNotExist    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrPerm        = errors.New("vfs: permission denied")
	ErrNoSpace     = errors.New("vfs: no space left on device")
	ErrNameTooLong = errors.New("vfs: file name too long")
	ErrInvalid     = errors.New("vfs: invalid argument")
	ErrBadFD       = errors.New("vfs: bad file descriptor")
	ErrCorrupted   = errors.New("vfs: file system structure corrupted")
	ErrIO          = errors.New("vfs: input/output error")
	ErrCrossDevice = errors.New("vfs: cross-device link")

	// Failure-path typed errors (graceful degradation, DESIGN.md §13).
	// ErrLeaseTimeout: a lease acquisition exhausted its retry deadline
	// budget behind a live foreign holder. ErrStaleLease: a resurrected
	// holder's publish was fenced off because its lease epoch was
	// superseded by a steal. ErrReadOnlyCoffer / ErrOfflineCoffer: the op
	// targeted a quarantined coffer (writes rejected / all access
	// rejected); other coffers keep serving.
	ErrLeaseTimeout   = errors.New("vfs: lease acquisition timed out")
	ErrStaleLease     = errors.New("vfs: stale lease epoch")
	ErrReadOnlyCoffer = errors.New("vfs: coffer quarantined read-only")
	ErrOfflineCoffer  = errors.New("vfs: coffer quarantined offline")
)

// SymlinkError is returned when a path walk expands a symbolic link: the
// µFS reports the rewritten path to the dispatcher, which re-dispatches the
// request (§4.2 "whenever one symlink is expanded in a µFS, the new path
// will be returned to the dispatcher").
type SymlinkError struct {
	// Path is the remaining path after expanding the link.
	Path string
}

func (e *SymlinkError) Error() string { return fmt.Sprintf("vfs: symlink expansion to %q", e.Path) }

// Handle is an open file.
type Handle interface {
	// ReadAt reads len(p) bytes from offset off, returning short counts at
	// end of file.
	ReadAt(th *proc.Thread, p []byte, off int64) (int, error)
	// WriteAt writes p at offset off, extending the file as needed.
	WriteAt(th *proc.Thread, p []byte, off int64) (int, error)
	// Append atomically appends p at the end of file, returning the offset
	// at which it landed.
	Append(th *proc.Thread, p []byte) (int64, error)
	// Stat returns current metadata.
	Stat(th *proc.Thread) (FileInfo, error)
	// Sync persists pending data (a no-op for the synchronous FSs).
	Sync(th *proc.Thread) error
	// Close releases the handle.
	Close(th *proc.Thread) error
}

// FileSystem is the interface every file system implements. Paths are
// absolute, slash-separated, already cleaned by the dispatcher.
type FileSystem interface {
	Name() string

	Create(th *proc.Thread, path string, mode coffer.Mode) (Handle, error)
	Open(th *proc.Thread, path string, flags int) (Handle, error)
	Mkdir(th *proc.Thread, path string, mode coffer.Mode) error
	Unlink(th *proc.Thread, path string) error
	Rmdir(th *proc.Thread, path string) error
	Rename(th *proc.Thread, oldPath, newPath string) error
	Stat(th *proc.Thread, path string) (FileInfo, error)
	Chmod(th *proc.Thread, path string, mode coffer.Mode) error
	Chown(th *proc.Thread, path string, uid, gid uint32) error
	Symlink(th *proc.Thread, target, link string) error
	Readlink(th *proc.Thread, path string) (string, error)
	ReadDir(th *proc.Thread, path string) ([]DirEntry, error)
	Truncate(th *proc.Thread, path string, size int64) error
}

// SplitPath returns the parent directory and base name of a cleaned
// absolute path ("/a/b/c" -> "/a/b", "c"; "/x" -> "/", "x").
func SplitPath(p string) (dir, base string) {
	if p == "/" || p == "" {
		return "/", ""
	}
	i := len(p) - 1
	for i >= 0 && p[i] != '/' {
		i--
	}
	if i <= 0 {
		return "/", p[i+1:]
	}
	return p[:i], p[i+1:]
}

// Clean lexically normalizes a path: collapses "//", resolves "." and
// "..". Absolute paths stay absolute.
func Clean(p string) string {
	abs := len(p) > 0 && p[0] == '/'
	var out []string
	start := 0
	flush := func(c string) {
		switch c {
		case "", ".":
		case "..":
			if len(out) > 0 && out[len(out)-1] != ".." {
				out = out[:len(out)-1]
			} else if !abs {
				out = append(out, "..")
			}
		default:
			out = append(out, c)
		}
	}
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			flush(p[start:i])
			start = i + 1
		}
	}
	s := ""
	for i, c := range out {
		if i > 0 {
			s += "/"
		}
		s += c
	}
	if abs {
		return "/" + s
	}
	if s == "" {
		return "."
	}
	return s
}

// Join concatenates a directory and a name.
func Join(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}
