package vfs

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitPath(t *testing.T) {
	cases := []struct{ in, dir, base string }{
		{"/", "/", ""},
		{"", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c.txt", "/a/b", "c.txt"},
	}
	for _, c := range cases {
		d, b := SplitPath(c.in)
		if d != c.dir || b != c.base {
			t.Errorf("SplitPath(%q) = %q,%q want %q,%q", c.in, d, b, c.dir, c.base)
		}
	}
}

func TestJoin(t *testing.T) {
	if Join("/", "x") != "/x" || Join("/a", "b") != "/a/b" {
		t.Fatal("Join broken")
	}
}

func TestClean(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/", "/"},
		{"//a//b/", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/../b", "/b"},
		{"/../a", "/a"},
		{"/a/b/../../c", "/c"},
		{"a/../b", "b"},
		{"../x", "../x"},
		{".", "."},
		{"a/..", "."},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q want %q", c.in, got, c.want)
		}
	}
}

// Property: Clean is idempotent and Join/SplitPath invert on clean paths.
func TestPathProperty(t *testing.T) {
	f := func(parts []uint8) bool {
		segs := make([]string, 0, len(parts))
		for _, p := range parts {
			segs = append(segs, string(rune('a'+p%26)))
		}
		p := "/" + strings.Join(segs, "/")
		cp := Clean(p)
		if Clean(cp) != cp {
			return false
		}
		if len(segs) == 0 {
			return cp == "/"
		}
		dir, base := SplitPath(cp)
		return Join(dir, base) == cp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFileTypeString(t *testing.T) {
	if TypeRegular.String() != "file" || TypeDir.String() != "dir" ||
		TypeSymlink.String() != "symlink" || FileType(99).String() != "?" {
		t.Fatal("FileType.String broken")
	}
}

func TestSymlinkErrorMessage(t *testing.T) {
	e := &SymlinkError{Path: "/t"}
	if !strings.Contains(e.Error(), "/t") {
		t.Fatal("SymlinkError message")
	}
}
