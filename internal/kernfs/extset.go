package kernfs

import (
	"zofs/internal/coffer"
	"zofs/internal/rbtree"
)

// extentSet is a coalescing set of page extents built on a red-black tree
// (start page -> page count). KernFS keeps one for global free space and one
// per coffer for allocated space (§4.1).
type extentSet struct {
	t     *rbtree.Tree
	pages int64
}

func newExtentSet() *extentSet { return &extentSet{t: rbtree.New()} }

// Pages returns the total number of pages in the set.
func (s *extentSet) Pages() int64 { return s.pages }

// Add inserts [start, start+count), coalescing with adjacent extents.
// Overlapping adds are a caller bug and corrupt the set; callers guarantee
// disjointness (the allocation table is the source of truth).
func (s *extentSet) Add(start, count int64) {
	if count <= 0 {
		return
	}
	added := count
	// Coalesce with predecessor.
	if pk, pv, ok := s.t.Floor(start); ok && pk+pv == start {
		s.t.Delete(pk)
		start, count = pk, pv+count
	}
	// Coalesce with successor.
	if nk, nv, ok := s.t.Ceiling(start); ok && start+count == nk {
		s.t.Delete(nk)
		count += nv
	}
	s.t.Insert(start, count)
	s.pages += added
}

// Remove deletes [start, start+count) from the set, splitting the
// containing extent as needed. It reports whether the full range was
// present.
func (s *extentSet) Remove(start, count int64) bool {
	if count <= 0 {
		return true
	}
	k, v, ok := s.t.Floor(start)
	if !ok || k+v < start+count {
		return false
	}
	s.t.Delete(k)
	if k < start {
		s.t.Insert(k, start-k)
	}
	if k+v > start+count {
		s.t.Insert(start+count, k+v-(start+count))
	}
	s.pages -= count
	return true
}

// Contains reports whether every page of [start, start+count) is present.
func (s *extentSet) Contains(start, count int64) bool {
	k, v, ok := s.t.Floor(start)
	return ok && k+v >= start+count
}

// TakeFirst removes and returns up to want pages as extents, first-fit in
// address order. It returns fewer pages only if the set runs dry.
func (s *extentSet) TakeFirst(want int64) []coffer.Extent {
	var out []coffer.Extent
	for want > 0 {
		k, v, ok := s.t.Min()
		if !ok {
			break
		}
		take := v
		if take > want {
			take = want
		}
		s.t.Delete(k)
		if take < v {
			s.t.Insert(k+take, v-take)
		}
		s.pages -= take
		out = append(out, coffer.Extent{Start: k, Count: take})
		want -= take
	}
	return out
}

// TakeRun removes and returns want pages as a single contiguous run, or
// ok=false (set untouched) when no extent is large enough. Best-fit: the
// smallest sufficient extent is split, keeping large runs intact for later
// batch grants.
func (s *extentSet) TakeRun(want int64) (coffer.Extent, bool) {
	if want <= 0 {
		return coffer.Extent{}, false
	}
	bestK, bestV := int64(-1), int64(0)
	s.t.Ascend(func(k, v int64) bool {
		if v >= want && (bestK < 0 || v < bestV) {
			bestK, bestV = k, v
			if v == want {
				return false
			}
		}
		return true
	})
	if bestK < 0 {
		return coffer.Extent{}, false
	}
	s.t.Delete(bestK)
	if bestV > want {
		s.t.Insert(bestK+want, bestV-want)
	}
	s.pages -= want
	return coffer.Extent{Start: bestK, Count: want}, true
}

// All returns every extent in address order.
func (s *extentSet) All() []coffer.Extent {
	var out []coffer.Extent
	s.t.Ascend(func(k, v int64) bool {
		out = append(out, coffer.Extent{Start: k, Count: v})
		return true
	})
	return out
}
