package kernfs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"zofs/internal/byteflow"
	"zofs/internal/coffer"
	"zofs/internal/lockprof"
	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/simclock"
)

// Persistent path→coffer hash table (§4.1: "Treasury also introduces a
// persistent hash table ... The key of the hash table is the path of the
// coffer, and the value is the coffer-ID").
//
// Layout: a fixed region of bucket-head pages (8-byte page numbers, one per
// bucket) followed by dynamically allocated entry pages. Each entry page:
//
//	0  next    u64  (page number of next entry page in the chain; 0 = none)
//	8  used    u16  (bytes used beyond the header)
//	10 pad[6]
//	16 entries: {hash u64, cofferID u32, state u8, pathLen u16, pad u8,
//	             path bytes, padded to 8-byte alignment}
//
// Deletion tombstones entries (state = entryDead); recovery compacts them.
// A volatile map mirrors the table for O(1) lookups.
const (
	pathBuckets     = 4096
	entryPageHdr    = 16
	entryHdr        = 16
	entryLive       = 1
	entryDead       = 2
	entryPageUsable = nvm.PageSize - entryPageHdr
)

// pathSnap is an immutable copy-on-write snapshot of the live path→coffer
// map, published for lock-free readers.
type pathSnap struct {
	m map[string]coffer.ID
}

type pathTable struct {
	dev       *nvm.Device
	bucketOff int64 // byte offset of bucket-head array
	sm        *spaceManager

	// wmu is the write-side coupling to KernFS.pmu: insert/remove/rename
	// serialize on it; readers normally never touch it (they consume the
	// seq-validated snapshot below) and fall back to its read side only if
	// they catch a writer mid-publish.
	wmu *lockprof.RWMutex

	vol map[string]coffer.ID

	// Lock-free read protocol (the dcache's verify-against-truth trick
	// applied to the path table): writers bump seq to odd, mutate vol,
	// publish a fresh immutable snapshot, and bump seq to even. Readers
	// load seq, read the snapshot pointer, and re-check seq — a torn
	// observation (odd or changed seq) retries and then falls back to the
	// read lock. Path resolution therefore never blocks behind a concurrent
	// coffer create/delete/rename.
	seq  atomic.Uint64
	snap atomic.Pointer[pathSnap]
}

// pathTabBytes is the persistent size of the bucket-head region.
func pathTabBytes() int64 { return pathBuckets * 8 }

func pathHash(p string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(p))
	return h.Sum64()
}

func (pt *pathTable) bucketFor(p string) int64 {
	return int64(pathHash(p) % pathBuckets)
}

func (pt *pathTable) bucketHead(clk *simclock.Clock, b int64) int64 {
	var buf [8]byte
	pt.dev.Read(clk, pt.bucketOff+b*8, buf[:])
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

func (pt *pathTable) setBucketHead(clk *simclock.Clock, b, page int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(page))
	pt.dev.WriteNTClass(clk, byteflow.ClassDentry, pt.bucketOff+b*8, buf[:])
}

func entrySize(pathLen int) int64 {
	n := int64(entryHdr + pathLen)
	return (n + 7) &^ 7
}

// beginWrite/endWrite bracket a volatile-map mutation with the seqlock
// odd/even protocol; endWrite publishes the COW snapshot.
func (pt *pathTable) beginWrite() { pt.seq.Add(1) }

func (pt *pathTable) endWrite() {
	pt.publish()
	pt.seq.Add(1)
}

// publish installs a fresh immutable snapshot of vol. init/load call it
// directly (single-threaded contexts where the seq dance is unnecessary).
func (pt *pathTable) publish() {
	s := &pathSnap{m: make(map[string]coffer.ID, len(pt.vol))}
	for k, v := range pt.vol {
		s.m[k] = v
	}
	pt.snap.Store(s)
}

// snapshot returns a seq-stable snapshot, or nil when a writer is
// mid-publish after a bounded retry (callers fall back to the read lock).
func (pt *pathTable) snapshot() *pathSnap {
	for try := 0; try < 2; try++ {
		s1 := pt.seq.Load()
		snap := pt.snap.Load()
		if s1%2 == 0 && pt.seq.Load() == s1 && snap != nil {
			return snap
		}
	}
	return nil
}

// init formats the bucket heads to empty. Path-table traffic is directory
// structure at the Treasury layer; the explicit class keeps mkfs-era
// formatting (nil clock) out of the ledger's residual.
func (pt *pathTable) init(clk *simclock.Clock) {
	pt.dev.ZeroClass(clk, byteflow.ClassDentry, pt.bucketOff, pathTabBytes())
	pt.vol = map[string]coffer.ID{}
	pt.publish()
}

// load rebuilds the volatile map by walking every bucket chain.
func (pt *pathTable) load(clk *simclock.Clock) error {
	pt.vol = map[string]coffer.ID{}
	page := make([]byte, nvm.PageSize)
	for b := int64(0); b < pathBuckets; b++ {
		for pg := pt.bucketHead(clk, b); pg != 0; {
			pt.dev.Read(clk, pg*nvm.PageSize, page)
			next := int64(binary.LittleEndian.Uint64(page[0:]))
			used := int64(binary.LittleEndian.Uint16(page[8:]))
			if used > entryPageUsable {
				return fmt.Errorf("kernfs: corrupt path-table page %d (used %d)", pg, used)
			}
			for off := int64(entryPageHdr); off < entryPageHdr+used; {
				id := coffer.ID(binary.LittleEndian.Uint32(page[off+8:]))
				state := page[off+12]
				plen := int(binary.LittleEndian.Uint16(page[off+13:]))
				sz := entrySize(plen)
				if off+sz > int64(nvm.PageSize) {
					return fmt.Errorf("kernfs: corrupt path-table entry at page %d off %d", pg, off)
				}
				if state == entryLive {
					pt.vol[string(page[off+entryHdr:off+entryHdr+int64(plen)])] = id
				}
				off += sz
			}
			pg = next
		}
	}
	pt.publish()
	return nil
}

// lookup finds the coffer for an exact path, with a hash-probe CPU charge —
// this is the per-prefix cost that makes deep paths slower in ZoFS (§6.2).
// Lock-free on the snapshot; callers holding the write lock read vol
// directly via lookupLocked.
func (pt *pathTable) lookup(clk *simclock.Clock, p string) (coffer.ID, bool) {
	if clk != nil {
		clk.Advance(perfmodel.CPUHashLookup)
	}
	if s := pt.snapshot(); s != nil {
		id, ok := s.m[p]
		return id, ok
	}
	// Writer mid-publish: fall back to the read lock for a stable view.
	if pt.wmu != nil {
		pt.wmu.RLock(clk)
		defer pt.wmu.RUnlock(clk)
	}
	id, ok := pt.vol[p]
	return id, ok
}

// lookupLocked reads the volatile map directly; the caller holds wmu.
func (pt *pathTable) lookupLocked(clk *simclock.Clock, p string) (coffer.ID, bool) {
	if clk != nil {
		clk.Advance(perfmodel.CPUHashLookup)
	}
	id, ok := pt.vol[p]
	return id, ok
}

// insert adds a live entry, persisting it in the bucket chain.
func (pt *pathTable) insert(clk *simclock.Clock, p string, id coffer.ID) error {
	if pt.wmu != nil {
		pt.wmu.Lock(clk)
		defer pt.wmu.Unlock(clk)
	}
	if _, dup := pt.vol[p]; dup {
		return ErrExists
	}
	if len(p) > coffer.MaxPathLen {
		return fmt.Errorf("%w: path too long", ErrInvalid)
	}
	b := pt.bucketFor(p)
	sz := entrySize(len(p))

	// Find an entry page with room.
	var hdr [16]byte
	pg := pt.bucketHead(clk, b)
	for cur := pg; cur != 0; {
		pt.dev.Read(clk, cur*nvm.PageSize, hdr[:])
		used := int64(binary.LittleEndian.Uint16(hdr[8:]))
		if used+sz <= entryPageUsable {
			pt.writeEntry(clk, cur, entryPageHdr+used, p, id)
			binary.LittleEndian.PutUint16(hdr[8:], uint16(used+sz))
			pt.dev.WriteNTClass(clk, byteflow.ClassDentry, cur*nvm.PageSize+8, hdr[8:10])
			pt.beginWrite()
			pt.vol[p] = id
			pt.endWrite()
			return nil
		}
		cur = int64(binary.LittleEndian.Uint64(hdr[0:]))
	}

	// Allocate a fresh entry page at the head of the chain.
	exts, err := pt.sm.allocate(clk, 0, coffer.KernelID, 1)
	if err != nil {
		return err
	}
	newPg := exts[0].Start
	page := make([]byte, nvm.PageSize)
	binary.LittleEndian.PutUint64(page[0:], uint64(pg))
	binary.LittleEndian.PutUint16(page[8:], uint16(sz))
	pt.encodeEntry(page[entryPageHdr:], p, id)
	pt.dev.WriteNTClass(clk, byteflow.ClassDentry, newPg*nvm.PageSize, page)
	pt.setBucketHead(clk, b, newPg)
	pt.beginWrite()
	pt.vol[p] = id
	pt.endWrite()
	return nil
}

func (pt *pathTable) encodeEntry(dst []byte, p string, id coffer.ID) {
	binary.LittleEndian.PutUint64(dst[0:], pathHash(p))
	binary.LittleEndian.PutUint32(dst[8:], uint32(id))
	dst[12] = entryLive
	binary.LittleEndian.PutUint16(dst[13:], uint16(len(p)))
	copy(dst[entryHdr:], p)
}

func (pt *pathTable) writeEntry(clk *simclock.Clock, pg, off int64, p string, id coffer.ID) {
	buf := make([]byte, entrySize(len(p)))
	pt.encodeEntry(buf, p, id)
	pt.dev.WriteNTClass(clk, byteflow.ClassDentry, pg*nvm.PageSize+off, buf)
}

// remove tombstones the entry for path p. When the tombstone leaves its
// entry page with no live entries the page is unlinked from the bucket chain
// and returned to the free pool — without this, coffer create/delete churn
// consumes one page per touched bucket forever and exact free-page
// conservation is unattainable. Tombstone first, unlink second, release
// last: a crash anywhere in the sequence leaves either a dead entry in the
// chain (load skips it) or an unreachable KernelID page (the allocation
// table and owner tree still agree, and recovery compaction reclaims it).
func (pt *pathTable) remove(clk *simclock.Clock, p string) error {
	if pt.wmu != nil {
		pt.wmu.Lock(clk)
		defer pt.wmu.Unlock(clk)
	}
	if _, ok := pt.vol[p]; !ok {
		return ErrNotFound
	}
	b := pt.bucketFor(p)
	h := pathHash(p)
	page := make([]byte, nvm.PageSize)
	prev := int64(0)
	for pg := pt.bucketHead(clk, b); pg != 0; {
		pt.dev.Read(clk, pg*nvm.PageSize, page)
		next := int64(binary.LittleEndian.Uint64(page[0:]))
		used := int64(binary.LittleEndian.Uint16(page[8:]))
		for off := int64(entryPageHdr); off < entryPageHdr+used; {
			eh := binary.LittleEndian.Uint64(page[off:])
			state := page[off+12]
			plen := int(binary.LittleEndian.Uint16(page[off+13:]))
			sz := entrySize(plen)
			if state == entryLive && eh == h && string(page[off+entryHdr:off+entryHdr+int64(plen)]) == p {
				pt.dev.WriteNTClass(clk, byteflow.ClassDentry, pg*nvm.PageSize+off+12, []byte{entryDead})
				page[off+12] = entryDead
				if pageAllDead(page, used) {
					if prev == 0 {
						pt.setBucketHead(clk, b, next)
					} else {
						var nb [8]byte
						binary.LittleEndian.PutUint64(nb[:], uint64(next))
						pt.dev.WriteNTClass(clk, byteflow.ClassDentry, prev*nvm.PageSize, nb[:])
					}
					if err := pt.sm.release(clk, coffer.KernelID, pg, 1); err != nil {
						return err
					}
				}
				pt.beginWrite()
				delete(pt.vol, p)
				pt.endWrite()
				return nil
			}
			off += sz
		}
		prev = pg
		pg = next
	}
	// Volatile map said it existed; persistent chain disagrees.
	return fmt.Errorf("kernfs: path table inconsistency for %q", p)
}

// pageAllDead reports whether an entry page holds no live entries.
func pageAllDead(page []byte, used int64) bool {
	for off := int64(entryPageHdr); off < entryPageHdr+used; {
		if page[off+12] == entryLive {
			return false
		}
		plen := int(binary.LittleEndian.Uint16(page[off+13:]))
		off += entrySize(plen)
	}
	return true
}

// rename atomically (in the volatile view) re-keys an entry.
func (pt *pathTable) rename(clk *simclock.Clock, oldPath, newPath string, id coffer.ID) error {
	if err := pt.insert(clk, newPath, id); err != nil {
		return err
	}
	if err := pt.remove(clk, oldPath); err != nil {
		pt.remove(clk, newPath) // roll back best-effort
		return err
	}
	return nil
}

// all returns a snapshot of every live path→coffer mapping. Lock-free when
// the snapshot is stable.
func (pt *pathTable) all() map[string]coffer.ID {
	if s := pt.snapshot(); s != nil {
		return s.m
	}
	out := make(map[string]coffer.ID, len(pt.vol))
	for k, v := range pt.vol {
		out[k] = v
	}
	return out
}
