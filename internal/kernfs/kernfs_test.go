package kernfs

import (
	"errors"
	"testing"

	"zofs/internal/coffer"
	"zofs/internal/nvm"
	"zofs/internal/proc"
)

func newFS(t *testing.T) (*nvm.Device, *KernFS) {
	t.Helper()
	dev := nvm.NewDevice(64 << 20)
	if err := Mkfs(dev, MkfsOptions{RootMode: 0o755}); err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	k, err := Mount(dev)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return dev, k
}

func mountedThread(t *testing.T, k *KernFS, uid, gid uint32) *proc.Thread {
	t.Helper()
	p := proc.NewProcess(k.Device(), uid, gid)
	th := p.NewThread()
	if err := k.FSMount(th); err != nil {
		t.Fatalf("FSMount: %v", err)
	}
	return th
}

func TestMkfsMountRoot(t *testing.T) {
	_, k := newFS(t)
	root := k.RootCoffer()
	rp, ok := k.Info(root)
	if !ok {
		t.Fatal("root coffer missing")
	}
	if rp.Path != "/" || rp.Type != coffer.TypeZoFS || rp.Mode != 0o755 {
		t.Fatalf("root coffer = %+v", rp)
	}
	if rp.RootInode == 0 || rp.Custom == 0 {
		t.Fatal("root coffer entry pages unset")
	}
	if id, ok := k.LookupPath(nil, "/"); !ok || id != root {
		t.Fatalf("LookupPath(/) = %d,%v", id, ok)
	}
}

func TestRemountPreservesState(t *testing.T) {
	dev, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	id, err := k.CofferNew(th, k.RootCoffer(), "/data", coffer.TypeZoFS, 0o640, 970, 970, 3)
	if err != nil {
		t.Fatalf("CofferNew: %v", err)
	}
	free := k.FreePages()

	k2, err := Mount(dev)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	if got, ok := k2.LookupPath(nil, "/data"); !ok || got != id {
		t.Fatalf("remounted LookupPath = %d,%v", got, ok)
	}
	rp, _ := k2.Info(id)
	if rp.Mode != 0o640 || rp.UID != 970 {
		t.Fatalf("remounted coffer meta = %+v", rp)
	}
	if k2.FreePages() != free {
		t.Fatalf("free pages drifted across remount: %d vs %d", k2.FreePages(), free)
	}
}

func TestCofferNewPermissionChecks(t *testing.T) {
	_, k := newFS(t)
	// Root dir is 0755 root-owned; an unprivileged user cannot create there.
	th := mountedThread(t, k, 1000, 1000)
	_, err := k.CofferNew(th, k.RootCoffer(), "/nope", coffer.TypeZoFS, 0o644, 1000, 1000, 3)
	if !errors.Is(err, ErrPerm) {
		t.Fatalf("expected ErrPerm, got %v", err)
	}
	rootTh := mountedThread(t, k, 0, 0)
	id, err := k.CofferNew(rootTh, k.RootCoffer(), "/home", coffer.TypeZoFS, 0o777, 0, 0, 3)
	if err != nil {
		t.Fatalf("CofferNew as root: %v", err)
	}
	// Now the user can create under /home (0777).
	if _, err := k.CofferNew(th, id, "/home/u", coffer.TypeZoFS, 0o700, 1000, 1000, 3); err != nil {
		t.Fatalf("CofferNew under writable parent: %v", err)
	}
	// Duplicate path rejected.
	if _, err := k.CofferNew(th, id, "/home/u", coffer.TypeZoFS, 0o700, 1000, 1000, 3); !errors.Is(err, ErrExists) {
		t.Fatalf("expected ErrExists, got %v", err)
	}
	// Relative path rejected.
	if _, err := k.CofferNew(th, id, "rel", coffer.TypeZoFS, 0o700, 1000, 1000, 3); !errors.Is(err, ErrInvalid) {
		t.Fatalf("expected ErrInvalid, got %v", err)
	}
}

func TestCofferMapPermissionAndMPK(t *testing.T) {
	_, k := newFS(t)
	rootTh := mountedThread(t, k, 0, 0)
	id, err := k.CofferNew(rootTh, k.RootCoffer(), "/secret", coffer.TypeZoFS, 0o600, 500, 500, 3)
	if err != nil {
		t.Fatal(err)
	}

	other := mountedThread(t, k, 1000, 1000)
	if _, err := k.CofferMap(other, id, false); !errors.Is(err, ErrPerm) {
		t.Fatalf("foreign read map: %v, want ErrPerm", err)
	}

	owner := mountedThread(t, k, 500, 500)
	mi, err := k.CofferMap(owner, id, true)
	if err != nil {
		t.Fatalf("owner map: %v", err)
	}
	if mi.Key == 0 {
		t.Fatal("coffer must get a non-zero MPK key")
	}
	// Root page mapped read-only, data pages writable.
	if kk, ok := owner.Proc.Mem.KeyOf(int64(id)); !ok || kk != mi.Key {
		t.Fatalf("root page key = %d,%v", kk, ok)
	}
	// Accessing data through an open window works.
	owner.OpenWindow(mi.Key, true)
	owner.WriteNT(mi.Root.RootInode*nvm.PageSize, []byte("inode"))
	owner.CloseWindow()

	// Re-map returns the same key.
	mi2, err := k.CofferMap(owner, id, true)
	if err != nil || mi2.Key != mi.Key {
		t.Fatalf("remap: %v key=%d want %d", err, mi2.Key, mi.Key)
	}
}

func TestMPKRegionExhaustion(t *testing.T) {
	_, k := newFS(t)
	rootTh := mountedThread(t, k, 0, 0)
	var ids []coffer.ID
	for i := 0; i < 16; i++ {
		id, err := k.CofferNew(rootTh, k.RootCoffer(), "/c"+string(rune('a'+i)), coffer.TypeZoFS, 0o777, 0, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var lastErr error
	mapped := 0
	for _, id := range ids {
		if _, err := k.CofferMap(rootTh, id, true); err != nil {
			lastErr = err
			break
		}
		mapped++
	}
	if mapped != 15 {
		t.Fatalf("mapped %d coffers, want 15 (15 MPK regions)", mapped)
	}
	if !errors.Is(lastErr, ErrNoMPKRegions) {
		t.Fatalf("16th map error = %v", lastErr)
	}
	// Unmapping one frees a region.
	if err := k.CofferUnmap(rootTh, ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CofferMap(rootTh, ids[15], true); err != nil {
		t.Fatalf("map after unmap: %v", err)
	}
}

func TestEnlargeShrink(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	id, _ := k.CofferNew(th, k.RootCoffer(), "/d", coffer.TypeZoFS, 0o755, 0, 0, 3)

	// Enlarge requires a writable mapping.
	if _, err := k.CofferEnlarge(th, id, 8, false); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("enlarge unmapped: %v", err)
	}
	mi, _ := k.CofferMap(th, id, true)
	exts, err := k.CofferEnlarge(th, id, 8, false)
	if err != nil {
		t.Fatalf("enlarge: %v", err)
	}
	var got int64
	for _, e := range exts {
		got += e.Count
		// New pages must be mapped and writable under the coffer key.
		if kk, ok := th.Proc.Mem.KeyOf(e.Start); !ok || kk != mi.Key {
			t.Fatalf("new page not mapped with coffer key")
		}
	}
	if got != 8 {
		t.Fatalf("enlarged by %d pages, want 8", got)
	}
	if pages := k.space.pagesOf(id); pages != 11 {
		t.Fatalf("coffer owns %d pages, want 11", pages)
	}
	if err := k.CofferShrink(th, id, exts[:1]); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if k.space.pagesOf(id) != 11-exts[0].Count {
		t.Fatal("shrink did not return pages")
	}
	// Shrinking the root page is rejected.
	if err := k.CofferShrink(th, id, []coffer.Extent{{Start: int64(id), Count: 1}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("shrink root page: %v", err)
	}
}

func TestCofferDelete(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	id, _ := k.CofferNew(th, k.RootCoffer(), "/gone", coffer.TypeZoFS, 0o755, 0, 0, 3)
	free := k.FreePages()
	other := mountedThread(t, k, 0, 0)
	if _, err := k.CofferMap(other, id, false); err != nil {
		t.Fatal(err)
	}
	// Delete revokes every process's mapping (the same eviction discipline
	// recovery uses) rather than failing EBUSY: a reader must not be able to
	// pin a name its owner wants gone.
	if err := k.CofferDelete(th, id); err != nil {
		t.Fatalf("delete while mapped elsewhere: %v", err)
	}
	for _, m := range k.MappedCoffers(other.Proc.PID) {
		if m == id {
			t.Fatal("other still maps deleted coffer")
		}
	}
	// 3 coffer pages plus the path-table entry page /gone's bucket chain no
	// longer needs (remove reclaims all-dead entry pages).
	if k.FreePages() != free+4 {
		t.Fatalf("pages not reclaimed: %d vs %d+4", k.FreePages(), free)
	}
	if _, ok := k.LookupPath(nil, "/gone"); ok {
		t.Fatal("path entry survived delete")
	}
	if err := k.CofferDelete(th, k.RootCoffer()); !errors.Is(err, ErrInvalid) {
		t.Fatalf("deleting root coffer: %v", err)
	}
}

func TestResolveLongest(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	a, _ := k.CofferNew(th, k.RootCoffer(), "/a", coffer.TypeZoFS, 0o755, 0, 0, 3)
	ab, _ := k.CofferNew(th, a, "/a/b", coffer.TypeZoFS, 0o755, 0, 0, 3)

	id, p, ok := k.ResolveLongest(th.Clk, "/a/b/c/d.txt")
	if !ok || id != ab || p != "/a/b" {
		t.Fatalf("ResolveLongest = %d,%q,%v", id, p, ok)
	}
	id, p, ok = k.ResolveLongest(th.Clk, "/a/x")
	if !ok || id != a || p != "/a" {
		t.Fatalf("ResolveLongest(/a/x) = %d,%q,%v", id, p, ok)
	}
	id, p, ok = k.ResolveLongest(th.Clk, "/zzz")
	if !ok || id != k.RootCoffer() || p != "/" {
		t.Fatalf("ResolveLongest(/zzz) = %d,%q,%v", id, p, ok)
	}
	// Deeper paths cost more virtual time (the backwards parse).
	c1 := th.Proc.NewThread()
	k.ResolveLongest(c1.Clk, "/zzz")
	shallow := c1.Clk.Now()
	c2 := th.Proc.NewThread()
	k.ResolveLongest(c2.Clk, "/zzz/1/2/3/4/5/6/7/8/9")
	if c2.Clk.Now() <= shallow {
		t.Fatalf("deep resolve (%d) should cost more than shallow (%d)", c2.Clk.Now(), shallow)
	}
}

func TestSplitAndMerge(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 500, 500)
	rootTh := mountedThread(t, k, 0, 0)
	home, _ := k.CofferNew(rootTh, k.RootCoffer(), "/home", coffer.TypeZoFS, 0o777, 0, 0, 3)
	id, err := k.CofferNew(th, home, "/home/u", coffer.TypeZoFS, 0o755, 500, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.CofferMap(th, id, true); err != nil {
		t.Fatal(err)
	}
	exts, err := k.CofferEnlarge(th, id, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	pages := flatten(exts)

	// Split three pages into a new 0700 coffer.
	newID, err := k.CofferSplit(th, id, "/home/u/priv", 0o700, 500, 500, pages[:3], pages[0], pages[1])
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if k.space.pagesOf(newID) != 4 { // 3 moved + new root page
		t.Fatalf("new coffer owns %d pages", k.space.pagesOf(newID))
	}
	if k.space.pagesOf(id) != 3+6-3 {
		t.Fatalf("old coffer owns %d pages", k.space.pagesOf(id))
	}
	// Moved pages are no longer accessible under the old mapping.
	if _, ok := th.Proc.Mem.KeyOf(pages[0]); ok {
		t.Fatal("moved page still mapped under old coffer")
	}
	rp, _ := k.Info(newID)
	if rp.Mode != 0o700 || rp.Path != "/home/u/priv" {
		t.Fatalf("split coffer meta = %+v", rp)
	}

	// Merge it back after aligning permissions.
	if err := k.CofferMerge(th, id, newID); !errors.Is(err, ErrInvalid) {
		t.Fatalf("merge with differing perms: %v", err)
	}
	if err := k.SetCofferMeta(th, newID, 0o755, 500, 500); err != nil {
		t.Fatal(err)
	}
	if err := k.CofferMerge(th, id, newID); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if k.space.pagesOf(id) != 9 { // 6 + 3 moved back (new root page freed)
		t.Fatalf("merged coffer owns %d pages", k.space.pagesOf(id))
	}
	if _, ok := k.LookupPath(nil, "/home/u/priv"); ok {
		t.Fatal("merged coffer path survived")
	}
}

func TestRenameCofferPrefix(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	a, _ := k.CofferNew(th, k.RootCoffer(), "/a", coffer.TypeZoFS, 0o755, 0, 0, 3)
	ab, _ := k.CofferNew(th, a, "/a/b", coffer.TypeZoFS, 0o755, 0, 0, 3)
	if err := k.RenameCoffer(th, "/a", "/z"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if id, ok := k.LookupPath(nil, "/z"); !ok || id != a {
		t.Fatalf("LookupPath(/z) = %d,%v", id, ok)
	}
	if id, ok := k.LookupPath(nil, "/z/b"); !ok || id != ab {
		t.Fatalf("descendant path not rewritten")
	}
	if _, ok := k.LookupPath(nil, "/a"); ok {
		t.Fatal("old path survived")
	}
	rp, _ := k.Info(ab)
	if rp.Path != "/z/b" {
		t.Fatalf("root page path = %q", rp.Path)
	}
}

func TestRecoverReclaimsPages(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	id, _ := k.CofferNew(th, k.RootCoffer(), "/r", coffer.TypeZoFS, 0o755, 0, 0, 3)
	if _, err := k.CofferMap(th, id, true); err != nil {
		t.Fatal(err)
	}
	exts, _ := k.CofferEnlarge(th, id, 5, false)
	pages := flatten(exts)
	rp, _ := k.Info(id)

	other := mountedThread(t, k, 0, 0)
	if _, err := k.CofferMap(other, id, false); err != nil {
		t.Fatal(err)
	}

	got, err := k.BeginRecover(th, id, 1e9)
	if err != nil {
		t.Fatalf("BeginRecover: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no extents returned")
	}
	// Other process must have been unmapped; mapping during recovery fails.
	if _, err := k.CofferMap(other, id, false); !errors.Is(err, ErrInRecovery) {
		t.Fatalf("map during recovery: %v", err)
	}

	// Keep the inode, custom page and two data pages; leak three.
	inUse := []int64{rp.RootInode, rp.Custom, pages[0], pages[1]}
	free := k.FreePages()
	if err := k.EndRecover(th, id, inUse); err != nil {
		t.Fatalf("EndRecover: %v", err)
	}
	if k.FreePages() != free+3 {
		t.Fatalf("reclaimed %d pages, want 3", k.FreePages()-free)
	}
	if _, err := k.CofferMap(other, id, false); err != nil {
		t.Fatalf("map after recovery: %v", err)
	}
}

func TestSetIdentityUnmapsAll(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	id, _ := k.CofferNew(th, k.RootCoffer(), "/s", coffer.TypeZoFS, 0o755, 0, 0, 3)
	if _, err := k.CofferMap(th, id, true); err != nil {
		t.Fatal(err)
	}
	if err := k.SetIdentity(th, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if n := len(k.MappedCoffers(th.Proc.PID)); n != 0 {
		t.Fatalf("%d coffers still mapped after setuid", n)
	}
	if th.Proc.UID() != 1000 {
		t.Fatal("uid not changed")
	}
}

func TestFileMmap(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	id, _ := k.CofferNew(th, k.RootCoffer(), "/m", coffer.TypeZoFS, 0o755, 0, 0, 3)
	mi, _ := k.CofferMap(th, id, true)
	exts, _ := k.CofferEnlarge(th, id, 2, false)
	pages := flatten(exts)
	if err := k.FileMmap(th, id, pages, true); err != nil {
		t.Fatalf("FileMmap: %v", err)
	}
	// Pages are now key-0 application memory: accessible with windows closed.
	th.CloseWindow()
	th.WriteNT(pages[0]*nvm.PageSize, []byte("mmap"))
	// A page outside the coffer is rejected.
	if err := k.FileMmap(th, id, []int64{1}, false); !errors.Is(err, ErrInvalid) {
		t.Fatalf("mmap foreign page: %v", err)
	}
	_ = mi
}

func TestEnlargeSerializesInVirtualTime(t *testing.T) {
	// Two threads hammering CofferEnlarge must serialize on the kernel
	// mutex — this is the Fig. 7(g) contention.
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	id, _ := k.CofferNew(th, k.RootCoffer(), "/e", coffer.TypeZoFS, 0o755, 0, 0, 3)
	k.CofferMap(th, id, true)
	t1 := th.Proc.NewThread()
	start := t1.Clk.Now()
	for i := 0; i < 10; i++ {
		if _, err := k.CofferEnlarge(t1, id, 1, true); err != nil {
			t.Fatal(err)
		}
	}
	if t1.Clk.Now() == start {
		t.Fatal("enlarge must consume virtual time")
	}
}

// TestMergeIgnoresExecBits verifies coffer_merge compares the coffer
// permission class (exec bits masked, as in §4.1's grouping) rather than
// exact mode equality: a 0644 file coffer folds into a 0755 directory
// coffer — the everyday chmod-back case — while a uid mismatch still
// rejects the merge.
func TestMergeIgnoresExecBits(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 500, 500)
	rootTh := mountedThread(t, k, 0, 0)
	parent, err := k.CofferNew(rootTh, k.RootCoffer(), "/p", coffer.TypeZoFS, 0o755, 500, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.CofferMap(th, parent, true); err != nil {
		t.Fatal(err)
	}
	child, err := k.CofferNew(th, parent, "/p/f", coffer.TypeZoFS, 0o644, 500, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.CofferMap(th, child, true); err != nil {
		t.Fatal(err)
	}
	if err := k.CofferMerge(th, parent, child); err != nil {
		t.Fatalf("merge 0644 into 0755 (same class): %v", err)
	}

	// Different owner: same masked mode is not enough. (Root creates the
	// foreign-owned coffer; only root may assign other uids.)
	other, err := k.CofferNew(rootTh, parent, "/p/g", coffer.TypeZoFS, 0o644, 501, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.CofferMerge(th, parent, other); err == nil {
		t.Fatal("merge across owners should fail")
	}
}
