package kernfs

import (
	"encoding/binary"
	"fmt"

	"zofs/internal/byteflow"
	"zofs/internal/coffer"
	"zofs/internal/nvm"
	"zofs/internal/simclock"
)

// Persistent allocation table (paper §4.1, Figure 3): for every device page
// an 8-byte slot holding {coffer-ID u32, run-length u32}. Coffer-ID 0 means
// free; run-length counts consecutive pages from this one sharing the same
// coffer-ID. The table itself plus the superblock and path table are tagged
// with coffer.KernelID.
const allocSlotSize = 8

// spaceManager owns the persistent allocation table and the volatile trees
// that accelerate allocation: a free-space extent tree and a per-coffer
// allocated-space extent tree (§4.1). It is not internally locked; KernFS
// serializes access under its kernel mutex.
type spaceManager struct {
	dev      *nvm.Device
	tabStart int64 // byte offset of the allocation table
	npages   int64

	free    *extentSet
	byOwner map[coffer.ID]*extentSet
}

// allocTableBytes returns the table size for a device of npages.
func allocTableBytes(npages int64) int64 { return npages * allocSlotSize }

// slotOff returns the byte offset of a page's slot.
func (sm *spaceManager) slotOff(page int64) int64 { return sm.tabStart + page*allocSlotSize }

// writeRun persists slots for [start, start+count) as owned by id, as one
// streaming non-temporal write. Run lengths descend from count to 1, as in
// Figure 3.
func (sm *spaceManager) writeRun(clk *simclock.Clock, start, count int64, id coffer.ID) {
	prev := clk.SwapWriteClass(uint8(byteflow.ClassAlloc))
	defer clk.SetWriteClass(prev)
	buf := make([]byte, count*allocSlotSize)
	for i := int64(0); i < count; i++ {
		binary.LittleEndian.PutUint32(buf[i*allocSlotSize:], uint32(id))
		binary.LittleEndian.PutUint32(buf[i*allocSlotSize+4:], uint32(count-i))
	}
	sm.dev.WriteNT(clk, sm.slotOff(start), buf)
}

// readSlot reads one page's slot.
func (sm *spaceManager) readSlot(clk *simclock.Clock, page int64) (coffer.ID, int64) {
	var b [allocSlotSize]byte
	sm.dev.Read(clk, sm.slotOff(page), b[:])
	return coffer.ID(binary.LittleEndian.Uint32(b[:])), int64(binary.LittleEndian.Uint32(b[4:]))
}

// initTable formats the table: kernel metadata pages [0, kernPages) owned by
// KernelID, everything else free.
func (sm *spaceManager) initTable(clk *simclock.Clock, kernPages int64) {
	sm.free = newExtentSet()
	sm.byOwner = map[coffer.ID]*extentSet{}
	sm.writeRun(clk, 0, kernPages, coffer.KernelID)
	sm.writeRun(clk, kernPages, sm.npages-kernPages, 0)
	sm.ownerSet(coffer.KernelID).Add(0, kernPages)
	sm.free.Add(kernPages, sm.npages-kernPages)
}

// scan rebuilds the volatile trees from the persistent table (mount and
// recovery path). Ownership authority is each slot's own coffer-ID: the
// run-length field only accelerates in-order scans and is NOT trusted
// across slots, because coffer_split/merge retag single pages inside older
// runs without rewriting their predecessors (Figure 3's merged slots are a
// write-time optimization, not an invariant).
func (sm *spaceManager) scan(clk *simclock.Clock) error {
	sm.free = newExtentSet()
	sm.byOwner = map[coffer.ID]*extentSet{}
	const slotsPerRead = int64(nvm.PageSize / allocSlotSize)
	buf := make([]byte, nvm.PageSize)
	var runStart, runLen int64
	var runID coffer.ID
	flush := func() {
		if runLen == 0 {
			return
		}
		if runID == 0 {
			sm.free.Add(runStart, runLen)
		} else {
			sm.ownerSet(runID).Add(runStart, runLen)
		}
		runLen = 0
	}
	for page := int64(0); page < sm.npages; page += slotsPerRead {
		n := slotsPerRead
		if page+n > sm.npages {
			n = sm.npages - page
		}
		sm.dev.Read(clk, sm.slotOff(page), buf[:n*allocSlotSize])
		for i := int64(0); i < n; i++ {
			id := coffer.ID(binary.LittleEndian.Uint32(buf[i*allocSlotSize:]))
			if runLen > 0 && id == runID {
				runLen++
				continue
			}
			flush()
			runStart, runLen, runID = page+i, 1, id
		}
	}
	flush()
	return nil
}

func (sm *spaceManager) ownerSet(id coffer.ID) *extentSet {
	s := sm.byOwner[id]
	if s == nil {
		s = newExtentSet()
		sm.byOwner[id] = s
	}
	return s
}

// allocate takes want pages from the free pool for coffer id, persisting
// the table updates. Returns ErrNoSpace without partial allocation if the
// pool is short.
func (sm *spaceManager) allocate(clk *simclock.Clock, id coffer.ID, want int64) ([]coffer.Extent, error) {
	if sm.free.Pages() < want {
		return nil, ErrNoSpace
	}
	// Prefer one contiguous run: batch grants feed the µFS's per-thread
	// page caches, where a single extent keeps the table update one
	// streaming write and the free-run bookkeeping compact. Fragmented
	// first-fit is the fallback when free space has no run of this size.
	var exts []coffer.Extent
	if run, ok := sm.free.TakeRun(want); ok {
		exts = []coffer.Extent{run}
	} else {
		exts = sm.free.TakeFirst(want)
	}
	own := sm.ownerSet(id)
	for _, e := range exts {
		sm.writeRun(clk, e.Start, e.Count, id)
		own.Add(e.Start, e.Count)
	}
	return exts, nil
}

// release returns [start, start+count) owned by id to the free pool.
func (sm *spaceManager) release(clk *simclock.Clock, id coffer.ID, start, count int64) error {
	own := sm.ownerSet(id)
	if !own.Remove(start, count) {
		return fmt.Errorf("%w: pages %d+%d not owned by coffer %d", ErrInvalid, start, count, id)
	}
	sm.writeRun(clk, start, count, 0)
	sm.free.Add(start, count)
	return nil
}

// retag moves [start, start+count) from coffer from to coffer to. This is
// the per-page-expensive primitive behind coffer_split/merge (Table 9).
func (sm *spaceManager) retag(clk *simclock.Clock, from, to coffer.ID, start, count int64) error {
	own := sm.ownerSet(from)
	if !own.Remove(start, count) {
		return fmt.Errorf("%w: pages %d+%d not owned by coffer %d", ErrInvalid, start, count, from)
	}
	sm.writeRun(clk, start, count, to)
	sm.ownerSet(to).Add(start, count)
	return nil
}

// extentsOf returns all extents owned by a coffer, in address order.
func (sm *spaceManager) extentsOf(id coffer.ID) []coffer.Extent {
	s := sm.byOwner[id]
	if s == nil {
		return nil
	}
	return s.All()
}

// pagesOf returns the page count owned by a coffer.
func (sm *spaceManager) pagesOf(id coffer.ID) int64 {
	s := sm.byOwner[id]
	if s == nil {
		return 0
	}
	return s.Pages()
}

// freePages returns the number of unallocated pages.
func (sm *spaceManager) freePages() int64 { return sm.free.Pages() }

// freeExtents returns the free pool's extents in address order.
func (sm *spaceManager) freeExtents() []coffer.Extent { return sm.free.All() }

// verify re-reads the persistent allocation table (uncharged) and checks it
// against the volatile trees: every slot's owner must match the owning
// extent set, and the per-owner page counts must agree exactly. This is the
// kernel side of the byte-flow space conservation check — the persistent
// table is the authority, the volatile trees are the cache under test.
func (sm *spaceManager) verify() error {
	const slotsPerRead = int64(nvm.PageSize / allocSlotSize)
	buf := make([]byte, nvm.PageSize)
	counted := map[coffer.ID]int64{}
	for page := int64(0); page < sm.npages; page += slotsPerRead {
		n := slotsPerRead
		if page+n > sm.npages {
			n = sm.npages - page
		}
		sm.dev.ReadNoCharge(sm.slotOff(page), buf[:n*allocSlotSize])
		for i := int64(0); i < n; i++ {
			pg := page + i
			id := coffer.ID(binary.LittleEndian.Uint32(buf[i*allocSlotSize:]))
			counted[id]++
			if id == 0 {
				if !sm.free.Contains(pg, 1) {
					return fmt.Errorf("kernfs: page %d free on media but not in the free tree", pg)
				}
				continue
			}
			own := sm.byOwner[id]
			if own == nil || !own.Contains(pg, 1) {
				return fmt.Errorf("kernfs: page %d owned by coffer %d on media but not in its extent tree", pg, id)
			}
		}
	}
	if got, want := sm.free.Pages(), counted[0]; got != want {
		return fmt.Errorf("kernfs: free tree holds %d pages, table says %d", got, want)
	}
	for id, want := range counted {
		if id == 0 {
			continue
		}
		if got := sm.pagesOf(id); got != want {
			return fmt.Errorf("kernfs: coffer %d extent tree holds %d pages, table says %d", id, got, want)
		}
	}
	var total int64
	for _, n := range counted {
		total += n
	}
	if total != sm.npages {
		return fmt.Errorf("kernfs: table census %d pages != device %d", total, sm.npages)
	}
	return nil
}
