package kernfs

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"

	"zofs/internal/byteflow"
	"zofs/internal/coffer"
	"zofs/internal/lockprof"
	"zofs/internal/nvm"
	"zofs/internal/simclock"
)

// Persistent allocation table (paper §4.1, Figure 3): for every device page
// an 8-byte slot holding {coffer-ID u32, run-length u32}. Coffer-ID 0 means
// free; run-length counts consecutive pages from this one sharing the same
// coffer-ID. The table itself plus the superblock and path table are tagged
// with coffer.KernelID.
const allocSlotSize = 8

// numFreeShards is the fixed shard count of the free-space pool. Fixed (not
// sized to GOMAXPROCS or thread count) so allocation placement is identical
// across runs — the replay and bit-identical-with-profiler gates depend on
// it.
const numFreeShards = 16

// freeShard is one slice of the free pool: a coalescing extent set under its
// own lock (`kernfs.freeshard/<i>`). Shard critical sections are transient
// leaves in the lock hierarchy — no shard lock is ever held while acquiring
// any other lock, and no charged work (table writes, scrubbing) happens
// inside one, so shards serialize only the volatile tree surgery.
type freeShard struct {
	mu  lockprof.Mutex
	set *extentSet
}

// spaceManager owns the persistent allocation table, the sharded free-space
// pool and the per-coffer allocated-space extent trees (§4.1).
//
// Locking: each shard guards its own free set. byOwner map structure is
// guarded by ownMu; the per-coffer sets themselves are stable only under
// that coffer's kernfs.coffer/<id> lock (or quiescence, for fsck/verify).
// Pages in transit between a shard and an owner's table run are parked in
// the inflight set so the three-way space check can still account for them.
type spaceManager struct {
	dev      *nvm.Device
	tabStart int64 // byte offset of the allocation table
	npages   int64

	shards [numFreeShards]freeShard

	ownMu   sync.Mutex
	byOwner map[coffer.ID]*extentSet

	inflMu   sync.Mutex
	inflight *extentSet
}

func newSpaceManager(dev *nvm.Device, tabStart, npages int64) *spaceManager {
	sm := &spaceManager{dev: dev, tabStart: tabStart, npages: npages}
	for i := range sm.shards {
		sm.shards[i].mu.Init("kernfs.freeshard", strconv.Itoa(i))
		sm.shards[i].set = newExtentSet()
	}
	sm.byOwner = map[coffer.ID]*extentSet{}
	sm.inflight = newExtentSet()
	return sm
}

// allocTableBytes returns the table size for a device of npages.
func allocTableBytes(npages int64) int64 { return npages * allocSlotSize }

// slotOff returns the byte offset of a page's slot.
func (sm *spaceManager) slotOff(page int64) int64 { return sm.tabStart + page*allocSlotSize }

// shardOf routes a page to its address-home shard: shard i owns the pages of
// the i-th device slice. Releases route by address, so free runs coalesce
// within a shard without any cross-shard locking.
func (sm *spaceManager) shardOf(page int64) int {
	i := int(page * numFreeShards / sm.npages)
	if i >= numFreeShards {
		i = numFreeShards - 1
	}
	return i
}

// shardHome picks the shard an allocation hint starts its search at. The
// hint mixes the coffer ID with the calling thread's ID, so concurrent
// enlarges of different coffers — and of one hot coffer from many threads —
// spread across the pool instead of convoying on one shard lock.
func shardHome(hint uint64) int {
	h := hint * 0x9e3779b97f4a7c15
	return int((h >> 33) % numFreeShards)
}

// writeRun persists slots for [start, start+count) as owned by id, as one
// streaming non-temporal write. Run lengths descend from count to 1, as in
// Figure 3. Table traffic books to the alloc class regardless of clock —
// mkfs-time runs carry no clock but are still allocator bytes.
func (sm *spaceManager) writeRun(clk *simclock.Clock, start, count int64, id coffer.ID) {
	buf := make([]byte, count*allocSlotSize)
	for i := int64(0); i < count; i++ {
		binary.LittleEndian.PutUint32(buf[i*allocSlotSize:], uint32(id))
		binary.LittleEndian.PutUint32(buf[i*allocSlotSize+4:], uint32(count-i))
	}
	sm.dev.WriteNTClass(clk, byteflow.ClassAlloc, sm.slotOff(start), buf)
}

// readSlot reads one page's slot.
func (sm *spaceManager) readSlot(clk *simclock.Clock, page int64) (coffer.ID, int64) {
	var b [allocSlotSize]byte
	sm.dev.Read(clk, sm.slotOff(page), b[:])
	return coffer.ID(binary.LittleEndian.Uint32(b[:])), int64(binary.LittleEndian.Uint32(b[4:]))
}

// slotOwner reads one page's owner without charging a clock (the violation
// handler's attribution path; the table is the authority, no tree lock
// needed).
func (sm *spaceManager) slotOwner(page int64) coffer.ID {
	var b [allocSlotSize]byte
	sm.dev.ReadNoCharge(sm.slotOff(page), b[:])
	return coffer.ID(binary.LittleEndian.Uint32(b[:]))
}

// addFree distributes a free range across its address-home shards, locking
// one shard at a time.
func (sm *spaceManager) addFree(clk *simclock.Clock, start, count int64) {
	for count > 0 {
		i := sm.shardOf(start)
		// End of shard i's address slice.
		sliceEnd := (int64(i) + 1) * sm.npages / numFreeShards
		n := count
		if start+n > sliceEnd && i < numFreeShards-1 {
			n = sliceEnd - start
		}
		s := &sm.shards[i]
		s.mu.Lock(clk)
		s.set.Add(start, n)
		s.mu.Unlock(clk)
		start += n
		count -= n
	}
}

// initTable formats the table: kernel metadata pages [0, kernPages) owned by
// KernelID, everything else free.
func (sm *spaceManager) initTable(clk *simclock.Clock, kernPages int64) {
	sm.writeRun(clk, 0, kernPages, coffer.KernelID)
	sm.writeRun(clk, kernPages, sm.npages-kernPages, 0)
	sm.ownerSet(coffer.KernelID).Add(0, kernPages)
	sm.addFree(clk, kernPages, sm.npages-kernPages)
}

// scan rebuilds the volatile trees from the persistent table (mount and
// recovery path). Ownership authority is each slot's own coffer-ID: the
// run-length field only accelerates in-order scans and is NOT trusted
// across slots, because coffer_split/merge retag single pages inside older
// runs without rewriting their predecessors (Figure 3's merged slots are a
// write-time optimization, not an invariant).
func (sm *spaceManager) scan(clk *simclock.Clock) error {
	for i := range sm.shards {
		sm.shards[i].set = newExtentSet()
	}
	sm.byOwner = map[coffer.ID]*extentSet{}
	sm.inflight = newExtentSet()
	const slotsPerRead = int64(nvm.PageSize / allocSlotSize)
	buf := make([]byte, nvm.PageSize)
	var runStart, runLen int64
	var runID coffer.ID
	flush := func() {
		if runLen == 0 {
			return
		}
		if runID == 0 {
			sm.addFree(clk, runStart, runLen)
		} else {
			sm.ownerSet(runID).Add(runStart, runLen)
		}
		runLen = 0
	}
	for page := int64(0); page < sm.npages; page += slotsPerRead {
		n := slotsPerRead
		if page+n > sm.npages {
			n = sm.npages - page
		}
		sm.dev.Read(clk, sm.slotOff(page), buf[:n*allocSlotSize])
		for i := int64(0); i < n; i++ {
			id := coffer.ID(binary.LittleEndian.Uint32(buf[i*allocSlotSize:]))
			if runLen > 0 && id == runID {
				runLen++
				continue
			}
			flush()
			runStart, runLen, runID = page+i, 1, id
		}
	}
	flush()
	return nil
}

// ownerSet returns (creating on demand) a coffer's allocated-space tree.
// The returned set is stable only under the coffer's lock.
func (sm *spaceManager) ownerSet(id coffer.ID) *extentSet {
	sm.ownMu.Lock()
	defer sm.ownMu.Unlock()
	s := sm.byOwner[id]
	if s == nil {
		s = newExtentSet()
		sm.byOwner[id] = s
	}
	return s
}

// peekOwner returns a coffer's tree without creating one.
func (sm *spaceManager) peekOwner(id coffer.ID) *extentSet {
	sm.ownMu.Lock()
	defer sm.ownMu.Unlock()
	return sm.byOwner[id]
}

// dropOwner removes an emptied coffer's tree (coffer_delete/merge).
func (sm *spaceManager) dropOwner(id coffer.ID) {
	sm.ownMu.Lock()
	defer sm.ownMu.Unlock()
	delete(sm.byOwner, id)
}

// takeFree extracts want pages from the sharded pool without touching the
// persistent table. The extents are parked in the inflight set until the
// caller either publishes them (writeRun to an owner + uninflight) or backs
// out (returnFree). Fast path: the hint's home shard satisfies the whole
// request under one shard lock. Slow path (refill): sweep the other shards
// one lock at a time, draining what each can spare, until the request is
// met; a shortfall returns everything and ErrNoSpace — exactly when the
// device is genuinely out of pages, same as the old global tree.
func (sm *spaceManager) takeFree(clk *simclock.Clock, hint uint64, want int64) ([]coffer.Extent, error) {
	if want <= 0 {
		return nil, fmt.Errorf("%w: non-positive allocation", ErrInvalid)
	}
	home := shardHome(hint)
	var got []coffer.Extent
	var have int64

	takeFrom := func(s *freeShard, need int64) {
		s.mu.Lock(clk)
		// Prefer one contiguous run: batch grants feed the µFS's per-thread
		// page caches, where a single extent keeps the table update one
		// streaming write and the free-run bookkeeping compact.
		if run, ok := s.set.TakeRun(need); ok {
			got = append(got, run)
			have += run.Count
		} else {
			exts := s.set.TakeFirst(need)
			for _, e := range exts {
				got = append(got, e)
				have += e.Count
			}
		}
		s.mu.Unlock(clk)
	}

	takeFrom(&sm.shards[home], want)
	for i := 1; i < numFreeShards && have < want; i++ {
		takeFrom(&sm.shards[(home+i)%numFreeShards], want-have)
	}
	if have < want {
		// Genuine shortfall: put everything back where its address lives.
		for _, e := range got {
			sm.addFree(clk, e.Start, e.Count)
		}
		return nil, ErrNoSpace
	}
	sm.inflMu.Lock()
	for _, e := range got {
		sm.inflight.Add(e.Start, e.Count)
	}
	sm.inflMu.Unlock()
	return got, nil
}

// uninflight clears extents from the in-transit set once they are published
// in the allocation table.
func (sm *spaceManager) uninflight(exts []coffer.Extent) {
	sm.inflMu.Lock()
	for _, e := range exts {
		sm.inflight.Remove(e.Start, e.Count)
	}
	sm.inflMu.Unlock()
}

// returnFree backs staged extents out of a failed allocation: out of the
// inflight set, back into their address-home shards (the spill path — pages
// drained toward a hot shard re-home on release, bounding cross-shard
// fragmentation drift).
func (sm *spaceManager) returnFree(clk *simclock.Clock, exts []coffer.Extent) {
	sm.uninflight(exts)
	for _, e := range exts {
		sm.addFree(clk, e.Start, e.Count)
	}
}

// allocate takes want pages from the free pool for coffer id, persisting
// the table updates, with the hint steering shard placement. Returns
// ErrNoSpace without partial allocation if the pool is short. The caller
// must hold the coffer's lock (or be the only reference holder) so the
// owner tree is stable.
func (sm *spaceManager) allocate(clk *simclock.Clock, hint uint64, id coffer.ID, want int64) ([]coffer.Extent, error) {
	exts, err := sm.takeFree(clk, hint, want)
	if err != nil {
		return nil, err
	}
	own := sm.ownerSet(id)
	for _, e := range exts {
		sm.writeRun(clk, e.Start, e.Count, id)
		own.Add(e.Start, e.Count)
	}
	sm.uninflight(exts)
	return exts, nil
}

// release returns [start, start+count) owned by id to the free pool.
func (sm *spaceManager) release(clk *simclock.Clock, id coffer.ID, start, count int64) error {
	own := sm.ownerSet(id)
	if !own.Remove(start, count) {
		return fmt.Errorf("%w: pages %d+%d not owned by coffer %d", ErrInvalid, start, count, id)
	}
	sm.writeRun(clk, start, count, 0)
	sm.addFree(clk, start, count)
	return nil
}

// releaseAll frees every page of a coffer and drops its owner tree, in that
// order of visibility: the tree is unregistered before any page reaches the
// free pool. A coffer ID is its root page's number, so the instant the root
// page is free a concurrent coffer_new can mint the same ID — and must get a
// fresh owner tree from ownerSet, never a doomed one about to be dropped.
func (sm *spaceManager) releaseAll(clk *simclock.Clock, id coffer.ID) []coffer.Extent {
	sm.ownMu.Lock()
	s := sm.byOwner[id]
	delete(sm.byOwner, id)
	sm.ownMu.Unlock()
	if s == nil {
		return nil
	}
	exts := s.All()
	for _, e := range exts {
		sm.writeRun(clk, e.Start, e.Count, 0)
		sm.addFree(clk, e.Start, e.Count)
	}
	return exts
}

// retag moves [start, start+count) from coffer from to coffer to. This is
// the per-page-expensive primitive behind coffer_split/merge (Table 9).
func (sm *spaceManager) retag(clk *simclock.Clock, from, to coffer.ID, start, count int64) error {
	own := sm.ownerSet(from)
	if !own.Remove(start, count) {
		return fmt.Errorf("%w: pages %d+%d not owned by coffer %d", ErrInvalid, start, count, from)
	}
	sm.writeRun(clk, start, count, to)
	sm.ownerSet(to).Add(start, count)
	return nil
}

// extentsOf returns all extents owned by a coffer, in address order. Stable
// only under the coffer's lock.
func (sm *spaceManager) extentsOf(id coffer.ID) []coffer.Extent {
	s := sm.peekOwner(id)
	if s == nil {
		return nil
	}
	return s.All()
}

// pagesOf returns the page count owned by a coffer.
func (sm *spaceManager) pagesOf(id coffer.ID) int64 {
	s := sm.peekOwner(id)
	if s == nil {
		return 0
	}
	return s.Pages()
}

// freePages returns the number of unallocated pages across every shard.
func (sm *spaceManager) freePages() int64 {
	var total int64
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.Lock(nil)
		total += s.set.Pages()
		s.mu.Unlock(nil)
	}
	return total
}

// freeExtents returns the free pool's extents in address order, merged
// across shards.
func (sm *spaceManager) freeExtents() []coffer.Extent {
	merged := newExtentSet()
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.Lock(nil)
		for _, e := range s.set.All() {
			merged.Add(e.Start, e.Count)
		}
		s.mu.Unlock(nil)
	}
	return merged.All()
}

// verify re-reads the persistent allocation table (uncharged) and checks it
// against the volatile trees: every slot's owner must match the owning
// extent set, and the per-owner page counts must agree exactly. Free pages
// must sit in exactly one place — a shard's free set or the in-flight
// staging set of a grant being assembled — and the census must cover the
// device. This is the kernel side of the byte-flow space conservation check
// — the persistent table is the authority, the volatile trees are the cache
// under test. Owner trees require quiescence (fsck/tooling context).
func (sm *spaceManager) verify() error {
	// Snapshot the sharded free pool and the in-flight set.
	free := newExtentSet()
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.Lock(nil)
		for _, e := range s.set.All() {
			free.Add(e.Start, e.Count)
		}
		s.mu.Unlock(nil)
	}
	sm.inflMu.Lock()
	infl := newExtentSet()
	for _, e := range sm.inflight.All() {
		infl.Add(e.Start, e.Count)
	}
	sm.inflMu.Unlock()

	const slotsPerRead = int64(nvm.PageSize / allocSlotSize)
	buf := make([]byte, nvm.PageSize)
	counted := map[coffer.ID]int64{}
	for page := int64(0); page < sm.npages; page += slotsPerRead {
		n := slotsPerRead
		if page+n > sm.npages {
			n = sm.npages - page
		}
		sm.dev.ReadNoCharge(sm.slotOff(page), buf[:n*allocSlotSize])
		for i := int64(0); i < n; i++ {
			pg := page + i
			id := coffer.ID(binary.LittleEndian.Uint32(buf[i*allocSlotSize:]))
			counted[id]++
			if id == 0 {
				if !free.Contains(pg, 1) && !infl.Contains(pg, 1) {
					return fmt.Errorf("kernfs: page %d free on media but in no free shard or in-flight batch", pg)
				}
				continue
			}
			own := sm.peekOwner(id)
			if own == nil || !own.Contains(pg, 1) {
				return fmt.Errorf("kernfs: page %d owned by coffer %d on media but not in its extent tree", pg, id)
			}
		}
	}
	if got, want := free.Pages()+infl.Pages(), counted[0]; got != want {
		return fmt.Errorf("kernfs: free shards hold %d pages (+%d in flight), table says %d free",
			free.Pages(), infl.Pages(), want)
	}
	for id, want := range counted {
		if id == 0 {
			continue
		}
		if got := sm.pagesOf(id); got != want {
			return fmt.Errorf("kernfs: coffer %d extent tree holds %d pages, table says %d", id, got, want)
		}
	}
	var total int64
	for _, n := range counted {
		total += n
	}
	if total != sm.npages {
		return fmt.Errorf("kernfs: table census %d pages != device %d", total, sm.npages)
	}
	return nil
}
