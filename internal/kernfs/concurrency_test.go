package kernfs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"zofs/internal/coffer"
	"zofs/internal/lockprof"
	"zofs/internal/proc"
)

// typedErr reports whether err is one of the kernel's exported error
// sentinels — the only failures a concurrent caller may ever observe.
func typedErr(err error) bool {
	for _, want := range []error{
		ErrPerm, ErrNotFound, ErrExists, ErrBusy, ErrNoSpace,
		ErrNoMPKRegions, ErrInvalid, ErrNotMapped, ErrInRecovery,
		ErrCofferReadOnly, ErrCofferOffline,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// TestConcurrentCofferLifecycle hammers the sharded kernel agent from 64
// threads (64 processes) mixing disjoint per-thread coffers with a small set
// of overlapping coffers that everyone creates, maps, enlarges and deletes
// at once. Every failure must be a typed sentinel (no panics, no untyped
// errors), and after a final sweep the device must conserve free pages
// exactly and pass the three-way space check. Run it with -race: the whole
// point of killing kernfs.big is that these paths now interleave.
func TestConcurrentCofferLifecycle(t *testing.T) {
	dev, k := newFS(t)
	freeBefore := k.FreePages()

	const nthreads = 64
	const iters = 6
	const nshared = 4

	var wg sync.WaitGroup
	errCh := make(chan error, nthreads*iters)
	report := func(op string, err error) {
		if err != nil && !typedErr(err) {
			errCh <- fmt.Errorf("%s: untyped error %v", op, err)
		}
	}

	for g := 0; g < nthreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := proc.NewProcess(dev, 0, 0).NewThread()
			if err := k.FSMount(th); err != nil {
				errCh <- fmt.Errorf("FSMount g%d: %v", g, err)
				return
			}
			for j := 0; j < iters; j++ {
				// Disjoint lifecycle: nobody else touches this coffer, so
				// every step must succeed outright.
				path := fmt.Sprintf("/d-%d-%d", g, j)
				id, err := k.CofferNew(th, k.RootCoffer(), path, coffer.TypeZoFS, 0o755, 0, 0, 4)
				if err != nil {
					errCh <- fmt.Errorf("disjoint CofferNew %s: %v", path, err)
					continue
				}
				if _, err := k.CofferMap(th, id, true); err != nil {
					errCh <- fmt.Errorf("disjoint CofferMap %s: %v", path, err)
				} else if _, err := k.CofferEnlarge(th, id, 8, j%2 == 0); err != nil {
					errCh <- fmt.Errorf("disjoint CofferEnlarge %s: %v", path, err)
				}
				if err := k.CofferDelete(th, id); err != nil {
					errCh <- fmt.Errorf("disjoint CofferDelete %s: %v", path, err)
				}

				// Overlapping lifecycle: all threads race create/map/enlarge/
				// delete on a handful of shared paths. Races lose with typed
				// errors; any other failure is a bug.
				spath := fmt.Sprintf("/s-%d", (g+j)%nshared)
				_, err = k.CofferNew(th, k.RootCoffer(), spath, coffer.TypeZoFS, 0o755, 0, 0, 3)
				report("shared CofferNew", err)
				if sid, ok := k.LookupPath(th.Clk, spath); ok {
					if _, err := k.CofferMap(th, sid, true); err != nil {
						report("shared CofferMap", err)
					} else {
						_, err = k.CofferEnlarge(th, sid, 2, false)
						report("shared CofferEnlarge", err)
					}
					if (g+j)%7 == 0 {
						report("shared CofferDelete", k.CofferDelete(th, sid))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	nerr := 0
	for err := range errCh {
		if nerr++; nerr <= 10 {
			t.Error(err)
		}
	}
	if nerr > 10 {
		t.Errorf("... and %d more", nerr-10)
	}

	// Sweep every surviving coffer and check exact conservation.
	th := mountedThread(t, k, 0, 0)
	for _, id := range k.Coffers() {
		if id == k.RootCoffer() {
			continue
		}
		if err := k.CofferDelete(th, id); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("sweep CofferDelete %d: %v", id, err)
		}
	}
	if free := k.FreePages(); free != freeBefore {
		t.Fatalf("free pages not conserved: %d before churn, %d after sweep", freeBefore, free)
	}
	if err := k.VerifySpace(); err != nil {
		t.Fatalf("VerifySpace after churn: %v", err)
	}
}

// TestLockHierarchyNoInversions drives every multi-lock kernel path with the
// lock profiler attached and asserts the declared hierarchy — registry →
// coffer → paths → freeshard — produces no order-inversion report. This is
// the regression gate for the kernfs.big decomposition: an inversion here is
// a deadlock candidate at 512 threads.
func TestLockHierarchyNoInversions(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	dev, k := newFS(t)
	const nthreads = 8
	var wg sync.WaitGroup
	for g := 0; g < nthreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := proc.NewProcess(dev, 0, 0).NewThread()
			if err := k.FSMount(th); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 4; j++ {
				path := fmt.Sprintf("/h-%d-%d", g, j)
				id, err := k.CofferNew(th, k.RootCoffer(), path, coffer.TypeZoFS, 0o755, 0, 0, 4)
				if err != nil {
					t.Errorf("CofferNew: %v", err)
					return
				}
				if _, err := k.CofferMap(th, id, true); err != nil {
					t.Errorf("CofferMap: %v", err)
					return
				}
				exts, err := k.CofferEnlarge(th, id, 4, true)
				if err != nil {
					t.Errorf("CofferEnlarge: %v", err)
					return
				}
				if err := k.RenameCoffer(th, path, path+"x"); err != nil {
					t.Errorf("RenameCoffer: %v", err)
				}
				if err := k.CofferShrink(th, id, exts[:1]); err != nil {
					t.Errorf("CofferShrink: %v", err)
				}
				if _, err := k.ReportViolation(th, id); err != nil {
					t.Errorf("ReportViolation: %v", err)
				}
				if err := k.CofferDelete(th, id); err != nil {
					t.Errorf("CofferDelete: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()

	rep := reg.Snapshot()
	for _, inv := range rep.Inversions {
		if strings.HasPrefix(inv.A, "kernfs.") || strings.HasPrefix(inv.B, "kernfs.") {
			t.Errorf("lock-order inversion %s vs %s:\n  forward: %+v\n  backward: %+v",
				inv.A, inv.B, inv.Forward, inv.Backward)
		}
	}
}

// TestCrashMidRefillLeakFree: a crash while a grant batch is in flight —
// pages extracted from the free shards but not yet published in the
// allocation table — must lose nothing. Before the crash the in-flight batch
// keeps the three-way check balanced; after remount the table (which never
// saw the batch) is the authority and the pages are free again.
func TestCrashMidRefillLeakFree(t *testing.T) {
	dev, k := newFS(t)
	freeBefore := k.FreePages()

	exts, err := k.space.takeFree(nil, 42, 64)
	if err != nil {
		t.Fatalf("takeFree: %v", err)
	}
	var staged int64
	for _, e := range exts {
		staged += e.Count
	}
	if staged != 64 {
		t.Fatalf("staged %d pages, want 64", staged)
	}
	if free := k.FreePages(); free != freeBefore-64 {
		t.Fatalf("free pages with batch in flight = %d, want %d", free, freeBefore-64)
	}
	if err := k.VerifySpace(); err != nil {
		t.Fatalf("VerifySpace with batch in flight: %v", err)
	}

	// Crash: volatile state (shards, owner trees, in-flight set) evaporates;
	// the persistent table never recorded the staged pages.
	k2, err := Mount(dev)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	if free := k2.FreePages(); free != freeBefore {
		t.Fatalf("crash mid-refill leaked: %d free after remount, want %d", free, freeBefore)
	}
	if err := k2.VerifySpace(); err != nil {
		t.Fatalf("VerifySpace after remount: %v", err)
	}
}
