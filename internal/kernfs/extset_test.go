package kernfs

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveSet mirrors extentSet with a plain page map.
type naiveSet map[int64]bool

func (n naiveSet) add(start, count int64) {
	for p := start; p < start+count; p++ {
		n[p] = true
	}
}
func (n naiveSet) remove(start, count int64) bool {
	for p := start; p < start+count; p++ {
		if !n[p] {
			return false
		}
	}
	for p := start; p < start+count; p++ {
		delete(n, p)
	}
	return true
}

func (n naiveSet) equal(s *extentSet) bool {
	if int64(len(n)) != s.Pages() {
		return false
	}
	for _, e := range s.All() {
		for p := e.Start; p < e.End(); p++ {
			if !n[p] {
				return false
			}
		}
	}
	return true
}

func TestExtentSetBasics(t *testing.T) {
	s := newExtentSet()
	s.Add(10, 5)
	s.Add(15, 5) // coalesce
	s.Add(0, 3)
	if s.Pages() != 13 {
		t.Fatalf("Pages = %d", s.Pages())
	}
	if all := s.All(); len(all) != 2 || all[1].Start != 10 || all[1].Count != 10 {
		t.Fatalf("All = %v", all)
	}
	if !s.Contains(12, 5) || s.Contains(8, 3) {
		t.Fatal("Contains wrong")
	}
	if !s.Remove(12, 3) {
		t.Fatal("Remove failed")
	}
	if s.Contains(12, 1) || !s.Contains(10, 2) || !s.Contains(15, 5) {
		t.Fatal("post-Remove state wrong")
	}
	if s.Remove(100, 1) {
		t.Fatal("Remove of absent range succeeded")
	}
}

func TestExtentSetTakeFirst(t *testing.T) {
	s := newExtentSet()
	s.Add(100, 4)
	s.Add(200, 10)
	got := s.TakeFirst(6)
	var n int64
	for _, e := range got {
		n += e.Count
	}
	if n != 6 || got[0].Start != 100 || got[0].Count != 4 {
		t.Fatalf("TakeFirst = %v", got)
	}
	if s.Pages() != 8 {
		t.Fatalf("remaining = %d", s.Pages())
	}
	// Exhaustion returns what exists.
	rest := s.TakeFirst(100)
	n = 0
	for _, e := range rest {
		n += e.Count
	}
	if n != 8 || s.Pages() != 0 {
		t.Fatalf("drain = %v, left %d", rest, s.Pages())
	}
}

// TestExtentSetAgainstModel runs randomized disjoint adds, removes and
// takes, comparing against a naive page-set model.
func TestExtentSetAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := newExtentSet()
	model := naiveSet{}
	for i := 0; i < 20000; i++ {
		switch rng.Intn(4) {
		case 0, 1: // add a disjoint range
			start := rng.Int63n(5000)
			count := rng.Int63n(8) + 1
			ok := true
			for p := start; p < start+count; p++ {
				if model[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			s.Add(start, count)
			model.add(start, count)
		case 2: // remove a present sub-range
			if len(model) == 0 {
				continue
			}
			pages := make([]int64, 0, len(model))
			for p := range model {
				pages = append(pages, p)
			}
			sort.Slice(pages, func(a, b int) bool { return pages[a] < pages[b] })
			start := pages[rng.Intn(len(pages))]
			count := int64(1)
			for model[start+count] && count < 4 {
				count++
			}
			got := s.Remove(start, count)
			want := model.remove(start, count)
			if got != want {
				t.Fatalf("step %d: Remove(%d,%d) = %v want %v", i, start, count, got, want)
			}
		case 3: // take
			want := rng.Int63n(6) + 1
			got := s.TakeFirst(want)
			var taken int64
			for _, e := range got {
				taken += e.Count
				if !model.remove(e.Start, e.Count) {
					t.Fatalf("step %d: TakeFirst returned absent range %v", i, e)
				}
			}
			if taken > want {
				t.Fatalf("step %d: took %d > %d", i, taken, want)
			}
		}
		if i%500 == 0 && !model.equal(s) {
			t.Fatalf("step %d: model divergence (pages %d vs %d)", i, len(model), s.Pages())
		}
	}
	if !model.equal(s) {
		t.Fatal("final divergence")
	}
}
