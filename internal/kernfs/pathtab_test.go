package kernfs

import (
	"fmt"
	"strings"
	"testing"

	"zofs/internal/coffer"
	"zofs/internal/nvm"
)

func newPathTable(t *testing.T) (*nvm.Device, *pathTable) {
	t.Helper()
	dev := nvm.NewDevice(64 << 20)
	sm := newSpaceManager(dev, nvm.PageSize, dev.Pages())
	sm.initTable(nil, 64)
	pt := &pathTable{dev: dev, bucketOff: 40 * nvm.PageSize, sm: sm}
	pt.init(nil)
	return dev, pt
}

func TestPathTableInsertLookupRemove(t *testing.T) {
	_, pt := newPathTable(t)
	if err := pt.insert(nil, "/a", 100); err != nil {
		t.Fatal(err)
	}
	if err := pt.insert(nil, "/a", 101); err != ErrExists {
		t.Fatalf("dup insert = %v", err)
	}
	if id, ok := pt.lookup(nil, "/a"); !ok || id != 100 {
		t.Fatalf("lookup = %d,%v", id, ok)
	}
	if err := pt.remove(nil, "/a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := pt.lookup(nil, "/a"); ok {
		t.Fatal("removed path still resolves")
	}
	if err := pt.remove(nil, "/a"); err != ErrNotFound {
		t.Fatalf("double remove = %v", err)
	}
}

func TestPathTablePersistsAcrossLoad(t *testing.T) {
	_, pt := newPathTable(t)
	// Enough entries to overflow bucket pages (long paths, many entries).
	long := strings.Repeat("x", 180)
	for i := 0; i < 500; i++ {
		if err := pt.insert(nil, fmt.Sprintf("/%s/%04d", long, i), coffer.ID(1000+i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Tombstone some.
	for i := 0; i < 500; i += 3 {
		if err := pt.remove(nil, fmt.Sprintf("/%s/%04d", long, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild the volatile map purely from the persistent structure.
	pt2 := &pathTable{dev: pt.dev, bucketOff: pt.bucketOff, sm: pt.sm}
	if err := pt2.load(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := fmt.Sprintf("/%s/%04d", long, i)
		id, ok := pt2.lookup(nil, p)
		if i%3 == 0 {
			if ok {
				t.Fatalf("tombstoned %s resolves after reload", p)
			}
		} else if !ok || id != coffer.ID(1000+i) {
			t.Fatalf("%s lost across reload: %d,%v", p, id, ok)
		}
	}
}

func TestPathTableRename(t *testing.T) {
	_, pt := newPathTable(t)
	pt.insert(nil, "/old", 7)
	if err := pt.rename(nil, "/old", "/new", 7); err != nil {
		t.Fatal(err)
	}
	if _, ok := pt.lookup(nil, "/old"); ok {
		t.Fatal("old survives rename")
	}
	if id, ok := pt.lookup(nil, "/new"); !ok || id != 7 {
		t.Fatal("new missing after rename")
	}
	// Rename onto existing fails and preserves the source.
	pt.insert(nil, "/other", 8)
	if err := pt.rename(nil, "/new", "/other", 7); err == nil {
		t.Fatal("rename onto existing succeeded")
	}
	if id, ok := pt.lookup(nil, "/new"); !ok || id != 7 {
		t.Fatal("source lost after failed rename")
	}
}
