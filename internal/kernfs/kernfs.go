// Package kernfs implements the kernel half of the Treasury architecture
// (paper §3.2, §4.1): global NVM space management via a persistent
// allocation table, the persistent path→coffer hash table, and the
// coffer-level protocol of Table 5 (coffer_new/delete/enlarge/shrink/map/
// unmap/split/merge/recover, fs_mount/umount, file_mmap/execve).
//
// KernFS treats coffers as black boxes: it knows a coffer's path, type,
// permission and page set, but never its interior. Every public operation
// charges one syscall on the calling thread's virtual clock.
//
// Locking (DESIGN.md §14). The old kernel big lock is gone; the agent is
// sharded along the paper's own granularity argument — the kernel manages
// coffers, so the kernel locks coffers:
//
//	kernfs.registry          create/delete/rename visibility (short sections)
//	kernfs.coffer/<id>       one per coffer: flags, mappers, owner tree
//	kernfs.paths             path-table write side (readers use the snapshot)
//	kernfs.freeshard/<i>     free-pool shards; transient leaves
//
// Class order is strictly descending in that list; within kernfs.coffer,
// multi-coffer operations (move_pages, coffer_merge) lock in ascending ID
// order. Charged work — grant scrubbing, allocation-table writes, PTE
// update costs — happens outside every lock, so concurrent coffer_enlarge
// calls no longer serialize in virtual time.
package kernfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"zofs/internal/byteflow"
	"zofs/internal/coffer"
	"zofs/internal/lockprof"
	"zofs/internal/mpk"
	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/simclock"
	"zofs/internal/spans"
	"zofs/internal/telemetry"
)

// Exported error sentinels, the analogues of errno values.
var (
	ErrPerm         = errors.New("kernfs: permission denied")
	ErrNotFound     = errors.New("kernfs: no such coffer")
	ErrExists       = errors.New("kernfs: coffer exists")
	ErrBusy         = errors.New("kernfs: coffer busy")
	ErrNoSpace      = errors.New("kernfs: no space left on device")
	ErrNoMPKRegions = errors.New("kernfs: no MPK regions available")
	ErrInvalid      = errors.New("kernfs: invalid argument")
	ErrNotMapped    = errors.New("kernfs: coffer not mapped")
	ErrInRecovery   = errors.New("kernfs: coffer in recovery")
	// ErrCofferReadOnly / ErrCofferOffline are the quarantine errnos
	// (DESIGN.md §13): the coffer exists but has been fenced off — writes
	// (read-only) or all access (offline) fail fast with a typed error
	// while every other coffer keeps serving.
	ErrCofferReadOnly = errors.New("kernfs: coffer quarantined read-only")
	ErrCofferOffline  = errors.New("kernfs: coffer quarantined offline")
)

// Superblock layout (page 0).
const (
	sbMagic        = 0x5A6F46535F535550 // "ZoFS_SUP"
	sbMagicOff     = 0
	sbNPagesOff    = 8
	sbAllocPageOff = 16
	sbAllocLenOff  = 24
	sbPathPageOff  = 32
	sbPathLenOff   = 40
	sbRootOff      = 48
)

// MkfsOptions configures file system creation.
type MkfsOptions struct {
	RootMode coffer.Mode // permission of the root coffer (default 0755)
	RootUID  uint32
	RootGID  uint32
}

// KernFS is the kernel module instance for one device.
type KernFS struct {
	dev *nvm.Device

	// regMu is the registry lock: a short critical section ordering coffer
	// create/delete/rename visibility (the paths table and the coffer map
	// change together under it). Steady-state operations — enlarge, map,
	// shrink, lookups — never touch it.
	regMu lockprof.Mutex
	// pmu is the path-table write lock; lock-free readers validate against
	// the table's seq/snapshot and only fall back to its read side when
	// they catch a writer mid-publish.
	pmu lockprof.RWMutex

	space *spaceManager
	paths *pathTable

	rootCoffer coffer.ID
	// coffers maps coffer.ID -> *cofferInfo. A sync.Map so the hot paths
	// (enlarge, map, Info) resolve IDs without any lock; mutations happen
	// under regMu.
	coffers sync.Map
	procs   map[int]*procState
	procsMu sync.Mutex

	// violations counts MPK-violation reports per coffer (ReportViolation);
	// crossing violationThreshold auto-quarantines the coffer read-only.
	// Volatile by design: a reboot clears the tally but not the quarantine
	// flags, which live in the root page. Guarded by regMu.
	violations map[coffer.ID]int
}

// violationThreshold is how many reported stray-write violations at one
// coffer the kernel tolerates before fencing it read-only (DESIGN.md §13).
const violationThreshold = 3

// cofferInfo is the kernel's per-coffer record. mu (`kernfs.coffer/<id>`)
// guards rp, dead and mappers plus the coffer's owner tree in the space
// manager; rpSnap republishes rp after every change so Info and permission
// checks read it without the lock (validated against NVM truth the same way
// the dcache is).
type cofferInfo struct {
	mu     lockprof.Mutex
	dead   bool // set by coffer_delete/merge; checked after every acquire
	rp     coffer.RootPage
	rpSnap atomic.Pointer[coffer.RootPage]

	mappers map[int]*procState
}

func newCofferInfo(rp coffer.RootPage) *cofferInfo {
	ci := &cofferInfo{rp: rp, mappers: map[int]*procState{}}
	ci.mu.Init("kernfs.coffer", strconv.FormatUint(uint64(rp.ID), 10))
	ci.publishRP()
	return ci
}

// publishRP refreshes the lock-free root-page snapshot; call after every rp
// mutation, holding mu.
func (ci *cofferInfo) publishRP() {
	rp := ci.rp
	ci.rpSnap.Store(&rp)
}

// writeGate validates, under ci.mu, that pid may mutate the coffer's page
// set (the enlarge/shrink precondition).
func (ci *cofferInfo) writeGate(pid int) error {
	if ci.dead {
		return ErrNotFound
	}
	// Quarantine fences before the mapper check, so a degraded (remapped
	// read-only) holdover gets the typed quarantine error, not ErrNotMapped.
	if ci.rp.Flags&coffer.FlagOffline != 0 {
		return ErrCofferOffline
	}
	if ci.rp.Flags&coffer.FlagReadOnly != 0 {
		return ErrCofferReadOnly
	}
	ps := ci.mappers[pid]
	if ps == nil || !ps.isWritable(ci.rp.ID) {
		return ErrNotMapped
	}
	return nil
}

// procState is the kernel-private per-process state created by fs_mount.
// mu guards keys/writable/usedKeys (threads of one process can map
// different coffers concurrently); it nests strictly inside coffer locks.
type procState struct {
	p        *proc.Process
	mu       sync.Mutex
	keys     map[coffer.ID]mpk.Key
	writable map[coffer.ID]bool
	usedKeys uint16
	// revGen counts kernel-initiated mapping revocations and downgrades
	// (coffer delete, recovery eviction, quarantine). It models a
	// user-readable shared counter: the µFS compares it against its cached
	// value before trusting its mount cache, so a mapping the kernel pulled
	// out from under the library is noticed before — not after — the library
	// dereferences a dead key. Voluntary coffer_unmap does not bump it.
	revGen atomic.Uint64
}

func (ps *procState) isWritable(id coffer.ID) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.writable[id]
}

func (ps *procState) access(id coffer.ID) (mpk.Key, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.keys[id], ps.writable[id]
}

func (ps *procState) hasKey(id coffer.ID) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	_, ok := ps.keys[id]
	return ok
}

func (ps *procState) mappedIDs() []coffer.ID {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]coffer.ID, 0, len(ps.keys))
	for id := range ps.keys {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// forgetKey drops the process's key bookkeeping for a coffer.
func (ps *procState) forgetKey(id coffer.ID) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if key, ok := ps.keys[id]; ok {
		ps.usedKeys &^= 1 << key
		delete(ps.keys, id)
		delete(ps.writable, id)
	}
}

// Mkfs formats a device: superblock, allocation table, path table and the
// root coffer (a ZoFS-type coffer holding "/"). Every write carries an
// explicit byte class — mkfs runs with nil clocks, and formatting traffic
// must not land in the ledger's residual.
func Mkfs(dev *nvm.Device, opts MkfsOptions) error {
	if opts.RootMode == 0 {
		opts.RootMode = 0o755
	}
	npages := dev.Pages()
	allocPages := (allocTableBytes(npages) + nvm.PageSize - 1) / nvm.PageSize
	pathPages := (pathTabBytes() + nvm.PageSize - 1) / nvm.PageSize
	kernPages := 1 + allocPages + pathPages
	if kernPages+3 > npages {
		return fmt.Errorf("%w: device too small (%d pages)", ErrInvalid, npages)
	}

	sm := newSpaceManager(dev, 1*nvm.PageSize, npages)
	sm.initTable(nil, kernPages)
	pt := &pathTable{dev: dev, bucketOff: (1 + allocPages) * nvm.PageSize, sm: sm}
	pt.init(nil)

	// Root coffer: root page + root dir inode page + custom page.
	exts, err := sm.takeFree(nil, 0, 3)
	if err != nil {
		return err
	}
	pages := flatten(exts)
	rootID := coffer.ID(pages[0])
	own := sm.ownerSet(rootID)
	for _, e := range exts {
		sm.writeRun(nil, e.Start, e.Count, rootID)
		own.Add(e.Start, e.Count)
	}
	sm.uninflight(exts)
	rp := &coffer.RootPage{
		ID: rootID, Type: coffer.TypeZoFS, Mode: opts.RootMode,
		UID: opts.RootUID, GID: opts.RootGID,
		RootInode: pages[1], Custom: pages[2], Path: "/",
	}
	// Root pages are the coffer's super-inode; interior scrubbing is
	// allocator overhead, same as a zeroed enlarge grant.
	dev.WriteNTClass(nil, byteflow.ClassInode, pages[0]*nvm.PageSize, coffer.EncodeRootPage(rp))
	dev.ZeroClass(nil, byteflow.ClassAlloc, pages[1]*nvm.PageSize, nvm.PageSize)
	dev.ZeroClass(nil, byteflow.ClassAlloc, pages[2]*nvm.PageSize, nvm.PageSize)
	if err := pt.insert(nil, "/", rootID); err != nil {
		return err
	}

	// Superblock last: its magic commits the format. The superblock is the
	// device's super-inode — it books inode-class like root pages do.
	sb := make([]byte, nvm.PageSize)
	binary.LittleEndian.PutUint64(sb[sbMagicOff:], sbMagic)
	binary.LittleEndian.PutUint64(sb[sbNPagesOff:], uint64(npages))
	binary.LittleEndian.PutUint64(sb[sbAllocPageOff:], 1)
	binary.LittleEndian.PutUint64(sb[sbAllocLenOff:], uint64(allocPages))
	binary.LittleEndian.PutUint64(sb[sbPathPageOff:], uint64(1+allocPages))
	binary.LittleEndian.PutUint64(sb[sbPathLenOff:], uint64(pathPages))
	binary.LittleEndian.PutUint64(sb[sbRootOff:], uint64(rootID))
	dev.WriteNTClass(nil, byteflow.ClassInode, 0, sb)
	return nil
}

func flatten(exts []coffer.Extent) []int64 {
	var out []int64
	for _, e := range exts {
		for i := int64(0); i < e.Count; i++ {
			out = append(out, e.Start+i)
		}
	}
	return out
}

// Mount attaches KernFS to a formatted device, rebuilding volatile state
// from the persistent allocation and path tables.
func Mount(dev *nvm.Device) (*KernFS, error) {
	sb := make([]byte, nvm.PageSize)
	dev.ReadNoCharge(0, sb)
	if binary.LittleEndian.Uint64(sb[sbMagicOff:]) != sbMagic {
		return nil, fmt.Errorf("%w: bad superblock magic", ErrInvalid)
	}
	npages := int64(binary.LittleEndian.Uint64(sb[sbNPagesOff:]))
	if npages != dev.Pages() {
		return nil, fmt.Errorf("%w: superblock pages %d != device pages %d", ErrInvalid, npages, dev.Pages())
	}
	allocPage := int64(binary.LittleEndian.Uint64(sb[sbAllocPageOff:]))
	pathPage := int64(binary.LittleEndian.Uint64(sb[sbPathPageOff:]))

	k := &KernFS{
		dev:        dev,
		space:      newSpaceManager(dev, allocPage*nvm.PageSize, npages),
		rootCoffer: coffer.ID(binary.LittleEndian.Uint64(sb[sbRootOff:])),
		procs:      map[int]*procState{},
		violations: map[coffer.ID]int{},
	}
	k.regMu.Init("kernfs.registry", "")
	k.pmu.Init("kernfs.paths", "")
	k.paths = &pathTable{dev: dev, bucketOff: pathPage * nvm.PageSize, sm: k.space, wmu: &k.pmu}
	if err := k.space.scan(nil); err != nil {
		return nil, err
	}
	if err := k.paths.load(nil); err != nil {
		return nil, err
	}
	// Materialize coffer infos from root pages.
	buf := make([]byte, nvm.PageSize)
	for path, id := range k.paths.all() {
		dev.ReadNoCharge(int64(id)*nvm.PageSize, buf)
		rp, err := coffer.DecodeRootPage(buf)
		if err != nil {
			return nil, fmt.Errorf("kernfs: coffer %d (%s): %v", id, path, err)
		}
		k.coffers.Store(id, newCofferInfo(*rp))
	}
	return k, nil
}

// Device returns the underlying NVM device.
func (k *KernFS) Device() *nvm.Device { return k.dev }

// cofferLoad resolves an ID lock-free.
func (k *KernFS) cofferLoad(id coffer.ID) (*cofferInfo, bool) {
	v, ok := k.coffers.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*cofferInfo), true
}

// lockCoffer resolves and locks a coffer, treating concurrently deleted
// coffers as absent. Returns nil if the coffer does not (any longer) exist.
func (k *KernFS) lockCoffer(clk *simclock.Clock, id coffer.ID) *cofferInfo {
	ci, ok := k.cofferLoad(id)
	if !ok {
		return nil
	}
	ci.mu.Lock(clk)
	if ci.dead {
		ci.mu.Unlock(clk)
		return nil
	}
	return ci
}

// writeRootPage persists a coffer's root page. Root pages are the coffer's
// super-inode, so the byte-flow ledger books them inode-class.
func (k *KernFS) writeRootPage(clk *simclock.Clock, pg int64, rp *coffer.RootPage) {
	k.dev.WriteNTClass(clk, byteflow.ClassInode, pg*nvm.PageSize, coffer.EncodeRootPage(rp))
}

// rec returns the telemetry recorder attached to the device (nil when
// telemetry is disabled; all recorder methods are nil-safe).
func (k *KernFS) rec() *telemetry.Recorder { return k.dev.Recorder() }

// kcallNoop is returned by kcall when spans are disabled, so the deferred
// call costs one indirect jump instead of a fresh closure allocation.
var kcallNoop = func() {}

// kcall records this kernel entry as a child span of the caller's active
// operation ("kernfs.<name>"), covering syscall entry through return — the
// lens for seeing coffer_enlarge serialization inside op latency.
func kcall(th *proc.Thread, name string) func() {
	sp := spans.FromClock(th.Clk)
	if sp == nil {
		return kcallNoop
	}
	start := th.Clk.Now()
	return func() { sp.Child("kernfs."+name, start, th.Clk.Now()-start) }
}

// RootCoffer returns the coffer holding "/".
func (k *KernFS) RootCoffer() coffer.ID { return k.rootCoffer }

// FreePages reports unallocated pages (for df-style tools).
func (k *KernFS) FreePages() int64 { return k.space.freePages() }

// FreeExtents returns the global free pool's extents in address order
// (df-style tools derive device-level fragmentation from them).
func (k *KernFS) FreeExtents() []coffer.Extent { return k.space.freeExtents() }

// VerifySpace re-reads the persistent allocation table and cross-checks it
// against the kernel's volatile extent trees: per-slot ownership, per-owner
// page counts, the sharded free pool (including in-flight grant batches)
// and the whole-device census. Uncharged (a fsck/tooling operation, not a
// modeled syscall).
func (k *KernFS) VerifySpace() error { return k.space.verify() }

// ---- fs_mount / fs_umount -------------------------------------------------

// FSMount registers a process's FSLibs instance (Table 5: fs_mount).
func (k *KernFS) FSMount(th *proc.Thread) error {
	defer kcall(th, "fs_mount")()
	th.Syscall()
	k.procsMu.Lock()
	defer k.procsMu.Unlock()
	if _, dup := k.procs[th.Proc.PID]; dup {
		return fmt.Errorf("%w: process already mounted", ErrInvalid)
	}
	k.procs[th.Proc.PID] = &procState{
		p:        th.Proc,
		keys:     map[coffer.ID]mpk.Key{},
		writable: map[coffer.ID]bool{},
	}
	return nil
}

// FSUmount deregisters the process, unmapping every coffer (Table 5:
// fs_umount; also invoked on process termination).
func (k *KernFS) FSUmount(th *proc.Thread) error {
	defer kcall(th, "fs_umount")()
	th.Syscall()
	ps := k.stateOf(th.Proc.PID)
	if ps == nil {
		return ErrInvalid
	}
	for _, id := range ps.mappedIDs() {
		if ci := k.lockCoffer(th.Clk, id); ci != nil {
			k.unmapLocked(ci, ps)
			ci.mu.Unlock(th.Clk)
		} else {
			ps.forgetKey(id) // coffer died concurrently; drop the key
		}
	}
	k.procsMu.Lock()
	delete(k.procs, th.Proc.PID)
	k.procsMu.Unlock()
	return nil
}

func (k *KernFS) stateOf(pid int) *procState {
	k.procsMu.Lock()
	defer k.procsMu.Unlock()
	return k.procs[pid]
}

// SetIdentity changes a process's uid/gid; per §3.3 all coffer mappings are
// removed when identifiers change (setuid semantics).
func (k *KernFS) SetIdentity(th *proc.Thread, uid, gid uint32) error {
	defer kcall(th, "set_identity")()
	th.Syscall()
	ps := k.stateOf(th.Proc.PID)
	if ps == nil {
		return ErrInvalid
	}
	for _, id := range ps.mappedIDs() {
		if ci := k.lockCoffer(th.Clk, id); ci != nil {
			k.revokeLocked(ci, ps)
			ci.mu.Unlock(th.Clk)
		} else {
			ps.forgetKey(id)
		}
	}
	th.Proc.SetIdentity(uid, gid)
	return nil
}

// ---- lookup ----------------------------------------------------------------

// LookupPath finds a coffer by exact path. The path table is readable from
// user space (mapped read-only like root pages), so no syscall is charged —
// only the hash probe. Lock-free: the probe runs against the seq-validated
// path snapshot and never blocks behind a concurrent create/delete/rename.
func (k *KernFS) LookupPath(clk *simclock.Clock, path string) (coffer.ID, bool) {
	return k.paths.lookup(clk, path)
}

// ResolveLongest implements ZoFS's backwards path parse (§6.2): starting
// from the longest prefix of path, probe each prefix until a coffer root is
// found. Returns the coffer and the prefix that matched. Deep paths charge
// proportionally more — the ZoFS-20dirwidth effect. Lock-free like
// LookupPath.
func (k *KernFS) ResolveLongest(clk *simclock.Clock, path string) (coffer.ID, string, bool) {
	p := path
	for {
		if id, ok := k.paths.lookup(clk, p); ok {
			return id, p, true
		}
		if clk != nil {
			clk.Advance(perfmodel.CPUPathComponent)
		}
		if p == "/" {
			return 0, "", false
		}
		i := strings.LastIndexByte(p, '/')
		if i <= 0 {
			p = "/"
		} else {
			p = p[:i]
		}
	}
}

// Info returns a copy of a coffer's root-page metadata. Lock-free: the
// published root-page snapshot is read with two atomic loads.
func (k *KernFS) Info(id coffer.ID) (coffer.RootPage, bool) {
	ci, ok := k.cofferLoad(id)
	if !ok {
		return coffer.RootPage{}, false
	}
	return *ci.rpSnap.Load(), true
}

// Coffers returns a snapshot of all coffer IDs in ascending order (fsck,
// tooling).
func (k *KernFS) Coffers() []coffer.ID {
	var out []coffer.ID
	k.coffers.Range(func(key, _ any) bool {
		out = append(out, key.(coffer.ID))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExtentsOf returns the pages owned by a coffer (kernel view). Works for
// coffer.KernelID too — the kernel's own metadata pages have no registry
// entry but do have an owner tree.
func (k *KernFS) ExtentsOf(id coffer.ID) []coffer.Extent {
	if ci := k.lockCoffer(nil, id); ci != nil {
		defer ci.mu.Unlock(nil)
	}
	return k.space.extentsOf(id)
}

// ---- coffer_new / coffer_delete -------------------------------------------

// CofferNew creates a coffer under the given parent coffer (Table 5:
// coffer_new). The caller must have write access to the parent. npages
// pages are allocated (minimum 3 for a ZoFS coffer: root page, root-file
// inode page, custom page). Returns the new coffer's ID.
//
// The coffer body is staged entirely outside the locks — the pages are
// invisible until the registry publish — so creates do not serialize with
// each other or with enlarges beyond the short registry section.
func (k *KernFS) CofferNew(th *proc.Thread, parent coffer.ID, path string, typ coffer.Type, mode coffer.Mode, uid, gid uint32, npages int64) (coffer.ID, error) {
	defer kcall(th, "coffer_new")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernCofferNew)
	if npages < 3 {
		npages = 3
	}
	if !strings.HasPrefix(path, "/") {
		return 0, fmt.Errorf("%w: coffer path must be absolute", ErrInvalid)
	}
	pci, ok := k.cofferLoad(parent)
	if !ok {
		return 0, ErrNotFound
	}
	prp := pci.rpSnap.Load()
	if !coffer.Access(prp.Mode, prp.UID, prp.GID, th.Proc.UID(), th.Proc.GID(), true) {
		return 0, ErrPerm
	}
	if _, dup := k.paths.lookup(nil, path); dup {
		return 0, ErrExists
	}

	// Stage: take pages, tag them, scrub the metadata pages, write the root
	// page. No lock is held; the ID is not yet discoverable.
	exts, err := k.space.takeFree(th.Clk, uint64(parent)^uint64(th.TID)<<32, npages)
	if err != nil {
		return 0, err
	}
	pages := flatten(exts)
	id := coffer.ID(pages[0])
	own := k.space.ownerSet(id)
	for _, e := range exts {
		k.space.writeRun(th.Clk, e.Start, e.Count, id)
		own.Add(e.Start, e.Count)
	}
	k.space.uninflight(exts)
	rp := coffer.RootPage{
		ID: id, Type: typ, Mode: mode, UID: uid, GID: gid,
		RootInode: pages[1], Custom: pages[2], Path: path,
	}
	k.writeRootPage(th.Clk, pages[0], &rp)
	wprev := th.Clk.SwapWriteClass(uint8(byteflow.ClassAlloc))
	k.dev.Zero(th.Clk, pages[1]*nvm.PageSize, nvm.PageSize)
	k.dev.Zero(th.Clk, pages[2]*nvm.PageSize, nvm.PageSize)
	th.Clk.SetWriteClass(wprev)

	// Publish: path entry and registry record become visible together.
	k.regMu.Lock(th.Clk)
	if err := k.paths.insert(th.Clk, path, id); err != nil {
		k.regMu.Unlock(th.Clk)
		k.space.releaseAll(th.Clk, id) // roll back the staged allocation
		return 0, err
	}
	k.coffers.Store(id, newCofferInfo(rp))
	k.regMu.Unlock(th.Clk)
	return id, nil
}

// CofferDelete removes a coffer and frees all its pages (Table 5:
// coffer_delete). Only the owner (or root) may delete. Every process's
// mapping is revoked first — the same eviction discipline BeginRecover
// uses — so a deleted coffer can never stay readable through stale page
// tables; a straggler faults on its next access and re-resolves the path.
// Runs under the registry lock (delete visibility), then the coffer lock.
func (k *KernFS) CofferDelete(th *proc.Thread, id coffer.ID) error {
	defer kcall(th, "coffer_delete")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernCofferDelete)
	k.regMu.Lock(th.Clk)
	defer k.regMu.Unlock(th.Clk)
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if u := th.Proc.UID(); u != 0 && u != ci.rp.UID {
		return ErrPerm
	}
	if id == k.rootCoffer {
		return fmt.Errorf("%w: cannot delete root coffer", ErrInvalid)
	}
	for _, ps := range ci.mappers {
		k.revokeLocked(ci, ps)
	}
	if err := k.paths.remove(th.Clk, ci.rp.Path); err != nil {
		return err
	}
	ci.dead = true
	k.space.releaseAll(th.Clk, id)
	k.coffers.Delete(id)
	delete(k.violations, id)
	return nil
}

// ---- coffer_enlarge / coffer_shrink ----------------------------------------

// enlargeHint mixes the target coffer with the calling thread so the shard
// fast path spreads hot-coffer enlarges across the pool.
func enlargeHint(id coffer.ID, tid int) uint64 {
	return uint64(id) ^ uint64(tid)<<32 ^ uint64(tid)
}

// CofferEnlarge allocates npages more pages to a mapped coffer (Table 5:
// coffer_enlarge) and maps them into every process that has the coffer
// mapped. When zero is set the kernel scrubs the pages before granting them
// (required for pages that will hold metadata parsed by other processes).
//
// This used to be the scaling cliff of Figures 7(d)/(g): scrub + table
// write + PTE charge all ran under one global kernel mutex. Now the charged
// work runs with no lock held — the staged pages are invisible until
// publication, so scrubbing them unlocked is race-free by construction —
// and the coffer lock covers only the volatile publish (owner tree + page
// tables).
func (k *KernFS) CofferEnlarge(th *proc.Thread, id coffer.ID, npages int64, zero bool) ([]coffer.Extent, error) {
	defer kcall(th, "coffer_enlarge")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernCofferEnlarge)
	k.rec().Add(telemetry.CtrKernEnlargePages, npages)
	ci, ok := k.cofferLoad(id)
	if !ok {
		return nil, ErrNotFound
	}
	// Fail fast before committing pages — lock-free, from the root-page
	// snapshot and the per-process table. Taking ci.mu here would defeat the
	// whole staging design: Lock drains the caller's clock to the previous
	// holder's release stamp, so a locked precheck stacks every thread's
	// (otherwise parallel) staging work end-to-end and the per-coffer lock
	// convoys exactly like kernfs.big did. The publish path re-checks under
	// the lock; this check only avoids staging work that is already doomed.
	rp := ci.rpSnap.Load()
	if rp.Flags&coffer.FlagOffline != 0 {
		return nil, ErrCofferOffline
	}
	if rp.Flags&coffer.FlagReadOnly != 0 {
		return nil, ErrCofferReadOnly
	}
	if ps := k.stateOf(th.Proc.PID); ps == nil || !ps.isWritable(id) {
		return nil, ErrNotMapped
	}

	// Stage: shard extraction, grant scrubbing and the table write, all
	// lock-free.
	exts, err := k.space.takeFree(th.Clk, enlargeHint(id, th.TID), npages)
	if err != nil {
		return nil, err
	}
	if zero {
		// Grant scrubbing is allocator overhead in the byte-flow ledger.
		wprev := th.Clk.SwapWriteClass(uint8(byteflow.ClassAlloc))
		for _, e := range exts {
			k.dev.Zero(th.Clk, e.Start*nvm.PageSize, e.Count*nvm.PageSize)
		}
		th.Clk.SetWriteClass(wprev)
	}
	for _, e := range exts {
		k.space.writeRun(th.Clk, e.Start, e.Count, id)
	}
	th.CPU(perfmodel.PTEUpdate * npages)

	// Publish under the coffer lock, re-validating the gate: the coffer may
	// have been deleted or quarantined while we staged.
	ci.mu.Lock(th.Clk)
	if err := ci.writeGate(th.Proc.PID); err != nil {
		ci.mu.Unlock(th.Clk)
		for _, e := range exts {
			k.space.writeRun(th.Clk, e.Start, e.Count, 0)
		}
		k.space.returnFree(th.Clk, exts)
		return nil, err
	}
	own := k.space.ownerSet(id)
	for _, e := range exts {
		own.Add(e.Start, e.Count)
	}
	for _, m := range ci.mappers {
		key, w := m.access(id)
		for _, e := range exts {
			m.p.Mem.Map(e.Start, e.Count, key, w)
		}
	}
	ci.mu.Unlock(th.Clk)
	k.space.uninflight(exts)
	return exts, nil
}

// MovePages retags specific pages from coffer src to coffer dst (used by
// cross-coffer renames when the permissions match). Both coffers must be
// write-mapped by the caller and carry identical permissions; each page is
// retagged individually — as expensive per page as coffer_split (Table 9).
// Locks both coffers in ascending ID order.
func (k *KernFS) MovePages(th *proc.Thread, src, dst coffer.ID, pages []int64) error {
	defer kcall(th, "move_pages")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernMovePages)
	si, di, err := k.lockPair(th.Clk, src, dst)
	if err != nil {
		return err
	}
	defer k.unlockPair(th.Clk, si, di)
	ps := k.stateOf(th.Proc.PID)
	if ps == nil {
		return ErrNotMapped
	}
	if _, sw := ps.access(src); !sw {
		return ErrNotMapped
	}
	if _, dw := ps.access(dst); !dw {
		return ErrNotMapped
	}
	if si.rp.Mode != di.rp.Mode || si.rp.UID != di.rp.UID || si.rp.GID != di.rp.GID {
		return fmt.Errorf("%w: move requires identical permissions", ErrInvalid)
	}
	for _, pg := range pages {
		if pg == int64(src) {
			return fmt.Errorf("%w: cannot move the root page", ErrInvalid)
		}
		if err := k.space.retag(th.Clk, src, dst, pg, 1); err != nil {
			return err
		}
		for _, m := range si.mappers {
			m.p.Mem.Unmap(pg, 1)
		}
		for _, m := range di.mappers {
			key, w := m.access(dst)
			m.p.Mem.Map(pg, 1, key, w)
		}
		th.CPU(perfmodel.CPUSmallOp)
	}
	return nil
}

// lockPair locks two distinct coffers in ascending ID order (the in-class
// ordering rule for kernfs.coffer locks).
func (k *KernFS) lockPair(clk *simclock.Clock, a, b coffer.ID) (ai, bi *cofferInfo, err error) {
	if a == b {
		return nil, nil, fmt.Errorf("%w: identical coffers", ErrInvalid)
	}
	first, second := a, b
	if second < first {
		first, second = second, first
	}
	fi := k.lockCoffer(clk, first)
	if fi == nil {
		return nil, nil, ErrNotFound
	}
	sei := k.lockCoffer(clk, second)
	if sei == nil {
		fi.mu.Unlock(clk)
		return nil, nil, ErrNotFound
	}
	if a == first {
		return fi, sei, nil
	}
	return sei, fi, nil
}

func (k *KernFS) unlockPair(clk *simclock.Clock, ai, bi *cofferInfo) {
	ai.mu.Unlock(clk)
	bi.mu.Unlock(clk)
}

// CofferShrink returns free pages from a coffer to the global pool
// (Table 5: coffer_shrink).
func (k *KernFS) CofferShrink(th *proc.Thread, id coffer.ID, exts []coffer.Extent) error {
	defer kcall(th, "coffer_shrink")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernCofferShrink)
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if err := ci.writeGate(th.Proc.PID); err != nil {
		return err
	}
	for _, e := range exts {
		if root := int64(id); root >= e.Start && root < e.End() {
			return fmt.Errorf("%w: cannot shrink away the root page", ErrInvalid)
		}
		if err := k.space.release(th.Clk, id, e.Start, e.Count); err != nil {
			return err
		}
		for _, m := range ci.mappers {
			m.p.Mem.Unmap(e.Start, e.Count)
		}
	}
	return nil
}

// ---- coffer_map / coffer_unmap ---------------------------------------------

// MapInfo is returned by CofferMap: everything a µFS needs to manage the
// coffer from user space.
type MapInfo struct {
	Key      mpk.Key
	Writable bool
	Root     coffer.RootPage
	Extents  []coffer.Extent
}

// CofferMap checks permissions and maps all of a coffer's pages into the
// calling process (Table 5: coffer_map; §3.1). The root page is always
// mapped read-only. Returns ErrNoMPKRegions when the process has exhausted
// the 15 available protection keys (§3.4.2).
func (k *KernFS) CofferMap(th *proc.Thread, id coffer.ID, write bool) (MapInfo, error) {
	defer kcall(th, "coffer_map")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernCofferMap)
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return MapInfo{}, ErrNotFound
	}
	if ci.rp.Flags&coffer.FlagInRecovery != 0 {
		ci.mu.Unlock(th.Clk)
		return MapInfo{}, ErrInRecovery
	}
	if ci.rp.Flags&coffer.FlagOffline != 0 {
		ci.mu.Unlock(th.Clk)
		return MapInfo{}, ErrCofferOffline
	}
	if write && ci.rp.Flags&coffer.FlagReadOnly != 0 {
		ci.mu.Unlock(th.Clk)
		return MapInfo{}, ErrCofferReadOnly
	}
	ps := k.stateOf(th.Proc.PID)
	if ps == nil {
		ci.mu.Unlock(th.Clk)
		return MapInfo{}, fmt.Errorf("%w: fs_mount first", ErrInvalid)
	}
	if !coffer.Access(ci.rp.Mode, ci.rp.UID, ci.rp.GID, th.Proc.UID(), th.Proc.GID(), write) {
		ci.mu.Unlock(th.Clk)
		return MapInfo{}, ErrPerm
	}

	ps.mu.Lock()
	if key, have := ps.keys[id]; have {
		// Upgrade to writable if requested and permitted.
		upgrade := write && !ps.writable[id]
		if upgrade {
			ps.writable[id] = true
		}
		w := ps.writable[id]
		ps.mu.Unlock()
		if upgrade {
			k.mapPagesLocked(ps, ci, key, true)
		}
		info := MapInfo{Key: key, Writable: w, Root: ci.rp, Extents: k.space.extentsOf(id)}
		ci.mu.Unlock(th.Clk)
		return info, nil
	}
	key, ok := ps.allocKeyLocked()
	if !ok {
		ps.mu.Unlock()
		ci.mu.Unlock(th.Clk)
		return MapInfo{}, ErrNoMPKRegions
	}
	ps.keys[id] = key
	ps.writable[id] = write
	ps.mu.Unlock()
	ci.mappers[th.Proc.PID] = ps
	k.mapPagesLocked(ps, ci, key, write)
	npg := k.space.pagesOf(id)
	info := MapInfo{Key: key, Writable: write, Root: ci.rp, Extents: k.space.extentsOf(id)}
	ci.mu.Unlock(th.Clk)
	th.CPU(perfmodel.CPUSmallOp * npg / 32) // page-table setup
	return info, nil
}

// mapPagesLocked installs a coffer's pages in one process's address space.
// The root page is read-only regardless of the requested access. Caller
// holds ci.mu.
func (k *KernFS) mapPagesLocked(ps *procState, ci *cofferInfo, key mpk.Key, write bool) {
	root := int64(ci.rp.ID)
	for _, e := range k.space.extentsOf(ci.rp.ID) {
		ps.p.Mem.Map(e.Start, e.Count, key, write)
	}
	ps.p.Mem.Map(root, 1, key, false)
}

// allocKeyLocked grabs a free MPK key; the caller holds ps.mu.
func (ps *procState) allocKeyLocked() (mpk.Key, bool) {
	for key := mpk.Key(1); key < mpk.NumKeys; key++ {
		if ps.usedKeys&(1<<key) == 0 {
			ps.usedKeys |= 1 << key
			return key, true
		}
	}
	return 0, false
}

// CofferUnmap removes a coffer from the calling process (Table 5:
// coffer_unmap), releasing its MPK region.
func (k *KernFS) CofferUnmap(th *proc.Thread, id coffer.ID) error {
	defer kcall(th, "coffer_unmap")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernCofferUnmap)
	ps := k.stateOf(th.Proc.PID)
	if ps == nil {
		return ErrInvalid
	}
	if !ps.hasKey(id) {
		return ErrNotMapped
	}
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		ps.forgetKey(id)
		return nil
	}
	k.unmapLocked(ci, ps)
	ci.mu.Unlock(th.Clk)
	return nil
}

// unmapLocked tears one process's mapping of a coffer down; caller holds
// ci.mu.
func (k *KernFS) unmapLocked(ci *cofferInfo, ps *procState) {
	id := ci.rp.ID
	for _, e := range k.space.extentsOf(id) {
		ps.p.Mem.Unmap(e.Start, e.Count)
	}
	ps.forgetKey(id)
	delete(ci.mappers, ps.p.PID)
}

// revokeLocked is unmapLocked for kernel-initiated evictions: the process
// did not ask for this, so its revocation generation is bumped to tell the
// µFS its mount cache is stale.
func (k *KernFS) revokeLocked(ci *cofferInfo, ps *procState) {
	k.unmapLocked(ci, ps)
	ps.revGen.Add(1)
}

// RevocationGen returns the process's revocation generation. This is not a
// system call: it models a load from a kernel-maintained, user-readable
// shared page (vDSO-style), which is why it takes no clock and charges no
// syscall cost.
func (k *KernFS) RevocationGen(pid int) uint64 {
	ps := k.stateOf(pid)
	if ps == nil {
		return 0
	}
	return ps.revGen.Load()
}

// MappedCoffers returns the coffers currently mapped by a process.
func (k *KernFS) MappedCoffers(pid int) []coffer.ID {
	ps := k.stateOf(pid)
	if ps == nil {
		return nil
	}
	return ps.mappedIDs()
}

// ---- metadata updates -------------------------------------------------------

// SetCofferMeta updates a coffer's permission/ownership in place (the cheap
// chmod path, used when the whole coffer changes permission). Owner or root
// only.
func (k *KernFS) SetCofferMeta(th *proc.Thread, id coffer.ID, mode coffer.Mode, uid, gid uint32) error {
	defer kcall(th, "set_coffer_meta")()
	th.Syscall()
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if u := th.Proc.UID(); u != 0 && u != ci.rp.UID {
		return ErrPerm
	}
	ci.rp.Mode, ci.rp.UID, ci.rp.GID = mode, uid, gid
	ci.publishRP()
	k.writeRootPage(th.Clk, int64(id), &ci.rp)
	return nil
}

// SetCofferType rewrites a coffer's µFS type (owner or root only; used by
// formatting tools that re-dedicate a coffer to a different µFS — the
// interior must be re-initialized by the new µFS).
func (k *KernFS) SetCofferType(th *proc.Thread, id coffer.ID, typ coffer.Type, mode coffer.Mode) error {
	defer kcall(th, "set_coffer_type")()
	th.Syscall()
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if u := th.Proc.UID(); u != 0 && u != ci.rp.UID {
		return ErrPerm
	}
	ci.rp.Type = typ
	ci.rp.Mode = mode
	ci.publishRP()
	k.writeRootPage(th.Clk, int64(id), &ci.rp)
	return nil
}

// UpdateRootPointers rewrites the root-file inode / custom page pointers in
// the (user-read-only) root page on behalf of the owning µFS.
func (k *KernFS) UpdateRootPointers(th *proc.Thread, id coffer.ID, rootInode, custom int64) error {
	defer kcall(th, "update_root_pointers")()
	th.Syscall()
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	ps := ci.mappers[th.Proc.PID]
	if ps == nil || !ps.isWritable(id) {
		return ErrNotMapped
	}
	ci.rp.RootInode, ci.rp.Custom = rootInode, custom
	ci.publishRP()
	k.writeRootPage(th.Clk, int64(id), &ci.rp)
	return nil
}

// RenameCoffer changes a coffer's path and rewrites the paths of every
// descendant coffer — the expensive prefix rewrite behind cross-coffer
// renames (Table 9).
func (k *KernFS) RenameCoffer(th *proc.Thread, oldPath, newPath string) error {
	defer kcall(th, "rename_coffer")()
	th.Syscall()
	k.regMu.Lock(th.Clk)
	defer k.regMu.Unlock(th.Clk)
	return k.renameTreeLocked(th, oldPath, newPath, true)
}

// RenamePrefix rewrites the paths of every coffer at or under oldPath,
// without requiring oldPath itself to be a coffer. µFSs call this when a
// plain in-coffer directory is renamed, so that descendant coffers keep
// consistent paths. A no-op when no coffer matches — detected lock-free
// against the path snapshot, so the common case (renaming a directory with
// no descendant coffers) costs one snapshot scan and takes no lock at all.
func (k *KernFS) RenamePrefix(th *proc.Thread, oldPath, newPath string) error {
	defer kcall(th, "rename_prefix")()
	th.Syscall()
	if id, ok := k.paths.lookup(th.Clk, oldPath); !ok || id == 0 {
		prefix := oldPath
		if !strings.HasSuffix(prefix, "/") {
			prefix += "/"
		}
		hit := false
		for p := range k.paths.all() {
			if strings.HasPrefix(p, prefix) {
				hit = true
				break
			}
		}
		if !hit {
			return nil
		}
	}
	k.regMu.Lock(th.Clk)
	defer k.regMu.Unlock(th.Clk)
	return k.renameTreeLocked(th, oldPath, newPath, false)
}

// renameTreeLocked rewrites the path of oldPath's coffer (if any) and of
// every coffer under it. Caller holds regMu, which keeps the coffer set
// stable; each affected coffer is locked (ascending ID order) around its
// root-page rewrite.
func (k *KernFS) renameTreeLocked(th *proc.Thread, oldPath, newPath string, exact bool) error {
	type renameOp struct {
		id       coffer.ID
		from, to string
	}
	var ops []renameOp
	if id, ok := k.paths.lookup(th.Clk, oldPath); ok {
		ci, _ := k.cofferLoad(id)
		if ci == nil {
			return ErrNotFound
		}
		rp := ci.rpSnap.Load()
		if u := th.Proc.UID(); u != 0 && u != rp.UID {
			return ErrPerm
		}
		ops = append(ops, renameOp{id, oldPath, newPath})
	} else if exact {
		return ErrNotFound
	}
	if _, dup := k.paths.lookup(th.Clk, newPath); dup {
		return ErrExists
	}
	prefix := oldPath
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	for p, cid := range k.paths.all() {
		if strings.HasPrefix(p, prefix) {
			ops = append(ops, renameOp{cid, p, newPath + "/" + p[len(prefix):]})
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].id < ops[j].id })
	for _, op := range ops {
		ci := k.lockCoffer(th.Clk, op.id)
		if ci == nil {
			return ErrNotFound
		}
		if err := k.paths.rename(th.Clk, op.from, op.to, op.id); err != nil {
			ci.mu.Unlock(th.Clk)
			return err
		}
		ci.rp.Path = op.to
		ci.publishRP()
		k.writeRootPage(th.Clk, int64(op.id), &ci.rp)
		ci.mu.Unlock(th.Clk)
		th.CPU(perfmodel.CPUSmallOp)
	}
	return nil
}

// ---- coffer_split / coffer_merge --------------------------------------------

// CofferSplit carves a new coffer with a different permission out of an
// existing one (Table 5: coffer_split), moving the given pages to it.
// Every moved page is retagged individually in the allocation table —
// "the split procedure will change the coffer of all file pages, which
// takes a long time" (Table 9). rootInode/custom are the new coffer's entry
// points (chosen by the µFS from among the moved pages).
func (k *KernFS) CofferSplit(th *proc.Thread, old coffer.ID, newPath string, mode coffer.Mode, uid, gid uint32, pages []int64, rootInode, custom int64) (coffer.ID, error) {
	defer kcall(th, "coffer_split")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernCofferSplit)
	k.regMu.Lock(th.Clk)
	defer k.regMu.Unlock(th.Clk)
	ci := k.lockCoffer(th.Clk, old)
	if ci == nil {
		return 0, ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if u := th.Proc.UID(); u != 0 && u != ci.rp.UID {
		return 0, ErrPerm
	}
	if _, dup := k.paths.lookup(th.Clk, newPath); dup {
		return 0, ErrExists
	}
	// New root page.
	exts, err := k.space.takeFree(th.Clk, enlargeHint(old, th.TID), 1)
	if err != nil {
		return 0, err
	}
	rootPg := exts[0].Start
	id := coffer.ID(rootPg)
	k.space.writeRun(th.Clk, rootPg, 1, id)
	k.space.ownerSet(id).Add(rootPg, 1)
	k.space.uninflight(exts)

	// Move pages one at a time (the expensive part).
	for _, pg := range pages {
		if err := k.space.retag(th.Clk, old, id, pg, 1); err != nil {
			return 0, err
		}
		// Unmap moved pages from every process mapping the old coffer:
		// they now belong to a coffer with a different permission.
		for _, m := range ci.mappers {
			m.p.Mem.Unmap(pg, 1)
		}
		th.CPU(perfmodel.CPUSmallOp)
	}

	rp := coffer.RootPage{
		ID: id, Type: ci.rp.Type, Mode: mode, UID: uid, GID: gid,
		RootInode: rootInode, Custom: custom, Path: newPath,
	}
	k.writeRootPage(th.Clk, rootPg, &rp)
	if err := k.paths.insert(th.Clk, newPath, id); err != nil {
		return 0, err
	}
	k.coffers.Store(id, newCofferInfo(rp))
	return id, nil
}

// CofferMerge folds coffer src into coffer dst (Table 5: coffer_merge).
// Both must carry identical permissions; src's pages are retagged one by
// one and its root page freed. Runs under the registry lock (src is
// deleted) with both coffers locked in ascending ID order.
func (k *KernFS) CofferMerge(th *proc.Thread, dst, src coffer.ID) error {
	defer kcall(th, "coffer_merge")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernCofferMerge)
	k.regMu.Lock(th.Clk)
	defer k.regMu.Unlock(th.Clk)
	si, di, err := k.lockPair(th.Clk, src, dst)
	if err != nil {
		if errors.Is(err, ErrInvalid) {
			return ErrNotFound
		}
		return err
	}
	defer k.unlockPair(th.Clk, si, di)
	if u := th.Proc.UID(); u != 0 && (u != di.rp.UID || u != si.rp.UID) {
		return ErrPerm
	}
	if di.rp.Mode&^0o111 != si.rp.Mode&^0o111 || di.rp.UID != si.rp.UID || di.rp.GID != si.rp.GID {
		return fmt.Errorf("%w: merge requires identical permissions", ErrInvalid)
	}
	for pid := range si.mappers {
		if _, alsoDst := di.mappers[pid]; !alsoDst {
			return ErrBusy
		}
	}
	srcRoot := int64(src)
	for _, e := range k.space.extentsOf(src) {
		for pg := e.Start; pg < e.End(); pg++ {
			if pg == srcRoot {
				continue
			}
			if err := k.space.retag(th.Clk, src, dst, pg, 1); err != nil {
				return err
			}
			// Remap under dst's key for every dst mapper.
			for _, m := range di.mappers {
				key, w := m.access(dst)
				m.p.Mem.Map(pg, 1, key, w)
			}
			th.CPU(perfmodel.CPUSmallOp)
		}
	}
	for _, m := range si.mappers {
		k.unmapLocked(si, m)
	}
	if err := k.paths.remove(th.Clk, si.rp.Path); err != nil {
		return err
	}
	si.dead = true
	k.space.releaseAll(th.Clk, src) // only the root page remains
	k.coffers.Delete(src)
	delete(k.violations, src)
	return nil
}

// ---- coffer_recover ----------------------------------------------------------

// BeginRecover marks a coffer in-recovery with a lease and unmaps it from
// every process except the initiator (Table 5: coffer_recover; §3.5).
// Returns the coffer's extents for the initiator's scan.
func (k *KernFS) BeginRecover(th *proc.Thread, id coffer.ID, leaseNS uint64) ([]coffer.Extent, error) {
	defer kcall(th, "begin_recover")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernRecoveries)
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return nil, ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if !coffer.Access(ci.rp.Mode, ci.rp.UID, ci.rp.GID, th.Proc.UID(), th.Proc.GID(), true) {
		return nil, ErrPerm
	}
	ci.rp.Flags |= coffer.FlagInRecovery
	ci.rp.Lease = uint64(th.Clk.Now()) + leaseNS
	ci.publishRP()
	k.writeRootPage(th.Clk, int64(id), &ci.rp)
	for pid, ps := range ci.mappers {
		if pid != th.Proc.PID {
			k.revokeLocked(ci, ps)
		}
	}
	return k.space.extentsOf(id), nil
}

// EndRecover completes recovery: pages owned by the coffer but absent from
// inUse are reclaimed, and the in-recovery flag cleared (§3.5: "sends the
// addresses of in-use pages to KernFS, who will compare them to pages
// allocated to the coffer and reclaim pages that are not used").
func (k *KernFS) EndRecover(th *proc.Thread, id coffer.ID, inUse []int64) error {
	defer kcall(th, "end_recover")()
	th.Syscall()
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if ci.rp.Flags&coffer.FlagInRecovery == 0 {
		return fmt.Errorf("%w: coffer not in recovery", ErrInvalid)
	}
	used := make(map[int64]bool, len(inUse)+1)
	used[int64(id)] = true // root page always lives
	for _, pg := range inUse {
		used[pg] = true
	}
	// "compare them to pages allocated to the coffer and reclaim pages that
	// are not used" (§3.5): the kernel walks every owned page — the bulk of
	// the paper's kernel-side recovery time.
	var reclaim []int64
	for _, e := range k.space.extentsOf(id) {
		for pg := e.Start; pg < e.End(); pg++ {
			th.CPU(perfmodel.CPUSmallOp)
			if !used[pg] {
				reclaim = append(reclaim, pg)
			}
		}
	}
	for _, pg := range reclaim {
		if err := k.space.release(th.Clk, id, pg, 1); err != nil {
			return err
		}
		for _, m := range ci.mappers {
			m.p.Mem.Unmap(pg, 1)
		}
		th.CPU(perfmodel.CPUSmallOp)
	}
	ci.rp.Flags &^= coffer.FlagInRecovery
	ci.rp.Lease = 0
	ci.publishRP()
	k.writeRootPage(th.Clk, int64(id), &ci.rp)
	return nil
}

// ---- quarantine (DESIGN.md §13) ---------------------------------------------

// QuarantineCoffer fences one coffer: read-only (offline=false) keeps read
// mappings alive but downgrades every write mapping and refuses new write
// maps/enlarges/shrinks; offline (offline=true) unmaps the coffer from every
// process and refuses all maps. The flag is persisted in the root page so the
// quarantine survives reboot; every other coffer is untouched — the paper's
// fault-containment claim (§3.1) made operational. Owner or root only.
func (k *KernFS) QuarantineCoffer(th *proc.Thread, id coffer.ID, offline bool) error {
	defer kcall(th, "quarantine_coffer")()
	th.Syscall()
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if u := th.Proc.UID(); u != 0 && u != ci.rp.UID {
		return ErrPerm
	}
	k.quarantineLocked(th, ci, offline)
	return nil
}

// quarantineLocked applies the quarantine under ci.mu: flag + root page
// write, then mapper downgrade (read-only) or eviction (offline).
func (k *KernFS) quarantineLocked(th *proc.Thread, ci *cofferInfo, offline bool) {
	k.rec().Inc(telemetry.CtrKernQuarantines)
	if offline {
		ci.rp.Flags |= coffer.FlagOffline
	} else {
		ci.rp.Flags |= coffer.FlagReadOnly
	}
	ci.publishRP()
	k.writeRootPage(th.Clk, int64(ci.rp.ID), &ci.rp)
	id := ci.rp.ID
	if offline {
		for _, ps := range ci.mappers {
			k.revokeLocked(ci, ps)
		}
		return
	}
	for _, ps := range ci.mappers {
		if ps.isWritable(id) {
			ps.mu.Lock()
			ps.writable[id] = false
			ps.mu.Unlock()
			key, _ := ps.access(id)
			k.mapPagesLocked(ps, ci, key, false)
			// The mapping survives but its write grant is gone — a cache
			// flush on the µFS side turns the next write into a clean typed
			// error instead of an MPK fault.
			ps.revGen.Add(1)
		}
	}
}

// UnquarantineCoffer lifts a quarantine (operator action, or µFS recovery
// that repaired the damage). Mappings are not restored — processes re-map on
// their next access and go back through the permission check. Owner or root
// only. Takes the registry lock (violation tally) before the coffer lock.
func (k *KernFS) UnquarantineCoffer(th *proc.Thread, id coffer.ID) error {
	defer kcall(th, "unquarantine_coffer")()
	th.Syscall()
	k.regMu.Lock(th.Clk)
	defer k.regMu.Unlock(th.Clk)
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	if u := th.Proc.UID(); u != 0 && u != ci.rp.UID {
		return ErrPerm
	}
	ci.rp.Flags &^= uint32(coffer.FlagReadOnly | coffer.FlagOffline)
	ci.publishRP()
	k.writeRootPage(th.Clk, int64(id), &ci.rp)
	delete(k.violations, id)
	return nil
}

// ReportViolation records an MPK violation whose faulting address fell in
// the given coffer (fslibs' SIGSEGV-analogue handler reports these). After
// violationThreshold reports the kernel fences the coffer read-only — a
// byzantine client spraying stray writes at one coffer degrades that coffer,
// not the device. Reports on an already-quarantined coffer are counted but
// change nothing. Returns true when this report triggered the quarantine.
func (k *KernFS) ReportViolation(th *proc.Thread, id coffer.ID) (bool, error) {
	defer kcall(th, "report_violation")()
	th.Syscall()
	k.rec().Inc(telemetry.CtrKernViolationReports)
	k.regMu.Lock(th.Clk)
	defer k.regMu.Unlock(th.Clk)
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return false, ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	k.violations[id]++
	if k.violations[id] < violationThreshold ||
		ci.rp.Flags&(coffer.FlagReadOnly|coffer.FlagOffline) != 0 {
		return false, nil
	}
	k.quarantineLocked(th, ci, false)
	return true, nil
}

// Violations reports the volatile violation tally for a coffer (tooling).
func (k *KernFS) Violations(id coffer.ID) int {
	k.regMu.Lock(nil)
	defer k.regMu.Unlock(nil)
	return k.violations[id]
}

// OwnerOf resolves a device page to the coffer owning it (the kernel's
// allocation-table view) — how the violation handler attributes a stray
// write's faulting address to a victim coffer. Returns false for free or
// kernel-owned pages. Reads the persistent table slot directly: the table
// is the authority and the read takes no lock.
func (k *KernFS) OwnerOf(page int64) (coffer.ID, bool) {
	if page < 0 || page >= k.space.npages {
		return 0, false
	}
	id := k.space.slotOwner(page)
	if id == 0 || id == coffer.KernelID {
		return 0, false
	}
	return id, true
}

// ---- file_mmap / file_execve ---------------------------------------------------

// FileMmap maps file data pages into the process as ordinary application
// memory (key 0), the Table 5 file_mmap operation: the µFS supplies the
// data locations, the kernel edits the page table.
func (k *KernFS) FileMmap(th *proc.Thread, id coffer.ID, pages []int64, writable bool) error {
	defer kcall(th, "file_mmap")()
	th.Syscall()
	ci := k.lockCoffer(th.Clk, id)
	if ci == nil {
		return ErrNotFound
	}
	defer ci.mu.Unlock(th.Clk)
	ps := ci.mappers[th.Proc.PID]
	if ps == nil {
		return ErrNotMapped
	}
	if writable && !ps.isWritable(id) {
		return ErrPerm
	}
	own := k.space.peekOwner(id)
	for _, pg := range pages {
		if own == nil || !own.Contains(pg, 1) {
			return fmt.Errorf("%w: page %d not in coffer %d", ErrInvalid, pg, id)
		}
		th.Proc.Mem.Map(pg, 1, 0, writable)
		th.CPU(perfmodel.CPUSmallOp)
	}
	return nil
}

// FileExecve validates an execve target (Table 5: file_execve): the µFS
// supplies the executable's data pages; the kernel charges the exec setup.
// Actual program launch is outside the simulation's scope.
func (k *KernFS) FileExecve(th *proc.Thread, id coffer.ID, pages []int64) error {
	if err := k.FileMmap(th, id, pages, false); err != nil {
		return err
	}
	th.CPU(perfmodel.ContextSwitch)
	return nil
}
