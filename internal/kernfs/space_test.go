package kernfs

import (
	"encoding/binary"
	"fmt"
	"testing"

	"zofs/internal/coffer"
	"zofs/internal/simclock"
)

// TestVerifySpaceAfterChurn: the three-way space check (persistent table vs
// volatile trees vs census) must hold through coffer creation, enlargement
// and deletion, and across a remount (which rebuilds the trees by scanning
// the table).
func TestVerifySpaceAfterChurn(t *testing.T) {
	dev, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	var ids []coffer.ID
	for i := 0; i < 3; i++ {
		id, err := k.CofferNew(th, k.RootCoffer(), fmt.Sprintf("/c%d", i), coffer.TypeZoFS, 0o755, 0, 0, 4)
		if err != nil {
			t.Fatalf("CofferNew %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if _, err := k.CofferMap(th, ids[1], true); err != nil {
		t.Fatalf("CofferMap: %v", err)
	}
	if _, err := k.CofferEnlarge(th, ids[1], 16, true); err != nil {
		t.Fatalf("CofferEnlarge: %v", err)
	}
	if err := k.VerifySpace(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	if err := k.CofferDelete(th, ids[2]); err != nil {
		t.Fatalf("CofferDelete: %v", err)
	}
	if err := k.VerifySpace(); err != nil {
		t.Fatalf("after delete: %v", err)
	}

	k2, err := Mount(dev)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	if err := k2.VerifySpace(); err != nil {
		t.Fatalf("after remount: %v", err)
	}
}

// TestSpaceCensusBruteForce: every device page must be accounted for exactly
// once — free pool, or owned by exactly one coffer (the kernel's own
// metadata is coffer.KernelID) — and the public counters must agree with a
// page-by-page census of the extent trees.
func TestSpaceCensusBruteForce(t *testing.T) {
	_, k := newFS(t)
	th := mountedThread(t, k, 0, 0)
	if _, err := k.CofferNew(th, k.RootCoffer(), "/a", coffer.TypeZoFS, 0o755, 0, 0, 8); err != nil {
		t.Fatal(err)
	}

	owner := map[int64]coffer.ID{}
	claim := func(id coffer.ID, exts []coffer.Extent) {
		for _, e := range exts {
			for pg := e.Start; pg < e.End(); pg++ {
				if prev, dup := owner[pg]; dup {
					t.Fatalf("page %d claimed by both coffer %d and coffer %d", pg, prev, id)
				}
				owner[pg] = id
			}
		}
	}
	var free int64
	for _, e := range k.FreeExtents() {
		free += e.Count
		claim(0, []coffer.Extent{e})
	}
	if free != k.FreePages() {
		t.Fatalf("free extents sum to %d pages, FreePages says %d", free, k.FreePages())
	}
	for _, id := range k.Coffers() {
		claim(id, k.ExtentsOf(id))
	}
	claim(coffer.KernelID, k.ExtentsOf(coffer.KernelID))
	if got, want := int64(len(owner)), k.Device().Pages(); got != want {
		t.Fatalf("census covers %d pages, device has %d", got, want)
	}
}

// TestVerifySpaceDetectsTableCorruption: the persistent table is the
// authority; a slot retagged behind the volatile trees' back must fail the
// check (this is what the crash model checker's space_conserved invariant
// leans on).
func TestVerifySpaceDetectsTableCorruption(t *testing.T) {
	dev, k := newFS(t)
	exts := k.FreeExtents()
	if len(exts) == 0 {
		t.Fatal("no free pages on a fresh device")
	}
	pg := exts[0].Start
	var b [allocSlotSize]byte
	binary.LittleEndian.PutUint32(b[:], 9999) // bogus owner
	binary.LittleEndian.PutUint32(b[4:], 1)
	dev.WriteNT(simclock.NewClock(), k.space.slotOff(pg), b[:])
	if err := k.VerifySpace(); err == nil {
		t.Fatal("VerifySpace accepted a corrupted allocation-table slot")
	}
}
