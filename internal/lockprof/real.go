package lockprof

import (
	"sync"
	"sync/atomic"
	"time"
)

// RealMutex instruments a plain sync.Mutex whose waits are real nanoseconds
// (goroutine scheduling), not virtual time. The volatile directory index and
// the nvm CAS stripe locks deliberately cost no simulated time, but their
// real contention still bounds wall-clock benchmark speed — so their entries
// are recorded, flagged real, and excluded from the virtual conservation
// invariants, the wait-for graph and the spans cross-check (they never touch
// a clock). The blocked path measures with time.Now; the fast path is an
// atomic load, a counter bump and a TryLock.
type RealMutex struct {
	class, label string
	mu           sync.Mutex
	ent          atomic.Pointer[entry]
}

// NewRealMutex returns a named real-time mutex.
func NewRealMutex(class, label string) *RealMutex {
	m := &RealMutex{}
	m.Init(class, label)
	return m
}

// Init names a zero-value RealMutex in place. Call before first use.
func (m *RealMutex) Init(class, label string) { m.class, m.label = class, label }

func (m *RealMutex) resolve(reg *Registry) *entry {
	rs := reg.state.Load()
	if e := m.ent.Load(); e != nil && e.rs == rs {
		return e
	}
	if m.class == "" {
		return nil
	}
	e := rs.entryFor(m.class, m.label, true)
	m.ent.Store(e)
	return e
}

// Lock acquires the mutex; when profiling is active the acquisition is
// counted and, if it blocked, the real wait is recorded.
func (m *RealMutex) Lock() {
	reg := active.Load()
	if reg == nil {
		m.mu.Lock()
		return
	}
	e := m.resolve(reg)
	if e == nil {
		m.mu.Lock()
		return
	}
	e.acquires.Add(1)
	e.rs.acquires.Add(1)
	if m.mu.TryLock() {
		return
	}
	t0 := time.Now()
	m.mu.Lock()
	w := time.Since(t0).Nanoseconds()
	e.contended.Add(1)
	e.rs.contended.Add(1)
	if w > 0 {
		e.waitNS.Add(w)
		atomicMax(&e.maxWaitNS, w)
		e.waitH.Observe(w)
		e.rs.realWaitNS.Add(w)
	}
}

// Unlock releases the mutex.
func (m *RealMutex) Unlock() { m.mu.Unlock() }
