package lockprof

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// Publishing mirrors the spans layer: zofs-bench -lockprof writes into a
// directory, zofs-locks polls it. Atomic rename so readers never see a
// half-written file.

// Publish writes the registry's current report into dir as locks.json, its
// OpenMetrics rendering as locks.prom, and the blocked-interval ring as
// waits.jsonl (one interval per line, Chrome-lane input for zofs-trace).
func Publish(r *Registry, dir string) error {
	rep := r.Snapshot()
	raw, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "locks.json"), append(raw, '\n')); err != nil {
		return err
	}
	var om bytes.Buffer
	if err := WriteOpenMetrics(&om, rep); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "locks.prom"), om.Bytes()); err != nil {
		return err
	}
	var wl bytes.Buffer
	enc := json.NewEncoder(&wl)
	for _, b := range r.Blocked() {
		if err := enc.Encode(b); err != nil {
			return err
		}
	}
	return writeAtomic(filepath.Join(dir, "waits.jsonl"), wl.Bytes())
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PublishEvery republishes on an interval until the returned stop function
// is called; callers do a final Publish themselves once collection stops.
// Mid-run publish errors are dropped — a missed refresh must not kill the
// benchmark.
func PublishEvery(r *Registry, dir string, every time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = Publish(r, dir)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
