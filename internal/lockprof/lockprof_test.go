package lockprof_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"zofs/internal/lockprof"
	"zofs/internal/simclock"
	"zofs/internal/sysfactory"
	"zofs/internal/zofs"
)

// thread builds a clock with an attached profiler state.
func thread(reg *lockprof.Registry, tid int) *simclock.Clock {
	c := simclock.NewClock()
	c.SetLockState(reg.NewThreadState(tid))
	return c
}

func TestWaitAndHoldRecorded(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	m := lockprof.NewMutex("test.lock", "a")
	c1, c2 := thread(reg, 1), thread(reg, 2)

	m.Lock(c1)
	c1.Advance(100)
	m.Unlock(c1)

	m.Lock(c2) // c2 at t=0 drains behind c1's release at 100
	if c2.Now() != 100 {
		t.Fatalf("waiter clock = %d, want 100", c2.Now())
	}
	c2.Advance(50)
	m.Unlock(c2)

	rep := reg.Snapshot()
	if rep.Acquires != 2 || rep.Contended != 1 {
		t.Fatalf("acquires/contended = %d/%d, want 2/1", rep.Acquires, rep.Contended)
	}
	if rep.WaitNS != 100 {
		t.Fatalf("wait = %d, want 100", rep.WaitNS)
	}
	if rep.HoldNS != 150 {
		t.Fatalf("hold = %d, want 150 (100 + 50)", rep.HoldNS)
	}
	if len(rep.Locks) != 1 || rep.Locks[0].Lock != "test.lock/a" {
		t.Fatalf("lock rows = %+v", rep.Locks)
	}
	if rep.Locks[0].LastTID != 2 {
		t.Fatalf("last holder tid = %d, want 2", rep.Locks[0].LastTID)
	}
	if reg.HeldNow() != 0 {
		t.Fatalf("held now = %d, want 0", reg.HeldNow())
	}
	// One blocked interval, blaming the first holder.
	bl := reg.Blocked()
	if len(bl) != 1 || bl[0].TID != 2 || bl[0].HolderTID != 1 || bl[0].DurNS != 100 {
		t.Fatalf("blocked intervals = %+v", bl)
	}
}

// TestOrderInversionDetection constructs an A→B / B→A history and asserts
// the inversion is reported with both stacks' lock names.
func TestOrderInversionDetection(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	a := lockprof.NewMutex("lockA", "x")
	b := lockprof.NewMutex("lockB", "y")
	c1, c2 := thread(reg, 1), thread(reg, 2)

	a.Lock(c1)
	b.Lock(c1)
	b.Unlock(c1)
	a.Unlock(c1)

	b.Lock(c2)
	a.Lock(c2)
	a.Unlock(c2)
	b.Unlock(c2)

	rep := reg.Snapshot()
	if len(rep.Inversions) != 1 {
		t.Fatalf("inversions = %+v, want exactly 1", rep.Inversions)
	}
	inv := rep.Inversions[0]
	classes := inv.A + "/" + inv.B
	if !(strings.Contains(classes, "lockA") && strings.Contains(classes, "lockB")) {
		t.Fatalf("inversion classes = %q/%q", inv.A, inv.B)
	}
	// Forward evidence: lockA/x held when lockB/y acquired (tid 1).
	if inv.Forward.TID != 1 || len(inv.Forward.Held) != 1 || inv.Forward.Held[0] != "lockA/x" || inv.Forward.Acquired != "lockB/y" {
		t.Fatalf("forward evidence = %+v", inv.Forward)
	}
	if inv.Backward.TID != 2 || len(inv.Backward.Held) != 1 || inv.Backward.Held[0] != "lockB/y" || inv.Backward.Acquired != "lockA/x" {
		t.Fatalf("backward evidence = %+v", inv.Backward)
	}
	// A consistent-order second thread must not add inversions.
	c3 := thread(reg, 3)
	a.Lock(c3)
	b.Lock(c3)
	b.Unlock(c3)
	a.Unlock(c3)
	if got := len(reg.Snapshot().Inversions); got != 1 {
		t.Fatalf("inversions after consistent order = %d, want 1", got)
	}
}

// TestHistogramSaturation512 hammers one lock from 512 concurrent threads
// and asserts the counters stay exactly consistent (histogram counts equal
// acquires, conservation holds, nothing leaks) under the race detector.
func TestHistogramSaturation512(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	const threads, rounds = 512, 4
	m := lockprof.NewMutex("test.hot", "")
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := thread(reg, tid)
			for r := 0; r < rounds; r++ {
				m.Lock(c)
				c.Advance(10)
				m.Unlock(c)
			}
		}(i + 1)
	}
	wg.Wait()

	rep := reg.Snapshot()
	if rep.Acquires != threads*rounds {
		t.Fatalf("acquires = %d, want %d", rep.Acquires, threads*rounds)
	}
	if rep.Contended == 0 || rep.WaitNS == 0 {
		t.Fatalf("expected contention under 512 threads, got contended=%d wait=%d", rep.Contended, rep.WaitNS)
	}
	if reg.HeldNow() != 0 {
		t.Fatalf("held now = %d, want 0", reg.HeldNow())
	}
	var lockSum int64
	for _, l := range rep.Locks {
		lockSum += l.WaitNS
	}
	if lockSum != rep.WaitNS {
		t.Fatalf("per-lock waits sum to %d, total %d", lockSum, rep.WaitNS)
	}
	var thSum int64
	for _, th := range rep.Threads {
		thSum += th.WaitNS
	}
	if thSum != rep.WaitNS {
		t.Fatalf("per-thread waits sum to %d, total %d", thSum, rep.WaitNS)
	}
	// The OpenMetrics rendering of a saturated report must validate.
	var om strings.Builder
	if err := lockprof.WriteOpenMetrics(&om, rep); err != nil {
		t.Fatal(err)
	}
	if err := lockprof.ValidateOpenMetrics(strings.NewReader(om.String())); err != nil {
		t.Fatalf("OpenMetrics validation: %v", err)
	}
}

// TestOverflowFolding checks the bounded registry folds instances past the
// cap into per-class ~other rows instead of growing without bound.
func TestOverflowFolding(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	c := thread(reg, 1)
	for i := 0; i < 1200; i++ {
		m := lockprof.NewMutex("test.many", strconv.Itoa(i))
		m.Lock(c)
		m.Unlock(c)
	}
	rep := reg.Snapshot()
	if rep.LocksDropped == 0 {
		t.Fatalf("expected folded instances past the cap, dropped = 0")
	}
	var other bool
	var acq int64
	for _, l := range rep.Locks {
		acq += l.Acquires
		if l.Overflow && l.Class == "test.many" {
			other = true
		}
	}
	if !other {
		t.Fatalf("no test.many/~other overflow row in %d rows", len(rep.Locks))
	}
	if acq != 1200 {
		t.Fatalf("acquires across rows = %d, want 1200 (folding must not lose counts)", acq)
	}
}

func TestRealMutexCountsContention(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	m := lockprof.NewRealMutex("test.real", "r")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.Lock()
				m.Unlock() //nolint:staticcheck // deliberate tiny critical section
			}
		}()
	}
	wg.Wait()
	rep := reg.Snapshot()
	if len(rep.Locks) != 1 || !rep.Locks[0].Real {
		t.Fatalf("lock rows = %+v, want one real row", rep.Locks)
	}
	if rep.Locks[0].Acquires != 1600 {
		t.Fatalf("acquires = %d, want 1600", rep.Locks[0].Acquires)
	}
	if rep.WaitNS != 0 {
		t.Fatalf("real lock leaked %d ns into the virtual wait total", rep.WaitNS)
	}
}

// TestResetAcrossRemount is the crashmc-style assertion: after a ZoFS
// workload, ResetShared plus Registry.Reset must leave no trace of the old
// instance's locks, and a fresh mount repopulates cleanly.
func TestResetAcrossRemount(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	run := func() {
		in, err := sysfactory.ZoFS.New(64 << 20)
		if err != nil {
			t.Fatal(err)
		}
		th := in.Proc.NewThread()
		if err := in.FS.Mkdir(th, "/d", 0o755); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			h, err := in.FS.Create(th, "/d/f"+strconv.Itoa(i), 0o644)
			if err != nil {
				t.Fatal(err)
			}
			h.Close(th)
		}
		// Simulate the crash edge crash tests use: all volatile shared
		// state (including the shared lock table) dies with the processes.
		zofs.ResetShared(in.Dev)
	}

	run()
	rep := reg.Snapshot()
	if rep.Acquires == 0 {
		t.Fatalf("workload recorded no acquisitions")
	}
	sawZofs := false
	for _, l := range rep.Locks {
		if strings.HasPrefix(l.Lock, "zofs.") || strings.HasPrefix(l.Lock, "kernfs.") {
			sawZofs = true
		}
	}
	if !sawZofs {
		t.Fatalf("no zofs/kernfs locks in report: %+v", rep.Locks)
	}
	if reg.HeldNow() != 0 {
		t.Fatalf("held now = %d after workload, want 0", reg.HeldNow())
	}

	reg.Reset()
	rep = reg.Snapshot()
	if rep.Acquires != 0 || rep.WaitNS != 0 || len(rep.Locks) != 0 || len(rep.Edges) != 0 || len(rep.Threads) != 0 {
		t.Fatalf("state survived Reset: %+v", rep)
	}
	if reg.HeldNow() != 0 {
		t.Fatalf("held now = %d after Reset, want 0", reg.HeldNow())
	}

	// Remount: stale wrapper caches must re-register, not resurrect.
	run()
	rep = reg.Snapshot()
	if rep.Acquires == 0 {
		t.Fatalf("post-remount workload recorded no acquisitions")
	}
	if reg.HeldNow() != 0 {
		t.Fatalf("held now = %d after remount workload, want 0", reg.HeldNow())
	}
}

// TestDisabledIsTransparent checks the disabled path records nothing and a
// registry that is no longer active stops receiving data.
func TestDisabledIsTransparent(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	c := thread(reg, 1)
	m := lockprof.NewMutex("test.gate", "")
	m.Lock(c)
	m.Unlock(c)
	lockprof.Disable()
	m.Lock(c)
	m.Unlock(c)
	if got := reg.Snapshot().Acquires; got != 1 {
		t.Fatalf("acquires = %d, want 1 (post-Disable acquisition recorded)", got)
	}
}

// TestWriteDOTFoldsAllocatorShards drives contention through three allocator
// shard locks (plus the registry lock held across each wait) and checks the
// DOT rendering collapses the per-shard nodes into one kernfs.freeshard/*
// node annotated with the shard count, with the shard-bound edges and waits
// aggregated onto it.
func TestWriteDOTFoldsAllocatorShards(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	registry := lockprof.NewMutex("kernfs.registry", "")
	var shards []*lockprof.Mutex
	for i := 0; i < 3; i++ {
		shards = append(shards, lockprof.NewMutex("kernfs.freeshard", strconv.Itoa(i)))
	}

	// c1 stamps each shard's release at 100, 200, 300 virtual ns; c2 then
	// contends on each while holding the registry lock, producing one
	// registry -> shard edge per shard.
	c1 := thread(reg, 1)
	for _, sh := range shards {
		sh.Lock(c1)
		c1.Advance(100)
		sh.Unlock(c1)
	}
	c2 := thread(reg, 2)
	for _, sh := range shards {
		registry.Lock(c2)
		sh.Lock(c2)
		sh.Unlock(c2)
		registry.Unlock(c2)
	}

	rep := reg.Snapshot()
	if len(rep.Edges) != 3 {
		t.Fatalf("edges = %+v, want 3 registry->shard edges", rep.Edges)
	}
	var dot strings.Builder
	if err := rep.WriteDOT(&dot); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := dot.String()
	if !strings.Contains(out, `kernfs.freeshard/* (3 shards)`) {
		t.Fatalf("no folded shard node with count:\n%s", out)
	}
	for i := 0; i < 3; i++ {
		if strings.Contains(out, `"kernfs.freeshard/`+strconv.Itoa(i)+`"`) {
			t.Fatalf("per-shard node %d leaked into DOT:\n%s", i, out)
		}
	}
	if !strings.Contains(out, `"kernfs.registry" -> "kernfs.freeshard/*" [label="3 waits`) {
		t.Fatalf("shard edges were not aggregated:\n%s", out)
	}
	// The folded node carries the summed per-shard wait (3 x 100ns).
	if !strings.Contains(out, "kernfs.freeshard/* (3 shards)\\nwait 0.000 ms") {
		t.Fatalf("folded node label missing aggregated wait:\n%s", out)
	}
}

// TestBlockedIn: the exemplar helper filters the blocked ring by thread and
// interval overlap (inclusive at both ends).
func TestBlockedIn(t *testing.T) {
	reg := lockprof.Enable(lockprof.Config{})
	defer lockprof.Disable()

	m := lockprof.NewMutex("test.lock", "a")
	c1, c2 := thread(reg, 1), thread(reg, 2)
	m.Lock(c1)
	c1.Advance(100)
	m.Unlock(c1)
	m.Lock(c2) // blocked on [0, 100] behind c1
	m.Unlock(c2)

	bl := reg.BlockedIn(2, 50, 150)
	if len(bl) != 1 || bl[0].HolderTID != 1 || bl[0].DurNS != 100 {
		t.Fatalf("overlapping query = %+v, want the one 100ns interval", bl)
	}
	if bl = reg.BlockedIn(2, 100, 200); len(bl) != 1 {
		t.Fatalf("boundary-touching query = %+v, want inclusive overlap", bl)
	}
	if bl = reg.BlockedIn(2, 101, 200); len(bl) != 0 {
		t.Fatalf("disjoint query = %+v, want none", bl)
	}
	if bl = reg.BlockedIn(1, 0, 200); len(bl) != 0 {
		t.Fatalf("wrong-thread query = %+v, want none", bl)
	}
}
