package lockprof

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"zofs/internal/openmetrics"
)

// OpenMetrics rendering of a Report. All families carry the zofs_lockprof_
// prefix so the series namespace cannot collide with the span layer's
// zofs_lock_wait_ns_total (which aggregates by contention key, not by named
// lock). The validator re-parses the text and enforces the conservation
// invariants, so a drifting writer fails CI rather than shipping bad data.

// WriteOpenMetrics renders rep in OpenMetrics text format.
func WriteOpenMetrics(w io.Writer, rep Report) error {
	bw := bufio.NewWriter(w)
	scalar := func(name, typ, help string, v int64) {
		fmt.Fprintf(bw, "# TYPE %s %s\n# HELP %s %s\n%s", name, typ, name, help, name)
		if typ == "counter" {
			fmt.Fprint(bw, "_total")
		}
		fmt.Fprintf(bw, " %d\n", v)
	}
	scalar("zofs_lockprof_acquires", "counter", "Instrumented lock acquisitions.", rep.Acquires)
	scalar("zofs_lockprof_contended", "counter", "Acquisitions that waited.", rep.Contended)
	scalar("zofs_lockprof_wait_ns", "counter", "Total virtual lock-wait nanoseconds.", rep.WaitNS)
	scalar("zofs_lockprof_hold_ns", "counter", "Total virtual lock-hold nanoseconds.", rep.HoldNS)
	scalar("zofs_lockprof_real_wait_ns", "counter", "Total real-time wait nanoseconds on real-only locks.", rep.RealWaitNS)
	scalar("zofs_lockprof_held", "gauge", "Instrumented locks currently held.", rep.HeldNow)
	scalar("zofs_lockprof_inversions", "gauge", "Distinct lock-order inversions observed.", int64(len(rep.Inversions)))

	fmt.Fprintf(bw, "# TYPE zofs_lockprof_lock_acquires counter\n# HELP zofs_lockprof_lock_acquires Acquisitions per named lock.\n")
	for _, l := range rep.Locks {
		fmt.Fprintf(bw, "zofs_lockprof_lock_acquires_total{lock=%q,class=%q,real=%q} %d\n",
			l.Lock, l.Class, strconv.FormatBool(l.Real), l.Acquires)
	}
	fmt.Fprintf(bw, "# TYPE zofs_lockprof_lock_contended counter\n# HELP zofs_lockprof_lock_contended Contended acquisitions per named lock.\n")
	for _, l := range rep.Locks {
		fmt.Fprintf(bw, "zofs_lockprof_lock_contended_total{lock=%q} %d\n", l.Lock, l.Contended)
	}
	fmt.Fprintf(bw, "# TYPE zofs_lockprof_lock_wait_ns counter\n# HELP zofs_lockprof_lock_wait_ns Virtual wait nanoseconds per named lock.\n")
	for _, l := range rep.Locks {
		if !l.Real {
			fmt.Fprintf(bw, "zofs_lockprof_lock_wait_ns_total{lock=%q} %d\n", l.Lock, l.WaitNS)
		}
	}
	fmt.Fprintf(bw, "# TYPE zofs_lockprof_lock_hold_ns counter\n# HELP zofs_lockprof_lock_hold_ns Virtual hold nanoseconds per named lock.\n")
	for _, l := range rep.Locks {
		if !l.Real {
			fmt.Fprintf(bw, "zofs_lockprof_lock_hold_ns_total{lock=%q} %d\n", l.Lock, l.HoldNS)
		}
	}
	fmt.Fprintf(bw, "# TYPE zofs_lockprof_lock_real_wait_ns counter\n# HELP zofs_lockprof_lock_real_wait_ns Real wait nanoseconds per real-only lock.\n")
	for _, l := range rep.Locks {
		if l.Real {
			fmt.Fprintf(bw, "zofs_lockprof_lock_real_wait_ns_total{lock=%q} %d\n", l.Lock, l.WaitNS)
		}
	}
	fmt.Fprintf(bw, "# TYPE zofs_lockprof_lock_wait_p99_ns gauge\n# HELP zofs_lockprof_lock_wait_p99_ns p99 wait nanoseconds per named lock.\n")
	for _, l := range rep.Locks {
		fmt.Fprintf(bw, "zofs_lockprof_lock_wait_p99_ns{lock=%q} %d\n", l.Lock, l.WaitP99NS)
	}
	fmt.Fprintf(bw, "# TYPE zofs_lockprof_edge_wait_ns counter\n# HELP zofs_lockprof_edge_wait_ns Wait nanoseconds on wanted lock while holding another.\n")
	for _, e := range rep.Edges {
		fmt.Fprintf(bw, "zofs_lockprof_edge_wait_ns_total{held=%q,wanted=%q} %d\n", e.From, e.To, e.WaitNS)
	}
	fmt.Fprintf(bw, "# TYPE zofs_lockprof_edge_waits counter\n# HELP zofs_lockprof_edge_waits Contended acquisitions per wait-for edge.\n")
	for _, e := range rep.Edges {
		fmt.Fprintf(bw, "zofs_lockprof_edge_waits_total{held=%q,wanted=%q} %d\n", e.From, e.To, e.Count)
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// ValidateOpenMetrics parses a lockprof OpenMetrics document (via the shared
// internal/openmetrics parser) and enforces its invariants:
//
//   - syntax: every non-comment line is a valid sample, "# EOF" terminates;
//   - conservation: per-lock virtual waits sum exactly to
//     zofs_lockprof_wait_ns_total, holds to hold_ns_total, and real waits to
//     real_wait_ns_total;
//   - sanity: contended <= acquires per lock;
//   - edge soundness: each contended wait bills at most one outgoing edge,
//     so edge waits grouped by wanted lock cannot exceed that lock's total
//     wait. (The naive "edge wait <= holder hold sum" is NOT an invariant:
//     n queued waiters each wait behind the same hold, multiplying it.)
func ValidateOpenMetrics(r io.Reader) error {
	doc, err := openmetrics.Parse(r)
	if err != nil {
		return err
	}
	lockWait := doc.GroupSumInt("zofs_lockprof_lock_wait_ns_total", "lock")
	if err := openmetrics.Conserved("per-lock virtual waits",
		doc.SumInt("zofs_lockprof_lock_wait_ns_total"), doc.Int("zofs_lockprof_wait_ns_total")); err != nil {
		return err
	}
	if err := openmetrics.Conserved("per-lock holds",
		doc.SumInt("zofs_lockprof_lock_hold_ns_total"), doc.Int("zofs_lockprof_hold_ns_total")); err != nil {
		return err
	}
	if err := openmetrics.Conserved("per-lock real waits",
		doc.SumInt("zofs_lockprof_lock_real_wait_ns_total"), doc.Int("zofs_lockprof_real_wait_ns_total")); err != nil {
		return err
	}
	acquires := doc.GroupSumInt("zofs_lockprof_lock_acquires_total", "lock")
	for lock, c := range doc.GroupSumInt("zofs_lockprof_lock_contended_total", "lock") {
		if a, ok := acquires[lock]; ok && c > a {
			return fmt.Errorf("lock %s: contended %d > acquires %d", lock, c, a)
		}
	}
	for dest, w := range doc.GroupSumInt("zofs_lockprof_edge_wait_ns_total", "wanted") {
		if lw, ok := lockWait[dest]; ok && w > lw {
			return fmt.Errorf("edges into %s sum to %d ns > lock's total wait %d ns", dest, w, lw)
		}
	}
	return nil
}
