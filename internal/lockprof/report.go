package lockprof

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"zofs/internal/telemetry"
)

// LockRow is one named lock's statistics in a Report.
type LockRow struct {
	Lock      string `json:"lock"`
	Class     string `json:"class"`
	Real      bool   `json:"real,omitempty"`
	Overflow  bool   `json:"overflow,omitempty"`
	Acquires  int64  `json:"acquires"`
	Reads     int64  `json:"reads,omitempty"`
	Contended int64  `json:"contended"`
	WaitNS    int64  `json:"wait_ns"`
	MaxWaitNS int64  `json:"max_wait_ns"`
	WaitP50NS int64  `json:"wait_p50_ns"`
	WaitP99NS int64  `json:"wait_p99_ns"`
	HoldNS    int64  `json:"hold_ns"`
	MaxHoldNS int64  `json:"max_hold_ns"`
	HoldP50NS int64  `json:"hold_p50_ns"`
	HoldP99NS int64  `json:"hold_p99_ns"`
	LastTID   int64  `json:"last_holder_tid,omitempty"`
}

// EdgeRow is one wait-for edge: a thread holding From waited on To for
// WaitNS total across Count contended acquisitions.
type EdgeRow struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Count  int64  `json:"count"`
	WaitNS int64  `json:"wait_ns"`
}

// ThreadRow is one thread's blocked totals.
type ThreadRow struct {
	TID    int   `json:"tid"`
	Blocks int64 `json:"blocks"`
	WaitNS int64 `json:"wait_ns"`
}

// BlockedInterval is one blocked-on interval from the ring, in virtual time
// — the raw material for the Chrome trace's lock-wait lanes.
type BlockedInterval struct {
	TID       int    `json:"tid"`
	HolderTID int    `json:"holder_tid"`
	Lock      string `json:"lock"`
	StartNS   int64  `json:"start_ns"`
	DurNS     int64  `json:"dur_ns"`
}

// Report is a point-in-time rendering of a registry generation. The virtual
// conservation invariants (non-real lock waits sum exactly to WaitNS, holds
// to HoldNS, real waits to RealWaitNS) hold by construction and are enforced
// again by the OpenMetrics validator.
type Report struct {
	Acquires     int64       `json:"acquires"`
	Contended    int64       `json:"contended"`
	WaitNS       int64       `json:"wait_ns"`
	HoldNS       int64       `json:"hold_ns"`
	RealWaitNS   int64       `json:"real_wait_ns"`
	HeldNow      int64       `json:"held_now"`
	LocksDropped int64       `json:"locks_dropped,omitempty"`
	EdgesDropped int64       `json:"edges_dropped,omitempty"`
	Locks        []LockRow   `json:"locks"`
	Edges        []EdgeRow   `json:"edges,omitempty"`
	Inversions   []Inversion `json:"inversions,omitempty"`
	Threads      []ThreadRow `json:"threads,omitempty"`
}

// Snapshot renders the current generation. Safe to call concurrently with
// collection; counters are read atomically but not as one transaction, so
// exact conservation is guaranteed only at quiescence (which is when the
// gates read it).
func (r *Registry) Snapshot() Report {
	rs := r.state.Load()
	rep := Report{
		Acquires:     rs.acquires.Load(),
		Contended:    rs.contended.Load(),
		WaitNS:       rs.waitNS.Load(),
		HoldNS:       rs.holdNS.Load(),
		RealWaitNS:   rs.realWaitNS.Load(),
		HeldNow:      r.heldNow.Load(),
		LocksDropped: rs.dropped.Load(),
		EdgesDropped: rs.edgesDropped.Load(),
	}
	names := map[*entry]string{}
	rs.entries.Range(func(_, v any) bool {
		e := v.(*entry)
		names[e] = e.name()
		row := LockRow{
			Lock:      e.name(),
			Class:     e.class,
			Real:      e.real,
			Overflow:  e.other,
			Acquires:  e.acquires.Load(),
			Reads:     e.reads.Load(),
			Contended: e.contended.Load(),
			WaitNS:    e.waitNS.Load(),
			MaxWaitNS: e.maxWaitNS.Load(),
			HoldNS:    e.holdNS.Load(),
			MaxHoldNS: e.maxHoldNS.Load(),
			LastTID:   e.lastHolder.Load(),
		}
		if wc, _, wb := e.waitH.Snapshot(); wc > 0 {
			row.WaitP50NS = telemetry.Quantile(wb, wc, 0.50)
			row.WaitP99NS = telemetry.Quantile(wb, wc, 0.99)
		}
		if hc, _, hb := e.holdH.Snapshot(); hc > 0 {
			row.HoldP50NS = telemetry.Quantile(hb, hc, 0.50)
			row.HoldP99NS = telemetry.Quantile(hb, hc, 0.99)
		}
		rep.Locks = append(rep.Locks, row)
		return true
	})
	sort.Slice(rep.Locks, func(i, j int) bool {
		if rep.Locks[i].WaitNS != rep.Locks[j].WaitNS {
			return rep.Locks[i].WaitNS > rep.Locks[j].WaitNS
		}
		// Uncontended ties: busiest first, so the top of an idle report is
		// still the interesting part of it.
		if rep.Locks[i].Acquires != rep.Locks[j].Acquires {
			return rep.Locks[i].Acquires > rep.Locks[j].Acquires
		}
		return rep.Locks[i].Lock < rep.Locks[j].Lock
	})
	rs.edges.Range(func(k, v any) bool {
		ek, ed := k.(edgeKey), v.(*edge)
		rep.Edges = append(rep.Edges, EdgeRow{
			From:   names[ek.from],
			To:     names[ek.to],
			Count:  ed.count.Load(),
			WaitNS: ed.waitNS.Load(),
		})
		return true
	})
	sort.Slice(rep.Edges, func(i, j int) bool {
		if rep.Edges[i].WaitNS != rep.Edges[j].WaitNS {
			return rep.Edges[i].WaitNS > rep.Edges[j].WaitNS
		}
		return rep.Edges[i].From+"\x00"+rep.Edges[i].To < rep.Edges[j].From+"\x00"+rep.Edges[j].To
	})
	rs.invMu.Lock()
	rep.Inversions = append(rep.Inversions, rs.invs...)
	rs.invMu.Unlock()
	rs.thMu.Lock()
	for _, tr := range rs.threads {
		rep.Threads = append(rep.Threads, ThreadRow{TID: tr.tid, Blocks: tr.blocks.Load(), WaitNS: tr.waitNS.Load()})
	}
	rs.thMu.Unlock()
	sort.Slice(rep.Threads, func(i, j int) bool {
		if rep.Threads[i].WaitNS != rep.Threads[j].WaitNS {
			return rep.Threads[i].WaitNS > rep.Threads[j].WaitNS
		}
		return rep.Threads[i].TID < rep.Threads[j].TID
	})
	return rep
}

// Blocked drains a copy of the blocked-interval ring, oldest first.
func (r *Registry) Blocked() []BlockedInterval {
	rs := r.state.Load()
	rs.ringMu.Lock()
	out := make([]BlockedInterval, 0, rs.ringLen)
	start := 0
	if rs.ringLen == len(rs.ring) {
		start = rs.ringPos
	}
	for i := 0; i < rs.ringLen; i++ {
		b := rs.ring[(start+i)%len(rs.ring)]
		out = append(out, BlockedInterval{
			TID: b.tid, HolderTID: b.holder, Lock: b.e.name(),
			StartNS: b.start, DurNS: b.dur,
		})
	}
	rs.ringMu.Unlock()
	return out
}

// BlockedIn returns tid's blocked intervals overlapping [t0, t1], oldest
// first — the spans layer pulls these when capturing a worst-op exemplar to
// blame the contended locks (and their holders) behind a tail latency.
func (r *Registry) BlockedIn(tid int, t0, t1 int64) []BlockedInterval {
	if r == nil {
		return nil
	}
	rs := r.state.Load()
	rs.ringMu.Lock()
	var out []BlockedInterval
	start := 0
	if rs.ringLen == len(rs.ring) {
		start = rs.ringPos
	}
	for i := 0; i < rs.ringLen; i++ {
		b := rs.ring[(start+i)%len(rs.ring)]
		if b.tid != tid || b.start > t1 || b.start+b.dur < t0 {
			continue
		}
		out = append(out, BlockedInterval{
			TID: b.tid, HolderTID: b.holder, Lock: b.e.name(),
			StartNS: b.start, DurNS: b.dur,
		})
	}
	rs.ringMu.Unlock()
	return out
}

// TopLocks returns the n most-contended virtual locks by total wait.
func (rep Report) TopLocks(n int) []LockRow {
	var out []LockRow
	for _, l := range rep.Locks {
		if l.Real || l.WaitNS == 0 {
			continue
		}
		out = append(out, l)
		if len(out) == n {
			break
		}
	}
	return out
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// WriteText renders the human-readable contention report: per-lock table,
// wait-for edges, inversions and the most-blocked threads.
func (rep Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "locks: %d acquires, %d contended, wait %.3f ms virtual (+%.3f ms real), hold %.3f ms, held now %d\n",
		rep.Acquires, rep.Contended, ms(rep.WaitNS), ms(rep.RealWaitNS), ms(rep.HoldNS), rep.HeldNow)
	if rep.LocksDropped > 0 || rep.EdgesDropped > 0 {
		fmt.Fprintf(w, "  (bounded: %d acquisitions folded into ~other rows, %d edges dropped)\n",
			rep.LocksDropped, rep.EdgesDropped)
	}
	t := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(t, "lock\tacq\tcont\twait ms\tp50 µs\tp99 µs\tmax µs\thold ms\tlast tid")
	shown := 0
	for _, l := range rep.Locks {
		if l.Acquires == 0 {
			continue
		}
		name := l.Lock
		if l.Real {
			name += " (real)"
		}
		fmt.Fprintf(t, "%s\t%d\t%d\t%.3f\t%.1f\t%.1f\t%.1f\t%.3f\t%d\n",
			name, l.Acquires, l.Contended, ms(l.WaitNS),
			float64(l.WaitP50NS)/1e3, float64(l.WaitP99NS)/1e3, float64(l.MaxWaitNS)/1e3,
			ms(l.HoldNS), l.LastTID)
		if shown++; shown == 20 {
			break
		}
	}
	if err := t.Flush(); err != nil {
		return err
	}
	if len(rep.Edges) > 0 {
		fmt.Fprintln(w, "\nwait-for edges (held -> wanted, by total wait):")
		t = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(t, "held\twanted\twaits\twait ms")
		for i, e := range rep.Edges {
			fmt.Fprintf(t, "%s\t%s\t%d\t%.3f\n", e.From, e.To, e.Count, ms(e.WaitNS))
			if i == 14 {
				break
			}
		}
		if err := t.Flush(); err != nil {
			return err
		}
	}
	for _, inv := range rep.Inversions {
		fmt.Fprintf(w, "\nLOCK-ORDER INVERSION: %s <-> %s\n", inv.A, inv.B)
		fmt.Fprintf(w, "  tid %d held %v then acquired %s\n", inv.Forward.TID, inv.Forward.Held, inv.Forward.Acquired)
		fmt.Fprintf(w, "  tid %d held %v then acquired %s\n", inv.Backward.TID, inv.Backward.Held, inv.Backward.Acquired)
	}
	if len(rep.Threads) > 0 {
		fmt.Fprintln(w, "\nmost-blocked threads:")
		t = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(t, "tid\tblocks\twait ms")
		for i, th := range rep.Threads {
			if th.Blocks == 0 {
				break
			}
			fmt.Fprintf(t, "%d\t%d\t%.3f\n", th.TID, th.Blocks, ms(th.WaitNS))
			if i == 9 {
				break
			}
		}
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// shardPrefix names the per-shard allocator locks. There is one instance per
// allocator shard and they are interchangeable transient leaves, so the DOT
// rendering folds them into a single annotated node — sixteen identical boxes
// say nothing one box with a shard count doesn't, and they drown the rest of
// the graph.
const shardPrefix = "kernfs.freeshard/"

const shardNode = shardPrefix + "*"

func foldShard(name string) string {
	if strings.HasPrefix(name, shardPrefix) {
		return shardNode
	}
	return name
}

// WriteDOT renders the wait-for graph in Graphviz dot form: nodes are named
// locks sized by total wait, edges are hold-while-waiting relations, and
// classes involved in an order inversion are drawn red. Per-shard allocator
// locks (kernfs.freeshard/<i>) collapse into one kernfs.freeshard/* node
// carrying the shard count and their aggregated wait.
func (rep Report) WriteDOT(w io.Writer) error {
	inverted := map[string]bool{}
	for _, inv := range rep.Inversions {
		inverted[inv.A], inverted[inv.B] = true, true
	}
	fmt.Fprintln(w, "digraph waitfor {")
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")

	type edgeKey struct{ from, to string }
	nodes := map[string]bool{}
	edges := map[edgeKey]EdgeRow{}
	var edgeOrder []edgeKey
	for _, e := range rep.Edges {
		from, to := foldShard(e.From), foldShard(e.To)
		nodes[from], nodes[to] = true, true
		k := edgeKey{from, to}
		if _, ok := edges[k]; !ok {
			edgeOrder = append(edgeOrder, k)
		}
		agg := edges[k]
		agg.From, agg.To = from, to
		agg.Count += e.Count
		agg.WaitNS += e.WaitNS
		edges[k] = agg
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	// Fold the per-shard lock rows the same way so the aggregate node can
	// report total wait, the shard population and any inversion involving a
	// shard class.
	byName := map[string]LockRow{}
	shards := map[string]bool{}
	shardInverted := false
	for _, l := range rep.Locks {
		name := foldShard(l.Lock)
		if name == shardNode {
			shards[l.Lock] = true
			if inverted[l.Class] {
				shardInverted = true
			}
		}
		agg := byName[name]
		agg.Lock, agg.Class = name, l.Class
		agg.WaitNS += l.WaitNS
		byName[name] = agg
	}
	for _, n := range order {
		attr := ""
		label := fmt.Sprintf("%s\\nwait %.3f ms", n, ms(byName[n].WaitNS))
		if n == shardNode {
			label = fmt.Sprintf("%s (%d shards)\\nwait %.3f ms", n, len(shards), ms(byName[n].WaitNS))
			if shardInverted {
				attr = ", color=red"
			}
		} else if inverted[byName[n].Class] {
			attr = ", color=red"
		}
		fmt.Fprintf(w, "  %q [label=\"%s\"%s];\n", n, label, attr)
	}
	for _, k := range edgeOrder {
		e := edges[k]
		fmt.Fprintf(w, "  %q -> %q [label=\"%d waits / %.3f ms\"];\n", e.From, e.To, e.Count, ms(e.WaitNS))
	}
	fmt.Fprintln(w, "}")
	return nil
}
