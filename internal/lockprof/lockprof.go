// Package lockprof is the named-lock contention profiler: a process-wide
// registry of lock classes and instances (kernfs.big, zofs.inode/<page>,
// nvm.stripe/<i>, ...) whose wrappers around simclock.Mutex/RWMutex record,
// for every acquisition, the virtual wait, the hold, the acquiring thread and
// the blocking holder. From those it derives per-lock log-bucket histograms,
// a hold-while-waiting wait-for edge table with lock-order-inversion
// detection, and per-thread blocked-on intervals for the Chrome trace.
//
// Like spans and byteflow, the profiler observes virtual clocks but never
// advances them: enabled-mode virtual time is bit-identical to a profiler-
// free run (the fxmark-scale gate asserts this), and the disabled fast path
// is one atomic load and a branch per acquire.
//
// Threads opt in via a ThreadState riding the clock's LockState slot
// (attached by proc.NewThread when a registry is active). Lock sites with a
// nil clock or an unattached thread take the uninstrumented path, so setup
// code costs nothing and sees nothing.
package lockprof

import (
	"sync"
	"sync/atomic"

	"zofs/internal/simclock"
	"zofs/internal/telemetry"
)

const (
	// maxLocks bounds distinct instance entries per registry generation;
	// instances beyond the cap fold into a per-class "~other" row so an
	// unbounded namespace (one lock per inode page) cannot grow the table
	// without bound.
	maxLocks = 1024
	// maxEdges bounds the wait-for edge table; overflow is counted.
	maxEdges = 1024
	// maxThreads bounds the per-thread rows per generation.
	maxThreads = 4096
	// defaultRingCap is the blocked-interval ring size when Config doesn't
	// override it.
	defaultRingCap = 8192
)

// Config parameterizes Enable.
type Config struct {
	// RingCap sets the blocked-interval ring capacity (<=0 means default).
	RingCap int
}

// Registry is one profiling domain. Reset swaps in a fresh generation; stale
// wrapper caches re-resolve lazily, so per-cell sweeps reuse one registry
// without accumulating dead entries.
type Registry struct {
	state   atomic.Pointer[regState]
	ringCap int
	// heldNow is a live gauge of instrumented locks currently held. It is
	// registry-level (not per generation) so a Reset during a hold stays
	// balanced when the release lands; at quiescence it must read zero.
	heldNow atomic.Int64
}

// regState is one generation of collected data. Reset replaces the whole
// struct, which atomically empties every table.
type regState struct {
	gen      uint64
	entries  sync.Map // name string -> *entry
	nEntries atomic.Int64
	dropped  atomic.Int64 // instances folded into ~other rows

	edges        sync.Map // edgeKey -> *edge
	nEdges       atomic.Int64
	edgesDropped atomic.Int64

	order sync.Map // orderKey (class pair) -> *orderEvidence
	invMu sync.Mutex
	invs  []Inversion

	// process-wide totals; virtual wait/hold conserve exactly against the
	// per-entry sums of non-real entries, realWaitNS against real entries.
	acquires   atomic.Int64
	contended  atomic.Int64
	waitNS     atomic.Int64
	holdNS     atomic.Int64
	realWaitNS atomic.Int64

	thMu       sync.Mutex
	threads    []*tRec
	thrDropped atomic.Int64

	ringMu  sync.Mutex
	ring    []blockedRec
	ringPos int
	ringLen int
}

// entry is one named lock instance's accumulated statistics. All fields are
// concurrency-safe; the histograms are telemetry's lock-free log buckets.
type entry struct {
	rs    *regState // owning generation; totals bill here for conservation
	class string
	label string
	real  bool // real-nanosecond lock (sync.Mutex wrapper), outside virtual conservation
	other bool // per-class overflow aggregate row

	acquires   atomic.Int64
	reads      atomic.Int64
	contended  atomic.Int64
	waitNS     atomic.Int64
	holdNS     atomic.Int64
	maxWaitNS  atomic.Int64
	maxHoldNS  atomic.Int64
	lastHolder atomic.Int64 // TID of the most recent releaser

	waitH telemetry.Hist
	holdH telemetry.Hist
}

func (e *entry) name() string {
	if e.label == "" {
		return e.class
	}
	return e.class + "/" + e.label
}

type edgeKey struct{ from, to *entry }

type edge struct {
	count  atomic.Int64
	waitNS atomic.Int64
}

type orderKey struct{ from, to string }

// OrderEvidence is one witnessed acquisition order: the named locks held
// (outermost first) when a lock of another class was acquired.
type OrderEvidence struct {
	TID      int      `json:"tid"`
	Held     []string `json:"held"`
	Acquired string   `json:"acquired"`
}

// Inversion is a lock-order inversion: class A was acquired while holding
// class B somewhere, and class B while holding class A somewhere else — the
// classic potential-deadlock shape lockdep reports. Ordering between
// instances of the same class (rename's two buckets, two inodes taken in key
// order) is a per-class address discipline and deliberately out of scope.
type Inversion struct {
	A        string        `json:"a"`
	B        string        `json:"b"`
	Forward  OrderEvidence `json:"forward"`  // A held, B acquired
	Backward OrderEvidence `json:"backward"` // B held, A acquired
}

// tRec is one thread's per-generation wait totals.
type tRec struct {
	tid    int
	waitNS atomic.Int64
	blocks atomic.Int64
}

// blockedRec is one blocked interval in the ring (virtual times).
type blockedRec struct {
	tid    int
	holder int
	e      *entry
	start  int64
	dur    int64
}

// ThreadState is the per-thread rider on simclock.Clock's LockState slot. It
// carries the held-lock stack (accessed only by the owning thread) and a
// cached per-generation totals record.
type ThreadState struct {
	reg *Registry
	tid int
	rs  *regState
	tr  *tRec
	// held is the stack of instrumented locks this thread currently holds,
	// outermost first. Owned by the thread; never read concurrently.
	held []heldLock
}

type heldLock struct {
	e    *entry
	acq  int64
	read bool
}

var active atomic.Pointer[Registry]

// Enable creates a fresh registry and installs it as the active one,
// returning it. Threads created while it is active attach automatically.
func Enable(cfg Config) *Registry {
	r := NewRegistry(cfg)
	active.Store(r)
	return r
}

// NewRegistry creates a registry without installing it.
func NewRegistry(cfg Config) *Registry {
	rc := cfg.RingCap
	if rc <= 0 {
		rc = defaultRingCap
	}
	r := &Registry{ringCap: rc}
	r.state.Store(newRegState(1, rc))
	return r
}

// Install makes r the active registry (nil is equivalent to Disable) — the
// save/restore idiom harness gates use around instrumented runs.
func Install(r *Registry) {
	if r == nil {
		active.Store(nil)
		return
	}
	active.Store(r)
}

// Disable deactivates profiling. Existing ThreadStates go quiescent (their
// registry no longer matches the active one).
func Disable() { active.Store(nil) }

// Active returns the active registry, or nil.
func Active() *Registry { return active.Load() }

func newRegState(gen uint64, ringCap int) *regState {
	return &regState{gen: gen, ring: make([]blockedRec, ringCap)}
}

// Reset discards all collected data by swapping in a fresh generation.
// Wrapper entry caches and thread records re-resolve against the new
// generation on their next acquisition; a remount plus Reset leaves no trace
// of the previous instance's locks (asserted by the remount test).
func (r *Registry) Reset() {
	old := r.state.Load()
	r.state.Store(newRegState(old.gen+1, r.ringCap))
}

// NewThreadState returns a state for the given thread ID, for attachment to
// its clock via SetLockState.
func (r *Registry) NewThreadState(tid int) *ThreadState {
	return &ThreadState{reg: r, tid: tid}
}

// HeldNow reports the number of instrumented locks currently held — zero at
// quiescence, making it a leak assertion.
func (r *Registry) HeldNow() int64 { return r.heldNow.Load() }

// WaitNS reports the total virtual lock-wait nanoseconds recorded this
// generation. When spans and lockprof are both attached to the same threads
// this equals the span collector's LockWaitNS exactly.
func (r *Registry) WaitNS() int64 { return r.state.Load().waitNS.Load() }

// stateOf extracts a ThreadState attached to c, or nil.
func stateOf(c *simclock.Clock) *ThreadState {
	st, _ := c.LockState().(*ThreadState)
	return st
}

// recFor returns the thread's totals record in generation rs, re-attaching
// after a Reset.
func (st *ThreadState) recFor(rs *regState) *tRec {
	if st.rs == rs && st.tr != nil {
		return st.tr
	}
	rs.thMu.Lock()
	var tr *tRec
	if len(rs.threads) < maxThreads {
		tr = &tRec{tid: st.tid}
		rs.threads = append(rs.threads, tr)
	} else {
		rs.thrDropped.Add(1)
	}
	rs.thMu.Unlock()
	st.rs, st.tr = rs, tr
	return tr
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// entryFor resolves (class, label) to this generation's entry, folding into
// the class overflow row past the instance cap.
func (rs *regState) entryFor(class, label string, real bool) *entry {
	name := class
	if label != "" {
		name = class + "/" + label
	}
	if v, ok := rs.entries.Load(name); ok {
		return v.(*entry)
	}
	if rs.nEntries.Load() >= maxLocks {
		rs.dropped.Add(1)
		oname := class + "/~other"
		if v, ok := rs.entries.Load(oname); ok {
			return v.(*entry)
		}
		v, _ := rs.entries.LoadOrStore(oname, &entry{rs: rs, class: class, label: "~other", real: real, other: true})
		return v.(*entry)
	}
	e := &entry{rs: rs, class: class, label: label, real: real}
	if v, loaded := rs.entries.LoadOrStore(name, e); loaded {
		return v.(*entry)
	}
	rs.nEntries.Add(1)
	return e
}

// acquired records a completed instrumented acquisition: wait stats, the
// wait-for edge to the innermost held lock, class-order pairs, the blocked
// interval, and the push onto the held stack. now is the (post-drain)
// acquisition time on the thread's clock.
func (st *ThreadState) acquired(e *entry, wait, now int64, read bool, holderTID int) {
	rs := e.rs
	e.acquires.Add(1)
	if read {
		e.reads.Add(1)
	}
	e.waitH.Observe(wait)
	rs.acquires.Add(1)
	if wait > 0 {
		e.contended.Add(1)
		e.waitNS.Add(wait)
		atomicMax(&e.maxWaitNS, wait)
		rs.contended.Add(1)
		rs.waitNS.Add(wait)
		if tr := st.recFor(rs); tr != nil {
			tr.waitNS.Add(wait)
			tr.blocks.Add(1)
		}
		rs.recordBlocked(st.tid, holderTID, e, now-wait, wait)
		if n := len(st.held); n > 0 {
			rs.recordEdge(st.held[n-1].e, e, wait)
		}
	}
	for i := range st.held {
		if st.held[i].e.class != e.class {
			rs.recordOrder(st, st.held[i].e.class, e)
		}
	}
	st.reg.heldNow.Add(1)
	st.held = append(st.held, heldLock{e: e, acq: now, read: read})
}

// released pops e from the held stack (if the matching acquire was
// instrumented) and records the hold. Totals bill to e's own generation so
// per-generation conservation holds even across a Reset mid-hold.
func (st *ThreadState) released(e *entry, now int64) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].e != e {
			continue
		}
		hold := now - st.held[i].acq
		st.held = append(st.held[:i], st.held[i+1:]...)
		st.reg.heldNow.Add(-1)
		if hold < 0 {
			hold = 0
		}
		e.holdH.Observe(hold)
		e.holdNS.Add(hold)
		atomicMax(&e.maxHoldNS, hold)
		e.lastHolder.Store(int64(st.tid))
		e.rs.holdNS.Add(hold)
		return
	}
}

func (rs *regState) recordEdge(from, to *entry, wait int64) {
	k := edgeKey{from, to}
	v, ok := rs.edges.Load(k)
	if !ok {
		if rs.nEdges.Load() >= maxEdges {
			rs.edgesDropped.Add(1)
			return
		}
		var loaded bool
		if v, loaded = rs.edges.LoadOrStore(k, &edge{}); !loaded {
			rs.nEdges.Add(1)
		}
	}
	ed := v.(*edge)
	ed.count.Add(1)
	ed.waitNS.Add(wait)
}

// recordOrder notes "class(held) taken before class(acquiring)" once per
// ordered class pair, keeping the held-stack names as evidence; when the
// reverse pair already exists the inversion is reported with both stacks.
func (rs *regState) recordOrder(st *ThreadState, heldClass string, acquiring *entry) {
	k := orderKey{heldClass, acquiring.class}
	if _, ok := rs.order.Load(k); ok {
		return
	}
	held := make([]string, len(st.held))
	for i := range st.held {
		held[i] = st.held[i].e.name()
	}
	ev := &OrderEvidence{TID: st.tid, Held: held, Acquired: acquiring.name()}
	if _, loaded := rs.order.LoadOrStore(k, ev); loaded {
		return
	}
	if rv, ok := rs.order.Load(orderKey{acquiring.class, heldClass}); ok {
		// The reverse direction was seen first: report it as the forward
		// edge so Inversion.A→B reads in first-observed order.
		rs.addInversion(acquiring.class, heldClass, *rv.(*OrderEvidence), *ev)
	}
}

func (rs *regState) addInversion(a, b string, fwd, back OrderEvidence) {
	rs.invMu.Lock()
	defer rs.invMu.Unlock()
	for i := range rs.invs {
		if (rs.invs[i].A == a && rs.invs[i].B == b) || (rs.invs[i].A == b && rs.invs[i].B == a) {
			return
		}
	}
	rs.invs = append(rs.invs, Inversion{A: a, B: b, Forward: fwd, Backward: back})
}

func (rs *regState) recordBlocked(tid, holder int, e *entry, start, dur int64) {
	rs.ringMu.Lock()
	rs.ring[rs.ringPos] = blockedRec{tid: tid, holder: holder, e: e, start: start, dur: dur}
	rs.ringPos = (rs.ringPos + 1) % len(rs.ring)
	if rs.ringLen < len(rs.ring) {
		rs.ringLen++
	}
	rs.ringMu.Unlock()
}

// Mutex is a named simclock.Mutex. The zero value works uninstrumented;
// Init (or NewMutex) names it. Lock/Unlock signatures match simclock.Mutex
// so call sites change only in the field's type.
type Mutex struct {
	class, label string
	mu           simclock.Mutex
	ent          atomic.Pointer[entry]
	// lastEnd/lastTID mirror the inner lock's release stamp and releaser for
	// blocking-holder blame. Plain fields: written before the inner Unlock,
	// read after the inner Lock, so the real mutex orders them.
	lastEnd int64
	lastTID int
}

// NewMutex returns a named mutex.
func NewMutex(class, label string) *Mutex {
	m := &Mutex{}
	m.Init(class, label)
	return m
}

// Init names a zero-value Mutex in place (for embedded fields). Call before
// first use.
func (m *Mutex) Init(class, label string) { m.class, m.label = class, label }

// resolve returns the current generation's entry for this lock, refreshing
// the wrapper cache after Enable/Reset. Must be called while holding the
// inner lock (the cache write races only with other holders, of which there
// are none).
func (m *Mutex) resolve(reg *Registry) *entry {
	rs := reg.state.Load()
	if e := m.ent.Load(); e != nil && e.rs == rs {
		return e
	}
	if m.class == "" {
		return nil
	}
	e := rs.entryFor(m.class, m.label, false)
	m.ent.Store(e)
	return e
}

// Lock acquires the mutex, draining virtual wait exactly as simclock.Mutex
// does; when profiling is active for this thread the wait, blamed holder and
// held-stack effects are recorded. Profiling never advances the clock.
func (m *Mutex) Lock(c *simclock.Clock) {
	reg := active.Load()
	if reg == nil || c == nil {
		m.mu.Lock(c)
		return
	}
	st := stateOf(c)
	if st == nil || st.reg != reg {
		m.mu.Lock(c)
		return
	}
	t0 := c.Now()
	m.mu.Lock(c)
	if e := m.resolve(reg); e != nil {
		st.acquired(e, c.Now()-t0, c.Now(), false, m.lastTID)
	}
}

// Unlock stamps the release and releases the mutex.
func (m *Mutex) Unlock(c *simclock.Clock) {
	if reg := active.Load(); reg != nil && c != nil {
		if st := stateOf(c); st != nil && st.reg == reg {
			if e := m.ent.Load(); e != nil {
				st.released(e, c.Now())
			}
			m.lastEnd = c.Now()
			m.lastTID = st.tid
		}
	}
	m.mu.Unlock(c)
}

// RWMutex is a named simclock.RWMutex.
type RWMutex struct {
	class, label string
	mu           simclock.RWMutex
	ent          atomic.Pointer[entry]
	// Writer release mirror: plain fields guarded by the write lock.
	wEnd int64
	wTID int
	// Reader release mirror: atomics, since readers release concurrently.
	rEnd atomic.Int64
	rTID atomic.Int64
}

// NewRWMutex returns a named readers-writer mutex.
func NewRWMutex(class, label string) *RWMutex {
	m := &RWMutex{}
	m.Init(class, label)
	return m
}

// Init names a zero-value RWMutex in place. Call before first use.
func (m *RWMutex) Init(class, label string) { m.class, m.label = class, label }

func (m *RWMutex) resolve(reg *Registry) *entry {
	rs := reg.state.Load()
	if e := m.ent.Load(); e != nil && e.rs == rs {
		return e
	}
	if m.class == "" {
		return nil
	}
	e := rs.entryFor(m.class, m.label, false)
	// Racy store among concurrent readers; all of them resolved the same
	// entry from the same generation, so any winner is correct.
	m.ent.Store(e)
	return e
}

// Lock acquires the write side. The blamed holder is whichever of the writer
// and reader release mirrors stamped later.
func (m *RWMutex) Lock(c *simclock.Clock) {
	reg := active.Load()
	if reg == nil || c == nil {
		m.mu.Lock(c)
		return
	}
	st := stateOf(c)
	if st == nil || st.reg != reg {
		m.mu.Lock(c)
		return
	}
	t0 := c.Now()
	m.mu.Lock(c)
	holder := m.wTID
	if m.rEnd.Load() > m.wEnd {
		holder = int(m.rTID.Load())
	}
	if e := m.resolve(reg); e != nil {
		st.acquired(e, c.Now()-t0, c.Now(), false, holder)
	}
}

// Unlock releases the write side.
func (m *RWMutex) Unlock(c *simclock.Clock) {
	if reg := active.Load(); reg != nil && c != nil {
		if st := stateOf(c); st != nil && st.reg == reg {
			if e := m.ent.Load(); e != nil {
				st.released(e, c.Now())
			}
			m.wEnd = c.Now()
			m.wTID = st.tid
		}
	}
	m.mu.Unlock(c)
}

// RLock acquires the read side; a contended reader blames the last writer.
func (m *RWMutex) RLock(c *simclock.Clock) {
	reg := active.Load()
	if reg == nil || c == nil {
		m.mu.RLock(c)
		return
	}
	st := stateOf(c)
	if st == nil || st.reg != reg {
		m.mu.RLock(c)
		return
	}
	t0 := c.Now()
	m.mu.RLock(c)
	if e := m.resolve(reg); e != nil {
		st.acquired(e, c.Now()-t0, c.Now(), true, m.wTID)
	}
}

// RUnlock releases the read side.
func (m *RWMutex) RUnlock(c *simclock.Clock) {
	if reg := active.Load(); reg != nil && c != nil {
		if st := stateOf(c); st != nil && st.reg == reg {
			if e := m.ent.Load(); e != nil {
				st.released(e, c.Now())
			}
			atomicMax(&m.rEnd, c.Now())
			m.rTID.Store(int64(st.tid))
		}
	}
	m.mu.RUnlock(c)
}
