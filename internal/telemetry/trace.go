package telemetry

import (
	"sort"
	"sync"
)

// TraceEvent is one completed operation in a thread's trace ring.
type TraceEvent struct {
	TID   int    `json:"tid"`
	Op    string `json:"op"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns"`
}

const (
	// ringCap bounds each thread's trace to its most recent operations.
	ringCap = 256
	// maxTracedThreads bounds the number of distinct rings so a thread-churn
	// workload cannot grow the table without bound.
	maxTracedThreads = 128
)

// opRing is a single thread's bounded trace. Only that thread writes it, but
// snapshots race with the writer, so a per-ring mutex keeps events coherent.
type opRing struct {
	mu  sync.Mutex
	buf [ringCap]TraceEvent
	n   int64 // total events ever recorded; buf[(n-1)%ringCap] is newest
}

func (r *opRing) record(ev TraceEvent) {
	r.mu.Lock()
	r.buf[r.n%ringCap] = ev
	r.n++
	r.mu.Unlock()
}

// events returns the ring's contents, oldest first.
func (r *opRing) events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if n > ringCap {
		out := make([]TraceEvent, ringCap)
		for i := int64(0); i < ringCap; i++ {
			out[i] = r.buf[(n+i)%ringCap]
		}
		return out
	}
	out := make([]TraceEvent, n)
	copy(out, r.buf[:n])
	return out
}

// traceTable holds one ring per simulated thread.
type traceTable struct {
	mu    sync.Mutex
	rings map[int]*opRing
}

func (t *traceTable) ringFor(tid int) *opRing {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rings == nil {
		t.rings = make(map[int]*opRing)
	}
	r := t.rings[tid]
	if r == nil {
		if len(t.rings) >= maxTracedThreads {
			return nil
		}
		r = &opRing{}
		t.rings[tid] = r
	}
	return r
}

func (t *traceTable) record(tid int, op Op, startNS, durNS int64) {
	if r := t.ringFor(tid); r != nil {
		r.record(TraceEvent{TID: tid, Op: op.Name(), Start: startNS, Dur: durNS})
	}
}

// all returns every ring's events merged and ordered by start time.
func (t *traceTable) all() []TraceEvent {
	t.mu.Lock()
	rings := make([]*opRing, 0, len(t.rings))
	for _, r := range t.rings {
		rings = append(rings, r)
	}
	t.mu.Unlock()
	var out []TraceEvent
	for _, r := range rings {
		out = append(out, r.events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// TraceEvents returns the recorder's op-trace spans, merged across threads
// and ordered by start time, without building a full Snapshot. The flight
// recorder's auditor consumes these to attribute device events to ops.
func (r *Recorder) TraceEvents() []TraceEvent {
	if r == nil {
		return nil
	}
	return r.traces.all()
}

func (t *traceTable) reset() {
	t.mu.Lock()
	t.rings = nil
	t.mu.Unlock()
}
