package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderSafe exercises every method on the nil sink.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Inc(CtrNVMReads)
	r.Add(CtrNVMBytesRead, 42)
	r.Max(GaugeDirtyLinesHWM, 7)
	r.Observe(OpRead, 100)
	r.TraceOp(1, OpRead, 0, 100)
	r.Reset()
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Ops) != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
}

// TestConcurrentCountersNoLoss hammers one counter from many goroutines and
// asserts no increment is lost across the shards.
func TestConcurrentCountersNoLoss(t *testing.T) {
	r := New()
	const workers = 32
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc(CtrNVMNTStores)
				r.Add(CtrNVMBytesWritten, 8)
			}
		}()
	}
	wg.Wait()
	if got := r.counterTotal(CtrNVMNTStores); got != workers*perWorker {
		t.Errorf("lost increments: got %d, want %d", got, workers*perWorker)
	}
	if got := r.counterTotal(CtrNVMBytesWritten); got != workers*perWorker*8 {
		t.Errorf("lost adds: got %d, want %d", got, workers*perWorker*8)
	}
}

func TestGaugeMax(t *testing.T) {
	r := New()
	r.Max(GaugeDirtyLinesHWM, 5)
	r.Max(GaugeDirtyLinesHWM, 3)
	r.Max(GaugeDirtyLinesHWM, 9)
	if got := r.Snapshot().Gauges[GaugeDirtyLinesHWM.Name()]; got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}
}

// TestBucketMath checks the bucket index and upper-bound functions agree:
// every value must land in a bucket whose upper bound is >= the value, and
// bucket indexes must be monotone in the value.
func TestBucketMath(t *testing.T) {
	values := []int64{0, 1, 7, 8, 9, 15, 16, 100, 1000, 4096, 123456, 1 << 40}
	prev := -1
	for _, v := range values {
		idx := bucketOf(v)
		if idx < prev {
			t.Errorf("bucketOf(%d) = %d < previous %d: not monotone", v, idx, prev)
		}
		prev = idx
		if up := bucketUpper(idx); up < v {
			t.Errorf("bucketUpper(bucketOf(%d)) = %d < %d", v, up, v)
		}
		if idx >= histBuckets {
			t.Errorf("bucketOf(%d) = %d out of range %d", v, idx, histBuckets)
		}
	}
	if bucketOf(-5) != 0 {
		t.Errorf("negative latency should clamp to bucket 0")
	}
}

// TestHistogramQuantiles checks p50/p99 land within one log-bucket of the
// true quantile for a uniform population.
func TestHistogramQuantiles(t *testing.T) {
	r := New()
	for i := int64(1); i <= 1000; i++ {
		r.Observe(OpWrite, i)
	}
	s := r.Snapshot()
	o, ok := s.Ops[OpWrite.Name()]
	if !ok {
		t.Fatal("no write op snapshot")
	}
	if o.Count != 1000 {
		t.Errorf("count = %d, want 1000", o.Count)
	}
	if o.MeanNS != 500 { // sum 500500 / 1000
		t.Errorf("mean = %d, want 500", o.MeanNS)
	}
	// Log-bucketing with 4 sub-buckets per octave bounds relative error
	// at ~25% of the bucket width.
	if o.P50NS < 500 || o.P50NS > 640 {
		t.Errorf("p50 = %d, want ~500..640", o.P50NS)
	}
	if o.P99NS < 990 || o.P99NS > 1280 {
		t.Errorf("p99 = %d, want ~990..1280", o.P99NS)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := New()
	r.Inc(CtrKernSyscalls)
	r.Observe(OpOpen, 100)
	base := r.Snapshot()

	r.Add(CtrKernSyscalls, 4)
	r.Inc(CtrNVMFlushes)
	r.Observe(OpOpen, 200)
	r.Observe(OpOpen, 200)
	d := r.Snapshot().Diff(base)

	if d.Counters["kernfs.syscalls"] != 4 {
		t.Errorf("diff syscalls = %d, want 4", d.Counters["kernfs.syscalls"])
	}
	if d.Counters["nvm.flushes"] != 1 {
		t.Errorf("diff flushes = %d, want 1", d.Counters["nvm.flushes"])
	}
	o := d.Ops[OpOpen.Name()]
	if o.Count != 2 {
		t.Errorf("diff open count = %d, want 2", o.Count)
	}
	if o.MeanNS != 200 {
		t.Errorf("diff open mean = %d, want 200", o.MeanNS)
	}
}

// TestTraceRingBounded verifies the per-thread ring keeps only the newest
// ringCap events and the thread table stops growing at maxTracedThreads.
func TestTraceRingBounded(t *testing.T) {
	r := New()
	for i := int64(0); i < 2*ringCap; i++ {
		r.TraceOp(1, OpRead, i, 1)
	}
	evs := r.Snapshot().Trace
	if len(evs) != ringCap {
		t.Fatalf("ring holds %d events, want %d", len(evs), ringCap)
	}
	if evs[0].Start != ringCap || evs[len(evs)-1].Start != 2*ringCap-1 {
		t.Errorf("ring kept wrong window: [%d, %d]", evs[0].Start, evs[len(evs)-1].Start)
	}

	r2 := New()
	for tid := 0; tid < 2*maxTracedThreads; tid++ {
		r2.TraceOp(tid, OpRead, int64(tid), 1)
	}
	if n := len(r2.Snapshot().Trace); n != maxTracedThreads {
		t.Errorf("trace table holds %d threads' events, want %d", n, maxTracedThreads)
	}
}

func TestSnapshotRenderers(t *testing.T) {
	r := New()
	r.Inc(CtrNVMReads)
	r.Add(CtrNVMBytesWritten, 4096)
	r.Inc(CtrMPKSwitches)
	r.Observe(OpWrite, 1500)
	s := r.Snapshot()

	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"nvm", "bytes_written", "4096", "pkru_switches", "write", "p99"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Counters map[string]int64 `json:"counters"`
		Ops      map[string]struct {
			Count int64 `json:"count"`
			P99NS int64 `json:"p99_ns"`
		} `json:"ops"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Counters["nvm.bytes_written"] != 4096 {
		t.Errorf("JSON bytes_written = %d", back.Counters["nvm.bytes_written"])
	}
	if back.Ops["write"].Count != 1 || back.Ops["write"].P99NS == 0 {
		t.Errorf("JSON write op = %+v", back.Ops["write"])
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	if Active() != nil {
		t.Fatal("recorder active before Enable")
	}
	r := Enable()
	if Active() != r {
		t.Fatal("Active() != Enable() result")
	}
	Disable()
	if Active() != nil {
		t.Fatal("recorder still active after Disable")
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Inc(CtrNVMReads)
	r.Max(GaugeDirtyLinesHWM, 3)
	r.Observe(OpRead, 10)
	r.TraceOp(1, OpRead, 0, 10)
	r.Reset()
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Ops) != 0 || len(s.Trace) != 0 {
		t.Errorf("reset left state: %+v", s)
	}
}
