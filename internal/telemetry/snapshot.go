package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// OpSnap is one operation's latency summary inside a Snapshot. Buckets carry
// the raw histogram so Diff can recompute interval quantiles; the JSON form
// exposes only the derived summary.
type OpSnap struct {
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum_ns"`
	MeanNS  int64   `json:"mean_ns"`
	P50NS   int64   `json:"p50_ns"`
	P99NS   int64   `json:"p99_ns"`
	Buckets []int64 `json:"-"`
}

func (o OpSnap) finish() OpSnap {
	if o.Count > 0 {
		o.MeanNS = o.SumNS / o.Count
	} else {
		o.MeanNS = 0
	}
	o.P50NS = quantile(o.Buckets, o.Count, 0.50)
	o.P99NS = quantile(o.Buckets, o.Count, 0.99)
	return o
}

// Snapshot is a point-in-time copy of a recorder's state, suitable for
// diffing, JSON export and text rendering.
type Snapshot struct {
	Counters map[string]int64  `json:"counters"`
	Gauges   map[string]int64  `json:"gauges"`
	Ops      map[string]OpSnap `json:"ops"`
	Trace    []TraceEvent      `json:"trace,omitempty"`
}

// Snapshot captures the recorder's current totals. On a nil recorder it
// returns an empty snapshot.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Ops:      map[string]OpSnap{},
	}
	if r == nil {
		return s
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := r.counterTotal(c); v != 0 {
			s.Counters[c.Name()] = v
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		if v := r.gauges[g].Load(); v != 0 {
			s.Gauges[g.Name()] = v
		}
	}
	for op := Op(0); op < numOps; op++ {
		count, sum, buckets := r.hists[op].snapshot()
		if count == 0 {
			continue
		}
		s.Ops[op.Name()] = OpSnap{Count: count, SumNS: sum, Buckets: buckets}.finish()
	}
	s.Trace = r.traces.all()
	return s
}

// Diff returns the activity between prev and s: counters and histograms are
// subtracted bucket-wise; gauges (high-water marks) and the trace keep s's
// values, since neither subtracts meaningfully.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Ops:      map[string]OpSnap{},
		Trace:    s.Trace,
	}
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, cur := range s.Ops {
		old := prev.Ops[name]
		n := OpSnap{Count: cur.Count - old.Count, SumNS: cur.SumNS - old.SumNS}
		if n.Count <= 0 {
			continue
		}
		n.Buckets = make([]int64, len(cur.Buckets))
		copy(n.Buckets, cur.Buckets)
		for i := range old.Buckets {
			if i < len(n.Buckets) {
				n.Buckets[i] -= old.Buckets[i]
			}
		}
		d.Ops[name] = n.finish()
	}
	return d
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// layerOrder fixes the text rendering order of counter groups.
var layerOrder = []string{"nvm", "mpk", "kernfs", "fslibs", "zofs"}

// WriteText renders the snapshot as a per-layer counter table followed by a
// per-op latency table.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layer\tcounter\tvalue")
	byLayer := map[string][]string{}
	add := func(name string) {
		layer, _, _ := strings.Cut(name, ".")
		byLayer[layer] = append(byLayer[layer], name)
	}
	for name := range s.Counters {
		add(name)
	}
	for name := range s.Gauges {
		add(name)
	}
	for _, layer := range layerOrder {
		names := byLayer[layer]
		sort.Strings(names)
		for _, name := range names {
			v, ok := s.Counters[name]
			if !ok {
				v = s.Gauges[name]
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\n", layer, strings.TrimPrefix(name, layer+"."), v)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(s.Ops) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "op\tcount\tmean ns\tp50 ns\tp99 ns")
	names := make([]string, 0, len(s.Ops))
	for name := range s.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := s.Ops[name]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", name, o.Count, o.MeanNS, o.P50NS, o.P99NS)
	}
	return tw.Flush()
}
