package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Op enumerates the dispatched file system operations whose latencies are
// histogrammed. The set mirrors the FSLibs entry points; the vfs-level
// observer (internal/obsfs) maps handle methods onto the same values.
type Op int

const (
	OpOpen Op = iota
	OpCreate
	OpClose
	OpRead
	OpWrite
	OpAppend
	OpFsync
	OpStat
	OpMkdir
	OpUnlink
	OpRmdir
	OpRename
	OpChmod
	OpChown
	OpSymlink
	OpReadlink
	OpReadDir
	OpTruncate
	numOps
)

var opNames = [numOps]string{
	OpOpen:     "open",
	OpCreate:   "create",
	OpClose:    "close",
	OpRead:     "read",
	OpWrite:    "write",
	OpAppend:   "append",
	OpFsync:    "fsync",
	OpStat:     "stat",
	OpMkdir:    "mkdir",
	OpUnlink:   "unlink",
	OpRmdir:    "rmdir",
	OpRename:   "rename",
	OpChmod:    "chmod",
	OpChown:    "chown",
	OpSymlink:  "symlink",
	OpReadlink: "readlink",
	OpReadDir:  "readdir",
	OpTruncate: "truncate",
}

// Name returns the op's short name.
func (o Op) Name() string { return opNames[o] }

// NumOps is the number of Op values, exported so sibling observability
// layers (internal/spans) can size per-op aggregate arrays.
const NumOps = int(numOps)

// The histogram buckets simulated-nanosecond latencies logarithmically with
// four sub-buckets per octave: values 0–7 land in exact buckets, larger
// values in bucket 8 + 4*(log2(v)-3) + next-two-bits. This bounds the
// relative quantile error at ~12% while keeping observation to a handful of
// bit operations and one atomic add.
const histBuckets = 8 + 4*61 // exact small values + octaves 3..63

type histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a latency to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < 8 {
		return int(v)
	}
	e := bits.Len64(v) - 1 // >= 3
	sub := (v >> (e - 2)) & 3
	return 8 + 4*(e-3) + int(sub)
}

// bucketUpper returns the largest latency contained in a bucket — the value
// quantile estimation reports.
func bucketUpper(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	idx -= 8
	e := idx/4 + 3
	sub := idx % 4
	return int64((uint64(sub)+5)<<(e-2)) - 1
}

func (h *histogram) observe(ns int64) {
	if h.count.Add(1) < 0 {
		h.count.Store(maxInt64)
	}
	if ns > 0 && h.sum.Add(ns) < 0 {
		h.sum.Store(maxInt64)
	}
	b := &h.buckets[bucketOf(ns)]
	if b.Add(1) < 0 {
		b.Store(maxInt64)
	}
}

func (h *histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// snapshot copies the histogram's buckets into a plain slice.
func (h *histogram) snapshot() (count, sum int64, buckets []int64) {
	buckets = make([]int64, histBuckets)
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return h.count.Load(), h.sum.Load(), buckets
}

// Hist is an exported handle over the log-bucketed histogram so sibling
// observability layers (internal/spans) can reuse the exact same bucket
// geometry and quantile estimator instead of growing a second one.
type Hist struct{ h histogram }

// Observe records one value.
func (h *Hist) Observe(ns int64) { h.h.observe(ns) }

// Reset zeroes the histogram.
func (h *Hist) Reset() { h.h.reset() }

// Snapshot copies out the count, the (saturating) sum and the bucket vector.
func (h *Hist) Snapshot() (count, sum int64, buckets []int64) { return h.h.snapshot() }

// HistBuckets is the length of the bucket vectors returned by Hist.Snapshot.
const HistBuckets = histBuckets

// BucketOf exposes the bucket index of a latency so sibling layers
// (internal/series) can fill plain bucket vectors with the exact same
// geometry — the merge-exactness guarantee between windowed and cumulative
// histograms depends on both using this one mapping.
func BucketOf(ns int64) int { return bucketOf(ns) }

// BucketUpper exposes the largest latency contained in a bucket.
func BucketUpper(idx int) int64 { return bucketUpper(idx) }

// Quantile estimates the q-quantile (0 < q <= 1) of a bucket vector produced
// by Hist.Snapshot (or Snapshot.Ops buckets).
func Quantile(buckets []int64, count int64, q float64) int64 {
	return quantile(buckets, count, q)
}

// quantile estimates the q-quantile (0 < q <= 1) of a bucket vector by
// reporting the upper bound of the bucket containing the q-th observation.
func quantile(buckets []int64, count int64, q float64) int64 {
	if count <= 0 {
		return 0
	}
	rank := int64(q * float64(count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range buckets {
		seen += n
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(buckets) - 1)
}
