package telemetry

import (
	"math"
	"testing"
)

// TestCounterSaturation drives a counter past 2^63-1 worth of deltas between
// two snapshots and asserts the total pins at MaxInt64 instead of wrapping
// negative (which would make snapshot diffs report garbage).
func TestCounterSaturation(t *testing.T) {
	r := New()
	before := r.Snapshot()
	// Two near-max deltas from the same goroutine land in the same shard,
	// so the shard itself must saturate, not just the cross-shard total.
	r.Add(CtrNVMBytesWritten, math.MaxInt64-1)
	r.Add(CtrNVMBytesWritten, math.MaxInt64-1)
	r.Inc(CtrNVMBytesWritten)
	after := r.Snapshot()
	if got := after.Counters[CtrNVMBytesWritten.Name()]; got != math.MaxInt64 {
		t.Fatalf("saturated counter = %d, want MaxInt64", got)
	}
	d := after.Diff(before)
	if got := d.Counters[CtrNVMBytesWritten.Name()]; got < 0 {
		t.Fatalf("snapshot diff went negative after overflow: %d", got)
	}
}

// TestCounterAddIgnoresNegative keeps counters monotonic: a negative delta
// is a caller bug and must not decrement.
func TestCounterAddIgnoresNegative(t *testing.T) {
	r := New()
	r.Add(CtrNVMReads, 5)
	r.Add(CtrNVMReads, -3)
	if got := r.counterTotal(CtrNVMReads); got != 5 {
		t.Fatalf("counter after negative Add = %d, want 5", got)
	}
}

// TestSatAdd covers the saturating sum used by counterTotal.
func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{1, 2, 3},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64 - 1, 1, math.MaxInt64},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := satAdd(c.a, c.b); got != c.want {
			t.Fatalf("satAdd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestHistogramSaturation overflows a histogram sum and asserts it pins.
func TestHistogramSaturation(t *testing.T) {
	var h Hist
	h.Observe(math.MaxInt64 - 1)
	h.Observe(math.MaxInt64 - 1)
	count, sum, buckets := h.Snapshot()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if sum != math.MaxInt64 {
		t.Fatalf("overflowed sum = %d, want MaxInt64", sum)
	}
	if q := Quantile(buckets, count, 0.5); q <= 0 {
		t.Fatalf("quantile of saturated histogram = %d, want > 0", q)
	}
}
