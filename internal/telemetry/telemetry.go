// Package telemetry is the observability substrate of the Treasury stack:
// sharded lock-free counters, simclock-native latency histograms and a
// bounded per-thread op-trace ring buffer, all behind a near-zero-cost
// *Recorder handle whose nil value is a valid no-op sink.
//
// Every instrumented layer (nvm, proc/mpk, kernfs, zofs, fslibs) reaches its
// recorder through the owning *nvm.Device, so a single Enable() call before
// device creation lights up the whole stack and the default (nil) recorder
// keeps the hot paths at a pointer load plus a predicted branch. Latencies
// are simulated nanoseconds from the per-thread virtual clocks — wall time
// is meaningless in this repository (see internal/simclock).
package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// Counter enumerates the per-layer monotonic counters. Names are
// "<layer>.<metric>"; the layer prefix groups the text rendering.
type Counter int

const (
	// nvm: media-level events charged by the device cost model.
	CtrNVMReads Counter = iota
	CtrNVMBytesRead
	CtrNVMCachedWrites
	CtrNVMNTStores
	CtrNVMFlushes
	CtrNVMCLWBLines
	CtrNVMFences
	CtrNVMBytesWritten
	CtrNVMZeroBytes
	CtrNVMDegradeEvents

	// mpk: protection-domain switching.
	CtrMPKSwitches
	CtrMPKWRPKRUCharged
	CtrMPKViolations

	// kernfs: trap-equivalents (every entry charges a syscall).
	CtrKernSyscalls
	CtrKernCofferNew
	CtrKernCofferDelete
	CtrKernCofferEnlarge
	CtrKernEnlargePages
	CtrKernCofferShrink
	CtrKernCofferMap
	CtrKernCofferUnmap
	CtrKernCofferSplit
	CtrKernCofferMerge
	CtrKernMovePages
	CtrKernRecoveries
	CtrKernQuarantines
	CtrKernViolationReports

	// fslibs / dispatch layer.
	CtrDispatchOps
	CtrFaultsRecovered

	// zofs µFS decisions.
	CtrZoFSPagesAlloc
	CtrZoFSPagesFreed
	CtrZoFSInlineWrites
	CtrZoFSExtentWrites
	CtrZoFSDeInline

	numCounters
)

// counterNames maps Counter values to "<layer>.<metric>" names.
var counterNames = [numCounters]string{
	CtrNVMReads:         "nvm.reads",
	CtrNVMBytesRead:     "nvm.bytes_read",
	CtrNVMCachedWrites:  "nvm.cached_writes",
	CtrNVMNTStores:      "nvm.nt_stores",
	CtrNVMFlushes:       "nvm.flushes",
	CtrNVMCLWBLines:     "nvm.clwb_lines",
	CtrNVMFences:        "nvm.fences",
	CtrNVMBytesWritten:  "nvm.bytes_written",
	CtrNVMZeroBytes:     "nvm.zero_bytes",
	CtrNVMDegradeEvents: "nvm.degrade_events",

	CtrMPKSwitches:      "mpk.pkru_switches",
	CtrMPKWRPKRUCharged: "mpk.wrpkru_charged",
	CtrMPKViolations:    "mpk.violations",

	CtrKernSyscalls:         "kernfs.syscalls",
	CtrKernCofferNew:        "kernfs.coffer_new",
	CtrKernCofferDelete:     "kernfs.coffer_delete",
	CtrKernCofferEnlarge:    "kernfs.coffer_enlarge",
	CtrKernEnlargePages:     "kernfs.enlarge_pages",
	CtrKernCofferShrink:     "kernfs.coffer_shrink",
	CtrKernCofferMap:        "kernfs.coffer_map",
	CtrKernCofferUnmap:      "kernfs.coffer_unmap",
	CtrKernCofferSplit:      "kernfs.coffer_split",
	CtrKernCofferMerge:      "kernfs.coffer_merge",
	CtrKernMovePages:        "kernfs.move_pages",
	CtrKernRecoveries:       "kernfs.recoveries",
	CtrKernQuarantines:      "kernfs.quarantines",
	CtrKernViolationReports: "kernfs.violation_reports",

	CtrDispatchOps:     "fslibs.ops",
	CtrFaultsRecovered: "fslibs.faults_recovered",

	CtrZoFSPagesAlloc:   "zofs.pages_alloc",
	CtrZoFSPagesFreed:   "zofs.pages_freed",
	CtrZoFSInlineWrites: "zofs.inline_writes",
	CtrZoFSExtentWrites: "zofs.extent_writes",
	CtrZoFSDeInline:     "zofs.deinline_migrations",
}

// Name returns the counter's "<layer>.<metric>" name.
func (c Counter) Name() string { return counterNames[c] }

// Gauge enumerates high-water-mark gauges (Max semantics, not additive).
type Gauge int

const (
	GaugeDirtyLinesHWM Gauge = iota
	GaugeWriteConcurrency
	numGauges
)

var gaugeNames = [numGauges]string{
	GaugeDirtyLinesHWM:    "nvm.dirty_lines_hwm",
	GaugeWriteConcurrency: "nvm.write_concurrency_hwm",
}

// Name returns the gauge's "<layer>.<metric>" name.
func (g Gauge) Name() string { return gaugeNames[g] }

// counterShards spreads hot counters across cachelines so concurrent
// simulated threads do not serialize on one atomic word.
const counterShards = 16

type counterShard struct {
	v [numCounters]atomic.Int64
	_ [64]byte // keep neighbouring shards off the same cacheline
}

// Recorder is one telemetry sink. The nil *Recorder is a valid no-op sink:
// every method nil-checks its receiver, so instrumented layers call
// unconditionally.
type Recorder struct {
	counters [counterShards]counterShard
	gauges   [numGauges]atomic.Int64
	hists    [numOps]histogram
	traces   traceTable
}

// New returns an empty enabled recorder.
func New() *Recorder { return &Recorder{} }

// active is the process-wide recorder captured by nvm.New at device
// creation; nil means telemetry is off (the default).
var active atomic.Pointer[Recorder]

// Enable installs (and returns) a fresh process-wide recorder. Devices
// created afterwards attach to it.
func Enable() *Recorder {
	r := New()
	active.Store(r)
	return r
}

// Disable removes the process-wide recorder; devices created afterwards are
// unobserved.
func Disable() { active.Store(nil) }

// Active returns the current process-wide recorder, or nil when disabled.
func Active() *Recorder { return active.Load() }

// shardIdx picks a counter shard from the calling goroutine's stack address:
// distinct goroutines live on distinct stacks, so concurrent incrementers
// spread over shards without any thread-local storage.
func shardIdx() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe)) >> 10 % counterShards)
}

// maxInt64 is the saturation ceiling for counters and histogram cells:
// monotonic values pin there instead of wrapping negative, so snapshot
// deltas stay non-negative no matter how long a run accumulates.
const maxInt64 = int64(^uint64(0) >> 1)

// satAdd returns a+b saturating at maxInt64 (both operands non-negative).
func satAdd(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return maxInt64
}

// Inc adds 1 to a counter.
func (r *Recorder) Inc(c Counter) {
	if r == nil {
		return
	}
	v := &r.counters[shardIdx()].v[c]
	if v.Add(1) < 0 {
		v.Store(maxInt64)
	}
}

// Add adds n to a counter. Negative n is ignored (counters are monotonic);
// a shard that overflows pins at maxInt64 rather than wrapping.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil || n <= 0 {
		return
	}
	v := &r.counters[shardIdx()].v[c]
	if v.Add(n) < 0 {
		v.Store(maxInt64)
	}
}

// Max raises a gauge to v if v exceeds its current value.
func (r *Recorder) Max(g Gauge, v int64) {
	if r == nil {
		return
	}
	for {
		cur := r.gauges[g].Load()
		if v <= cur || r.gauges[g].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe records one operation latency (simulated nanoseconds) in the op's
// log-bucketed histogram.
func (r *Recorder) Observe(op Op, ns int64) {
	if r == nil {
		return
	}
	r.hists[op].observe(ns)
}

// TraceOp appends one completed operation to the calling thread's bounded
// trace ring.
func (r *Recorder) TraceOp(tid int, op Op, startNS, durNS int64) {
	if r == nil {
		return
	}
	r.traces.record(tid, op, startNS, durNS)
}

// counterTotal sums a counter across shards, saturating at maxInt64 so a
// long-lived recorder reports a pinned ceiling instead of a wrapped negative.
func (r *Recorder) counterTotal(c Counter) int64 {
	var t int64
	for i := range r.counters {
		t = satAdd(t, r.counters[i].v[c].Load())
	}
	return t
}

// Reset zeroes every counter, gauge, histogram and trace ring.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.counters {
		for c := range r.counters[i].v {
			r.counters[i].v[c].Store(0)
		}
	}
	for g := range r.gauges {
		r.gauges[g].Store(0)
	}
	for op := range r.hists {
		r.hists[op].reset()
	}
	r.traces.reset()
}
