package baselines

import (
	"zofs/internal/byteflow"
	"zofs/internal/coffer"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

var _ vfs.FileSystem = (*Engine)(nil)

// permCheck applies the Unix permission check a kernel FS performs on each
// open/namespace operation.
func permCheck(th *proc.Thread, ino *Inode, write bool) error {
	if !coffer.Access(ino.Mode, ino.UID, ino.GID, th.Proc.UID(), th.Proc.GID(), write) {
		return vfs.ErrPerm
	}
	return nil
}

// Create makes (or truncates) a regular file.
func (e *Engine) Create(th *proc.Thread, path string, mode coffer.Mode) (vfs.Handle, error) {
	e.enter(th, false)
	parent, base, err := e.lookupParent(th, path)
	if err != nil {
		return nil, err
	}
	if err := permCheck(th, parent, true); err != nil {
		return nil, err
	}
	e.access(th, parent, true)
	parent.Lock.Lock(th.Clk)
	defer parent.Lock.Unlock(th.Clk)
	if v, exists := parent.children.Load(base); exists {
		ino := v.(*Inode)
		if ino.Typ == vfs.TypeDir {
			return nil, vfs.ErrIsDir
		}
		e.access(th, ino, true)
		e.truncateLocked(th, ino, 0)
		e.cfg.MetaCommit(e, th, 1)
		return &bHandle{e: e, ino: ino, flags: vfs.O_RDWR}, nil
	}
	ino := e.newInode(vfs.TypeRegular, mode, th.Proc.UID(), th.Proc.GID())
	ino.inoPage = e.AllocPage(th) // inode-table block, through the allocator
	parent.children.Store(base, ino)
	// Durable create: dentry + inode (two objects).
	e.cfg.MetaCommit(e, th, 2)
	e.access(th, ino, true)
	return &bHandle{e: e, ino: ino, flags: vfs.O_RDWR}, nil
}

// Open opens an existing file.
func (e *Engine) Open(th *proc.Thread, path string, flags int) (vfs.Handle, error) {
	e.enter(th, flags&vfs.O_ACCESS == vfs.O_RDONLY)
	write := flags&vfs.O_ACCESS != vfs.O_RDONLY
	ino, err := e.lookup(th, path)
	if err != nil {
		if err == vfs.ErrNotExist && flags&vfs.O_CREATE != 0 {
			return e.Create(th, path, 0o644)
		}
		return nil, err
	}
	if err := followFinal(path, ino); err != nil {
		return nil, err
	}
	if flags&vfs.O_CREATE != 0 && flags&vfs.O_EXCL != 0 {
		return nil, vfs.ErrExist
	}
	if err := permCheck(th, ino, write); err != nil {
		return nil, err
	}
	if ino.Typ == vfs.TypeDir && write {
		return nil, vfs.ErrIsDir
	}
	e.access(th, ino, write)
	if flags&vfs.O_TRUNC != 0 && ino.Typ == vfs.TypeRegular {
		ino.Lock.Lock(th.Clk)
		e.truncateLocked(th, ino, 0)
		ino.Lock.Unlock(th.Clk)
		e.cfg.MetaCommit(e, th, 1)
	}
	return &bHandle{e: e, ino: ino, flags: flags}, nil
}

// Mkdir creates a directory.
func (e *Engine) Mkdir(th *proc.Thread, path string, mode coffer.Mode) error {
	e.enter(th, false)
	parent, base, err := e.lookupParent(th, path)
	if err != nil {
		return err
	}
	if err := permCheck(th, parent, true); err != nil {
		return err
	}
	e.access(th, parent, true)
	parent.Lock.Lock(th.Clk)
	defer parent.Lock.Unlock(th.Clk)
	if _, exists := parent.children.Load(base); exists {
		return vfs.ErrExist
	}
	dir := e.newInode(vfs.TypeDir, mode, th.Proc.UID(), th.Proc.GID())
	dir.inoPage = e.AllocPage(th)
	parent.children.Store(base, dir)
	e.cfg.MetaCommit(e, th, 2)
	return nil
}

// Unlink removes a file or symlink.
func (e *Engine) Unlink(th *proc.Thread, path string) error {
	e.enter(th, false)
	parent, base, err := e.lookupParent(th, path)
	if err != nil {
		return err
	}
	if err := permCheck(th, parent, true); err != nil {
		return err
	}
	e.access(th, parent, true)
	parent.Lock.Lock(th.Clk)
	defer parent.Lock.Unlock(th.Clk)
	v, ok := parent.children.Load(base)
	if !ok {
		return vfs.ErrNotExist
	}
	ino := v.(*Inode)
	if ino.Typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	e.access(th, ino, true)
	parent.children.Delete(base)
	e.cfg.MetaCommit(e, th, 2)
	e.freeBlocks(th, ino)
	if ino.inoPage != 0 {
		e.FreePage(th, ino.inoPage)
	}
	return nil
}

// Rmdir removes an empty directory.
func (e *Engine) Rmdir(th *proc.Thread, path string) error {
	e.enter(th, false)
	parent, base, err := e.lookupParent(th, path)
	if err != nil {
		return err
	}
	parent.Lock.Lock(th.Clk)
	defer parent.Lock.Unlock(th.Clk)
	v, ok := parent.children.Load(base)
	if !ok {
		return vfs.ErrNotExist
	}
	ino := v.(*Inode)
	if ino.Typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	empty := true
	ino.children.Range(func(_, _ any) bool { empty = false; return false })
	if !empty {
		return vfs.ErrNotEmpty
	}
	parent.children.Delete(base)
	e.cfg.MetaCommit(e, th, 2)
	return nil
}

// Rename moves a file or directory.
func (e *Engine) Rename(th *proc.Thread, oldPath, newPath string) error {
	e.enter(th, false)
	if oldPath == newPath {
		return nil
	}
	sp, sb, err := e.lookupParent(th, oldPath)
	if err != nil {
		return err
	}
	dp, db, err := e.lookupParent(th, newPath)
	if err != nil {
		return err
	}
	lockPair(th, sp, dp)
	defer unlockPair(th, sp, dp)
	v, ok := sp.children.Load(sb)
	if !ok {
		return vfs.ErrNotExist
	}
	ino := v.(*Inode)
	if old, exists := dp.children.Load(db); exists {
		oldIno := old.(*Inode)
		if oldIno.Typ == vfs.TypeDir {
			return vfs.ErrExist
		}
		e.freeBlocks(th, oldIno)
	}
	dp.children.Store(db, ino)
	sp.children.Delete(sb)
	// Rename journals both directories plus the inode.
	e.cfg.MetaCommit(e, th, 3)
	return nil
}

func lockPair(th *proc.Thread, a, b *Inode) {
	switch {
	case a == b:
		a.Lock.Lock(th.Clk)
	case a.ID < b.ID:
		a.Lock.Lock(th.Clk)
		b.Lock.Lock(th.Clk)
	default:
		b.Lock.Lock(th.Clk)
		a.Lock.Lock(th.Clk)
	}
}

func unlockPair(th *proc.Thread, a, b *Inode) {
	a.Lock.Unlock(th.Clk)
	if b != a {
		b.Lock.Unlock(th.Clk)
	}
}

// Stat returns file metadata.
func (e *Engine) Stat(th *proc.Thread, path string) (vfs.FileInfo, error) {
	e.enter(th, true)
	ino, err := e.lookup(th, path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	if err := followFinal(path, ino); err != nil {
		return vfs.FileInfo{}, err
	}
	e.access(th, ino, false)
	ino.mu.Lock()
	defer ino.mu.Unlock()
	return vfs.FileInfo{
		Type: ino.Typ, Mode: ino.Mode, UID: ino.UID, GID: ino.GID,
		Size: ino.size, Nlink: ino.Nlink, Mtime: ino.mtime, Inode: ino.ID,
	}, nil
}

// Chmod changes permission bits (kernel call, Table 9's NOVA row).
func (e *Engine) Chmod(th *proc.Thread, path string, mode coffer.Mode) error {
	e.enter(th, false)
	ino, err := e.lookup(th, path)
	if err != nil {
		return err
	}
	if u := th.Proc.UID(); u != 0 && u != ino.UID {
		return vfs.ErrPerm
	}
	ino.mu.Lock()
	ino.Mode = mode
	ino.mu.Unlock()
	e.cfg.MetaCommit(e, th, 1)
	return nil
}

// Chown changes ownership.
func (e *Engine) Chown(th *proc.Thread, path string, uid, gid uint32) error {
	e.enter(th, false)
	ino, err := e.lookup(th, path)
	if err != nil {
		return err
	}
	if u := th.Proc.UID(); u != 0 {
		_ = u
		return vfs.ErrPerm
	}
	ino.mu.Lock()
	ino.UID, ino.GID = uid, gid
	ino.mu.Unlock()
	e.cfg.MetaCommit(e, th, 1)
	return nil
}

// Symlink creates a symbolic link.
func (e *Engine) Symlink(th *proc.Thread, target, link string) error {
	e.enter(th, false)
	parent, base, err := e.lookupParent(th, link)
	if err != nil {
		return err
	}
	parent.Lock.Lock(th.Clk)
	defer parent.Lock.Unlock(th.Clk)
	if _, exists := parent.children.Load(base); exists {
		return vfs.ErrExist
	}
	ino := e.newInode(vfs.TypeSymlink, 0o777, th.Proc.UID(), th.Proc.GID())
	ino.inoPage = e.AllocPage(th)
	ino.target = target
	ino.size = int64(len(target))
	parent.children.Store(base, ino)
	e.cfg.MetaCommit(e, th, 2)
	return nil
}

// Readlink reads a symlink target.
func (e *Engine) Readlink(th *proc.Thread, path string) (string, error) {
	e.enter(th, true)
	ino, err := e.lookup(th, path)
	if err != nil {
		return "", err
	}
	if ino.Typ != vfs.TypeSymlink {
		return "", vfs.ErrInvalid
	}
	ino.mu.Lock()
	defer ino.mu.Unlock()
	return ino.target, nil
}

// ReadDir lists a directory.
func (e *Engine) ReadDir(th *proc.Thread, path string) ([]vfs.DirEntry, error) {
	e.enter(th, true)
	ino, err := e.lookup(th, path)
	if err != nil {
		return nil, err
	}
	if err := followFinal(path, ino); err != nil {
		return nil, err
	}
	if ino.Typ != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	var out []vfs.DirEntry
	ino.children.Range(func(k, v any) bool {
		c := v.(*Inode)
		th.CPU(perfmodel.CPUSmallOp)
		out = append(out, vfs.DirEntry{Name: k.(string), Type: c.Typ, Inode: c.ID})
		return true
	})
	return out, nil
}

// Truncate resizes a file.
func (e *Engine) Truncate(th *proc.Thread, path string, size int64) error {
	e.enter(th, false)
	ino, err := e.lookup(th, path)
	if err != nil {
		return err
	}
	if err := followFinal(path, ino); err != nil {
		return err
	}
	if ino.Typ != vfs.TypeRegular {
		return vfs.ErrIsDir
	}
	e.access(th, ino, true)
	ino.Lock.Lock(th.Clk)
	defer ino.Lock.Unlock(th.Clk)
	e.truncateLocked(th, ino, size)
	e.cfg.MetaCommit(e, th, 1)
	return nil
}

func (e *Engine) truncateLocked(th *proc.Thread, ino *Inode, size int64) {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	newBlocks := (size + pageSize - 1) / pageSize
	for int64(len(ino.blocks)) > newBlocks {
		pg := ino.blocks[len(ino.blocks)-1]
		ino.blocks = ino.blocks[:len(ino.blocks)-1]
		if pg != 0 {
			e.FreePage(th, pg)
		}
	}
	ino.size = size
	ino.mtime = th.Clk.Now()
}

func (e *Engine) freeBlocks(th *proc.Thread, ino *Inode) {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	for _, pg := range ino.blocks {
		if pg != 0 {
			e.FreePage(th, pg)
		}
	}
	ino.blocks = nil
	ino.size = 0
}

// ---- handle -------------------------------------------------------------------

type bHandle struct {
	e     *Engine
	ino   *Inode
	flags int
}

func (h *bHandle) writable() bool { return h.flags&vfs.O_ACCESS != vfs.O_RDONLY }

// ReadAt reads under the file's read lock: a charged syscall (for kernel
// FSs) plus media reads.
func (h *bHandle) ReadAt(th *proc.Thread, p []byte, off int64) (int, error) {
	h.e.enter(th, true)
	h.e.access(th, h.ino, false)
	h.ino.Lock.RLock(th.Clk)
	defer h.ino.Lock.RUnlock(th.Clk)
	h.ino.mu.Lock()
	size := h.ino.size
	blocks := append([]int64(nil), h.ino.blocks...)
	h.ino.mu.Unlock()
	if off >= size {
		return 0, nil
	}
	if off+int64(len(p)) > size {
		p = p[:size-off]
	}
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) / pageSize
		pOff := (off + int64(n)) % pageSize
		chunk := int(pageSize - pOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		if idx < int64(len(blocks)) && blocks[idx] != 0 {
			h.e.dev.Read(th.Clk, blocks[idx]*pageSize+pOff, p[n:n+chunk])
		} else {
			for i := 0; i < chunk; i++ {
				p[n+i] = 0
			}
		}
		n += chunk
	}
	return n, nil
}

// WriteAt writes under the file's write lock, through the personality's
// data-write policy, then commits the metadata (size/mtime/index).
func (h *bHandle) WriteAt(th *proc.Thread, p []byte, off int64) (int, error) {
	if !h.writable() {
		return 0, vfs.ErrBadFD
	}
	h.e.enter(th, false)
	h.e.access(th, h.ino, true)
	h.ino.Lock.Lock(th.Clk)
	defer h.ino.Lock.Unlock(th.Clk)
	wprev := th.Clk.SwapWriteClass(uint8(byteflow.ClassData))
	defer th.Clk.SetWriteClass(wprev)
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) / pageSize
		pOff := (off + int64(n)) % pageSize
		chunk := int(pageSize - pOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		h.e.cfg.WriteBlock(h.e, th, h.ino, idx, p[n:n+chunk], pOff)
		n += chunk
	}
	h.ino.mu.Lock()
	if end := off + int64(n); end > h.ino.size {
		h.ino.size = end
	}
	h.ino.mtime = th.Clk.Now()
	h.ino.mu.Unlock()
	if h.e.cfg.PostWrite != nil {
		h.e.cfg.PostWrite(h.e, th, h.ino, n)
	}
	return n, nil
}

// Append writes at EOF under the write lock.
func (h *bHandle) Append(th *proc.Thread, p []byte) (int64, error) {
	if !h.writable() {
		return 0, vfs.ErrBadFD
	}
	h.e.enter(th, false)
	h.e.access(th, h.ino, true)
	h.ino.Lock.Lock(th.Clk)
	defer h.ino.Lock.Unlock(th.Clk)
	h.ino.mu.Lock()
	off := h.ino.size
	h.ino.mu.Unlock()
	wprev := th.Clk.SwapWriteClass(uint8(byteflow.ClassData))
	defer th.Clk.SetWriteClass(wprev)
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) / pageSize
		pOff := (off + int64(n)) % pageSize
		chunk := int(pageSize - pOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		h.e.cfg.WriteBlock(h.e, th, h.ino, idx, p[n:n+chunk], pOff)
		n += chunk
	}
	h.ino.mu.Lock()
	h.ino.size = off + int64(n)
	h.ino.mtime = th.Clk.Now()
	h.ino.mu.Unlock()
	if h.e.cfg.PostWrite != nil {
		h.e.cfg.PostWrite(h.e, th, h.ino, n)
	}
	return off, nil
}

// Stat returns current metadata.
func (h *bHandle) Stat(th *proc.Thread) (vfs.FileInfo, error) {
	h.e.enter(th, true)
	h.ino.mu.Lock()
	defer h.ino.mu.Unlock()
	return vfs.FileInfo{
		Type: h.ino.Typ, Mode: h.ino.Mode, UID: h.ino.UID, GID: h.ino.GID,
		Size: h.ino.size, Nlink: h.ino.Nlink, Mtime: h.ino.mtime, Inode: h.ino.ID,
	}, nil
}

// Sync flushes pending state (kernel FSs here are synchronous; Strata
// digests its log, Ext4-DAX replays its jbd2-commit + mapping writeback).
func (h *bHandle) Sync(th *proc.Thread) error {
	if h.e.cfg.Access != nil {
		h.e.cfg.Access(h.e, th, h.ino, true)
	}
	if h.e.cfg.Sync != nil {
		h.e.cfg.Sync(h.e, th, h.ino)
	}
	return nil
}

// Close releases the handle.
func (h *bHandle) Close(*proc.Thread) error { return nil }

// blockFor returns (allocating if needed) the device page for a block.
func (e *Engine) blockFor(th *proc.Thread, ino *Inode, idx int64, zeroNew bool) int64 {
	ino.mu.Lock()
	for int64(len(ino.blocks)) <= idx {
		ino.blocks = append(ino.blocks, 0)
	}
	pg := ino.blocks[idx]
	ino.mu.Unlock()
	if pg != 0 {
		return pg
	}
	pg = e.AllocPage(th)
	if zeroNew {
		e.dev.Zero(th.Clk, pg*pageSize, pageSize)
	}
	ino.mu.Lock()
	ino.blocks[idx] = pg
	ino.mu.Unlock()
	return pg
}
