package baselines_test

import (
	"testing"

	"zofs/internal/baselines"
	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/vfs"
	"zofs/internal/vfs/vfstest"
)

func factoryFor(build func(dev *nvm.Device) *baselines.Engine) vfstest.Factory {
	return func(t *testing.T) (vfs.FileSystem, *proc.Thread) {
		dev := nvm.New(nvm.Config{Size: 256 << 20, TrackPersistence: false})
		p := proc.NewProcess(dev, 0, 0)
		return build(dev), p.NewThread()
	}
}

func TestPMFSConformance(t *testing.T) {
	vfstest.Run(t, factoryFor(func(dev *nvm.Device) *baselines.Engine {
		return baselines.NewPMFS(dev, baselines.PMFSOptions{})
	}))
}

func TestPMFSNocacheConformance(t *testing.T) {
	vfstest.Run(t, factoryFor(func(dev *nvm.Device) *baselines.Engine {
		return baselines.NewPMFS(dev, baselines.PMFSOptions{Nocache: true})
	}))
}

func TestNOVAConformance(t *testing.T) {
	vfstest.Run(t, factoryFor(func(dev *nvm.Device) *baselines.Engine {
		return baselines.NewNOVA(dev, baselines.NOVAOptions{})
	}))
}

func TestNOVAiConformance(t *testing.T) {
	vfstest.Run(t, factoryFor(func(dev *nvm.Device) *baselines.Engine {
		return baselines.NewNOVA(dev, baselines.NOVAOptions{InPlace: true})
	}))
}

func TestStrataConformance(t *testing.T) {
	vfstest.Run(t, factoryFor(baselines.NewStrata))
}

func TestExt4DAXConformance(t *testing.T) {
	vfstest.Run(t, factoryFor(baselines.NewExt4DAX))
}

// TestKernelFSChargesSyscalls verifies the central cost asymmetry: kernel
// file systems pay a syscall per op, Strata's data path does not.
func TestKernelFSChargesSyscalls(t *testing.T) {
	perOp := func(e *baselines.Engine, p *proc.Process) int64 {
		th := p.NewThread()
		h, err := e.Create(th, "/f", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		h.WriteAt(th, buf, 0)
		start := th.Clk.Now()
		const ops = 20
		for i := 0; i < ops; i++ {
			h.WriteAt(th, buf, 0)
		}
		return (th.Clk.Now() - start) / ops
	}
	devK := nvm.New(nvm.Config{Size: 64 << 20})
	pK := proc.NewProcess(devK, 0, 0)
	kcost := perOp(baselines.NewPMFS(devK, baselines.PMFSOptions{Nocache: true}), pK)

	devU := nvm.New(nvm.Config{Size: 64 << 20})
	pU := proc.NewProcess(devU, 0, 0)
	ucost := perOp(baselines.NewStrata(devU), pU)

	if kcost <= ucost {
		t.Fatalf("kernel FS op (%d ns) should cost more than user-space log write (%d ns)", kcost, ucost)
	}
	// Strata spends part of the saved syscall on its own user-level work
	// (lease validation + log-record construction), so the visible gap is
	// a fraction of the full syscall cost.
	if kcost-ucost < perfmodel.Syscall/4 {
		t.Fatalf("syscall gap too small: %d vs %d", kcost, ucost)
	}
}

// TestStrataSharingCollapse reproduces the Table 2 effect: alternating
// appends from two processes force digestion and lease handoff on every
// operation, inflating latency by more than an order of magnitude.
func TestStrataSharingCollapse(t *testing.T) {
	dev := nvm.New(nvm.Config{Size: 256 << 20})
	e := baselines.NewStrata(dev)
	p1 := proc.NewProcess(dev, 0, 0)
	p2 := proc.NewProcess(dev, 0, 0)
	t1, t2 := p1.NewThread(), p2.NewThread()

	h1, err := e.Create(t1, "/shared", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.Open(t2, "/shared", vfs.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)

	// Warm single-process appends.
	start := t1.Clk.Now()
	const ops = 20
	for i := 0; i < ops; i++ {
		h1.Append(t1, buf)
	}
	solo := (t1.Clk.Now() - start) / ops

	// Alternating appends between two processes.
	s1, s2 := t1.Clk.Now(), t2.Clk.Now()
	for i := 0; i < ops; i++ {
		h1.Append(t1, buf)
		h2.Append(t2, buf)
	}
	shared := ((t1.Clk.Now() - s1) + (t2.Clk.Now() - s2)) / (2 * ops)
	if shared < 5*solo {
		t.Fatalf("sharing should collapse Strata: solo=%dns shared=%dns", solo, shared)
	}
}

// TestGlobalVsPerCoreAllocator verifies PMFS's allocator serializes in
// virtual time while NOVA's per-core allocator does not.
func TestGlobalVsPerCoreAllocator(t *testing.T) {
	parallelAppendTime := func(e *baselines.Engine, p *proc.Process) int64 {
		const workers = 8
		done := make(chan int64, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				th := p.NewThread()
				h, _ := e.Create(th, "/f"+string(rune('a'+w)), 0o644)
				buf := make([]byte, 4096)
				for i := 0; i < 50; i++ {
					h.Append(th, buf)
				}
				done <- th.Clk.Now()
			}(w)
		}
		var max int64
		for w := 0; w < workers; w++ {
			if v := <-done; v > max {
				max = v
			}
		}
		return max
	}
	devP := nvm.New(nvm.Config{Size: 512 << 20, TrackPersistence: false})
	pmfsT := parallelAppendTime(baselines.NewPMFS(devP, baselines.PMFSOptions{Nocache: true}), proc.NewProcess(devP, 0, 0))
	devN := nvm.New(nvm.Config{Size: 512 << 20, TrackPersistence: false})
	novaT := parallelAppendTime(baselines.NewNOVA(devN, baselines.NOVAOptions{}), proc.NewProcess(devN, 0, 0))
	// Both have costs; we only require that the global allocator doesn't
	// come out *cheaper* under parallel allocation pressure.
	if pmfsT < novaT/2 {
		t.Fatalf("global allocator unexpectedly faster: pmfs=%d nova=%d", pmfsT, novaT)
	}
}

// TestFig8VariantOrdering checks NOVA-noindex beats NOVA on overwrites.
func TestFig8VariantOrdering(t *testing.T) {
	perOp := func(e *baselines.Engine, p *proc.Process) int64 {
		th := p.NewThread()
		h, _ := e.Create(th, "/f", 0o644)
		buf := make([]byte, 4096)
		h.WriteAt(th, buf, 0)
		start := th.Clk.Now()
		const ops = 30
		for i := 0; i < ops; i++ {
			h.WriteAt(th, buf, 0)
		}
		return (th.Clk.Now() - start) / ops
	}
	mk := func(o baselines.NOVAOptions) int64 {
		dev := nvm.New(nvm.Config{Size: 512 << 20, TrackPersistence: false})
		return perOp(baselines.NewNOVA(dev, o), proc.NewProcess(dev, 0, 0))
	}
	nova := mk(baselines.NOVAOptions{})
	noindex := mk(baselines.NOVAOptions{NoIndex: true})
	if noindex >= nova {
		t.Fatalf("index update should cost: nova=%d noindex=%d", nova, noindex)
	}
	// PMFS-nocache beats stock PMFS (non-temporal vs clwb, Figure 8).
	perPMFS := func(o baselines.PMFSOptions) int64 {
		dev := nvm.New(nvm.Config{Size: 512 << 20, TrackPersistence: false})
		return perOp(baselines.NewPMFS(dev, o), proc.NewProcess(dev, 0, 0))
	}
	stock := perPMFS(baselines.PMFSOptions{})
	nocache := perPMFS(baselines.PMFSOptions{Nocache: true})
	if nocache >= stock {
		t.Fatalf("nocache should beat stock PMFS: %d vs %d", nocache, stock)
	}
}
