// Package baselines implements the four NVM file systems the paper
// evaluates ZoFS against — PMFS, NOVA (with its NOVAi and -noindex
// variants), Strata and Ext4-DAX — as instances of one kernel-FS engine
// with pluggable allocator, data-write and metadata-commit policies.
//
// Fidelity notes: every performance-relevant media access (data writes,
// copy-on-write copies, journal/log records, digestion double-writes) is
// physically performed on the simulated device and charged to the calling
// thread's virtual clock; the namespace index (dentry cache) is a volatile
// mirror, as the real systems' dcache is in DRAM. Kernel file systems
// charge one syscall per operation; Strata's user-space paths do not.
// Crash recovery is exercised for ZoFS (the paper's subject), not for the
// baselines.
package baselines

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"zofs/internal/byteflow"
	"zofs/internal/coffer"
	"zofs/internal/lockprof"
	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/simclock"
	"zofs/internal/vfs"
)

const pageSize = nvm.PageSize

// globalAllocHold is the time a global-allocator FS (PMFS, Ext4) holds its
// allocation lock per page: free-list search, bitmap update and journaling
// the allocation record.
const globalAllocHold = 350

// Config is a file system personality.
type Config struct {
	Name string
	// UserSpace skips the per-operation syscall (Strata's common paths).
	UserSpace bool
	// ReadInUserSpace skips the syscall for reads only.
	ReadInUserSpace bool
	// VFS is extra per-operation CPU (generic VFS dispatch, Ext4).
	VFS int64
	// GlobalAlloc serializes page allocation on one lock (PMFS, Ext4);
	// otherwise allocation is per-thread with pre-split shares (NOVA,
	// Strata).
	GlobalAlloc bool
	// WriteBlock writes one (possibly partial) block of file data.
	WriteBlock func(e *Engine, th *proc.Thread, ino *Inode, blk int64, data []byte, off int64)
	// MetaCommit makes one metadata operation durable (journal/log write).
	// n is the number of distinct objects touched (dentry+inode = 2 …).
	MetaCommit func(e *Engine, th *proc.Thread, n int)
	// PostWrite runs after each data write (index updates etc.).
	PostWrite func(e *Engine, th *proc.Thread, ino *Inode, bytes int)
	// Access intercepts every inode access for cross-process coordination
	// (Strata's lease + digestion).
	Access func(e *Engine, th *proc.Thread, ino *Inode, write bool)
	// Sync implements fsync beyond the default (the kernel FSs modeled here
	// persist synchronously on the write path, so the default is a no-op
	// past the Access hook).
	Sync func(e *Engine, th *proc.Thread, ino *Inode)
}

// Inode is a baseline file system inode. Data pages live on the device;
// the block map and namespace links are volatile mirrors.
type Inode struct {
	ID    int64
	Typ   vfs.FileType
	Mode  coffer.Mode
	UID   uint32
	GID   uint32
	Nlink uint32
	// inoPage is the on-device inode-table page backing this inode.
	inoPage int64

	Lock lockprof.RWMutex // per-file readers-writer lock

	mu     sync.Mutex // protects the fields below
	size   int64
	mtime  int64
	blocks []int64
	target string
	// synced is the fsync writeback watermark: blocks below it were covered
	// by a previous Sync, keeping fsync O(new blocks) rather than O(file).
	synced int

	children *sync.Map // name -> *Inode (directories)

	// Strata log state.
	logOwner   atomic.Int64 // PID of the process whose log holds updates
	logPending atomic.Int64 // undigested bytes
}

// Size returns the current file size.
func (ino *Inode) Size() int64 {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	return ino.size
}

// Engine is the shared kernel-FS machinery.
type Engine struct {
	cfg Config
	dev *nvm.Device

	root *Inode

	nextIno  atomic.Int64
	nextPage atomic.Int64 // bump allocator over the data region
	freeMu   lockprof.Mutex
	freeList []int64

	pools   sync.Map // tid -> *pagePool (per-thread allocators)
	poolSz  int64
	journal atomic.Int64 // rotating journal write offset
	jStart  int64
	jBytes  int64
	jMu     sync.Mutex // serializes journal byte copies across ring wrap

	// Strata: per-process log usage and the single kernel digestion
	// worker (digests from different processes serialize on it).
	procPending sync.Map // pid -> *atomic.Int64
	digestRes   simclock.Resource
}

// procLog returns a process's pending-log counter.
func (e *Engine) procLog(pid int) *atomic.Int64 {
	v, _ := e.procPending.LoadOrStore(pid, &atomic.Int64{})
	return v.(*atomic.Int64)
}

type pagePool struct {
	pages []int64
}

// NewEngine formats a device for a baseline FS.
func NewEngine(dev *nvm.Device, cfg Config) *Engine {
	e := &Engine{cfg: cfg, dev: dev}
	e.freeMu.Init("baseline.freelist", cfg.Name)
	// First 1024 pages are the journal/log area.
	e.jStart = 0
	e.jBytes = 1024 * pageSize
	e.nextPage.Store(1024)
	e.poolSz = 4096
	e.root = e.newInode(vfs.TypeDir, 0o755, 0, 0)
	return e
}

// Name implements vfs.FileSystem.
func (e *Engine) Name() string { return e.cfg.Name }

// Device returns the backing device.
func (e *Engine) Device() *nvm.Device { return e.dev }

func (e *Engine) newInode(typ vfs.FileType, mode coffer.Mode, uid, gid uint32) *Inode {
	ino := &Inode{
		ID: e.nextIno.Add(1), Typ: typ, Mode: mode, UID: uid, GID: gid, Nlink: 1,
	}
	ino.Lock.Init("baseline.inode", strconv.FormatInt(ino.ID, 10))
	if typ == vfs.TypeDir {
		ino.children = &sync.Map{}
	}
	return ino
}

// enter charges the per-operation entry cost.
func (e *Engine) enter(th *proc.Thread, read bool) {
	if !e.cfg.UserSpace && !(read && e.cfg.ReadInUserSpace) {
		th.Syscall()
	}
	th.CPU(e.cfg.VFS)
}

// ---- allocation ----------------------------------------------------------------

// AllocPage returns a free page, through the configured allocator.
func (e *Engine) AllocPage(th *proc.Thread) int64 {
	if e.cfg.GlobalAlloc {
		// One big allocator lock: the PMFS behaviour that stops scaling
		// after ~4 threads (§6.1, Fig. 7d/7g). The hold covers the free
		// list/bitmap search and journaling the allocation.
		e.freeMu.Lock(th.Clk)
		th.CPU(globalAllocHold)
		var pg int64
		if n := len(e.freeList); n > 0 {
			pg = e.freeList[n-1]
			e.freeList = e.freeList[:n-1]
		} else {
			pg = e.nextPage.Add(1) - 1
		}
		e.freeMu.Unlock(th.Clk)
		return pg
	}
	// Per-thread pool (NOVA-style per-core allocator): refills are rare
	// because each pool takes a large share.
	v, _ := e.pools.LoadOrStore(th.TID, &pagePool{})
	pool := v.(*pagePool)
	th.CPU(perfmodel.CPUSmallOp)
	if len(pool.pages) == 0 {
		start := e.nextPage.Add(e.poolSz) - e.poolSz
		for pg := start + e.poolSz - 1; pg >= start; pg-- {
			pool.pages = append(pool.pages, pg)
		}
	}
	pg := pool.pages[len(pool.pages)-1]
	pool.pages = pool.pages[:len(pool.pages)-1]
	return pg
}

// FreePage returns a page to the allocator.
func (e *Engine) FreePage(th *proc.Thread, pg int64) {
	if e.cfg.GlobalAlloc {
		// Frees pay the same global-lock serialization as allocations.
		e.freeMu.Lock(th.Clk)
		th.CPU(globalAllocHold)
		e.freeList = append(e.freeList, pg)
		e.freeMu.Unlock(th.Clk)
		return
	}
	v, _ := e.pools.LoadOrStore(th.TID, &pagePool{})
	pool := v.(*pagePool)
	pool.pages = append(pool.pages, pg)
}

// JournalWrite appends n bytes to the journal/log area and returns the
// device offset written (media cost charged).
func (e *Engine) JournalWrite(th *proc.Thread, buf []byte) int64 {
	off := e.jStart + (e.journal.Add(int64(len(buf)))-int64(len(buf)))%(e.jBytes-int64(len(buf))-8)
	if off < 0 {
		off = e.jStart
	}
	// The cursor claim above is atomic, but once the ring wraps two
	// in-flight commits can alias the same slot; exclude the byte copy.
	// Virtual time is charged per-thread inside WriteNT, so this real-time
	// lock does not perturb simulated results.
	e.jMu.Lock()
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassJournal))
	e.dev.WriteNT(th.Clk, off, buf)
	th.Clk.SetWriteClass(prev)
	e.jMu.Unlock()
	return off
}

// ---- namespace -----------------------------------------------------------------

// lookup walks a cleaned absolute path through the volatile dcache.
// A symlink anywhere but the final component is expanded and reported to
// the dispatcher via SymlinkError, keeping the vfs contract uniform.
func (e *Engine) lookup(th *proc.Thread, path string) (*Inode, error) {
	ino := e.root
	if path == "/" {
		return ino, nil
	}
	comps := strings.Split(path[1:], "/")
	for i, comp := range comps {
		th.CPU(perfmodel.DCacheLookup)
		if ino.Typ != vfs.TypeDir {
			return nil, vfs.ErrNotDir
		}
		v, ok := ino.children.Load(comp)
		if !ok {
			return nil, vfs.ErrNotExist
		}
		child := v.(*Inode)
		if child.Typ == vfs.TypeSymlink && i < len(comps)-1 {
			child.mu.Lock()
			target := child.target
			child.mu.Unlock()
			dir := "/" + strings.Join(comps[:i], "/")
			var base string
			if strings.HasPrefix(target, "/") {
				base = target
			} else {
				base = dir + "/" + target
			}
			rest := strings.Join(comps[i+1:], "/")
			return nil, &vfs.SymlinkError{Path: vfs.Clean(base + "/" + rest)}
		}
		ino = child
	}
	return ino, nil
}

// followFinal expands a symlink at the final path component.
func followFinal(path string, ino *Inode) error {
	if ino.Typ != vfs.TypeSymlink {
		return nil
	}
	ino.mu.Lock()
	target := ino.target
	ino.mu.Unlock()
	if strings.HasPrefix(target, "/") {
		return &vfs.SymlinkError{Path: vfs.Clean(target)}
	}
	dir, _ := vfs.SplitPath(path)
	return &vfs.SymlinkError{Path: vfs.Clean(dir + "/" + target)}
}

// lookupParent resolves the parent directory of path.
func (e *Engine) lookupParent(th *proc.Thread, path string) (*Inode, string, error) {
	dir, base := vfs.SplitPath(path)
	if base == "" {
		return nil, "", vfs.ErrInvalid
	}
	ino, err := e.lookup(th, dir)
	if err != nil {
		return nil, "", err
	}
	if ino.Typ != vfs.TypeDir {
		return nil, "", vfs.ErrNotDir
	}
	return ino, base, nil
}

func (e *Engine) access(th *proc.Thread, ino *Inode, write bool) {
	if e.cfg.Access != nil {
		e.cfg.Access(e, th, ino, write)
	}
}
