package baselines

import (
	"zofs/internal/byteflow"
	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
)

// The four baseline personalities (paper §2.1, §2.2, §6). Each differs in
// exactly the dimensions the paper's analysis attributes performance to:
// where the code runs (kernel vs user space), the allocator (global vs
// per-core), the data-write policy (in-place NT, in-place clwb, CoW,
// log-then-digest) and the metadata durability mechanism (undo journal,
// per-inode logs + radix index, dual logs + digestion, jbd2).

const (
	logEntrySize = 64 // one journal/log record
	// CR0WPToggle is PMFS's write-window open/close (two CR0 writes, §3.4.1).
	CR0WPToggle = 2 * 90
	// jbd2BlockBytes is the amortized jbd2 journal traffic per metadata
	// object (descriptor+data, group-committed).
	jbd2BlockBytes = 1024
	// novaIndexCPU is the radix-tree index update per written page (the
	// Figure 8 "-noindex" delta).
	novaIndexCPU = 350
	// novaLogRecordCPU is NOVA's per-record work: entry construction,
	// CRC32 checksum over entry + name, timestamping (calibrated to the
	// paper's append/create deltas in Table 2).
	novaLogRecordCPU = 600
	// novaMetaEntry is a metadata log entry (dentry or inode update).
	novaMetaEntry = 128
	// strataLogShare is the per-process log budget before digestion is
	// forced even without sharing.
	strataLogShare = 16 << 20
	// strataLogEntryCPU is Strata's per-record user-level logging work
	// (record construction, hashing, in-memory index update).
	strataLogEntryCPU = 800
	// strataLeaseCheck is LibFS's per-operation overhead: validate the
	// kernel-granted lease and probe the process-private log before
	// touching shared state (§2.2).
	strataLeaseCheck = 550
	// strataDigestPer4K is the digestion worker's cost per 4KB log entry:
	// read the entry, apply it (write to the final location) and update
	// kernel metadata — the double-write.
	strataDigestPer4K = 1500
	// logTailCommit is the 8-byte log-tail pointer update + fence that
	// commits a log-structured record (NOVA, Strata).
	logTailCommit = 8
)

// PMFSOptions selects PMFS variants.
type PMFSOptions struct {
	// Nocache uses non-temporal stores for data instead of cached writes
	// followed by clwb (the PMFS-nocache variant of Figure 8).
	Nocache bool
}

// NewPMFS builds the PMFS baseline: kernel-space, undo journal for
// metadata, one global allocator (stops scaling after ~4 threads, §6.1),
// cached writes + clwb by default.
func NewPMFS(dev *nvm.Device, opts PMFSOptions) *Engine {
	name := "PMFS"
	if opts.Nocache {
		name = "PMFS-nocache"
	}
	return NewEngine(dev, Config{
		Name:        name,
		GlobalAlloc: true,
		WriteBlock: func(e *Engine, th *proc.Thread, ino *Inode, blk int64, data []byte, off int64) {
			pg := e.blockFor(th, ino, blk, len(data) < pageSize)
			th.CPU(CR0WPToggle) // open/close the CR0.WP write window
			if opts.Nocache {
				e.dev.WriteNT(th.Clk, pg*pageSize+off, data)
			} else {
				e.dev.Write(th.Clk, pg*pageSize+off, data)
				e.dev.Flush(th.Clk, pg*pageSize+off, int64(len(data)))
			}
		},
		MetaCommit: func(e *Engine, th *proc.Thread, n int) {
			th.CPU(CR0WPToggle)
			// Undo journal: one record per object, then a commit record.
			for i := 0; i < n; i++ {
				th.CPU(perfmodel.JournalEntry)
				e.JournalWrite(th, make([]byte, logEntrySize))
			}
			e.JournalWrite(th, make([]byte, 8))
			e.dev.Fence(th.Clk)
		},
		// Every write updates journaled metadata (size/mtime) — PMFS
		// journals all metadata changes.
		PostWrite: func(e *Engine, th *proc.Thread, ino *Inode, bytes int) {
			th.CPU(CR0WPToggle + perfmodel.JournalEntry)
			e.JournalWrite(th, make([]byte, logEntrySize))
			e.JournalWrite(th, make([]byte, 8))
			e.dev.Fence(th.Clk)
		},
	})
}

// NOVAOptions selects NOVA variants (Figure 8).
type NOVAOptions struct {
	// InPlace is NOVAi: aligned overwrites update data in place under a
	// metadata journal instead of copy-on-write.
	InPlace bool
	// NoIndex skips the in-DRAM radix index update per write (only valid
	// for pure overwrites; used in the Figure 8 breakdown).
	NoIndex bool
}

// NewNOVA builds the NOVA baseline: kernel-space log-structured FS with
// per-core allocators, copy-on-write data, per-inode logs and a DRAM radix
// index.
func NewNOVA(dev *nvm.Device, opts NOVAOptions) *Engine {
	name := "NOVA"
	if opts.InPlace {
		name = "NOVAi"
	}
	if opts.NoIndex {
		name += "-noindex"
	}
	cfg := Config{
		Name:        name,
		GlobalAlloc: false,
		MetaCommit: func(e *Engine, th *proc.Thread, n int) {
			// One checksummed log entry per touched inode log, each
			// committed by a tail-pointer update; operations spanning
			// multiple logs (create, unlink, rename) also write NOVA's
			// circular journal for atomicity, and create-like operations
			// initialize the new inode in the inode table.
			for i := 0; i < n; i++ {
				th.CPU(novaLogRecordCPU)
				e.JournalWrite(th, make([]byte, novaMetaEntry))
				e.JournalWrite(th, make([]byte, logTailCommit))
				e.dev.Fence(th.Clk)
			}
			if n > 1 {
				// Cross-log atomicity journal plus the new inode's
				// initialization in the inode table (create/link paths).
				e.JournalWrite(th, make([]byte, logEntrySize))
				e.JournalWrite(th, make([]byte, logEntrySize))
				e.JournalWrite(th, make([]byte, novaMetaEntry))
				e.dev.Fence(th.Clk)
			}
		},
	}
	cfg.WriteBlock = func(e *Engine, th *proc.Thread, ino *Inode, blk int64, data []byte, off int64) {
		ino.mu.Lock()
		var old int64
		if blk < int64(len(ino.blocks)) {
			old = ino.blocks[blk]
		}
		ino.mu.Unlock()
		switch {
		case old == 0:
			// Fresh block: write new page + log entry + tail commit.
			pg := e.blockFor(th, ino, blk, len(data) < pageSize)
			e.dev.WriteNT(th.Clk, pg*pageSize+off, data)
			th.CPU(novaLogRecordCPU)
			e.JournalWrite(th, make([]byte, logEntrySize))
			e.JournalWrite(th, make([]byte, logTailCommit))
			e.dev.Fence(th.Clk)
		case opts.InPlace:
			// NOVAi: journaled in-place update.
			th.CPU(novaLogRecordCPU)
			e.JournalWrite(th, make([]byte, logEntrySize))
			e.dev.WriteNT(th.Clk, old*pageSize+off, data)
			e.JournalWrite(th, make([]byte, 8)) // commit
		default:
			// Copy-on-write: allocate, merge, persist, swap, free.
			pg := e.AllocPage(th)
			if len(data) < pageSize {
				buf := make([]byte, pageSize)
				e.dev.Read(th.Clk, old*pageSize, buf)
				copy(buf[off:], data)
				e.dev.WriteNT(th.Clk, pg*pageSize, buf)
			} else {
				e.dev.WriteNT(th.Clk, pg*pageSize, data)
			}
			th.CPU(novaLogRecordCPU)
			e.JournalWrite(th, make([]byte, logEntrySize))
			e.JournalWrite(th, make([]byte, logTailCommit))
			e.dev.Fence(th.Clk)
			ino.mu.Lock()
			ino.blocks[blk] = pg
			ino.mu.Unlock()
			e.FreePage(th, old)
		}
	}
	if !opts.NoIndex {
		cfg.PostWrite = func(e *Engine, th *proc.Thread, ino *Inode, bytes int) {
			pages := int64(bytes+pageSize-1) / pageSize
			th.CPU(novaIndexCPU * pages)
		}
	}
	return NewEngine(dev, cfg)
}

// NewExt4DAX builds the Ext4-DAX baseline: a mature kernel FS with DAX
// data paths, a jbd2 metadata journal and generic VFS overhead.
func NewExt4DAX(dev *nvm.Device) *Engine {
	return NewEngine(dev, Config{
		Name:        "Ext4-DAX",
		GlobalAlloc: true,
		VFS:         perfmodel.VFSOverhead,
		WriteBlock: func(e *Engine, th *proc.Thread, ino *Inode, blk int64, data []byte, off int64) {
			pg := e.blockFor(th, ino, blk, len(data) < pageSize)
			e.dev.Write(th.Clk, pg*pageSize+off, data)
			e.dev.Flush(th.Clk, pg*pageSize+off, int64(len(data)))
		},
		MetaCommit: func(e *Engine, th *proc.Thread, n int) {
			// jbd2 journals metadata at block granularity (amortized by
			// group commit), then a commit record.
			for i := 0; i < n; i++ {
				th.CPU(perfmodel.JournalEntry)
				e.JournalWrite(th, make([]byte, jbd2BlockBytes))
			}
			e.JournalWrite(th, make([]byte, logEntrySize))
			e.dev.Fence(th.Clk)
		},
		Sync: func(e *Engine, th *proc.Thread, ino *Inode) {
			// fsync on ext4-DAX: jbd2 commits the running transaction, then
			// dax_writeback_mapping_range walks the file mapping issuing
			// cacheline writeback at page granularity. The DAX write path
			// already persisted every store with clwb, so this second pass
			// re-flushes clean lines — real overhead the persistence
			// auditor reports as redundant flushes.
			th.CPU(perfmodel.JournalEntry)
			e.JournalWrite(th, make([]byte, logEntrySize))
			e.dev.Fence(th.Clk)
			ino.mu.Lock()
			blocks := append([]int64(nil), ino.blocks[min(ino.synced, len(ino.blocks)):]...)
			ino.synced = len(ino.blocks)
			ino.mu.Unlock()
			wprev := th.Clk.SwapWriteClass(uint8(byteflow.ClassData))
			for _, pg := range blocks {
				if pg > 0 {
					e.dev.Flush(th.Clk, pg*pageSize, pageSize)
				}
			}
			th.Clk.SetWriteClass(wprev)
		},
	})
}

// NewStrata builds the Strata baseline (§2.2): updates are logged in user
// space (fast private paths, no syscalls) and digested by a kernel worker.
// Digestion — the double write — is charged when the process's log budget
// fills, and synchronously whenever *another* process needs the file, which
// is what makes shared append/create collapse in Table 2.
func NewStrata(dev *nvm.Device) *Engine {
	cfg := Config{
		Name:        "Strata",
		UserSpace:   true,
		GlobalAlloc: false,
		WriteBlock: func(e *Engine, th *proc.Thread, ino *Inode, blk int64, data []byte, off int64) {
			// The update is written once into the process-private log (the
			// final-location write is deferred to digestion). We place the
			// bytes at their final location so readers stay correct, and
			// charge the log-entry header alongside.
			pg := e.blockFor(th, ino, blk, len(data) < pageSize)
			// LibFS builds the log record and updates its private DRAM
			// index for every data write (about half a metadata record's
			// work), then persists header + payload.
			th.CPU(strataLogEntryCPU / 2)
			e.JournalWrite(th, make([]byte, logEntrySize))
			e.dev.WriteNT(th.Clk, pg*pageSize+off, data)
			ino.logPending.Add(int64(len(data)) + logEntrySize)
			ino.logOwner.Store(int64(th.Proc.PID))
			// The log budget is per process: filling it forces a digest of
			// the whole backlog even without sharing.
			if pl := e.procLog(th.Proc.PID); pl.Add(int64(len(data))+logEntrySize) > strataLogShare {
				e.digestBacklog(th, pl.Swap(0))
			}
		},
		MetaCommit: func(e *Engine, th *proc.Thread, n int) {
			// "Strata has to write two logs for each create to ensure the
			// metadata consistency" (§2.2) — every object costs two log
			// records (operation log + digest-ordering log), each with its
			// own user-level record construction and tail commit.
			for i := 0; i < n; i++ {
				th.CPU(strataLogEntryCPU)
				e.JournalWrite(th, make([]byte, 4*logEntrySize))
				e.JournalWrite(th, make([]byte, logTailCommit))
				e.dev.Fence(th.Clk)
				e.JournalWrite(th, make([]byte, 4*logEntrySize))
				e.JournalWrite(th, make([]byte, logTailCommit))
				e.dev.Fence(th.Clk)
			}
			if pl := e.procLog(th.Proc.PID); pl.Add(int64(n)*pageSize) > strataLogShare {
				e.digestBacklog(th, pl.Swap(0))
			}
		},
	}
	cfg.Access = func(e *Engine, th *proc.Thread, ino *Inode, write bool) {
		th.CPU(strataLeaseCheck)
		pending := ino.logPending.Load()
		owner := ino.logOwner.Load()
		pid := int64(th.Proc.PID)
		if write && pending == 0 {
			// First update lands in this process's log (metadata ops pass
			// the parent directory here; data writes add their own bytes in
			// WriteBlock). Digestion applies directory updates at block
			// granularity, so a metadata update pends a full block.
			defer func() {
				ino.logPending.Add(pageSize)
				ino.logOwner.Store(pid)
			}()
		}
		switch {
		case pending == 0:
			return
		case owner == pid && pending < strataLogShare:
			return
		case owner == pid:
			// Own log full: synchronous digestion of the backlog.
			e.digest(th, ino, pending, false)
		default:
			// Another process's log holds updates to this file: the kernel
			// must digest them (and hand the lease over) before this
			// operation may proceed.
			e.digest(th, ino, pending, true)
			ino.logOwner.Store(pid)
		}
	}
	return NewEngine(dev, cfg)
}

// digest charges Strata's log digestion: wake the kernel worker, read the
// log and write every update a second time to its final location.
func (e *Engine) digest(th *proc.Thread, ino *Inode, _ int64, handoff bool) {
	bytes := ino.logPending.Swap(0)
	if bytes == 0 {
		return // another thread digested concurrently and paid
	}
	if handoff {
		th.CPU(perfmodel.LeaseHandoff)
	}
	th.CPU(perfmodel.DigestWakeup)
	dur := e.digestDuration(bytes)
	accepted := e.digestRes.Enqueue(th.Clk, dur)
	// Synchronous case: the caller needs the digested state before it can
	// proceed, so it waits for completion — Table 2's collapse.
	th.Clk.AdvanceTo(accepted + dur)
}

// digestBacklog enqueues a full-log digest with the background worker: the
// producer only blocks while the worker is still chewing earlier backlogs.
// The single worker is why Strata stops scaling with threads (§6.2).
func (e *Engine) digestBacklog(th *proc.Thread, bytes int64) {
	if bytes <= 0 {
		return
	}
	e.digestRes.Enqueue(th.Clk, e.digestDuration(bytes))
}

// digestDuration is the worker time to apply bytes of log: read each entry,
// write it a second time to its final location, update kernel metadata.
func (e *Engine) digestDuration(bytes int64) int64 {
	entries := bytes / pageSize
	if entries < 1 {
		entries = 1
	}
	return entries * strataDigestPer4K
}
