package retry

import (
	"testing"

	"zofs/internal/simclock"
)

var testPolicy = Policy{Base: 20_000, Cap: 25_000_000, Budget: 500_000_000}

// DelayAt is the jitter stream's contract: pure, bounded, growing.
func TestDelayAtDeterministic(t *testing.T) {
	for n := 0; n < 70; n++ {
		a := testPolicy.DelayAt(42, n)
		b := testPolicy.DelayAt(42, n)
		if a != b {
			t.Fatalf("DelayAt(42, %d) not pure: %d vs %d", n, a, b)
		}
	}
	if a, b := testPolicy.DelayAt(1, 3), testPolicy.DelayAt(2, 3); a == b {
		t.Errorf("different seeds produced identical jitter %d at attempt 3", a)
	}
}

func TestDelayAtBounds(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for n := 0; n < 70; n++ {
			d := testPolicy.DelayAt(seed, n)
			// Exponential growth capped at Cap, jittered into [ideal/2, ideal].
			ideal := testPolicy.Base
			if n > 0 {
				if n >= 62 || ideal<<uint(n) <= 0 || ideal<<uint(n) > testPolicy.Cap {
					ideal = testPolicy.Cap
				} else {
					ideal <<= uint(n)
				}
			}
			if d < ideal/2 || d > ideal {
				t.Fatalf("DelayAt(%d, %d) = %d outside [%d, %d]", seed, n, d, ideal/2, ideal)
			}
			if d > testPolicy.Cap {
				t.Fatalf("DelayAt(%d, %d) = %d exceeds cap %d", seed, n, d, testPolicy.Cap)
			}
		}
	}
}

// A backoff sequence must never sleep past its budget, and must report
// exhaustion (without advancing the clock) once the deadline is reached.
func TestSleepBudgetBound(t *testing.T) {
	clk := simclock.NewClock()
	bo := testPolicy.Start(clk.Now(), 7)
	for bo.Sleep(clk) {
		if clk.Now() > bo.Deadline() {
			t.Fatalf("slept to %d, past deadline %d", clk.Now(), bo.Deadline())
		}
	}
	if clk.Now() != bo.Deadline() {
		t.Errorf("gave up at %d, want exactly the deadline %d", clk.Now(), bo.Deadline())
	}
	if bo.Slept() != testPolicy.Budget {
		t.Errorf("Slept() = %d, want the whole budget %d", bo.Slept(), testPolicy.Budget)
	}
	at := clk.Now()
	if bo.Sleep(clk) {
		t.Error("Sleep returned true after exhaustion")
	}
	if clk.Now() != at {
		t.Error("exhausted Sleep still advanced the clock")
	}
}

// Two backoff sequences with the same (policy, seed, start) must replay the
// exact same wakeup times — the chaos engine's reproducibility contract.
func TestSleepReplayIdentical(t *testing.T) {
	run := func() []int64 {
		clk := simclock.NewClock()
		bo := testPolicy.Start(clk.Now(), 99)
		var wakes []int64
		for bo.Sleep(clk) {
			wakes = append(wakes, clk.Now())
		}
		return wakes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wakeup %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) < 2 {
		t.Fatalf("budget admitted only %d sleeps; policy exercises no growth", len(a))
	}
}

// SleepUntil clamps the wakeup to the polling target: the sleeper lands
// exactly on a future expiry instead of overshooting it, and still makes
// one-tick progress when the target is already past.
func TestSleepUntilTarget(t *testing.T) {
	clk := simclock.NewClock()
	bo := testPolicy.Start(clk.Now(), 3)
	target := int64(5_000) // before the first jittered delay (>=10µs)
	if !bo.SleepUntil(clk, target) {
		t.Fatal("SleepUntil gave up with budget to spare")
	}
	if clk.Now() != target {
		t.Errorf("woke at %d, want the target %d exactly", clk.Now(), target)
	}
	// Target in the past: minimal progress, no stall.
	before := clk.Now()
	if !bo.SleepUntil(clk, 0) {
		t.Fatal("SleepUntil gave up with budget to spare")
	}
	if clk.Now() != before+1 {
		t.Errorf("past target slept %d ticks, want exactly 1", clk.Now()-before)
	}
}

func TestMixDeterministic(t *testing.T) {
	if Mix(12345) != Mix(12345) {
		t.Error("Mix not pure")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Mix(i)] = true
	}
	if len(seen) != 1000 {
		t.Errorf("Mix collided on sequential inputs: %d distinct of 1000", len(seen))
	}
}
