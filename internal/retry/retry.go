// Package retry is the unified failure-path retry policy: deterministic
// virtual-time exponential backoff with jitter and a per-operation deadline
// budget. Every blocking re-attempt loop in the stack (inode lease
// re-acquisition, allocator pool rescans, quarantine-era remaps) draws its
// waits from a Policy instead of hand-rolled sleeps, so
//
//   - retries are bounded: once an op's budget is spent the caller gets a
//     typed failure instead of wedging forever behind a dead peer, and
//   - retry time is attributed: every virtual nanosecond slept here is
//     billed to the spans "retry" component, keeping the exact-sum
//     attribution invariant while separating failure-path churn from
//     healthy-lock contention (CompLock).
//
// Determinism: jitter comes from a splitmix64 mix of the caller-provided
// seed and the attempt number — no wall clock, no math/rand — so a seeded
// chaos campaign replays byte-identically.
package retry

import (
	"zofs/internal/simclock"
	"zofs/internal/spans"
)

// Policy describes one backoff schedule. The zero value is invalid; use a
// named policy or fill every field.
type Policy struct {
	// Base is the first attempt's backoff delay in virtual nanoseconds.
	Base int64
	// Cap bounds any single attempt's delay.
	Cap int64
	// Budget is the total virtual time one operation may spend sleeping
	// under this policy before it must fail with a typed error.
	Budget int64
}

// DelayAt returns the jittered delay for attempt n (0-based): exponential
// growth Base<<n capped at Cap, then jittered into [d/2, d] by a
// deterministic mix of seed and n. Pure function — same (policy, seed, n)
// always yields the same delay.
func (p Policy) DelayAt(seed uint64, n int) int64 {
	d := p.Base
	if n > 0 {
		if n >= 62 || d<<uint(n) <= 0 || d<<uint(n) > p.Cap {
			d = p.Cap
		} else {
			d <<= uint(n)
		}
	}
	if d > p.Cap {
		d = p.Cap
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + int64(mix64(seed^uint64(n)+0x9e3779b97f4a7c15)%(uint64(half)+1))
}

// Start opens a backoff sequence for one operation beginning at virtual
// time now. The seed feeds the jitter stream; callers derive it from
// deterministic per-op state (thread ID, inode, campaign seed).
func (p Policy) Start(now int64, seed uint64) *Backoff {
	return &Backoff{p: p, seed: seed, deadline: now + p.Budget}
}

// Backoff is the per-operation state of one retry sequence.
type Backoff struct {
	p        Policy
	seed     uint64
	attempts int
	deadline int64
	slept    int64
}

// Attempts reports how many sleeps have been taken.
func (b *Backoff) Attempts() int { return b.attempts }

// Slept reports the total virtual time spent sleeping so far.
func (b *Backoff) Slept() int64 { return b.slept }

// Deadline reports the absolute virtual time at which the budget runs out.
func (b *Backoff) Deadline() int64 { return b.deadline }

// Sleep advances clk by the next jittered backoff delay (clamped to the
// remaining budget) and bills the elapsed time to the spans retry
// component. It returns false — without advancing the clock — when the
// budget is already exhausted, at which point the caller must give up with
// a typed error.
func (b *Backoff) Sleep(clk *simclock.Clock) bool {
	return b.SleepUntil(clk, b.deadline)
}

// SleepUntil is Sleep with an extra wakeup target: the delay is further
// clamped so the sleeper does not overshoot target (e.g. a lease expiry
// stamp it is polling for) by more than necessary. A target at or before
// now degrades to a minimal one-tick sleep so progress is still made.
func (b *Backoff) SleepUntil(clk *simclock.Clock, target int64) bool {
	now := clk.Now()
	if now >= b.deadline {
		return false
	}
	d := b.p.DelayAt(b.seed, b.attempts)
	if d <= 0 {
		d = 1
	}
	if target <= now {
		d = 1
	} else if now+d > target {
		d = target - now
	}
	if now+d > b.deadline {
		d = b.deadline - now
	}
	if d <= 0 {
		d = 1
	}
	clk.Advance(d)
	spans.FromClock(clk).Bill(spans.CompRetry, d)
	b.attempts++
	b.slept += d
	return true
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality deterministic
// bit mixer for jitter (and for chaos-engine fate draws).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix exposes the deterministic mixer for callers that need seeded fate
// draws with the same reproducibility contract as the jitter stream.
func Mix(x uint64) uint64 { return mix64(x) }
