// Package trace reproduces the paper's file-permission survey (§2.3,
// Tables 3 and 4). The original inputs — live MySQL/PostgreSQL/DokuWiki
// data directories, the FSL Homes snapshot of 2015-04-10, and the MobiGen
// smartphone syscall traces — are not redistributable, so this package
// synthesizes metadata trees that match the published marginals (file
// counts per permission and type, group counts, size statistics) and then
// runs the paper's actual analysis: the top-down permission-grouping
// algorithm whose output motivates the coffer abstraction.
package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// Node is one file system object in a metadata tree.
type Node struct {
	Name     string
	Type     byte // 'f' regular, 'd' directory, 'l' symlink
	Perm     uint32
	UID, GID uint32
	Size     int64
	Children []*Node
}

// Group is one permission group produced by the paper's algorithm: a
// maximal subtree in which every file shares its parent's permission.
type Group struct {
	Perm     uint32
	UID, GID uint32
	Files    int
	Bytes    int64
}

// GroupByPermission implements §2.3: "If a file has the same permission as
// its parent, then it stays in the same group as its parent. Otherwise, a
// new group is created … starting from a single group containing the FS
// root directory, grouping files top-down."
func GroupByPermission(root *Node) []*Group {
	var groups []*Group
	var walk func(n *Node, g *Group)
	walk = func(n *Node, g *Group) {
		if g == nil || !samePermBits(n, g) {
			g = &Group{Perm: n.Perm &^ 0o111, UID: n.UID, GID: n.GID}
			groups = append(groups, g)
		}
		g.Files++
		g.Bytes += n.Size
		for _, c := range n.Children {
			walk(c, g)
		}
	}
	walk(root, nil)
	return groups
}

func samePermBits(n *Node, g *Group) bool {
	return n.Perm&^0o111 == g.Perm && n.UID == g.UID && n.GID == g.GID
}

// GroupStats summarizes groups for one permission class (a Table 4 column).
type GroupStats struct {
	Perm    uint32
	Groups  int
	Files   int
	MinSize int64
	AvgSize int64
	MaxSize int64
}

// Summarize aggregates groups by permission bits.
func Summarize(groups []*Group) []GroupStats {
	byPerm := map[uint32][]*Group{}
	for _, g := range groups {
		byPerm[g.Perm] = append(byPerm[g.Perm], g)
	}
	var out []GroupStats
	for perm, gs := range byPerm {
		st := GroupStats{Perm: perm, Groups: len(gs), MinSize: 1 << 62}
		var total int64
		for _, g := range gs {
			st.Files += g.Files
			total += g.Bytes
			if g.Bytes < st.MinSize {
				st.MinSize = g.Bytes
			}
			if g.Bytes > st.MaxSize {
				st.MaxSize = g.Bytes
			}
		}
		st.AvgSize = total / int64(len(gs))
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Files > out[j].Files })
	return out
}

// fslClass describes one permission class of the published Table 4.
type fslClass struct {
	perm               uint32
	regular, symlink   int
	directory          int
	groups             int
	avgBytes, maxBytes int64
}

// fslTable4 is the published snapshot summary (paper Table 4).
var fslTable4 = []fslClass{
	{perm: 0o644, regular: 538538, symlink: 18, directory: 65127, groups: 1935, avgBytes: 46 << 20, maxBytes: 23 << 30},
	{perm: 0o600, regular: 105226, symlink: 0, directory: 4021, groups: 1174, avgBytes: 222 << 20, maxBytes: 52 << 30},
	{perm: 0o666, regular: 233, symlink: 6468, directory: 927, groups: 365, avgBytes: 474 << 10, maxBytes: 106 << 20},
	{perm: 0o444, regular: 3313, symlink: 0, directory: 1099, groups: 48, avgBytes: 92 << 20, maxBytes: 995 << 20},
	{perm: 0o660, regular: 342, symlink: 0, directory: 276, groups: 15, avgBytes: 118 << 10, maxBytes: 211 << 10},
	{perm: 0o640, regular: 921, symlink: 0, directory: 33, groups: 853, avgBytes: 31 << 10, maxBytes: 10 << 20},
	{perm: 0o664, regular: 110, symlink: 0, directory: 91, groups: 51, avgBytes: 348 << 10, maxBytes: 5 << 20},
	{perm: 0o440, regular: 8, symlink: 0, directory: 0, groups: 8, avgBytes: 26 << 10, maxBytes: 98 << 10},
}

// GenerateFSLHomes synthesizes a home-directory tree whose per-permission
// file counts and group counts follow the published Table 4, scaled by
// scale (1.0 reproduces the full 726,751-file snapshot).
func GenerateFSLHomes(scale float64, seed int64) *Node {
	rng := rand.New(rand.NewSource(seed))
	root := &Node{Name: "/", Type: 'd', Perm: 0o755, UID: 0, GID: 0}
	uid := uint32(1000)
	// 15 home directories, dominated by 644 as in the trace.
	homes := make([]*Node, 15)
	anchors := make([]*Node, 15)
	for i := range homes {
		homes[i] = &Node{Name: fmt.Sprintf("home%02d", i), Type: 'd', Perm: 0o644 | 0o111, UID: uid + uint32(i), GID: uid + uint32(i)}
		root.Children = append(root.Children, homes[i])
		// Planted groups hang off a per-home anchor directory whose
		// permission class (write-only after masking) appears nowhere in
		// the snapshot, so adjacent same-class groups never coalesce with
		// their surroundings — mirroring how differently-permed ancestors
		// separate groups in the real trace.
		anchors[i] = &Node{Name: "anchor", Type: 'd', Perm: 0o311, UID: homes[i].UID, GID: homes[i].GID}
		homes[i].Children = append(homes[i].Children, anchors[i])
	}
	for _, cls := range fslTable4 {
		nGroups := int(float64(cls.groups)*scale + 0.5)
		if nGroups < 1 {
			nGroups = 1
		}
		files := int(float64(cls.regular+cls.symlink)*scale + 0.5)
		dirs := int(float64(cls.directory)*scale + 0.5)
		for g := 0; g < nGroups; g++ {
			owner := anchors[rng.Intn(len(anchors))]
			// Group root: a directory with the class permission (or a
			// single file for single-file groups).
			share := files / nGroups
			if g == nGroups-1 {
				share = files - share*(nGroups-1)
			}
			if share <= 1 && dirs/nGroups == 0 {
				owner.Children = append(owner.Children, &Node{
					Name: fmt.Sprintf("g%o-%d", cls.perm, g), Type: 'f',
					Perm: cls.perm, UID: owner.UID, GID: owner.GID,
					Size: sizeSample(rng, cls.avgBytes, cls.maxBytes),
				})
				continue
			}
			gd := &Node{Name: fmt.Sprintf("g%o-%d", cls.perm, g), Type: 'd',
				Perm: cls.perm, UID: owner.UID, GID: owner.GID}
			owner.Children = append(owner.Children, gd)
			cur := gd
			for f := 0; f < share; f++ {
				typ := byte('f')
				if cls.symlink > 0 && rng.Intn(cls.regular+cls.symlink) < cls.symlink {
					typ = 'l'
				}
				cur.Children = append(cur.Children, &Node{
					Name: fmt.Sprintf("f%d", f), Type: typ,
					Perm: cls.perm, UID: owner.UID, GID: owner.GID,
					Size: sizeSample(rng, cls.avgBytes/int64(share+1), cls.maxBytes/4),
				})
				// Occasionally descend into a subdirectory of the group.
				if f%64 == 63 && dirs > 0 {
					nd := &Node{Name: fmt.Sprintf("d%d", f), Type: 'd',
						Perm: cls.perm, UID: owner.UID, GID: owner.GID}
					cur.Children = append(cur.Children, nd)
					cur = nd
					dirs--
				}
			}
		}
	}
	return root
}

// sizeSample draws a heavy-tailed file size around avg, capped at max.
func sizeSample(rng *rand.Rand, avg, max int64) int64 {
	if avg <= 0 {
		avg = 455
	}
	// Exponential around the mean with a long tail.
	v := int64(rng.ExpFloat64() * float64(avg))
	if max > 0 && v > max {
		v = max
	}
	return v
}

// Count walks a tree and reports totals per (type).
func Count(root *Node) (regular, symlink, directory int, bytes int64) {
	var walk func(n *Node)
	walk = func(n *Node) {
		switch n.Type {
		case 'f':
			regular++
		case 'l':
			symlink++
		case 'd':
			directory++
		}
		bytes += n.Size
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return
}

// AppTree is one Table 3 application data directory.
type AppTree struct {
	System string
	Root   *Node
}

// GenerateAppTrees synthesizes the Table 3 application directories with the
// published file counts, permissions and owners.
func GenerateAppTrees(seed int64) []AppTree {
	rng := rand.New(rand.NewSource(seed))
	mk := func(system string, rows []struct {
		typ   byte
		perm  uint32
		uid   uint32
		count int
		bytes int64
	}) AppTree {
		root := &Node{Name: "/", Type: 'd', Perm: rows[0].perm, UID: rows[0].uid, GID: rows[0].uid}
		var dirs []*Node
		dirs = append(dirs, root)
		for _, r := range rows {
			for i := 0; i < r.count; i++ {
				n := &Node{
					Name: fmt.Sprintf("%c%o-%d", r.typ, r.perm, i),
					Type: r.typ, Perm: r.perm, UID: r.uid, GID: r.uid,
				}
				if r.count > 0 {
					n.Size = r.bytes / int64(r.count)
				}
				parent := dirs[rng.Intn(len(dirs))]
				parent.Children = append(parent.Children, n)
				if r.typ == 'd' {
					dirs = append(dirs, n)
				}
			}
		}
		return AppTree{System: system, Root: root}
	}
	return []AppTree{
		mk("MySQL", []struct {
			typ   byte
			perm  uint32
			uid   uint32
			count int
			bytes int64
		}{
			{'d', 0o750, 970, 6, 32 << 10},
			{'f', 0o640, 970, 358, 399 << 20},
			{'f', 0o644, 0, 1, 0},
		}),
		mk("PostgreSQL", []struct {
			typ   byte
			perm  uint32
			uid   uint32
			count int
			bytes int64
		}{
			{'d', 0o700, 969, 28, 128 << 10},
			{'f', 0o600, 969, 1807, 99 << 20},
		}),
		mk("DokuWiki", []struct {
			typ   byte
			perm  uint32
			uid   uint32
			count int
			bytes int64
		}{
			{'d', 0o755, 33, 1035, 5 << 20},
			{'f', 0o644, 33, 19941, 452 << 20},
		}),
	}
}

// SurveyRow is one Table 3 row.
type SurveyRow struct {
	System string
	Type   string
	Perm   uint32
	UID    uint32
	Files  int
	Bytes  int64
}

// Survey aggregates an application tree by (type, perm, uid) as Table 3
// does.
func Survey(t AppTree) []SurveyRow {
	type key struct {
		typ  byte
		perm uint32
		uid  uint32
	}
	agg := map[key]*SurveyRow{}
	var walk func(n *Node)
	walk = func(n *Node) {
		k := key{n.Type, n.Perm, n.UID}
		r := agg[k]
		if r == nil {
			typ := "Regular"
			if n.Type == 'd' {
				typ = "Directory"
			} else if n.Type == 'l' {
				typ = "Symlink"
			}
			r = &SurveyRow{System: t.System, Type: typ, Perm: n.Perm, UID: n.UID}
			agg[k] = r
		}
		r.Files++
		r.Bytes += n.Size
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	var out []SurveyRow
	for _, r := range agg {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Files > out[j].Files })
	return out
}

// MobiGenStats reproduces the §2.3 MobiGen observation: permission-change
// syscall frequencies in two smartphone traces, including the Twitter
// shadow-file pattern (create 600 → write → chmod 660 → rename).
type MobiGenStats struct {
	Trace    string
	Syscalls int
	Chmods   int
	Chowns   int
}

// MobiGen returns the published trace summaries.
func MobiGen() []MobiGenStats {
	return []MobiGenStats{
		{Trace: "Facebook", Syscalls: 64282, Chmods: 0, Chowns: 0},
		{Trace: "Twitter", Syscalls: 25306, Chmods: 16, Chowns: 0},
	}
}
