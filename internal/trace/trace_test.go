package trace_test

import (
	"testing"

	"zofs/internal/trace"
)

func TestGroupingSingleUniformTree(t *testing.T) {
	// A tree where every node shares one permission is exactly one group.
	root := &trace.Node{Name: "/", Type: 'd', Perm: 0o755, UID: 1, GID: 1}
	cur := root
	for i := 0; i < 10; i++ {
		n := &trace.Node{Name: "d", Type: 'd', Perm: 0o644 | 0o111, UID: 1, GID: 1, Size: 100}
		cur.Children = append(cur.Children, n)
		cur = n
	}
	groups := trace.GroupByPermission(root)
	if len(groups) != 1 {
		t.Fatalf("uniform tree produced %d groups (execution bits must be ignored)", len(groups))
	}
	if groups[0].Files != 11 {
		t.Fatalf("group holds %d files", groups[0].Files)
	}
}

func TestGroupingSplitsOnPermChange(t *testing.T) {
	root := &trace.Node{Name: "/", Type: 'd', Perm: 0o755, UID: 1, GID: 1}
	same := &trace.Node{Name: "a", Type: 'f', Perm: 0o644, UID: 1, GID: 1}
	diffPerm := &trace.Node{Name: "b", Type: 'f', Perm: 0o600, UID: 1, GID: 1}
	diffOwner := &trace.Node{Name: "c", Type: 'f', Perm: 0o644, UID: 2, GID: 2}
	root.Children = []*trace.Node{same, diffPerm, diffOwner}
	groups := trace.GroupByPermission(root)
	if len(groups) != 3 {
		t.Fatalf("expected 3 groups (root+a, b, c), got %d", len(groups))
	}
}

func TestFSLHomesMarginals(t *testing.T) {
	root := trace.GenerateFSLHomes(0.05, 42)
	reg, sym, dir, _ := trace.Count(root)
	total := reg + sym + dir
	// 5% scale of 726,751 ≈ 36k; tolerate generator rounding.
	if total < 20000 || total > 60000 {
		t.Fatalf("scaled tree has %d files", total)
	}
	groups := trace.GroupByPermission(root)
	stats := trace.Summarize(groups)
	if len(stats) < 6 {
		t.Fatalf("only %d permission classes present", len(stats))
	}
	// 644 dominates, as in the snapshot.
	if stats[0].Perm != 0o644 {
		t.Fatalf("dominant class = %o, want 644", stats[0].Perm)
	}
	// Grouping must be non-trivial: far fewer groups than files.
	if len(groups) >= total/3 {
		t.Fatalf("%d groups for %d files — grouping ineffective", len(groups), total)
	}
}

func TestAppTreesMatchTable3(t *testing.T) {
	for _, app := range trace.GenerateAppTrees(7) {
		rows := trace.Survey(app)
		if len(rows) < 2 {
			t.Fatalf("%s: %d rows", app.System, len(rows))
		}
		// Permissions are concentrated: the top row holds most files.
		total := 0
		for _, r := range rows {
			total += r.Files
		}
		if rows[0].Files*100/total < 80 {
			t.Fatalf("%s: top class only %d/%d files", app.System, rows[0].Files, total)
		}
	}
}

func TestMobiGenSummaries(t *testing.T) {
	stats := trace.MobiGen()
	if len(stats) != 2 {
		t.Fatal("want 2 traces")
	}
	if stats[0].Chmods != 0 || stats[1].Chmods != 16 {
		t.Fatalf("chmod counts = %d/%d", stats[0].Chmods, stats[1].Chmods)
	}
}
