// Package obsfs wraps a vfs.FileSystem with telemetry: every operation is
// counted, its simulated latency histogrammed and appended to the calling
// thread's op-trace ring. The benchmark harness uses it to observe workloads
// that drive a file system directly through the vfs interface (FxMark,
// Filebench), bypassing the FSLibs dispatcher and its instrumentation.
//
// The wrapper is transparent for correctness but not for type identity:
// harness code that type-asserts on the concrete file system must wrap only
// after such assertions (see harness.statsRun).
package obsfs

import (
	"zofs/internal/coffer"
	"zofs/internal/proc"
	"zofs/internal/telemetry"
	"zofs/internal/vfs"
)

// FS observes a wrapped file system.
type FS struct {
	inner vfs.FileSystem
	rec   *telemetry.Recorder
}

// Wrap returns fs instrumented against rec. A nil recorder returns fs
// unchanged — no wrapping cost when telemetry is off.
func Wrap(fs vfs.FileSystem, rec *telemetry.Recorder) vfs.FileSystem {
	if rec == nil {
		return fs
	}
	return &FS{inner: fs, rec: rec}
}

// Unwrap returns the wrapped file system (tooling, type assertions).
func (f *FS) Unwrap() vfs.FileSystem { return f.inner }

// observe records one completed operation against the thread's virtual clock.
func (f *FS) observe(th *proc.Thread, op telemetry.Op, start int64) {
	d := th.Clk.Now() - start
	f.rec.Inc(telemetry.CtrDispatchOps)
	f.rec.Observe(op, d)
	f.rec.TraceOp(th.TID, op, start, d)
}

func (f *FS) Name() string { return f.inner.Name() }

func (f *FS) Create(th *proc.Thread, path string, mode coffer.Mode) (vfs.Handle, error) {
	start := th.Clk.Now()
	h, err := f.inner.Create(th, path, mode)
	f.observe(th, telemetry.OpCreate, start)
	if err != nil {
		return h, err
	}
	return &handle{inner: h, fs: f}, nil
}

func (f *FS) Open(th *proc.Thread, path string, flags int) (vfs.Handle, error) {
	start := th.Clk.Now()
	h, err := f.inner.Open(th, path, flags)
	f.observe(th, telemetry.OpOpen, start)
	if err != nil {
		return h, err
	}
	return &handle{inner: h, fs: f}, nil
}

func (f *FS) Mkdir(th *proc.Thread, path string, mode coffer.Mode) error {
	start := th.Clk.Now()
	err := f.inner.Mkdir(th, path, mode)
	f.observe(th, telemetry.OpMkdir, start)
	return err
}

func (f *FS) Unlink(th *proc.Thread, path string) error {
	start := th.Clk.Now()
	err := f.inner.Unlink(th, path)
	f.observe(th, telemetry.OpUnlink, start)
	return err
}

func (f *FS) Rmdir(th *proc.Thread, path string) error {
	start := th.Clk.Now()
	err := f.inner.Rmdir(th, path)
	f.observe(th, telemetry.OpRmdir, start)
	return err
}

func (f *FS) Rename(th *proc.Thread, oldPath, newPath string) error {
	start := th.Clk.Now()
	err := f.inner.Rename(th, oldPath, newPath)
	f.observe(th, telemetry.OpRename, start)
	return err
}

func (f *FS) Stat(th *proc.Thread, path string) (vfs.FileInfo, error) {
	start := th.Clk.Now()
	fi, err := f.inner.Stat(th, path)
	f.observe(th, telemetry.OpStat, start)
	return fi, err
}

func (f *FS) Chmod(th *proc.Thread, path string, mode coffer.Mode) error {
	start := th.Clk.Now()
	err := f.inner.Chmod(th, path, mode)
	f.observe(th, telemetry.OpChmod, start)
	return err
}

func (f *FS) Chown(th *proc.Thread, path string, uid, gid uint32) error {
	start := th.Clk.Now()
	err := f.inner.Chown(th, path, uid, gid)
	f.observe(th, telemetry.OpChown, start)
	return err
}

func (f *FS) Symlink(th *proc.Thread, target, link string) error {
	start := th.Clk.Now()
	err := f.inner.Symlink(th, target, link)
	f.observe(th, telemetry.OpSymlink, start)
	return err
}

func (f *FS) Readlink(th *proc.Thread, path string) (string, error) {
	start := th.Clk.Now()
	t, err := f.inner.Readlink(th, path)
	f.observe(th, telemetry.OpReadlink, start)
	return t, err
}

func (f *FS) ReadDir(th *proc.Thread, path string) ([]vfs.DirEntry, error) {
	start := th.Clk.Now()
	ents, err := f.inner.ReadDir(th, path)
	f.observe(th, telemetry.OpReadDir, start)
	return ents, err
}

func (f *FS) Truncate(th *proc.Thread, path string, size int64) error {
	start := th.Clk.Now()
	err := f.inner.Truncate(th, path, size)
	f.observe(th, telemetry.OpTruncate, start)
	return err
}

// handle observes an open file's operations.
type handle struct {
	inner vfs.Handle
	fs    *FS
}

func (h *handle) ReadAt(th *proc.Thread, p []byte, off int64) (int, error) {
	start := th.Clk.Now()
	n, err := h.inner.ReadAt(th, p, off)
	h.fs.observe(th, telemetry.OpRead, start)
	return n, err
}

func (h *handle) WriteAt(th *proc.Thread, p []byte, off int64) (int, error) {
	start := th.Clk.Now()
	n, err := h.inner.WriteAt(th, p, off)
	h.fs.observe(th, telemetry.OpWrite, start)
	return n, err
}

func (h *handle) Append(th *proc.Thread, p []byte) (int64, error) {
	start := th.Clk.Now()
	off, err := h.inner.Append(th, p)
	h.fs.observe(th, telemetry.OpAppend, start)
	return off, err
}

func (h *handle) Stat(th *proc.Thread) (vfs.FileInfo, error) {
	start := th.Clk.Now()
	fi, err := h.inner.Stat(th)
	h.fs.observe(th, telemetry.OpStat, start)
	return fi, err
}

func (h *handle) Sync(th *proc.Thread) error {
	start := th.Clk.Now()
	err := h.inner.Sync(th)
	h.fs.observe(th, telemetry.OpFsync, start)
	return err
}

func (h *handle) Close(th *proc.Thread) error {
	start := th.Clk.Now()
	err := h.inner.Close(th)
	h.fs.observe(th, telemetry.OpClose, start)
	return err
}
