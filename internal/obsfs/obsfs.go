// Package obsfs wraps a vfs.FileSystem with observability: every operation
// is counted, its simulated latency histogrammed, appended to the calling
// thread's op-trace ring, and bracketed by a causal root span so lower-layer
// costs are attributed to it. The benchmark harness uses it to observe
// workloads that drive a file system directly through the vfs interface
// (FxMark, Filebench), bypassing the FSLibs dispatcher and its
// instrumentation.
//
// The wrapper is transparent for correctness but not for type identity:
// harness code that type-asserts on the concrete file system must wrap only
// after such assertions (see harness.statsRun).
package obsfs

import (
	"zofs/internal/byteflow"
	"zofs/internal/coffer"
	"zofs/internal/nvm"
	"zofs/internal/proc"
	"zofs/internal/series"
	"zofs/internal/spans"
	"zofs/internal/telemetry"
	"zofs/internal/vfs"
)

// FS observes a wrapped file system.
type FS struct {
	inner vfs.FileSystem
	rec   *telemetry.Recorder
	// dev is the wrapped FS's backing device when it exposes one. The
	// wrapper is the single place application-payload bytes are credited to
	// the byte-flow ledger, uniformly for every system under test — the
	// inner FS never self-reports, so app bytes are counted exactly once.
	dev *nvm.Device
}

// deviced is implemented by file systems that expose their backing device
// (zofs.FS, baselines.Engine).
type deviced interface{ Device() *nvm.Device }

// spacer is implemented by file systems that can report per-coffer space
// (zofs.FS).
type spacer interface{ SpaceReport() []byteflow.CofferSpace }

// Wrap returns fs instrumented against rec (which may be nil — the nil
// recorder is a valid no-op sink) and the process-wide span collector. With
// neither telemetry, spans nor device byte-flow accounting enabled it
// returns fs unchanged — no wrapping cost when observability is off.
//
// When both spans and byte-flow accounting are live, the wrap also
// registers the snapshot enricher: published span snapshots (zofs-top's
// feed) carry this instance's byte-flow and coffer-space panels.
func Wrap(fs vfs.FileSystem, rec *telemetry.Recorder) vfs.FileSystem {
	var dev *nvm.Device
	if d, ok := fs.(deviced); ok {
		dev = d.Device()
	}
	if rec == nil && spans.Active() == nil && series.Active() == nil && !dev.AccountingEnabled() {
		return fs
	}
	if dev.AccountingEnabled() && spans.Active() != nil {
		sp, _ := fs.(spacer)
		spans.OnSnapshot(func(s *spans.Snapshot) {
			s.Flow = dev.FlowSnapshot()
			if sp != nil {
				s.Space = sp.SpaceReport()
			}
		})
	}
	return &FS{inner: fs, rec: rec, dev: dev}
}

// Unwrap returns the wrapped file system (tooling, type assertions).
func (f *FS) Unwrap() vfs.FileSystem { return f.inner }

// begin opens the op's root span and returns the closure recording its
// completion. The closure is meant to run deferred so the span closes (and
// the latency is recorded) even when the inner op panics — injected crashes
// unwind through here, which is what keeps spans leak-free across crash
// tests.
func (f *FS) begin(th *proc.Thread, op telemetry.Op, path string) func() {
	start := th.Clk.Now()
	sp := spans.FromClock(th.Clk)
	sp.Begin(op, spans.PathHash(path), start)
	return func() {
		now := th.Clk.Now()
		f.rec.Inc(telemetry.CtrDispatchOps)
		f.rec.Observe(op, now-start)
		series.ObserveActive(op, start, now-start)
		f.rec.TraceOp(th.TID, op, start, now-start)
		sp.End(now)
	}
}

func (f *FS) Name() string { return f.inner.Name() }

func (f *FS) Create(th *proc.Thread, path string, mode coffer.Mode) (vfs.Handle, error) {
	defer f.begin(th, telemetry.OpCreate, path)()
	h, err := f.inner.Create(th, path, mode)
	if err != nil {
		return h, err
	}
	return &handle{inner: h, fs: f}, nil
}

func (f *FS) Open(th *proc.Thread, path string, flags int) (vfs.Handle, error) {
	defer f.begin(th, telemetry.OpOpen, path)()
	h, err := f.inner.Open(th, path, flags)
	if err != nil {
		return h, err
	}
	return &handle{inner: h, fs: f}, nil
}

func (f *FS) Mkdir(th *proc.Thread, path string, mode coffer.Mode) error {
	defer f.begin(th, telemetry.OpMkdir, path)()
	return f.inner.Mkdir(th, path, mode)
}

func (f *FS) Unlink(th *proc.Thread, path string) error {
	defer f.begin(th, telemetry.OpUnlink, path)()
	return f.inner.Unlink(th, path)
}

func (f *FS) Rmdir(th *proc.Thread, path string) error {
	defer f.begin(th, telemetry.OpRmdir, path)()
	return f.inner.Rmdir(th, path)
}

func (f *FS) Rename(th *proc.Thread, oldPath, newPath string) error {
	defer f.begin(th, telemetry.OpRename, oldPath)()
	return f.inner.Rename(th, oldPath, newPath)
}

func (f *FS) Stat(th *proc.Thread, path string) (vfs.FileInfo, error) {
	defer f.begin(th, telemetry.OpStat, path)()
	return f.inner.Stat(th, path)
}

func (f *FS) Chmod(th *proc.Thread, path string, mode coffer.Mode) error {
	defer f.begin(th, telemetry.OpChmod, path)()
	return f.inner.Chmod(th, path, mode)
}

func (f *FS) Chown(th *proc.Thread, path string, uid, gid uint32) error {
	defer f.begin(th, telemetry.OpChown, path)()
	return f.inner.Chown(th, path, uid, gid)
}

func (f *FS) Symlink(th *proc.Thread, target, link string) error {
	defer f.begin(th, telemetry.OpSymlink, link)()
	return f.inner.Symlink(th, target, link)
}

func (f *FS) Readlink(th *proc.Thread, path string) (string, error) {
	defer f.begin(th, telemetry.OpReadlink, path)()
	return f.inner.Readlink(th, path)
}

func (f *FS) ReadDir(th *proc.Thread, path string) ([]vfs.DirEntry, error) {
	defer f.begin(th, telemetry.OpReadDir, path)()
	return f.inner.ReadDir(th, path)
}

func (f *FS) Truncate(th *proc.Thread, path string, size int64) error {
	defer f.begin(th, telemetry.OpTruncate, path)()
	return f.inner.Truncate(th, path, size)
}

// handle observes an open file's operations.
type handle struct {
	inner vfs.Handle
	fs    *FS
}

func (h *handle) ReadAt(th *proc.Thread, p []byte, off int64) (int, error) {
	defer h.fs.begin(th, telemetry.OpRead, "")()
	return h.inner.ReadAt(th, p, off)
}

func (h *handle) WriteAt(th *proc.Thread, p []byte, off int64) (int, error) {
	defer h.fs.begin(th, telemetry.OpWrite, "")()
	n, err := h.inner.WriteAt(th, p, off)
	h.fs.dev.AddAppBytes(int64(n))
	return n, err
}

func (h *handle) Append(th *proc.Thread, p []byte) (int64, error) {
	defer h.fs.begin(th, telemetry.OpAppend, "")()
	off, err := h.inner.Append(th, p)
	if err == nil {
		h.fs.dev.AddAppBytes(int64(len(p)))
	}
	return off, err
}

func (h *handle) Stat(th *proc.Thread) (vfs.FileInfo, error) {
	defer h.fs.begin(th, telemetry.OpStat, "")()
	return h.inner.Stat(th)
}

func (h *handle) Sync(th *proc.Thread) error {
	defer h.fs.begin(th, telemetry.OpFsync, "")()
	return h.inner.Sync(th)
}

func (h *handle) Close(th *proc.Thread) error {
	defer h.fs.begin(th, telemetry.OpClose, "")()
	return h.inner.Close(th)
}
