package series

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"zofs/internal/openmetrics"
)

// Publishing: zofs-bench -series writes the windowed view into a directory
// as series.jsonl (one Window per line, self-describing — every line carries
// the window index, start and width) and series.prom (the OpenMetrics
// rendering of the merged view plus last-window gauges and SLO burn).
// Files are written to a temp name and renamed so a reader never observes a
// half-written document.

// WriteJSONL renders every retained window as one JSON line, ascending by
// virtual time.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, win := range c.Windows() {
		b, err := json.Marshal(win)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a series.jsonl stream.
func ReadJSONL(r io.Reader) ([]Window, error) {
	var out []Window
	dec := json.NewDecoder(r)
	for {
		var w Window
		if err := dec.Decode(&w); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		out = append(out, w)
	}
}

// WriteOpenMetrics renders the collector's current state in OpenMetrics
// text: run-level scalars, per-op count totals, a merged latency summary
// (quantiles 0.5/0.95/0.99/0.999 with _sum/_count), last-window rate gauges
// and per-objective SLO burn. Output is deterministic: ops sorted by name.
func (c *Collector) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	windows := c.Windows()
	merged := c.Merged()

	scalar := func(name, typ, help string, v string) {
		fmt.Fprintf(bw, "# TYPE %s %s\n# HELP %s %s\n%s", name, typ, name, help, name)
		if typ == "counter" {
			fmt.Fprint(bw, "_total")
		}
		fmt.Fprintf(bw, " %s\n", v)
	}
	scalar("zofs_series_windows", "gauge", "Retained virtual-time windows.",
		strconv.Itoa(len(windows)))
	scalar("zofs_series_window_width_ns", "gauge", "Window width in virtual nanoseconds.",
		strconv.FormatInt(c.WidthNS(), 10))
	scalar("zofs_series_spilled_windows", "counter", "Windows evicted into the spill aggregate.",
		strconv.FormatInt(c.SpilledWindows(), 10))
	scalar("zofs_series_observations", "counter", "Operations observed.",
		strconv.FormatInt(c.Total(), 10))

	ops := make([]string, 0, len(merged))
	for name := range merged {
		ops = append(ops, name)
	}
	sort.Strings(ops)

	fmt.Fprintf(bw, "# TYPE zofs_series_op_ops counter\n# HELP zofs_series_op_ops Operations observed per op kind.\n")
	for _, name := range ops {
		fmt.Fprintf(bw, "zofs_series_op_ops_total{op=%q} %d\n", name, merged[name].Count)
	}
	fmt.Fprintf(bw, "# TYPE zofs_series_op_latency_ns summary\n# HELP zofs_series_op_latency_ns Merged whole-run latency per op kind.\n")
	for _, name := range ops {
		m := merged[name]
		fmt.Fprintf(bw, "zofs_series_op_latency_ns{op=%q,quantile=\"0.5\"} %d\n", name, m.P50NS)
		fmt.Fprintf(bw, "zofs_series_op_latency_ns{op=%q,quantile=\"0.95\"} %d\n", name, m.P95NS)
		fmt.Fprintf(bw, "zofs_series_op_latency_ns{op=%q,quantile=\"0.99\"} %d\n", name, m.P99NS)
		fmt.Fprintf(bw, "zofs_series_op_latency_ns{op=%q,quantile=\"0.999\"} %d\n", name, m.P999NS)
		fmt.Fprintf(bw, "zofs_series_op_latency_ns_sum{op=%q} %d\n", name, m.SumNS)
		fmt.Fprintf(bw, "zofs_series_op_latency_ns_count{op=%q} %d\n", name, m.Count)
	}

	if len(windows) > 0 {
		last := windows[len(windows)-1]
		lastOps := make([]string, 0, len(last.Ops))
		for name := range last.Ops {
			lastOps = append(lastOps, name)
		}
		sort.Strings(lastOps)
		fmt.Fprintf(bw, "# TYPE zofs_series_last_window gauge\n# HELP zofs_series_last_window Index of the latest retained window.\n")
		fmt.Fprintf(bw, "zofs_series_last_window %d\n", last.Index)
		fmt.Fprintf(bw, "# TYPE zofs_series_last_window_ops gauge\n# HELP zofs_series_last_window_ops Operations in the latest window per op kind.\n")
		for _, name := range lastOps {
			fmt.Fprintf(bw, "zofs_series_last_window_ops{op=%q} %d\n", name, last.Ops[name].Count)
		}
		fmt.Fprintf(bw, "# TYPE zofs_series_last_window_p99_ns gauge\n# HELP zofs_series_last_window_p99_ns p99 latency in the latest window per op kind.\n")
		for _, name := range lastOps {
			fmt.Fprintf(bw, "zofs_series_last_window_p99_ns{op=%q} %d\n", name, last.Ops[name].P99NS)
		}
	}

	slos := c.SLOs()
	if len(slos) > 0 {
		fmt.Fprintf(bw, "# TYPE zofs_slo_threshold_ns gauge\n# HELP zofs_slo_threshold_ns Objective latency threshold per op kind.\n")
		for _, s := range slos {
			fmt.Fprintf(bw, "zofs_slo_threshold_ns{op=%q} %d\n", s.Op, s.ThresholdNS)
		}
		fmt.Fprintf(bw, "# TYPE zofs_slo_target gauge\n# HELP zofs_slo_target Objective good-fraction target per op kind.\n")
		for _, s := range slos {
			fmt.Fprintf(bw, "zofs_slo_target{op=%q} %s\n", s.Op, strconv.FormatFloat(s.Target, 'f', 6, 64))
		}
		fmt.Fprintf(bw, "# TYPE zofs_slo_events counter\n# HELP zofs_slo_events Operations evaluated against the objective.\n")
		for _, s := range slos {
			fmt.Fprintf(bw, "zofs_slo_events_total{op=%q} %d\n", s.Op, s.Total)
		}
		fmt.Fprintf(bw, "# TYPE zofs_slo_breaches counter\n# HELP zofs_slo_breaches Operations exceeding the objective threshold.\n")
		for _, s := range slos {
			fmt.Fprintf(bw, "zofs_slo_breaches_total{op=%q} %d\n", s.Op, s.Bad)
		}
		fmt.Fprintf(bw, "# TYPE zofs_slo_burn gauge\n# HELP zofs_slo_burn Cumulative error-budget burn rate (1.0 consumes the budget exactly).\n")
		for _, s := range slos {
			fmt.Fprintf(bw, "zofs_slo_burn{op=%q} %s\n", s.Op, strconv.FormatFloat(s.Burn, 'f', 4, 64))
		}
		fmt.Fprintf(bw, "# TYPE zofs_slo_last_burn gauge\n# HELP zofs_slo_last_burn Burn rate of the latest window with observations.\n")
		for _, s := range slos {
			fmt.Fprintf(bw, "zofs_slo_last_burn{op=%q} %s\n", s.Op, strconv.FormatFloat(s.LastBurn, 'f', 4, 64))
		}
	}
	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

// ValidateOpenMetrics parses a series OpenMetrics document (via the shared
// internal/openmetrics parser) and enforces its invariants:
//
//   - syntax: every non-comment line is a valid sample, "# EOF" terminates;
//   - conservation: per-op latency-summary counts equal the per-op op
//     totals, and op totals sum exactly to zofs_series_observations_total;
//   - SLO sanity: breaches never exceed evaluated events.
func ValidateOpenMetrics(r io.Reader) error {
	doc, err := openmetrics.Parse(r)
	if err != nil {
		return err
	}
	opCount := doc.GroupSumInt("zofs_series_op_ops_total", "op")
	for op, n := range doc.GroupSumInt("zofs_series_op_latency_ns_count", "op") {
		if c, ok := opCount[op]; !ok || c != n {
			return fmt.Errorf("op %q: latency summary count %d != op total %d", op, n, opCount[op])
		}
	}
	if err := openmetrics.Conserved("series: per-op ops vs observations",
		doc.SumInt("zofs_series_op_ops_total"), doc.Int("zofs_series_observations_total")); err != nil {
		return err
	}
	events := doc.GroupSumInt("zofs_slo_events_total", "op")
	for op, bad := range doc.GroupSumInt("zofs_slo_breaches_total", "op") {
		if bad > events[op] {
			return fmt.Errorf("slo %q: breaches %d > events %d", op, bad, events[op])
		}
	}
	return nil
}

// Publish writes the collector's current state into dir as series.jsonl and
// series.prom, each atomically (temp file + rename).
func Publish(c *Collector, dir string) error {
	var jl bytes.Buffer
	if err := c.WriteJSONL(&jl); err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, "series.jsonl"), jl.Bytes()); err != nil {
		return err
	}
	var om bytes.Buffer
	if err := c.WriteOpenMetrics(&om); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, "series.prom"), om.Bytes())
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PublishEvery republishes on an interval until the returned stop function
// is called (no final write — callers do a last Publish themselves once
// collection has stopped). Mid-run publish errors are dropped: a missed
// refresh must not kill the benchmark.
func PublishEvery(c *Collector, dir string, every time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = Publish(c, dir)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
