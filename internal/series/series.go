// Package series is the tail observatory's windowed metrics pipeline: it
// buckets every observed operation into fixed-width virtual-time windows,
// each carrying per-op-kind counters and log-bucket latency histograms in
// the exact telemetry geometry — so p50/p95/p99/p999 are queryable per
// window (warmup vs steady state, contention storms, quarantine transitions
// as phenomena-in-time) and windows are *exactly* mergeable: summing the
// bucket vectors of every window of a run reproduces the cumulative
// telemetry histogram bit-for-bit (the merge-exactness gate in the `series`
// experiment).
//
// On top of the windows ride SLO objectives — a latency threshold and a
// target good-fraction per op kind — with windowed error-budget burn-rate
// accounting, and the adaptive worst-op exemplar thresholds pushed into the
// span collector (trailing-window p99 per op kind, so exemplar capture
// tracks the tail as it moves).
//
// Like every observability layer here, the collector only reads clocks: a
// run's virtual timeline is bit-identical with series collection on or off.
package series

import (
	"sort"
	"sync"
	"sync/atomic"

	"zofs/internal/spans"
	"zofs/internal/telemetry"
)

// DefaultWindowNS is the default window width (1ms of virtual time).
const DefaultWindowNS = 1_000_000

// DefaultMaxWindows bounds the retained window map; older windows fold into
// the spill aggregate (merge-exactness is preserved, per-window resolution
// for the evicted prefix is not).
const DefaultMaxWindows = 1024

// defaultTrailing is how many trailing windows feed the adaptive exemplar
// threshold.
const defaultTrailing = 4

// thresholdEvery is the per-op observation cadence of adaptive-threshold
// recomputation.
const thresholdEvery = 256

// SLO is one latency objective: at least Target fraction of Op's operations
// complete within ThresholdNS.
type SLO struct {
	Op          telemetry.Op
	ThresholdNS int64
	Target      float64 // good fraction, e.g. 0.999; must be < 1
}

// Config parameterizes a Collector.
type Config struct {
	// WindowNS is the virtual-time window width (default DefaultWindowNS).
	WindowNS int64
	// MaxWindows bounds retained windows (default DefaultMaxWindows).
	MaxWindows int
	// Trailing is the adaptive-threshold window count (default 4).
	Trailing int
	// SLOs are the initial objectives; more can be set at runtime.
	SLOs []SLO
}

// opWin is one op kind's aggregate within one window.
type opWin struct {
	count   int64
	sumNS   int64
	buckets [telemetry.HistBuckets]int64
	// sloTotal/sloBad track the objective configured for the op at observe
	// time (zero when none is set).
	sloTotal int64
	sloBad   int64
}

// window is one fixed-width virtual-time window.
type window struct {
	ops [telemetry.NumOps]*opWin
}

func (w *window) op(i telemetry.Op) *opWin {
	if w.ops[i] == nil {
		w.ops[i] = &opWin{}
	}
	return w.ops[i]
}

// merge folds o into the window's op slot (eviction, merged views).
func (w *window) merge(i telemetry.Op, o *opWin) {
	dst := w.op(i)
	dst.count += o.count
	dst.sumNS += o.sumNS
	dst.sloTotal += o.sloTotal
	dst.sloBad += o.sloBad
	for b, v := range o.buckets {
		dst.buckets[b] += v
	}
}

type sloCfg struct {
	set         bool
	thresholdNS int64
	target      float64
}

// Collector aggregates observations into virtual-time windows. Safe for
// concurrent use by many simulated threads.
type Collector struct {
	widthNS    int64
	maxWindows int
	trailing   int

	mu       sync.Mutex
	win      map[int64]*window
	spill    window // evicted windows, folded (keeps merges exact)
	spilled  int64  // distinct windows folded into spill
	total    int64  // observations ever
	slo      [telemetry.NumOps]sloCfg
	obsCount [telemetry.NumOps]int64
	// threshold is the last adaptive exemplar threshold pushed per op kind
	// (trailing-window p99), kept for introspection and the .prom export.
	threshold [telemetry.NumOps]int64
}

// NewCollector returns an empty collector.
func NewCollector(cfg Config) *Collector {
	c := &Collector{
		widthNS:    cfg.WindowNS,
		maxWindows: cfg.MaxWindows,
		trailing:   cfg.Trailing,
		win:        map[int64]*window{},
	}
	if c.widthNS <= 0 {
		c.widthNS = DefaultWindowNS
	}
	if c.maxWindows <= 0 {
		c.maxWindows = DefaultMaxWindows
	}
	if c.trailing <= 0 {
		c.trailing = defaultTrailing
	}
	for _, s := range cfg.SLOs {
		c.SetSLO(s.Op, s.ThresholdNS, s.Target)
	}
	return c
}

// active is the process-wide collector; nil means series collection is off
// (the default) — the same enablement pattern as telemetry and spans.
var active atomic.Pointer[Collector]

// Enable installs (and returns) a fresh process-wide collector.
func Enable(cfg Config) *Collector {
	c := NewCollector(cfg)
	active.Store(c)
	return c
}

// Install makes c the process-wide collector (nil is equivalent to Disable).
func Install(c *Collector) { active.Store(c) }

// Disable removes the process-wide collector.
func Disable() { active.Store(nil) }

// Active returns the current process-wide collector, or nil when disabled.
func Active() *Collector { return active.Load() }

// ObserveActive records one finished operation against the process-wide
// collector, if any. It is the hook the two op-observation sites
// (obsfs.begin, fslibs.traceAt) call next to telemetry's Observe, so the
// windowed stream and the cumulative histograms see the identical sequence.
func ObserveActive(op telemetry.Op, startNS, durNS int64) {
	if c := active.Load(); c != nil {
		c.Observe(op, startNS, durNS)
	}
}

// Observe records one finished operation: it lands in the window containing
// its start time, in the same histogram bucket the telemetry recorder uses.
func (c *Collector) Observe(op telemetry.Op, startNS, durNS int64) {
	if c == nil {
		return
	}
	wi := startNS / c.widthNS
	if wi < 0 {
		wi = 0
	}
	c.mu.Lock()
	w := c.win[wi]
	if w == nil {
		if len(c.win) >= c.maxWindows {
			c.evictOldestLocked()
		}
		w = &window{}
		c.win[wi] = w
	}
	ow := w.op(op)
	ow.count++
	ow.sumNS += durNS
	ow.buckets[telemetry.BucketOf(durNS)]++
	if s := &c.slo[op]; s.set {
		ow.sloTotal++
		if durNS > s.thresholdNS {
			ow.sloBad++
		}
	}
	c.total++
	c.obsCount[op]++
	if c.obsCount[op]%thresholdEvery == 1 {
		c.pushThresholdLocked(op, wi)
	}
	c.mu.Unlock()
}

// evictOldestLocked folds the lowest-index window into the spill aggregate.
func (c *Collector) evictOldestLocked() {
	var oldest int64
	first := true
	for i := range c.win {
		if first || i < oldest {
			oldest, first = i, false
		}
	}
	if first {
		return
	}
	w := c.win[oldest]
	for i := range w.ops {
		if w.ops[i] != nil {
			c.spill.merge(telemetry.Op(i), w.ops[i])
		}
	}
	delete(c.win, oldest)
	c.spilled++
}

// pushThresholdLocked recomputes the op's trailing-window p99 and pushes it
// into the span collector as the adaptive exemplar-capture threshold.
func (c *Collector) pushThresholdLocked(op telemetry.Op, cur int64) {
	var count int64
	var buckets [telemetry.HistBuckets]int64
	for wi := cur - int64(c.trailing) + 1; wi <= cur; wi++ {
		w := c.win[wi]
		if w == nil || w.ops[op] == nil {
			continue
		}
		ow := w.ops[op]
		count += ow.count
		for b, v := range ow.buckets {
			buckets[b] += v
		}
	}
	if count == 0 {
		return
	}
	p99 := telemetry.Quantile(buckets[:], count, 0.99)
	c.threshold[op] = p99
	if sc := spans.Active(); sc != nil {
		sc.SetExemplarThreshold(op, p99)
	}
}

// SetSLO installs (or replaces) the objective for one op kind; it applies to
// observations from now on. A thresholdNS <= 0 clears the objective. Target
// is clamped to [0, 0.999999] — a target of exactly 1 would make the error
// budget zero and every burn rate infinite.
func (c *Collector) SetSLO(op telemetry.Op, thresholdNS int64, target float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if thresholdNS <= 0 {
		c.slo[op] = sloCfg{}
		return
	}
	if target < 0 {
		target = 0
	}
	if target > 0.999999 {
		target = 0.999999
	}
	c.slo[op] = sloCfg{set: true, thresholdNS: thresholdNS, target: target}
}

// WidthNS returns the window width.
func (c *Collector) WidthNS() int64 {
	if c == nil {
		return 0
	}
	return c.widthNS
}

// Total returns the number of observations ever recorded.
func (c *Collector) Total() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Threshold returns the last adaptive exemplar threshold computed for op.
func (c *Collector) Threshold(op telemetry.Op) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.threshold[op]
}

// Reset zeroes every window, the spill aggregate and the counters (SLO
// objectives are kept).
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.win = map[int64]*window{}
	c.spill = window{}
	c.spilled = 0
	c.total = 0
	c.obsCount = [telemetry.NumOps]int64{}
	c.threshold = [telemetry.NumOps]int64{}
}

// OpWindow is one op kind's published aggregate within one window (or the
// merged whole-run view).
type OpWindow struct {
	Count    int64   `json:"count"`
	SumNS    int64   `json:"sum_ns"`
	MeanNS   int64   `json:"mean_ns"`
	P50NS    int64   `json:"p50_ns"`
	P95NS    int64   `json:"p95_ns"`
	P99NS    int64   `json:"p99_ns"`
	P999NS   int64   `json:"p999_ns"`
	SLOTotal int64   `json:"slo_total,omitempty"`
	SLOBad   int64   `json:"slo_bad,omitempty"`
	SLOBurn  float64 `json:"slo_burn,omitempty"`

	Buckets []int64 `json:"-"` // exact bucket vector; in-process consumers only
}

// Window is one published fixed-width window.
type Window struct {
	Index   int64               `json:"window"`
	StartNS int64               `json:"start_ns"`
	WidthNS int64               `json:"width_ns"`
	Ops     map[string]OpWindow `json:"ops"`
}

// SLOStatus is one objective's cumulative burn accounting.
type SLOStatus struct {
	Op          string  `json:"op"`
	ThresholdNS int64   `json:"threshold_ns"`
	Target      float64 `json:"target"`
	Total       int64   `json:"total"`
	Bad         int64   `json:"bad"`
	// Burn is the cumulative error-budget burn rate: the observed bad
	// fraction divided by the budgeted bad fraction (1-target). Burn 1.0
	// consumes the budget exactly; >1 is over-budget.
	Burn float64 `json:"burn"`
	// LastBurn is the burn rate of the latest window carrying observations
	// of this op — the instantaneous signal zofs-top's timeline shows.
	LastBurn float64 `json:"last_burn"`
}

func (c *Collector) snapOpWin(op telemetry.Op, ow *opWin) OpWindow {
	o := OpWindow{
		Count:    ow.count,
		SumNS:    ow.sumNS,
		SLOTotal: ow.sloTotal,
		SLOBad:   ow.sloBad,
		Buckets:  append([]int64(nil), ow.buckets[:]...),
	}
	if o.Count > 0 {
		o.MeanNS = o.SumNS / o.Count
		o.P50NS = telemetry.Quantile(o.Buckets, o.Count, 0.50)
		o.P95NS = telemetry.Quantile(o.Buckets, o.Count, 0.95)
		o.P99NS = telemetry.Quantile(o.Buckets, o.Count, 0.99)
		o.P999NS = telemetry.Quantile(o.Buckets, o.Count, 0.999)
	}
	if s := c.slo[op]; s.set && o.SLOTotal > 0 {
		o.SLOBurn = burnRate(o.SLOBad, o.SLOTotal, s.target)
	}
	return o
}

// burnRate is badFraction / budgetFraction.
func burnRate(bad, total int64, target float64) float64 {
	if total <= 0 {
		return 0
	}
	budget := 1 - target
	return float64(bad) / float64(total) / budget
}

// Windows returns the retained windows in ascending virtual-time order.
func (c *Collector) Windows() []Window {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := make([]int64, 0, len(c.win))
	for i := range c.win {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	out := make([]Window, 0, len(idx))
	for _, i := range idx {
		w := c.win[i]
		ws := Window{Index: i, StartNS: i * c.widthNS, WidthNS: c.widthNS, Ops: map[string]OpWindow{}}
		for oi := range w.ops {
			if w.ops[oi] == nil || w.ops[oi].count == 0 {
				continue
			}
			ws.Ops[telemetry.Op(oi).Name()] = c.snapOpWin(telemetry.Op(oi), w.ops[oi])
		}
		if len(ws.Ops) > 0 {
			out = append(out, ws)
		}
	}
	return out
}

// Merged returns the whole-run per-op aggregates: the spill plus every
// retained window, folded. Merging is exact — the returned bucket vectors
// equal the cumulative telemetry histograms bit-for-bit when both observed
// the same stream.
func (c *Collector) Merged() map[string]OpWindow {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var m window
	for i := range c.spill.ops {
		if c.spill.ops[i] != nil {
			m.merge(telemetry.Op(i), c.spill.ops[i])
		}
	}
	for _, w := range c.win {
		for i := range w.ops {
			if w.ops[i] != nil {
				m.merge(telemetry.Op(i), w.ops[i])
			}
		}
	}
	out := map[string]OpWindow{}
	for i := range m.ops {
		if m.ops[i] == nil || m.ops[i].count == 0 {
			continue
		}
		out[telemetry.Op(i).Name()] = c.snapOpWin(telemetry.Op(i), m.ops[i])
	}
	return out
}

// SpilledWindows reports how many windows were evicted into the spill
// aggregate (0 means every window is still individually queryable).
func (c *Collector) SpilledWindows() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spilled
}

// SLOs returns the burn accounting of every configured objective, in op
// order.
func (c *Collector) SLOs() []SLOStatus {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SLOStatus
	for oi := range c.slo {
		s := c.slo[oi]
		if !s.set {
			continue
		}
		st := SLOStatus{
			Op:          telemetry.Op(oi).Name(),
			ThresholdNS: s.thresholdNS,
			Target:      s.target,
		}
		if c.spill.ops[oi] != nil {
			st.Total += c.spill.ops[oi].sloTotal
			st.Bad += c.spill.ops[oi].sloBad
		}
		lastIdx := int64(-1)
		var lastBad, lastTotal int64
		for wi, w := range c.win {
			ow := w.ops[oi]
			if ow == nil || ow.sloTotal == 0 {
				continue
			}
			st.Total += ow.sloTotal
			st.Bad += ow.sloBad
			if wi > lastIdx {
				lastIdx, lastBad, lastTotal = wi, ow.sloBad, ow.sloTotal
			}
		}
		st.Burn = burnRate(st.Bad, st.Total, s.target)
		st.LastBurn = burnRate(lastBad, lastTotal, s.target)
		out = append(out, st)
	}
	return out
}
