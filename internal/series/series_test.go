package series

import (
	"bytes"
	"strings"
	"testing"

	"zofs/internal/spans"
	"zofs/internal/telemetry"
)

// stream produces a deterministic mixed-op observation stream spanning
// several windows (width 1000ns): (op, start, dur) triples.
func stream(n int) []struct {
	op         telemetry.Op
	start, dur int64
} {
	out := make([]struct {
		op         telemetry.Op
		start, dur int64
	}, n)
	ops := []telemetry.Op{telemetry.OpRead, telemetry.OpWrite, telemetry.OpCreate}
	for i := range out {
		out[i].op = ops[i%len(ops)]
		out[i].start = int64(i) * 37 // crosses a window boundary every ~27 obs
		out[i].dur = int64((i*i)%5000) + 1
	}
	return out
}

// TestMergeExact is the tentpole invariant: summing every window's bucket
// vector reproduces the cumulative telemetry histogram bit-for-bit when both
// observed the identical stream.
func TestMergeExact(t *testing.T) {
	c := NewCollector(Config{WindowNS: 1000})
	rec := telemetry.New()
	for _, s := range stream(2000) {
		c.Observe(s.op, s.start, s.dur)
		rec.Observe(s.op, s.dur)
	}
	wins := c.Windows()
	if len(wins) < 2 {
		t.Fatalf("want multiple windows, got %d", len(wins))
	}
	// Fold the published windows by hand — the exported path, not the
	// internal one Merged() uses.
	folded := map[string]*OpWindow{}
	for _, w := range wins {
		for name, ow := range w.Ops {
			f := folded[name]
			if f == nil {
				f = &OpWindow{Buckets: make([]int64, telemetry.HistBuckets)}
				folded[name] = f
			}
			f.Count += ow.Count
			f.SumNS += ow.SumNS
			for i, v := range ow.Buckets {
				f.Buckets[i] += v
			}
		}
	}
	snap := rec.Snapshot()
	if len(folded) != len(snap.Ops) {
		t.Fatalf("op sets differ: series %d vs telemetry %d", len(folded), len(snap.Ops))
	}
	for name, f := range folded {
		ts, ok := snap.Ops[name]
		if !ok {
			t.Fatalf("op %q missing from telemetry", name)
		}
		if f.Count != ts.Count || f.SumNS != ts.SumNS {
			t.Fatalf("op %q: folded count/sum %d/%d != telemetry %d/%d",
				name, f.Count, f.SumNS, ts.Count, ts.SumNS)
		}
		for i := range f.Buckets {
			if f.Buckets[i] != ts.Buckets[i] {
				t.Fatalf("op %q bucket %d: folded %d != telemetry %d",
					name, i, f.Buckets[i], ts.Buckets[i])
			}
		}
	}
	// Merged() must agree with the hand fold too.
	for name, m := range c.Merged() {
		f := folded[name]
		if m.Count != f.Count || m.SumNS != f.SumNS {
			t.Fatalf("Merged op %q: %d/%d != folded %d/%d", name, m.Count, m.SumNS, f.Count, f.SumNS)
		}
	}
}

// TestEvictionKeepsMergeExact forces window eviction into the spill
// aggregate and asserts the merged view is still exact.
func TestEvictionKeepsMergeExact(t *testing.T) {
	c := NewCollector(Config{WindowNS: 1000, MaxWindows: 4})
	rec := telemetry.New()
	for _, s := range stream(3000) {
		c.Observe(s.op, s.start, s.dur)
		rec.Observe(s.op, s.dur)
	}
	if c.SpilledWindows() == 0 {
		t.Fatal("expected evictions with MaxWindows=4")
	}
	if got := len(c.Windows()); got > 4 {
		t.Fatalf("retained %d windows, cap is 4", got)
	}
	snap := rec.Snapshot()
	merged := c.Merged()
	for name, ts := range snap.Ops {
		m, ok := merged[name]
		if !ok {
			t.Fatalf("op %q missing from merged view", name)
		}
		if m.Count != ts.Count || m.SumNS != ts.SumNS {
			t.Fatalf("op %q: merged %d/%d != telemetry %d/%d", name, m.Count, m.SumNS, ts.Count, ts.SumNS)
		}
		for i := range ts.Buckets {
			if m.Buckets[i] != ts.Buckets[i] {
				t.Fatalf("op %q bucket %d diverged after eviction", name, i)
			}
		}
	}
}

func TestSLOBurn(t *testing.T) {
	c := NewCollector(Config{WindowNS: 1000, SLOs: []SLO{
		{Op: telemetry.OpRead, ThresholdNS: 100, Target: 0.9},
	}})
	// Window 0: 8 good, 2 bad -> burn = (2/10)/(0.1) = 2.0.
	for i := 0; i < 8; i++ {
		c.Observe(telemetry.OpRead, 0, 50)
	}
	c.Observe(telemetry.OpRead, 10, 200)
	c.Observe(telemetry.OpRead, 20, 300)
	// Window 1: 10 good -> last-window burn 0.
	for i := 0; i < 10; i++ {
		c.Observe(telemetry.OpRead, 1500, 50)
	}
	slos := c.SLOs()
	if len(slos) != 1 {
		t.Fatalf("want 1 SLO, got %d", len(slos))
	}
	s := slos[0]
	if s.Op != "read" || s.Total != 20 || s.Bad != 2 {
		t.Fatalf("unexpected accounting: %+v", s)
	}
	want := (2.0 / 20.0) / 0.1
	if diff := s.Burn - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("burn %v, want %v", s.Burn, want)
	}
	if s.LastBurn != 0 {
		t.Fatalf("last-window burn %v, want 0", s.LastBurn)
	}
	// Ops without an objective carry no SLO fields.
	c.Observe(telemetry.OpWrite, 0, 1e6)
	for _, w := range c.Windows() {
		if ow, ok := w.Ops["write"]; ok && ow.SLOTotal != 0 {
			t.Fatal("write has SLO accounting without an objective")
		}
	}
}

// TestAdaptiveThresholdFeedsSpans drives enough observations through one op
// kind to trigger threshold recomputation and asserts the trailing-window
// p99 lands in the span collector's exemplar gate.
func TestAdaptiveThresholdFeedsSpans(t *testing.T) {
	sc := spans.Enable(spans.Config{RingCap: -1, ExemplarK: 4})
	defer spans.Disable()
	c := NewCollector(Config{WindowNS: 1_000_000, Trailing: 4})
	for i := 0; i < thresholdEvery+1; i++ {
		c.Observe(telemetry.OpWrite, int64(i), 1000)
	}
	thr := c.Threshold(telemetry.OpWrite)
	if thr <= 0 {
		t.Fatal("adaptive threshold never computed")
	}
	if got := sc.ExemplarThreshold(telemetry.OpWrite); got != thr {
		t.Fatalf("span collector threshold %d != series %d", got, thr)
	}
	// All durations were 1000ns, so the p99 is 1000's bucket upper bound.
	want := telemetry.BucketUpper(telemetry.BucketOf(1000))
	if thr != want {
		t.Fatalf("threshold %d, want bucket upper %d", thr, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := NewCollector(Config{WindowNS: 1000})
	for _, s := range stream(500) {
		c.Observe(s.op, s.start, s.dur)
	}
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Windows()
	if len(got) != len(want) {
		t.Fatalf("round trip lost windows: %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index || got[i].WidthNS != want[i].WidthNS ||
			got[i].StartNS != want[i].StartNS || len(got[i].Ops) != len(want[i].Ops) {
			t.Fatalf("window %d differs after round trip", i)
		}
		for name, ow := range want[i].Ops {
			g := got[i].Ops[name]
			if g.Count != ow.Count || g.SumNS != ow.SumNS || g.P99NS != ow.P99NS {
				t.Fatalf("window %d op %q differs after round trip", i, name)
			}
		}
	}
}

func TestOpenMetricsValidates(t *testing.T) {
	c := NewCollector(Config{WindowNS: 1000, SLOs: []SLO{
		{Op: telemetry.OpRead, ThresholdNS: 2000, Target: 0.99},
	}})
	for _, s := range stream(500) {
		c.Observe(s.op, s.start, s.dur)
	}
	var buf bytes.Buffer
	if err := c.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidateOpenMetrics(strings.NewReader(text)); err != nil {
		t.Fatalf("well-formed document rejected: %v", err)
	}
	// Break conservation: inflate the observations total.
	broken := strings.Replace(text, "zofs_series_observations_total 500",
		"zofs_series_observations_total 501", 1)
	if broken == text {
		t.Fatal("expected observations_total 500 in document")
	}
	if err := ValidateOpenMetrics(strings.NewReader(broken)); err == nil {
		t.Fatal("conservation violation not detected")
	}
	// Break syntax: drop the EOF terminator.
	if err := ValidateOpenMetrics(strings.NewReader(strings.Replace(text, "# EOF\n", "", 1))); err == nil {
		t.Fatal("missing EOF not detected")
	}
}

func TestResetKeepsObjectives(t *testing.T) {
	c := NewCollector(Config{WindowNS: 1000, SLOs: []SLO{
		{Op: telemetry.OpRead, ThresholdNS: 100, Target: 0.9},
	}})
	c.Observe(telemetry.OpRead, 0, 500)
	c.Reset()
	if c.Total() != 0 || len(c.Windows()) != 0 {
		t.Fatal("reset left observations behind")
	}
	c.Observe(telemetry.OpRead, 0, 500)
	slos := c.SLOs()
	if len(slos) != 1 || slos[0].Bad != 1 {
		t.Fatalf("objective lost across reset: %+v", slos)
	}
}
