// Package chaos is the adversarial campaign engine (DESIGN.md §13): it runs
// M simulated client processes against one Treasury device and injects a
// deterministic, seeded schedule of faults — process kill mid-op (persistent
// lease residue), a stalled-but-live lease holder, stray writes from a
// byzantine client, media corruption at a victim coffer, and kernel-call
// delays — then scores how gracefully the stack degrades.
//
// The paper's central protection claim (§3, §6.5) is that coffers contain
// damage: a misbehaving or dying process can hurt at most the coffers it can
// write, and everything else keeps serving. The engine turns that claim into
// checked invariants:
//
//   - healthy coffers never fail an op, before, during or after a victim's
//     quarantine (100% availability);
//   - ops against a quarantined victim fail with *typed* errors
//     (vfs.ErrReadOnlyCoffer / vfs.ErrOfflineCoffer), not hangs or panics;
//   - every lease wait is bounded by the retry policy's deadline budget;
//   - a stalled holder resurrected after its lease was stolen is fenced off
//     by the lease epoch (vfs.ErrStaleLease);
//   - post-campaign fsck of every healthy coffer finds zero repairs
//     (no cross-coffer damage) and the space books reconcile.
//
// Everything is virtual-time and seeded: two runs with the same Config
// produce byte-identical reports. There is no real concurrency — clients
// are interleaved by a min-virtual-clock scheduler, which makes every
// interleaving decision (and therefore every fault outcome) reproducible.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"zofs/internal/coffer"
	"zofs/internal/fslibs"
	"zofs/internal/kernfs"
	"zofs/internal/nvm"
	"zofs/internal/proc"
	"zofs/internal/spans"
	"zofs/internal/telemetry"
	"zofs/internal/zofs"
)

// Config parameterizes one campaign. The zero value is filled with defaults
// by Run; every field is echoed into the Report so a run is reproducible
// from its own output.
type Config struct {
	// Seed drives every random decision (op mix, payloads, fault targets).
	Seed int64 `json:"seed"`
	// Clients is the number of simulated client processes (default 4).
	// Client 0 doubles as the byzantine stray-writer, client 1 is the one
	// killed, client 2 the one stalled.
	Clients int `json:"clients"`
	// Ops is the campaign length in operations (default 500).
	Ops int `json:"ops"`
	// Coffers is the number of split data coffers /c0../cN-1 (min 4: the
	// last two are the stray-write and corruption victims).
	Coffers int `json:"coffers"`
	// DeviceBytes sizes the simulated NVM device (default 64 MiB).
	DeviceBytes int64 `json:"device_bytes"`
	// Faults enables fault kinds: kill, stall, stray, corrupt, kdelay.
	// Empty means all of them.
	Faults []string `json:"faults"`
}

// fill applies defaults in place.
func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Ops <= 0 {
		c.Ops = 500
	}
	if c.Coffers < 4 {
		c.Coffers = 4
	}
	if c.DeviceBytes <= 0 {
		c.DeviceBytes = 64 << 20
	}
	if len(c.Faults) == 0 {
		c.Faults = []string{"kill", "stall", "stray", "corrupt", "kdelay"}
	}
}

func (c *Config) enabled(kind string) bool {
	for _, f := range c.Faults {
		if f == kind {
			return true
		}
	}
	return false
}

// Coffer roles.
const (
	roleHealthy   = "healthy"
	roleVictimRO  = "victim_readonly" // stray-write target, quarantined read-only
	roleVictimOff = "victim_offline"  // corruption target, quarantined offline
)

// maxFilesPerCoffer caps namespace growth so long campaigns churn instead
// of only growing.
const maxFilesPerCoffer = 40

// kdelayNS is the injected kernel-call delay (5 ms virtual).
const kdelayNS = 5_000_000

// client is one simulated process: its own protection domain (PKRU), its
// own FSLibs dispatcher, its own virtual clock.
type client struct {
	idx     int
	th      *proc.Thread
	lib     *fslibs.Lib
	dead    bool // killed: never scheduled again
	stalled bool // frozen: not scheduled until resumed
}

// fileState is the engine's oracle for one file: what a correct FS must
// return when reading it back.
type fileState struct {
	path string
	data []byte
}

// cofferState is one split coffer's role, oracle and scoreboard.
type cofferState struct {
	path string
	id   coffer.ID
	role string

	files  []*fileState
	byName map[string]*fileState
	seq    int

	readOnly bool // quarantined read-only during the campaign
	offline  bool // quarantined offline during the campaign

	overall Outcome
	durQuar Outcome // ops while any quarantine was active
}

// stallRec remembers a planted stall so the holder can be resurrected and
// its stale commit fenced.
type stallRec struct {
	c     *client
	cof   *cofferState
	ino   int64
	epoch uint8
	done  bool
}

type engine struct {
	cfg Config
	rng *rand.Rand

	dev   *nvm.Device
	k     *kernfs.KernFS
	rec   *telemetry.Recorder
	col   *spans.Collector
	prev  *spans.Collector
	maint *client // maintenance process: fsck, quarantine ops, probes

	clients []*client
	coffers []*cofferState
	rootID  coffer.ID

	schedule   map[int][]string
	forced     []op
	stall      *stallRec
	quarActive bool

	rep *Report
}

// Run executes one campaign and returns its report. The returned error is
// infrastructure failure only (mkfs, mount, setup); invariant violations are
// collected in Report.Violations so a campaign always produces a full score.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	e, err := setup(cfg)
	if err != nil {
		return nil, err
	}
	defer e.teardown()

	for i := 0; i < cfg.Ops; i++ {
		for _, ev := range e.schedule[i] {
			e.inject(ev)
		}
		c, o, ok := e.next(i)
		if !ok {
			e.violate("scheduler_starved", fmt.Sprintf("no runnable client at op %d", i))
			break
		}
		e.execute(c, o)
	}
	e.finish()
	return e.rep, nil
}

// setup builds the device, kernel, coffers and client processes. Spans and
// telemetry are enabled before any thread exists so every client attaches.
func setup(cfg Config) (*engine, error) {
	e := &engine{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		schedule: buildSchedule(cfg),
		rep:      newReport(cfg),
	}
	// The campaign models a machine from boot: restart the machine-global
	// PID/TID counters so the report (whose timings include TID-seeded
	// retry jitter) is a pure function of the Config.
	proc.ResetIDs()
	e.prev = spans.Active()
	e.col = spans.Enable(spans.Config{})
	telemetry.Enable()

	e.dev = nvm.New(nvm.Config{Size: cfg.DeviceBytes, TrackPersistence: true})
	e.rec = e.dev.Recorder()
	if err := kernfs.Mkfs(e.dev, kernfs.MkfsOptions{RootMode: 0o755}); err != nil {
		return e, err
	}
	k, err := kernfs.Mount(e.dev)
	if err != nil {
		return e, err
	}
	e.k = k

	// Small enlarge batches: the default 512-page data grant is sized for
	// one hot process, not Clients+1 processes × Coffers coffers × two
	// classes hoarding per-thread free lists on a small device.
	fsOpts := fslibs.Options{ZoFS: zofs.Options{DataEnlargeBatch: 64, MetaEnlargeBatch: 16}}

	// Maintenance process: builds the namespace, later runs fsck/quarantine.
	mth := proc.NewProcess(e.dev, 0, 0).NewThread()
	mlib, err := fslibs.Mount(k, mth, fsOpts)
	if err != nil {
		return e, err
	}
	e.maint = &client{idx: -1, th: mth, lib: mlib}
	if err := mlib.ZoFS().EnsureRootDir(mth); err != nil {
		return e, err
	}
	rootID, ok := k.LookupPath(mth.Clk, "/")
	if !ok {
		return e, fmt.Errorf("chaos: root coffer not found")
	}
	e.rootID = rootID

	// Carve one coffer per top-level directory: mkdir inherits the parent
	// coffer, chmod to a different permission triggers the CofferSplit path
	// (§4.3) — exactly how a real tenant gets its own protection domain.
	for i := 0; i < cfg.Coffers; i++ {
		dir := fmt.Sprintf("/c%d", i)
		if err := mlib.Mkdir(mth, dir, 0o755); err != nil {
			return e, fmt.Errorf("chaos: mkdir %s: %w", dir, err)
		}
		if err := mlib.Chmod(mth, dir, 0o700); err != nil {
			return e, fmt.Errorf("chaos: chmod %s: %w", dir, err)
		}
		id, ok := k.LookupPath(mth.Clk, dir)
		if !ok || id == rootID {
			return e, fmt.Errorf("chaos: %s did not split into its own coffer", dir)
		}
		role := roleHealthy
		switch i {
		case cfg.Coffers - 2:
			role = roleVictimRO
		case cfg.Coffers - 1:
			role = roleVictimOff
		}
		e.coffers = append(e.coffers, &cofferState{
			path: dir, id: id, role: role, byName: map[string]*fileState{},
		})
	}

	for i := 0; i < cfg.Clients; i++ {
		th := proc.NewProcess(e.dev, 0, 0).NewThread()
		lib, err := fslibs.Mount(k, th, fsOpts)
		if err != nil {
			return e, err
		}
		e.clients = append(e.clients, &client{idx: i, th: th, lib: lib})
	}
	return e, nil
}

func (e *engine) teardown() {
	spans.Install(e.prev)
	telemetry.Disable()
}

// pick returns the runnable client with the smallest virtual clock (ties to
// the lowest index) — the deterministic interleaving policy.
func (e *engine) pick() *client {
	var best *client
	for _, c := range e.clients {
		if c.dead || c.stalled {
			continue
		}
		if best == nil || c.th.Clk.Now() < best.th.Clk.Now() {
			best = c
		}
	}
	return best
}

// next selects the client and operation for scheduling slot i: a queued
// forced op first, then seed creates (two files per coffer so every fault
// has a target), then the seeded random mix.
func (e *engine) next(i int) (*client, op, bool) {
	c := e.pick()
	if c == nil {
		return nil, op{}, false
	}
	if len(e.forced) > 0 {
		o := e.forced[0]
		e.forced = e.forced[1:]
		return c, o, true
	}
	if i < 2*len(e.coffers) {
		return c, e.genCreate(e.coffers[i%len(e.coffers)]), true
	}
	return c, e.genOp(), true
}

// alive counts schedulable clients.
func (e *engine) alive() int {
	n := 0
	for _, c := range e.clients {
		if !c.dead {
			n++
		}
	}
	return n
}

// maxClock is the latest virtual clock over non-dead clients: lease expiries
// planted relative to it are in the future for every potential waiter.
func (e *engine) maxClock() int64 {
	var m int64
	for _, c := range e.clients {
		if !c.dead && c.th.Clk.Now() > m {
			m = c.th.Clk.Now()
		}
	}
	if e.maint.th.Clk.Now() > m {
		m = e.maint.th.Clk.Now()
	}
	return m
}

// byRole returns the first coffer with the role, or nil.
func (e *engine) byRole(role string) *cofferState {
	for _, cs := range e.coffers {
		if cs.role == role {
			return cs
		}
	}
	return nil
}

// healthyCoffers returns the healthy-role coffers in index order.
func (e *engine) healthyCoffers() []*cofferState {
	var out []*cofferState
	for _, cs := range e.coffers {
		if cs.role == roleHealthy {
			out = append(out, cs)
		}
	}
	return out
}

// violate records one containment-invariant violation (bounded; the count
// is exact even when details are dropped).
func (e *engine) violate(invariant, detail string) {
	e.rep.ViolationCount++
	if len(e.rep.Violations) < 64 {
		e.rep.Violations = append(e.rep.Violations, Violation{Invariant: invariant, Detail: detail})
	}
}

// sortedCofferReports builds the per-coffer scoreboard in path order.
func (e *engine) sortedCofferReports() []CofferReport {
	out := make([]CofferReport, 0, len(e.coffers))
	for _, cs := range e.coffers {
		out = append(out, CofferReport{
			Path:             cs.path,
			Coffer:           int64(cs.id),
			Role:             cs.role,
			Quarantined:      cs.readOnly || cs.offline,
			Overall:          cs.overall.finish(),
			DuringQuarantine: cs.durQuar.finish(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// leaseSlackNS is the tolerance added to the retry budget when asserting the
// per-op bound: media and CPU time of the op itself, far below the 100 ms
// lease horizon but comfortably above any real op cost.
func leaseSlackNS() int64 { return zofs.LeaseDurationNS() }
