package chaos

import (
	"errors"
	"fmt"

	"zofs/internal/coffer"
	"zofs/internal/telemetry"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

// outcomeClass scores one op.
type outcomeClass int

const (
	outSucceeded   outcomeClass = iota
	outDegraded                 // succeeded after a bounded wait or re-dispatch
	outCorrectFail              // failed with the typed error quarantine promises
	outFailed                   // failed in a way the containment model forbids
)

// Outcome is an availability scoreboard: Succeeded+Degraded is served
// traffic, CorrectlyFailed is the quarantine doing its job, Failed is a
// containment violation.
type Outcome struct {
	Total           int     `json:"total"`
	Succeeded       int     `json:"succeeded"`
	Degraded        int     `json:"degraded"`
	CorrectlyFailed int     `json:"correctly_failed"`
	Failed          int     `json:"failed"`
	AvailabilityPct float64 `json:"availability_pct"`
}

func (o *Outcome) add(c outcomeClass) {
	o.Total++
	switch c {
	case outSucceeded:
		o.Succeeded++
	case outDegraded:
		o.Degraded++
	case outCorrectFail:
		o.CorrectlyFailed++
	case outFailed:
		o.Failed++
	}
}

// finish computes the served fraction.
func (o Outcome) finish() Outcome {
	if o.Total > 0 {
		o.AvailabilityPct = 100 * float64(o.Succeeded+o.Degraded) / float64(o.Total)
	}
	return o
}

// CofferReport is one coffer's scoreboard.
type CofferReport struct {
	Path             string  `json:"path"`
	Coffer           int64   `json:"coffer"`
	Role             string  `json:"role"`
	Quarantined      bool    `json:"quarantined"`
	Overall          Outcome `json:"overall"`
	DuringQuarantine Outcome `json:"during_quarantine"`
}

// Violation is one broken containment invariant.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Report is the campaign result. All times are virtual nanoseconds; with
// the same Config the report is byte-identical across runs.
type Report struct {
	Schema string `json:"schema"`
	Config Config `json:"config"`

	OpsByKind map[string]int `json:"ops_by_kind"`
	Faults    map[string]int `json:"faults_injected"`

	Coffers []CofferReport `json:"coffers"`

	Quarantines struct {
		ReadOnly int `json:"read_only"`
		Offline  int `json:"offline"`
	} `json:"quarantines"`

	LeaseSteals                int   `json:"lease_steals"`
	FencedResumes              int   `json:"fenced_resumes"`
	HealthyOpsDuringQuarantine int   `json:"healthy_ops_during_quarantine"`
	HealthyFsckRepairs         int   `json:"healthy_fsck_repairs"`
	MaxOpNS                    int64 `json:"max_op_ns"`
	LeaseBudgetNS              int64 `json:"lease_budget_ns"`

	// RetryNS is the exact-sum spans attribution of all failure-path waits
	// (the "retry" component) across the campaign.
	RetryNS          int64 `json:"retry_ns"`
	MPKViolations    int64 `json:"mpk_violations"`
	ViolationReports int64 `json:"violation_reports"`
	FaultsRecovered  int64 `json:"faults_recovered"`

	ViolationCount int         `json:"violation_count"`
	Violations     []Violation `json:"violations"`
}

func newReport(cfg Config) *Report {
	return &Report{
		Schema:        "zofs-chaos/v1",
		Config:        cfg,
		OpsByKind:     map[string]int{},
		Faults:        map[string]int{},
		Violations:    []Violation{},
		LeaseBudgetNS: zofs.LeaseBudget(),
	}
}

// Passed reports whether every containment invariant held.
func (r *Report) Passed() bool { return r.ViolationCount == 0 }

// finish runs the post-campaign verification pass and folds everything
// into the report:
//
//  1. a pending stall is resumed (and fenced) even if the campaign ended
//     before its scheduled resume;
//  2. every oracle file in every non-offline coffer reads back
//     byte-identical — stray writes and the victim's corruption must not
//     have leaked into anyone else's data;
//  3. the offline victim answers with its typed error;
//  4. fsck over the root and every healthy coffer repairs nothing
//     (zero cross-coffer damage) and the space books reconcile;
//  5. span hygiene (no leaks, no double closes) and the exact-sum
//     component attribution are checked, and the retry time extracted.
func (e *engine) finish() {
	if e.stall != nil && !e.stall.done {
		e.injectResume()
	}
	m := e.maint

	// (2) Oracle read-back through a process that took no part in the
	// campaign traffic.
	for _, cof := range e.coffers {
		if cof.offline {
			// (3) The offline victim must answer with its typed error.
			if _, err := m.lib.Stat(m.th, cof.files[0].path); !errors.Is(err, vfs.ErrOfflineCoffer) {
				e.violate("offline_probe", fmt.Sprintf("stat %s returned %v, want ErrOfflineCoffer",
					cof.files[0].path, err))
			}
			continue
		}
		for _, f := range cof.files {
			if err := e.verifyFile(cof, f); err != nil {
				e.violate("post_integrity", fmt.Sprintf("%s (%s): %v", f.path, cof.role, err))
			}
		}
	}

	// (4) Healthy coffers carry zero damage: fsck must repair nothing.
	fsckPaths := []string{"/"}
	fsckIDs := []coffer.ID{e.rootID}
	for _, cof := range e.coffers {
		if cof.role == roleHealthy {
			fsckPaths = append(fsckPaths, cof.path)
			fsckIDs = append(fsckIDs, cof.id)
		}
	}
	for i, id := range fsckIDs {
		st, err := m.lib.ZoFS().RecoverCoffer(m.th, id)
		if err != nil {
			e.violate("healthy_fsck_err", fmt.Sprintf("%s: %v", fsckPaths[i], err))
			continue
		}
		e.rep.HealthyFsckRepairs += len(st.Repairs)
		if len(st.Repairs) > 0 {
			e.violate("cross_coffer_damage", fmt.Sprintf("%s: fsck made %d repairs (first: %s at %#x)",
				fsckPaths[i], len(st.Repairs), st.Repairs[0].Kind, st.Repairs[0].Off))
		}
	}
	if err := e.k.VerifySpace(); err != nil {
		e.violate("space_reconcile", err.Error())
	}

	// (5) Span hygiene + exact-sum retry attribution.
	if open := e.col.OpenRoots(); open != 0 {
		e.violate("span_leak", fmt.Sprintf("%d root spans left open", open))
	}
	if dc := e.col.DoubleCloses(); dc != 0 {
		e.violate("span_double_close", fmt.Sprintf("%d double-closed spans", dc))
	}
	snap := e.col.Snapshot()
	for name, ob := range snap.Ops {
		var sum int64
		for _, cs := range ob.Comp {
			sum += cs.SumNS
		}
		if sum != ob.SumNS {
			e.violate("spans_sum", fmt.Sprintf("op %s: components sum %d != total %d", name, sum, ob.SumNS))
		}
		e.rep.RetryNS += ob.Comp["retry"].SumNS
	}

	// Availability and non-vacuity invariants.
	for _, cof := range e.coffers {
		if cof.role != roleHealthy {
			continue
		}
		o := cof.overall
		if o.Failed > 0 || o.CorrectlyFailed > 0 {
			e.violate("healthy_availability", fmt.Sprintf("%s served %d/%d ops",
				cof.path, o.Succeeded+o.Degraded, o.Total))
		}
	}
	if e.quarActive && e.rep.HealthyOpsDuringQuarantine == 0 {
		e.violate("vacuous_quarantine_window", "no healthy-coffer ops ran while a quarantine was active")
	}
	if e.cfg.enabled("stall") && e.cfg.Clients >= 3 && e.rep.FencedResumes == 0 {
		e.violate("fence_unexercised", "stall was enabled but no stale resume was fenced")
	}

	tsnap := e.rec.Snapshot()
	e.rep.MPKViolations = tsnap.Counters[telemetry.CtrMPKViolations.Name()]
	e.rep.ViolationReports = tsnap.Counters[telemetry.CtrKernViolationReports.Name()]
	e.rep.FaultsRecovered = tsnap.Counters[telemetry.CtrFaultsRecovered.Name()]
	e.rep.Coffers = e.sortedCofferReports()
}

// verifyFile reads one oracle file back through the maintenance process and
// compares content byte for byte.
func (e *engine) verifyFile(cof *cofferState, f *fileState) error {
	fd, err := e.maint.lib.Open(e.maint.th, f.path, vfs.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer e.maint.lib.Close(e.maint.th, fd)
	buf := make([]byte, len(f.data))
	n, err := e.maint.lib.Pread(e.maint.th, fd, buf, 0)
	if err != nil {
		return err
	}
	if n != len(f.data) {
		return fmt.Errorf("%w: read %d bytes, want %d", errMismatch, n, len(f.data))
	}
	for i := range buf {
		if buf[i] != f.data[i] {
			return fmt.Errorf("%w: first diff at byte %d", errMismatch, i)
		}
	}
	return nil
}

// WriteSummary renders a short human-readable scoreboard.
func (r *Report) WriteSummary(w interface{ Write([]byte) (int, error) }) {
	fmt.Fprintf(w, "chaos: seed=%d clients=%d ops=%d coffers=%d\n",
		r.Config.Seed, r.Config.Clients, r.Config.Ops, r.Config.Coffers)
	for _, c := range r.Coffers {
		fmt.Fprintf(w, "  %-6s %-16s avail=%6.2f%%  ok=%d degraded=%d typed-fail=%d failed=%d",
			c.Path, c.Role, c.Overall.AvailabilityPct,
			c.Overall.Succeeded, c.Overall.Degraded, c.Overall.CorrectlyFailed, c.Overall.Failed)
		if c.Quarantined {
			fmt.Fprintf(w, "  [quarantined]")
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "  steals=%d fenced-resumes=%d quarantines=%d/%d retry=%dns max-op=%dns budget=%dns\n",
		r.LeaseSteals, r.FencedResumes, r.Quarantines.ReadOnly, r.Quarantines.Offline,
		r.RetryNS, r.MaxOpNS, r.LeaseBudgetNS)
	if r.Passed() {
		fmt.Fprintf(w, "  containment: OK (0 violations)\n")
		return
	}
	fmt.Fprintf(w, "  containment: %d VIOLATIONS\n", r.ViolationCount)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "    %s: %s\n", v.Invariant, v.Detail)
	}
}
