package chaos

import (
	"encoding/json"
	"testing"
)

// TestCampaignContainment: a full campaign with every fault kind enabled
// must hold all containment invariants — healthy coffers at 100%
// availability, victims failing typed, stale resumes fenced, zero
// cross-coffer damage.
func TestCampaignContainment(t *testing.T) {
	rep, err := Run(Config{Seed: 7, Ops: 200})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Passed() {
		for _, v := range rep.Violations {
			t.Errorf("violation %s: %s", v.Invariant, v.Detail)
		}
		t.Fatalf("%d containment violations", rep.ViolationCount)
	}
	if rep.Quarantines.ReadOnly != 1 || rep.Quarantines.Offline != 1 {
		t.Fatalf("quarantines = %+v, want one read-only and one offline", rep.Quarantines)
	}
	if rep.LeaseSteals < 2 {
		t.Fatalf("lease steals = %d, want >= 2 (kill + stall)", rep.LeaseSteals)
	}
	if rep.FencedResumes != 1 {
		t.Fatalf("fenced resumes = %d, want 1", rep.FencedResumes)
	}
	if rep.RetryNS <= 0 {
		t.Fatalf("retry attribution = %d ns, want > 0 (two lease waits happened)", rep.RetryNS)
	}
	if rep.HealthyOpsDuringQuarantine == 0 {
		t.Fatal("no healthy ops observed during quarantine (vacuous run)")
	}
	if rep.MaxOpNS > rep.LeaseBudgetNS+leaseSlackNS() {
		t.Fatalf("max op %d ns exceeds budget+slack %d ns", rep.MaxOpNS, rep.LeaseBudgetNS+leaseSlackNS())
	}
	for _, c := range rep.Coffers {
		if c.Role == roleHealthy && c.Overall.AvailabilityPct != 100 {
			t.Fatalf("healthy coffer %s availability %.2f%%, want 100%%", c.Path, c.Overall.AvailabilityPct)
		}
	}
}

// TestCampaignDeterministic: the report is a pure function of the config —
// byte-identical JSON across runs (the BENCH reproducibility contract).
func TestCampaignDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Ops: 120}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same seed, different reports:\nA: %s\nB: %s", ja, jb)
	}
}

// TestCampaignNoFaults: with every fault disabled the campaign is a plain
// multi-client workload — everything succeeds, nothing is quarantined.
func TestCampaignNoFaults(t *testing.T) {
	rep, err := Run(Config{Seed: 3, Ops: 80, Faults: []string{"none"}})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Passed() {
		for _, v := range rep.Violations {
			t.Errorf("violation %s: %s", v.Invariant, v.Detail)
		}
		t.Fatal("fault-free campaign violated invariants")
	}
	if rep.Quarantines.ReadOnly+rep.Quarantines.Offline != 0 {
		t.Fatalf("fault-free campaign quarantined: %+v", rep.Quarantines)
	}
	for _, c := range rep.Coffers {
		if c.Overall.Failed+c.Overall.CorrectlyFailed != 0 {
			t.Fatalf("coffer %s had failures in a fault-free run: %+v", c.Path, c.Overall)
		}
	}
}
