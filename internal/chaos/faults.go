package chaos

import (
	"errors"
	"fmt"

	"zofs/internal/mpk"
	"zofs/internal/nvm"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

// buildSchedule places the enabled fault events at fixed fractions of the
// campaign, always after the seed-create prologue so every fault has a
// populated target. The schedule is part of the deterministic recipe: same
// Config, same events at the same op indexes.
func buildSchedule(cfg Config) map[int][]string {
	sched := map[int][]string{}
	seeds := 2 * cfg.Coffers
	at := func(frac float64) int {
		i := int(frac * float64(cfg.Ops))
		if i <= seeds {
			i = seeds + 1
		}
		if i >= cfg.Ops {
			i = cfg.Ops - 1
		}
		return i
	}
	add := func(kind string, frac float64) int {
		i := at(frac)
		sched[i] = append(sched[i], kind)
		return i
	}
	if cfg.enabled("kdelay") {
		add("kdelay", 0.10)
		add("kdelay", 0.70)
	}
	if cfg.enabled("kill") && cfg.Clients >= 2 {
		add("kill", 0.15)
	}
	if cfg.enabled("stall") && cfg.Clients >= 3 {
		i := add("stall", 0.25)
		r := i + 10
		if r >= cfg.Ops {
			r = cfg.Ops - 1
		}
		if r > i {
			sched[r] = append(sched[r], "resume")
		}
	}
	if cfg.enabled("stray") {
		add("stray", 0.40)
	}
	if cfg.enabled("corrupt") {
		add("corrupt", 0.55)
	}
	return sched
}

// inject fires one scheduled fault event.
func (e *engine) inject(kind string) {
	switch kind {
	case "kdelay":
		e.injectKDelay()
	case "kill":
		e.injectKill()
	case "stall":
		e.injectStall()
	case "resume":
		e.injectResume()
	case "stray":
		e.injectStray()
	case "corrupt":
		e.injectCorrupt()
	}
}

// injectKDelay stalls the next-scheduled client's kernel call by 5 ms of
// virtual time — the "slow trap" fault. The op itself must still complete
// correctly; the delay lands before the op's latency window opens so it
// does not trip the bounded-wait check (the kernel being slow is not a
// retry-policy failure).
func (e *engine) injectKDelay() {
	c := e.pick()
	if c == nil {
		return
	}
	c.th.Clk.Advance(kdelayNS)
	e.rep.Faults["kdelay"]++
}

// injectKill kills client 1 while it "holds" a write lease: the client is
// removed from scheduling forever and its lease residue is planted on a
// file in a healthy coffer, exactly what its sudden death mid-commit would
// leave on NVM. The forced follow-up write must wait the lease out and
// steal it with an epoch bump — the healthy coffer degrades (one bounded
// wait) but loses nothing.
func (e *engine) injectKill() {
	kc := e.clients[1]
	if kc.dead || e.alive() < 2 {
		return
	}
	hc := e.healthyCoffers()[0]
	f := hc.files[0]
	fi, err := e.maint.lib.Stat(e.maint.th, f.path)
	if err != nil {
		e.violate("inject_kill", fmt.Sprintf("stat %s: %v", f.path, err))
		return
	}
	kc.dead = true
	expiry := e.maxClock() + zofs.LeaseDurationNS()
	zofs.PlantInodeLeaseEpoch(e.dev, fi.Inode, kc.th.TID, 0, expiry)
	e.forceWrite(hc, f)
	e.rep.Faults["kill"]++
}

// injectStall freezes a live client that holds a write lease on a healthy
// coffer's file: the lease word stays valid on NVM while the holder makes
// no progress. The forced follow-up write waits out the expiry and steals
// with an epoch bump; injectResume later thaws the holder and proves its
// stale commit is fenced.
func (e *engine) injectStall() {
	var sc *client
	for i := len(e.clients) - 1; i >= 0; i-- {
		if !e.clients[i].dead && !e.clients[i].stalled {
			sc = e.clients[i]
			break
		}
	}
	if sc == nil || e.alive() < 2 {
		return
	}
	hcs := e.healthyCoffers()
	hc := hcs[len(hcs)-1]
	f := hc.files[len(hc.files)-1]
	fi, err := e.maint.lib.Stat(e.maint.th, f.path)
	if err != nil {
		e.violate("inject_stall", fmt.Sprintf("stat %s: %v", f.path, err))
		return
	}
	sc.stalled = true
	expiry := e.maxClock() + zofs.LeaseDurationNS()
	zofs.PlantInodeLeaseEpoch(e.dev, fi.Inode, sc.th.TID, 0, expiry)
	e.stall = &stallRec{c: sc, cof: hc, ino: fi.Inode, epoch: 0}
	e.forceWrite(hc, f)
	e.rep.Faults["stall"]++
}

// injectResume thaws the stalled holder and replays the commit it was
// frozen in the middle of, using the lease epoch it remembered. The steal
// bumped the epoch (and the stealer's unlock cleared the word), so the
// fence must reject the resume with vfs.ErrStaleLease — a resurrected
// stale holder cannot publish.
func (e *engine) injectResume() {
	st := e.stall
	if st == nil || st.done {
		return
	}
	st.done = true
	st.c.stalled = false
	err := e.resumeStale(st)
	if errors.Is(err, vfs.ErrIO) {
		// The holder's mapping went stale while it was frozen (the coffer
		// grew under it); a live process would page-fault, re-map and only
		// then reach the epoch fence. Model exactly that.
		st.c.lib.ZoFS().InvalidateAll()
		err = e.resumeStale(st)
	}
	if errors.Is(err, vfs.ErrStaleLease) {
		e.rep.FencedResumes++
	} else {
		e.violate("fence_leak", fmt.Sprintf("stale resume on %s ino %d returned %v, want ErrStaleLease",
			st.cof.path, st.ino, err))
	}
	e.rep.Faults["resume"]++
}

// resumeStale attempts the stale holder's commit replay, converting an MPK
// fault on its stale mappings into ErrIO the way the SIGSEGV handler would.
func (e *engine) resumeStale(st *stallRec) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(mpk.Violation); !ok {
			panic(r)
		}
		err = vfs.ErrIO
	}()
	return st.c.lib.ZoFS().ResumeStaleWrite(st.c.th, st.cof.id, st.ino, st.epoch)
}

// injectStray has the byzantine client fire raw stores at the read-only
// victim's pages from outside any MPK window. Every store must be blocked
// by the protection hardware (that is the paper's §6.5 claim); the kernel's
// fault handler attributes the faulting page to its coffer and, at the
// violation threshold, quarantines the coffer read-only.
func (e *engine) injectStray() {
	b := e.clients[0]
	if b.dead {
		for _, c := range e.clients {
			if !c.dead {
				b = c
				break
			}
		}
	}
	victim := e.byRole(roleVictimRO)
	exts := e.k.ExtentsOf(victim.id)
	if len(exts) == 0 {
		e.violate("inject_stray", fmt.Sprintf("%s has no extents", victim.path))
		return
	}
	base := exts[0].Start*nvm.PageSize + 64
	quarantined := false
	for i := 0; i < 8 && !quarantined; i++ {
		e.rep.Faults["stray"]++
		landed, q := e.strayStore(b, base+int64(i)*8)
		if landed {
			e.violate("stray_landed", fmt.Sprintf("raw store at %#x reached %s unblocked",
				base+int64(i)*8, victim.path))
			return
		}
		quarantined = q
	}
	if !quarantined {
		e.violate("quarantine_ro_missed",
			fmt.Sprintf("%s not quarantined after %d violations", victim.path, e.k.Violations(victim.id)))
		return
	}
	victim.readOnly = true
	e.quarActive = true
	e.rep.Quarantines.ReadOnly++
	// Probe: a process that never touched the victim must now see the
	// typed error on its first write attempt.
	probe := victim.path + "/__probe"
	if _, err := e.maint.lib.Create(e.maint.th, probe, 0o600); !errors.Is(err, vfs.ErrReadOnlyCoffer) {
		e.violate("quarantine_ro_probe",
			fmt.Sprintf("create %s returned %v, want ErrReadOnlyCoffer", probe, err))
	}
}

// strayStore performs one wild store and mirrors the kernel's SIGSEGV
// handler: the MPK violation is caught, the faulting page attributed to its
// coffer, and the violation reported. landed is true if the store was NOT
// blocked (a protection failure); quarantined is true when this report
// tripped the threshold.
func (e *engine) strayStore(b *client, off int64) (landed, quarantined bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		v, ok := r.(mpk.Violation)
		if !ok {
			panic(r)
		}
		if id, ok := e.k.OwnerOf(v.Page); ok {
			quarantined, _ = e.k.ReportViolation(b.th, id)
		}
	}()
	b.th.Store64(off, 0xDEADBEEFDEADBEEF)
	return true, false
}

// injectCorrupt flips bits in the offline-victim's root directory inode —
// media damage, not a cached store — then runs the operator fsck path:
// recovery finds the root destroyed (unrepairable damage) and the coffer is
// quarantined offline. Every other coffer must keep serving.
func (e *engine) injectCorrupt() {
	victim := e.byRole(roleVictimOff)
	fi, err := e.maint.lib.Stat(e.maint.th, victim.path)
	if err != nil {
		e.violate("inject_corrupt", fmt.Sprintf("stat %s: %v", victim.path, err))
		return
	}
	for i, bit := range []uint{1, 3, 6} {
		zofs.FlipBit(e.dev, fi.Inode*nvm.PageSize+int64(i), bit)
	}
	e.rep.Faults["corrupt"]++
	_, quarantined, err := e.maint.lib.ZoFS().QuarantineIfDamaged(e.maint.th, victim.id)
	if err != nil {
		e.violate("quarantine_off_err", fmt.Sprintf("%s: %v", victim.path, err))
		return
	}
	if !quarantined {
		e.violate("quarantine_off_missed", fmt.Sprintf("%s damage not classified unrepairable", victim.path))
		return
	}
	victim.offline = true
	e.quarActive = true
	e.rep.Quarantines.Offline++
}
