package chaos

import (
	"bytes"
	"errors"
	"fmt"

	"zofs/internal/retry"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

// opKind enumerates the client operations the campaign mixes.
type opKind int

const (
	opCreate opKind = iota
	opWrite
	opRead
	opStat
	opUnlink
)

func (k opKind) String() string {
	switch k {
	case opCreate:
		return "create"
	case opWrite:
		return "write"
	case opRead:
		return "read"
	case opStat:
		return "stat"
	case opUnlink:
		return "unlink"
	}
	return "?"
}

// op is one scheduled client operation. All random draws happen at
// generation time so execution is a pure function of the op and the
// device state.
type op struct {
	kind  opKind
	cof   *cofferState
	name  string
	off   int
	size  int
	pseed int64
	// steal marks the forced write that must wait out a planted lease and
	// steal it — its success is the lease-steal proof.
	steal bool
}

// errMismatch reports read-back content that disagrees with the oracle —
// the one error that is never acceptable anywhere.
var errMismatch = errors.New("chaos: content disagrees with oracle")

// payload derives a deterministic byte string from a seed (splitmix64
// stream, shared with the retry jitter PRNG).
func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	x := uint64(seed)
	for i := range b {
		x = retry.Mix(x)
		b[i] = byte(x >> 33)
	}
	return b
}

// genCreate generates a create op in the given coffer.
func (e *engine) genCreate(cof *cofferState) op {
	cof.seq++
	return op{
		kind:  opCreate,
		cof:   cof,
		name:  fmt.Sprintf("%s/f%04d", cof.path, cof.seq),
		size:  128 + e.rng.Intn(897),
		pseed: e.rng.Int63(),
	}
}

// genOp draws one operation from the seeded mix. Victim coffers stay in the
// rotation on purpose: after quarantine their ops are the typed-error
// probes the availability score is about.
func (e *engine) genOp() op {
	cof := e.coffers[e.rng.Intn(len(e.coffers))]
	r := e.rng.Intn(10)
	switch {
	case len(cof.files) == 0 || (r < 3 && len(cof.files) < maxFilesPerCoffer):
		return e.genCreate(cof)
	case r < 6: // covers the create-at-cap overflow too
		f := cof.files[e.rng.Intn(len(cof.files))]
		return op{
			kind:  opWrite,
			cof:   cof,
			name:  f.path,
			off:   e.rng.Intn(len(f.data) + 1),
			size:  64 + e.rng.Intn(1985),
			pseed: e.rng.Int63(),
		}
	case r < 8:
		f := cof.files[e.rng.Intn(len(cof.files))]
		return op{kind: opRead, cof: cof, name: f.path}
	case r == 8:
		f := cof.files[e.rng.Intn(len(cof.files))]
		return op{kind: opStat, cof: cof, name: f.path}
	default:
		if len(cof.files) < 2 {
			f := cof.files[0]
			return op{kind: opWrite, cof: cof, name: f.path, off: len(f.data),
				size: 64 + e.rng.Intn(1985), pseed: e.rng.Int63()}
		}
		f := cof.files[e.rng.Intn(len(cof.files))]
		return op{kind: opUnlink, cof: cof, name: f.path}
	}
}

// forceWrite queues a write to the given file as the very next scheduled
// op — the survivor that must wait out a planted lease and steal it.
func (e *engine) forceWrite(cof *cofferState, f *fileState) {
	e.forced = append(e.forced, op{
		kind:  opWrite,
		cof:   cof,
		name:  f.path,
		off:   len(f.data),
		size:  256,
		pseed: e.rng.Int63(),
		steal: true,
	})
}

// execute runs one op on one client, with the dispatcher-level re-dispatch
// retry (one re-attempt after a guard-recovered fault), then classifies the
// outcome and checks the bounded-wait invariant.
func (e *engine) execute(c *client, o op) {
	start := c.th.Clk.Now()
	err := e.apply(c, o)
	retried := false
	if err != nil && errors.Is(err, vfs.ErrIO) {
		// The guard converted a fault into ErrIO and invalidated the stale
		// mounts; one re-dispatch either succeeds (healthy coffer) or
		// surfaces the typed quarantine error (victim coffer).
		retried = true
		err = e.apply(c, o)
	}
	dur := c.th.Clk.Now() - start
	if dur > e.rep.MaxOpNS {
		e.rep.MaxOpNS = dur
	}
	if bound := zofs.LeaseBudget() + leaseSlackNS(); dur > bound {
		e.violate("bounded_wait", fmt.Sprintf("%s %s took %dns > budget+slack %dns",
			o.kind, o.name, dur, bound))
	}
	degraded := (retried && err == nil) || dur >= zofs.LeaseDurationNS()/2
	if err == nil {
		if o.steal {
			e.rep.LeaseSteals++
		}
		e.oracleApply(o)
	}
	e.classify(o, err, degraded)
}

// apply performs the operation through the client's FSLibs dispatcher.
func (e *engine) apply(c *client, o op) error {
	th := c.th
	switch o.kind {
	case opCreate, opWrite:
		flags := vfs.O_WRONLY
		if o.kind == opCreate {
			flags = vfs.O_CREATE | vfs.O_TRUNC | vfs.O_RDWR
		}
		// 0o600 exec-masks equal to the coffer's 0o700, so the file lives
		// INSIDE its coffer (§5: same-permission rule) — quarantining the
		// coffer must therefore govern every campaign file in it, which is
		// exactly the containment the campaign asserts.
		fd, err := c.lib.Open(th, o.name, flags, 0o600)
		if err != nil {
			return err
		}
		_, werr := c.lib.Pwrite(th, fd, payload(o.pseed, o.size), int64(o.off))
		cerr := c.lib.Close(th, fd)
		if werr != nil {
			return werr
		}
		return cerr
	case opRead:
		want := o.cof.byName[o.name].data
		fd, err := c.lib.Open(th, o.name, vfs.O_RDONLY, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, len(want))
		n, rerr := c.lib.Pread(th, fd, buf, 0)
		cerr := c.lib.Close(th, fd)
		if rerr != nil {
			return rerr
		}
		if n != len(want) || !bytes.Equal(buf[:n], want) {
			return errMismatch
		}
		return cerr
	case opStat:
		want := o.cof.byName[o.name].data
		fi, err := c.lib.Stat(th, o.name)
		if err != nil {
			return err
		}
		if fi.Size != int64(len(want)) {
			return errMismatch
		}
		return nil
	case opUnlink:
		return c.lib.Unlink(th, o.name)
	}
	return fmt.Errorf("chaos: unknown op kind %d", o.kind)
}

// oracleApply folds one successful op into the engine's oracle.
func (e *engine) oracleApply(o op) {
	cof := o.cof
	switch o.kind {
	case opCreate:
		f := &fileState{path: o.name, data: payload(o.pseed, o.size)}
		cof.files = append(cof.files, f)
		cof.byName[o.name] = f
	case opWrite:
		f := cof.byName[o.name]
		end := o.off + o.size
		for len(f.data) < end {
			f.data = append(f.data, 0)
		}
		copy(f.data[o.off:end], payload(o.pseed, o.size))
	case opUnlink:
		delete(cof.byName, o.name)
		for i, f := range cof.files {
			if f.path == o.name {
				cof.files = append(cof.files[:i], cof.files[i+1:]...)
				break
			}
		}
	}
}

// mutates reports whether the op kind writes.
func (o op) mutates() bool {
	return o.kind == opCreate || o.kind == opWrite || o.kind == opUnlink
}

// classify scores one completed op against the containment invariants and
// updates the per-coffer scoreboard.
func (e *engine) classify(o op, err error, degraded bool) {
	cof := o.cof
	var out outcomeClass
	switch {
	case err == nil && cof.offline:
		// Nothing may succeed against an offline coffer.
		e.violate("offline_leak", fmt.Sprintf("%s %s succeeded on offline coffer", o.kind, o.name))
		out = outFailed
	case err == nil && cof.readOnly && o.mutates():
		e.violate("readonly_leak", fmt.Sprintf("%s %s mutated read-only coffer", o.kind, o.name))
		out = outFailed
	case err == nil && degraded:
		out = outDegraded
	case err == nil:
		out = outSucceeded
	case cof.offline:
		if errors.Is(err, vfs.ErrOfflineCoffer) || errors.Is(err, vfs.ErrIO) {
			out = outCorrectFail
		} else {
			e.violate("victim_unexpected_error",
				fmt.Sprintf("%s %s on offline coffer: %v", o.kind, o.name, err))
			out = outFailed
		}
	case cof.readOnly && o.mutates():
		if errors.Is(err, vfs.ErrReadOnlyCoffer) || errors.Is(err, vfs.ErrIO) {
			out = outCorrectFail
		} else {
			e.violate("victim_unexpected_error",
				fmt.Sprintf("%s %s on read-only coffer: %v", o.kind, o.name, err))
			out = outFailed
		}
	default:
		// Healthy coffer (or a read on a read-only one, which the
		// quarantine is required to keep serving): any error is a
		// containment violation.
		e.violate("healthy_op_failed", fmt.Sprintf("%s %s (%s): %v", o.kind, o.name, cof.role, err))
		out = outFailed
	}

	e.rep.OpsByKind[o.kind.String()]++
	cof.overall.add(out)
	if e.quarActive {
		cof.durQuar.add(out)
		if cof.role == roleHealthy {
			e.rep.HealthyOpsDuringQuarantine++
		}
	}
}
