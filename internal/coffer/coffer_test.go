package coffer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAccess(t *testing.T) {
	cases := []struct {
		mode         Mode
		owner, group uint32
		uid, gid     uint32
		write, want  bool
	}{
		{0o644, 100, 100, 100, 100, false, true},  // owner read
		{0o644, 100, 100, 100, 100, true, true},   // owner write
		{0o644, 100, 100, 200, 100, true, false},  // group write denied
		{0o644, 100, 100, 200, 100, false, true},  // group read
		{0o640, 100, 100, 200, 300, false, false}, // other read denied
		{0o646, 100, 100, 200, 300, true, true},   // other write allowed
		{0o000, 100, 100, 0, 0, true, true},       // root bypasses
		{0o600, 100, 100, 200, 200, false, false}, // private file
	}
	for i, c := range cases {
		if got := Access(c.mode, c.owner, c.group, c.uid, c.gid, c.write); got != c.want {
			t.Errorf("case %d: Access(%o,...) = %v want %v", i, c.mode, got, c.want)
		}
	}
}

func TestAccessHierarchyProperty(t *testing.T) {
	// Owner permissions shadow group/other: if the caller is the owner,
	// group/other bits are irrelevant.
	f := func(modeRaw uint16, owner uint8, write bool) bool {
		mode := Mode(modeRaw) & 0o777
		uid := uint32(owner) + 1 // nonzero
		got := Access(mode, uid, 42, uid, 99, write)
		var want bool
		if write {
			want = mode&0o200 != 0
		} else {
			want = mode&0o400 != 0
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRootPageRoundTrip(t *testing.T) {
	rp := &RootPage{
		ID: 1234, Type: TypeZoFS, Mode: 0o640, UID: 7, GID: 8,
		Flags: FlagInRecovery, RootInode: 999, Custom: 1000,
		Lease: 0xabcdef, Path: "/home/user/data",
	}
	buf := EncodeRootPage(rp)
	got, err := DecodeRootPage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rp {
		t.Fatalf("round trip: %+v != %+v", got, rp)
	}
}

func TestRootPageRejectsCorruption(t *testing.T) {
	buf := EncodeRootPage(&RootPage{ID: 1, Path: "/x"})
	buf[0] ^= 0xff // break magic
	if _, err := DecodeRootPage(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
	buf2 := EncodeRootPage(&RootPage{ID: 1, Path: "/x"})
	buf2[56] = 0xff // absurd path length
	buf2[57] = 0xff
	if _, err := DecodeRootPage(buf2); err == nil {
		t.Fatal("corrupt path length accepted")
	}
	if _, err := DecodeRootPage(make([]byte, 16)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestRootPagePathLimit(t *testing.T) {
	long := "/" + strings.Repeat("a", MaxPathLen)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized path accepted")
		}
	}()
	EncodeRootPage(&RootPage{ID: 1, Path: long})
}

func TestRootPageRoundTripProperty(t *testing.T) {
	f := func(id uint32, mode uint16, uid, gid uint32, ri, cu uint32, pathRaw []byte) bool {
		path := "/" + sanitize(pathRaw, 200)
		rp := &RootPage{
			ID: ID(id), Type: TypeZoFS, Mode: Mode(mode) & 0o777,
			UID: uid, GID: gid, RootInode: int64(ri), Custom: int64(cu), Path: path,
		}
		got, err := DecodeRootPage(EncodeRootPage(rp))
		return err == nil && *got == *rp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(raw []byte, max int) string {
	var b strings.Builder
	for _, c := range raw {
		if b.Len() >= max {
			break
		}
		b.WriteByte('a' + c%26)
	}
	return b.String()
}

func TestExtent(t *testing.T) {
	e := Extent{Start: 10, Count: 5}
	if e.End() != 15 {
		t.Fatalf("End = %d", e.End())
	}
	if e.String() == "" {
		t.Fatal("empty String")
	}
}
