// Package coffer defines the coffer abstraction (paper §3.1): the on-NVM
// layout of a coffer root page, coffer types, page extents, and the
// permission model shared by KernFS (which writes root pages and enforces
// permissions) and µFSs (which read root pages through read-only mappings).
//
// A coffer is a collection of NVM pages sharing one permission. Its root
// page is kernel-managed metadata: the coffer's identity, type, permission,
// path, and the entry points (root-file inode page and a per-coffer custom
// page) that the owning µFS uses.
package coffer

import (
	"encoding/binary"
	"fmt"

	"zofs/internal/nvm"
)

// ID identifies a coffer: the page number of its root page (§4.1 "Treasury
// uses the relative address of the root page (i.e., the coffer-ID)").
// ID 0 means "no coffer" / free page in the allocation table.
type ID uint32

// KernelID tags pages owned by KernFS metadata (superblock, allocation
// table, path table) in the allocation table.
const KernelID ID = 0xFFFFFFFF

// Type distinguishes which µFS manages a coffer's interior (§3.2: "different
// types of coffers are distinguished by the coffer type in the coffer
// metadata").
type Type uint32

const (
	// TypeNone marks an uninitialized coffer.
	TypeNone Type = iota
	// TypeZoFS is the example µFS of §5.
	TypeZoFS
)

// Extent is a contiguous run of pages.
type Extent struct {
	Start int64 // first page number
	Count int64 // number of pages
}

// End returns one past the last page.
func (e Extent) End() int64 { return e.Start + e.Count }

func (e Extent) String() string { return fmt.Sprintf("[%d+%d)", e.Start, e.Count) }

// Mode is a Unix-style permission word (lower 9 bits rwxrwxrwx; the
// execution bit is recorded but not enforced — §2.3, §4.3).
type Mode uint32

// Access implements the coffer-granularity permission check KernFS performs
// on coffer_map (§3.1): may a process with (uid, gid) read (write=false) or
// write (write=true) a coffer owned by (owner, group) with mode m?
// Root (uid 0) bypasses the check as in Unix.
func Access(m Mode, owner, group, uid, gid uint32, write bool) bool {
	if uid == 0 {
		return true
	}
	var shift uint
	switch {
	case uid == owner:
		shift = 6
	case gid == group:
		shift = 3
	default:
		shift = 0
	}
	bits := uint32(m) >> shift
	if write {
		return bits&0o2 != 0
	}
	return bits&0o4 != 0
}

// Root page layout. The root page is the first page of every coffer,
// written only by KernFS and mapped read-only into user space.
const (
	rpMagicOff     = 0  // u64
	rpIDOff        = 8  // u32
	rpTypeOff      = 12 // u32
	rpModeOff      = 16 // u32
	rpUIDOff       = 20 // u32
	rpGIDOff       = 24 // u32
	rpFlagsOff     = 28 // u32
	rpRootInodeOff = 32 // u64 page number of the root-file inode page
	rpCustomOff    = 40 // u64 page number of the per-coffer custom page
	rpLeaseOff     = 48 // u64 recovery lease expiry (virtual ns)
	rpPathLenOff   = 56 // u16
	rpPathOff      = 64 // path bytes

	// RootPageMagic identifies a valid coffer root page.
	RootPageMagic = 0x5A6F46535F435250 // "ZoFS_CRP"

	// FlagInRecovery marks a coffer under recovery (§3.5).
	FlagInRecovery = 1 << 0

	// FlagReadOnly marks a coffer quarantined read-only (DESIGN.md §13):
	// repeated MPK violations pointed at it, so KernFS refuses write
	// mappings and enlarges while reads keep serving. Persistent — set and
	// cleared only through the kernel's quarantine calls.
	FlagReadOnly = 1 << 1

	// FlagOffline marks a coffer quarantined offline: fsck found
	// unrepairable damage, so every mapping is refused until an operator
	// (or a successful re-recovery) lifts the quarantine. Other coffers
	// keep serving — the paper's containment claim made operational.
	FlagOffline = 1 << 2

	// MaxPathLen bounds coffer paths so they fit in the root page.
	MaxPathLen = nvm.PageSize - rpPathOff
)

// RootPage is the decoded, volatile view of a coffer root page.
type RootPage struct {
	ID        ID
	Type      Type
	Mode      Mode
	UID, GID  uint32
	Flags     uint32
	RootInode int64 // page number
	Custom    int64 // page number
	Lease     uint64
	Path      string
}

// EncodeRootPage serializes a root page into a PageSize buffer.
func EncodeRootPage(rp *RootPage) []byte {
	if len(rp.Path) > MaxPathLen {
		panic(fmt.Sprintf("coffer: path too long (%d bytes)", len(rp.Path)))
	}
	buf := make([]byte, nvm.PageSize)
	binary.LittleEndian.PutUint64(buf[rpMagicOff:], RootPageMagic)
	binary.LittleEndian.PutUint32(buf[rpIDOff:], uint32(rp.ID))
	binary.LittleEndian.PutUint32(buf[rpTypeOff:], uint32(rp.Type))
	binary.LittleEndian.PutUint32(buf[rpModeOff:], uint32(rp.Mode))
	binary.LittleEndian.PutUint32(buf[rpUIDOff:], rp.UID)
	binary.LittleEndian.PutUint32(buf[rpGIDOff:], rp.GID)
	binary.LittleEndian.PutUint32(buf[rpFlagsOff:], rp.Flags)
	binary.LittleEndian.PutUint64(buf[rpRootInodeOff:], uint64(rp.RootInode))
	binary.LittleEndian.PutUint64(buf[rpCustomOff:], uint64(rp.Custom))
	binary.LittleEndian.PutUint64(buf[rpLeaseOff:], rp.Lease)
	binary.LittleEndian.PutUint16(buf[rpPathLenOff:], uint16(len(rp.Path)))
	copy(buf[rpPathOff:], rp.Path)
	return buf
}

// DecodeRootPage parses a root page buffer. It returns an error (not a
// panic) because corrupted root pages are an expected recovery input.
func DecodeRootPage(buf []byte) (*RootPage, error) {
	if len(buf) < nvm.PageSize {
		return nil, fmt.Errorf("coffer: root page buffer too small (%d)", len(buf))
	}
	if binary.LittleEndian.Uint64(buf[rpMagicOff:]) != RootPageMagic {
		return nil, fmt.Errorf("coffer: bad root page magic")
	}
	pl := int(binary.LittleEndian.Uint16(buf[rpPathLenOff:]))
	if pl > MaxPathLen {
		return nil, fmt.Errorf("coffer: corrupt path length %d", pl)
	}
	return &RootPage{
		ID:        ID(binary.LittleEndian.Uint32(buf[rpIDOff:])),
		Type:      Type(binary.LittleEndian.Uint32(buf[rpTypeOff:])),
		Mode:      Mode(binary.LittleEndian.Uint32(buf[rpModeOff:])),
		UID:       binary.LittleEndian.Uint32(buf[rpUIDOff:]),
		GID:       binary.LittleEndian.Uint32(buf[rpGIDOff:]),
		Flags:     binary.LittleEndian.Uint32(buf[rpFlagsOff:]),
		RootInode: int64(binary.LittleEndian.Uint64(buf[rpRootInodeOff:])),
		Custom:    int64(binary.LittleEndian.Uint64(buf[rpCustomOff:])),
		Lease:     binary.LittleEndian.Uint64(buf[rpLeaseOff:]),
		Path:      string(buf[rpPathOff : rpPathOff+pl]),
	}, nil
}
