package zofs

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"zofs/internal/kernfs"
	"zofs/internal/nvm"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// TestDcacheBasicCoherence drives every dentry mutation through the public
// operations and checks the cached lookups stay exact: insert, unlink,
// rename within a directory, rename across directories.
func TestDcacheBasicCoherence(t *testing.T) {
	_, _, f, th := newTestFS(t, Options{})
	for _, d := range []string{"/a", "/b"} {
		if err := f.Mkdir(th, d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Create(th, "/a/one", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(th, "/a/one"); err != nil {
		t.Fatalf("cached lookup after create: %v", err)
	}
	if err := f.Rename(th, "/a/one", "/a/two"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(th, "/a/one"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("old name survived rename: %v", err)
	}
	if _, err := f.Stat(th, "/a/two"); err != nil {
		t.Fatalf("new name after rename: %v", err)
	}
	if err := f.Rename(th, "/a/two", "/b/three"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(th, "/a/two"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("source dir still lists moved file: %v", err)
	}
	if _, err := f.Stat(th, "/b/three"); err != nil {
		t.Fatalf("cross-dir rename target: %v", err)
	}
	if err := f.Unlink(th, "/b/three"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(th, "/b/three"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unlinked name still resolves: %v", err)
	}
}

// TestDcacheNegativeEntries: a miss is answered from index completeness, and
// a subsequent insert of that very name must invalidate the negative answer
// immediately.
func TestDcacheNegativeEntries(t *testing.T) {
	_, _, f, th := newTestFS(t, Options{})
	if err := f.Mkdir(th, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	// Prime the index with some content, then miss.
	for i := 0; i < 40; i++ {
		if _, err := f.Create(th, fmt.Sprintf("/d/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Stat(th, "/d/ghost"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("expected miss, got %v", err)
	}
	if _, err := f.Create(th, "/d/ghost", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(th, "/d/ghost"); err != nil {
		t.Fatalf("negative entry masked a fresh create: %v", err)
	}
	// And the reverse: a positive answer must die with the dentry.
	if err := f.Unlink(th, "/d/ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(th, "/d/ghost"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stale positive after unlink: %v", err)
	}
}

// TestDcacheLookupMatchesScan cross-checks the cached lookup against the
// scan path over a directory large enough to spill into bucket chains.
func TestDcacheLookupMatchesScan(t *testing.T) {
	_, _, f, th := newTestFS(t, Options{})
	if err := f.Mkdir(th, "/big", 0o755); err != nil {
		t.Fatal(err)
	}
	const n = 600
	for i := 0; i < n; i++ {
		if _, err := f.Create(th, fmt.Sprintf("/big/file-%04d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Remove a third to exercise free-list reuse, then re-create half of
	// those under the same names.
	for i := 0; i < n; i += 3 {
		if err := f.Unlink(th, fmt.Sprintf("/big/file-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 6 {
		if _, err := f.Create(th, fmt.Sprintf("/big/file-%04d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pos, err := f.walk(th, "/big", false, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pos.close()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("file-%04d", i)
		cd, cloc, cerr := f.dirLookup(th, pos.ino, name)
		sd, sloc, serr := f.dirLookupScan(th, pos.ino, name)
		if (cerr == nil) != (serr == nil) {
			t.Fatalf("%s: cached err=%v scan err=%v", name, cerr, serr)
		}
		if cerr == nil && (cd != sd || cloc != sloc) {
			t.Fatalf("%s: cached (%+v,%+v) != scan (%+v,%+v)", name, cd, cloc, sd, sloc)
		}
	}
}

// TestDcacheConcurrency races cached lookups against creates, unlinks and
// renames from several threads (run under -race by scripts/check.sh). The
// stable set must always resolve; churn names may come and go but must
// never return a wrong answer shape (panic, corruption error).
func TestDcacheConcurrency(t *testing.T) {
	_, _, f, th := newTestFS(t, Options{})
	if err := f.Mkdir(th, "/c", 0o755); err != nil {
		t.Fatal(err)
	}
	const stable = 50
	for i := 0; i < stable; i++ {
		if _, err := f.Create(th, fmt.Sprintf("/c/stable-%02d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	// Threads of the FS's own process share its coffer mappings.
	newThread := func() *proc.Thread { return th.Proc.NewThread() }
	// Mutators: create/unlink/rename private name ranges.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tth := newThread()
			for i := 0; i < 120; i++ {
				name := fmt.Sprintf("/c/churn-%d-%02d", w, i%10)
				if _, err := f.Create(tth, name, 0o644); err != nil {
					errc <- fmt.Errorf("create %s: %w", name, err)
					return
				}
				if i%3 == 0 {
					moved := fmt.Sprintf("/c/moved-%d-%02d", w, i%10)
					if err := f.Rename(tth, name, moved); err != nil {
						errc <- fmt.Errorf("rename %s: %w", name, err)
						return
					}
					name = moved
				}
				if err := f.Unlink(tth, name); err != nil {
					errc <- fmt.Errorf("unlink %s: %w", name, err)
					return
				}
			}
		}(w)
	}
	// Readers: the stable set must always be there; churn names must
	// either resolve or miss cleanly.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tth := newThread()
			for i := 0; i < 300; i++ {
				if _, err := f.Stat(tth, fmt.Sprintf("/c/stable-%02d", i%stable)); err != nil {
					errc <- fmt.Errorf("stable lookup: %w", err)
					return
				}
				churn := fmt.Sprintf("/c/churn-%d-%02d", i%2, i%10)
				if _, err := f.Stat(tth, churn); err != nil && !errors.Is(err, vfs.ErrNotExist) {
					errc <- fmt.Errorf("churn lookup %s: %w", churn, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestDcacheColdAfterCrash: a post-crash remount must never serve a
// pre-crash cached dentry — ResetShared (the crash analogue) drops the
// whole cache, and recovery bumps the epoch for survivors.
func TestDcacheColdAfterCrash(t *testing.T) {
	dev, _, f, th := newTestFS(t, Options{})
	if err := f.Mkdir(th, "/d", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := f.Create(th, fmt.Sprintf("/d/f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Stat(th, "/d/f0"); err != nil { // warm the index
		t.Fatal(err)
	}
	if got := DirCacheDirs(dev); got == 0 {
		t.Fatal("cache should be warm before the crash")
	}
	dev.Crash()
	ResetShared(dev)
	if got := DirCacheDirs(dev); got != 0 {
		t.Fatalf("cache holds %d directory indexes after crash+reset", got)
	}
	k2, err := kernfs.Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	th2 := proc.NewProcess(dev, 0, 0).NewThread()
	if err := k2.FSMount(th2); err != nil {
		t.Fatal(err)
	}
	if _, err := FsckAll(k2, th2); err != nil {
		t.Fatal(err)
	}
	f2 := New(k2, Options{})
	// First post-crash lookups rebuild from NVM truth.
	for i := 0; i < 20; i++ {
		if _, err := f2.Stat(th2, fmt.Sprintf("/d/f%d", i)); err != nil {
			t.Fatalf("post-crash lookup f%d: %v", i, err)
		}
	}
	if _, err := f2.Stat(th2, "/d/never"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("phantom dentry after crash: %v", err)
	}
}

// TestBatchedGrantsReclaimedByRecovery: pages granted into a thread's
// volatile allocation cache but never used are unreferenced on NVM, so a
// crash leaks them — until recovery's in-use traversal returns them to the
// kernel. Repeated crash/recover cycles on a small device must therefore
// never run out of space, and each recovery must actually reclaim the
// stranded batch.
func TestBatchedGrantsReclaimedByRecovery(t *testing.T) {
	dev := nvm.NewDevice(64 << 20)
	if err := kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755}); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 12; cycle++ {
		k, err := kernfs.Mount(dev)
		if err != nil {
			t.Fatalf("cycle %d: mount: %v", cycle, err)
		}
		th := proc.NewProcess(dev, 0, 0).NewThread()
		if err := k.FSMount(th); err != nil {
			t.Fatal(err)
		}
		stats, err := FsckAll(k, th)
		if err != nil {
			t.Fatalf("cycle %d: fsck: %v", cycle, err)
		}
		if cycle > 0 {
			var reclaimed int64
			for _, st := range stats {
				reclaimed += st.PagesReclaimed
			}
			if reclaimed == 0 {
				t.Fatalf("cycle %d: recovery reclaimed nothing despite stranded batches", cycle)
			}
		}
		f := New(k, Options{})
		if err := f.EnsureRootDir(th); err != nil {
			t.Fatal(err)
		}
		// Recovery just reclaimed the previous cycle's stranded batches: the
		// space accounting must reconcile exactly — table vs trees vs census
		// on the kernel side, free inventory inside the grant on the µFS
		// side — with nothing double-counted or leaked.
		if err := f.VerifySpace(); err != nil {
			t.Fatalf("cycle %d: space accounting after recovery: %v", cycle, err)
		}
		for _, cs := range f.SpaceReport() {
			if cs.Used < 0 || cs.Used+cs.FreeListed+cs.Cached != cs.Pages {
				t.Fatalf("cycle %d: coffer %d space rows inconsistent: %+v", cycle, cs.ID, cs)
			}
		}
		// One create pulls a full metadata batch (and the write a data
		// batch) into the volatile caches; the rest of both batches is
		// stranded by the "crash" below.
		h, err := f.Create(th, fmt.Sprintf("/file-%d", cycle), 0o644)
		if err != nil {
			t.Fatalf("cycle %d: create: %v", cycle, err)
		}
		if _, err := h.WriteAt(th, make([]byte, 2*pageSize), 0); err != nil {
			t.Fatalf("cycle %d: write: %v", cycle, err)
		}
		h.Close(th)
		dev.Crash()
		ResetShared(dev)
	}
}
