package zofs_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"zofs/internal/coffer"
	"zofs/internal/kernfs"
	"zofs/internal/nvm"
	"zofs/internal/proc"
	"zofs/internal/vfs"
	"zofs/internal/zofs"
)

// modelFile mirrors one file's expected state.
type modelFile struct {
	data []byte
	mode uint32
}

// TestRandomOpsAgainstModel drives ZoFS with a long random operation
// sequence and checks every observable result against an in-memory model —
// files' contents, sizes, directory listings and existence.
func TestRandomOpsAgainstModel(t *testing.T) {
	dev := nvm.NewDevice(2 << 30)
	if err := kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755}); err != nil {
		t.Fatal(err)
	}
	k, err := kernfs.Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	p := proc.NewProcess(dev, 0, 0)
	th := p.NewThread()
	if err := k.FSMount(th); err != nil {
		t.Fatal(err)
	}
	f := zofs.New(k, zofs.Options{})
	zofs.SetDebugPool(true)
	if err := f.EnsureRootDir(th); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(20260706))
	model := map[string]*modelFile{} // path -> file
	dirs := []string{"/"}
	for i := 0; i < 3; i++ {
		d := fmt.Sprintf("/dir%d", i)
		if err := f.Mkdir(th, d, 0o755); err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, d)
	}

	names := func() []string {
		out := make([]string, 0, len(model))
		for p := range model {
			out = append(out, p)
		}
		return out
	}
	pick := func() (string, bool) {
		ns := names()
		if len(ns) == 0 {
			return "", false
		}
		return ns[rng.Intn(len(ns))], true
	}

	var lastDetail string
	verifyAll := func(i int, op int) {
		for path, m := range model {
			func() {
				defer func() {
					if r := recover(); r != nil {
						for q := range model {
							if fi, err := f.Stat(th, q); err == nil {
								t.Logf("  %s -> inode %d coffer %d", q, fi.Inode, fi.Coffer)
							}
						}
						t.Fatalf("op %d (kind %d, %s): verify of %s panicked: %v", i, op, lastDetail, path, r)
					}
				}()
				h, err := f.Open(th, path, vfs.O_RDONLY)
				if err != nil {
					t.Fatalf("op %d (kind %d, %s): verify open %s: %v", i, op, lastDetail, path, err)
				}
				got := make([]byte, len(m.data)+10)
				n, err := h.ReadAt(th, got, 0)
				h.Close(th)
				if err != nil || n != len(m.data) || !bytes.Equal(got[:n], m.data) {
					t.Fatalf("op %d (kind %d, %s): %s mismatch n=%d want %d err=%v", i, op, lastDetail, path, n, len(m.data), err)
				}
			}()
		}
	}

	const ops = 3000
	for i := 0; i < ops; i++ {
		op := rng.Intn(10)
		switch op {
		case 0, 1: // create
			path := vfs.Join(dirs[rng.Intn(len(dirs))], fmt.Sprintf("f%04d", rng.Intn(200)))
			mode := uint32(0o644)
			lastDetail = "create " + path
			h, err := f.Create(th, path, 0o644)
			if err != nil {
				t.Fatalf("op %d create %s: %v (free pages %d, coffers %d)", i, path, err, k.FreePages(), len(k.Coffers()))
			}
			h.Close(th)
			// creat() truncates an existing file but keeps its mode.
			if old, ok := model[path]; ok {
				mode = old.mode
			}
			model[path] = &modelFile{mode: mode}
		case 2, 3: // write at random offset
			path, ok := pick()
			if !ok {
				continue
			}
			h, err := f.Open(th, path, vfs.O_RDWR)
			if err != nil {
				t.Fatalf("op %d open %s: %v", i, path, err)
			}
			off := rng.Int63n(20000)
			n := rng.Intn(9000) + 1
			lastDetail = fmt.Sprintf("write %s off=%d n=%d", path, off, n)
			buf := make([]byte, n)
			rng.Read(buf)
			if _, err := h.WriteAt(th, buf, off); err != nil {
				t.Fatalf("op %d write: %v (free pages %d, coffers %d)", i, err, k.FreePages(), len(k.Coffers()))
			}
			h.Close(th)
			m := model[path]
			if int64(len(m.data)) < off+int64(n) {
				grown := make([]byte, off+int64(n))
				copy(grown, m.data)
				m.data = grown
			}
			copy(m.data[off:], buf)
		case 4: // unlink
			path, ok := pick()
			if !ok {
				continue
			}
			lastDetail = "unlink " + path
			if err := f.Unlink(th, path); err != nil {
				t.Fatalf("op %d unlink %s: %v", i, path, err)
			}
			delete(model, path)
		case 5: // truncate
			path, ok := pick()
			if !ok {
				continue
			}
			sz := rng.Int63n(30000)
			lastDetail = fmt.Sprintf("truncate %s %d", path, sz)
			if err := f.Truncate(th, path, sz); err != nil {
				t.Fatalf("op %d truncate: %v", i, err)
			}
			m := model[path]
			if int64(len(m.data)) > sz {
				m.data = m.data[:sz]
			} else {
				grown := make([]byte, sz)
				copy(grown, m.data)
				m.data = grown
			}
		case 6: // rename
			src, ok := pick()
			if !ok {
				continue
			}
			dst := vfs.Join(dirs[rng.Intn(len(dirs))], fmt.Sprintf("r%04d", rng.Intn(200)))
			if src == dst {
				continue
			}
			if _, isDir := model[dst]; false && isDir {
				continue
			}
			lastDetail = "rename " + src + "->" + dst
			if err := f.Rename(th, src, dst); err != nil {
				t.Fatalf("op %d rename %s->%s: %v", i, src, dst, err)
			}
			model[dst] = model[src]
			delete(model, src)
		case 7: // verify one file fully
			path, ok := pick()
			if !ok {
				continue
			}
			m := model[path]
			h, err := f.Open(th, path, vfs.O_RDONLY)
			if err != nil {
				t.Fatalf("op %d verify-open %s: %v", i, path, err)
			}
			got := make([]byte, len(m.data)+100)
			n, err := h.ReadAt(th, got, 0)
			if err != nil {
				t.Fatalf("op %d verify-read: %v", i, err)
			}
			h.Close(th)
			if n != len(m.data) || !bytes.Equal(got[:n], m.data) {
				t.Fatalf("op %d: %s content mismatch (%d vs %d bytes)", i, path, n, len(m.data))
			}
		case 8: // stat size check
			path, ok := pick()
			if !ok {
				continue
			}
			fi, err := f.Stat(th, path)
			if err != nil {
				t.Fatalf("op %d stat %s: %v", i, path, err)
			}
			if fi.Size != int64(len(model[path].data)) {
				t.Fatalf("op %d: %s size %d want %d", i, path, fi.Size, len(model[path].data))
			}
		case 9: // chmod (split or in-place)
			path, ok := pick()
			if !ok {
				continue
			}
			mode := []uint32{0o644, 0o600, 0o640}[rng.Intn(3)]
			lastDetail = fmt.Sprintf("chmod %s %o", path, mode)
			if err := f.Chmod(th, path, coffer.Mode(mode)); err != nil {
				t.Fatalf("op %d chmod %s: %v", i, path, err)
			}
			model[path].mode = mode
		}
		if i%25 == 0 {
			verifyAll(i, op)
		}
	}

	// Final full verification of every surviving file.
	for path, m := range model {
		fi, err := f.Stat(th, path)
		if err != nil {
			t.Fatalf("final stat %s: %v", path, err)
		}
		if fi.Size != int64(len(m.data)) {
			t.Fatalf("final %s size %d want %d", path, fi.Size, len(m.data))
		}
		if uint32(fi.Mode) != m.mode {
			t.Fatalf("final %s mode %o want %o", path, fi.Mode, m.mode)
		}
		h, err := f.Open(th, path, vfs.O_RDONLY)
		if err != nil {
			t.Fatalf("final open %s: %v", path, err)
		}
		got := make([]byte, len(m.data))
		if n, _ := h.ReadAt(th, got, 0); n != len(m.data) || !bytes.Equal(got, m.data) {
			t.Fatalf("final %s content mismatch", path)
		}
		h.Close(th)
	}
	// Directory listings agree with the model.
	for _, d := range dirs {
		ents, err := f.ReadDir(th, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			full := vfs.Join(d, e.Name)
			if e.Type == vfs.TypeRegular {
				if _, ok := model[full]; !ok {
					t.Fatalf("listing has %s not in model", full)
				}
			}
		}
	}
}

// TestCrashFuzzRecovery applies random operations, crashes at random write
// counts, runs recovery and verifies the file system stays consistent and
// usable — repeatedly, on the same image.
func TestCrashFuzzRecovery(t *testing.T) {
	dev := nvm.NewDevice(512 << 20)
	if err := kernfs.Mkfs(dev, kernfs.MkfsOptions{RootMode: 0o755}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	// Stable files that must survive every crash+recovery cycle.
	{
		k, _ := kernfs.Mount(dev)
		p := proc.NewProcess(dev, 0, 0)
		th := p.NewThread()
		k.FSMount(th)
		f := zofs.New(k, zofs.Options{})
		f.EnsureRootDir(th)
		for i := 0; i < 5; i++ {
			h, err := f.Create(th, fmt.Sprintf("/stable%d", i), 0o644)
			if err != nil {
				t.Fatal(err)
			}
			h.WriteAt(th, bytes.Repeat([]byte{byte(i + 1)}, 2048), 0)
			h.Close(th)
		}
	}

	for round := 0; round < 6; round++ {
		k, err := kernfs.Mount(dev)
		if err != nil {
			t.Fatalf("round %d mount: %v", round, err)
		}
		p := proc.NewProcess(dev, 0, 0)
		th := p.NewThread()
		k.FSMount(th)
		f := zofs.New(k, zofs.Options{})

		dev.FailAfter(int64(5 + rng.Intn(200)))
		func() {
			defer func() {
				if r := recover(); r != nil && !nvm.IsInjectedCrash(r) {
					panic(r)
				}
			}()
			for i := 0; ; i++ {
				switch rng.Intn(4) {
				case 0:
					if h, err := f.Create(th, fmt.Sprintf("/tmp%d-%d", round, i), 0o644); err == nil {
						h.WriteAt(th, make([]byte, rng.Intn(10000)), 0)
						h.Close(th)
					}
				case 1:
					f.Unlink(th, fmt.Sprintf("/tmp%d-%d", round, rng.Intn(i+1)))
				case 2:
					f.Mkdir(th, fmt.Sprintf("/d%d-%d", round, i), 0o755)
				case 3:
					f.Rename(th, fmt.Sprintf("/tmp%d-%d", round, rng.Intn(i+1)), fmt.Sprintf("/mv%d-%d", round, i))
				}
			}
		}()
		dev.FailAfter(0)
		dev.Crash()
		zofs.ResetShared(dev)

		// Remount and recover.
		k2, err := kernfs.Mount(dev)
		if err != nil {
			t.Fatalf("round %d remount: %v", round, err)
		}
		th2 := proc.NewProcess(dev, 0, 0).NewThread()
		k2.FSMount(th2)
		if _, err := zofs.FsckAll(k2, th2); err != nil {
			t.Fatalf("round %d fsck: %v", round, err)
		}
		f2 := zofs.New(k2, zofs.Options{})
		// Stable files intact.
		for i := 0; i < 5; i++ {
			h, err := f2.Open(th2, fmt.Sprintf("/stable%d", i), vfs.O_RDONLY)
			if err != nil {
				t.Fatalf("round %d stable%d: %v", round, i, err)
			}
			buf := make([]byte, 2048)
			if n, err := h.ReadAt(th2, buf, 0); err != nil || n != 2048 || buf[0] != byte(i+1) {
				t.Fatalf("round %d stable%d content: n=%d err=%v", round, i, n, err)
			}
			h.Close(th2)
		}
		// FS is writable after recovery.
		if h, err := f2.Create(th2, fmt.Sprintf("/post%d", round), 0o644); err != nil {
			t.Fatalf("round %d post-create: %v", round, err)
		} else {
			h.Close(th2)
		}
	}
}
