package zofs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"zofs/internal/byteflow"
	"zofs/internal/coffer"
	"zofs/internal/nvm"
)

// Per-coffer space accounting (zofs-df). The kernel's allocation table is
// the authority for each coffer's grant; the µFS side adds where the granted
// pages are inside the coffer: chained on a persistent slot free list, held
// in this instance's volatile batch caches, or in use. The persistent free
// lists are read uncharged straight off the device — SpaceReport is a
// tooling operation, not a modeled syscall.

// SpaceReport returns one space row per coffer, in ascending coffer-ID
// order. Cached counts only this FS instance's volatile batch caches; other
// processes' caches are invisible by design (a crash would reclaim them,
// §5.3) and show up in Used.
func (f *FS) SpaceReport() []byteflow.CofferSpace {
	dev := f.kern.Device()
	var out []byteflow.CofferSpace
	for _, id := range f.kern.Coffers() {
		rp, ok := f.kern.Info(id)
		if !ok {
			continue
		}
		exts := f.kern.ExtentsOf(id)
		var pages int64
		for _, e := range exts {
			pages += e.Count
		}
		cs := byteflow.CofferSpace{
			ID:      uint64(id),
			Path:    rp.Path,
			Pages:   pages,
			Extents: int64(len(exts)),
			Frag:    byteflow.FragScore(int64(len(exts)), pages),
		}
		if rp.Type == coffer.TypeZoFS {
			cs.FreeListed = int64(len(scanFreeLists(dev, rp.Custom)))
			cs.Cached = f.cachedPages(id)
		}
		cs.Used = cs.Pages - cs.FreeListed - cs.Cached
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// cachedPages sums the volatile batch caches this instance holds for a
// coffer across all thread slots and both allocation classes.
func (f *FS) cachedPages(id coffer.ID) int64 {
	f.mu.Lock()
	m := f.mounts[id]
	f.mu.Unlock()
	if m == nil {
		return 0
	}
	var n int64
	m.slots.Range(func(_, v any) bool {
		ts := v.(*threadSlots)
		n += int64(len(ts.cache[0]) + len(ts.cache[1]))
		return true
	})
	return n
}

// scanFreeLists walks every pool slot's persistent free-list chain on the
// given custom page, reading uncharged. Returns nil when the pool was never
// initialized.
func scanFreeLists(dev *nvm.Device, custom int64) []int64 {
	var w [8]byte
	dev.ReadNoCharge(custom*nvm.PageSize+customMagicOff, w[:])
	if binary.LittleEndian.Uint64(w[:]) != customMagic {
		return nil
	}
	var out []int64
	for idx := int64(0); idx < poolSlots; idx++ {
		off := custom*nvm.PageSize + poolOff + idx*slotSize
		dev.ReadNoCharge(off+slotHeadOff, w[:])
		for pg := int64(binary.LittleEndian.Uint64(w[:])); pg != 0; {
			out = append(out, pg)
			dev.ReadNoCharge(pg*nvm.PageSize, w[:])
			pg = int64(binary.LittleEndian.Uint64(w[:]))
		}
	}
	return out
}

// WearReport returns the device's page-wear snapshot with every page
// attributed to its owning coffer (Coffer 0 = unowned: superblock,
// allocation table, kernel free pool). Nil when accounting is disabled.
func (f *FS) WearReport() []byteflow.PageWear {
	wear := f.kern.Device().WearSnapshot()
	if wear == nil {
		return nil
	}
	type run struct {
		start, end int64
		id         uint64
	}
	var runs []run
	for _, id := range f.kern.Coffers() {
		for _, e := range f.kern.ExtentsOf(id) {
			runs = append(runs, run{e.Start, e.End(), uint64(id)})
		}
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].start < runs[j].start })
	for i := range wear {
		pg := wear[i].Page
		k := sort.Search(len(runs), func(j int) bool { return runs[j].end > pg })
		if k < len(runs) && runs[k].start <= pg {
			wear[i].Coffer = runs[k].id
		}
	}
	return wear
}

// VerifySpace cross-checks the space accounting three ways for every
// coffer: the kernel's volatile extent trees against the persistent
// allocation table (kernfs.VerifySpace), then the µFS-side split — the
// persistent free lists and this instance's batch caches must all lie
// inside the kernel's grant, with no page in two places.
func (f *FS) VerifySpace() error {
	if err := f.kern.VerifySpace(); err != nil {
		return err
	}
	dev := f.kern.Device()
	for _, id := range f.kern.Coffers() {
		rp, ok := f.kern.Info(id)
		if !ok || rp.Type != coffer.TypeZoFS {
			continue
		}
		owned := map[int64]bool{}
		for _, e := range f.kern.ExtentsOf(id) {
			for pg := e.Start; pg < e.End(); pg++ {
				owned[pg] = true
			}
		}
		seen := map[int64]bool{}
		for _, pg := range scanFreeLists(dev, rp.Custom) {
			if !owned[pg] {
				return &SpaceError{Coffer: id, Page: pg, Where: "free list", Problem: "outside the kernel grant"}
			}
			if seen[pg] {
				return &SpaceError{Coffer: id, Page: pg, Where: "free list", Problem: "chained twice"}
			}
			seen[pg] = true
		}
		f.mu.Lock()
		m := f.mounts[id]
		f.mu.Unlock()
		if m == nil {
			continue
		}
		var cacheErr *SpaceError
		m.slots.Range(func(_, v any) bool {
			ts := v.(*threadSlots)
			for class := range ts.cache {
				for _, pg := range ts.cache[class] {
					switch {
					case !owned[pg]:
						cacheErr = &SpaceError{Coffer: id, Page: pg, Where: "batch cache", Problem: "outside the kernel grant"}
					case seen[pg]:
						cacheErr = &SpaceError{Coffer: id, Page: pg, Where: "batch cache", Problem: "also on a free list"}
					default:
						seen[pg] = true
						continue
					}
					return false
				}
			}
			return true
		})
		if cacheErr != nil {
			return cacheErr
		}
	}
	return nil
}

// SpaceError reports one space-accounting inconsistency.
type SpaceError struct {
	Coffer  coffer.ID
	Page    int64
	Where   string
	Problem string
}

func (e *SpaceError) Error() string {
	return fmt.Sprintf("zofs: coffer %d page %d on %s %s", e.Coffer, e.Page, e.Where, e.Problem)
}
