package zofs

import (
	"zofs/internal/coffer"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// Rename moves a file or directory. Renames within one coffer are pure
// user-space dentry moves; renames that cross coffers must move every page
// of the file through the kernel (MovePages / coffer_split), which is the
// worst case measured in Table 9.
func (f *FS) Rename(th *proc.Thread, oldPath, newPath string) error {
	oldDir, oldBase := vfs.SplitPath(oldPath)
	newDir, newBase := vfs.SplitPath(newPath)
	if oldBase == "" || newBase == "" {
		return vfs.ErrInvalid
	}
	if len(newBase) > MaxNameLen {
		return vfs.ErrNameTooLong
	}
	if oldPath == newPath {
		return nil
	}

	src, err := f.walk(th, oldDir, true, true)
	if err != nil {
		return err
	}
	defer src.close()
	if src.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	dst, err := f.walk(th, newDir, true, true)
	if err != nil {
		return err
	}
	defer dst.close()
	if dst.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}

	// Lock both name buckets in key order (one lock if they coincide).
	kSrc := bucketKey(src.ino, oldBase)
	kDst := bucketKey(dst.ino, newBase)
	switch {
	case kSrc == kDst:
		f.sh.lockOf(kSrc).Lock(th.Clk)
		defer f.sh.lockOf(kSrc).Unlock(th.Clk)
	case kSrc < kDst:
		f.sh.lockOf(kSrc).Lock(th.Clk)
		defer f.sh.lockOf(kSrc).Unlock(th.Clk)
		f.sh.lockOf(kDst).Lock(th.Clk)
		defer f.sh.lockOf(kDst).Unlock(th.Clk)
	default:
		f.sh.lockOf(kDst).Lock(th.Clk)
		defer f.sh.lockOf(kDst).Unlock(th.Clk)
		f.sh.lockOf(kSrc).Lock(th.Clk)
		defer f.sh.lockOf(kSrc).Unlock(th.Clk)
	}
	th.CPU(4 * 30) // bucket lease acquisitions

	f.window(th, src.m, true)
	de, srcLoc, err := f.dirLookup(th, src.ino, oldBase)
	if err != nil {
		return err
	}

	// Clear the destination name if it exists (files only).
	f.window(th, dst.m, true)
	if old, oldLoc, err := f.dirLookup(th, dst.ino, newBase); err == nil {
		if vfs.FileType(old.typ) == vfs.TypeDir {
			return vfs.ErrExist
		}
		f.dirRemove(th, dst.ino, newBase, oldLoc)
		if old.cofferID != 0 {
			f.forgetMount(coffer.ID(old.cofferID))
			err := errno(f.kern.CofferDelete(th, coffer.ID(old.cofferID)))
			f.sh.dc.bump() // deleted coffer's pages may be re-granted
			if err != nil {
				return err
			}
		} else if !f.sh.orphan(old.inode, old.typ) {
			if vfs.FileType(old.typ) == vfs.TypeRegular {
				f.freeFileContent(th, dst.m, old.inode)
			} else {
				f.freePage(th, dst.m, classMeta, old.inode)
			}
		}
	}

	switch {
	case de.cofferID != 0:
		// The child is a coffer root: move the dentry and let the kernel
		// rewrite the coffer path tree.
		if err := f.dirInsert(th, dst.m, dst.ino, newBase, de.typ, de.cofferID, de.inode); err != nil {
			return err
		}
		f.window(th, src.m, true)
		f.dirRemove(th, src.ino, oldBase, srcLoc)
		return errno(f.kern.RenameCoffer(th, oldPath, newPath))

	case src.m.id == dst.m.id:
		// Pure in-coffer move: two atomic dentry updates.
		if err := f.dirInsert(th, dst.m, dst.ino, newBase, de.typ, 0, de.inode); err != nil {
			return err
		}
		f.dirRemove(th, src.ino, oldBase, srcLoc)
		if vfs.FileType(de.typ) == vfs.TypeDir {
			// Keep descendant coffer paths consistent.
			return errno(f.kern.RenamePrefix(th, oldPath, newPath))
		}
		return nil

	case vfs.FileType(de.typ) == vfs.TypeDir:
		// Moving a plain directory between coffers would require moving an
		// arbitrary subtree through the kernel; like a cross-device rename,
		// callers must copy instead.
		return vfs.ErrCrossDevice

	default:
		// Regular file or symlink moving between two coffers.
		rpSrc, _ := f.kern.Info(src.m.id)
		rpDst, _ := f.kern.Info(dst.m.id)
		f.window(th, src.m, true)
		pages := f.collectTreePages(th, de.inode, vfs.FileType(de.typ))
		if execMask(rpSrc.Mode) == execMask(rpDst.Mode) && rpSrc.UID == rpDst.UID && rpSrc.GID == rpDst.GID {
			// Same permission: retag the pages into the destination coffer.
			if err := errno(f.kern.MovePages(th, src.m.id, dst.m.id, pages)); err != nil {
				return err
			}
			f.window(th, dst.m, true)
			if err := f.dirInsert(th, dst.m, dst.ino, newBase, de.typ, 0, de.inode); err != nil {
				return err
			}
			f.window(th, src.m, true)
			f.dirRemove(th, src.ino, oldBase, srcLoc)
			return nil
		}
		// Different permission: the file becomes its own coffer at the new
		// path (split), referenced by a cross-coffer dentry.
		custom, err := f.allocPage(th, src.m, classMeta)
		if err != nil {
			return err
		}
		pages = append(pages, custom)
		newID, err := f.kern.CofferSplit(th, src.m.id, newPath, rpSrc.Mode, rpSrc.UID, rpSrc.GID, pages, de.inode, custom)
		if err != nil {
			return errno(err)
		}
		f.window(th, dst.m, true)
		if err := f.dirInsert(th, dst.m, dst.ino, newBase, de.typ, uint32(newID), de.inode); err != nil {
			return err
		}
		f.window(th, src.m, true)
		f.dirRemove(th, src.ino, oldBase, srcLoc)
		return nil
	}
}
