// Package zofs implements the example µFS of paper §5: a synchronous
// user-space NVM file system managing the interior of ZoFS-type coffers.
//
// On-NVM structures (all 4KB-page granularity, §5.1):
//
//   - Inodes occupy a full page: header, then 392 direct block pointers, one
//     indirect and one double-indirect pointer (Ext4-style). Symlink targets
//     live inside the inode page; a directory inode points to its
//     first-level hash page.
//   - Directories are adaptive two-level hash tables: a first-level page of
//     512 pointers to second-level pages; each second-level page holds 16
//     inline dentries in its first half and a 256-bucket hash table in its
//     second half, each bucket heading a linked list of dentry chain pages.
//     New dentries go to the inline area first; pages are allocated on
//     demand.
//   - Each dentry carries the filename hash, the name, the coffer-ID of a
//     cross-coffer child (0 = same coffer) and the inode pointer. Its first
//     8 bytes are the atomic commit word.
//   - The coffer's custom page holds the shared pool of leased per-thread
//     free-list structures (§5.2, Figure 6); free pages are chained through
//     their first 8 bytes.
package zofs

import (
	"encoding/binary"
	"hash/fnv"

	"zofs/internal/nvm"
)

// pageSize aliases the device page size for brevity.
const pageSize = nvm.PageSize

// Inode page layout.
const (
	inoMagic    = 0x5A494E4F // "ZINO"
	inoMagicOff = 0          // u32
	inoTypeOff  = 4          // u32 (vfs.FileType)
	inoModeOff  = 8          // u32
	inoUIDOff   = 12         // u32
	inoGIDOff   = 16         // u32
	inoNlinkOff = 20         // u32
	inoSizeOff  = 24         // u64
	inoMtimeOff = 32         // u64
	inoCtimeOff = 40         // u64
	inoLeaseOff = 48         // u64 lease lock word {tid:16 | epoch:8 | expiry:40}
	inoDirL1Off = 56         // u64 (directories: first-level hash page)

	inoHeaderLen = 64 // bytes read as "the inode header"

	inoSymLenOff = 64 // u16 (symlinks: target length)
	inoSymTgtOff = 66 // symlink target bytes (max symMaxLen)
	symMaxLen    = 1024

	inoDirectOff   = 64   // u64 x inoDirectCnt (regular files)
	inoDirectCnt   = 392  //
	inoIndirectOff = 3200 // u64
	inoDIndirOff   = 3208 // u64

	// Inline data (§5.1's "embedding file data in the inode page", the
	// paper's future-work optimization, enabled by Options.InlineData):
	// small files live entirely in the tail of their inode page.
	inoInlineFlag = 3216 // u64: 1 = data is inline
	inoInlineOff  = 3224
	inlineCap     = nvm.PageSize - inoInlineOff // 872 bytes

	ptrsPerPage = nvm.PageSize / 8 // 512
)

// maxBlocks is the largest block index + 1 a file can map.
const maxBlocks = inoDirectCnt + ptrsPerPage + ptrsPerPage*ptrsPerPage

// Dentry layout (128 bytes; first 8 bytes are the atomic commit word:
// state, name length and name hash — §5.3's ordered update commit point).
const (
	dentrySize  = 128
	deCommitOff = 0  // u64: state u8 | nameLen u8 | pad u16 | hash u32
	deCofferOff = 8  // u32 cross-coffer target (0 = same coffer)
	deInodeOff  = 16 // u64 inode page (cross-coffer: target's root inode)
	deNameOff   = 24
	MaxNameLen  = dentrySize - deNameOff // 104
	deStateFree = 0
	deStateLive = 1
)

// Directory page geometry (§5.1).
const (
	dirL1Slots     = 512                                        // first-level hash pointers
	l2InlineCnt    = 16                                         // inline dentries in a second-level page
	l2BucketOff    = l2InlineCnt * dentrySize                   // 2048
	l2Buckets      = 256                                        // second-level hash buckets
	chainNextOff   = 0                                          // u64 next chain page
	chainFirstDe   = 64                                         // dentries start here in a chain page
	chainDentryCnt = (nvm.PageSize - chainFirstDe) / dentrySize // 31
)

// Custom (per-coffer) page: the allocator pool (§5.2, Figure 6).
const (
	customMagic    = 0x5A435553544F4D00 // "ZCUSTOM\0"
	customMagicOff = 0
	poolOff        = 64
	slotSize       = 32 // {tid u64, lease u64 (expiry ns), head u64, count u64}
	poolSlots      = 62 // 62*32 = 1984 bytes, fits the page comfortably
	slotTIDOff     = 0
	slotLeaseOff   = 8
	slotHeadOff    = 16
	slotCountOff   = 24
)

// leaseDuration is the validity window of allocator and inode leases in
// virtual nanoseconds.
const leaseDuration = 100_000_000 // 100ms

// nameHash hashes a file name once; the three hash consumers (first-level
// index, second-level bucket, dentry check word) take different bit ranges.
func nameHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

func l1Index(h uint64) int64    { return int64(h % dirL1Slots) }
func l2Bucket(h uint64) int64   { return int64((h >> 16) % l2Buckets) }
func checkHash(h uint64) uint32 { return uint32(h) }

// dentryCommit packs the commit word: state, name length, file type and
// name hash all publish in one atomic 8-byte store.
func dentryCommit(state uint8, nameLen int, typ uint8, hash uint32) uint64 {
	return uint64(state) | uint64(nameLen)<<8 | uint64(typ)<<16 | uint64(hash)<<32
}

// unpackCommit splits the commit word.
func unpackCommit(w uint64) (state uint8, nameLen int, typ uint8, hash uint32) {
	return uint8(w), int(uint8(w >> 8)), uint8(w >> 16), uint32(w >> 32)
}

// leaseWord packs an allocator-slot lease lock value: owner tid in the top
// 16 bits, expiry virtual time (ns) in the low 48.
func leaseWord(tid int, expiry int64) uint64 {
	return uint64(tid&0xffff)<<48 | uint64(expiry)&0xffffffffffff
}

// unpackLease splits a slot lease word.
func unpackLease(w uint64) (tid int, expiry int64) {
	return int(w >> 48), int64(w & 0xffffffffffff)
}

// inoLeaseWord packs an inode lease lock value: owner tid (top 16 bits), a
// fencing epoch (8 bits, bumped on every steal so a resurrected stale
// holder's publishes are rejected) and the expiry virtual time in the low
// 40 bits (~18 virtual minutes of range — campaigns run milliseconds).
func inoLeaseWord(tid, epoch int, expiry int64) uint64 {
	return uint64(tid&0xffff)<<48 | uint64(epoch&0xff)<<40 | uint64(expiry)&0xffffffffff
}

// unpackInoLease splits an inode lease word.
func unpackInoLease(w uint64) (tid, epoch int, expiry int64) {
	return int(w >> 48), int(uint8(w >> 40)), int64(w & 0xffffffffff)
}

// u64at / putU64 are little helpers over little-endian encoding.
func u64at(b []byte, off int) uint64     { return binary.LittleEndian.Uint64(b[off:]) }
func u32at(b []byte, off int) uint32     { return binary.LittleEndian.Uint32(b[off:]) }
func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
func putU32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
