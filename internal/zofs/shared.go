package zofs

import (
	"strconv"
	"sync"

	"zofs/internal/byteflow"
	"zofs/internal/lockprof"
	"zofs/internal/nvm"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/retry"
	"zofs/internal/vfs"
)

// shared holds the cross-process coordination state for one device's ZoFS
// coffers. On real hardware this is carried entirely by NVM lease words and
// cache coherence; in the simulation the persistent lease words are still
// maintained (recovery inspects and clears them) while the blocking/waiting
// behaviour is modeled by per-inode virtual-time readers-writer locks,
// shared by every process of the same device.
type shared struct {
	locks sync.Map // inode page (int64) -> *lockprof.RWMutex
	// open tracks open-handle counts per inode across every process of the
	// device, so unlink can defer content reclamation until the last close
	// (POSIX semantics). A crash drops the table; recovery reclaims the
	// orphans' pages (§5.3).
	open sync.Map // inode page (int64) -> *openState
	// dc is the volatile directory lookup index (see dcache.go). Dropping
	// the shared state on crash drops it too, so recovery can never observe
	// pre-crash cached dentries.
	dc dcache
	// retained maps inode page -> parked lease word (uint64) for batched
	// lease renewal (DESIGN.md §14): unlockInode leaves a still-live lease
	// word in NVM and parks it here instead of CAS-clearing it, so the next
	// lock of the same inode by the same thread within the lease window
	// reuses the word with zero NVM writes. Another thread finding a parked
	// word steals it immediately (epoch bump) — the park is the proof the
	// in-process hold is over. Volatile by design: a crash drops the table,
	// leaving the word for recovery to clear, exactly like a crashed live
	// lease.
	retained sync.Map
}

type openState struct {
	mu       sync.Mutex
	count    int
	orphaned bool
	typ      uint8 // vfs.FileType of the orphan, for reclamation
}

// retain registers an open handle on an inode.
func (s *shared) retain(ino int64) {
	v, _ := s.open.LoadOrStore(ino, &openState{})
	st := v.(*openState)
	st.mu.Lock()
	st.count++
	st.mu.Unlock()
}

// release drops a handle; it reports whether the caller must now reclaim an
// orphaned inode's content (and of which type).
func (s *shared) release(ino int64) (reclaim bool, typ uint8) {
	v, ok := s.open.Load(ino)
	if !ok {
		return false, 0
	}
	st := v.(*openState)
	st.mu.Lock()
	st.count--
	if st.count <= 0 {
		reclaim, typ = st.orphaned, st.typ
		s.open.Delete(ino)
	}
	st.mu.Unlock()
	return reclaim, typ
}

// orphan marks an unlinked-but-open inode; it reports whether any handle is
// still open (true = defer reclamation to the last close).
func (s *shared) orphan(ino int64, typ uint8) bool {
	v, ok := s.open.Load(ino)
	if !ok {
		return false
	}
	st := v.(*openState)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.count <= 0 {
		return false
	}
	st.orphaned, st.typ = true, typ
	return true
}

var sharedRegistry sync.Map // nvm.Device UID -> *shared

// ResetShared discards all volatile cross-process coordination state for a
// device — the analogue of every process dying in a power failure. Crash
// tests call it right after nvm.Device.Crash, before remounting; persistent
// lease words remain on the device for recovery to clear.
func ResetShared(dev *nvm.Device) { sharedRegistry.Delete(dev.UID()) }

func sharedFor(dev *nvm.Device) *shared {
	if s, ok := sharedRegistry.Load(dev.UID()); ok {
		return s.(*shared)
	}
	s, _ := sharedRegistry.LoadOrStore(dev.UID(), &shared{})
	return s.(*shared)
}

// lockOf returns the shared lock for an inode page (non-negative keys) or a
// directory hash bucket (negative keys), naming it for the lock profiler on
// first creation.
func (s *shared) lockOf(page int64) *lockprof.RWMutex {
	if l, ok := s.locks.Load(page); ok {
		return l.(*lockprof.RWMutex)
	}
	var nl *lockprof.RWMutex
	if page < 0 {
		nl = lockprof.NewRWMutex("zofs.dirbucket", strconv.FormatInt(-page, 10))
	} else {
		nl = lockprof.NewRWMutex("zofs.inode", strconv.FormatInt(page, 10))
	}
	l, _ := s.locks.LoadOrStore(page, nl)
	return l.(*lockprof.RWMutex)
}

// leaseAcquirePolicy bounds how long an op may wait behind a live foreign
// inode lease (a stalled or dead holder in another process): jittered
// exponential polling of the lease word, giving up with a typed timeout
// after five lease windows. The waits are real virtual-time sleeps, billed
// to the spans retry component.
var leaseAcquirePolicy = retry.Policy{
	Base:   20_000, // 20µs: first re-poll of the lease word
	Cap:    leaseDuration / 4,
	Budget: 5 * leaseDuration,
}

// lockInode write-locks an inode: virtual-time/real serialization through
// the shared lock, plus the persistent lease word (§5.2) so that crashed
// holders are observable and recoverable. The write window for the owning
// coffer is (re)opened, since the lease write needs it. The returned epoch
// fences the caller's commit points (checkLease) and must be handed back to
// unlockInode. On vfs.ErrLeaseTimeout the shared lock is already released.
func (f *FS) lockInode(th *proc.Thread, m *mount, ino int64) (uint8, error) {
	sp := f.span(th)
	th.CPU(perfmodel.CPULockAcquire) // clock_gettime via vDSO + bookkeeping
	t0 := th.Clk.Now()
	f.sh.lockOf(ino).Lock(th.Clk)
	if w := th.Clk.Now() - t0; w > 0 {
		sp.LockContend(ino, w)
	}
	f.window(th, m, true)
	epoch, err := f.claimInodeLease(th, ino)
	if err != nil {
		f.sh.lockOf(ino).Unlock(th.Clk)
		return 0, err
	}
	return epoch, nil
}

// claimInodeLease takes the persistent inode lease by CAS. In-process
// writers are already serialized by the shared lock; the loop exists for
// the cross-process cases the lease word carries: a free word is claimed at
// its current epoch, an expired foreign lease is stolen with the epoch
// bumped (fencing the late holder), and a live foreign lease is waited out
// under the unified retry policy until its expiry or the op's deadline
// budget runs out.
func (f *FS) claimInodeLease(th *proc.Thread, ino int64) (uint8, error) {
	off := ino*pageSize + inoLeaseOff
	wprev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	defer th.Clk.SetWriteClass(wprev)
	batch := !f.opts.NoLeaseBatch
	var bo *retry.Backoff
	for {
		// The lease word of a repeatedly locked inode stays resident in the
		// owner's cache between ops; contended re-polls after a sleep pay
		// the coherence miss through the CAS instead.
		w := th.Load64Cached(off)
		tid, epoch, expiry := unpackInoLease(w)
		now := th.Clk.Now()
		if batch && w != 0 {
			if parked, ok := f.sh.retained.Load(ino); ok && parked.(uint64) == w {
				if tid == th.TID&0xffff {
					// Our own parked lease: the batched fast path. Reuse the
					// word as-is — zero NVM writes per lock/unlock pair —
					// renewing only once the window is half-spent (the
					// allocator slot idiom), so renewals amortize to one
					// write per lease window instead of two per op.
					if expiry > now && expiry-now >= leaseDuration/2 && expiry <= now+leaseDuration {
						f.sh.retained.Delete(ino)
						return uint8(epoch), nil
					}
					if th.CAS64(off, w, inoLeaseWord(th.TID, epoch, now+leaseDuration)) {
						f.sh.retained.Delete(ino)
						return uint8(epoch), nil
					}
					continue
				}
				// Foreign parked lease: the park proves the holder's
				// in-process hold ended, so steal immediately (epoch bump
				// fences the parker's stale word) instead of sleeping out
				// the remaining window.
				ne := (epoch + 1) & 0xff
				if th.CAS64(off, w, inoLeaseWord(th.TID, ne, now+leaseDuration)) {
					f.sh.retained.Delete(ino)
					return uint8(ne), nil
				}
				continue
			}
		}
		switch {
		case w == 0 || (tid == th.TID&0xffff && expiry > now):
			// Free, or our own still-live lease (a re-claimed word after a
			// partial failure): (re)take it at the current epoch.
			if th.CAS64(off, w, inoLeaseWord(th.TID, epoch, now+leaseDuration)) {
				return uint8(epoch), nil
			}
		case expiry <= now:
			// Expired foreign lease — the holder died or stalled past its
			// window. Steal it, bumping the epoch so the fence rejects any
			// in-flight publish the old holder wakes up with.
			ne := (epoch + 1) & 0xff
			if th.CAS64(off, w, inoLeaseWord(th.TID, ne, now+leaseDuration)) {
				return uint8(ne), nil
			}
		default:
			// Live foreign lease: wait it out under the retry policy.
			if bo == nil {
				bo = leaseAcquirePolicy.Start(now, uint64(th.TID)<<32^uint64(ino))
			}
			th.CPU(perfmodel.CPULockAcquire) // lease-word re-poll bookkeeping
			if !bo.SleepUntil(th.Clk, expiry+1) {
				return 0, vfs.ErrLeaseTimeout
			}
		}
	}
}

// unlockInode releases the inode lease taken at the given epoch. The clear
// is a CAS against exactly the word we published: if the lease was stolen
// while we ran (we stalled past expiry), the stealer's word is left intact
// — clearing it would hand a third writer a lock the stealer still holds.
//
// With batching on (the default), a still-live own lease is parked instead
// of cleared: the word stays in NVM and the retained table records it, so
// the thread's next lock of the same inode inside the lease window costs no
// NVM write at all — one renewal per lease window per thread instead of a
// CAS pair per op (the DWOM hold-time fix).
func (f *FS) unlockInode(th *proc.Thread, m *mount, ino int64, epoch uint8) {
	f.window(th, m, true)
	wprev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	off := ino*nvm.PageSize + inoLeaseOff
	w := th.Load64Cached(off) // written by this thread at lock time
	tid, ep, expiry := unpackInoLease(w)
	if w != 0 && tid == th.TID&0xffff && uint8(ep) == epoch {
		if !f.opts.NoLeaseBatch && expiry > th.Clk.Now() {
			f.sh.retained.Store(ino, w)
		} else {
			th.CAS64(off, w, 0)
		}
	}
	th.Clk.SetWriteClass(wprev)
	f.sh.lockOf(ino).Unlock(th.Clk)
}

// checkLease is the epoch fence consulted immediately before a commit-point
// publish (setInodeSize, mtime): it verifies the thread still holds the
// inode lease at the epoch it acquired. A holder resurrected after a stall
// finds its epoch superseded by a steal (or its lease expired) and gets a
// typed stale-lease error instead of silently publishing over the stealer.
func (f *FS) checkLease(th *proc.Thread, ino int64, epoch uint8) error {
	th.CPU(perfmodel.CPULockAcquire)                 // lease-word validation read
	w := th.Load64Cached(ino*pageSize + inoLeaseOff) // warm: written at lock time
	tid, ep, expiry := unpackInoLease(w)
	if tid != th.TID&0xffff || uint8(ep) != epoch || expiry <= th.Clk.Now() {
		return vfs.ErrStaleLease
	}
	return nil
}

// Directory mutations lock the *hash bucket* a name falls in, not the whole
// directory — the fine-grained locking that lets ZoFS's two-level hash
// directories scale on huge shared directories (Fig. 9's webproxy/varmail).
// Bucket lock keys live in a negative namespace so they never collide with
// inode page numbers in the shared lock table. The bucket's lease word
// conceptually lives in the second-level page; its acquisition cost is
// charged per lock operation.

// bucketKey derives the lock-table key for a name's bucket in a directory.
func bucketKey(dirIno int64, name string) int64 {
	return -(dirIno*dirL1Slots + l1Index(nameHash(name)) + 1)
}

// lockDirBucket write-locks the bucket of name in directory dirIno.
func (f *FS) lockDirBucket(th *proc.Thread, dirIno int64, name string) int64 {
	sp := f.span(th)
	th.CPU(2 * perfmodel.CPULockAcquire) // clock_gettime + bucket lease CAS
	k := bucketKey(dirIno, name)
	t0 := th.Clk.Now()
	f.sh.lockOf(k).Lock(th.Clk)
	if w := th.Clk.Now() - t0; w > 0 {
		sp.LockContend(k, w)
	}
	return k
}

func (f *FS) unlockDirBucket(th *proc.Thread, k int64) {
	th.CPU(perfmodel.CPULockAcquire)
	f.sh.lockOf(k).Unlock(th.Clk)
}

// rlockInode read-locks an inode (readers overlap; no lease write — reads
// are made safe by the atomic 8-byte update discipline of §5.3).
func (f *FS) rlockInode(th *proc.Thread, ino int64) {
	sp := f.span(th)
	th.CPU(perfmodel.CPULockAcquire)
	t0 := th.Clk.Now()
	f.sh.lockOf(ino).RLock(th.Clk)
	if w := th.Clk.Now() - t0; w > 0 {
		sp.LockContend(ino, w)
	}
}

func (f *FS) runlockInode(th *proc.Thread, ino int64) {
	f.sh.lockOf(ino).RUnlock(th.Clk)
}
