package zofs

import (
	"zofs/internal/byteflow"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/spans"
	"zofs/internal/telemetry"
	"zofs/internal/vfs"
)

// Inode management and Ext4-style block mapping (paper §5.1: "The file
// inode contains pointers to data pages, indirect pages, and double
// indirect pages"; inodes consume a full 4KB page).

// initInode writes a fresh inode header into a (kernel-zeroed) metadata
// page. The header write is the only persistence needed: pointers are zero.
func (f *FS) initInode(th *proc.Thread, page int64, typ vfs.FileType, mode uint32, uid, gid uint32) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	defer th.Clk.SetWriteClass(prev)
	hdr := make([]byte, inoHeaderLen)
	putU32(hdr, inoMagicOff, inoMagic)
	putU32(hdr, inoTypeOff, uint32(typ))
	putU32(hdr, inoModeOff, mode)
	putU32(hdr, inoUIDOff, uid)
	putU32(hdr, inoGIDOff, gid)
	putU32(hdr, inoNlinkOff, 1)
	putU64(hdr, inoMtimeOff, uint64(th.Clk.Now()))
	putU64(hdr, inoCtimeOff, uint64(th.Clk.Now()))
	th.WriteNT(page*pageSize, hdr)
}

// writeSymlinkTarget stores a symlink's target in its inode page.
func (f *FS) writeSymlinkTarget(th *proc.Thread, page int64, target string) error {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	defer th.Clk.SetWriteClass(prev)
	if len(target) > symMaxLen {
		return vfs.ErrNameTooLong
	}
	buf := make([]byte, 2+len(target))
	buf[0] = byte(len(target))
	buf[1] = byte(len(target) >> 8)
	copy(buf[2:], target)
	th.WriteNT(page*pageSize+inoSymLenOff, buf)
	th.Fence()
	// Size mirrors the target length (as POSIX reports for symlinks).
	th.Store64(page*pageSize+inoSizeOff, uint64(len(target)))
	return nil
}

// inodeSize reads the file size (hot word: charged as a cache hit).
func (f *FS) inodeSize(th *proc.Thread, ino int64) int64 {
	return int64(th.Load64Cached(ino*pageSize + inoSizeOff))
}

// setInodeSize persists a new size and mtime (two adjacent words, one
// streaming write).
func (f *FS) setInodeSize(th *proc.Thread, ino int64, size int64) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	defer th.Clk.SetWriteClass(prev)
	var buf [16]byte
	putU64(buf[:], 0, uint64(size))
	putU64(buf[:], 8, uint64(th.Clk.Now()))
	th.WriteNT(ino*pageSize+inoSizeOff, buf[:])
}

// blockPtr maps file block idx to its data page, optionally allocating the
// page (and any needed indirect pages) on the way.
func (f *FS) blockPtr(th *proc.Thread, m *mount, ino, idx int64, alloc bool) (int64, error) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	defer th.Clk.SetWriteClass(prev)
	slot, err := f.blockSlot(th, m, ino, idx, alloc)
	if err != nil || slot == 0 {
		return 0, err
	}
	pg := int64(th.Load64Cached(slot))
	if pg == 0 && alloc {
		newPg, err := f.allocPage(th, m, classData)
		if err != nil {
			return 0, err
		}
		th.Store64(slot, uint64(newPg))
		pg = newPg
	}
	return pg, nil
}

// blockSlot resolves the block-map slot holding block idx's page pointer,
// allocating intermediate pointer pages when alloc is set. A zero slot
// with nil error means the path is unallocated (and alloc was false).
func (f *FS) blockSlot(th *proc.Thread, m *mount, ino, idx int64, alloc bool) (int64, error) {
	if idx < 0 || idx >= maxBlocks {
		return 0, vfs.ErrInvalid
	}
	switch {
	case idx < inoDirectCnt:
		return ino*pageSize + inoDirectOff + 8*idx, nil
	case idx < inoDirectCnt+ptrsPerPage:
		ind, err := f.indirectPage(th, m, ino*pageSize+inoIndirectOff, alloc)
		if err != nil || ind == 0 {
			return 0, err
		}
		return ind*pageSize + 8*(idx-inoDirectCnt), nil
	default:
		rel := idx - inoDirectCnt - ptrsPerPage
		d1, err := f.indirectPage(th, m, ino*pageSize+inoDIndirOff, alloc)
		if err != nil || d1 == 0 {
			return 0, err
		}
		d2, err := f.indirectPage(th, m, d1*pageSize+8*(rel/ptrsPerPage), alloc)
		if err != nil || d2 == 0 {
			return 0, err
		}
		return d2*pageSize + 8*(rel%ptrsPerPage), nil
	}
}

// blockPtrForWrite resolves (allocating if absent) the data page for block
// idx and reports whether it was freshly allocated, in one map walk.
func (f *FS) blockPtrForWrite(th *proc.Thread, m *mount, ino, idx int64) (pg int64, created bool, err error) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	defer th.Clk.SetWriteClass(prev)
	slot, err := f.blockSlot(th, m, ino, idx, true)
	if err != nil {
		return 0, false, err
	}
	pg = int64(th.Load64Cached(slot))
	if pg != 0 {
		return pg, false, nil
	}
	if pg, err = f.allocPage(th, m, classData); err != nil {
		return 0, false, err
	}
	th.Store64(slot, uint64(pg))
	return pg, true, nil
}

// indirectPage dereferences (and optionally allocates) a pointer page.
// Pointer pages must arrive zeroed, so they come from the metadata class.
func (f *FS) indirectPage(th *proc.Thread, m *mount, slot int64, alloc bool) (int64, error) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	defer th.Clk.SetWriteClass(prev)
	pg := int64(th.Load64Cached(slot))
	if pg == 0 && alloc {
		newPg, err := f.allocPage(th, m, classMeta)
		if err != nil {
			return 0, err
		}
		th.Store64(slot, uint64(newPg))
		pg = newPg
	}
	return pg, nil
}

// isInline reports whether the file's data lives in the inode page.
func (f *FS) isInline(th *proc.Thread, ino int64) bool {
	return f.opts.InlineData && th.Load64Cached(ino*pageSize+inoInlineFlag) == 1
}

// readAt reads file data; the caller holds at least a read lock on ino.
// The default configuration delivers straight from the mapped device into
// the caller's buffer; the NoZeroCopy variant stages every transfer
// through a DRAM bounce buffer and pays the extra memcpy.
func (f *FS) readAt(th *proc.Thread, m *mount, ino int64, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	size := f.inodeSize(th, ino)
	if off >= size {
		return 0, nil
	}
	if off+int64(len(p)) > size {
		p = p[:size-off]
	}
	if f.opts.NoZeroCopy && len(p) > 0 {
		cost := perfmodel.MemcpyCost(len(p))
		th.CPU(cost)
		f.span(th).Bill(spans.CompMemcpy, cost)
	}
	if f.isInline(th, ino) {
		th.Read(ino*pageSize+inoInlineOff+off, p)
		return len(p), nil
	}
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) / pageSize
		pOff := (off + int64(n)) % pageSize
		chunk := int(pageSize - pOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		pg, err := f.blockPtr(th, m, ino, idx, false)
		if err != nil {
			return n, err
		}
		if pg == 0 {
			// Hole: reads as zeros.
			clear(p[n : n+chunk])
		} else {
			th.Read(pg*pageSize+pOff, p[n:n+chunk])
		}
		n += chunk
	}
	return n, nil
}

// writeAt writes file data in place with non-temporal stores (§5.3: ZoFS
// does not implement atomic data updates); the caller holds the write lock
// at the given lease epoch, which fences the metadata publish: a holder
// whose lease was stolen mid-op (checkLease) gets vfs.ErrStaleLease
// instead of committing over the stealer. Newly allocated, partially
// covered pages are zeroed first (data-class grants are not scrubbed).
func (f *FS) writeAt(th *proc.Thread, m *mount, ino int64, epoch uint8, p []byte, off int64) (int, error) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassData))
	defer th.Clk.SetWriteClass(prev)
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if f.opts.NoZeroCopy && len(p) > 0 {
		// Copy-path staging of the outgoing bytes (see readAt).
		cost := perfmodel.MemcpyCost(len(p))
		th.CPU(cost)
		f.span(th).Bill(spans.CompMemcpy, cost)
	}
	size := f.inodeSize(th, ino)
	if f.opts.InlineData {
		inline := f.isInline(th, ino)
		if (inline || size == 0) && off+int64(len(p)) <= inlineCap {
			// The whole write fits in the inode page: one store, no
			// allocation, no block pointer.
			f.rec().Inc(telemetry.CtrZoFSInlineWrites)
			if err := f.checkLease(th, ino, epoch); err != nil {
				return 0, err
			}
			th.WriteNT(ino*pageSize+inoInlineOff+off, p)
			if !inline {
				th.Store64(ino*pageSize+inoInlineFlag, 1)
			}
			if end := off + int64(len(p)); end > size {
				f.setInodeSize(th, ino, end)
			} else {
				th.Store64(ino*pageSize+inoMtimeOff, uint64(th.Clk.Now()))
			}
			return len(p), nil
		}
		if inline {
			if err := f.deInline(th, m, ino, size); err != nil {
				return 0, err
			}
		}
	}
	f.rec().Inc(telemetry.CtrZoFSExtentWrites)
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) / pageSize
		pOff := (off + int64(n)) % pageSize
		chunk := int(pageSize - pOff)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		pg, created, err := f.blockPtrForWrite(th, m, ino, idx)
		if err != nil {
			return n, err
		}
		if created {
			// Zero only the unwritten parts of the fresh page. The head
			// is inside the final size whenever pOff > 0; the tail must
			// be zeroed to keep the invariant that bytes beyond a page's
			// written extent are zero (a later write below them would
			// expose stale content). Full-page writes — the append
			// fast path — pay nothing.
			if pOff > 0 {
				th.Zero(pg*pageSize, pOff)
			}
			if wEnd := pOff + int64(chunk); wEnd < pageSize {
				th.Zero(pg*pageSize+wEnd, pageSize-wEnd)
			}
		}
		th.WriteNT(pg*pageSize+pOff, p[n:n+chunk])
		n += chunk
	}
	// Epoch fence before the commit-point publish: if the lease was stolen
	// while the data stores ran, the size/mtime must not be published —
	// the stealer owns the inode's metadata now. The data stores above may
	// have landed (ZoFS data writes are not atomic), but they are invisible
	// beyond the committed size and are the stealer's to overwrite.
	if err := f.checkLease(th, ino, epoch); err != nil {
		return 0, err
	}
	if end := off + int64(n); end > size {
		f.setInodeSize(th, ino, end)
	} else {
		th.Clk.SetWriteClass(uint8(byteflow.ClassInode))
		th.Store64(ino*pageSize+inoMtimeOff, uint64(th.Clk.Now()))
		th.Clk.SetWriteClass(uint8(byteflow.ClassData))
	}
	return n, nil
}

// deInline migrates inline content to a real data page (the file outgrew
// the inode's tail).
func (f *FS) deInline(th *proc.Thread, m *mount, ino, size int64) error {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassData))
	defer th.Clk.SetWriteClass(prev)
	f.rec().Inc(telemetry.CtrZoFSDeInline)
	buf := make([]byte, size)
	th.Read(ino*pageSize+inoInlineOff, buf)
	pg, err := f.blockPtr(th, m, ino, 0, true)
	if err != nil {
		return err
	}
	th.Zero(pg*pageSize, pageSize)
	th.WriteNT(pg*pageSize, buf)
	th.Store64(ino*pageSize+inoInlineFlag, 0)
	return nil
}

// truncateTo shrinks or extends a file; the caller holds the write lock.
// Shrinking commits the new size first, then frees the trimmed pages —
// a crash in between only leaks pages, which recovery reclaims (§5.3).
func (f *FS) truncateTo(th *proc.Thread, m *mount, ino, newSize int64) error {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassData))
	defer th.Clk.SetWriteClass(prev)
	if newSize < 0 {
		return vfs.ErrInvalid
	}
	size := f.inodeSize(th, ino)
	if f.isInline(th, ino) {
		if newSize > inlineCap {
			if err := f.deInline(th, m, ino, size); err != nil {
				return err
			}
			f.setInodeSize(th, ino, newSize)
			return nil
		}
		f.setInodeSize(th, ino, newSize)
		if newSize < size {
			th.Zero(ino*pageSize+inoInlineOff+newSize, inlineCap-newSize)
		}
		return nil
	}
	f.setInodeSize(th, ino, newSize)
	if newSize >= size {
		return nil
	}
	// Zero the tail of the boundary page so a later extension reads zeros,
	// not resurrected bytes (POSIX truncate semantics).
	if tail := newSize % pageSize; tail != 0 {
		if pg, err := f.blockPtr(th, m, ino, newSize/pageSize, false); err == nil && pg != 0 {
			th.Zero(pg*pageSize+tail, pageSize-tail)
		}
	}
	firstDead := (newSize + pageSize - 1) / pageSize
	lastIdx := (size + pageSize - 1) / pageSize
	for idx := firstDead; idx < lastIdx; idx++ {
		pg, err := f.blockPtr(th, m, ino, idx, false)
		if err != nil {
			return err
		}
		if pg != 0 {
			f.clearBlockPtr(th, ino, idx)
			f.freePage(th, m, classData, pg)
		}
	}
	return nil
}

// clearBlockPtr zeroes the pointer slot for a block (direct and indirect
// levels; empty indirect pages are left in place and reclaimed by fsck).
func (f *FS) clearBlockPtr(th *proc.Thread, ino, idx int64) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassInode))
	defer th.Clk.SetWriteClass(prev)
	switch {
	case idx < inoDirectCnt:
		th.Store64(ino*pageSize+inoDirectOff+8*idx, 0)
	case idx < inoDirectCnt+ptrsPerPage:
		ind := int64(th.Load64(ino*pageSize + inoIndirectOff))
		if ind != 0 {
			th.Store64(ind*pageSize+8*(idx-inoDirectCnt), 0)
		}
	default:
		rel := idx - inoDirectCnt - ptrsPerPage
		d1 := int64(th.Load64(ino*pageSize + inoDIndirOff))
		if d1 == 0 {
			return
		}
		d2 := int64(th.Load64(d1*pageSize + 8*(rel/ptrsPerPage)))
		if d2 != 0 {
			th.Store64(d2*pageSize+8*(rel%ptrsPerPage), 0)
		}
	}
}

// filePages collects every page reachable from a regular file inode
// (data + indirect pages), excluding the inode page itself.
func (f *FS) filePages(th *proc.Thread, ino int64) []int64 {
	var pages []int64
	size := f.inodeSize(th, ino)
	blocks := (size + pageSize - 1) / pageSize
	// Direct.
	dir := f.readView(th, ino*pageSize+inoDirectOff, inoDirectCnt*8)
	for i := int64(0); i < inoDirectCnt && i < blocks; i++ {
		if pg := int64(u64at(dir, int(i*8))); pg != 0 {
			pages = append(pages, pg)
		}
	}
	// Indirect.
	ind := int64(th.Load64(ino*pageSize + inoIndirectOff))
	if ind != 0 {
		pages = append(pages, ind)
		buf := f.readView(th, ind*pageSize, pageSize)
		for i := 0; i < ptrsPerPage; i++ {
			if pg := int64(u64at(buf, i*8)); pg != 0 {
				pages = append(pages, pg)
			}
		}
	}
	// Double indirect.
	d1 := int64(th.Load64(ino*pageSize + inoDIndirOff))
	if d1 != 0 {
		pages = append(pages, d1)
		l1 := f.readView(th, d1*pageSize, pageSize)
		for i := 0; i < ptrsPerPage; i++ {
			d2 := int64(u64at(l1, i*8))
			if d2 == 0 {
				continue
			}
			pages = append(pages, d2)
			l2 := f.readView(th, d2*pageSize, pageSize)
			for j := 0; j < ptrsPerPage; j++ {
				if pg := int64(u64at(l2, j*8)); pg != 0 {
					pages = append(pages, pg)
				}
			}
		}
	}
	return pages
}

// freeFileContent releases all of a regular file's pages to the caller's
// free lists (after the dentry kill has committed).
func (f *FS) freeFileContent(th *proc.Thread, m *mount, ino int64) {
	for _, pg := range f.filePages(th, ino) {
		f.freePage(th, m, classData, pg)
	}
	f.freePage(th, m, classMeta, ino)
}

// freeDirContent releases a directory's structure pages and its inode.
// The directory must be empty.
func (f *FS) freeDirContent(th *proc.Thread, m *mount, ino int64) {
	// The directory is gone and its pages may be recycled under another
	// identity; forget its lookup index.
	f.sh.dc.drop(ino)
	for _, pg := range f.dirPages(th, ino) {
		f.freePage(th, m, classMeta, pg)
	}
	f.freePage(th, m, classMeta, ino)
}

// statInode builds a FileInfo from an inode.
func (f *FS) statInode(th *proc.Thread, m *mount, ino int64) vfs.FileInfo {
	hdr := f.readInodeHeader(th, ino)
	return vfs.FileInfo{
		Type:   vfs.FileType(u32at(hdr, inoTypeOff)),
		Mode:   modeOf(hdr),
		UID:    u32at(hdr, inoUIDOff),
		GID:    u32at(hdr, inoGIDOff),
		Size:   int64(u64at(hdr, inoSizeOff)),
		Nlink:  u32at(hdr, inoNlinkOff),
		Mtime:  int64(u64at(hdr, inoMtimeOff)),
		Inode:  ino,
		Coffer: m.id,
	}
}
