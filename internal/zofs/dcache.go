package zofs

import (
	"strconv"
	"sync"
	"sync/atomic"

	"zofs/internal/lockprof"
	"zofs/internal/nvm"
	"zofs/internal/proc"
)

// Volatile directory lookup cache.
//
// The on-NVM directory structure (two-level hash table, §5.1) resolves a
// name with one or more charged media reads per lookup and a linear slot
// scan per insert. This cache keeps, per directory inode, a complete DRAM
// index of its live dentries — name → (decoded dentry, NVM location) — plus
// the free dentry slots, so hot-path lookups cost one hash probe and
// inserts pop a free slot without rescanning pages.
//
// It lives in the per-device `shared` state: in the simulation every
// process of a device shares it, standing in for the shared-DRAM index a
// multi-process deployment would coordinate through lease words (the
// KucoFS-style index the paper cites as future work). ResetShared — the
// crash analogue — drops it wholesale, so a post-crash remount always
// starts cold and can never serve a pre-crash dentry.
//
// Coherence protocol:
//   - Every dentry mutation (dirInsert, dirRemove, dirUpdateCoffer — rename
//     composes these) runs under the directory's index mutex and applies
//     its delta to the index, so a complete index is always exact.
//   - An index is authoritative only while `complete` is set AND its epoch
//     matches the device epoch. Anything that rewrites dentries outside the
//     hooks (recovery's repair stores) or recycles directory pages outside
//     the µFS (coffer_delete) bumps the device epoch, invalidating every
//     index at once; InvalidateAll does the same. Rmdir drops the removed
//     directory's index directly.
//   - A non-authoritative index is rebuilt under its mutex by one full
//     charged scan; mutators that find the index non-authoritative fall
//     back to the on-NVM scan path and leave the index reset.
//
// Negative lookups need no tombstones: completeness means absence from the
// index IS the negative answer, invalidated naturally when an insert adds
// the name.
type dcache struct {
	epoch atomic.Uint64
	dirs  sync.Map // directory inode page (int64) -> *dirIndex
}

// dir returns (creating if needed) the index shell for a directory.
func (c *dcache) dir(ino int64) *dirIndex {
	if v, ok := c.dirs.Load(ino); ok {
		return v.(*dirIndex)
	}
	nidx := &dirIndex{}
	nidx.mu.Init("zofs.dcache", strconv.FormatInt(ino, 10))
	v, _ := c.dirs.LoadOrStore(ino, nidx)
	return v.(*dirIndex)
}

// bump invalidates every directory index on the device.
func (c *dcache) bump() { c.epoch.Add(1) }

// drop forgets one directory's index (the directory was removed and its
// pages may be recycled under a different identity).
func (c *dcache) drop(ino int64) { c.dirs.Delete(ino) }

// cachedDe is one indexed dentry: the decoded entry, where it lives on NVM,
// and which free list its slot returns to when removed.
type cachedDe struct {
	de  dentry
	loc deLoc
	bkt int64 // free-list key (inlineKey or chainKey)
}

// dirIndex is one directory's volatile index. mu serializes index access
// AND the NVM dentry mutations of this directory, so a rebuild scan always
// observes a quiescent structure. It is a real-time mutex (not a
// virtual-time lock): holding it costs no simulated time, and virtual-time
// concurrency is still governed by the bucket locks; the lockprof wrapper
// records its real contention without adding virtual cost.
type dirIndex struct {
	mu       lockprof.RealMutex
	epoch    uint64 // device epoch the index was built under
	complete bool   // names holds every live dentry of the directory
	names    map[string]cachedDe
	free     map[int64][]deLoc // free dentry slots by placement key
}

// authoritative reports whether the index may answer lookups and absorb
// mutation deltas. Caller holds mu.
func (idx *dirIndex) authoritative(epoch uint64) bool {
	return idx.complete && idx.epoch == epoch
}

// reset discards the index contents; the next lookup rebuilds.
func (idx *dirIndex) reset() {
	idx.complete = false
	idx.names = nil
	idx.free = nil
}

// inlineKey keys the free list of a second-level page's inline area: any
// name hashing to this first-level slot may use any inline slot.
func inlineKey(l1Idx int64) int64 { return l1Idx }

// chainKey keys the free list of one bucket's chain pages: a chain slot can
// only host names that hash to this (first-level slot, bucket) pair. Keys
// are disjoint from inlineKey's range.
func chainKey(l1Idx, bucket int64) int64 { return 1<<32 | l1Idx<<8 | bucket }

// dcacheBuild rebuilds a directory's index with one full charged scan of
// the on-NVM structure. Caller holds idx.mu and the coffer's MPK window.
func (f *FS) dcacheBuild(th *proc.Thread, idx *dirIndex, dirIno int64, epoch uint64) {
	readPage := func(pg int64) []byte { return f.readView(th, pg*pageSize, pageSize) }
	idx.names = map[string]cachedDe{}
	idx.free = map[int64][]deLoc{}
	idx.epoch = epoch
	idx.complete = true
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		return
	}
	l1buf := readPage(l1)
	for i := int64(0); i < dirL1Slots; i++ {
		l2 := int64(u64at(l1buf, int(i*8)))
		if l2 == 0 {
			continue
		}
		l2buf := readPage(l2)
		ik := inlineKey(i)
		for o := int64(0); o+dentrySize <= l2BucketOff; o += dentrySize {
			f.dcacheRecord(idx, decodeDentry(l2buf[o:o+dentrySize]), deLoc{page: l2, off: o}, ik)
		}
		for b := int64(0); b < l2Buckets; b++ {
			ck := chainKey(i, b)
			pg := int64(u64at(l2buf, int(l2BucketOff+b*8)))
			for pg != 0 {
				cbuf := readPage(pg)
				next := int64(u64at(cbuf, chainNextOff))
				for o := int64(chainFirstDe); o+dentrySize <= pageSize; o += dentrySize {
					f.dcacheRecord(idx, decodeDentry(cbuf[o:o+dentrySize]), deLoc{page: pg, off: o}, ck)
				}
				pg = next
			}
		}
	}
}

// dcacheRecord classifies one scanned slot: live entries index by name,
// free slots join their placement free list. A live-but-undecodable dentry
// (torn commit word) is neither — it is invisible to lookups, exactly as on
// the scan path, and its slot is left for recovery to reclaim.
func (f *FS) dcacheRecord(idx *dirIndex, d dentry, loc deLoc, bkt int64) {
	switch {
	case d.state == deStateLive && d.name != "":
		idx.names[d.name] = cachedDe{de: d, loc: loc, bkt: bkt}
	case d.state != deStateLive:
		idx.free[bkt] = append(idx.free[bkt], loc)
	}
}

// DirCacheDirs reports how many directory indexes the device's shared cache
// currently holds (tests and the crash checker assert a cold cache after
// remount).
func DirCacheDirs(dev *nvm.Device) int {
	s, ok := sharedRegistry.Load(dev.UID())
	if !ok {
		return 0
	}
	n := 0
	s.(*shared).dc.dirs.Range(func(any, any) bool { n++; return true })
	return n
}

// DirCacheEpoch reports the device's cache-invalidation epoch (tests).
func DirCacheEpoch(dev *nvm.Device) uint64 {
	s, ok := sharedRegistry.Load(dev.UID())
	if !ok {
		return 0
	}
	return s.(*shared).dc.epoch.Load()
}
