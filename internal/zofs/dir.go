package zofs

import (
	"zofs/internal/byteflow"
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/spans"
	"zofs/internal/vfs"
)

// Directory implementation: adaptive two-level hash tables (paper §5.1).
// The directory inode points to a first-level page of 512 pointers; each
// second-level page holds 16 inline dentries (first half) and 256 hash
// buckets (second half), each bucket heading a chain of dentry pages. New
// dentries prefer the inline area; pages are allocated on demand.

// dentry is the decoded view of an on-NVM directory entry.
type dentry struct {
	state    uint8
	typ      uint8 // vfs.FileType
	hash     uint32
	cofferID uint32
	inode    int64
	name     string
}

// deLoc locates a dentry on NVM.
type deLoc struct {
	page int64 // page number
	off  int64 // byte offset within the page
}

func (l deLoc) addr() int64 { return l.page*pageSize + l.off }

// decodeDentry parses a 128-byte dentry image.
func decodeDentry(b []byte) dentry {
	state, nameLen, typ, hash := unpackCommit(u64at(b, deCommitOff))
	d := dentry{state: state, typ: typ, hash: hash}
	if state == deStateLive && nameLen > 0 && nameLen <= MaxNameLen {
		d.cofferID = u32at(b, deCofferOff)
		d.inode = int64(u64at(b, deInodeOff))
		d.name = string(b[deNameOff : deNameOff+nameLen])
	}
	return d
}

// scanDentries scans a buffer of consecutive dentries, calling fn for each
// live entry; fn returns false to stop. Returns the stop offset or -1.
func scanDentries(buf []byte, baseOff int64, fn func(d dentry, off int64) bool) bool {
	for o := int64(0); o+dentrySize <= int64(len(buf)); o += dentrySize {
		d := decodeDentry(buf[o : o+dentrySize])
		if d.state != deStateLive {
			continue
		}
		if !fn(d, baseOff+o) {
			return false
		}
	}
	return true
}

// dirL1Of reads the directory's first-level page pointer (hot word).
func (f *FS) dirL1Of(th *proc.Thread, dirIno int64) int64 {
	return int64(th.Load64Cached(dirIno*pageSize + inoDirL1Off))
}

// dirLookup finds a name in a directory. Caller holds at least a read lock.
// With the directory cache enabled (the default) a hit costs one hash probe
// plus a cache-charged verification load of the commit word; the on-NVM
// walk runs only to (re)build the index.
func (f *FS) dirLookup(th *proc.Thread, dirIno int64, name string) (dentry, deLoc, error) {
	if f.opts.NoDirCache {
		return f.dirLookupScan(th, dirIno, name)
	}
	sp := f.span(th)
	th.CPU(perfmodel.CPUHashLookup)
	idx := f.sh.dc.dir(dirIno)
	idx.mu.Lock()
	cur := f.sh.dc.epoch.Load()
	if !idx.authoritative(cur) {
		sp.DCacheMiss()
		idx.reset()
		t0 := th.Clk.Now()
		f.dcacheBuild(th, idx, dirIno, cur)
		sp.Child("dcache.rebuild", t0, th.Clk.Now()-t0)
	} else {
		sp.DCacheHit()
	}
	c, ok := idx.names[name]
	idx.mu.Unlock()
	if !ok {
		// Negative answer from completeness: the index holds every live
		// dentry, so absence is authoritative.
		return dentry{}, deLoc{}, vfs.ErrNotExist
	}
	// Verify the hit against the NVM dentry before trusting it: the commit
	// word plus the routing fields (coffer, inode), which share one cache
	// line. A mismatch means some writer bypassed the coherence hooks —
	// possibly a malicious process rewriting dentries in a shared coffer —
	// so fall back to the on-NVM truth (rebuild), which the walk then
	// validates as usual (G3).
	hdr := f.readViewCached(th, c.loc.addr(), deNameOff)
	state, nameLen, typ, hash := unpackCommit(u64at(hdr, deCommitOff))
	if state == deStateLive && nameLen == len(name) && typ == c.de.typ && hash == c.de.hash &&
		u32at(hdr, deCofferOff) == c.de.cofferID &&
		u64at(hdr, deInodeOff) == uint64(c.de.inode) {
		return c.de, c.loc, nil
	}
	idx.mu.Lock()
	sp.DCacheMiss()
	idx.reset()
	t0 := th.Clk.Now()
	f.dcacheBuild(th, idx, dirIno, cur)
	sp.Child("dcache.rebuild", t0, th.Clk.Now()-t0)
	c, ok = idx.names[name]
	idx.mu.Unlock()
	if !ok {
		return dentry{}, deLoc{}, vfs.ErrNotExist
	}
	return c.de, c.loc, nil
}

// dirLookupScan is the cache-free lookup: the on-NVM two-level hash walk.
func (f *FS) dirLookupScan(th *proc.Thread, dirIno int64, name string) (dentry, deLoc, error) {
	h := nameHash(name)
	th.CPU(perfmodel.CPUHashLookup)
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		return dentry{}, deLoc{}, vfs.ErrNotExist
	}
	l2 := int64(th.Load64Cached(l1*pageSize + 8*l1Index(h)))
	if l2 == 0 {
		return dentry{}, deLoc{}, vfs.ErrNotExist
	}
	// Inline area: hot directories keep their second-level pages in the
	// CPU cache, like a kernel dcache keeps dentries in DRAM, but every
	// slot still costs decode-and-compare CPU work.
	inline := f.readViewCached(th, l2*pageSize, l2BucketOff)
	th.CPU(perfmodel.CPUDentryScan * (l2BucketOff / dentrySize))
	want := checkHash(h)
	var found dentry
	var loc deLoc
	ok := false
	scanDentries(inline, 0, func(d dentry, off int64) bool {
		if d.hash == want && d.name == name {
			found, loc, ok = d, deLoc{page: l2, off: off}, true
			return false
		}
		return true
	})
	if ok {
		return found, loc, nil
	}
	// Bucket chain.
	pg := int64(th.Load64(l2*pageSize + l2BucketOff + 8*l2Bucket(h)))
	for pg != 0 {
		page := f.readView(th, pg*pageSize, pageSize)
		th.CPU(perfmodel.CPUDentryScan * ((pageSize - chainFirstDe) / dentrySize))
		next := int64(u64at(page, chainNextOff))
		scanDentries(page[chainFirstDe:], chainFirstDe, func(d dentry, off int64) bool {
			if d.hash == want && d.name == name {
				found, loc, ok = d, deLoc{page: pg, off: off}, true
				return false
			}
			return true
		})
		if ok {
			return found, loc, nil
		}
		pg = next
	}
	return dentry{}, deLoc{}, vfs.ErrNotExist
}

// writeDentry writes a dentry body then atomically publishes its commit
// word (§5.3's ordered update). The body write composes directly in the
// device image through a write view when available; the copy path remains
// for the NoZeroCopy baseline.
func (f *FS) writeDentry(th *proc.Thread, loc deLoc, name string, typ uint8, cofferID uint32, inode int64) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassDentry))
	defer th.Clk.SetWriteClass(prev)
	wrote := false
	if !f.opts.NoZeroCopy {
		if buf, commit, ok := th.WriteView(loc.addr()+8, dentrySize-8); ok {
			clear(buf)
			putU32(buf, deCofferOff-8, cofferID)
			putU64(buf, deInodeOff-8, uint64(inode))
			copy(buf[deNameOff-8:], name)
			commit()
			wrote = true
		}
	}
	if !wrote {
		// The body is composed in a DRAM staging buffer and then copied to
		// the device — the round trip the write view avoids.
		cost := perfmodel.StageCost(dentrySize - 8)
		th.CPU(cost)
		f.span(th).Bill(spans.CompMemcpy, cost)
		body := make([]byte, dentrySize-8)
		putU32(body, deCofferOff-8, cofferID)
		putU64(body, deInodeOff-8, uint64(inode))
		copy(body[deNameOff-8:], name)
		th.WriteNT(loc.addr()+8, body)
	}
	th.Fence()
	th.Store64(loc.addr(), dentryCommit(deStateLive, len(name), typ, checkHash(nameHash(name))))
}

// dirInsert adds a dentry. Caller holds the bucket write lock and has
// verified the name does not exist. With the directory cache enabled the
// insert runs under the index mutex and applies its delta, keeping the
// index exact; free dentry slots come off the cached free lists instead of
// rescanning pages.
func (f *FS) dirInsert(th *proc.Thread, m *mount, dirIno int64, name string, typ uint8, cofferID uint32, inode int64) error {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassDentry))
	defer th.Clk.SetWriteClass(prev)
	if len(name) > MaxNameLen {
		return vfs.ErrNameTooLong
	}
	if f.opts.NoDirCache {
		return f.dirInsertScan(th, m, dirIno, name, typ, cofferID, inode)
	}
	idx := f.sh.dc.dir(dirIno)
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if idx.authoritative(f.sh.dc.epoch.Load()) {
		return f.dirInsertCached(th, m, idx, dirIno, name, typ, cofferID, inode)
	}
	// Non-authoritative index: mutate via the scan path and leave the index
	// reset; the next lookup rebuilds it.
	idx.reset()
	return f.dirInsertScan(th, m, dirIno, name, typ, cofferID, inode)
}

// dirInsertCached inserts through an authoritative index. Caller holds
// idx.mu and the bucket lock.
func (f *FS) dirInsertCached(th *proc.Thread, m *mount, idx *dirIndex, dirIno int64, name string, typ uint8, cofferID uint32, inode int64) error {
	h := nameHash(name)
	th.CPU(perfmodel.CPUHashLookup)
	commit := func(loc deLoc, bkt int64) {
		f.writeDentry(th, loc, name, typ, cofferID, inode)
		idx.names[name] = cachedDe{
			de:  dentry{state: deStateLive, typ: typ, hash: checkHash(h), cofferID: cofferID, inode: inode, name: name},
			loc: loc,
			bkt: bkt,
		}
	}
	// Inline area first (§5.1), then this bucket's chain slots — both from
	// the cached free lists, with no on-NVM structure walk at all.
	i := l1Index(h)
	ik := inlineKey(i)
	if n := len(idx.free[ik]); n > 0 {
		loc := idx.free[ik][n-1]
		idx.free[ik] = idx.free[ik][:n-1]
		th.CPU(perfmodel.CPUSmallOp)
		commit(loc, ik)
		return nil
	}
	b := l2Bucket(h)
	ck := chainKey(i, b)
	if n := len(idx.free[ck]); n > 0 {
		loc := idx.free[ck][n-1]
		idx.free[ck] = idx.free[ck][:n-1]
		th.CPU(perfmodel.CPUSmallOp)
		commit(loc, ck)
		return nil
	}
	// Both free lists dry: the structure must grow. The L1/L2 pointer
	// lines of a cache-served directory are hot.
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		pg, err := f.allocPage(th, m, classMeta)
		if err != nil {
			return err
		}
		if th.CAS64(dirIno*pageSize+inoDirL1Off, 0, uint64(pg)) {
			l1 = pg
		} else {
			f.freePage(th, m, classMeta, pg)
			l1 = f.dirL1Of(th, dirIno)
		}
	}
	l1Slot := l1*pageSize + 8*i
	l2 := int64(th.Load64Cached(l1Slot))
	if l2 == 0 {
		pg, err := f.allocPage(th, m, classMeta)
		if err != nil {
			return err
		}
		th.Store64(l1Slot, uint64(pg))
		l2 = pg
		// A fresh (zeroed) second-level page: the first inline slot takes
		// this dentry, the rest go on the free list.
		commit(deLoc{page: l2, off: 0}, ik)
		for o := int64(dentrySize); o+dentrySize <= l2BucketOff; o += dentrySize {
			idx.free[ik] = append(idx.free[ik], deLoc{page: l2, off: o})
		}
		return nil
	}
	// Inline area and this bucket's chains are full: fresh chain page at
	// the head, remaining slots registered free.
	bucketAddr := l2*pageSize + l2BucketOff + 8*b
	head := int64(th.Load64(bucketAddr))
	pg, err := f.allocPage(th, m, classMeta)
	if err != nil {
		return err
	}
	th.Store64(pg*pageSize+chainNextOff, uint64(head))
	commit(deLoc{page: pg, off: chainFirstDe}, ck)
	th.Store64(bucketAddr, uint64(pg))
	for o := int64(chainFirstDe + dentrySize); o+dentrySize <= pageSize; o += dentrySize {
		idx.free[ck] = append(idx.free[ck], deLoc{page: pg, off: o})
	}
	return nil
}

// dirInsertScan is the cache-free insert: linear free-slot scan of the
// on-NVM structure. Allocates L1/L2/chain pages on demand.
func (f *FS) dirInsertScan(th *proc.Thread, m *mount, dirIno int64, name string, typ uint8, cofferID uint32, inode int64) error {
	h := nameHash(name)
	th.CPU(perfmodel.CPUHashLookup)
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		// Install the first-level page with a CAS: mutations in different
		// buckets race here (bucket locks do not serialize this install).
		pg, err := f.allocPage(th, m, classMeta)
		if err != nil {
			return err
		}
		if th.CAS64(dirIno*pageSize+inoDirL1Off, 0, uint64(pg)) {
			l1 = pg
		} else {
			f.freePage(th, m, classMeta, pg)
			l1 = f.dirL1Of(th, dirIno)
		}
	}
	l1Slot := l1*pageSize + 8*l1Index(h)
	l2 := int64(th.Load64(l1Slot))
	if l2 == 0 {
		pg, err := f.allocPage(th, m, classMeta)
		if err != nil {
			return err
		}
		th.Store64(l1Slot, uint64(pg))
		l2 = pg
	}
	// Try the inline area first (§5.1: "ZoFS tries to put new dentries in
	// the second-level page first"). Hot directories keep this page in the
	// CPU cache, like dirLookup, but the free-slot scan still burns CPU.
	inline := f.readViewCached(th, l2*pageSize, l2BucketOff)
	th.CPU(perfmodel.CPUDentryScan * (l2BucketOff / dentrySize))
	for o := int64(0); o < l2BucketOff; o += dentrySize {
		if state, _, _, _ := unpackCommit(u64at(inline, int(o))); state != deStateLive {
			f.writeDentry(th, deLoc{page: l2, off: o}, name, typ, cofferID, inode)
			return nil
		}
	}
	// Walk the bucket chain for a free slot.
	bucketAddr := l2*pageSize + l2BucketOff + 8*l2Bucket(h)
	head := int64(th.Load64(bucketAddr))
	for pg := head; pg != 0; {
		page := f.readView(th, pg*pageSize, pageSize)
		th.CPU(perfmodel.CPUDentryScan * ((pageSize - chainFirstDe) / dentrySize))
		next := int64(u64at(page, chainNextOff))
		for o := int64(chainFirstDe); o+dentrySize <= pageSize; o += dentrySize {
			if state, _, _, _ := unpackCommit(u64at(page, int(o))); state != deStateLive {
				f.writeDentry(th, deLoc{page: pg, off: o}, name, typ, cofferID, inode)
				return nil
			}
		}
		pg = next
	}
	// Allocate a fresh chain page at the head: fill it, then publish the
	// bucket pointer atomically.
	pg, err := f.allocPage(th, m, classMeta)
	if err != nil {
		return err
	}
	th.Store64(pg*pageSize+chainNextOff, uint64(head))
	f.writeDentry(th, deLoc{page: pg, off: chainFirstDe}, name, typ, cofferID, inode)
	th.Store64(bucketAddr, uint64(pg))
	return nil
}

// dirRemove kills a dentry with a single atomic commit-word store. With the
// cache enabled the store runs under the index mutex and the slot returns
// to its free list, so the index stays complete.
func (f *FS) dirRemove(th *proc.Thread, dirIno int64, name string, loc deLoc) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassDentry))
	defer th.Clk.SetWriteClass(prev)
	if f.opts.NoDirCache {
		th.Store64(loc.addr(), dentryCommit(deStateFree, 0, 0, 0))
		return
	}
	idx := f.sh.dc.dir(dirIno)
	idx.mu.Lock()
	th.Store64(loc.addr(), dentryCommit(deStateFree, 0, 0, 0))
	if idx.authoritative(f.sh.dc.epoch.Load()) {
		if c, ok := idx.names[name]; ok && c.loc == loc {
			delete(idx.names, name)
			idx.free[c.bkt] = append(idx.free[c.bkt], loc)
		} else {
			idx.reset()
		}
	}
	idx.mu.Unlock()
}

// dirUpdateCoffer rewrites a dentry's cross-coffer reference in place:
// the coffer-ID field is written, then the inode pointer is re-stored to
// refresh readers (same name). The cached entry absorbs the same delta.
func (f *FS) dirUpdateCoffer(th *proc.Thread, dirIno int64, name string, loc deLoc, cofferID uint32, inode int64) {
	prev := th.Clk.SwapWriteClass(uint8(byteflow.ClassDentry))
	defer th.Clk.SetWriteClass(prev)
	write := func() {
		var b [8]byte
		putU32(b[:4], 0, cofferID)
		th.WriteNT(loc.addr()+deCofferOff, b[:4])
		th.Store64(loc.addr()+deInodeOff, uint64(inode))
		th.Fence()
	}
	if f.opts.NoDirCache {
		write()
		return
	}
	idx := f.sh.dc.dir(dirIno)
	idx.mu.Lock()
	write()
	if idx.authoritative(f.sh.dc.epoch.Load()) {
		if c, ok := idx.names[name]; ok && c.loc == loc {
			c.de.cofferID = cofferID
			c.de.inode = inode
			idx.names[name] = c
		} else {
			idx.reset()
		}
	}
	idx.mu.Unlock()
}

// dirScan calls fn for every live dentry; fn returns false to stop early.
// Caller holds at least a read lock.
func (f *FS) dirScan(th *proc.Thread, dirIno int64, fn func(d dentry, loc deLoc) bool) {
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		return
	}
	l1buf := f.readView(th, l1*pageSize, pageSize)
	for i := 0; i < dirL1Slots; i++ {
		l2 := int64(u64at(l1buf, i*8))
		if l2 == 0 {
			continue
		}
		page := f.readView(th, l2*pageSize, pageSize)
		stop := false
		scanDentries(page[:l2BucketOff], 0, func(d dentry, off int64) bool {
			if !fn(d, deLoc{page: l2, off: off}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
		for b := 0; b < l2Buckets; b++ {
			pg := int64(u64at(page, l2BucketOff+b*8))
			for pg != 0 {
				chain := f.readView(th, pg*pageSize, pageSize)
				next := int64(u64at(chain, chainNextOff))
				scanDentries(chain[chainFirstDe:], chainFirstDe, func(d dentry, off int64) bool {
					if !fn(d, deLoc{page: pg, off: off}) {
						stop = true
						return false
					}
					return true
				})
				if stop {
					return
				}
				pg = next
			}
		}
	}
}

// dirEmpty reports whether a directory has no live entries.
func (f *FS) dirEmpty(th *proc.Thread, dirIno int64) bool {
	empty := true
	f.dirScan(th, dirIno, func(dentry, deLoc) bool {
		empty = false
		return false
	})
	return empty
}

// dirPages collects every page used by the directory structure itself
// (L1, L2 and chain pages), for truncation/recovery accounting.
func (f *FS) dirPages(th *proc.Thread, dirIno int64) []int64 {
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		return nil
	}
	pages := []int64{l1}
	l1buf := f.readView(th, l1*pageSize, pageSize)
	for i := 0; i < dirL1Slots; i++ {
		l2 := int64(u64at(l1buf, i*8))
		if l2 == 0 {
			continue
		}
		pages = append(pages, l2)
		page := f.readView(th, l2*pageSize, pageSize)
		for b := 0; b < l2Buckets; b++ {
			pg := int64(u64at(page, l2BucketOff+b*8))
			var next [8]byte
			for pg != 0 {
				pages = append(pages, pg)
				th.Read(pg*pageSize+chainNextOff, next[:])
				pg = int64(u64at(next[:], 0))
			}
		}
	}
	return pages
}
