package zofs

import (
	"zofs/internal/perfmodel"
	"zofs/internal/proc"
	"zofs/internal/vfs"
)

// Directory implementation: adaptive two-level hash tables (paper §5.1).
// The directory inode points to a first-level page of 512 pointers; each
// second-level page holds 16 inline dentries (first half) and 256 hash
// buckets (second half), each bucket heading a chain of dentry pages. New
// dentries prefer the inline area; pages are allocated on demand.

// dentry is the decoded view of an on-NVM directory entry.
type dentry struct {
	state    uint8
	typ      uint8 // vfs.FileType
	hash     uint32
	cofferID uint32
	inode    int64
	name     string
}

// deLoc locates a dentry on NVM.
type deLoc struct {
	page int64 // page number
	off  int64 // byte offset within the page
}

func (l deLoc) addr() int64 { return l.page*pageSize + l.off }

// decodeDentry parses a 128-byte dentry image.
func decodeDentry(b []byte) dentry {
	state, nameLen, typ, hash := unpackCommit(u64at(b, deCommitOff))
	d := dentry{state: state, typ: typ, hash: hash}
	if state == deStateLive && nameLen > 0 && nameLen <= MaxNameLen {
		d.cofferID = u32at(b, deCofferOff)
		d.inode = int64(u64at(b, deInodeOff))
		d.name = string(b[deNameOff : deNameOff+nameLen])
	}
	return d
}

// scanDentries scans a buffer of consecutive dentries, calling fn for each
// live entry; fn returns false to stop. Returns the stop offset or -1.
func scanDentries(buf []byte, baseOff int64, fn func(d dentry, off int64) bool) bool {
	for o := int64(0); o+dentrySize <= int64(len(buf)); o += dentrySize {
		d := decodeDentry(buf[o : o+dentrySize])
		if d.state != deStateLive {
			continue
		}
		if !fn(d, baseOff+o) {
			return false
		}
	}
	return true
}

// dirL1Of reads the directory's first-level page pointer (hot word).
func (f *FS) dirL1Of(th *proc.Thread, dirIno int64) int64 {
	return int64(th.Load64Cached(dirIno*pageSize + inoDirL1Off))
}

// dirLookup finds a name in a directory. Caller holds at least a read lock.
func (f *FS) dirLookup(th *proc.Thread, dirIno int64, name string) (dentry, deLoc, error) {
	h := nameHash(name)
	th.CPU(perfmodel.CPUHashLookup)
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		return dentry{}, deLoc{}, vfs.ErrNotExist
	}
	l2 := int64(th.Load64Cached(l1*pageSize + 8*l1Index(h)))
	if l2 == 0 {
		return dentry{}, deLoc{}, vfs.ErrNotExist
	}
	// Inline area: hot directories keep their second-level pages in the
	// CPU cache, like a kernel dcache keeps dentries in DRAM.
	inline := make([]byte, l2BucketOff)
	th.ReadCached(l2*pageSize, inline)
	want := checkHash(h)
	var found dentry
	var loc deLoc
	ok := false
	scanDentries(inline, 0, func(d dentry, off int64) bool {
		if d.hash == want && d.name == name {
			found, loc, ok = d, deLoc{page: l2, off: off}, true
			return false
		}
		return true
	})
	if ok {
		return found, loc, nil
	}
	// Bucket chain.
	pg := int64(th.Load64(l2*pageSize + l2BucketOff + 8*l2Bucket(h)))
	page := make([]byte, pageSize)
	for pg != 0 {
		th.Read(pg*pageSize, page)
		next := int64(u64at(page, chainNextOff))
		scanDentries(page[chainFirstDe:], chainFirstDe, func(d dentry, off int64) bool {
			if d.hash == want && d.name == name {
				found, loc, ok = d, deLoc{page: pg, off: off}, true
				return false
			}
			return true
		})
		if ok {
			return found, loc, nil
		}
		pg = next
	}
	return dentry{}, deLoc{}, vfs.ErrNotExist
}

// writeDentry writes a dentry body then atomically publishes its commit
// word (§5.3's ordered update).
func (f *FS) writeDentry(th *proc.Thread, loc deLoc, name string, typ uint8, cofferID uint32, inode int64) {
	body := make([]byte, dentrySize-8)
	putU32(body, deCofferOff-8, cofferID)
	putU64(body, deInodeOff-8, uint64(inode))
	copy(body[deNameOff-8:], name)
	th.WriteNT(loc.addr()+8, body)
	th.Fence()
	th.Store64(loc.addr(), dentryCommit(deStateLive, len(name), typ, checkHash(nameHash(name))))
}

// dirInsert adds a dentry. Caller holds the directory write lock and has
// verified the name does not exist. Allocates L1/L2/chain pages on demand.
func (f *FS) dirInsert(th *proc.Thread, m *mount, dirIno int64, name string, typ uint8, cofferID uint32, inode int64) error {
	if len(name) > MaxNameLen {
		return vfs.ErrNameTooLong
	}
	h := nameHash(name)
	th.CPU(perfmodel.CPUHashLookup)
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		// Install the first-level page with a CAS: mutations in different
		// buckets race here (bucket locks do not serialize this install).
		pg, err := f.allocPage(th, m, classMeta)
		if err != nil {
			return err
		}
		if th.CAS64(dirIno*pageSize+inoDirL1Off, 0, uint64(pg)) {
			l1 = pg
		} else {
			f.freePage(th, m, classMeta, pg)
			l1 = f.dirL1Of(th, dirIno)
		}
	}
	l1Slot := l1*pageSize + 8*l1Index(h)
	l2 := int64(th.Load64(l1Slot))
	if l2 == 0 {
		pg, err := f.allocPage(th, m, classMeta)
		if err != nil {
			return err
		}
		th.Store64(l1Slot, uint64(pg))
		l2 = pg
	}
	// Try the inline area first (§5.1: "ZoFS tries to put new dentries in
	// the second-level page first"). Hot directories keep this page in the
	// CPU cache, like dirLookup.
	inline := make([]byte, l2BucketOff)
	th.ReadCached(l2*pageSize, inline)
	for o := int64(0); o < l2BucketOff; o += dentrySize {
		if state, _, _, _ := unpackCommit(u64at(inline, int(o))); state != deStateLive {
			f.writeDentry(th, deLoc{page: l2, off: o}, name, typ, cofferID, inode)
			return nil
		}
	}
	// Walk the bucket chain for a free slot.
	bucketAddr := l2*pageSize + l2BucketOff + 8*l2Bucket(h)
	head := int64(th.Load64(bucketAddr))
	page := make([]byte, pageSize)
	for pg := head; pg != 0; {
		th.Read(pg*pageSize, page)
		next := int64(u64at(page, chainNextOff))
		for o := int64(chainFirstDe); o+dentrySize <= pageSize; o += dentrySize {
			if state, _, _, _ := unpackCommit(u64at(page, int(o))); state != deStateLive {
				f.writeDentry(th, deLoc{page: pg, off: o}, name, typ, cofferID, inode)
				return nil
			}
		}
		pg = next
	}
	// Allocate a fresh chain page at the head: fill it, then publish the
	// bucket pointer atomically.
	pg, err := f.allocPage(th, m, classMeta)
	if err != nil {
		return err
	}
	th.Store64(pg*pageSize+chainNextOff, uint64(head))
	f.writeDentry(th, deLoc{page: pg, off: chainFirstDe}, name, typ, cofferID, inode)
	th.Store64(bucketAddr, uint64(pg))
	return nil
}

// dirRemove kills a dentry with a single atomic commit-word store.
func (f *FS) dirRemove(th *proc.Thread, loc deLoc) {
	th.Store64(loc.addr(), dentryCommit(deStateFree, 0, 0, 0))
}

// dirUpdateCoffer rewrites a dentry's cross-coffer reference in place:
// the coffer-ID field is written, then the commit word is re-stored to
// refresh readers (same inode/name).
func (f *FS) dirUpdateCoffer(th *proc.Thread, loc deLoc, cofferID uint32, inode int64) {
	var b [8]byte
	putU32(b[:4], 0, cofferID)
	th.WriteNT(loc.addr()+deCofferOff, b[:4])
	th.Store64(loc.addr()+deInodeOff, uint64(inode))
	th.Fence()
}

// dirScan calls fn for every live dentry; fn returns false to stop early.
// Caller holds at least a read lock.
func (f *FS) dirScan(th *proc.Thread, dirIno int64, fn func(d dentry, loc deLoc) bool) {
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		return
	}
	l1buf := make([]byte, pageSize)
	th.Read(l1*pageSize, l1buf)
	page := make([]byte, pageSize)
	for i := 0; i < dirL1Slots; i++ {
		l2 := int64(u64at(l1buf, i*8))
		if l2 == 0 {
			continue
		}
		th.Read(l2*pageSize, page)
		stop := false
		scanDentries(page[:l2BucketOff], 0, func(d dentry, off int64) bool {
			if !fn(d, deLoc{page: l2, off: off}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
		for b := 0; b < l2Buckets; b++ {
			pg := int64(u64at(page, l2BucketOff+b*8))
			chain := make([]byte, pageSize)
			for pg != 0 {
				th.Read(pg*pageSize, chain)
				next := int64(u64at(chain, chainNextOff))
				scanDentries(chain[chainFirstDe:], chainFirstDe, func(d dentry, off int64) bool {
					if !fn(d, deLoc{page: pg, off: off}) {
						stop = true
						return false
					}
					return true
				})
				if stop {
					return
				}
				pg = next
			}
		}
	}
}

// dirEmpty reports whether a directory has no live entries.
func (f *FS) dirEmpty(th *proc.Thread, dirIno int64) bool {
	empty := true
	f.dirScan(th, dirIno, func(dentry, deLoc) bool {
		empty = false
		return false
	})
	return empty
}

// dirPages collects every page used by the directory structure itself
// (L1, L2 and chain pages), for truncation/recovery accounting.
func (f *FS) dirPages(th *proc.Thread, dirIno int64) []int64 {
	l1 := f.dirL1Of(th, dirIno)
	if l1 == 0 {
		return nil
	}
	pages := []int64{l1}
	l1buf := make([]byte, pageSize)
	th.Read(l1*pageSize, l1buf)
	page := make([]byte, pageSize)
	for i := 0; i < dirL1Slots; i++ {
		l2 := int64(u64at(l1buf, i*8))
		if l2 == 0 {
			continue
		}
		pages = append(pages, l2)
		th.Read(l2*pageSize, page)
		for b := 0; b < l2Buckets; b++ {
			pg := int64(u64at(page, l2BucketOff+b*8))
			var next [8]byte
			for pg != 0 {
				pages = append(pages, pg)
				th.Read(pg*pageSize+chainNextOff, next[:])
				pg = int64(u64at(next[:], 0))
			}
		}
	}
	return pages
}
